// Fixture for R4 (no-float-eq): equality on declared doubles and on a
// floating literal.

bool
sameEnergy(double pj_a, double pj_b)
{
    return pj_a == pj_b || pj_b != 0.0;
}
