// Fixture: exact float comparison suppressed (sentinel compare).

bool
isSentinel(double joules)
{
    return joules == -1.0; // gds-lint: allow(no-float-eq) sentinel is assigned exactly, never computed
}
