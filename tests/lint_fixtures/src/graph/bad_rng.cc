// Fixture for R3 (no-unseeded-rng).

#include <cstdlib>
#include <random>

unsigned
drawUnseeded()
{
    std::mt19937 gen;
    std::random_device dev;
    return static_cast<unsigned>(rand()) + gen() + dev();
}
