// Fixture: unseeded randomness suppressed with a justification.

#include <random>

unsigned
drawEntropy()
{
    // gds-lint: allow(no-unseeded-rng) fixture models an entropy tap
    std::random_device dev;
    return dev();
}
