// Fixture for R2 (no-raw-stderr).

#include <cstdio>
#include <iostream>

void
reportFailure()
{
    std::cerr << "failed\n";
    std::fprintf(stderr, "failed\n");
}
