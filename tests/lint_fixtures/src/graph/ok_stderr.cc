// Fixture: raw stderr suppressed; the own-line directive's
// justification wraps, covering the next line with code on it.

#include <iostream>

void
reportFailure()
{
    // gds-lint: allow(no-raw-stderr) fixture exercising the wrapped
    // justification form of an own-line suppression
    // gds-lint: allow(no-raw-cerr-logging) both rules cover this stream
    std::cerr << "failed\n";
}
