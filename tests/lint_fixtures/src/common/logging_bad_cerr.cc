// Fixture for R11 (no-raw-cerr-logging): this path sits inside R2's
// src/common/logging carve-out, so only R11 fires — iostream streaming
// bypasses the emitRawLine() chokepoint even where raw stderr is legal.

#include <iostream>

void
reportFailure()
{
    std::cerr << "failed\n";
}
