// Fixture: R11 suppressed with the shared allow() grammar.

#include <iostream>

void
reportFailure()
{
    // gds-lint: allow(no-raw-cerr-logging) fixture exercising the
    // suppression grammar against the R11 rule
    std::cerr << "failed\n";
}
