// Fixture for R1 (no-naked-assert): both the C assert and a
// user-facing-layer gds_assert must be flagged.

void
checkSize(unsigned n)
{
    assert(n > 0);
    gds_assert(n < 100, "n out of range %u", n);
}
