// Fixture: the same asserts, suppressed with justifications in both
// the own-line and trailing directive forms.

void
checkSize(unsigned n)
{
    // gds-lint: allow(no-naked-assert) fixture exercising the
    // own-line suppression form
    assert(n > 0);
    gds_assert(n < 100, "%u", n); // gds-lint: allow(no-naked-assert) fixture trailing form
}
