// gds-lint: allow(header-hygiene) generated fixture header; include
// guards are the responsibility of the generator emitting it

inline int fixtureValue() { return 42; }
