// Fixture for R6 (component-hooks): a Component subclass with every
// diagnostic hook except the fast-forward horizon that its busy()
// override makes mandatory.

#pragma once

#include "sim/component.hh"

class SluggishWidget : public sim::Component
{
  public:
    bool busy() const override { return false; }
    std::string debugState() const override { return "idle"; }
    std::uint64_t activityCounter() const override { return 0; }
    void saveState(sim::Serializer &s) const override;
    void restoreState(sim::Deserializer &d) override;
};
