// Fixture: R8 checkpoint-field-coverage — 'lost' is serialized by
// neither hook, 'halfway' only by saveState().

#pragma once

#include "sim/component.hh"

class LeakyWidget : public sim::Component
{
  public:
    bool busy() const override { return false; }
    std::string debugState() const override { return "idle"; }
    std::uint64_t activityCounter() const override { return ticks; }
    Cycle nextEventCycle() const override { return kNeverEvent; }

    void saveState(sim::Serializer &s) const override
    {
        s.writeU64(ticks);
        s.writeU64(halfway);
    }

    void restoreState(sim::Deserializer &d) override
    {
        ticks = d.readU64();
    }

  private:
    std::uint64_t ticks = 0;
    std::uint64_t halfway = 0;
    std::uint64_t lost = 0;
};
