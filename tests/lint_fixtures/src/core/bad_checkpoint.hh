// Fixture for R7 (checkpoint-hooks): a Component subclass with every
// diagnostic hook but no saveState()/restoreState() pair, so its state
// would silently vanish from mid-run checkpoints.

#pragma once

#include "sim/component.hh"

class ForgetfulWidget : public sim::Component
{
  public:
    bool busy() const override { return false; }
    std::string debugState() const override { return "idle"; }
    std::uint64_t activityCounter() const override { return 0; }
    Cycle nextEventCycle() const override { return 1; }
};
