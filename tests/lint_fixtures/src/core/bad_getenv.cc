// Fixture: R10 env-knob-discipline — a raw getenv of a GDS_* knob
// outside the sanctioned common/parse and common/debug homes.

#include <cstdlib>

bool
turboEnabled()
{
    return std::getenv("GDS_TURBO") != nullptr;
}
