// Fixture: bad gds-ckpt directives — one without a justification, one
// naming a field no component in this file declares, and one stale skip
// on a field both hooks already serialize.

#pragma once

#include "sim/component.hh"

// gds-ckpt: skip(phantom) justification for a field that does not exist
class SlipperyWidget : public sim::Component
{
  public:
    bool busy() const override { return false; }
    std::string debugState() const override { return "idle"; }
    std::uint64_t activityCounter() const override { return ticks; }
    Cycle nextEventCycle() const override { return kNeverEvent; }

    void saveState(sim::Serializer &s) const override
    {
        s.writeU64(ticks);
        s.writeU64(credits);
    }

    void restoreState(sim::Deserializer &d) override
    {
        ticks = d.readU64();
        credits = d.readU64();
    }

  private:
    // gds-ckpt: skip(ticks)
    std::uint64_t ticks = 0;
    // gds-ckpt: skip(credits) stale: both hooks serialize this field
    std::uint64_t credits = 0;
};
