// Fixture: R8/R9-clean component — every field is either serialized by
// both hooks in the same order, stats-typed (the Component base walks
// registered stats), or carries a justified gds-ckpt skip.

#pragma once

#include "sim/component.hh"
#include "stats/stats.hh"

class TidyWidget : public sim::Component
{
  public:
    bool busy() const override { return false; }
    std::string debugState() const override { return "idle"; }
    std::uint64_t activityCounter() const override { return ticks; }
    Cycle nextEventCycle() const override { return kNeverEvent; }

    void saveState(sim::Serializer &s) const override
    {
        s.writeU64(ticks);
        s.writeU64(credits);
    }

    void restoreState(sim::Deserializer &d) override
    {
        ticks = d.readU64();
        credits = d.readU64();
    }

  private:
    std::uint64_t ticks = 0;
    std::uint64_t credits = 0;
    // gds-ckpt: skip(fanout) derived from the config in the constructor
    unsigned fanout = 4;
    stats::Scalar statTicks;
};
