// Fixture: hook-less Component subclass with a justified suppression.

#pragma once

#include "sim/component.hh"

// gds-lint: allow(component-hooks) fixture stub never ticks, so the
// watchdog can have nothing to report about it
class StubWidget : public sim::Component
{
};
