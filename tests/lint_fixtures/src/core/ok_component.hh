// Fixture: hook-less Component subclass with a justified suppression.

#pragma once

#include "sim/component.hh"

// gds-lint: allow(component-hooks) fixture stub never ticks, so the
// watchdog can have nothing to report about it
// gds-lint: allow(checkpoint-hooks) fixture stub holds no state beyond
// the Component base, whose hooks already serialize it
class StubWidget : public sim::Component
{
};
