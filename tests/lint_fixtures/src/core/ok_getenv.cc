// Fixture: env-knob-discipline boundaries — non-GDS variables are out of
// scope, and a justified suppression covers a deliberate raw read.

#include <cstdlib>

const char *
homeDir()
{
    return std::getenv("HOME"); // not a GDS_* knob: legal
}

bool
legacyKnob()
{
    // gds-lint: allow(env-knob-discipline) fixture demonstrates a
    // justified raw read of a GDS_* knob
    return std::getenv("GDS_LEGACY") != nullptr;
}
