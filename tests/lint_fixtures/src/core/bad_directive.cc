// Fixture for the bad-suppression meta rule.

// gds-lint: allow(no-naked-assert)
int fixtureA = 1;

// gds-lint: allow(not-a-rule) this rule name does not exist
int fixtureB = 2;

// gds-lint: disallow(no-float-eq) unknown verb
int fixtureC = 3;
