// Fixture for R6 (component-hooks): a Component subclass missing
// a watchdog hook.

#pragma once

#include "sim/component.hh"

class SilentWidget : public sim::Component
{
  public:
    bool busy() const override { return false; }
    void saveState(sim::Serializer &s) const override;
    void restoreState(sim::Deserializer &d) override;
};
