// Fixture for R5 (header-hygiene): no #pragma once and a
// using-namespace at file scope.

using namespace std;

inline int fixtureValue() { return 42; }
