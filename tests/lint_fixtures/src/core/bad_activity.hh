// Fixture for R6 (component-hooks): a Component subclass with both
// watchdog hooks but no activityCounter() telemetry hook.

#pragma once

#include "sim/component.hh"

class MuteWidget : public sim::Component
{
  public:
    bool busy() const override { return false; }
    std::string debugState() const override { return "idle"; }
    void saveState(sim::Serializer &s) const override;
    void restoreState(sim::Deserializer &d) override;
};
