// Fixture: R9 save-restore-symmetry — restoreState() reads 'head' and
// 'tail' in the opposite order saveState() wrote them, so the restored
// values land in the wrong fields while every byte count still matches.

#pragma once

#include "sim/component.hh"

class TwistedWidget : public sim::Component
{
  public:
    bool busy() const override { return false; }
    std::string debugState() const override { return "idle"; }
    std::uint64_t activityCounter() const override { return head; }
    Cycle nextEventCycle() const override { return kNeverEvent; }

    void saveState(sim::Serializer &s) const override
    {
        s.writeU64(head);
        s.writeU64(tail);
    }

    void restoreState(sim::Deserializer &d) override
    {
        tail = d.readU64();
        head = d.readU64();
    }

  private:
    std::uint64_t head = 0;
    std::uint64_t tail = 0;
};
