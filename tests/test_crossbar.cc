/**
 * @file
 * Tests for the radix-N crossbar model: one grant per output per cycle,
 * conflict accounting, and cycle reset.
 */

#include <gtest/gtest.h>

#include "mem/crossbar.hh"

namespace gds::mem
{
namespace
{

TEST(Crossbar, GrantsOnePerOutputPerCycle)
{
    Crossbar xbar(4, nullptr);
    xbar.beginCycle();
    EXPECT_TRUE(xbar.tryRoute(2));
    EXPECT_FALSE(xbar.tryRoute(2)); // same output, same cycle
    EXPECT_TRUE(xbar.tryRoute(3));  // different output is fine
}

TEST(Crossbar, BeginCycleResetsGrants)
{
    Crossbar xbar(2, nullptr);
    xbar.beginCycle();
    EXPECT_TRUE(xbar.tryRoute(0));
    xbar.beginCycle();
    EXPECT_TRUE(xbar.tryRoute(0));
}

TEST(Crossbar, StatsCountFlitsAndConflicts)
{
    Crossbar xbar(2, nullptr);
    xbar.beginCycle();
    xbar.tryRoute(0);
    xbar.tryRoute(0);
    xbar.tryRoute(1);
    EXPECT_EQ(xbar.flitsRouted(), 2.0);
    EXPECT_EQ(xbar.statsGroup().scalar("conflicts").value(), 1.0);
}

TEST(Crossbar, FullRadixInOneCycle)
{
    Crossbar xbar(128, nullptr);
    xbar.beginCycle();
    for (unsigned out = 0; out < 128; ++out)
        EXPECT_TRUE(xbar.tryRoute(out));
    EXPECT_EQ(xbar.flitsRouted(), 128.0);
}

TEST(CrossbarDeath, OutputOutOfRangePanics)
{
    Crossbar xbar(4, nullptr);
    xbar.beginCycle();
    EXPECT_DEATH((void)xbar.tryRoute(4), "out of range");
}

} // namespace
} // namespace gds::mem
