/**
 * @file
 * Element-wise span comparison for tests. Csr's array accessors return
 * std::span (non-owning views over heap or mmap storage), and std::span
 * deliberately has no operator==, so EXPECT_EQ cannot compare them
 * directly; spanEq() restores gtest-style failure messages (first
 * mismatching index and values).
 */

#pragma once

#include <gtest/gtest.h>

#include <cstddef>
#include <span>

namespace gds::testutil
{

template <typename T>
::testing::AssertionResult
spanEq(std::span<const T> a, std::span<const T> b)
{
    if (a.size() != b.size()) {
        return ::testing::AssertionFailure()
               << "span sizes differ: " << a.size() << " vs " << b.size();
    }
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) {
            return ::testing::AssertionFailure()
                   << "spans differ at index " << i << ": " << +a[i]
                   << " vs " << +b[i];
        }
    }
    return ::testing::AssertionSuccess();
}

} // namespace gds::testutil

#define EXPECT_SPAN_EQ(a, b) EXPECT_TRUE(::gds::testutil::spanEq((a), (b)))
#define EXPECT_SPAN_NE(a, b) EXPECT_FALSE(::gds::testutil::spanEq((a), (b)))
