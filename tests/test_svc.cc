/**
 * @file
 * Tests for the simulation service (src/svc): protocol parsing, the
 * in-process service lifecycle (submit/poll/result, cache hits,
 * admission rejection, drain-with-checkpoint, resume), the socket
 * server end-to-end, and regressions for the input-handling bugfix
 * sweep that shipped with the daemon:
 *  - checked CLI/request numeric parsing (common/parse.hh) instead of
 *    bare std::stoul crashes and strtoul sign-wraparound;
 *  - env knobs rejecting negative/garbage values with the documented
 *    default instead of wrapping ("GDS_CELL_RETRIES=-1" -> ~4e9);
 *  - GDS_PERFECT_MEM resolved once per run instead of once per process
 *    half of the time (function-local static in the scatter path).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>

#include "common/jsonio.hh"
#include "common/parse.hh"
#include "common/socket.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "sim/simulator.hh"
#include "svc/server.hh"
#include "svc/service.hh"
#include "expect_error.hh"

using namespace gds;

namespace
{

/**
 * Scratch-directory fixture: the service's result cache, dataset cache
 * and checkpoints are all CWD-relative. GDS_SCALE is pinned high so the
 * Table 4 datasets the jobs name are tiny.
 */
class SvcTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        original = std::filesystem::current_path();
        scratch = std::filesystem::temp_directory_path() /
                  ("gds_svc_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(scratch);
        std::filesystem::current_path(scratch);
        ::setenv("GDS_SCALE", "256", 1);
        sim::clearStopRequest();
    }

    void
    TearDown() override
    {
        ::unsetenv("GDS_SCALE");
        sim::clearStopRequest();
        std::filesystem::current_path(original);
        std::filesystem::remove_all(scratch);
    }

    std::filesystem::path original;
    std::filesystem::path scratch;
};

svc::JobSpec
bfsSpec(const std::string &dataset = "FR")
{
    svc::JobSpec spec;
    spec.system = harness::SystemId::GraphDynS;
    spec.algorithm = algo::AlgorithmId::Bfs;
    spec.dataset = dataset;
    return spec;
}

/** Poll until the job leaves the queue (bounded; these jobs are tiny). */
svc::JobView
awaitJob(svc::SimService &service, const std::string &id)
{
    for (int i = 0; i < 600; ++i) {
        auto view = service.poll(id);
        EXPECT_TRUE(view.ok()) << view.status().toString();
        if (view.value().state == svc::JobState::Done ||
            view.value().state == svc::JobState::Failed)
            return view.value();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ADD_FAILURE() << "job " << id << " never finished";
    return {};
}

// ---------------------------------------------------------------------
// Protocol parsing.
// ---------------------------------------------------------------------

TEST(SvcProtocol, ParsesFullSubmit)
{
    auto req = svc::parseRequest(
        R"({"op":"submit","system":"graphicionado","algorithm":"sssp",)"
        R"("dataset":"PK","source":7,"iterations":3,"cycle_budget":1000,)"
        R"("wall_budget_seconds":1.5})");
    ASSERT_TRUE(req.ok()) << req.status().toString();
    const svc::JobSpec &spec = req.value().spec;
    EXPECT_EQ(req.value().op, svc::RequestOp::Submit);
    EXPECT_EQ(spec.system, harness::SystemId::Graphicionado);
    EXPECT_EQ(spec.algorithm, algo::AlgorithmId::Sssp);
    EXPECT_EQ(spec.dataset, "PK");
    ASSERT_TRUE(spec.source.has_value());
    EXPECT_EQ(*spec.source, 7u);
    ASSERT_TRUE(spec.iterations.has_value());
    EXPECT_EQ(*spec.iterations, 3u);
    EXPECT_EQ(spec.cycleBudget, 1000u);
    EXPECT_DOUBLE_EQ(spec.wallBudgetSeconds, 1.5);
}

TEST(SvcProtocol, KeyExtendsOnlyForOverrides)
{
    svc::JobSpec plain = bfsSpec();
    svc::JobSpec custom = bfsSpec();
    custom.source = 5;
    custom.iterations = 2;
    EXPECT_NE(plain.key(), custom.key());
    // The plain spec's key is exactly the evaluation matrix's cell key,
    // so daemon jobs share (and warm) the same cache entries.
    EXPECT_EQ(plain.key(),
              harness::cellKey("gds", algo::AlgorithmId::Bfs, "FR"));
}

TEST(SvcProtocol, RejectsMalformedRequests)
{
    // Not JSON at all.
    EXPECT_EQ(svc::parseRequest("not json").status().code(),
              ErrorCode::CorruptInput);
    // Valid JSON, wrong shape / content: typed config errors.
    for (const char *line : {
             R"([1,2,3])",
             R"({"algorithm":"bfs","dataset":"FR"})",
             R"({"op":"frobnicate"})",
             R"({"op":"submit","dataset":"FR"})",
             R"({"op":"submit","algorithm":"nope","dataset":"FR"})",
             R"({"op":"submit","algorithm":"bfs","dataset":"NOPE"})",
             R"({"op":"submit","algorithm":"bfs","dataset":"FR","source":-1})",
             R"({"op":"submit","algorithm":"bfs","dataset":"FR","source":"1x"})",
             R"({"op":"submit","algorithm":"bfs","dataset":"FR",)"
             R"("iterations":0})",
             R"({"op":"submit","algorithm":"bfs","dataset":"FR",)"
             R"("source":99999999999999999999999})",
             R"({"op":"poll"})",
             R"({"op":"result","job":""})",
         }) {
        auto req = svc::parseRequest(line);
        EXPECT_FALSE(req.ok()) << "accepted: " << line;
        EXPECT_EQ(req.status().code(), ErrorCode::Config) << line;
    }
}

// ---------------------------------------------------------------------
// Service lifecycle.
// ---------------------------------------------------------------------

TEST_F(SvcTest, SubmitRunsJobAndServesRepeatFromCache)
{
    svc::ServiceConfig config;
    config.workers = 2;
    config.maxQueue = 4;
    svc::SimService service(config);

    auto first = service.submit(bfsSpec());
    ASSERT_TRUE(first.ok()) << first.status().toString();
    EXPECT_FALSE(first.value().cached);

    const svc::JobView done = awaitJob(service, first.value().id);
    EXPECT_EQ(done.state, svc::JobState::Done);
    EXPECT_EQ(done.record.status, "ok");
    EXPECT_GT(done.record.seconds, 0.0);
    EXPECT_GT(done.latencySeconds, 0.0);

    // result() mirrors poll() for finished jobs.
    auto fetched = service.result(first.value().id);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(fetched.value().record.configHash, done.record.configHash);

    // Identical resubmission: served at admission, no queue slot used.
    auto second = service.submit(bfsSpec());
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.value().cached);
    EXPECT_EQ(second.value().state, svc::JobState::Done);
    EXPECT_EQ(second.value().record.seconds, done.record.seconds);

    const svc::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.admitted, 1u);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.cacheLookups, 2u);
    EXPECT_EQ(stats.completed, 1u);

    // The statsz line carries the hit rate and parses as JSON.
    const std::string line = service.statszLine();
    EXPECT_NE(line.find("\"cache_hit_rate\":0.5"), std::string::npos)
        << line;
    EXPECT_TRUE(common::parseJson(line).ok()) << line;
}

TEST_F(SvcTest, UnknownJobAndUnfinishedJobAreTypedErrors)
{
    svc::ServiceConfig config;
    config.workers = 1;
    svc::SimService service(config);
    EXPECT_EQ(service.poll("j999").status().code(), ErrorCode::Config);
    EXPECT_EQ(service.result("j999").status().code(), ErrorCode::Config);
}

TEST_F(SvcTest, AdmissionQueueBoundsAndDrainCheckpointsInFlightJobs)
{
    const std::string ckpt_dir = "svc_ckpt";
    {
        svc::ServiceConfig config;
        config.workers = 1;
        config.maxQueue = 1;
        config.checkpointDir = ckpt_dir;
        svc::SimService service(config);

        // A deliberately long job (PR runs its full iteration budget).
        svc::JobSpec slow = bfsSpec();
        slow.algorithm = algo::AlgorithmId::Pr;
        slow.iterations = 2000;
        auto admitted = service.submit(slow);
        ASSERT_TRUE(admitted.ok()) << admitted.status().toString();

        // The queue is full (1/1): a distinct job is rejected with the
        // typed resource error, not queued unboundedly.
        auto rejected = service.submit(bfsSpec());
        ASSERT_FALSE(rejected.ok());
        EXPECT_EQ(rejected.status().code(), ErrorCode::Resource);
        EXPECT_EQ(service.stats().rejected, 1u);

        // SIGTERM path: drain stops the in-flight run at its next check
        // boundary; the job is recorded as stopped, not lost.
        service.drain();
        auto stopped = service.poll(admitted.value().id);
        ASSERT_TRUE(stopped.ok());
        EXPECT_EQ(stopped.value().state, svc::JobState::Failed);
        EXPECT_EQ(stopped.value().record.status, "stopped");

        // ...and left a resumable checkpoint behind.
        bool found = false;
        for (const auto &entry :
             std::filesystem::directory_iterator(ckpt_dir))
            found |= entry.path().extension() == ".ckpt";
        EXPECT_TRUE(found) << "no checkpoint written under " << ckpt_dir;

        // A draining service refuses new work.
        auto late = service.submit(bfsSpec());
        ASSERT_FALSE(late.ok());
        EXPECT_EQ(late.status().code(), ErrorCode::Resource);
    }

    // A fresh service (fresh daemon) with the same checkpoint dir picks
    // the job up from the checkpoint and completes it.
    sim::clearStopRequest();
    svc::ServiceConfig config;
    config.workers = 1;
    config.maxQueue = 1;
    config.checkpointDir = ckpt_dir;
    svc::SimService service(config);
    svc::JobSpec slow = bfsSpec();
    slow.algorithm = algo::AlgorithmId::Pr;
    slow.iterations = 2000;
    auto resumed = service.submit(slow);
    ASSERT_TRUE(resumed.ok()) << resumed.status().toString();
    const svc::JobView done = awaitJob(service, resumed.value().id);
    EXPECT_EQ(done.state, svc::JobState::Done);
    EXPECT_EQ(done.record.status, "ok");
    EXPECT_EQ(done.record.iterations, 2000u);
}

// ---------------------------------------------------------------------
// Server: request dispatch and the socket end-to-end path.
// ---------------------------------------------------------------------

TEST_F(SvcTest, HandleLineSpeaksTheProtocol)
{
    svc::ServerConfig config;
    config.service.workers = 1;
    svc::Server server(config);

    const std::string bad = server.handleLine("{\"op\":\"nope\"}");
    EXPECT_NE(bad.find("\"ok\":false"), std::string::npos) << bad;
    EXPECT_NE(bad.find("\"error\":\"config\""), std::string::npos) << bad;

    const std::string submit = server.handleLine(
        R"({"op":"submit","algorithm":"bfs","dataset":"FR"})");
    EXPECT_NE(submit.find("\"ok\":true"), std::string::npos) << submit;
    EXPECT_NE(submit.find("\"job\":\"j1\""), std::string::npos) << submit;

    const std::string stats = server.handleLine("{\"op\":\"statsz\"}");
    EXPECT_TRUE(common::parseJson(stats).ok()) << stats;
    EXPECT_NE(stats.find("\"submitted\":1"), std::string::npos) << stats;

    const std::string bye = server.handleLine("{\"op\":\"shutdown\"}");
    EXPECT_NE(bye.find("draining"), std::string::npos) << bye;
    server.service().drain();
}

TEST_F(SvcTest, SocketRoundTripAndShutdown)
{
    svc::ServerConfig config;
    config.socketPath = (scratch / "svc_test.sock").string();
    config.service.workers = 1;
    svc::Server server(config);
    std::thread serve_thread([&] {
        const Status s = server.serve();
        EXPECT_TRUE(s.ok()) << s.toString();
    });

    // The listener may not be bound yet; retry the connect briefly.
    Result<common::LineChannel> chan =
        Status::failure(ErrorCode::Internal, "never connected");
    for (int i = 0; i < 100 && !chan.ok(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        chan = common::connectUnix(config.socketPath, 1000);
    }
    ASSERT_TRUE(chan.ok()) << chan.status().toString();

    ASSERT_TRUE(chan.value()
                    .writeLine(R"({"op":"submit","algorithm":"bfs",)"
                               R"("dataset":"FR"})")
                    .ok());
    std::string response;
    ASSERT_TRUE(chan.value().readLine(response, 30'000).ok());
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;

    // In-band shutdown: the daemon answers, then drains and exits.
    ASSERT_TRUE(chan.value().writeLine("{\"op\":\"shutdown\"}").ok());
    ASSERT_TRUE(chan.value().readLine(response, 30'000).ok());
    EXPECT_NE(response.find("draining"), std::string::npos) << response;
    chan.value().close();
    serve_thread.join();
    // The socket file is unlinked on a clean exit.
    EXPECT_FALSE(std::filesystem::exists(config.socketPath));
}

TEST_F(SvcTest, SecondListenerOnLiveSocketIsRefused)
{
    common::UnixListener first;
    const std::string path = (scratch / "dup.sock").string();
    ASSERT_TRUE(first.bind(path).ok());
    common::UnixListener second;
    const Status s = second.bind(path);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::Resource);
}

// ---------------------------------------------------------------------
// Bugfix regressions: checked numeric parsing everywhere.
// ---------------------------------------------------------------------

TEST(SvcParse, RequireU64RejectsGarbageWithTypedError)
{
    EXPECT_EQ(common::requireU64("--pes", "8"), 8u);
    // Bare std::stoul accepted "10x" (and crashed the old CLI on "abc"
    // with an uncaught std::invalid_argument); now each is ConfigError.
    EXPECT_TYPED_ERROR(common::requireU64("--pes", "abc"), ConfigError,
                       "not a decimal number");
    EXPECT_TYPED_ERROR(common::requireU64("--pes", "10x"), ConfigError,
                       "trailing garbage after number");
    EXPECT_TYPED_ERROR(common::requireU64("--pes", "-1"), ConfigError,
                       "sign not allowed");
    EXPECT_TYPED_ERROR(common::requireU64("--pes", "+1"), ConfigError,
                       "sign not allowed");
    EXPECT_TYPED_ERROR(common::requireU64("--pes", " 1"), ConfigError, "");
    EXPECT_TYPED_ERROR(common::requireU64("--pes", ""), ConfigError, "");
    EXPECT_TYPED_ERROR(
        common::requireU64("--pes", "99999999999999999999999"), ConfigError,
        "");
    EXPECT_TYPED_ERROR(common::requireU64("--pes", "0", 1), ConfigError, "");
    EXPECT_TYPED_ERROR(common::requireU64("--pes", "200", 1, 100),
                       ConfigError, "");
}

TEST(SvcParse, EnvKnobsFallBackInsteadOfWrapping)
{
    // GDS_CELL_RETRIES=-1 used to strtoul-wrap to ~4 billion retries.
    ::setenv("GDS_CELL_RETRIES", "-1", 1);
    EXPECT_EQ(harness::cellRetryLimit(), 2u);
    ::setenv("GDS_CELL_RETRIES", "7", 1);
    EXPECT_EQ(harness::cellRetryLimit(), 7u);
    ::unsetenv("GDS_CELL_RETRIES");

    ::setenv("GDS_CELL_BUDGET", "50x", 1);
    EXPECT_EQ(harness::cellCycleBudget(), 50'000'000'000ULL);
    ::unsetenv("GDS_CELL_BUDGET");

    ::setenv("GDS_CELL_WALL_BUDGET", "2.5s", 1);
    EXPECT_DOUBLE_EQ(harness::cellWallBudgetSeconds(), 0.0);
    ::setenv("GDS_CELL_WALL_BUDGET", "2.5", 1);
    EXPECT_DOUBLE_EQ(harness::cellWallBudgetSeconds(), 2.5);
    ::unsetenv("GDS_CELL_WALL_BUDGET");

    // GDS_JOBS=-1 must not become ~4 billion workers.
    ::setenv("GDS_JOBS", "-1", 1);
    const unsigned jobs = harness::jobCount();
    EXPECT_GE(jobs, 1u);
    EXPECT_LE(jobs, 4096u);
    ::unsetenv("GDS_JOBS");
}

TEST(SvcParse, ScaleDivisorRejectsTrailingGarbage)
{
    ::setenv("GDS_SCALE", "64abc", 1);
    EXPECT_EQ(graph::datasetScaleDivisor(), 16u);
    ::setenv("GDS_SCALE", "64", 1);
    EXPECT_EQ(graph::datasetScaleDivisor(), 64u);
    ::unsetenv("GDS_SCALE");
}

// ---------------------------------------------------------------------
// Bugfix regression: GDS_PERFECT_MEM is run-scoped.
// ---------------------------------------------------------------------

TEST(SvcPerfectMem, EnvFlagIsResolvedOncePerRun)
{
    const graph::Csr g = graph::rmat(10, 8, 42, {}, false);
    auto run_once = [&] {
        auto a = algo::makeAlgorithm(algo::AlgorithmId::Bfs);
        core::GdsConfig cfg;
        core::GdsAccel accel(cfg, g, *a);
        core::RunOptions options;
        options.source = algo::defaultSource(g);
        return accel.run(options);
    };

    // Old bug: dispatchChunk() latched GDS_PERFECT_MEM in a
    // function-local static on the *first* run, while the quiescence
    // predicate re-read it every run — flipping the env mid-process
    // made the two halves of the scatter path disagree. Now the flag
    // is resolved once at run() entry, so each run is self-consistent
    // and later runs fully track the current environment.
    ::setenv("GDS_PERFECT_MEM", "1", 1);
    const auto perfect_first = run_once();
    ::unsetenv("GDS_PERFECT_MEM");
    const auto normal = run_once();
    ::setenv("GDS_PERFECT_MEM", "1", 1);
    const auto perfect_again = run_once();
    ::unsetenv("GDS_PERFECT_MEM");

    ASSERT_TRUE(perfect_first.completed());
    ASSERT_TRUE(normal.completed());
    ASSERT_TRUE(perfect_again.completed());
    // Same env -> identical simulation, even with a differing run in
    // between (the static would have made run 2 inherit run 1's value).
    EXPECT_EQ(perfect_first.cycles, perfect_again.cycles);
    EXPECT_EQ(perfect_first.memoryBytes, perfect_again.memoryBytes);
    // Perfect memory must actually change the timing model.
    EXPECT_NE(perfect_first.cycles, normal.cycles);
    // Results (vertex properties) are timing-independent.
    EXPECT_EQ(perfect_first.properties, normal.properties);
}

} // namespace
