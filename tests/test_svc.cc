/**
 * @file
 * Tests for the simulation service (src/svc): protocol parsing, the
 * in-process service lifecycle (submit/poll/result, cache hits,
 * admission rejection, drain-with-checkpoint, resume), the socket
 * server end-to-end, and regressions for the input-handling bugfix
 * sweep that shipped with the daemon:
 *  - checked CLI/request numeric parsing (common/parse.hh) instead of
 *    bare std::stoul crashes and strtoul sign-wraparound;
 *  - env knobs rejecting negative/garbage values with the documented
 *    default instead of wrapping ("GDS_CELL_RETRIES=-1" -> ~4e9);
 *  - GDS_PERFECT_MEM resolved once per run instead of once per process
 *    half of the time (function-local static in the scatter path).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "common/jsonio.hh"
#include "common/log.hh"
#include "common/parse.hh"
#include "common/socket.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "sim/simulator.hh"
#include "svc/server.hh"
#include "svc/service.hh"
#include "expect_error.hh"

using namespace gds;

namespace
{

/**
 * Scratch-directory fixture: the service's result cache, dataset cache
 * and checkpoints are all CWD-relative. GDS_SCALE is pinned high so the
 * Table 4 datasets the jobs name are tiny.
 */
class SvcTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        original = std::filesystem::current_path();
        scratch = std::filesystem::temp_directory_path() /
                  ("gds_svc_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(scratch);
        std::filesystem::current_path(scratch);
        ::setenv("GDS_SCALE", "256", 1);
        sim::clearStopRequest();
    }

    void
    TearDown() override
    {
        ::unsetenv("GDS_SCALE");
        sim::clearStopRequest();
        std::filesystem::current_path(original);
        std::filesystem::remove_all(scratch);
    }

    std::filesystem::path original;
    std::filesystem::path scratch;
};

svc::JobSpec
bfsSpec(const std::string &dataset = "FR")
{
    svc::JobSpec spec;
    spec.system = harness::SystemId::GraphDynS;
    spec.algorithm = algo::AlgorithmId::Bfs;
    spec.dataset = dataset;
    return spec;
}

/**
 * Poll until the job leaves the queue. Bounded, but generously: these
 * jobs are tiny in real time, yet a full PR run under TSan can take
 * tens of seconds, and success returns at the first completed poll.
 */
svc::JobView
awaitJob(svc::SimService &service, const std::string &id)
{
    for (int i = 0; i < 2400; ++i) {
        auto view = service.poll(id);
        EXPECT_TRUE(view.ok()) << view.status().toString();
        if (view.value().state == svc::JobState::Done ||
            view.value().state == svc::JobState::Failed)
            return view.value();
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    ADD_FAILURE() << "job " << id << " never finished";
    return {};
}

// ---------------------------------------------------------------------
// Protocol parsing.
// ---------------------------------------------------------------------

TEST(SvcProtocol, ParsesFullSubmit)
{
    auto req = svc::parseRequest(
        R"({"op":"submit","system":"graphicionado","algorithm":"sssp",)"
        R"("dataset":"PK","source":7,"iterations":3,"cycle_budget":1000,)"
        R"("wall_budget_seconds":1.5})");
    ASSERT_TRUE(req.ok()) << req.status().toString();
    const svc::JobSpec &spec = req.value().spec;
    EXPECT_EQ(req.value().op, svc::RequestOp::Submit);
    EXPECT_EQ(spec.system, harness::SystemId::Graphicionado);
    EXPECT_EQ(spec.algorithm, algo::AlgorithmId::Sssp);
    EXPECT_EQ(spec.dataset, "PK");
    ASSERT_TRUE(spec.source.has_value());
    EXPECT_EQ(*spec.source, 7u);
    ASSERT_TRUE(spec.iterations.has_value());
    EXPECT_EQ(*spec.iterations, 3u);
    EXPECT_EQ(spec.cycleBudget, 1000u);
    EXPECT_DOUBLE_EQ(spec.wallBudgetSeconds, 1.5);
}

TEST(SvcProtocol, KeyExtendsOnlyForOverrides)
{
    svc::JobSpec plain = bfsSpec();
    svc::JobSpec custom = bfsSpec();
    custom.source = 5;
    custom.iterations = 2;
    EXPECT_NE(plain.key(), custom.key());
    // The plain spec's key is exactly the evaluation matrix's cell key,
    // so daemon jobs share (and warm) the same cache entries.
    EXPECT_EQ(plain.key(),
              harness::cellKey("gds", algo::AlgorithmId::Bfs, "FR"));
}

TEST(SvcProtocol, RejectsMalformedRequests)
{
    // Not JSON at all.
    EXPECT_EQ(svc::parseRequest("not json").status().code(),
              ErrorCode::CorruptInput);
    // Valid JSON, wrong shape / content: typed config errors.
    for (const char *line : {
             R"([1,2,3])",
             R"({"algorithm":"bfs","dataset":"FR"})",
             R"({"op":"frobnicate"})",
             R"({"op":"submit","dataset":"FR"})",
             R"({"op":"submit","algorithm":"nope","dataset":"FR"})",
             R"({"op":"submit","algorithm":"bfs","dataset":"NOPE"})",
             R"({"op":"submit","algorithm":"bfs","dataset":"FR","source":-1})",
             R"({"op":"submit","algorithm":"bfs","dataset":"FR","source":"1x"})",
             R"({"op":"submit","algorithm":"bfs","dataset":"FR",)"
             R"("iterations":0})",
             R"({"op":"submit","algorithm":"bfs","dataset":"FR",)"
             R"("source":99999999999999999999999})",
             R"({"op":"poll"})",
             R"({"op":"result","job":""})",
         }) {
        auto req = svc::parseRequest(line);
        EXPECT_FALSE(req.ok()) << "accepted: " << line;
        EXPECT_EQ(req.status().code(), ErrorCode::Config) << line;
    }
}

// ---------------------------------------------------------------------
// Service lifecycle.
// ---------------------------------------------------------------------

TEST_F(SvcTest, SubmitRunsJobAndServesRepeatFromCache)
{
    svc::ServiceConfig config;
    config.workers = 2;
    config.maxQueue = 4;
    svc::SimService service(config);

    auto first = service.submit(bfsSpec());
    ASSERT_TRUE(first.ok()) << first.status().toString();
    EXPECT_FALSE(first.value().cached);

    const svc::JobView done = awaitJob(service, first.value().id);
    EXPECT_EQ(done.state, svc::JobState::Done);
    EXPECT_EQ(done.record.status, "ok");
    EXPECT_GT(done.record.seconds, 0.0);
    EXPECT_GT(done.latencySeconds, 0.0);

    // result() mirrors poll() for finished jobs.
    auto fetched = service.result(first.value().id);
    ASSERT_TRUE(fetched.ok());
    EXPECT_EQ(fetched.value().record.configHash, done.record.configHash);

    // Identical resubmission: served at admission, no queue slot used.
    auto second = service.submit(bfsSpec());
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.value().cached);
    EXPECT_EQ(second.value().state, svc::JobState::Done);
    EXPECT_EQ(second.value().record.seconds, done.record.seconds);

    const svc::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 2u);
    EXPECT_EQ(stats.admitted, 1u);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.cacheLookups, 2u);
    EXPECT_EQ(stats.completed, 1u);

    // The statsz line carries the hit rate and parses as JSON.
    const std::string line = service.statszLine();
    EXPECT_NE(line.find("\"cache_hit_rate\":0.5"), std::string::npos)
        << line;
    EXPECT_TRUE(common::parseJson(line).ok()) << line;
}

TEST_F(SvcTest, UnknownJobAndUnfinishedJobAreTypedErrors)
{
    svc::ServiceConfig config;
    config.workers = 1;
    svc::SimService service(config);
    EXPECT_EQ(service.poll("j999").status().code(), ErrorCode::Config);
    EXPECT_EQ(service.result("j999").status().code(), ErrorCode::Config);
}

TEST_F(SvcTest, AdmissionQueueBoundsAndDrainCheckpointsInFlightJobs)
{
    const std::string ckpt_dir = "svc_ckpt";
    {
        svc::ServiceConfig config;
        config.workers = 1;
        config.maxQueue = 1;
        config.checkpointDir = ckpt_dir;
        svc::SimService service(config);

        // A deliberately long job (PR runs its full iteration budget):
        // orders of magnitude slower than the drain that interrupts it,
        // yet short enough that the resumed run below completes under
        // TSan within awaitJob's bound.
        svc::JobSpec slow = bfsSpec();
        slow.algorithm = algo::AlgorithmId::Pr;
        slow.iterations = 300;
        auto admitted = service.submit(slow);
        ASSERT_TRUE(admitted.ok()) << admitted.status().toString();

        // The queue is full (1/1): a distinct job is rejected with the
        // typed resource error, not queued unboundedly.
        auto rejected = service.submit(bfsSpec());
        ASSERT_FALSE(rejected.ok());
        EXPECT_EQ(rejected.status().code(), ErrorCode::Resource);
        EXPECT_EQ(service.stats().rejected, 1u);

        // SIGTERM path: drain stops the in-flight run at its next check
        // boundary; the job is recorded as stopped, not lost.
        service.drain();
        auto stopped = service.poll(admitted.value().id);
        ASSERT_TRUE(stopped.ok());
        EXPECT_EQ(stopped.value().state, svc::JobState::Failed);
        EXPECT_EQ(stopped.value().record.status, "stopped");

        // ...and left a resumable checkpoint behind.
        bool found = false;
        for (const auto &entry :
             std::filesystem::directory_iterator(ckpt_dir))
            found |= entry.path().extension() == ".ckpt";
        EXPECT_TRUE(found) << "no checkpoint written under " << ckpt_dir;

        // A draining service refuses new work.
        auto late = service.submit(bfsSpec());
        ASSERT_FALSE(late.ok());
        EXPECT_EQ(late.status().code(), ErrorCode::Resource);
    }

    // A fresh service (fresh daemon) with the same checkpoint dir picks
    // the job up from the checkpoint and completes it.
    sim::clearStopRequest();
    svc::ServiceConfig config;
    config.workers = 1;
    config.maxQueue = 1;
    config.checkpointDir = ckpt_dir;
    svc::SimService service(config);
    svc::JobSpec slow = bfsSpec();
    slow.algorithm = algo::AlgorithmId::Pr;
    slow.iterations = 300;
    auto resumed = service.submit(slow);
    ASSERT_TRUE(resumed.ok()) << resumed.status().toString();
    const svc::JobView done = awaitJob(service, resumed.value().id);
    EXPECT_EQ(done.state, svc::JobState::Done);
    EXPECT_EQ(done.record.status, "ok");
    EXPECT_EQ(done.record.iterations, 300u);
}

// ---------------------------------------------------------------------
// Server: request dispatch and the socket end-to-end path.
// ---------------------------------------------------------------------

TEST_F(SvcTest, HandleLineSpeaksTheProtocol)
{
    svc::ServerConfig config;
    config.service.workers = 1;
    svc::Server server(config);

    const std::string bad = server.handleLine("{\"op\":\"nope\"}");
    EXPECT_NE(bad.find("\"ok\":false"), std::string::npos) << bad;
    EXPECT_NE(bad.find("\"error\":\"config\""), std::string::npos) << bad;

    const std::string submit = server.handleLine(
        R"({"op":"submit","algorithm":"bfs","dataset":"FR"})");
    EXPECT_NE(submit.find("\"ok\":true"), std::string::npos) << submit;
    EXPECT_NE(submit.find("\"job\":\"j1\""), std::string::npos) << submit;

    const std::string stats = server.handleLine("{\"op\":\"statsz\"}");
    EXPECT_TRUE(common::parseJson(stats).ok()) << stats;
    EXPECT_NE(stats.find("\"submitted\":1"), std::string::npos) << stats;

    const std::string bye = server.handleLine("{\"op\":\"shutdown\"}");
    EXPECT_NE(bye.find("draining"), std::string::npos) << bye;
    server.service().drain();
}

TEST_F(SvcTest, SocketRoundTripAndShutdown)
{
    svc::ServerConfig config;
    config.socketPath = (scratch / "svc_test.sock").string();
    config.service.workers = 1;
    svc::Server server(config);
    std::thread serve_thread([&] {
        const Status s = server.serve();
        EXPECT_TRUE(s.ok()) << s.toString();
    });

    // The listener may not be bound yet; retry the connect briefly.
    Result<common::LineChannel> chan =
        Status::failure(ErrorCode::Internal, "never connected");
    for (int i = 0; i < 100 && !chan.ok(); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        chan = common::connectUnix(config.socketPath, 1000);
    }
    ASSERT_TRUE(chan.ok()) << chan.status().toString();

    ASSERT_TRUE(chan.value()
                    .writeLine(R"({"op":"submit","algorithm":"bfs",)"
                               R"("dataset":"FR"})")
                    .ok());
    std::string response;
    ASSERT_TRUE(chan.value().readLine(response, 30'000).ok());
    EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;

    // In-band shutdown: the daemon answers, then drains and exits.
    ASSERT_TRUE(chan.value().writeLine("{\"op\":\"shutdown\"}").ok());
    ASSERT_TRUE(chan.value().readLine(response, 30'000).ok());
    EXPECT_NE(response.find("draining"), std::string::npos) << response;
    chan.value().close();
    serve_thread.join();
    // The socket file is unlinked on a clean exit.
    EXPECT_FALSE(std::filesystem::exists(config.socketPath));
}

TEST_F(SvcTest, SecondListenerOnLiveSocketIsRefused)
{
    common::UnixListener first;
    const std::string path = (scratch / "dup.sock").string();
    ASSERT_TRUE(first.bind(path).ok());
    common::UnixListener second;
    const Status s = second.bind(path);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::Resource);
}

// ---------------------------------------------------------------------
// Bugfix regressions: checked numeric parsing everywhere.
// ---------------------------------------------------------------------

TEST(SvcParse, RequireU64RejectsGarbageWithTypedError)
{
    EXPECT_EQ(common::requireU64("--pes", "8"), 8u);
    // Bare std::stoul accepted "10x" (and crashed the old CLI on "abc"
    // with an uncaught std::invalid_argument); now each is ConfigError.
    EXPECT_TYPED_ERROR(common::requireU64("--pes", "abc"), ConfigError,
                       "not a decimal number");
    EXPECT_TYPED_ERROR(common::requireU64("--pes", "10x"), ConfigError,
                       "trailing garbage after number");
    EXPECT_TYPED_ERROR(common::requireU64("--pes", "-1"), ConfigError,
                       "sign not allowed");
    EXPECT_TYPED_ERROR(common::requireU64("--pes", "+1"), ConfigError,
                       "sign not allowed");
    EXPECT_TYPED_ERROR(common::requireU64("--pes", " 1"), ConfigError, "");
    EXPECT_TYPED_ERROR(common::requireU64("--pes", ""), ConfigError, "");
    EXPECT_TYPED_ERROR(
        common::requireU64("--pes", "99999999999999999999999"), ConfigError,
        "");
    EXPECT_TYPED_ERROR(common::requireU64("--pes", "0", 1), ConfigError, "");
    EXPECT_TYPED_ERROR(common::requireU64("--pes", "200", 1, 100),
                       ConfigError, "");
}

TEST(SvcParse, EnvKnobsFallBackInsteadOfWrapping)
{
    // GDS_CELL_RETRIES=-1 used to strtoul-wrap to ~4 billion retries.
    ::setenv("GDS_CELL_RETRIES", "-1", 1);
    EXPECT_EQ(harness::cellRetryLimit(), 2u);
    ::setenv("GDS_CELL_RETRIES", "7", 1);
    EXPECT_EQ(harness::cellRetryLimit(), 7u);
    ::unsetenv("GDS_CELL_RETRIES");

    ::setenv("GDS_CELL_BUDGET", "50x", 1);
    EXPECT_EQ(harness::cellCycleBudget(), 50'000'000'000ULL);
    ::unsetenv("GDS_CELL_BUDGET");

    ::setenv("GDS_CELL_WALL_BUDGET", "2.5s", 1);
    EXPECT_DOUBLE_EQ(harness::cellWallBudgetSeconds(), 0.0);
    ::setenv("GDS_CELL_WALL_BUDGET", "2.5", 1);
    EXPECT_DOUBLE_EQ(harness::cellWallBudgetSeconds(), 2.5);
    ::unsetenv("GDS_CELL_WALL_BUDGET");

    // GDS_JOBS=-1 must not become ~4 billion workers.
    ::setenv("GDS_JOBS", "-1", 1);
    const unsigned jobs = harness::jobCount();
    EXPECT_GE(jobs, 1u);
    EXPECT_LE(jobs, 4096u);
    ::unsetenv("GDS_JOBS");
}

TEST(SvcParse, ScaleDivisorRejectsTrailingGarbage)
{
    ::setenv("GDS_SCALE", "64abc", 1);
    EXPECT_EQ(graph::datasetScaleDivisor(), 16u);
    ::setenv("GDS_SCALE", "64", 1);
    EXPECT_EQ(graph::datasetScaleDivisor(), 64u);
    ::unsetenv("GDS_SCALE");
}

// ---------------------------------------------------------------------
// Bugfix regression: GDS_PERFECT_MEM is run-scoped.
// ---------------------------------------------------------------------

TEST(SvcPerfectMem, EnvFlagIsResolvedOncePerRun)
{
    const graph::Csr g = graph::rmat(10, 8, 42, {}, false);
    auto run_once = [&] {
        auto a = algo::makeAlgorithm(algo::AlgorithmId::Bfs);
        core::GdsConfig cfg;
        core::GdsAccel accel(cfg, g, *a);
        core::RunOptions options;
        options.source = algo::defaultSource(g);
        return accel.run(options);
    };

    // Old bug: dispatchChunk() latched GDS_PERFECT_MEM in a
    // function-local static on the *first* run, while the quiescence
    // predicate re-read it every run — flipping the env mid-process
    // made the two halves of the scatter path disagree. Now the flag
    // is resolved once at run() entry, so each run is self-consistent
    // and later runs fully track the current environment.
    ::setenv("GDS_PERFECT_MEM", "1", 1);
    const auto perfect_first = run_once();
    ::unsetenv("GDS_PERFECT_MEM");
    const auto normal = run_once();
    ::setenv("GDS_PERFECT_MEM", "1", 1);
    const auto perfect_again = run_once();
    ::unsetenv("GDS_PERFECT_MEM");

    ASSERT_TRUE(perfect_first.completed());
    ASSERT_TRUE(normal.completed());
    ASSERT_TRUE(perfect_again.completed());
    // Same env -> identical simulation, even with a differing run in
    // between (the static would have made run 2 inherit run 1's value).
    EXPECT_EQ(perfect_first.cycles, perfect_again.cycles);
    EXPECT_EQ(perfect_first.memoryBytes, perfect_again.memoryBytes);
    // Perfect memory must actually change the timing model.
    EXPECT_NE(perfect_first.cycles, normal.cycles);
    // Results (vertex properties) are timing-independent.
    EXPECT_EQ(perfect_first.properties, normal.properties);
}

// ---------------------------------------------------------------------
// Observability: log formats, metrics, progress streams, job spans.
// ---------------------------------------------------------------------

TEST(SvcLog, HumanFormatMatchesHistoricalLinesWhenUnstructured)
{
    // Empty subsystem + no fields is byte-identical to what the legacy
    // warn()/inform() macros always printed — scripts grepping daemon
    // stderr (CI's svc-smoke among them) must keep working.
    EXPECT_EQ(log::formatHuman(log::Level::Warn, "", "queue full", {}),
              "warn: queue full");
    EXPECT_EQ(log::formatHuman(log::Level::Info, "svc", "job admitted",
                               {{"job", "j1"}, {"key", "gds|BFS|FR"}}),
              "info: [svc] job admitted (job=j1, key=gds|BFS|FR)");
}

TEST(SvcLog, JsonFormatRoundTripsThroughTheParser)
{
    const std::string line = log::formatJson(
        log::Level::Error, "svc", "job failed: \"tilt\"\nline two",
        {{"job", "j9"}, {"configHash", "964470a381724da7"}});
    auto parsed = common::parseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    const common::JsonValue &obj = parsed.value();
    ASSERT_TRUE(obj.isObject());
    EXPECT_EQ(obj.find("level")->asString(), "error");
    EXPECT_EQ(obj.find("subsys")->asString(), "svc");
    // Quotes and newlines survive the escape/parse round trip.
    EXPECT_EQ(obj.find("msg")->asString(), "job failed: \"tilt\"\nline two");
    EXPECT_EQ(obj.find("job")->asString(), "j9");
    EXPECT_EQ(obj.find("configHash")->asString(), "964470a381724da7");

    // The subsys member is omitted entirely when empty.
    const std::string bare =
        log::formatJson(log::Level::Info, "", "hello", {});
    auto bare_parsed = common::parseJson(bare);
    ASSERT_TRUE(bare_parsed.ok()) << bare;
    EXPECT_EQ(bare_parsed.value().find("subsys"), nullptr);
}

TEST_F(SvcTest, MetricszAgreesWithStatsz)
{
    svc::ServiceConfig config;
    config.workers = 2;
    config.maxQueue = 4;
    svc::SimService service(config);

    auto first = service.submit(bfsSpec());
    ASSERT_TRUE(first.ok()) << first.status().toString();
    awaitJob(service, first.value().id);
    auto second = service.submit(bfsSpec());
    ASSERT_TRUE(second.ok());
    EXPECT_TRUE(second.value().cached);

    // Every number /statsz reports must appear, equal, in /metricsz —
    // two views over one registry, not two counters that can drift.
    const svc::ServiceStats stats = service.stats();
    const std::string text = service.metricsText();
    auto expect_line = [&](const std::string &needle) {
        EXPECT_NE(text.find(needle + "\n"), std::string::npos)
            << "missing '" << needle << "' in:\n" << text;
    };
    expect_line("gds_svc_submitted_total " +
                std::to_string(stats.submitted));
    expect_line("gds_svc_admitted_total " + std::to_string(stats.admitted));
    expect_line("gds_svc_admission_rejected_total " +
                std::to_string(stats.rejected));
    expect_line("gds_svc_cache_hits_total " +
                std::to_string(stats.cacheHits));
    expect_line("gds_svc_cache_lookups_total " +
                std::to_string(stats.cacheLookups));
    expect_line("gds_svc_jobs_total{outcome=\"ok\"} 1");
    expect_line("gds_svc_jobs_total{outcome=\"cached\"} 1");
    expect_line("gds_svc_queue_depth 0");
    expect_line("gds_svc_e2e_latency_seconds_count 1");
    expect_line("gds_svc_queue_wait_seconds_count 1");
    expect_line("gds_svc_run_seconds_count 1");
    // The RSS gauges read /proc at scrape time; assert presence, not value.
    EXPECT_NE(text.find("gds_process_resident_memory_bytes "),
              std::string::npos);
    EXPECT_NE(text.find("gds_process_peak_resident_memory_bytes "),
              std::string::npos);

    // statsz percentiles come from the same bounded histogram.
    EXPECT_GT(stats.latencyP50, 0.0);
    EXPECT_LE(stats.latencyP50, stats.latencyMax * 2.0 + 1.0);
}

TEST_F(SvcTest, ProgressSinceStreamsLifecycleEvents)
{
    svc::ServiceConfig config;
    config.workers = 1;
    svc::SimService service(config);
    EXPECT_EQ(service.progressSince("j404", 0, 10).status().code(),
              ErrorCode::Config);

    svc::JobSpec spec = bfsSpec();
    spec.progressInterval = 100; // tiny FR runs a few thousand cycles
    auto admitted = service.submit(spec);
    ASSERT_TRUE(admitted.ok()) << admitted.status().toString();
    const std::string id = admitted.value().id;

    std::vector<svc::ProgressEvent> events;
    std::uint64_t after = 0;
    for (int i = 0;
         i < 600 && (events.empty() || !events.back().terminal); ++i) {
        auto batch = service.progressSince(id, after, 100);
        ASSERT_TRUE(batch.ok()) << batch.status().toString();
        for (svc::ProgressEvent &event : batch.value()) {
            EXPECT_GT(event.seq, after);
            after = event.seq;
            events.push_back(std::move(event));
        }
    }
    ASSERT_FALSE(events.empty());
    ASSERT_TRUE(events.back().terminal);

    EXPECT_NE(events.front().line.find("\"event\":\"start\""),
              std::string::npos)
        << events.front().line;
    std::size_t progress_seen = 0;
    double last_cycle = -1.0;
    for (std::size_t i = 1; i + 1 < events.size(); ++i) {
        auto parsed = common::parseJson(events[i].line);
        ASSERT_TRUE(parsed.ok()) << events[i].line;
        EXPECT_EQ(parsed.value().find("event")->asString(), "progress");
        const double cycle = parsed.value().find("cycle")->asNumber();
        EXPECT_GT(cycle, last_cycle);
        last_cycle = cycle;
        ++progress_seen;
    }
    EXPECT_GE(progress_seen, 1u);

    auto done = common::parseJson(events.back().line);
    ASSERT_TRUE(done.ok()) << events.back().line;
    EXPECT_EQ(done.value().find("event")->asString(), "done");
    EXPECT_EQ(done.value().find("state")->asString(), "done");
    ASSERT_NE(done.value().find("record"), nullptr);
    EXPECT_EQ(done.value().find("record")->find("status")->asString(),
              "ok");

    // A late subscriber (after completion) still gets the whole retained
    // stream from seq 0 — poll/watch of finished jobs is not a race.
    auto replay = service.progressSince(id, 0, 10);
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(replay.value().size(), events.size());
}

/**
 * The acceptance path of the observability stack, end to end over real
 * sockets: submit -> subscribe -> streamed progress events -> completion,
 * then /metricsz exposes the job in the right outcome counter and
 * latency-histogram bucket, and the daemon trace holds the full
 * queue/load/sim/validate/store span chain for the job.
 */
TEST_F(SvcTest, ObservabilityEndToEndOverTheSocket)
{
    svc::ServerConfig config;
    config.socketPath = (scratch / "e2e.sock").string();
    config.metricsSocketPath = (scratch / "e2e_metrics.sock").string();
    config.service.workers = 1;
    config.service.tracePath = (scratch / "e2e_trace.json").string();
    svc::Server server(config);
    std::thread serve_thread([&] {
        const Status s = server.serve();
        EXPECT_TRUE(s.ok()) << s.toString();
    });

    auto connect = [&](const std::string &path) {
        Result<common::LineChannel> chan =
            Status::failure(ErrorCode::Internal, "never connected");
        for (int i = 0; i < 100 && !chan.ok(); ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            chan = common::connectUnix(path, 1000);
        }
        return chan;
    };

    auto chan = connect(config.socketPath);
    ASSERT_TRUE(chan.ok()) << chan.status().toString();
    ASSERT_TRUE(chan.value()
                    .writeLine(R"({"op":"submit","algorithm":"bfs",)"
                               R"("dataset":"FR","progress_interval":200})")
                    .ok());
    std::string line;
    ASSERT_TRUE(chan.value().readLine(line, 30'000).ok());
    ASSERT_NE(line.find("\"ok\":true"), std::string::npos) << line;
    ASSERT_NE(line.find("\"job\":\"j1\""), std::string::npos) << line;

    // Subscribe on the same connection: ack, then pushed events through
    // the terminal "done".
    ASSERT_TRUE(
        chan.value().writeLine(R"({"op":"subscribe","job":"j1"})").ok());
    ASSERT_TRUE(chan.value().readLine(line, 30'000).ok());
    ASSERT_NE(line.find("\"subscribed\":true"), std::string::npos) << line;

    std::vector<std::string> events;
    for (int i = 0; i < 600; ++i) {
        ASSERT_TRUE(chan.value().readLine(line, 30'000).ok());
        events.push_back(line);
        if (line.find("\"event\":\"done\"") != std::string::npos)
            break;
    }
    ASSERT_GE(events.size(), 3u) << "start + >=1 progress + done";
    EXPECT_NE(events.front().find("\"event\":\"start\""),
              std::string::npos);
    EXPECT_NE(events[1].find("\"event\":\"progress\""), std::string::npos);
    auto done = common::parseJson(events.back());
    ASSERT_TRUE(done.ok()) << events.back();
    EXPECT_EQ(done.value().find("state")->asString(), "done");
    const double latency =
        done.value().find("latency_seconds")->asNumber();
    const std::string config_hash =
        done.value().find("record")->find("configHash")->asString();
    EXPECT_GT(latency, 0.0);

    // A second subscriber that disconnects mid-stream must not wedge
    // anything (unsubscribe-by-close).
    {
        auto sub2 = connect(config.socketPath);
        ASSERT_TRUE(sub2.ok());
        ASSERT_TRUE(sub2.value()
                        .writeLine(R"({"op":"subscribe","job":"j1"})")
                        .ok());
        ASSERT_TRUE(sub2.value().readLine(line, 30'000).ok());
        sub2.value().close();
    }

    // Scrape the Prometheus socket: one exposition per connection.
    auto scrape = connect(config.metricsSocketPath);
    ASSERT_TRUE(scrape.ok()) << scrape.status().toString();
    std::string exposition;
    while (scrape.value().readLine(line, 5000).ok())
        exposition += line + "\n";
    EXPECT_NE(exposition.find("gds_svc_jobs_total{outcome=\"ok\"} 1\n"),
              std::string::npos)
        << exposition;
    EXPECT_NE(exposition.find("gds_svc_e2e_latency_seconds_count 1\n"),
              std::string::npos);

    // The latency histogram puts the job in the right bucket: every
    // finite bound below the observed latency has cumulative count 0,
    // every bound at/above it has count 1.
    std::istringstream lines(exposition);
    const std::string bucket_prefix =
        "gds_svc_e2e_latency_seconds_bucket{le=\"";
    std::size_t buckets_checked = 0;
    for (std::string l; std::getline(lines, l);) {
        if (l.compare(0, bucket_prefix.size(), bucket_prefix) != 0)
            continue;
        const std::size_t quote = l.find('"', bucket_prefix.size());
        ASSERT_NE(quote, std::string::npos) << l;
        const std::string bound = l.substr(
            bucket_prefix.size(), quote - bucket_prefix.size());
        const std::uint64_t cumulative =
            std::stoull(l.substr(quote + 2));
        if (bound == "+Inf") {
            EXPECT_EQ(cumulative, 1u) << l;
        } else {
            EXPECT_EQ(cumulative, latency <= std::stod(bound) ? 1u : 0u)
                << l << " (latency " << latency << ")";
        }
        ++buckets_checked;
    }
    EXPECT_GE(buckets_checked, 2u);

    // Drain; the daemon writes its span trace on the way out.
    ASSERT_TRUE(chan.value().writeLine("{\"op\":\"shutdown\"}").ok());
    ASSERT_TRUE(chan.value().readLine(line, 30'000).ok());
    chan.value().close();
    serve_thread.join();

    // The trace is Chrome trace-event JSON with one named track per job;
    // j1's track must carry the full span chain plus the configHash link
    // back to the per-run simulator trace.
    std::ifstream trace_in(config.service.tracePath);
    ASSERT_TRUE(trace_in.good()) << config.service.tracePath;
    std::stringstream buffer;
    buffer << trace_in.rdbuf();
    auto trace = common::parseJson(buffer.str());
    ASSERT_TRUE(trace.ok()) << trace.status().toString();
    const common::JsonValue *trace_events =
        trace.value().find("traceEvents");
    ASSERT_NE(trace_events, nullptr);
    ASSERT_TRUE(trace_events->isArray());

    double job_tid = -1;
    for (const common::JsonValue &event : trace_events->asArray()) {
        const common::JsonValue *ph = event.find("ph");
        if (ph && ph->asString() == "M" &&
            event.find("name")->asString() == "thread_name" &&
            event.find("args")->find("name")->asString() == "j1")
            job_tid = event.find("tid")->asNumber();
    }
    ASSERT_GE(job_tid, 0.0) << "no trace track for j1";

    std::vector<std::string> spans;
    bool saw_config_hash = false;
    for (const common::JsonValue &event : trace_events->asArray()) {
        const common::JsonValue *tid = event.find("tid");
        if (!tid || tid->asNumber() != job_tid)
            continue;
        const std::string ph = event.find("ph")->asString();
        if (ph == "B")
            spans.push_back(event.find("name")->asString());
        if (ph == "i" &&
            event.find("name")->asString() == "configHash") {
            saw_config_hash = true;
            EXPECT_EQ(event.find("args")->find("detail")->asString(),
                      config_hash);
        }
    }
    EXPECT_EQ(spans, (std::vector<std::string>{"queue", "load", "sim",
                                               "validate", "store"}));
    EXPECT_TRUE(saw_config_hash);
}

} // namespace
