/**
 * @file
 * Tests for gds-lint: every rule demonstrated against a planted fixture
 * (one violating file and one suppressed file per rule under
 * tests/lint_fixtures), the suppression-directive semantics, the
 * text/JSON renderers, the exit-code contract, and the self-check that
 * the real tree is lint-clean.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hh"

namespace gds::lint
{
namespace
{

const std::string repoRoot = GDS_SOURCE_ROOT;
const std::string fixtureRoot = repoRoot + "/tests/lint_fixtures";

/** Lint one fixture file, scoping rules against the fixture tree. */
LintResult
lintFixture(const std::string &rel)
{
    return lintPaths({fixtureRoot + "/" + rel}, fixtureRoot);
}

/** "rule@line" signatures, in reported order. */
std::vector<std::string>
signatures(const LintResult &result)
{
    std::vector<std::string> sigs;
    for (const Diagnostic &d : result.diagnostics)
        sigs.push_back(d.rule + "@" + std::to_string(d.line));
    return sigs;
}

TEST(LintRules, KnownRuleSetIsStable)
{
    const std::vector<std::string> expected = {
        "no-naked-assert",
        "no-raw-stderr",
        "no-unseeded-rng",
        "no-float-eq",
        "header-hygiene",
        "component-hooks",
        "checkpoint-hooks",
        "checkpoint-field-coverage",
        "save-restore-symmetry",
        "env-knob-discipline",
        "no-raw-cerr-logging",
    };
    EXPECT_EQ(knownRules(), expected);
}

// --- R1: no-naked-assert -------------------------------------------------

TEST(LintRules, NakedAssertFlagged)
{
    const LintResult r = lintFixture("src/algo/bad_assert.cc");
    ASSERT_EQ(signatures(r),
              (std::vector<std::string>{"no-naked-assert@7",
                                        "no-naked-assert@8"}));
    EXPECT_NE(r.diagnostics[0].message.find("compiled out under NDEBUG"),
              std::string::npos);
    EXPECT_NE(r.diagnostics[1].message.find("typed SimError"),
              std::string::npos);
}

TEST(LintRules, NakedAssertSuppressed)
{
    EXPECT_TRUE(lintFixture("src/algo/ok_assert.cc").clean());
}

// --- R2: no-raw-stderr ---------------------------------------------------

TEST(LintRules, RawStderrFlagged)
{
    // The std::cerr stream on line 9 violates both R2 and R11; the raw
    // stderr handle on line 10 only R2.
    const LintResult r = lintFixture("src/graph/bad_stderr.cc");
    EXPECT_EQ(signatures(r),
              (std::vector<std::string>{"no-raw-cerr-logging@9",
                                        "no-raw-stderr@9",
                                        "no-raw-stderr@10"}));
}

TEST(LintRules, RawStderrSuppressedByWrappedOwnLineDirective)
{
    EXPECT_TRUE(lintFixture("src/graph/ok_stderr.cc").clean());
}

// --- R11: no-raw-cerr-logging --------------------------------------------

TEST(LintRules, RawCerrLoggingFlaggedInsideR2CarveOut)
{
    // The fixture lives under src/common/logging…, where R2 is scoped
    // out — only R11 fires, proving the rules compose rather than alias.
    const LintResult r = lintFixture("src/common/logging_bad_cerr.cc");
    EXPECT_EQ(signatures(r),
              (std::vector<std::string>{"no-raw-cerr-logging@10"}));
    EXPECT_NE(r.diagnostics[0].message.find("mutex-serialized"),
              std::string::npos);
}

TEST(LintRules, RawCerrLoggingSuppressed)
{
    EXPECT_TRUE(lintFixture("src/common/logging_ok_cerr.cc").clean());
}

// --- R3: no-unseeded-rng -------------------------------------------------

TEST(LintRules, UnseededRngFlagged)
{
    const LintResult r = lintFixture("src/graph/bad_rng.cc");
    ASSERT_EQ(signatures(r),
              (std::vector<std::string>{"no-unseeded-rng@9",
                                        "no-unseeded-rng@10",
                                        "no-unseeded-rng@11"}));
    EXPECT_NE(r.diagnostics[0].message.find(
                  "default-constructed std::mt19937"),
              std::string::npos);
    EXPECT_NE(r.diagnostics[1].message.find("std::random_device"),
              std::string::npos);
    EXPECT_NE(r.diagnostics[2].message.find("rand()"), std::string::npos);
}

TEST(LintRules, UnseededRngSuppressed)
{
    EXPECT_TRUE(lintFixture("src/graph/ok_rng.cc").clean());
}

// --- R4: no-float-eq -----------------------------------------------------

TEST(LintRules, FloatEqualityFlagged)
{
    const LintResult r = lintFixture("src/energy/bad_float_eq.cc");
    EXPECT_EQ(signatures(r),
              (std::vector<std::string>{"no-float-eq@7", "no-float-eq@7"}));
}

TEST(LintRules, FloatEqualitySuppressed)
{
    EXPECT_TRUE(lintFixture("src/energy/ok_float_eq.cc").clean());
}

TEST(LintRules, FloatEqualityScopedToEnergyAndStats)
{
    // The identical content outside src/energy and src/stats is legal.
    const std::string body = "bool f(double a, double b)\n"
                             "{ return a == b; }\n";
    EXPECT_TRUE(lintBuffer("x.cc", "src/algo/x.cc", body).empty());
    EXPECT_FALSE(lintBuffer("x.cc", "src/stats/x.cc", body).empty());
}

// --- R5: header-hygiene --------------------------------------------------

TEST(LintRules, HeaderHygieneFlagged)
{
    const LintResult r = lintFixture("src/core/bad_header.hh");
    ASSERT_EQ(signatures(r),
              (std::vector<std::string>{"header-hygiene@1",
                                        "header-hygiene@4"}));
    EXPECT_EQ(r.diagnostics[0].message, "header lacks #pragma once");
    EXPECT_TRUE(r.diagnostics[0].fileLevel);
    EXPECT_NE(r.diagnostics[1].message.find("using namespace"),
              std::string::npos);
}

TEST(LintRules, HeaderHygieneSuppressedFileLevel)
{
    EXPECT_TRUE(lintFixture("src/core/ok_header.hh").clean());
}

// --- R6: component-hooks -------------------------------------------------

TEST(LintRules, ComponentHooksFlagged)
{
    const LintResult r = lintFixture("src/core/bad_component.hh");
    ASSERT_EQ(signatures(r),
              (std::vector<std::string>{"component-hooks@8"}));
    EXPECT_NE(r.diagnostics[0].message.find("'SilentWidget'"),
              std::string::npos);
    // Overriding busy() also makes nextEventCycle() mandatory.
    EXPECT_NE(r.diagnostics[0].message.find(
                  "debugState(), activityCounter() and nextEventCycle()"),
              std::string::npos);
    // busy() is overridden in the fixture, so it is not reported.
    EXPECT_EQ(r.diagnostics[0].message.find("busy()"), std::string::npos);
}

TEST(LintRules, ComponentHooksActivityCounterFlagged)
{
    const LintResult r = lintFixture("src/core/bad_activity.hh");
    ASSERT_EQ(signatures(r),
              (std::vector<std::string>{"component-hooks@8"}));
    EXPECT_NE(r.diagnostics[0].message.find("'MuteWidget'"),
              std::string::npos);
    // Both watchdog hooks exist; the telemetry hook and (because busy()
    // is overridden) the fast-forward horizon are missing.
    EXPECT_NE(r.diagnostics[0].message.find(
                  "activityCounter() and nextEventCycle()"),
              std::string::npos);
    EXPECT_EQ(r.diagnostics[0].message.find("busy()"), std::string::npos);
    EXPECT_EQ(r.diagnostics[0].message.find("debugState()"),
              std::string::npos);
}

TEST(LintRules, ComponentHooksNextEventCycleFlagged)
{
    const LintResult r = lintFixture("src/core/bad_next_event.hh");
    ASSERT_EQ(signatures(r),
              (std::vector<std::string>{"component-hooks@9"}));
    EXPECT_NE(r.diagnostics[0].message.find("'SluggishWidget'"),
              std::string::npos);
    // Every diagnostic hook exists; only the fast-forward horizon that
    // the busy() override requires is missing.
    EXPECT_NE(r.diagnostics[0].message.find("nextEventCycle()"),
              std::string::npos);
    EXPECT_EQ(r.diagnostics[0].message.find("activityCounter()"),
              std::string::npos);
    EXPECT_EQ(r.diagnostics[0].message.find("debugState()"),
              std::string::npos);
}

TEST(LintRules, ComponentHooksSuppressed)
{
    EXPECT_TRUE(lintFixture("src/core/ok_component.hh").clean());
}

// --- R7: checkpoint-hooks ------------------------------------------------

TEST(LintRules, CheckpointHooksFlagged)
{
    const LintResult r = lintFixture("src/core/bad_checkpoint.hh");
    ASSERT_EQ(signatures(r),
              (std::vector<std::string>{"checkpoint-hooks@9"}));
    EXPECT_NE(r.diagnostics[0].message.find("'ForgetfulWidget'"),
              std::string::npos);
    // Both halves of the serialization pair are missing.
    EXPECT_NE(r.diagnostics[0].message.find(
                  "saveState() and restoreState()"),
              std::string::npos);
}

TEST(LintRules, CheckpointHooksSatisfiedByDeclarationPair)
{
    // The R6 fixtures declare the pair, so they trip only their own rule;
    // an in-memory subclass with just one half names the missing other.
    const std::string body =
        "class HalfWidget : public sim::Component\n"
        "{\n"
        "  public:\n"
        "    bool busy() const override { return false; }\n"
        "    std::string debugState() const override { return \"\"; }\n"
        "    std::uint64_t activityCounter() const override { return 0; }\n"
        "    Cycle nextEventCycle() const override { return 1; }\n"
        "    void saveState(sim::Serializer &s) const override;\n"
        "};\n";
    const auto diags = lintBuffer("x.hh", "src/core/x.hh", body);
    // header-hygiene (no pragma once) plus the missing restoreState().
    bool found = false;
    for (const auto &d : diags) {
        if (d.rule == "checkpoint-hooks") {
            found = true;
            EXPECT_NE(d.message.find("restoreState()"), std::string::npos);
            EXPECT_EQ(d.message.find("saveState() and"), std::string::npos);
        }
    }
    EXPECT_TRUE(found);
}

// --- R8: checkpoint-field-coverage ---------------------------------------

TEST(LintModel, UnserializedFieldsFlagged)
{
    const LintResult r = lintFixture("src/core/bad_ckpt_field.hh");
    ASSERT_EQ(signatures(r),
              (std::vector<std::string>{"checkpoint-field-coverage@29",
                                        "checkpoint-field-coverage@30"}));
    // 'halfway' is written but never restored; 'lost' appears in neither.
    EXPECT_NE(r.diagnostics[0].message.find("'halfway'"),
              std::string::npos);
    EXPECT_NE(r.diagnostics[0].message.find("never read back"),
              std::string::npos);
    EXPECT_NE(r.diagnostics[1].message.find("'lost'"), std::string::npos);
    EXPECT_NE(r.diagnostics[1].message.find("neither"), std::string::npos);
}

TEST(LintModel, SkipDirectiveAndStatsFieldsExempt)
{
    // ok_ckpt.hh: full coverage, a justified gds-ckpt skip, and a
    // stats:: member the Component base serializes.
    EXPECT_TRUE(lintFixture("src/core/ok_ckpt.hh").clean());
}

TEST(LintModel, CoverageAnalyzedAcrossFiles)
{
    // Class in a header, bodies out-of-line in the matching source: the
    // model stitches them together and anchors the R8 finding to the
    // field's declaration in the header.
    const std::string header =
        "#pragma once\n"
        "class SplitWidget : public sim::Component\n"
        "{\n"
        "  public:\n"
        "    bool busy() const override { return false; }\n"
        "    std::string debugState() const override { return \"\"; }\n"
        "    std::uint64_t activityCounter() const override { return 0; }\n"
        "    Cycle nextEventCycle() const override { return 1; }\n"
        "    void saveState(sim::Serializer &s) const override;\n"
        "    void restoreState(sim::Deserializer &d) override;\n"
        "  private:\n"
        "    std::uint64_t ticks = 0;\n"
        "    std::uint64_t dropped = 0;\n"
        "};\n";
    const std::string source =
        "#include \"split_widget.hh\"\n"
        "void SplitWidget::saveState(sim::Serializer &s) const\n"
        "{\n"
        "    s.writeU64(ticks);\n"
        "}\n"
        "void SplitWidget::restoreState(sim::Deserializer &d)\n"
        "{\n"
        "    ticks = d.readU64();\n"
        "}\n";
    const LintResult r = lintBuffers(
        {{"split_widget.hh", "src/core/split_widget.hh", header},
         {"split_widget.cc", "src/core/split_widget.cc", source}});
    ASSERT_EQ(r.diagnostics.size(), 1u);
    EXPECT_EQ(r.diagnostics[0].rule, "checkpoint-field-coverage");
    EXPECT_EQ(r.diagnostics[0].path, "split_widget.hh");
    EXPECT_EQ(r.diagnostics[0].line, 13u);
    EXPECT_NE(r.diagnostics[0].message.find("'dropped'"),
              std::string::npos);
}

TEST(LintModel, HeaderAloneWithoutBodiesIsNotFlagged)
{
    // Linting just the header must not false-positive: the hook bodies
    // live in the unseen source file, and R7 already polices existence.
    const std::string header =
        "#pragma once\n"
        "class SplitWidget : public sim::Component\n"
        "{\n"
        "  public:\n"
        "    bool busy() const override { return false; }\n"
        "    std::string debugState() const override { return \"\"; }\n"
        "    std::uint64_t activityCounter() const override { return 0; }\n"
        "    Cycle nextEventCycle() const override { return 1; }\n"
        "    void saveState(sim::Serializer &s) const override;\n"
        "    void restoreState(sim::Deserializer &d) override;\n"
        "  private:\n"
        "    std::uint64_t ticks = 0;\n"
        "};\n";
    EXPECT_TRUE(
        lintBuffer("x.hh", "src/core/x.hh", header).empty());
}

/** Read a fixture into memory so tests can mutate it. */
std::string
slurpFixture(const std::string &rel)
{
    std::ifstream in(fixtureRoot + "/" + rel, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Remove the first source line containing @p needle. */
std::string
deleteLineContaining(const std::string &text, const std::string &needle)
{
    std::istringstream in(text);
    std::ostringstream out;
    std::string line;
    bool deleted = false;
    while (std::getline(in, line)) {
        if (!deleted && line.find(needle) != std::string::npos) {
            deleted = true;
            continue;
        }
        out << line << "\n";
    }
    EXPECT_TRUE(deleted) << "mutation needle not found: " << needle;
    return out.str();
}

TEST(LintModel, MutationDeletingSaveLineTripsCoverage)
{
    // The gate guards itself: start from the R8/R9-clean fixture, delete
    // the one line that serializes 'credits' in saveState(), and the
    // coverage rule must fire.
    const std::string clean = slurpFixture("src/core/ok_ckpt.hh");
    ASSERT_TRUE(
        lintBuffer("ok_ckpt.hh", "src/core/ok_ckpt.hh", clean).empty());
    const std::string mutated =
        deleteLineContaining(clean, "s.writeU64(credits);");
    const auto diags =
        lintBuffer("ok_ckpt.hh", "src/core/ok_ckpt.hh", mutated);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "checkpoint-field-coverage");
    EXPECT_NE(diags[0].message.find("'credits'"), std::string::npos);
    EXPECT_NE(diags[0].message.find("never written by"),
              std::string::npos);
}

TEST(LintModel, MutationDeletingRestoreLineTripsCoverage)
{
    const std::string clean = slurpFixture("src/core/ok_ckpt.hh");
    const std::string mutated =
        deleteLineContaining(clean, "credits = d.readU64();");
    const auto diags =
        lintBuffer("ok_ckpt.hh", "src/core/ok_ckpt.hh", mutated);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "checkpoint-field-coverage");
    EXPECT_NE(diags[0].message.find("never read back"),
              std::string::npos);
}

// --- R9: save-restore-symmetry -------------------------------------------

TEST(LintModel, SwappedRestoreOrderFlagged)
{
    const LintResult r = lintFixture("src/core/bad_ckpt_order.hh");
    ASSERT_EQ(signatures(r),
              (std::vector<std::string>{"save-restore-symmetry@24"}));
    EXPECT_NE(r.diagnostics[0].message.find(
                  "saveState writes 'head' where restoreState reads "
                  "'tail'"),
              std::string::npos);
}

// --- R10: env-knob-discipline --------------------------------------------

TEST(LintRules, RawGdsGetenvFlagged)
{
    const LintResult r = lintFixture("src/core/bad_getenv.cc");
    ASSERT_EQ(signatures(r),
              (std::vector<std::string>{"env-knob-discipline@9"}));
    EXPECT_NE(r.diagnostics[0].message.find("GDS_TURBO"),
              std::string::npos);
    EXPECT_NE(r.diagnostics[0].message.find("common::parseEnvU64"),
              std::string::npos);
}

TEST(LintRules, NonGdsGetenvAndSuppressedReadAreClean)
{
    EXPECT_TRUE(lintFixture("src/core/ok_getenv.cc").clean());
}

TEST(LintRules, EnvKnobExemptInsideParseAndDebug)
{
    const std::string body = "#include <cstdlib>\n"
                             "bool f() { return std::getenv(\"GDS_X\"); }\n";
    EXPECT_TRUE(
        lintBuffer("parse.cc", "src/common/parse.cc", body).empty());
    EXPECT_TRUE(
        lintBuffer("debug.cc", "src/common/debug.cc", body).empty());
    EXPECT_FALSE(
        lintBuffer("other.cc", "src/common/other.cc", body).empty());
}

// --- gds-ckpt directive hygiene ------------------------------------------

TEST(LintModel, BadCkptDirectivesFlagged)
{
    const LintResult r = lintFixture("src/core/bad_ckpt_skip.hh");
    ASSERT_EQ(signatures(r),
              (std::vector<std::string>{"bad-suppression@9",
                                        "bad-suppression@31",
                                        "bad-suppression@34"}));
    EXPECT_NE(r.diagnostics[0].message.find(
                  "names no data member"),
              std::string::npos);
    EXPECT_NE(r.diagnostics[1].message.find("needs a justification"),
              std::string::npos);
    EXPECT_NE(r.diagnostics[2].message.find("stale"), std::string::npos);
}

// --- bad-suppression meta rule -------------------------------------------

TEST(LintRules, BadDirectivesFlagged)
{
    const LintResult r = lintFixture("src/core/bad_directive.cc");
    ASSERT_EQ(signatures(r),
              (std::vector<std::string>{"bad-suppression@3",
                                        "bad-suppression@6",
                                        "bad-suppression@9"}));
    EXPECT_NE(r.diagnostics[0].message.find("needs a justification"),
              std::string::npos);
    EXPECT_NE(r.diagnostics[1].message.find("unknown rule 'not-a-rule'"),
              std::string::npos);
    EXPECT_NE(r.diagnostics[2].message.find(
                  "'gds-lint: allow(<rule>) <justification>'"),
              std::string::npos);
}

// --- Suppression semantics on in-memory buffers --------------------------

TEST(LintSuppressions, ProseMentionOfDirectiveSyntaxIsNotADirective)
{
    const std::string body =
        "// Suppress with gds-lint: allow(no-raw-stderr) and a reason.\n"
        "int x = 1;\n";
    EXPECT_TRUE(lintBuffer("x.cc", "src/core/x.cc", body).empty());
}

TEST(LintSuppressions, OwnLineDirectiveDoesNotLeakPastNextCodeLine)
{
    const std::string body =
        "// gds-lint: allow(no-unseeded-rng) covers only the next line\n"
        "int unrelated = 0;\n"
        "int bad = rand();\n";
    const auto diags = lintBuffer("x.cc", "src/core/x.cc", body);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "no-unseeded-rng");
    EXPECT_EQ(diags[0].line, 3u);
}

TEST(LintSuppressions, UnterminatedAllowIsReported)
{
    const auto diags = lintBuffer(
        "x.cc", "src/core/x.cc",
        "// gds-lint: allow(no-float-eq broken directive\nint x = 1;\n");
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "bad-suppression");
    EXPECT_NE(diags[0].message.find("unterminated"), std::string::npos);
}

TEST(LintSuppressions, BlockCommentDirectiveWorks)
{
    const std::string body =
        "/* gds-lint: allow(no-unseeded-rng) fixture reason */\n"
        "int x = rand();\n";
    EXPECT_TRUE(lintBuffer("x.cc", "src/core/x.cc", body).empty());
}

// --- Renderers and exit codes --------------------------------------------

TEST(LintDriver, PrintsFileLineRuleMessage)
{
    const LintResult r = lintFixture("src/core/bad_header.hh");
    std::ostringstream os;
    printDiagnostics(r, os);
    const std::string expected_first = fixtureRoot +
        "/src/core/bad_header.hh:1: header-hygiene: "
        "header lacks #pragma once\n";
    EXPECT_EQ(os.str().substr(0, expected_first.size()), expected_first);
}

TEST(LintDriver, JsonSummaryCountsRules)
{
    const LintResult r = lintPaths({fixtureRoot}, fixtureRoot);
    std::ostringstream os;
    writeJsonSummary(r, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"files_scanned\": 24"), std::string::npos);
    EXPECT_NE(json.find("\"violations\": 27"), std::string::npos);
    EXPECT_NE(json.find("\"tool_errors\": 0"), std::string::npos);
    EXPECT_NE(json.find("\"no-naked-assert\": 2"), std::string::npos);
    EXPECT_NE(json.find("\"bad-suppression\": 6"), std::string::npos);
    EXPECT_NE(json.find("\"component-hooks\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"checkpoint-hooks\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"checkpoint-field-coverage\": 2"),
              std::string::npos);
    EXPECT_NE(json.find("\"save-restore-symmetry\": 1"),
              std::string::npos);
    EXPECT_NE(json.find("\"env-knob-discipline\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"no-raw-cerr-logging\": 2"), std::string::npos);
}

TEST(LintDriver, SarifLogHasToolRulesAndResults)
{
    const LintResult r = lintFixture("src/core/bad_ckpt_order.hh");
    std::ostringstream os;
    writeSarif(r, os);
    const std::string sarif = os.str();
    EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
    EXPECT_NE(sarif.find("\"name\": \"gds-lint\""), std::string::npos);
    // Every known rule is described in the driver metadata.
    for (const std::string &rule : knownRules())
        EXPECT_NE(sarif.find("\"id\": \"" + rule + "\""),
                  std::string::npos);
    // The one finding lands as a result with a physical location.
    EXPECT_NE(sarif.find("\"ruleId\": \"save-restore-symmetry\""),
              std::string::npos);
    EXPECT_NE(sarif.find("\"startLine\": 24"), std::string::npos);
    EXPECT_NE(sarif.find("bad_ckpt_order.hh"), std::string::npos);
}

TEST(LintDriver, FixtureTreeExitsOne)
{
    const LintResult r = lintPaths({fixtureRoot}, fixtureRoot);
    EXPECT_EQ(r.filesScanned, 24u);
    EXPECT_EQ(r.diagnostics.size(), 27u);
    EXPECT_EQ(exitCode(r), 1);
}

TEST(LintDriver, MissingPathExitsTwo)
{
    const LintResult r =
        lintPaths({repoRoot + "/no/such/path.cc"}, repoRoot);
    ASSERT_EQ(r.errors.size(), 1u);
    EXPECT_EQ(exitCode(r), 2);
}

TEST(LintDriver, CleanResultExitsZero)
{
    EXPECT_EQ(exitCode(LintResult{}), 0);
}

// --- Self-check: the real tree is lint-clean -----------------------------

TEST(LintSelfCheck, RepositoryTreeIsClean)
{
    const LintResult r = lintPaths({repoRoot + "/src", repoRoot + "/tools",
                                    repoRoot + "/tests",
                                    repoRoot + "/bench"},
                                   repoRoot);
    std::ostringstream os;
    printDiagnostics(r, os);
    EXPECT_TRUE(r.clean()) << os.str();
    EXPECT_EQ(exitCode(r), 0);
    // Walking tests/ must have skipped the planted fixtures.
    EXPECT_GT(r.filesScanned, 100u);
}

} // namespace
} // namespace gds::lint
