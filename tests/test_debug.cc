/**
 * @file
 * Tests for the debug-trace category infrastructure.
 */

#include <gtest/gtest.h>

#include "common/debug.hh"

namespace gds::debug
{
namespace
{

TEST(Debug, FlagsOffByDefault)
{
    setActiveFlags("");
    for (unsigned f = 0; f < static_cast<unsigned>(Flag::NumFlags); ++f)
        EXPECT_FALSE(enabled(static_cast<Flag>(f)));
}

TEST(Debug, SingleFlag)
{
    setActiveFlags("Dispatch");
    EXPECT_TRUE(enabled(Flag::Dispatch));
    EXPECT_FALSE(enabled(Flag::Prefetch));
    setActiveFlags("");
}

TEST(Debug, CommaList)
{
    setActiveFlags("Prefetch,Memory");
    EXPECT_TRUE(enabled(Flag::Prefetch));
    EXPECT_TRUE(enabled(Flag::Memory));
    EXPECT_FALSE(enabled(Flag::Reduce));
    setActiveFlags("");
}

TEST(Debug, AllEnablesEverything)
{
    setActiveFlags("All");
    for (unsigned f = 0; f < static_cast<unsigned>(Flag::NumFlags); ++f)
        EXPECT_TRUE(enabled(static_cast<Flag>(f)));
    setActiveFlags("");
}

TEST(Debug, UnknownTokensIgnored)
{
    setActiveFlags("Bogus,Reduce,AlsoBogus");
    EXPECT_TRUE(enabled(Flag::Reduce));
    EXPECT_FALSE(enabled(Flag::Dispatch));
    setActiveFlags("");
}

TEST(Debug, FlagNames)
{
    EXPECT_STREQ(flagName(Flag::Dispatch), "Dispatch");
    EXPECT_STREQ(flagName(Flag::Phase), "Phase");
}

TEST(Debug, DprintfCompilesAndIsSilentWhenOff)
{
    setActiveFlags("");
    DPRINTF(Dispatch, "this should not appear %d", 1);
    SUCCEED();
}

// --- Attribution context: cycle + component prefix -----------------------

TEST(Debug, TraceContextDefaultsAndRoundTrip)
{
    setTraceCycle(0);
    EXPECT_EQ(traceCycle(), 0u);
    EXPECT_EQ(traceComponent(), nullptr);
    setTraceCycle(1234);
    EXPECT_EQ(traceCycle(), 1234u);
    setTraceCycle(0);
}

TEST(Debug, ScopedTraceComponentNestsAndRestores)
{
    EXPECT_EQ(traceComponent(), nullptr);
    {
        const ScopedTraceComponent outer("accel");
        EXPECT_STREQ(traceComponent(), "accel");
        {
            const ScopedTraceComponent inner("accel.hbm");
            EXPECT_STREQ(traceComponent(), "accel.hbm");
        }
        EXPECT_STREQ(traceComponent(), "accel");
    }
    EXPECT_EQ(traceComponent(), nullptr);
}

TEST(Debug, EmittedLinesCarryCycleAndComponentPrefix)
{
    setActiveFlags("Dispatch");
    setTraceCycle(42);
    testing::internal::CaptureStderr();
    {
        const ScopedTraceComponent scope("accel.de");
        DPRINTF(Dispatch, "issued %d edges", 7);
    }
    const std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("42: accel.de: Dispatch"), std::string::npos);
    EXPECT_NE(out.find("issued 7 edges"), std::string::npos);
    setActiveFlags("");
    setTraceCycle(0);
}

TEST(Debug, UnattributedLinesFallBackToGlobal)
{
    setActiveFlags("Phase");
    setTraceCycle(0);
    testing::internal::CaptureStderr();
    DPRINTF(Phase, "no component scope");
    const std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("0: global: Phase"), std::string::npos);
    setActiveFlags("");
}

// --- LineSink routing (the hook the obs tracer uses) ---------------------

struct SinkCapture
{
    Flag flag = Flag::NumFlags;
    Cycle cycle = 0;
    std::string component;
    std::string text;
    int calls = 0;
};

void
captureSink(void *obj, Flag flag, Cycle cycle, const char *component,
            const char *text)
{
    auto *cap = static_cast<SinkCapture *>(obj);
    cap->flag = flag;
    cap->cycle = cycle;
    cap->component = component != nullptr ? component : "<none>";
    cap->text = text;
    ++cap->calls;
}

TEST(Debug, LineSinkReceivesAttributedLines)
{
    SinkCapture cap;
    setActiveFlags("Memory");
    setTraceCycle(99);
    setLineSink(&captureSink, &cap);
    testing::internal::CaptureStderr(); // swallow the stderr copy
    {
        const ScopedTraceComponent scope("accel.hbm");
        DPRINTF(Memory, "read row %d", 3);
    }
    setLineSink(nullptr, nullptr);
    testing::internal::GetCapturedStderr();
    ASSERT_EQ(cap.calls, 1);
    EXPECT_EQ(cap.flag, Flag::Memory);
    EXPECT_EQ(cap.cycle, 99u);
    EXPECT_EQ(cap.component, "accel.hbm");
    EXPECT_EQ(cap.text, "read row 3");
    setActiveFlags("");
    setTraceCycle(0);
}

TEST(Debug, DetachedLineSinkStopsReceiving)
{
    SinkCapture cap;
    setActiveFlags("Memory");
    setLineSink(&captureSink, &cap);
    setLineSink(nullptr, nullptr);
    testing::internal::CaptureStderr();
    DPRINTF(Memory, "after detach");
    testing::internal::GetCapturedStderr();
    EXPECT_EQ(cap.calls, 0);
    setActiveFlags("");
}

} // namespace
} // namespace gds::debug
