/**
 * @file
 * Tests for the debug-trace category infrastructure.
 */

#include <gtest/gtest.h>

#include "common/debug.hh"

namespace gds::debug
{
namespace
{

TEST(Debug, FlagsOffByDefault)
{
    setActiveFlags("");
    for (unsigned f = 0; f < static_cast<unsigned>(Flag::NumFlags); ++f)
        EXPECT_FALSE(enabled(static_cast<Flag>(f)));
}

TEST(Debug, SingleFlag)
{
    setActiveFlags("Dispatch");
    EXPECT_TRUE(enabled(Flag::Dispatch));
    EXPECT_FALSE(enabled(Flag::Prefetch));
    setActiveFlags("");
}

TEST(Debug, CommaList)
{
    setActiveFlags("Prefetch,Memory");
    EXPECT_TRUE(enabled(Flag::Prefetch));
    EXPECT_TRUE(enabled(Flag::Memory));
    EXPECT_FALSE(enabled(Flag::Reduce));
    setActiveFlags("");
}

TEST(Debug, AllEnablesEverything)
{
    setActiveFlags("All");
    for (unsigned f = 0; f < static_cast<unsigned>(Flag::NumFlags); ++f)
        EXPECT_TRUE(enabled(static_cast<Flag>(f)));
    setActiveFlags("");
}

TEST(Debug, UnknownTokensIgnored)
{
    setActiveFlags("Bogus,Reduce,AlsoBogus");
    EXPECT_TRUE(enabled(Flag::Reduce));
    EXPECT_FALSE(enabled(Flag::Dispatch));
    setActiveFlags("");
}

TEST(Debug, FlagNames)
{
    EXPECT_STREQ(flagName(Flag::Dispatch), "Dispatch");
    EXPECT_STREQ(flagName(Flag::Phase), "Phase");
}

TEST(Debug, DprintfCompilesAndIsSilentWhenOff)
{
    setActiveFlags("");
    DPRINTF(Dispatch, "this should not appear %d", 1);
    SUCCEED();
}

} // namespace
} // namespace gds::debug
