/**
 * @file
 * Tests for the telemetry subsystem: the Perfetto tracer (golden JSON
 * structure, event nesting, endAllOpen recovery, valid-JSON output), the
 * interval sampler (deterministic sample counts, sealed columns), the
 * columnar time series, run provenance (config hashing, manifest JSON),
 * the wall-clock timer, and an end-to-end BFS run proving the emitted
 * trace is well-nested and loadable while sampling stays byte-identical
 * across repeated runs.
 */

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <utility>

#include "algo/vcpm.hh"
#include "common/error.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"
#include "harness/manifest.hh"
#include "harness/walltime.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "stats/json.hh"
#include "stats/timeseries.hh"

namespace gds
{
namespace
{

// --- Tracer --------------------------------------------------------------

TEST(Tracer, TracksAreDeduplicatedByName)
{
    obs::Tracer t;
    const obs::TrackId pe = t.track("accel.pe");
    const obs::TrackId ue = t.track("accel.ue");
    EXPECT_NE(pe, ue);
    EXPECT_EQ(t.track("accel.pe"), pe);
    EXPECT_EQ(t.trackCount(), 2u);
    EXPECT_EQ(t.trackName(ue), "accel.ue");
}

TEST(Tracer, GoldenJsonStructure)
{
    obs::Tracer t("test");
    const obs::TrackId pe = t.track("pe");
    t.begin(pe, "scatter", 5);
    t.end(pe, 9);
    std::ostringstream os;
    t.write(os);
    const std::string expected =
        "{\"traceEvents\":["
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"test\"}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"pe\"}},\n"
        "{\"ph\":\"B\",\"pid\":1,\"tid\":1,\"ts\":5,\"name\":\"scatter\"},\n"
        "{\"ph\":\"E\",\"pid\":1,\"tid\":1,\"ts\":9}\n"
        "],\"displayTimeUnit\":\"ms\",\"otherData\":"
        "{\"clock\":\"1 ts = 1 simulated cycle\"}}\n";
    EXPECT_EQ(os.str(), expected);
}

TEST(Tracer, OutputIsValidJsonWithEveryEventKind)
{
    obs::Tracer t;
    const obs::TrackId id = t.track("hbm \"quoted\"\npath");
    t.begin(id, "phase", 0);
    t.instant(id, "fault:drop", 3, "channel 2");
    t.counter(id, "activity", 42.5, 4);
    t.end(id, 10);
    std::ostringstream os;
    t.write(os);
    std::string error;
    EXPECT_TRUE(stats::validateJson(os.str(), &error)) << error;
    // Counter events are keyed by (pid, name) in the UI: the series name
    // must carry the track name.
    EXPECT_NE(os.str().find("hbm \\\"quoted\\\"\\npath.activity"),
              std::string::npos);
}

TEST(Tracer, WellNestedAcceptsProperNesting)
{
    obs::Tracer t;
    const obs::TrackId a = t.track("a");
    const obs::TrackId b = t.track("b");
    t.begin(a, "outer", 0);
    t.begin(b, "other-track", 1); // interleaving across tracks is fine
    t.begin(a, "inner", 2);
    t.end(a, 5);
    t.end(b, 6);
    t.end(a, 7);
    std::string error;
    EXPECT_TRUE(t.wellNested(&error)) << error;
    EXPECT_EQ(t.openEventCount(), 0u);
}

TEST(Tracer, WellNestedRejectsUnclosedAndTimeTravel)
{
    obs::Tracer open_tracer;
    const obs::TrackId a = open_tracer.track("a");
    open_tracer.begin(a, "never-closed", 4);
    std::string error;
    EXPECT_FALSE(open_tracer.wellNested(&error));
    EXPECT_NE(error.find("never-closed"), std::string::npos);

    obs::Tracer backwards;
    const obs::TrackId b = backwards.track("b");
    backwards.begin(b, "phase", 10);
    backwards.end(b, 5); // E stamped before its B
    EXPECT_FALSE(backwards.wellNested(&error));
    EXPECT_NE(error.find("before its B"), std::string::npos);
}

TEST(Tracer, EndAllOpenRepairsAnAbortedTrace)
{
    obs::Tracer t;
    const obs::TrackId a = t.track("a");
    const obs::TrackId b = t.track("b");
    t.begin(a, "iteration:0", 0);
    t.begin(a, "scatter", 1);
    t.begin(b, "stream", 2);
    EXPECT_EQ(t.openEventCount(), 3u);
    EXPECT_FALSE(t.wellNested());
    t.endAllOpen(9);
    EXPECT_EQ(t.openEventCount(), 0u);
    std::string error;
    EXPECT_TRUE(t.wellNested(&error)) << error;
}

TEST(Tracer, ScopedActiveTracerInstallsAndRestores)
{
    EXPECT_EQ(obs::activeTracer(), nullptr);
    obs::Tracer t;
    {
        const obs::ScopedActiveTracer scope(&t);
        EXPECT_EQ(obs::activeTracer(), &t);
        {
            obs::Tracer inner;
            const obs::ScopedActiveTracer nested(&inner);
            EXPECT_EQ(obs::activeTracer(), &inner);
        }
        EXPECT_EQ(obs::activeTracer(), &t);
    }
    EXPECT_EQ(obs::activeTracer(), nullptr);
}

// --- Sampler -------------------------------------------------------------

TEST(Sampler, TickSamplesExactlyOnTheInterval)
{
    obs::Sampler s;
    s.setInterval(10);
    double probe_value = 0.0;
    s.add("x", [&] { return probe_value; });
    for (Cycle c = 0; c < 25; ++c) {
        probe_value = static_cast<double>(c);
        s.tick(c);
    }
    ASSERT_EQ(s.sampleCount(), 3u); // cycles 0, 10, 20
    EXPECT_EQ(s.series().cycleAt(0), 0u);
    EXPECT_EQ(s.series().cycleAt(2), 20u);
    EXPECT_DOUBLE_EQ(s.series().value(1, 0), 10.0);
}

TEST(Sampler, DisabledSamplerNeverSamples)
{
    obs::Sampler s;
    s.add("x", [] { return 1.0; });
    for (Cycle c = 0; c < 1000; ++c)
        s.tick(c);
    EXPECT_EQ(s.sampleCount(), 0u);
}

TEST(Sampler, ColumnSetSealsAtFirstSample)
{
    obs::Sampler s;
    s.add("x", [] { return 1.0; });
    s.sample(0);
    EXPECT_THROW(s.add("y", [] { return 2.0; }), ConfigError);
    EXPECT_THROW(s.add("x", [] { return 3.0; }), ConfigError);
}

TEST(Sampler, ScalarProbeAndCsvOutput)
{
    stats::Group mem(nullptr, "mem");
    stats::Scalar bytes(&mem, "bytes", "bytes moved");
    obs::Sampler s;
    s.setInterval(5);
    s.addScalar("mem.bytes", bytes);
    bytes += 32;
    s.tick(0);
    bytes += 32;
    s.tick(5);
    std::ostringstream os;
    s.writeCsv(os);
    EXPECT_EQ(os.str(), "cycle,mem.bytes\n0,32\n5,64\n");
}

// --- TimeSeries ----------------------------------------------------------

TEST(TimeSeries, RejectsBadColumnSetsAndRows)
{
    stats::TimeSeries ts;
    EXPECT_THROW(ts.setColumns({"a", "a"}), ConfigError);
    EXPECT_THROW(ts.setColumns({""}), ConfigError);
    ts.setColumns({"a", "b"});
    EXPECT_THROW(ts.addRow(0, {1.0}), ConfigError);
    ts.addRow(0, {1.0, 2.0});
    EXPECT_THROW(ts.setColumns({"c"}), ConfigError);
}

TEST(TimeSeries, JsonExportIsValidAndColumnar)
{
    stats::TimeSeries ts;
    ts.setColumns({"a", "b"});
    ts.addRow(0, {1.0, 2.5});
    ts.addRow(100, {3.0, 4.0});
    std::ostringstream os;
    ts.writeJson(os);
    std::string error;
    EXPECT_TRUE(stats::validateJson(os.str(), &error)) << error;
    EXPECT_NE(os.str().find("\"cycles\":[0,100]"), std::string::npos);
    EXPECT_NE(os.str().find("\"a\":[1,3]"), std::string::npos);
    EXPECT_NE(os.str().find("\"b\":[2.5,4]"), std::string::npos);
}

// --- Provenance: hashing and manifests -----------------------------------

TEST(Manifest, Fnv1aMatchesReferenceVectors)
{
    EXPECT_EQ(harness::fnv1a(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(harness::fnv1a("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(harness::hashHex(0xaf63dc4c8601ec8cULL),
              "af63dc4c8601ec8c");
    EXPECT_EQ(harness::hashHex(0), "0000000000000000");
}

TEST(Manifest, ConfigHashIsStableAndFieldSensitive)
{
    core::GdsConfig a;
    core::GdsConfig b;
    EXPECT_EQ(harness::configHash(a), harness::configHash(b));
    EXPECT_EQ(harness::configHash(a).size(), 16u);
    b.numPes += 1;
    EXPECT_NE(harness::configHash(a), harness::configHash(b));
    core::GdsConfig c;
    c.hbm.numChannels += 1; // memory knobs must be covered too
    EXPECT_NE(harness::configHash(a), harness::configHash(c));
    c.hbm.numChannels -= 1;
    c.workloadBalance = !c.workloadBalance;
    EXPECT_NE(harness::configHash(a), harness::configHash(c));
}

TEST(Manifest, DifferentModelsNeverCollide)
{
    // The hash prefixes a model tag, so two default-constructed configs
    // of different systems hash apart even if their fields coincided.
    EXPECT_NE(harness::configHash(core::GdsConfig{}),
              harness::configHash(baseline::GraphicionadoConfig{}));
    EXPECT_NE(harness::configHash(baseline::GraphicionadoConfig{}),
              harness::configHash(baseline::GunrockConfig{}));
}

TEST(Manifest, WriteEmitsValidJsonWithOneEntryPerCell)
{
    harness::Manifest m;
    harness::ManifestCell cell;
    cell.key = "gds/bfs/LJ";
    cell.system = "GraphDynS";
    cell.algorithm = "BFS";
    cell.dataset = "LJ";
    cell.seed = 42;
    cell.configHash = "0123456789abcdef";
    cell.outcome = "ok";
    cell.cached = false;
    cell.simulatedSeconds = 0.5;
    cell.wallSimSeconds = 1.25;
    m.add(cell);
    cell.key = "gds/bfs/OR";
    cell.cached = true;
    m.add(cell);
    EXPECT_EQ(m.size(), 2u);

    std::ostringstream os;
    m.write(os);
    const std::string json = os.str();
    std::string error;
    EXPECT_TRUE(stats::validateJson(json, &error)) << error;
    EXPECT_NE(json.find("\"gitSha\":"), std::string::npos);
    EXPECT_NE(json.find("\"scaleDivisor\":"), std::string::npos);
    EXPECT_NE(json.find("\"key\":\"gds/bfs/LJ\""), std::string::npos);
    EXPECT_NE(json.find("\"cached\":false"), std::string::npos);
    EXPECT_NE(json.find("\"cached\":true"), std::string::npos);
    EXPECT_NE(json.find("\"wallSimSeconds\":1.25"), std::string::npos);
}

// --- ScopedWallTimer -----------------------------------------------------

TEST(WallTimer, AccumulatesIntoTarget)
{
    double total = 1.0; // pre-existing time must be added to, not replaced
    {
        const harness::ScopedWallTimer timer(total);
        EXPECT_GE(timer.elapsedSeconds(), 0.0);
    }
    EXPECT_GE(total, 1.0);
    const double after_first = total;
    {
        const harness::ScopedWallTimer timer(total);
    }
    EXPECT_GE(total, after_first);
}

// --- End to end: a traced, sampled BFS run -------------------------------

/** Run BFS on a small RMAT graph with telemetry attached. */
std::pair<std::string, std::string>
tracedBfsRun()
{
    const graph::Csr g = graph::rmat(8, 16, 42, {}, false);
    core::GdsConfig cfg;
    cfg.maxIterations = 1000;
    auto algorithm = algo::makeAlgorithm(algo::AlgorithmId::Bfs);
    core::GdsAccel accel(cfg, g, *algorithm);

    obs::Tracer tracer;
    obs::Sampler sampler;
    sampler.setInterval(100);
    core::RunOptions run;
    run.source = 0;
    run.sampler = &sampler;
    run.traceCounterInterval = 100;
    const obs::ScopedActiveTracer scope(&tracer);
    const core::RunResult r = accel.run(run);
    EXPECT_GT(r.cycles, 0u);

    std::string error;
    EXPECT_TRUE(tracer.wellNested(&error)) << error;
    EXPECT_GT(tracer.eventCount(), 0u);
    EXPECT_GT(sampler.sampleCount(), 0u);

    std::ostringstream trace_os;
    tracer.write(trace_os);
    EXPECT_TRUE(stats::validateJson(trace_os.str(), &error)) << error;
    std::ostringstream csv_os;
    sampler.writeCsv(csv_os);
    return {trace_os.str(), csv_os.str()};
}

TEST(EndToEnd, TracedBfsIsWellNestedValidJsonAndDeterministic)
{
    const auto [trace_a, csv_a] = tracedBfsRun();
    // The trace records the phase structure the accelerator went through.
    EXPECT_NE(trace_a.find("\"iteration:0\""), std::string::npos);
    EXPECT_NE(trace_a.find("\"scatter\""), std::string::npos);
    EXPECT_NE(trace_a.find("\"apply\""), std::string::npos);
    // Activity counter tracks appear for the instrumented components.
    EXPECT_NE(trace_a.find(".activity\""), std::string::npos);
    // The sampler captured the registered probe columns.
    EXPECT_NE(csv_a.find("hbm.readBytes"), std::string::npos);
    EXPECT_NE(csv_a.find("frontier.records"), std::string::npos);

    // Telemetry must be deterministic: a second identical run emits
    // byte-identical output.
    const auto [trace_b, csv_b] = tracedBfsRun();
    EXPECT_EQ(trace_a, trace_b);
    EXPECT_EQ(csv_a, csv_b);
}

TEST(EndToEnd, UntracedRunStatsMatchTracedRun)
{
    // Telemetry must be observation only: cycle count and traffic are
    // identical with and without a tracer/sampler attached.
    auto run_once = [](bool telemetry) {
        const graph::Csr g = graph::rmat(8, 16, 42, {}, false);
        core::GdsConfig cfg;
        cfg.maxIterations = 1000;
        auto algorithm = algo::makeAlgorithm(algo::AlgorithmId::Bfs);
        core::GdsAccel accel(cfg, g, *algorithm);
        core::RunOptions run;
        run.source = 0;
        obs::Tracer tracer;
        obs::Sampler sampler;
        std::optional<obs::ScopedActiveTracer> scope;
        if (telemetry) {
            sampler.setInterval(50);
            run.sampler = &sampler;
            run.traceCounterInterval = 50;
            scope.emplace(&tracer);
        }
        return accel.run(run);
    };
    const core::RunResult plain = run_once(false);
    const core::RunResult traced = run_once(true);
    EXPECT_EQ(plain.cycles, traced.cycles);
    EXPECT_EQ(plain.memoryBytes, traced.memoryBytes);
    EXPECT_EQ(plain.iterations, traced.iterations);
}

} // namespace
} // namespace gds
