/**
 * @file
 * Tests for the experiment harness: variant configuration mapping,
 * iteration/source policies, the disk-backed result cache (round-trip,
 * persistence across instances), dataset caching, geometric means and
 * table formatting.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "graph/generators.hh"
#include "span_eq.hh"
#include "harness/experiment.hh"

namespace gds::harness
{
namespace
{

/** Run tests in a scratch directory so cache files don't pollute CWD. */
class HarnessTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        original = std::filesystem::current_path();
        scratch = std::filesystem::temp_directory_path() /
                  ("gds_harness_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(scratch);
        std::filesystem::current_path(scratch);
    }

    void
    TearDown() override
    {
        std::filesystem::current_path(original);
        std::filesystem::remove_all(scratch);
    }

    std::filesystem::path original;
    std::filesystem::path scratch;
};

TEST(Harness, SystemNames)
{
    EXPECT_EQ(systemName(SystemId::GraphDynS), "GraphDynS");
    EXPECT_EQ(systemName(SystemId::Graphicionado), "Graphicionado");
    EXPECT_EQ(systemName(SystemId::Gunrock), "Gunrock");
}

TEST(Harness, VariantConfigurations)
{
    const core::GdsConfig wb =
        applyVariant(core::GdsConfig{}, GdsVariant::Wb);
    EXPECT_TRUE(wb.workloadBalance);
    EXPECT_FALSE(wb.exactPrefetch);
    EXPECT_FALSE(wb.zeroStallAtomics);
    EXPECT_FALSE(wb.updateScheduling);

    const core::GdsConfig we =
        applyVariant(core::GdsConfig{}, GdsVariant::We);
    EXPECT_TRUE(we.exactPrefetch);
    EXPECT_FALSE(we.zeroStallAtomics);

    const core::GdsConfig wea =
        applyVariant(core::GdsConfig{}, GdsVariant::Wea);
    EXPECT_TRUE(wea.zeroStallAtomics);
    EXPECT_FALSE(wea.updateScheduling);

    const core::GdsConfig full =
        applyVariant(core::GdsConfig{}, GdsVariant::Full);
    EXPECT_TRUE(full.workloadBalance && full.exactPrefetch &&
                full.zeroStallAtomics && full.updateScheduling);

    const core::GdsConfig no_wb =
        applyVariant(core::GdsConfig{}, GdsVariant::NoWb);
    EXPECT_FALSE(no_wb.workloadBalance);
    EXPECT_TRUE(no_wb.exactPrefetch);
}

TEST(Harness, IterationCapPolicy)
{
    EXPECT_EQ(iterationCap(algo::AlgorithmId::Pr), 10u);
    EXPECT_EQ(iterationCap(algo::AlgorithmId::Bfs), 1000u);
}

TEST(Harness, SourcePolicy)
{
    const auto g = graph::uniform(100, 1000, 3, true);
    EXPECT_EQ(sourceFor(algo::AlgorithmId::Bfs, g),
              algo::defaultSource(g));
    EXPECT_EQ(sourceFor(algo::AlgorithmId::Cc, g), 0u);
    EXPECT_EQ(sourceFor(algo::AlgorithmId::Pr, g), 0u);
}

TEST(Harness, GeometricMean)
{
    EXPECT_DOUBLE_EQ(geometricMean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geometricMean({8.0}), 8.0);
    EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_EQ(geometricMean({}), 0.0);
    // Non-positive values are ignored.
    EXPECT_DOUBLE_EQ(geometricMean({0.0, 4.0, 1.0}), 2.0);
}

TEST(Harness, TableNumFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(10.0, 0), "10");
}

TEST_F(HarnessTest, CacheRoundTripsRecords)
{
    RunRecord r;
    r.system = "GraphDynS";
    r.algorithm = "BFS";
    r.dataset = "FR";
    r.iterations = 7;
    r.seconds = 0.00123;
    r.gteps = 45.5;
    r.memoryBytes = 1e8;
    r.footprintBytes = 2e8;
    r.bandwidthUtilization = 0.56;
    r.energyJoules = 0.012;
    r.schedulingOps = 1000;
    r.atomicStalls = 5;
    r.updatesSkipped = 99;
    r.vertexUpdates = 1234;
    r.edgesProcessed = 5678;

    {
        ResultCache cache;
        cache.store("k1", r);
    }
    ResultCache reloaded;
    const auto found = reloaded.lookup("k1");
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->system, "GraphDynS");
    EXPECT_EQ(found->algorithm, "BFS");
    EXPECT_EQ(found->dataset, "FR");
    EXPECT_EQ(found->iterations, 7u);
    EXPECT_DOUBLE_EQ(found->seconds, 0.00123);
    EXPECT_DOUBLE_EQ(found->gteps, 45.5);
    EXPECT_DOUBLE_EQ(found->bandwidthUtilization, 0.56);
    EXPECT_DOUBLE_EQ(found->edgesProcessed, 5678);
}

TEST_F(HarnessTest, CacheMissReturnsNullopt)
{
    ResultCache cache;
    EXPECT_FALSE(cache.lookup("missing").has_value());
}

TEST_F(HarnessTest, GetOrRunComputesOnceThenCaches)
{
    ResultCache cache;
    int calls = 0;
    auto compute = [&] {
        ++calls;
        RunRecord r;
        r.system = "X";
        r.algorithm = "Y";
        r.dataset = "Z";
        r.gteps = 1.5;
        return r;
    };
    const auto first = cache.getOrRun("key", compute);
    const auto second = cache.getOrRun("key", compute);
    EXPECT_EQ(calls, 1);
    EXPECT_DOUBLE_EQ(first.gteps, second.gteps);
}

TEST_F(HarnessTest, CellKeyIncludesScale)
{
    const std::string key = cellKey("gds", algo::AlgorithmId::Bfs, "FR");
    EXPECT_NE(key.find("gds|BFS|FR|s"), std::string::npos);
}

TEST_F(HarnessTest, RunGdsProducesConsistentRecord)
{
    const auto g = graph::powerLaw(1000, 8000, 0.6, 5, true);
    const auto r = runGds(algo::AlgorithmId::Bfs, "toy", g);
    EXPECT_EQ(r.system, "GraphDynS");
    EXPECT_EQ(r.algorithm, "BFS");
    EXPECT_EQ(r.dataset, "toy");
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.gteps, 0.0);
    EXPECT_GT(r.energyJoules, 0.0);
    EXPECT_GT(r.memoryBytes, 0.0);
}

TEST_F(HarnessTest, VariantRecordsCarryVariantTag)
{
    const auto g = graph::powerLaw(500, 4000, 0.6, 6, true);
    const auto r = runGds(algo::AlgorithmId::Bfs, "toy", g,
                          GdsVariant::We);
    EXPECT_EQ(r.system, "GraphDynS-WE");
}

TEST_F(HarnessTest, AllThreeSystemsRunnable)
{
    const auto g = graph::powerLaw(800, 6400, 0.6, 7, true);
    const auto gds = runGds(algo::AlgorithmId::Sssp, "toy", g);
    const auto gi = runGraphicionado(algo::AlgorithmId::Sssp, "toy", g);
    const auto gpu = runGunrock(algo::AlgorithmId::Sssp, "toy", g);
    EXPECT_GT(gds.seconds, 0.0);
    EXPECT_GT(gi.seconds, 0.0);
    EXPECT_GT(gpu.seconds, 0.0);
    // The headline ordering on a skewed graph.
    EXPECT_LT(gds.seconds, gi.seconds);
}

TEST_F(HarnessTest, FindRecordLocatesCells)
{
    std::vector<RunRecord> records(2);
    records[0].system = "A";
    records[0].algorithm = "BFS";
    records[0].dataset = "FR";
    records[1].system = "B";
    records[1].algorithm = "PR";
    records[1].dataset = "LJ";
    EXPECT_EQ(&findRecord(records, "B", "PR", "LJ"), &records[1]);
}

TEST_F(HarnessTest, DatasetLoaderCachesBinary)
{
    ::setenv("GDS_SCALE", "512", 1);
    const auto g1 = loadDataset("FR", false);
    EXPECT_TRUE(std::filesystem::exists("gds_dataset_FR_s512_u_g2.bin"));
    const auto g2 = loadDataset("FR", false);
    EXPECT_SPAN_EQ(g1.neighborArray(), g2.neighborArray());
    ::unsetenv("GDS_SCALE");
}

TEST_F(HarnessTest, DatasetCacheWriteIsAtomicAndLeavesNoTempFiles)
{
    ::setenv("GDS_SCALE", "16384", 1);
    loadDataset("FR", false);
    EXPECT_TRUE(std::filesystem::exists("gds_dataset_FR_s16384_u_g2.bin"));
    for (const auto &entry : std::filesystem::directory_iterator(".")) {
        EXPECT_EQ(entry.path().string().find(".tmp"), std::string::npos)
            << "leftover temp file " << entry.path();
    }
    ::unsetenv("GDS_SCALE");
}

namespace
{

std::vector<std::string>
fileLines(const std::string &path)
{
    std::ifstream in(path);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    return lines;
}

RunRecord
simpleRecord(double gteps)
{
    RunRecord r;
    r.system = "S";
    r.algorithm = "A";
    r.dataset = "D";
    r.gteps = gteps;
    return r;
}

} // namespace

TEST_F(HarnessTest, CacheJournalAppendsThenCompactsOnExit)
{
    constexpr const char *file = "gds_bench_cache_v1.csv";
    {
        ResultCache cache;
        cache.store("kb", simpleRecord(1.0));
        cache.store("ka", simpleRecord(2.0));
        cache.store("kb", simpleRecord(3.0)); // overwrite appends too
        // Mid-run (pre-destructor) the journal already holds every store
        // in append order — interrupted runs keep their progress, and
        // stores never rewrite the file (a rewrite would be key-sorted).
        const auto lines = fileLines(file);
        ASSERT_EQ(lines.size(), 5u); // format + columns + 3 appends
        EXPECT_EQ(lines[2].rfind("kb,", 0), 0u);
        EXPECT_EQ(lines[3].rfind("ka,", 0), 0u);
        EXPECT_EQ(lines[4].rfind("kb,", 0), 0u);
    }
    // On exit the journal is compacted once: each key exactly once,
    // last write wins.
    const auto lines = fileLines(file);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[2].rfind("ka,", 0), 0u);
    EXPECT_EQ(lines[3].rfind("kb,", 0), 0u);
    ResultCache reloaded;
    ASSERT_TRUE(reloaded.lookup("kb").has_value());
    EXPECT_DOUBLE_EQ(reloaded.lookup("kb")->gteps, 3.0);
    EXPECT_DOUBLE_EQ(reloaded.lookup("ka")->gteps, 2.0);
}

TEST_F(HarnessTest, CacheJournalSurvivesAcrossInstances)
{
    {
        ResultCache first;
        first.store("k1", simpleRecord(1.5));
    }
    {
        ResultCache second; // append to the compacted file
        EXPECT_TRUE(second.lookup("k1").has_value());
        second.store("k2", simpleRecord(2.5));
    }
    ResultCache third;
    ASSERT_TRUE(third.lookup("k1").has_value());
    ASSERT_TRUE(third.lookup("k2").has_value());
    EXPECT_DOUBLE_EQ(third.lookup("k1")->gteps, 1.5);
    EXPECT_DOUBLE_EQ(third.lookup("k2")->gteps, 2.5);
}

TEST_F(HarnessTest, CacheRefusesDelimiterAndControlCharacterFields)
{
    ResultCache cache;
    RunRecord r = simpleRecord(1.0);
    r.system = "Graph,DynS"; // would re-parse with shifted columns
    EXPECT_THROW(cache.store("k", r), ConfigError);
    r = simpleRecord(1.0);
    r.dataset = "F\nR";
    EXPECT_THROW(cache.store("k", r), ConfigError);
    r = simpleRecord(1.0);
    r.status = "bad\tstatus";
    EXPECT_THROW(cache.store("k", r), ConfigError);
    EXPECT_THROW(cache.store("a,b", simpleRecord(1.0)), ConfigError);
    // The refused stores left no trace, in memory or on disk.
    EXPECT_FALSE(cache.lookup("k").has_value());
    EXPECT_FALSE(std::filesystem::exists("gds_bench_cache_v1.csv"));
}

} // namespace
} // namespace gds::harness
