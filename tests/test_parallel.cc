/**
 * @file
 * Tests for the parallel experiment runner: the GDS_JOBS worker-count
 * policy, the ThreadPool/parallelFor scheduler, concurrent access to the
 * thread-safe result cache, and the determinism guarantee that a parallel
 * evaluationMatrix returns records byte-identical to the serial order.
 * These are the tests CI also runs under GDS_SANITIZE=thread.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "harness/experiment.hh"
#include "harness/parallel.hh"

namespace gds::harness
{
namespace
{

/** Build "<prefix><i>" by appending, not operator+: GCC 12's -Wrestrict
 *  false positive (PR105651) fires on `"lit" + std::string&&` at -O2. */
std::string
keyOf(const char *prefix, std::size_t i)
{
    std::string key = prefix;
    key += std::to_string(i);
    return key;
}

TEST(Parallel, JobCountReadsEnvWithFallback)
{
    ::setenv("GDS_JOBS", "3", 1);
    EXPECT_EQ(jobCount(), 3u);
    ::setenv("GDS_JOBS", "0", 1); // invalid: falls back, stays positive
    EXPECT_GE(jobCount(), 1u);
    ::setenv("GDS_JOBS", "junk", 1);
    EXPECT_GE(jobCount(), 1u);
    ::unsetenv("GDS_JOBS");
    EXPECT_GE(jobCount(), 1u);
}

TEST(Parallel, ParallelForCoversEveryIndexExactlyOnce)
{
    constexpr std::size_t n = 500;
    std::vector<std::atomic<int>> hits(n);
    parallelFor(n, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Parallel, ParallelForIsSerialInOrderWithOneJob)
{
    std::vector<std::size_t> order;
    parallelFor(5, 1, [&](std::size_t i) { order.push_back(i); });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Parallel, ParallelForPropagatesTaskException)
{
    std::atomic<int> completed{0};
    EXPECT_THROW(parallelFor(64, 4,
                             [&](std::size_t i) {
                                 if (i == 17)
                                     throw ConfigError("boom");
                                 completed.fetch_add(1);
                             }),
                 ConfigError);
    // The queue drained before rethrow: every other index still ran.
    EXPECT_EQ(completed.load(), 63);
}

TEST(Parallel, ThreadPoolDrainsAndIsReusableAfterWait)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.workerCount(), 4u);
    std::atomic<int> sum{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { sum.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(sum.load(), 100);
    pool.submit([&] { sum.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(sum.load(), 101);
}

/** Run cache/matrix tests in a scratch directory (they write CWD files). */
class ParallelHarnessTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        original = std::filesystem::current_path();
        scratch = std::filesystem::temp_directory_path() /
                  ("gds_parallel_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(scratch);
        std::filesystem::current_path(scratch);
    }

    void
    TearDown() override
    {
        std::filesystem::current_path(original);
        std::filesystem::remove_all(scratch);
        ::unsetenv("GDS_JOBS");
        ::unsetenv("GDS_SCALE");
    }

    std::filesystem::path original;
    std::filesystem::path scratch;
};

TEST_F(ParallelHarnessTest, ConcurrentStoresOnDistinctKeys)
{
    constexpr std::size_t n = 64;
    {
        ResultCache cache;
        parallelFor(n, 8, [&](std::size_t i) {
            RunRecord r;
            r.system = "S";
            r.algorithm = "A";
            r.dataset = keyOf("D", i);
            r.gteps = static_cast<double>(i);
            cache.store(keyOf("k", i), r);
        });
        for (std::size_t i = 0; i < n; ++i) {
            const auto found = cache.lookup(keyOf("k", i));
            ASSERT_TRUE(found.has_value()) << "key k" << i;
            EXPECT_DOUBLE_EQ(found->gteps, static_cast<double>(i));
        }
    }
    // Everything survived the journal + compaction round trip.
    ResultCache reloaded;
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_TRUE(reloaded.lookup(keyOf("k", i)).has_value());
}

TEST_F(ParallelHarnessTest, ConcurrentGetOrRunOnTheSameKeyIsConsistent)
{
    constexpr std::size_t n = 16;
    std::atomic<int> calls{0};
    std::vector<RunRecord> results(n);
    {
        ResultCache cache;
        parallelFor(n, 8, [&](std::size_t i) {
            results[i] = cache.getOrRun("shared", [&] {
                calls.fetch_add(1);
                RunRecord r;
                r.system = "S";
                r.algorithm = "A";
                r.dataset = "D";
                r.gteps = 7.5;
                return r;
            });
        });
    }
    // Racing computations are allowed (cells are deterministic), but
    // every caller observes the same record and one entry persists.
    EXPECT_GE(calls.load(), 1);
    for (const RunRecord &r : results)
        EXPECT_DOUBLE_EQ(r.gteps, 7.5);
    ResultCache reloaded;
    const auto found = reloaded.lookup("shared");
    ASSERT_TRUE(found.has_value());
    EXPECT_DOUBLE_EQ(found->gteps, 7.5);
}

TEST_F(ParallelHarnessTest, MatrixParallelMatchesSerialByteForByte)
{
    // Tiny datasets (the scale clamps at 64 vertices / 256 edges) keep
    // two cold 90-cell matrix runs fast enough for a unit test.
    ::setenv("GDS_SCALE", "16384", 1);

    ::setenv("GDS_JOBS", "1", 1);
    std::string serial_json;
    {
        ResultCache cache;
        const auto records = evaluationMatrix(cache);
        EXPECT_EQ(records.size(), 90u);
        std::ostringstream os;
        dumpRecordsJson(records, os);
        serial_json = os.str();
    }

    // Drop the result cache so the parallel run is cold too (the binary
    // dataset cache stays: the pool still guards it with once-only
    // loading).
    std::filesystem::remove("gds_bench_cache_v1.csv");

    ::setenv("GDS_JOBS", "4", 1);
    std::string parallel_json;
    {
        ResultCache cache;
        const auto records = evaluationMatrix(cache);
        std::ostringstream os;
        dumpRecordsJson(records, os);
        parallel_json = os.str();
    }

    EXPECT_EQ(serial_json, parallel_json);
}

TEST_F(ParallelHarnessTest, WarmMatrixNeedsNoSimulationAndStaysOrdered)
{
    ::setenv("GDS_SCALE", "16384", 1);
    ::setenv("GDS_JOBS", "4", 1);
    std::string cold_json;
    {
        ResultCache cache;
        std::ostringstream os;
        dumpRecordsJson(evaluationMatrix(cache), os);
        cold_json = os.str();
    }
    // Same cache file, warm rerun: identical records in identical order.
    {
        ResultCache cache;
        std::ostringstream os;
        dumpRecordsJson(evaluationMatrix(cache), os);
        EXPECT_EQ(cold_json, os.str());
    }
}

} // namespace
} // namespace gds::harness
