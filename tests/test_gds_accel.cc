/**
 * @file
 * End-to-end tests of the GraphDynS cycle-level model: functional results
 * must match the reference engine for every algorithm, across graph
 * families, ablation configurations, UE counts and forced slicing; timing
 * and stats must satisfy basic sanity invariants (throughput below peak,
 * scheduling-op accounting, RB effectiveness).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algo/reference_engine.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"

namespace gds::core
{
namespace
{

using algo::AlgorithmId;

/** Graph + algorithm pairing used across the tests. */
graph::Csr
testGraph(VertexId v_count, EdgeId e_count, std::uint64_t seed)
{
    return graph::powerLaw(v_count, e_count, 0.6, seed, /*weighted=*/true);
}

/**
 * Compare a timing-model run against the functional reference.
 *
 * Min/max algorithms are order-insensitive, so the match is exact. PR's
 * floating-point accumulation order differs between the crossbar arrival
 * order and the reference's sequential order, so PR is compared with a
 * relative tolerance and may converge one iteration apart.
 */
void
expectMatchesReference(const GdsConfig &cfg, const graph::Csr &g,
                       AlgorithmId id, VertexId source)
{
    auto algo_ref = algo::makeAlgorithm(id);
    algo::ReferenceOptions ref_opts;
    ref_opts.maxIterations = cfg.maxIterations;
    const auto golden = algo::runReference(g, *algo_ref, source, ref_opts);

    auto algo_sim = algo::makeAlgorithm(id);
    GdsAccel accel(cfg, g, *algo_sim);
    RunOptions run;
    run.source = source;
    const RunResult result = accel.run(run);

    ASSERT_EQ(result.properties.size(), golden.properties.size());
    if (id == AlgorithmId::Pr) {
        // Activation-gated PR is order-dependent: the crossbar arrival
        // order differs from the reference's sequential order, and once a
        // vertex's change dips below the activation tolerance its whole
        // contribution drops out of its neighbours' sums. Individual
        // vertices may drift a few percent between equally-valid
        // trajectories, so check aggregate fidelity instead.
        EXPECT_NEAR(static_cast<double>(result.iterations),
                    static_cast<double>(golden.iterations), 3.0);
        double err_sum = 0.0;
        double max_err = 0.0;
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            const double want = golden.properties[v];
            const double got = result.properties[v];
            const double rel =
                std::fabs(got - want) / std::max(std::fabs(want), 1e-12);
            err_sum += rel;
            max_err = std::max(max_err, rel);
        }
        EXPECT_LT(err_sum / g.numVertices(), 0.02)
            << "PR mean relative error too large";
        EXPECT_LT(max_err, 0.15) << "PR worst-vertex error too large";
        return;
    }

    EXPECT_EQ(result.iterations, golden.iterations)
        << algo_ref->name() << ": iteration count diverged";
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(result.properties[v], golden.properties[v])
            << algo_ref->name() << " vertex " << v;
    }
    EXPECT_EQ(result.edgesProcessed, golden.totalEdgesProcessed);
    EXPECT_EQ(result.vertexUpdates, golden.totalVertexUpdates);
}

TEST(GdsAccel, BfsMatchesReference)
{
    const auto g = testGraph(2000, 16000, 11);
    expectMatchesReference(GdsConfig{}, g, AlgorithmId::Bfs,
                           algo::defaultSource(g));
}

TEST(GdsAccel, SsspMatchesReference)
{
    const auto g = testGraph(2000, 16000, 12);
    expectMatchesReference(GdsConfig{}, g, AlgorithmId::Sssp,
                           algo::defaultSource(g));
}

TEST(GdsAccel, CcMatchesReference)
{
    const auto g = testGraph(1500, 12000, 13);
    expectMatchesReference(GdsConfig{}, g, AlgorithmId::Cc, 0);
}

TEST(GdsAccel, SswpMatchesReference)
{
    const auto g = testGraph(1500, 12000, 14);
    expectMatchesReference(GdsConfig{}, g, AlgorithmId::Sswp,
                           algo::defaultSource(g));
}

TEST(GdsAccel, PrMatchesReference)
{
    GdsConfig cfg;
    // Stop while all vertices are still active: near convergence,
    // activation-gated PR is sensitive to the reduce order (see the
    // AblationSweep comment).
    cfg.maxIterations = 8;
    const auto g = testGraph(1000, 8000, 15);
    expectMatchesReference(cfg, g, AlgorithmId::Pr, 0);
}

TEST(GdsAccel, UniformGraphBfs)
{
    const auto g = graph::uniform(3000, 24000, 21, true);
    expectMatchesReference(GdsConfig{}, g, AlgorithmId::Bfs,
                           algo::defaultSource(g));
}

TEST(GdsAccel, GridGraphSssp)
{
    const auto g = graph::grid2d(40, 40, 22, true);
    expectMatchesReference(GdsConfig{}, g, AlgorithmId::Sssp, 0);
}

TEST(GdsAccel, RmatGraphCc)
{
    const auto g = graph::rmat(10, 8, 23, {}, true);
    expectMatchesReference(GdsConfig{}, g, AlgorithmId::Cc, 0);
}

TEST(GdsAccel, ThroughputBelowComputePeak)
{
    GdsConfig cfg;
    cfg.maxIterations = 10;
    const auto g = testGraph(4000, 64000, 31);
    auto pr = algo::makeAlgorithm(AlgorithmId::Pr);
    GdsAccel accel(cfg, g, *pr);
    const RunResult r = accel.run();
    // Peak is numPes * nSimt = 128 edges/cycle.
    EXPECT_LT(r.gteps(), 128.0);
    EXPECT_GT(r.gteps(), 1.0);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.memoryBytes, 0u);
    EXPECT_LE(r.bandwidthUtilization, 1.0);
}

TEST(GdsAccel, SchedulingOpsFarFewerThanEdges)
{
    // Fig. 14a: batch dispatch cuts scheduling operations by ~16x.
    GdsConfig cfg;
    cfg.maxIterations = 5;
    const auto g = testGraph(4000, 64000, 32);
    auto pr = algo::makeAlgorithm(AlgorithmId::Pr);
    GdsAccel accel(cfg, g, *pr);
    const RunResult r = accel.run();
    EXPECT_LT(r.schedulingOps, r.edgesProcessed / 4);
}

TEST(GdsAccel, NoWorkloadBalanceSchedulesPerEdge)
{
    GdsConfig cfg;
    cfg.workloadBalance = false;
    cfg.maxIterations = 5;
    const auto g = testGraph(2000, 32000, 33);
    auto pr = algo::makeAlgorithm(AlgorithmId::Pr);
    GdsAccel accel(cfg, g, *pr);
    const RunResult r = accel.run();
    EXPECT_EQ(r.schedulingOps, r.edgesProcessed);
}

TEST(GdsAccel, ZeroStallModeHasNoAtomicStalls)
{
    GdsConfig cfg;
    cfg.maxIterations = 5;
    const auto g = testGraph(2000, 32000, 34);
    auto pr = algo::makeAlgorithm(AlgorithmId::Pr);
    GdsAccel accel(cfg, g, *pr);
    const RunResult r = accel.run();
    EXPECT_EQ(r.atomicStalls, 0u);
}

TEST(GdsAccel, StallModeIncursAtomicStallsOnPr)
{
    GdsConfig cfg;
    cfg.zeroStallAtomics = false;
    cfg.maxIterations = 5;
    const auto g = testGraph(2000, 32000, 34);
    auto pr = algo::makeAlgorithm(AlgorithmId::Pr);
    GdsAccel accel(cfg, g, *pr);
    const RunResult r = accel.run();
    EXPECT_GT(r.atomicStalls, 0u);
}

TEST(GdsAccel, UpdateSchedulingSkipsWorkOnBfs)
{
    GdsConfig cfg;
    const auto g = testGraph(4000, 32000, 35);
    auto bfs = algo::makeAlgorithm(AlgorithmId::Bfs);
    GdsAccel accel(cfg, g, *bfs);
    RunOptions run;
    run.source = algo::defaultSource(g);
    const RunResult r = accel.run(run);
    // BFS touches few vertices per iteration; most groups must be skipped.
    EXPECT_GT(r.updatesSkipped, 0u);
}

TEST(GdsAccel, UpdateSchedulingOffSkipsNothing)
{
    GdsConfig cfg;
    cfg.updateScheduling = false;
    const auto g = testGraph(2000, 16000, 35);
    auto bfs = algo::makeAlgorithm(AlgorithmId::Bfs);
    GdsAccel accel(cfg, g, *bfs);
    RunOptions run;
    run.source = algo::defaultSource(g);
    const RunResult r = accel.run(run);
    EXPECT_EQ(r.updatesSkipped, 0u);
}

TEST(GdsAccel, PeLoadsCollectedWhenRequested)
{
    GdsConfig cfg;
    cfg.maxIterations = 4;
    const auto g = testGraph(2000, 32000, 36);
    auto pr = algo::makeAlgorithm(AlgorithmId::Pr);
    GdsAccel accel(cfg, g, *pr);
    RunOptions run;
    run.collectPeLoads = true;
    const RunResult r = accel.run(run);
    ASSERT_EQ(r.peLoads.size(), r.iterations);
    std::uint64_t total = 0;
    for (const auto &iter_loads : r.peLoads) {
        ASSERT_EQ(iter_loads.size(), cfg.numPes);
        for (const auto l : iter_loads)
            total += l;
    }
    EXPECT_EQ(total, r.edgesProcessed);
}

TEST(GdsAccel, WorkloadBalanceEvensPeLoads)
{
    GdsConfig cfg;
    cfg.maxIterations = 3;
    const auto g = testGraph(4000, 64000, 37);
    auto pr = algo::makeAlgorithm(AlgorithmId::Pr);
    GdsAccel accel(cfg, g, *pr);
    RunOptions run;
    run.collectPeLoads = true;
    const RunResult r = accel.run(run);
    // Heaviest iteration: per-PE load within 15% of the mean (Fig. 14b
    // shows ~1.00 +- 0.02 at full scale; small graphs are noisier).
    const auto &loads = r.peLoads.front();
    double mean = 0;
    for (const auto l : loads)
        mean += static_cast<double>(l);
    mean /= loads.size();
    for (const auto l : loads)
        EXPECT_NEAR(static_cast<double>(l), mean, mean * 0.15);
}

TEST(GdsAccel, ForcedSlicingPreservesResults)
{
    GdsConfig cfg;
    // Shrink the Vertex Buffer so a 3000-vertex graph needs 3 slices.
    cfg.vbBytesPerUe = 4096 / cfg.numUes * 128; // keep it divisible
    cfg.vbBytesPerUe = 32; // 128 UEs * 32 B / 4 B = 1024 vertices/slice
    const auto g = testGraph(3000, 24000, 38);
    auto sssp = algo::makeAlgorithm(AlgorithmId::Sssp);
    GdsAccel accel(cfg, g, *sssp);
    EXPECT_EQ(accel.numSlices(), 3u);
    expectMatchesReference(cfg, g, AlgorithmId::Sssp,
                           algo::defaultSource(g));
}

TEST(GdsAccel, ForcedSlicingPrPreservesResults)
{
    GdsConfig cfg;
    cfg.vbBytesPerUe = 32;
    cfg.maxIterations = 20;
    const auto g = testGraph(2500, 20000, 39);
    expectMatchesReference(cfg, g, AlgorithmId::Pr, 0);
}

TEST(GdsAccel, FootprintSmallerThanSrcVidFormats)
{
    const auto g = testGraph(2000, 16000, 40);
    auto bfs = algo::makeAlgorithm(AlgorithmId::Bfs);
    GdsAccel accel(GdsConfig{}, g, *bfs);
    // Unweighted run: edges at 4 B, active records at 12 B. The edge
    // array alone dominates; total must be below a src_vid design.
    const std::uint64_t edges4 = g.numEdges() * 4;
    EXPECT_GE(accel.footprintBytes(), edges4);
    EXPECT_LT(accel.footprintBytes(), edges4 * 3);
}

TEST(GdsAccel, WeightedAlgorithmNeedsWeights)
{
    const auto g = graph::uniform(100, 500, 1, false);
    auto sssp = algo::makeAlgorithm(AlgorithmId::Sssp);
    EXPECT_THROW(GdsAccel(GdsConfig{}, g, *sssp), ConfigError);
}

TEST(GdsAccel, SourceOutOfRange)
{
    const auto g = graph::uniform(100, 500, 1, true);
    auto bfs = algo::makeAlgorithm(AlgorithmId::Bfs);
    GdsAccel accel(GdsConfig{}, g, *bfs);
    RunOptions run;
    run.source = 100;
    EXPECT_THROW((void)accel.run(run), ConfigError);
}

/**
 * The full cross-product sweep: every algorithm, with every single
 * ablation knob disabled, still computes exactly the reference result
 * (the knobs change timing, never semantics).
 */
class AblationSweep
    : public ::testing::TestWithParam<std::tuple<AlgorithmId, int>>
{};

TEST_P(AblationSweep, ResultsInvariantUnderKnobs)
{
    const auto [id, knob] = GetParam();
    GdsConfig cfg;
    // Near convergence, activation-gated PR is inherently sensitive to
    // the floating-point reduce order (a deactivated vertex's contribution
    // drops out of its neighbours' sums entirely), so the PR sweep stops
    // while every vertex is still active and trajectories stay comparable.
    cfg.maxIterations = id == AlgorithmId::Pr ? 8 : 25;
    switch (knob) {
      case 0:
        cfg.workloadBalance = false;
        break;
      case 1:
        cfg.exactPrefetch = false;
        break;
      case 2:
        cfg.zeroStallAtomics = false;
        break;
      case 3:
        cfg.updateScheduling = false;
        break;
      default:
        break; // full configuration
    }
    const auto g = testGraph(1200, 9600, 50 + knob);
    expectMatchesReference(cfg, g, id, algo::defaultSource(g));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllKnobs, AblationSweep,
    ::testing::Combine(::testing::Values(AlgorithmId::Bfs,
                                         AlgorithmId::Sssp, AlgorithmId::Cc,
                                         AlgorithmId::Sswp,
                                         AlgorithmId::Pr),
                       ::testing::Values(0, 1, 2, 3, 4)));

/** UE-count sweep (Fig. 14e hardware space) preserves results. */
class UeSweep : public ::testing::TestWithParam<unsigned>
{};

TEST_P(UeSweep, ResultsInvariantUnderUeCount)
{
    GdsConfig cfg;
    cfg.numUes = GetParam();
    cfg.maxIterations = 20;
    const auto g = testGraph(1500, 12000, 60);
    expectMatchesReference(cfg, g, AlgorithmId::Sssp,
                           algo::defaultSource(g));
}

INSTANTIATE_TEST_SUITE_P(UeCounts, UeSweep,
                         ::testing::Values(32u, 64u, 128u, 256u));

} // namespace
} // namespace gds::core
