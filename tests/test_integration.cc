/**
 * @file
 * Cross-system integration tests: the three engines agree functionally
 * on the same workloads, and the paper's headline *relations* hold on
 * skewed graphs -- GraphDynS is faster than Graphicionado, moves fewer
 * bytes, needs less storage than both baselines, skips updates the
 * baseline cannot, and the ablation chain WB <= WE <= WEA <= WEAU is
 * monotone in performance. These are the invariants the Fig. 6-14
 * benches quantify; here they are enforced as pass/fail properties on
 * small graphs.
 */

#include <gtest/gtest.h>

#include "baseline/graphicionado.hh"
#include "baseline/gunrock_sim.hh"
#include "core/gds_accel.hh"
#include "energy/energy_model.hh"
#include "graph/generators.hh"
#include "harness/experiment.hh"

namespace gds
{
namespace
{

using algo::AlgorithmId;

graph::Csr
skewed(VertexId v, EdgeId e, std::uint64_t seed)
{
    return graph::powerLaw(v, e, 0.6, seed, true);
}

TEST(Integration, AllThreeSystemsAgreeOnSssp)
{
    const auto g = skewed(3000, 30000, 201);
    const VertexId source = algo::defaultSource(g);

    auto a1 = algo::makeAlgorithm(AlgorithmId::Sssp);
    auto a2 = algo::makeAlgorithm(AlgorithmId::Sssp);
    auto a3 = algo::makeAlgorithm(AlgorithmId::Sssp);

    core::GdsAccel gds(core::GdsConfig{}, g, *a1);
    baseline::GraphicionadoAccel gi(baseline::GraphicionadoConfig{}, g,
                                    *a2);
    baseline::GunrockSim gpu(baseline::GunrockConfig{}, g, *a3);

    core::RunOptions run;
    run.source = source;
    const auto r_gds = gds.run(run);
    const auto r_gi = gi.run(run);
    const auto r_gpu = gpu.run(source);

    for (VertexId v = 0; v < g.numVertices(); ++v) {
        ASSERT_EQ(r_gds.properties[v], r_gi.properties[v]);
        ASSERT_EQ(r_gds.properties[v], r_gpu.properties[v]);
    }
}

TEST(Integration, HeadlineRelationsOnSkewedGraph)
{
    const auto g = skewed(10000, 150000, 202);
    auto a1 = algo::makeAlgorithm(AlgorithmId::Pr);
    auto a2 = algo::makeAlgorithm(AlgorithmId::Pr);
    core::GdsConfig gds_cfg;
    gds_cfg.maxIterations = 5;
    baseline::GraphicionadoConfig gi_cfg;
    gi_cfg.maxIterations = 5;

    core::GdsAccel gds(gds_cfg, g, *a1);
    baseline::GraphicionadoAccel gi(gi_cfg, g, *a2);
    const auto r_gds = gds.run();
    const auto r_gi = gi.run();

    // Fig. 6: faster. Fig. 12: fewer bytes. Fig. 11: smaller footprint.
    EXPECT_LT(r_gds.cycles, r_gi.cycles);
    EXPECT_LT(r_gds.memoryBytes, r_gi.memoryBytes);
    EXPECT_LT(r_gds.footprintBytes, r_gi.footprintBytes);

    // Fig. 9 accounting: lower energy too (same memory system).
    energy::EnergyModel model;
    const double e_gds =
        model.gdsEnergy(gds_cfg, r_gds.cycles, r_gds.memoryBytes).totalJ();
    const double e_gi = model.graphicionadoEnergy(gi_cfg, r_gi.cycles,
                                                  r_gi.memoryBytes)
                            .totalJ();
    EXPECT_LT(e_gds, e_gi);
}

TEST(Integration, AblationChainIsMonotoneOnPr)
{
    // Each added technique may only help (on a skewed, conflict-heavy
    // workload): time(WB) >= time(WE) >= time(WEA) >= time(WEAU).
    const auto g = skewed(8000, 120000, 203);
    double previous = 1e300;
    for (const auto variant :
         {harness::GdsVariant::Wb, harness::GdsVariant::We,
          harness::GdsVariant::Wea, harness::GdsVariant::Full}) {
        const auto r =
            harness::runGds(AlgorithmId::Pr, "toy", g, variant);
        EXPECT_LE(r.seconds, previous * 1.02) // 2% modelling slack
            << "variant " << harness::variantName(variant);
        previous = r.seconds;
    }
}

TEST(Integration, UpdateSchedulingSkipsWhatGraphicionadoCannot)
{
    const auto g = skewed(6000, 48000, 204);
    auto a1 = algo::makeAlgorithm(AlgorithmId::Bfs);
    auto a2 = algo::makeAlgorithm(AlgorithmId::Bfs);
    core::GdsAccel gds(core::GdsConfig{}, g, *a1);
    baseline::GraphicionadoAccel gi(baseline::GraphicionadoConfig{}, g,
                                    *a2);
    core::RunOptions run;
    run.source = algo::defaultSource(g);
    const auto r_gds = gds.run(run);
    const auto r_gi = gi.run(run);
    EXPECT_GT(r_gds.updatesSkipped, 0u);
    EXPECT_EQ(r_gi.updatesSkipped, 0u);
    // Same functional outcome regardless.
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(r_gds.properties[v], r_gi.properties[v]);
}

TEST(Integration, GraphicionadoStallsWhereGraphDynSDoesNot)
{
    const auto g = skewed(4000, 64000, 205);
    auto a1 = algo::makeAlgorithm(AlgorithmId::Pr);
    auto a2 = algo::makeAlgorithm(AlgorithmId::Pr);
    core::GdsConfig gds_cfg;
    gds_cfg.maxIterations = 4;
    baseline::GraphicionadoConfig gi_cfg;
    gi_cfg.maxIterations = 4;
    core::GdsAccel gds(gds_cfg, g, *a1);
    baseline::GraphicionadoAccel gi(gi_cfg, g, *a2);
    const auto r_gds = gds.run();
    const auto r_gi = gi.run();
    EXPECT_EQ(r_gds.atomicStalls, 0u);
    EXPECT_GT(r_gi.atomicStalls, 0u);
}

TEST(Integration, SlicedRunsAgreeAcrossSystems)
{
    // Force both accelerators to slice and verify functional agreement.
    const auto g = skewed(3000, 24000, 206);
    auto a1 = algo::makeAlgorithm(AlgorithmId::Sssp);
    auto a2 = algo::makeAlgorithm(AlgorithmId::Sssp);
    core::GdsConfig gds_cfg;
    gds_cfg.vbBytesPerUe = 32; // 1024-vertex slices
    baseline::GraphicionadoConfig gi_cfg;
    gi_cfg.onChipBytes = 1024 * bytesPerWord;
    core::GdsAccel gds(gds_cfg, g, *a1);
    baseline::GraphicionadoAccel gi(gi_cfg, g, *a2);
    EXPECT_GT(gds.numSlices(), 1u);
    EXPECT_GT(gi.numSlices(), 1u);
    core::RunOptions run;
    run.source = algo::defaultSource(g);
    const auto r_gds = gds.run(run);
    const auto r_gi = gi.run(run);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(r_gds.properties[v], r_gi.properties[v]);
}

TEST(Integration, GridWorkloadAllSystems)
{
    // The opposite workload extreme: long-diameter, bounded-degree.
    const auto g = graph::grid2d(50, 50, 207, true);
    auto a1 = algo::makeAlgorithm(AlgorithmId::Sswp);
    auto a2 = algo::makeAlgorithm(AlgorithmId::Sswp);
    core::GdsAccel gds(core::GdsConfig{}, g, *a1);
    baseline::GraphicionadoAccel gi(baseline::GraphicionadoConfig{}, g,
                                    *a2);
    core::RunOptions run;
    run.source = 0;
    const auto r_gds = gds.run(run);
    const auto r_gi = gi.run(run);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(r_gds.properties[v], r_gi.properties[v]);
}

/** New generator families also round-trip through the whole stack. */
class GeneratorIntegration : public ::testing::TestWithParam<int>
{};

TEST_P(GeneratorIntegration, GdsMatchesReferenceOnFamily)
{
    graph::Csr g;
    switch (GetParam()) {
      case 0:
        g = graph::barabasiAlbert(1500, 4, 208, true);
        break;
      case 1:
        g = graph::wattsStrogatz(1500, 8, 0.2, 209, true);
        break;
      default:
        g = graph::uniform(1500, 12000, 210, true);
        break;
    }
    auto sim_algo = algo::makeAlgorithm(AlgorithmId::Sssp);
    auto ref_algo = algo::makeAlgorithm(AlgorithmId::Sssp);
    const VertexId source = algo::defaultSource(g);
    core::GdsAccel accel(core::GdsConfig{}, g, *sim_algo);
    core::RunOptions run;
    run.source = source;
    const auto r = accel.run(run);
    const auto golden = algo::runReference(g, *ref_algo, source);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(r.properties[v], golden.properties[v]);
}

INSTANTIATE_TEST_SUITE_P(Families, GeneratorIntegration,
                         ::testing::Values(0, 1, 2));

} // namespace
} // namespace gds
