/**
 * @file
 * End-to-end checkpoint/restore tests: resume exactness across the
 * accelerator x telemetry x fault-injection x fast-forward matrix,
 * SIGKILL crash injection at arbitrary cycles (including mid-checkpoint-
 * write tears), typed rejection of corrupt checkpoint files, fallback to
 * the previous good checkpoint, and the graceful-stop final snapshot.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "algo/vcpm.hh"
#include "baseline/graphicionado.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "sim/checkpoint.hh"

namespace gds
{
namespace
{

/** One point of the resume-exactness matrix. */
struct Scenario
{
    bool graphicionado = false;
    bool telemetry = false;
    bool faults = false;
    bool fastForward = true;

    std::string
    tag() const
    {
        std::string t = graphicionado ? "gio" : "gds";
        t += telemetry ? "_tel" : "_notel";
        t += faults ? "_flt" : "_noflt";
        t += fastForward ? "_ff" : "_noff";
        return t;
    }
};

/** Everything a run produces that resume exactness is judged on. */
struct RunArtifacts
{
    core::RunResult result;
    std::string stats;   ///< full statsGroup() dump
    std::string samples; ///< sampler CSV (telemetry scenarios)
    std::string trace;   ///< tracer JSON (telemetry scenarios)
};

constexpr Cycle kSampleInterval = 512;
constexpr Cycle kCounterInterval = 2048;

core::RunOptions
baseOptions(const Scenario &sc, const graph::Csr &g)
{
    core::RunOptions o;
    o.source = algo::defaultSource(g);
    o.fastForward = sc.fastForward;
    if (sc.faults) {
        o.faults.seed = 9;
        o.faults.delayResponseProb = 0.02;
        o.faults.delayCycles = 64;
    }
    return o;
}

/** Run one scenario to completion (or the given budget) and collect the
 *  exactness artifacts. */
RunArtifacts
runScenario(const Scenario &sc, const graph::Csr &g, algo::AlgorithmId id,
            const core::CheckpointOptions &ckpt, Cycle cycle_budget = 0)
{
    auto a = algo::makeAlgorithm(id);
    core::RunOptions o = baseOptions(sc, g);
    o.checkpoint = ckpt;
    if (cycle_budget != 0)
        o.cycleBudget = cycle_budget;

    obs::Sampler sampler;
    obs::Tracer tracer;
    std::optional<obs::ScopedActiveTracer> trace_scope;
    if (sc.telemetry) {
        sampler.setInterval(kSampleInterval);
        o.sampler = &sampler;
        trace_scope.emplace(&tracer);
        o.traceCounterInterval = kCounterInterval;
    }

    RunArtifacts art;
    std::ostringstream stats;
    if (sc.graphicionado) {
        baseline::GraphicionadoConfig cfg;
        baseline::GraphicionadoAccel accel(cfg, g, *a);
        art.result = accel.run(o);
        accel.statsGroup().dump(stats);
    } else {
        core::GdsConfig cfg;
        core::GdsAccel accel(cfg, g, *a);
        art.result = accel.run(o);
        accel.statsGroup().dump(stats);
    }
    art.stats = stats.str();
    if (sc.telemetry) {
        std::ostringstream csv;
        sampler.writeCsv(csv);
        art.samples = csv.str();
        std::ostringstream tr;
        tracer.write(tr);
        art.trace = tr.str();
    }
    return art;
}

void
expectExactMatch(const RunArtifacts &resumed, const RunArtifacts &ref)
{
    EXPECT_TRUE(resumed.result.completed());
    EXPECT_EQ(resumed.result.properties, ref.result.properties);
    EXPECT_EQ(resumed.result.cycles, ref.result.cycles);
    EXPECT_EQ(resumed.result.iterations, ref.result.iterations);
    EXPECT_EQ(resumed.result.edgesProcessed, ref.result.edgesProcessed);
    EXPECT_EQ(resumed.result.memoryBytes, ref.result.memoryBytes);
    EXPECT_EQ(resumed.stats, ref.stats);
    EXPECT_EQ(resumed.samples, ref.samples);
    EXPECT_EQ(resumed.trace, ref.trace);
}

/** Tests run in a scratch directory (checkpoints are CWD-relative). */
class CheckpointTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        original = std::filesystem::current_path();
        scratch = std::filesystem::temp_directory_path() /
                  ("gds_ckpt_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(scratch);
        std::filesystem::current_path(scratch);
    }

    void
    TearDown() override
    {
        sim::clearStopRequest();
        std::filesystem::current_path(original);
        std::filesystem::remove_all(scratch);
    }

    std::filesystem::path original;
    std::filesystem::path scratch;
};

/** Small deterministic test graph (weights feed SSSP-style algorithms). */
graph::Csr
testGraph()
{
    return graph::rmat(8, 8, 42, {}, true);
}

// --- Resume exactness across the full matrix ------------------------------

TEST_F(CheckpointTest, ResumeIsBitExactAcrossTheMatrix)
{
    const graph::Csr g = testGraph();
    const algo::AlgorithmId id = algo::AlgorithmId::Sssp;

    for (const bool gio : {false, true}) {
        for (const bool telemetry : {false, true}) {
            for (const bool faults : {false, true}) {
                for (const bool ff : {false, true}) {
                    const Scenario sc{gio, telemetry, faults, ff};
                    SCOPED_TRACE(sc.tag());
                    const RunArtifacts ref = runScenario(sc, g, id, {});
                    ASSERT_TRUE(ref.result.completed());
                    ASSERT_GT(ref.result.cycles, 10u);

                    // Interrupt at two different depths of the run.
                    for (const double frac : {0.3, 0.7}) {
                        SCOPED_TRACE(frac);
                        const Cycle budget = std::max<Cycle>(
                            2, static_cast<Cycle>(
                                   frac *
                                   static_cast<double>(ref.result.cycles)));
                        core::CheckpointOptions ck;
                        ck.dir = "ckpt";
                        ck.basename = sc.tag();
                        ck.interval = std::max<Cycle>(1, budget / 3);
                        const RunArtifacts cut =
                            runScenario(sc, g, id, ck, budget);
                        ASSERT_FALSE(cut.result.completed());

                        ck.resume = true;
                        ck.interval = 0;
                        const RunArtifacts resumed =
                            runScenario(sc, g, id, ck);
                        expectExactMatch(resumed, ref);

                        // A completed run leaves nothing to resume.
                        const sim::CheckpointStore store("ckpt", sc.tag());
                        EXPECT_FALSE(std::filesystem::exists(
                            store.currentPath()));
                        EXPECT_FALSE(std::filesystem::exists(
                            store.previousPath()));
                    }
                }
            }
        }
    }
}

// --- Identity and corruption handling -------------------------------------

TEST_F(CheckpointTest, MismatchedIdentityStartsCleanAndStillCompletes)
{
    const graph::Csr g = testGraph();
    const algo::AlgorithmId id = algo::AlgorithmId::Bfs;
    const Scenario sc;
    const RunArtifacts ref = runScenario(sc, g, id, {});
    ASSERT_TRUE(ref.result.completed());

    core::CheckpointOptions ck;
    ck.dir = "ckpt";
    ck.basename = "ident";
    ck.identity = "config-A";
    ck.interval = std::max<Cycle>(1, ref.result.cycles / 4);
    const RunArtifacts cut =
        runScenario(sc, g, id, ck, ref.result.cycles / 2);
    ASSERT_FALSE(cut.result.completed());

    // A different identity salt refuses the checkpoint (with a warning)
    // and restarts from cycle zero — never resumes foreign state.
    ck.identity = "config-B";
    ck.resume = true;
    ck.interval = 0;
    const RunArtifacts resumed = runScenario(sc, g, id, ck);
    expectExactMatch(resumed, ref);
}

TEST_F(CheckpointTest, CorruptCheckpointFilesAreRejectedWithTypedErrors)
{
    const graph::Csr g = testGraph();
    const algo::AlgorithmId id = algo::AlgorithmId::Bfs;
    const Scenario sc;
    const RunArtifacts ref = runScenario(sc, g, id, {});

    core::CheckpointOptions ck;
    ck.dir = "ckpt";
    ck.basename = "corrupt";
    ck.interval = std::max<Cycle>(1, ref.result.cycles / 4);
    runScenario(sc, g, id, ck, ref.result.cycles / 2);
    const sim::CheckpointStore store("ckpt", "corrupt");
    ASSERT_TRUE(std::filesystem::exists(store.currentPath()));

    // The pristine file parses.
    EXPECT_NO_THROW(sim::CheckpointStore::readFile(store.currentPath()));

    auto corrupted_copy = [&](const char *name,
                              const std::function<void(std::string)> &mutate) {
        const std::string path = std::string("ckpt/") + name;
        std::filesystem::copy_file(store.currentPath(), path);
        mutate(path);
        return path;
    };

    // Truncated: the trailing checksum (at least) is gone.
    const auto size = std::filesystem::file_size(store.currentPath());
    const std::string truncated =
        corrupted_copy("truncated.ckpt", [&](const std::string &p) {
            std::filesystem::resize_file(p, size / 2);
        });
    EXPECT_THROW(sim::CheckpointStore::readFile(truncated), CheckpointError);

    // One flipped payload byte: the checksum no longer matches.
    const std::string flipped =
        corrupted_copy("flipped.ckpt", [&](const std::string &p) {
            std::fstream f(p, std::ios::in | std::ios::out |
                                  std::ios::binary);
            f.seekp(static_cast<std::streamoff>(size / 2));
            f.put('\x5a');
        });
    EXPECT_THROW(sim::CheckpointStore::readFile(flipped), CheckpointError);

    // A wrong magic is not a checkpoint at all.
    const std::string wrong_magic =
        corrupted_copy("magic.ckpt", [&](const std::string &p) {
            std::fstream f(p, std::ios::in | std::ios::out |
                                  std::ios::binary);
            f.seekp(0);
            f.write("NOTACKPT", 8);
        });
    EXPECT_THROW(sim::CheckpointStore::readFile(wrong_magic),
                 CheckpointError);

    // An empty file is rejected, not misparsed.
    { std::ofstream empty("ckpt/empty.ckpt"); }
    EXPECT_THROW(sim::CheckpointStore::readFile("ckpt/empty.ckpt"),
                 CheckpointError);
}

TEST_F(CheckpointTest, TornCurrentFallsBackToPreviousAndResumesExactly)
{
    const graph::Csr g = testGraph();
    const algo::AlgorithmId id = algo::AlgorithmId::Bfs;
    const Scenario sc;
    const RunArtifacts ref = runScenario(sc, g, id, {});
    ASSERT_TRUE(ref.result.completed());

    // Enough checkpoints that both current and .prev exist.
    core::CheckpointOptions ck;
    ck.dir = "ckpt";
    ck.basename = "torn";
    ck.interval = std::max<Cycle>(1, ref.result.cycles / 8);
    runScenario(sc, g, id, ck, (ref.result.cycles * 3) / 4);
    const sim::CheckpointStore store("ckpt", "torn");
    ASSERT_TRUE(std::filesystem::exists(store.currentPath()));
    ASSERT_TRUE(std::filesystem::exists(store.previousPath()));

    // Tear the current file the way an interrupted non-durable writer
    // would; the loader must report the fallback, not an error.
    const auto size = std::filesystem::file_size(store.currentPath());
    std::filesystem::resize_file(store.currentPath(), size / 2);
    std::string reason;
    const auto loaded = store.loadLatest(&reason);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->usedFallback);
    EXPECT_FALSE(reason.empty());

    ck.resume = true;
    ck.interval = 0;
    const RunArtifacts resumed = runScenario(sc, g, id, ck);
    expectExactMatch(resumed, ref);
}

// --- Crash injection: SIGKILL mid-run and mid-checkpoint-write ------------

/** Fork; the child runs the scenario and must die by SIGKILL. */
void
runChildExpectingSigkill(const std::function<void()> &child_body)
{
    ::fflush(nullptr);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
        child_body();
        // Reaching here means the kill never fired; signal failure
        // without running atexit/gtest teardown in the child.
        ::_exit(7);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child exited with status " << status << " instead of a signal";
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
}

TEST_F(CheckpointTest, SigkillAtArbitraryCyclesThenResumeIsExact)
{
    const graph::Csr g = testGraph();
    const algo::AlgorithmId id = algo::AlgorithmId::Sssp;
    const Scenario sc;
    const RunArtifacts ref = runScenario(sc, g, id, {});
    ASSERT_TRUE(ref.result.completed());

    for (const double frac : {0.25, 0.55, 0.85}) {
        SCOPED_TRACE(frac);
        core::CheckpointOptions ck;
        ck.dir = "ckpt";
        ck.basename = "kill" + std::to_string(static_cast<int>(frac * 100));
        ck.interval = std::max<Cycle>(1, ref.result.cycles / 10);
        const Cycle kill_at = std::max<Cycle>(
            1,
            static_cast<Cycle>(frac *
                               static_cast<double>(ref.result.cycles)));
        runChildExpectingSigkill([&] {
            auto a = algo::makeAlgorithm(id);
            core::RunOptions o = baseOptions(sc, g);
            o.checkpoint = ck;
            o.killAtCycle = kill_at;
            core::GdsConfig cfg;
            core::GdsAccel accel(cfg, g, *a);
            accel.run(o);
        });

        ck.resume = true;
        ck.interval = 0;
        const RunArtifacts resumed = runScenario(sc, g, id, ck);
        expectExactMatch(resumed, ref);
    }
}

TEST_F(CheckpointTest, SigkillMidCheckpointWriteUsesPreviousGoodFile)
{
    const graph::Csr g = testGraph();
    const algo::AlgorithmId id = algo::AlgorithmId::Bfs;
    const Scenario sc;
    const RunArtifacts ref = runScenario(sc, g, id, {});
    ASSERT_TRUE(ref.result.completed());

    core::CheckpointOptions ck;
    ck.dir = "ckpt";
    ck.basename = "midwrite";
    ck.interval = std::max<Cycle>(1, ref.result.cycles / 6);
    runChildExpectingSigkill([&] {
        // The third checkpoint write truncates the freshly published
        // file to half its size and SIGKILLs the process.
        ::setenv("GDS_CKPT_KILL_MID_WRITE", "3", 1);
        auto a = algo::makeAlgorithm(id);
        core::RunOptions o = baseOptions(sc, g);
        o.checkpoint = ck;
        core::GdsConfig cfg;
        core::GdsAccel accel(cfg, g, *a);
        accel.run(o);
    });

    // The tear is detected and the previous good checkpoint supplies the
    // resume state.
    const sim::CheckpointStore store("ckpt", "midwrite");
    std::string reason;
    const auto loaded = store.loadLatest(&reason);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_TRUE(loaded->usedFallback);
    EXPECT_FALSE(reason.empty());

    ck.resume = true;
    ck.interval = 0;
    const RunArtifacts resumed = runScenario(sc, g, id, ck);
    expectExactMatch(resumed, ref);
}

// --- Graceful stop --------------------------------------------------------

TEST_F(CheckpointTest, GracefulStopWritesFinalCheckpointAndResumes)
{
    const graph::Csr g = testGraph();
    const algo::AlgorithmId id = algo::AlgorithmId::Bfs;
    const Scenario sc;
    const RunArtifacts ref = runScenario(sc, g, id, {});
    ASSERT_TRUE(ref.result.completed());

    // A pre-raised stop flag halts the run at the first watchdog boundary
    // (the same path a SIGINT/SIGTERM handler takes) and writes a final
    // checkpoint even with no periodic interval configured.
    core::CheckpointOptions ck;
    ck.dir = "ckpt";
    ck.basename = "stop";
    sim::requestStop();
    const RunArtifacts stopped = runScenario(sc, g, id, ck);
    sim::clearStopRequest();
    ASSERT_FALSE(stopped.result.completed());
    EXPECT_EQ(stopped.result.report.outcome, sim::RunOutcome::Stopped);
    const sim::CheckpointStore store("ckpt", "stop");
    EXPECT_TRUE(std::filesystem::exists(store.currentPath()));

    ck.resume = true;
    const RunArtifacts resumed = runScenario(sc, g, id, ck);
    expectExactMatch(resumed, ref);
}

} // namespace
} // namespace gds
