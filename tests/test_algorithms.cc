/**
 * @file
 * Tests for the five Table 2 algorithm kernels: Process_Edge / Reduce /
 * Apply semantics, initialization, activation and metadata.
 */

#include <gtest/gtest.h>

#include "algo/vcpm.hh"
#include "graph/builder.hh"

namespace gds::algo
{
namespace
{

graph::Csr
tinyGraph()
{
    std::vector<graph::CooEdge> edges = {{0, 1, 3}, {0, 2, 5}, {1, 2, 1}};
    graph::BuildOptions opts;
    opts.keepWeights = true;
    return graph::buildCsr(3, std::move(edges), opts);
}

TEST(Algorithms, FactoryProducesAllFive)
{
    for (const AlgorithmId id : allAlgorithms) {
        auto algorithm = makeAlgorithm(id);
        ASSERT_NE(algorithm, nullptr);
        EXPECT_EQ(algorithm->id(), id);
        EXPECT_FALSE(algorithm->name().empty());
    }
}

TEST(Algorithms, Names)
{
    EXPECT_EQ(algorithmName(AlgorithmId::Bfs), "BFS");
    EXPECT_EQ(algorithmName(AlgorithmId::Sssp), "SSSP");
    EXPECT_EQ(algorithmName(AlgorithmId::Cc), "CC");
    EXPECT_EQ(algorithmName(AlgorithmId::Sswp), "SSWP");
    EXPECT_EQ(algorithmName(AlgorithmId::Pr), "PR");
}

TEST(Algorithms, WeightUsageMatchesTable2)
{
    EXPECT_FALSE(makeAlgorithm(AlgorithmId::Bfs)->usesWeights());
    EXPECT_TRUE(makeAlgorithm(AlgorithmId::Sssp)->usesWeights());
    EXPECT_FALSE(makeAlgorithm(AlgorithmId::Cc)->usesWeights());
    EXPECT_TRUE(makeAlgorithm(AlgorithmId::Sswp)->usesWeights());
    EXPECT_FALSE(makeAlgorithm(AlgorithmId::Pr)->usesWeights());
}

TEST(Algorithms, InitialActivationSemantics)
{
    EXPECT_FALSE(makeAlgorithm(AlgorithmId::Bfs)->allInitiallyActive());
    EXPECT_FALSE(makeAlgorithm(AlgorithmId::Sssp)->allInitiallyActive());
    EXPECT_TRUE(makeAlgorithm(AlgorithmId::Cc)->allInitiallyActive());
    EXPECT_FALSE(makeAlgorithm(AlgorithmId::Sswp)->allInitiallyActive());
    EXPECT_TRUE(makeAlgorithm(AlgorithmId::Pr)->allInitiallyActive());
}

TEST(Bfs, Table2Kernels)
{
    auto bfs = makeAlgorithm(AlgorithmId::Bfs);
    EXPECT_EQ(bfs->processEdge(3.0f, 99), 4.0f); // u.prop + 1, weight unused
    EXPECT_EQ(bfs->reduce(5.0f, 4.0f), 4.0f);    // min
    EXPECT_EQ(bfs->reduce(3.0f, 4.0f), 3.0f);
    EXPECT_EQ(bfs->apply(7.0f, 4.0f, 0.0f), 4.0f); // min(prop, tProp)
}

TEST(Bfs, Initialization)
{
    const auto g = tinyGraph();
    auto bfs = makeAlgorithm(AlgorithmId::Bfs);
    EXPECT_EQ(bfs->initialProp(1, g, 1), 0.0f);
    EXPECT_EQ(bfs->initialProp(0, g, 1), propInf);
    EXPECT_EQ(bfs->tPropIdentity(0, g, 1), propInf);
}

TEST(Sssp, Table2Kernels)
{
    auto sssp = makeAlgorithm(AlgorithmId::Sssp);
    EXPECT_EQ(sssp->processEdge(3.0f, 7), 10.0f); // u.prop + weight
    EXPECT_EQ(sssp->reduce(12.0f, 10.0f), 10.0f);
    EXPECT_EQ(sssp->apply(15.0f, 10.0f, 0.0f), 10.0f);
}

TEST(Cc, Table2Kernels)
{
    const auto g = tinyGraph();
    auto cc = makeAlgorithm(AlgorithmId::Cc);
    EXPECT_EQ(cc->processEdge(5.0f, 3), 5.0f); // u.prop
    EXPECT_EQ(cc->reduce(7.0f, 5.0f), 5.0f);
    EXPECT_EQ(cc->apply(6.0f, 5.0f, 0.0f), 5.0f);
    EXPECT_EQ(cc->initialProp(2, g, 0), 2.0f); // label = vid
}

TEST(Sswp, Table2Kernels)
{
    const auto g = tinyGraph();
    auto sswp = makeAlgorithm(AlgorithmId::Sswp);
    EXPECT_EQ(sswp->processEdge(9.0f, 4), 4.0f);  // min(u.prop, weight)
    EXPECT_EQ(sswp->processEdge(2.0f, 4), 2.0f);
    EXPECT_EQ(sswp->reduce(3.0f, 4.0f), 4.0f);    // max
    EXPECT_EQ(sswp->apply(3.0f, 4.0f, 0.0f), 4.0f);
    EXPECT_EQ(sswp->initialProp(1, g, 1), propInf);
    EXPECT_EQ(sswp->initialProp(0, g, 1), 0.0f);
    EXPECT_EQ(sswp->tPropIdentity(0, g, 1), 0.0f);
}

TEST(Pr, Table2Kernels)
{
    const auto g = tinyGraph();
    auto pr = makeAlgorithm(AlgorithmId::Pr);
    pr->bind(g);
    EXPECT_EQ(pr->processEdge(0.25f, 3), 0.25f);        // u.prop
    EXPECT_EQ(pr->reduce(0.25f, 0.125f), 0.375f);       // accumulate
    // apply = (alpha + 0.85 * tProp) / deg with alpha = 0.15 / 3.
    const PropValue expected = (0.15f / 3.0f + 0.85f * 0.3f) / 2.0f;
    EXPECT_FLOAT_EQ(pr->apply(0.0f, 0.3f, 2.0f), expected);
}

TEST(Pr, PropStoresRankOverDegree)
{
    const auto g = tinyGraph();
    auto pr = makeAlgorithm(AlgorithmId::Pr);
    pr->bind(g);
    // rank_0 = 1/3; vertex 0 has degree 2.
    EXPECT_FLOAT_EQ(pr->initialProp(0, g, 0), (1.0f / 3.0f) / 2.0f);
    // vertex 2 has degree 0; cProp clamps to 1.
    EXPECT_FLOAT_EQ(pr->constProp(2, g), 1.0f);
    EXPECT_TRUE(pr->usesConstProp());
    EXPECT_TRUE(pr->tPropResetsEachIteration());
}

TEST(Pr, ChangedUsesRelativeTolerance)
{
    auto pr = makeAlgorithm(AlgorithmId::Pr);
    EXPECT_FALSE(pr->changed(1.0f, 1.0f));
    EXPECT_FALSE(pr->changed(1.0f, 1.0f + 1e-6f));
    EXPECT_TRUE(pr->changed(1.0f, 1.001f));
    EXPECT_TRUE(pr->changed(0.0f, 0.5f));
}

TEST(Algorithms, ExactChangeSemanticsForNonPr)
{
    for (const AlgorithmId id :
         {AlgorithmId::Bfs, AlgorithmId::Sssp, AlgorithmId::Cc,
          AlgorithmId::Sswp}) {
        auto a = makeAlgorithm(id);
        EXPECT_TRUE(a->changed(1.0f, 2.0f));
        EXPECT_FALSE(a->changed(2.0f, 2.0f));
        EXPECT_FALSE(a->usesConstProp());
        EXPECT_FALSE(a->tPropResetsEachIteration());
    }
}

TEST(Algorithms, DefaultSourceIsHighestDegree)
{
    const auto g = tinyGraph();
    EXPECT_EQ(defaultSource(g), 0u); // vertex 0 has degree 2
}

} // namespace
} // namespace gds::algo
