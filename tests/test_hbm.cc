/**
 * @file
 * Tests for the cycle-level HBM model: protocol invariants (latency floors,
 * completion ordering), row-buffer behaviour (streams hit, random misses),
 * bandwidth ceilings, refresh, backpressure and statistics.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "common/rng.hh"
#include "mem/hbm.hh"

namespace gds::mem
{
namespace
{

struct Fixture
{
    explicit Fixture(HbmConfig config = {})
        : hbm(config, nullptr)
    {}

    /** Tick until the port has a response; returns cycles waited. */
    Cycle
    waitResponse(HbmPort &port, Cycle limit = 100000)
    {
        Cycle waited = 0;
        while (!port.hasResponse()) {
            hbm.tick();
            gds_assert(++waited < limit, "no response within %llu cycles",
                       static_cast<unsigned long long>(limit));
        }
        return waited;
    }

    /** Drain the device completely. */
    void
    drain()
    {
        while (hbm.busy())
            hbm.tick();
    }

    Hbm hbm;
};

TEST(Hbm, SingleReadCompletesWithRealisticLatency)
{
    Fixture f;
    HbmPort port;
    ASSERT_TRUE(f.hbm.access(0, 32, false, 7, &port));
    EXPECT_EQ(port.inflight(), 1u);
    const Cycle latency = f.waitResponse(port);
    EXPECT_EQ(port.popResponse(), 7u);
    EXPECT_EQ(port.inflight(), 0u);
    // Cold access: at least tRCD + tCL + tBurst.
    const auto &cfg = f.hbm.config();
    EXPECT_GE(latency, cfg.tRcd + cfg.tCl + cfg.tBurst);
    EXPECT_LE(latency, cfg.tRp + cfg.tRcd + cfg.tCl + cfg.tBurst + 5);
}

TEST(Hbm, MultiTransactionRequestCompletesOnce)
{
    Fixture f;
    HbmPort port;
    // 256 bytes = 8 transactions across 8 channels.
    ASSERT_TRUE(f.hbm.access(0, 256, false, 42, &port));
    f.waitResponse(port);
    EXPECT_EQ(port.popResponse(), 42u);
    EXPECT_FALSE(port.hasResponse());
    EXPECT_EQ(f.hbm.statsGroup().scalar("transactions").value(), 8.0);
}

TEST(Hbm, UnalignedRequestCoversBothTransactions)
{
    Fixture f;
    HbmPort port;
    // 8 bytes straddling a 32 B boundary -> 2 transactions.
    ASSERT_TRUE(f.hbm.access(28, 8, false, 1, &port));
    f.waitResponse(port);
    port.popResponse();
    EXPECT_EQ(f.hbm.statsGroup().scalar("transactions").value(), 2.0);
}

TEST(Hbm, ReadWriteBytesAccounted)
{
    Fixture f;
    HbmPort port;
    ASSERT_TRUE(f.hbm.access(0, 64, false, 1, &port));
    ASSERT_TRUE(f.hbm.access(4096, 128, true, 2, &port));
    f.drain();
    EXPECT_EQ(f.hbm.statsGroup().scalar("readBytes").value(), 64.0);
    EXPECT_EQ(f.hbm.statsGroup().scalar("writeBytes").value(), 128.0);
    EXPECT_EQ(f.hbm.totalBytes(), 192.0);
}

TEST(Hbm, StreamingAccessRidesOpenRows)
{
    HbmConfig cfg;
    Fixture f(cfg);
    HbmPort port;
    // Stream 64 KB sequentially in 256 B requests.
    Addr addr = 0;
    unsigned outstanding = 0;
    while (addr < 65536 || outstanding > 0) {
        if (addr < 65536 && f.hbm.access(addr, 256, false, addr, &port)) {
            addr += 256;
            ++outstanding;
        }
        f.hbm.tick();
        while (port.hasResponse()) {
            port.popResponse();
            --outstanding;
        }
    }
    EXPECT_GT(f.hbm.rowHitRate(), 0.9);
}

TEST(Hbm, RandomAccessMissesRows)
{
    Fixture f;
    HbmPort port;
    Rng rng(3);
    unsigned issued = 0;
    unsigned completed = 0;
    while (completed < 2000) {
        if (issued < 2000) {
            // Random 32 B accesses over 64 MB.
            const Addr addr = alignDown(rng.below(64 * 1024 * 1024), 32);
            if (f.hbm.access(addr, 32, false, issued, &port))
                ++issued;
        }
        f.hbm.tick();
        while (port.hasResponse()) {
            port.popResponse();
            ++completed;
        }
    }
    EXPECT_LT(f.hbm.rowHitRate(), 0.3);
}

TEST(Hbm, StreamingBandwidthApproachesPeak)
{
    Fixture f;
    HbmPort port;
    // Saturate with sequential traffic for a fixed window.
    Addr addr = 0;
    for (Cycle c = 0; c < 20000; ++c) {
        while (f.hbm.access(addr, 512, false, addr, &port))
            addr += 512;
        f.hbm.tick();
        while (port.hasResponse())
            port.popResponse();
    }
    // Achieved bandwidth should exceed 70% of peak under pure streaming
    // (refresh and turnaround keep it below 100%).
    EXPECT_GT(f.hbm.bandwidthUtilization(), 0.7);
    EXPECT_LE(f.hbm.bandwidthUtilization(), 1.0);
}

TEST(Hbm, RandomBandwidthWellBelowStreaming)
{
    Fixture f;
    HbmPort port;
    Rng rng(5);
    for (Cycle c = 0; c < 20000; ++c) {
        for (int k = 0; k < 32; ++k) {
            const Addr addr = alignDown(rng.below(256 * 1024 * 1024), 32);
            if (!f.hbm.access(addr, 32, false, c * 32 + k, &port))
                break;
        }
        f.hbm.tick();
        while (port.hasResponse())
            port.popResponse();
    }
    EXPECT_LT(f.hbm.bandwidthUtilization(), 0.5);
}

TEST(Hbm, BackpressureWhenQueuesFull)
{
    HbmConfig cfg;
    cfg.queueDepth = 4;
    Fixture f(cfg);
    HbmPort port;
    // Hammer one channel (stride = numChannels * txBytes keeps the same
    // channel) without ticking; admission must eventually refuse.
    bool refused = false;
    for (int i = 0; i < 100; ++i) {
        const Addr addr = static_cast<Addr>(i) * cfg.numChannels *
                          cfg.txBytes;
        if (!f.hbm.access(addr, 32, false, i, &port)) {
            refused = true;
            break;
        }
    }
    EXPECT_TRUE(refused);
    f.drain();
}

TEST(Hbm, RefusedAccessChangesNothing)
{
    HbmConfig cfg;
    cfg.queueDepth = 2;
    Fixture f(cfg);
    HbmPort port;
    int accepted = 0;
    for (int i = 0; i < 50; ++i) {
        const Addr addr = static_cast<Addr>(i) * cfg.numChannels *
                          cfg.txBytes;
        if (f.hbm.access(addr, 32, false, i, &port))
            ++accepted;
    }
    const double bytes = f.hbm.totalBytes();
    EXPECT_EQ(bytes, 32.0 * accepted);
    f.drain();
    // Exactly the accepted requests complete.
    int responses = 0;
    while (port.hasResponse()) {
        port.popResponse();
        ++responses;
    }
    EXPECT_EQ(responses, accepted);
}

TEST(Hbm, RefreshesHappen)
{
    Fixture f;
    HbmPort port;
    for (Cycle c = 0; c < 10000; ++c)
        f.hbm.tick();
    // 32 channels, tREFI 3900: ~2.5 refreshes per channel in 10k cycles.
    EXPECT_GT(f.hbm.statsGroup().scalar("refreshes").value(), 32.0);
}

TEST(Hbm, PeakBandwidthConfig)
{
    HbmConfig cfg;
    // Table 3: 512 GB/s at 1 GHz = 512 B/cycle.
    EXPECT_EQ(cfg.peakBytesPerCycle(), 512.0);
}

TEST(Hbm, ResponsesPreserveWorkConservation)
{
    Fixture f;
    HbmPort a;
    HbmPort b;
    int issued_a = 0;
    int issued_b = 0;
    Rng rng(9);
    for (Cycle c = 0; c < 5000; ++c) {
        if (c % 2 == 0 &&
            f.hbm.access(alignDown(rng.below(1 << 20), 32), 32, false,
                         issued_a, &a))
            ++issued_a;
        if (c % 3 == 0 &&
            f.hbm.access(alignDown(rng.below(1 << 20), 32), 64, true,
                         issued_b, &b))
            ++issued_b;
        f.hbm.tick();
    }
    f.drain();
    int got_a = 0;
    int got_b = 0;
    while (a.hasResponse()) {
        a.popResponse();
        ++got_a;
    }
    while (b.hasResponse()) {
        b.popResponse();
        ++got_b;
    }
    EXPECT_EQ(got_a, issued_a);
    EXPECT_EQ(got_b, issued_b);
    EXPECT_FALSE(f.hbm.busy());
}

TEST(HbmDeath, ZeroLengthRequestPanics)
{
    Fixture f;
    HbmPort port;
    EXPECT_DEATH((void)f.hbm.access(0, 0, false, 0, &port), "zero-length");
}

} // namespace
} // namespace gds::mem

namespace gds::mem
{
namespace
{

TEST(Hbm, TrrdLimitsActivateRate)
{
    // All-miss traffic to distinct banks: without tRRD the channel could
    // activate every cycle; with tRRD=4 misses are spaced apart.
    HbmConfig fast_cfg;
    fast_cfg.numChannels = 1;
    fast_cfg.tRrd = 1;
    HbmConfig slow_cfg = fast_cfg;
    slow_cfg.tRrd = 16;

    auto run = [](const HbmConfig &cfg) {
        Hbm hbm(cfg, nullptr);
        HbmPort port;
        Rng rng(3);
        for (Cycle c = 0; c < 20000; ++c) {
            for (int k = 0; k < 4; ++k) {
                const Addr addr = alignDown(rng.below(1ULL << 28), 32);
                if (!hbm.access(addr, 32, false, c, &port))
                    break;
            }
            hbm.tick();
            while (port.hasResponse())
                port.popResponse();
        }
        return hbm.totalBytes();
    };
    EXPECT_GT(run(fast_cfg), 1.5 * run(slow_cfg));
}

TEST(Hbm, PerBankRefreshDoesNotBlockOtherBanks)
{
    // A stream confined to one bank keeps flowing while other banks
    // refresh; only its own refresh slot interferes. Compare against a
    // config with refresh effectively disabled.
    HbmConfig no_refresh;
    no_refresh.numChannels = 1;
    no_refresh.tRefi = 1u << 30;
    HbmConfig with_refresh = no_refresh;
    with_refresh.tRefi = 3900;

    auto run = [](const HbmConfig &cfg) {
        Hbm hbm(cfg, nullptr);
        HbmPort port;
        Addr addr = 0;
        for (Cycle c = 0; c < 30000; ++c) {
            while (hbm.access(addr, 32, false, addr, &port))
                addr += 32;
            hbm.tick();
            while (port.hasResponse())
                port.popResponse();
        }
        return hbm.totalBytes();
    };
    const double clean = run(no_refresh);
    const double refreshed = run(with_refresh);
    // Staggered per-bank refresh perturbs throughput by a few percent,
    // not a stall storm. (It can even help slightly: refresh leaves the
    // bank precharged, making the next row activation cheaper.)
    EXPECT_GT(refreshed, 0.90 * clean);
    EXPECT_LT(refreshed, 1.10 * clean);
}

TEST(Hbm, LatencyAndOccupancyAccessorsConsistent)
{
    Fixture f;
    HbmPort port;
    for (int i = 0; i < 100; ++i)
        (void)f.hbm.access(static_cast<Addr>(i) * 4096, 64, false, i,
                           &port);
    f.drain();
    while (port.hasResponse())
        port.popResponse();
    // Little's law sanity: meanOccupancy ~= throughput x meanLatency.
    EXPECT_GT(f.hbm.meanLatency(),
              static_cast<double>(f.hbm.config().tCl));
    EXPECT_GT(f.hbm.meanOccupancy(), 0.0);
    const double tx = f.hbm.statsGroup().scalar("transactions").value();
    const double cycles = static_cast<double>(f.hbm.elapsed());
    const double expected_occ =
        tx / cycles * f.hbm.meanLatency();
    EXPECT_NEAR(f.hbm.meanOccupancy(), expected_occ,
                expected_occ * 0.75 + 1.0);
}

TEST(Hbm, WritesAndReadsShareBandwidthFairly)
{
    Fixture f;
    HbmPort rport;
    HbmPort wport;
    Addr raddr = 0;
    Addr waddr = 1ULL << 28;
    for (Cycle c = 0; c < 10000; ++c) {
        // Alternate issue order so admission does not favour one port.
        if (c % 2 == 0) {
            if (f.hbm.access(raddr, 256, false, c, &rport))
                raddr += 256;
            if (f.hbm.access(waddr, 256, true, c, &wport))
                waddr += 256;
        } else {
            if (f.hbm.access(waddr, 256, true, c, &wport))
                waddr += 256;
            if (f.hbm.access(raddr, 256, false, c, &rport))
                raddr += 256;
        }
        f.hbm.tick();
        while (rport.hasResponse())
            rport.popResponse();
        while (wport.hasResponse())
            wport.popResponse();
    }
    f.drain();
    const double reads = f.hbm.statsGroup().scalar("readBytes").value();
    const double writes = f.hbm.statsGroup().scalar("writeBytes").value();
    EXPECT_GT(reads, 0.0);
    EXPECT_NEAR(reads, writes, reads * 0.05);
}

} // namespace
} // namespace gds::mem
