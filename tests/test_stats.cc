/**
 * @file
 * Unit tests for the statistics framework: registration, accumulation,
 * hierarchy paths, lookup, dump formatting and reset.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.hh"
#include "expect_error.hh"
#include "stats/stats.hh"

namespace gds::stats
{
namespace
{

TEST(Scalar, AccumulatesAndAssigns)
{
    Group root(nullptr, "root");
    Scalar s(&root, "count", "a counter");
    EXPECT_EQ(s.value(), 0.0);
    s += 3;
    ++s;
    EXPECT_EQ(s.value(), 4.0);
    s = 10.5;
    EXPECT_EQ(s.value(), 10.5);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Vector, PerElementAndAggregates)
{
    Group root(nullptr, "root");
    Vector v(&root, "perPe", "work per PE", 4);
    v[0] = 1;
    v[1] = 2;
    v[2] = 3;
    v[3] = 10;
    EXPECT_EQ(v.total(), 16.0);
    EXPECT_EQ(v.max(), 10.0);
    EXPECT_EQ(v.min(), 1.0);
    EXPECT_EQ(v.mean(), 4.0);
    EXPECT_EQ(v.size(), 4u);
    v.reset();
    EXPECT_EQ(v.total(), 0.0);
}

TEST(VectorDeath, OutOfRangeIndexPanics)
{
    Group root(nullptr, "root");
    Vector v(&root, "v", "d", 2);
    EXPECT_DEATH(v[2] = 1, "out of");
}

TEST(Distribution, PaperBuckets)
{
    Group root(nullptr, "root");
    Distribution d(&root, "degrees", "active vertex degrees");
    d.sample(0);
    d.sample(1);
    d.sample(2);
    d.sample(3);
    d.sample(8);
    d.sample(9);
    d.sample(32);
    d.sample(33);
    d.sample(64);
    d.sample(65);
    d.sample(100000);
    EXPECT_EQ(d.count(), 11u);
    EXPECT_EQ(d.bucketCount(0), 1u); // [0,0]
    EXPECT_EQ(d.bucketCount(1), 2u); // [1,2]
    EXPECT_EQ(d.bucketCount(2), 1u); // [3,4]
    EXPECT_EQ(d.bucketCount(3), 1u); // [5,8]
    EXPECT_EQ(d.bucketCount(4), 1u); // [9,16]
    EXPECT_EQ(d.bucketCount(5), 1u); // [17,32]
    EXPECT_EQ(d.bucketCount(6), 2u); // [33,64]
    EXPECT_EQ(d.bucketCount(7), 2u); // >64
}

TEST(Distribution, BucketLabels)
{
    EXPECT_EQ(Distribution::bucketLabel(0), "[0,0]");
    EXPECT_EQ(Distribution::bucketLabel(7), ">64");
}

TEST(Group, PathsAreHierarchical)
{
    Group root(nullptr, "accel");
    Group child(&root, "pe");
    Group grand(&child, "simt");
    EXPECT_EQ(root.path(), "accel");
    EXPECT_EQ(child.path(), "accel.pe");
    EXPECT_EQ(grand.path(), "accel.pe.simt");
}

TEST(Group, LookupByDottedPath)
{
    Group root(nullptr, "root");
    Group child(&root, "mem");
    Scalar s(&child, "bytes", "bytes");
    s += 42;
    EXPECT_EQ(root.scalar("mem.bytes").value(), 42.0);
    EXPECT_EQ(child.scalar("bytes").value(), 42.0);
}

TEST(GroupErrors, LookupMissingStatThrows)
{
    Group root(nullptr, "root");
    EXPECT_TYPED_ERROR((void)root.scalar("nope"), ConfigError, "no scalar");
}

TEST(GroupErrors, DuplicateStatNameThrows)
{
    Group root(nullptr, "root");
    Scalar a(&root, "x", "first");
    EXPECT_TYPED_ERROR(Scalar(&root, "x", "second"), ConfigError,
                       "duplicate");
}

TEST(Group, DumpContainsAllStats)
{
    Group root(nullptr, "top");
    Scalar s(&root, "cycles", "total cycles");
    Group child(&root, "pe");
    Vector v(&child, "ops", "ops per lane", 2);
    s = 123;
    v[0] = 1;
    v[1] = 2;
    std::ostringstream os;
    root.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("top.cycles"), std::string::npos);
    EXPECT_NE(text.find("top.pe.ops[0]"), std::string::npos);
    EXPECT_NE(text.find("top.pe.ops[1]"), std::string::npos);
    EXPECT_NE(text.find("123"), std::string::npos);
}

TEST(Group, ResetAllRecurses)
{
    Group root(nullptr, "top");
    Scalar s(&root, "a", "a");
    Group child(&root, "sub");
    Scalar t(&child, "b", "b");
    s = 5;
    t = 7;
    root.resetAll();
    EXPECT_EQ(s.value(), 0.0);
    EXPECT_EQ(t.value(), 0.0);
}

} // namespace
} // namespace gds::stats
