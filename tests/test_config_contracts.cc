/**
 * @file
 * Tests for the compile-time and runtime configuration contracts
 * (core/config.hh): the constexpr predicate, the consteval gate on the
 * default config, and validateConfig() for configs built at runtime.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "core/config.hh"

namespace gds::core
{
namespace
{

/** Build a default config with one field overridden by @p mutate. */
template <typename F>
constexpr GdsConfig
with(F mutate)
{
    GdsConfig c;
    mutate(c);
    return c;
}

// --- Compile-time checks: these fail the build, not the test run. ---

// The paper's default configuration satisfies every contract.
static_assert(configContractsHold(GdsConfig{}));

// The consteval gate accepts it (and would reject a bad one at compile
// time: checkedConfig with nSimt = 3 is a compile error, demonstrated by
// the commented line below and by the GdsLint fixture documentation).
constexpr GdsConfig checkedDefault = checkedConfig(GdsConfig{});
static_assert(checkedDefault.nSimt == 8);
// constexpr GdsConfig bad = checkedConfig(with([](GdsConfig &c) {
//     c.nSimt = 3; })); // does not compile: nSimt must be a power of two

// Non-power-of-two fabric widths are contract violations.
static_assert(!configContractsHold(with([](GdsConfig &c) {
    c.nSimt = 3; })));
static_assert(!configContractsHold(with([](GdsConfig &c) {
    c.numPes = 12; })));
static_assert(!configContractsHold(with([](GdsConfig &c) {
    c.numUes = 100; })));

// Zero-depth queues deadlock the pipeline and are rejected.
static_assert(!configContractsHold(with([](GdsConfig &c) {
    c.ueQueueDepth = 0; })));
static_assert(!configContractsHold(with([](GdsConfig &c) {
    c.hbm.queueDepth = 0; })));

// HBM rows must be made of whole transactions.
static_assert(!configContractsHold(with([](GdsConfig &c) {
    c.hbm.rowBytes = 1000; })));
static_assert(!configContractsHold(with([](GdsConfig &c) {
    c.hbm.txBytes = 24; })));

// Scheduling parameters must be nonzero.
static_assert(!configContractsHold(with([](GdsConfig &c) {
    c.eThreshold = 0; })));
static_assert(!configContractsHold(with([](GdsConfig &c) {
    c.eListSize = 0; })));
static_assert(!configContractsHold(with([](GdsConfig &c) {
    c.maxIterations = 0; })));

// --- Runtime checks for configs built from files or sweep axes. ---

TEST(ConfigContracts, DefaultConfigValidates)
{
    EXPECT_TRUE(validateConfig(GdsConfig{}).ok());
    EXPECT_EQ(configContractViolation(GdsConfig{}), nullptr);
}

TEST(ConfigContracts, ViolationNamesTheField)
{
    GdsConfig c;
    c.nSimt = 3;
    const Status status = validateConfig(c);
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), ErrorCode::Config);
    EXPECT_NE(status.message().find("nSimt"), std::string::npos);
    EXPECT_NE(status.message().find("power of two"), std::string::npos);
}

TEST(ConfigContracts, FirstViolationWins)
{
    GdsConfig c;
    c.numPes = 0;
    c.nSimt = 0;
    const char *violation = configContractViolation(c);
    ASSERT_NE(violation, nullptr);
    EXPECT_NE(std::string(violation).find("numPes"), std::string::npos);
}

TEST(ConfigContracts, HbmGeometryChecked)
{
    GdsConfig c;
    c.hbm.rowBytes = 48; // not a multiple of txBytes = 32
    const Status status = validateConfig(c);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find("rowBytes"), std::string::npos);
}

TEST(ConfigContracts, SliceCapacityStillSaneUnderContracts)
{
    // The smallest contract-satisfying VB still holds one word per UE.
    GdsConfig c;
    c.vbBytesPerUe = bytesPerWord;
    EXPECT_TRUE(validateConfig(c).ok());
    EXPECT_GE(c.sliceCapacity(), c.numUes);
}

} // namespace
} // namespace gds::core
