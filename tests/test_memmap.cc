/**
 * @file
 * Tests for the off-chip memory layout: region placement, address
 * arithmetic, footprint accounting per engine record format, and the
 * tProp-spill rule.
 */

#include <gtest/gtest.h>

#include "core/memmap.hh"

namespace gds::core
{
namespace
{

constexpr RecordFormat gdsUnweighted{4, 12, 0};
constexpr RecordFormat gdsWeighted{8, 12, 0};
constexpr RecordFormat graphicionadoUnweighted{8, 8, 0};

TEST(MemoryLayout, RegionsArePageAlignedAndDisjoint)
{
    MemoryLayout layout(1000, 8000, gdsUnweighted, false, false);
    const Addr regions[] = {layout.offsetArrayBase(),
                            layout.edgeArrayBase(),
                            layout.vertexPropBase(),
                            layout.activeArrayBase(0),
                            layout.activeArrayBase(1),
                            layout.tPropSpillBase()};
    for (std::size_t i = 0; i < std::size(regions); ++i) {
        EXPECT_EQ(regions[i] % 4096, 0u) << "region " << i;
        for (std::size_t j = i + 1; j < std::size(regions); ++j)
            EXPECT_NE(regions[i], regions[j]);
    }
    EXPECT_GT(layout.offsetArrayBase(), 0u); // address 0 unused
}

TEST(MemoryLayout, AddressArithmetic)
{
    MemoryLayout layout(1000, 8000, gdsWeighted, true, false);
    EXPECT_EQ(layout.offsetAddr(10),
              layout.offsetArrayBase() + 10 * bytesPerWord);
    EXPECT_EQ(layout.edgeAddr(5), layout.edgeArrayBase() + 5 * 8);
    EXPECT_EQ(layout.propAddr(3),
              layout.vertexPropBase() + 3 * bytesPerWord);
    EXPECT_EQ(layout.cPropAddr(3),
              layout.constPropBase() + 3 * bytesPerWord);
    EXPECT_EQ(layout.activeRecordAddr(1, 2),
              layout.activeArrayBase(1) + 2 * 12);
}

TEST(MemoryLayout, FootprintScalesWithEdgeBytes)
{
    MemoryLayout narrow(1000, 8000, gdsUnweighted, false, false);
    MemoryLayout wide(1000, 8000, graphicionadoUnweighted, false, false);
    // Graphicionado's 8 B edges store ~4 KB more per 1000 edges.
    EXPECT_GT(wide.footprintBytes(), narrow.footprintBytes());
    EXPECT_NEAR(static_cast<double>(wide.footprintBytes() -
                                    narrow.footprintBytes()),
                8000.0 * 4, 2 * 4096.0);
}

TEST(MemoryLayout, ConstPropOnlyWhenRequested)
{
    MemoryLayout without(1000, 8000, gdsUnweighted, false, false);
    MemoryLayout with(1000, 8000, gdsUnweighted, true, false);
    EXPECT_EQ(without.constPropBase(), 0u);
    EXPECT_GT(with.constPropBase(), 0u);
    EXPECT_GT(with.footprintBytes(), without.footprintBytes());
}

TEST(MemoryLayout, TPropSpillCountsOnlyWhenOffChip)
{
    MemoryLayout on_chip(100000, 800000, gdsUnweighted, false, false);
    MemoryLayout off_chip(100000, 800000, gdsUnweighted, false, true);
    EXPECT_EQ(off_chip.footprintBytes() - on_chip.footprintBytes(),
              alignUp(100000 * bytesPerWord, 4096));
}

TEST(MemoryLayout, MetadataBytesIncluded)
{
    const RecordFormat with_meta{4, 12, 16};
    MemoryLayout plain(1000, 8000, gdsUnweighted, false, false);
    MemoryLayout meta(1000, 8000, with_meta, false, false);
    EXPECT_GE(meta.footprintBytes(),
              plain.footprintBytes() + 1000 * 16 - 4096);
}

} // namespace
} // namespace gds::core
