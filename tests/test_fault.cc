/**
 * @file
 * Tests of the deterministic fault-injection subsystem and the watchdog
 * behaviour it exists to prove: injected HBM hangs must surface as typed
 * deadlock/livelock verdicts with diagnostics (never an abort or an
 * endless loop), injected slowdowns must only delay runs without
 * corrupting results, and the harness must degrade a failing cell into
 * data while the remaining cells keep flowing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "algo/reference_engine.hh"
#include "baseline/graphicionado.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"
#include "harness/experiment.hh"
#include "sim/fault.hh"

namespace gds
{
namespace
{

using algo::AlgorithmId;

// ---------------------------------------------------------------------
// FaultPlan / FaultInjector.
// ---------------------------------------------------------------------

TEST(FaultPlan, DefaultIsFaultFreeAndValid)
{
    const sim::FaultPlan plan;
    EXPECT_FALSE(plan.any());
    EXPECT_TRUE(plan.validate().ok());
}

TEST(FaultPlan, AnyDetectsEachKnob)
{
    sim::FaultPlan p;
    p.delayResponseProb = 0.1;
    EXPECT_TRUE(p.any());
    p = {};
    p.dropAfterResponses = 100;
    EXPECT_TRUE(p.any());
    p = {};
    p.rejectRequestProb = 0.1;
    EXPECT_TRUE(p.any());
    p = {};
    p.stallOutputProb = 0.1;
    EXPECT_TRUE(p.any());
}

TEST(FaultPlan, RejectsOutOfRangeProbabilities)
{
    sim::FaultPlan p;
    p.dropResponseProb = 1.5;
    EXPECT_FALSE(p.validate().ok());
    EXPECT_THROW(sim::FaultInjector{p}, ConfigError);

    p = {};
    p.delayResponseProb = -0.1;
    EXPECT_THROW(sim::FaultInjector{p}, ConfigError);

    p = {};
    p.delayResponseProb = 0.5;
    p.delayCycles = 0;
    EXPECT_THROW(sim::FaultInjector{p}, ConfigError);
}

TEST(FaultInjector, SameSeedSameDecisions)
{
    sim::FaultPlan plan;
    plan.seed = 7;
    plan.dropResponseProb = 0.3;
    plan.delayResponseProb = 0.2;
    sim::FaultInjector a(plan);
    sim::FaultInjector b(plan);
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(a.dropResponse(), b.dropResponse());
        EXPECT_EQ(a.responseDelay(), b.responseDelay());
    }
    EXPECT_EQ(a.dropped(), b.dropped());
    EXPECT_EQ(a.delayed(), b.delayed());
    EXPECT_GT(a.dropped(), 0u);
    EXPECT_GT(a.delayed(), 0u);
}

TEST(FaultInjector, DropAfterThresholdIsExact)
{
    sim::FaultPlan plan;
    plan.dropAfterResponses = 5;
    sim::FaultInjector inj(plan);
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(inj.dropResponse()) << "response " << i;
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(inj.dropResponse());
    EXPECT_EQ(inj.responsesSeen(), 15u);
    EXPECT_EQ(inj.dropped(), 10u);
}

// ---------------------------------------------------------------------
// Injected hangs: the watchdog must convert them into typed verdicts.
// ---------------------------------------------------------------------

graph::Csr
testGraph(std::uint64_t seed)
{
    return graph::powerLaw(1000, 8000, 0.6, seed, /*weighted=*/true);
}

TEST(FaultedRun, DroppedHbmResponsesHangIsCaughtWithinBudget)
{
    const auto g = testGraph(11);
    auto bfs = algo::makeAlgorithm(AlgorithmId::Bfs);
    core::GdsAccel accel(core::GdsConfig{}, g, *bfs);

    core::RunOptions run;
    run.source = algo::defaultSource(g);
    run.cycleBudget = 5'000'000;
    run.stallCycles = 8192;
    run.faults.dropAfterResponses = 16; // wedge the run early
    const core::RunResult result = accel.run(run);

    EXPECT_FALSE(result.completed());
    // Dropped responses leave requests in flight forever: components stay
    // busy with no progress, so either verdict is acceptable depending on
    // where the run wedges -- but it must be a stall verdict, not the
    // budget, and it must come with a component snapshot.
    EXPECT_TRUE(result.report.outcome == sim::RunOutcome::Deadlock ||
                result.report.outcome == sim::RunOutcome::Livelock)
        << "got " << sim::runOutcomeName(result.report.outcome);
    EXPECT_FALSE(result.report.components.empty());
    EXPECT_FALSE(result.report.snapshotText().empty());
    EXPECT_LE(result.report.cycles, run.cycleBudget);
    EXPECT_THROW(result.report.throwIfFailed(), SimError);
}

TEST(FaultedRun, GraphicionadoHangIsCaughtToo)
{
    const auto g = testGraph(12);
    auto bfs = algo::makeAlgorithm(AlgorithmId::Bfs);
    baseline::GraphicionadoAccel accel(baseline::GraphicionadoConfig{}, g,
                                       *bfs);

    core::RunOptions run;
    run.source = algo::defaultSource(g);
    run.cycleBudget = 5'000'000;
    run.stallCycles = 8192;
    run.faults.dropAfterResponses = 16;
    const core::RunResult result = accel.run(run);

    EXPECT_FALSE(result.completed());
    EXPECT_TRUE(result.report.outcome == sim::RunOutcome::Deadlock ||
                result.report.outcome == sim::RunOutcome::Livelock);
    EXPECT_FALSE(result.report.components.empty());
    EXPECT_LE(result.report.cycles, run.cycleBudget);
}

TEST(FaultedRun, TinyCycleBudgetReportsCycleLimit)
{
    const auto g = testGraph(13);
    auto bfs = algo::makeAlgorithm(AlgorithmId::Bfs);
    core::GdsAccel accel(core::GdsConfig{}, g, *bfs);

    core::RunOptions run;
    run.source = algo::defaultSource(g);
    run.cycleBudget = 100; // far too small to finish
    const core::RunResult result = accel.run(run);
    EXPECT_EQ(result.report.outcome, sim::RunOutcome::CycleLimit);
    EXPECT_THROW(result.report.throwIfFailed(), CycleLimitError);
}

// ---------------------------------------------------------------------
// Injected slowdowns: runs complete with unchanged results.
// ---------------------------------------------------------------------

/** Run BFS under @p faults and require the reference result. */
void
expectFaultedRunMatchesReference(const sim::FaultPlan &faults,
                                 std::uint64_t seed)
{
    const auto g = testGraph(seed);
    const VertexId source = algo::defaultSource(g);

    auto ref_algo = algo::makeAlgorithm(AlgorithmId::Bfs);
    const auto golden =
        algo::runReference(g, *ref_algo, source, algo::ReferenceOptions{});

    auto sim_algo = algo::makeAlgorithm(AlgorithmId::Bfs);
    core::GdsAccel accel(core::GdsConfig{}, g, *sim_algo);
    core::RunOptions run;
    run.source = source;
    run.faults = faults;

    auto clean_algo = algo::makeAlgorithm(AlgorithmId::Bfs);
    core::GdsAccel clean(core::GdsConfig{}, g, *clean_algo);
    core::RunOptions clean_run;
    clean_run.source = source;

    const core::RunResult faulted = accel.run(run);
    const core::RunResult baseline_run = clean.run(clean_run);

    ASSERT_TRUE(faulted.completed())
        << faulted.report.summary();
    ASSERT_EQ(faulted.properties.size(), golden.properties.size());
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(faulted.properties[v], golden.properties[v])
            << "vertex " << v;
    }
    // Injected backpressure can only slow the run down.
    EXPECT_GE(faulted.cycles, baseline_run.cycles);
}

TEST(FaultedRun, DelayedResponsesOnlySlowTheRunDown)
{
    sim::FaultPlan faults;
    faults.seed = 21;
    faults.delayResponseProb = 0.25;
    faults.delayCycles = 200;
    expectFaultedRunMatchesReference(faults, 21);
}

TEST(FaultedRun, RejectedRequestsAndStalledPortsOnlySlowTheRunDown)
{
    sim::FaultPlan faults;
    faults.seed = 22;
    faults.rejectRequestProb = 0.15;
    faults.stallOutputProb = 0.10;
    expectFaultedRunMatchesReference(faults, 22);
}

// ---------------------------------------------------------------------
// Harness degradation: one failing cell never kills the matrix.
// ---------------------------------------------------------------------

TEST(RunCell, ConvertsSimErrorsIntoStatusRecords)
{
    const harness::RunRecord failed = harness::runCell(
        "GraphDynS", AlgorithmId::Bfs, "wedged",
        []() -> harness::RunRecord {
            throw DeadlockError("nothing busy after 4096 cycles");
        });
    EXPECT_EQ(failed.status, "deadlock");
    EXPECT_FALSE(failed.ok());
    EXPECT_EQ(failed.system, "GraphDynS");
    EXPECT_EQ(failed.algorithm, "BFS");
    EXPECT_EQ(failed.dataset, "wedged");
}

TEST(RunCell, RemainingCellsStillEmitAfterAFailure)
{
    std::vector<harness::RunRecord> records;
    records.push_back(harness::runCell(
        "GraphDynS", AlgorithmId::Bfs, "bad",
        []() -> harness::RunRecord {
            throw LivelockError("busy but stuck");
        }));
    records.push_back(harness::runCell(
        "GraphDynS", AlgorithmId::Bfs, "good", [] {
            harness::RunRecord r;
            r.system = "GraphDynS";
            r.algorithm = "BFS";
            r.dataset = "good";
            r.gteps = 3.0;
            return r;
        }));

    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].status, "livelock");
    EXPECT_EQ(records[1].status, "ok");

    // tryFindRecord steers benches around the failed cell.
    EXPECT_EQ(harness::tryFindRecord(records, "GraphDynS", "BFS", "bad"),
              nullptr);
    const harness::RunRecord *good =
        harness::tryFindRecord(records, "GraphDynS", "BFS", "good");
    ASSERT_NE(good, nullptr);
    EXPECT_DOUBLE_EQ(good->gteps, 3.0);
}

TEST(RunCell, PassesNonSimErrorsThrough)
{
    // Only typed simulator failures are degraded; anything else is a bug
    // and must keep propagating.
    EXPECT_THROW(harness::runCell("GraphDynS", AlgorithmId::Bfs, "x",
                                  []() -> harness::RunRecord {
                                      throw std::logic_error("bug");
                                  }),
                 std::logic_error);
}

} // namespace
} // namespace gds
