/**
 * @file
 * Unit tests for the simulation kernel: component hierarchy, tick ordering,
 * run loop termination, and the bounded/delay queues.
 */

#include <gtest/gtest.h>

#include "sim/component.hh"
#include "sim/queues.hh"
#include "sim/simulator.hh"

namespace gds::sim
{
namespace
{

class CountingComponent : public Component
{
  public:
    CountingComponent(std::string n, Component *parent,
                      std::vector<std::string> *order)
        : Component(std::move(n), parent), tickOrder(order)
    {}

    void
    tick() override
    {
        ++ticks;
        if (tickOrder)
            tickOrder->push_back(name());
    }

    bool busy() const override { return pendingWork > 0; }

    int ticks = 0;
    int pendingWork = 0;

  private:
    std::vector<std::string> *tickOrder;
};

TEST(Component, StatsGroupMirrorsHierarchy)
{
    CountingComponent top("accel", nullptr, nullptr);
    CountingComponent child("pe", &top, nullptr);
    EXPECT_EQ(top.statsGroup().path(), "accel");
    EXPECT_EQ(child.statsGroup().path(), "accel.pe");
}

TEST(Simulator, TicksInRegistrationOrder)
{
    std::vector<std::string> order;
    CountingComponent a("a", nullptr, &order);
    CountingComponent b("b", nullptr, &order);
    Simulator sim;
    sim.add(&b);
    sim.add(&a);
    sim.step();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "b");
    EXPECT_EQ(order[1], "a");
    EXPECT_EQ(sim.cycle(), 1u);
}

TEST(Simulator, RunUntilPredicate)
{
    CountingComponent c("c", nullptr, nullptr);
    Simulator sim;
    sim.add(&c);
    const Cycle elapsed = sim.run([&] { return c.ticks >= 10; });
    EXPECT_EQ(elapsed, 10u);
    EXPECT_EQ(c.ticks, 10);
}

TEST(SimulatorDeath, RunawayGuardFires)
{
    CountingComponent c("c", nullptr, nullptr);
    Simulator sim;
    sim.add(&c);
    EXPECT_DEATH(sim.run([] { return false; }, 100), "exceeded");
}

TEST(Simulator, AnyBusyReflectsComponents)
{
    CountingComponent a("a", nullptr, nullptr);
    CountingComponent b("b", nullptr, nullptr);
    Simulator sim;
    sim.add(&a);
    sim.add(&b);
    EXPECT_FALSE(sim.anyBusy());
    b.pendingWork = 1;
    EXPECT_TRUE(sim.anyBusy());
}

TEST(BoundedQueue, FifoOrderAndBackpressure)
{
    BoundedQueue<int> q(3);
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.canPush());
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_FALSE(q.canPush());
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_TRUE(q.canPush());
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueueDeath, OverflowPanics)
{
    BoundedQueue<int> q(1);
    q.push(1);
    EXPECT_DEATH(q.push(2), "full queue");
}

TEST(BoundedQueueDeath, UnderflowPanics)
{
    BoundedQueue<int> q(1);
    EXPECT_DEATH(q.pop(), "empty queue");
}

TEST(DelayQueue, ElementsMatureAfterLatency)
{
    DelayQueue<int> q(4, 3);
    q.push(42);
    EXPECT_FALSE(q.ready());
    q.tick();
    EXPECT_FALSE(q.ready());
    q.tick();
    EXPECT_FALSE(q.ready());
    q.tick();
    EXPECT_TRUE(q.ready());
    EXPECT_EQ(q.pop(), 42);
}

TEST(DelayQueue, ZeroLatencyIsImmediatelyReady)
{
    DelayQueue<int> q(4, 0);
    q.push(7);
    EXPECT_TRUE(q.ready());
    EXPECT_EQ(q.pop(), 7);
}

TEST(DelayQueue, PreservesOrderWithMixedMaturity)
{
    DelayQueue<int> q(8, 2);
    q.push(1);
    q.tick();
    q.push(2);
    q.tick();
    EXPECT_TRUE(q.ready());
    EXPECT_EQ(q.pop(), 1);
    EXPECT_FALSE(q.ready()); // 2 needs one more cycle
    q.tick();
    EXPECT_TRUE(q.ready());
    EXPECT_EQ(q.pop(), 2);
}

TEST(DelayQueueDeath, PopBeforeMaturityPanics)
{
    DelayQueue<int> q(4, 5);
    q.push(1);
    EXPECT_DEATH(q.pop(), "non-ready");
}

} // namespace
} // namespace gds::sim
