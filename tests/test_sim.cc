/**
 * @file
 * Unit tests for the simulation kernel: component hierarchy, tick ordering,
 * run loop termination, and the bounded/delay queues.
 */

#include <gtest/gtest.h>

#include "sim/component.hh"
#include "sim/queues.hh"
#include "sim/simulator.hh"

namespace gds::sim
{
namespace
{

// gds-lint: allow(checkpoint-hooks) test double lives only inside one
// run loop; the checkpoint tests use the real accelerator models
class CountingComponent : public Component
{
  public:
    CountingComponent(std::string n, Component *parent,
                      std::vector<std::string> *order)
        : Component(std::move(n), parent), tickOrder(order)
    {}

    void
    tick() override
    {
        ++ticks;
        if (tickOrder)
            tickOrder->push_back(name());
    }

    bool busy() const override { return pendingWork > 0; }

    // Test predicates mutate state the horizon cannot see, so every cycle
    // is an event. supportsFastForward() stays false: these runs must tick
    // naively even under fast-forwarding limits.
    Cycle nextEventCycle() const override { return 1; }

    std::uint64_t
    activityCounter() const override
    {
        return static_cast<std::uint64_t>(ticks);
    }

    std::string
    debugState() const override
    {
        return "ticks " + std::to_string(ticks) + ", pending " +
               std::to_string(pendingWork);
    }

    int ticks = 0;
    int pendingWork = 0;

  private:
    std::vector<std::string> *tickOrder;
};

TEST(Component, StatsGroupMirrorsHierarchy)
{
    CountingComponent top("accel", nullptr, nullptr);
    CountingComponent child("pe", &top, nullptr);
    EXPECT_EQ(top.statsGroup().path(), "accel");
    EXPECT_EQ(child.statsGroup().path(), "accel.pe");
}

TEST(Simulator, TicksInRegistrationOrder)
{
    std::vector<std::string> order;
    CountingComponent a("a", nullptr, &order);
    CountingComponent b("b", nullptr, &order);
    Simulator sim;
    sim.add(&b);
    sim.add(&a);
    sim.step();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], "b");
    EXPECT_EQ(order[1], "a");
    EXPECT_EQ(sim.cycle(), 1u);
}

TEST(Simulator, RunUntilPredicate)
{
    CountingComponent c("c", nullptr, nullptr);
    Simulator sim;
    sim.add(&c);
    const RunReport report = sim.run([&] { return c.ticks >= 10; });
    EXPECT_EQ(report.outcome, RunOutcome::Completed);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.cycles, 10u);
    EXPECT_EQ(c.ticks, 10);
    EXPECT_NO_THROW(report.throwIfFailed());
}

TEST(Simulator, RunawayGuardReportsCycleLimit)
{
    CountingComponent c("c", nullptr, nullptr);
    Simulator sim;
    sim.add(&c);
    RunLimits limits;
    limits.maxCycles = 100;
    // Keep "progressing" so the stall detector stays quiet; only the
    // budget can end this run.
    const RunReport report = sim.run(
        [&] {
            c.progressed();
            return false;
        },
        limits);
    EXPECT_EQ(report.outcome, RunOutcome::CycleLimit);
    EXPECT_FALSE(report.ok());
    EXPECT_EQ(report.cycles, 100u);
    EXPECT_FALSE(report.components.empty());
    EXPECT_THROW(report.throwIfFailed(), CycleLimitError);
}

TEST(Simulator, StallWithIdleComponentsIsDeadlock)
{
    CountingComponent c("c", nullptr, nullptr);
    Simulator sim;
    sim.add(&c);
    RunLimits limits;
    limits.maxCycles = 1'000'000;
    limits.stallCycles = 256;
    limits.checkInterval = 64;
    const RunReport report = sim.run([] { return false; }, limits);
    EXPECT_EQ(report.outcome, RunOutcome::Deadlock);
    EXPECT_LT(report.cycles, limits.maxCycles);
    ASSERT_FALSE(report.components.empty());
    EXPECT_EQ(report.components[0].path, "c");
    EXPECT_FALSE(report.components[0].busy);
    EXPECT_THROW(report.throwIfFailed(), DeadlockError);
}

TEST(Simulator, StallWithBusyComponentsIsLivelock)
{
    CountingComponent c("c", nullptr, nullptr);
    c.pendingWork = 1; // forever busy, never progressing
    Simulator sim;
    sim.add(&c);
    RunLimits limits;
    limits.maxCycles = 1'000'000;
    limits.stallCycles = 256;
    limits.checkInterval = 64;
    const RunReport report = sim.run([] { return false; }, limits);
    EXPECT_EQ(report.outcome, RunOutcome::Livelock);
    ASSERT_FALSE(report.components.empty());
    EXPECT_TRUE(report.components[0].busy);
    EXPECT_THROW(report.throwIfFailed(), LivelockError);
}

TEST(Simulator, ProgressDefersStallDetection)
{
    CountingComponent c("c", nullptr, nullptr);
    Simulator sim;
    sim.add(&c);
    RunLimits limits;
    limits.maxCycles = 100'000;
    limits.stallCycles = 256;
    limits.checkInterval = 64;
    // Progress happens until cycle 5000; the run must last well past the
    // first stall window before the watchdog finally fires.
    const RunReport report = sim.run(
        [&] {
            if (c.ticks < 5000)
                c.progressed();
            return false;
        },
        limits);
    EXPECT_EQ(report.outcome, RunOutcome::Deadlock);
    EXPECT_GT(report.cycles, 5000u);
    EXPECT_GE(report.lastProgressCycle, 4990u);
}

TEST(Simulator, AnyBusyReflectsComponents)
{
    CountingComponent a("a", nullptr, nullptr);
    CountingComponent b("b", nullptr, nullptr);
    Simulator sim;
    sim.add(&a);
    sim.add(&b);
    EXPECT_FALSE(sim.anyBusy());
    b.pendingWork = 1;
    EXPECT_TRUE(sim.anyBusy());
}

// --- Fast-forward engine -------------------------------------------------

/** Component whose waits are provable: events fire every `period` cycles
 *  of its local clock, everything in between is a pure wait. */
// gds-lint: allow(checkpoint-hooks) test double lives only inside one
// run loop; the checkpoint tests use the real accelerator models
class PeriodicComponent : public Component
{
  public:
    PeriodicComponent(std::string n, Cycle event_period)
        : Component(std::move(n), nullptr), period(event_period)
    {}

    void
    tick() override
    {
        ++realTicks;
        ++localCycle;
        if (localCycle % period == 0) {
            ++events;
            progressed(localCycle);
        }
    }

    bool busy() const override { return true; }

    Cycle
    nextEventCycle() const override
    {
        // Local clock is at `localCycle`; tick d runs with clock
        // localCycle + d, so the next multiple of `period` is event tick
        // period - localCycle % period.
        return period - localCycle % period;
    }

    void skipCycles(Cycle cycles) override { localCycle += cycles; }
    bool supportsFastForward() const override { return true; }
    std::string debugState() const override { return "periodic"; }
    std::uint64_t activityCounter() const override { return events; }

    Cycle period;
    Cycle localCycle = 0;
    std::uint64_t events = 0;
    std::uint64_t realTicks = 0;
};

TEST(FastForward, EligibilityRequiresUnanimousOptIn)
{
    PeriodicComponent fast("fast", 10);
    CountingComponent naive("naive", nullptr, nullptr);
    Simulator sim;
    sim.add(&fast);
    EXPECT_TRUE(sim.fastForwardEligible());
    sim.add(&naive);
    EXPECT_FALSE(sim.fastForwardEligible());
}

TEST(FastForward, EmptySimulatorIsNotEligible)
{
    Simulator sim;
    EXPECT_FALSE(sim.fastForwardEligible());
}

TEST(FastForward, SkipsToEventsWithExactCycleCount)
{
    PeriodicComponent c("c", 1000);
    Simulator sim;
    sim.add(&c);
    const RunReport report = sim.run([&] { return c.events >= 7; });
    EXPECT_EQ(report.outcome, RunOutcome::Completed);
    EXPECT_EQ(report.cycles, 7000u);
    EXPECT_EQ(sim.cycle(), 7000u);
    EXPECT_EQ(c.localCycle, 7000u);
    // The bulk of every window was skipped, not ticked.
    EXPECT_LT(c.realTicks, 100u);
}

TEST(FastForward, DisabledLimitsTickNaively)
{
    PeriodicComponent c("c", 1000);
    Simulator sim;
    sim.add(&c);
    RunLimits limits;
    limits.fastForward = false;
    const RunReport report = sim.run([&] { return c.events >= 2; }, limits);
    EXPECT_EQ(report.cycles, 2000u);
    EXPECT_EQ(c.localCycle, 2000u);
}

TEST(FastForward, MixedFleetTicksEveryComponentEveryCycle)
{
    PeriodicComponent fast("fast", 100);
    CountingComponent naive("naive", nullptr, nullptr);
    Simulator sim;
    sim.add(&fast);
    sim.add(&naive);
    const RunReport report = sim.run([&] {
        naive.progressed();
        return fast.events >= 3;
    });
    EXPECT_EQ(report.cycles, 300u);
    EXPECT_EQ(naive.ticks, 300); // no tick was skipped
}

TEST(FastForward, WatchdogStillFiresAcrossSkippedWindows)
{
    // The first event is far beyond the stall window, so the detector
    // must trip inside a skippable stretch -- at the same cycle as a
    // naive run, with the same busy-based classification.
    RunLimits limits;
    limits.maxCycles = 1'000'000;
    limits.stallCycles = 256;
    limits.checkInterval = 64;
    const RunReport naive_report = [&] {
        PeriodicComponent n("n", 10'000);
        Simulator ns;
        ns.add(&n);
        RunLimits nl = limits;
        nl.fastForward = false;
        return ns.run([] { return false; }, nl);
    }();
    PeriodicComponent c("c", 10'000);
    Simulator sim;
    sim.add(&c);
    const RunReport report = sim.run([] { return false; }, limits);
    EXPECT_EQ(report.outcome, RunOutcome::Livelock);
    EXPECT_EQ(report.outcome, naive_report.outcome);
    EXPECT_EQ(report.cycles, naive_report.cycles);
}

TEST(FastForward, CycleLimitHonoredExactly)
{
    PeriodicComponent c("c", 1'000'000); // next event far past the budget
    Simulator sim;
    sim.add(&c);
    RunLimits limits;
    limits.maxCycles = 1234;
    const RunReport report = sim.run([] { return false; }, limits);
    EXPECT_EQ(report.outcome, RunOutcome::CycleLimit);
    EXPECT_EQ(report.cycles, 1234u);
    EXPECT_EQ(c.localCycle, 1234u);
}

TEST(BoundedQueue, FifoOrderAndBackpressure)
{
    BoundedQueue<int> q(3);
    EXPECT_TRUE(q.empty());
    EXPECT_TRUE(q.canPush());
    q.push(1);
    q.push(2);
    q.push(3);
    EXPECT_FALSE(q.canPush());
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_TRUE(q.canPush());
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
    EXPECT_TRUE(q.empty());
}

TEST(BoundedQueueDeath, OverflowPanics)
{
    BoundedQueue<int> q(1);
    q.push(1);
    EXPECT_DEATH(q.push(2), "full queue");
}

TEST(BoundedQueueDeath, UnderflowPanics)
{
    BoundedQueue<int> q(1);
    EXPECT_DEATH(q.pop(), "empty queue");
}

TEST(DelayQueue, ElementsMatureAfterLatency)
{
    DelayQueue<int> q(4, 3);
    q.push(42);
    EXPECT_FALSE(q.ready());
    q.tick();
    EXPECT_FALSE(q.ready());
    q.tick();
    EXPECT_FALSE(q.ready());
    q.tick();
    EXPECT_TRUE(q.ready());
    EXPECT_EQ(q.pop(), 42);
}

TEST(DelayQueue, ZeroLatencyIsImmediatelyReady)
{
    DelayQueue<int> q(4, 0);
    q.push(7);
    EXPECT_TRUE(q.ready());
    EXPECT_EQ(q.pop(), 7);
}

TEST(DelayQueue, PreservesOrderWithMixedMaturity)
{
    DelayQueue<int> q(8, 2);
    q.push(1);
    q.tick();
    q.push(2);
    q.tick();
    EXPECT_TRUE(q.ready());
    EXPECT_EQ(q.pop(), 1);
    EXPECT_FALSE(q.ready()); // 2 needs one more cycle
    q.tick();
    EXPECT_TRUE(q.ready());
    EXPECT_EQ(q.pop(), 2);
}

TEST(DelayQueueDeath, PopBeforeMaturityPanics)
{
    DelayQueue<int> q(4, 5);
    q.push(1);
    EXPECT_DEATH(q.pop(), "non-ready");
}

} // namespace
} // namespace gds::sim
