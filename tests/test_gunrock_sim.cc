/**
 * @file
 * Tests of the GunrockSim GPU baseline model: functional results equal
 * the reference engine (the model runs it), timing monotonicity and
 * plausibility, traffic/storage relations to the accelerators, and the
 * calibration bands the paper reports (single-digit GTEPS, ~31% bandwidth
 * utilization, GraphDynS 2-8x faster).
 */

#include <gtest/gtest.h>

#include "algo/reference_engine.hh"
#include "baseline/gunrock_sim.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"

namespace gds::baseline
{
namespace
{

using algo::AlgorithmId;

graph::Csr
testGraph(VertexId v_count, EdgeId e_count, std::uint64_t seed)
{
    return graph::powerLaw(v_count, e_count, 0.6, seed, /*weighted=*/true);
}

TEST(GunrockSim, PropertiesEqualReference)
{
    const auto g = testGraph(2000, 16000, 71);
    const VertexId source = algo::defaultSource(g);

    auto algo_ref = algo::makeAlgorithm(AlgorithmId::Sssp);
    const auto golden = algo::runReference(g, *algo_ref, source);

    auto algo_sim = algo::makeAlgorithm(AlgorithmId::Sssp);
    GunrockSim gpu(GunrockConfig{}, g, *algo_sim);
    const auto result = gpu.run(source);

    ASSERT_EQ(result.properties.size(), golden.properties.size());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(result.properties[v], golden.properties[v]);
    EXPECT_EQ(result.iterations, golden.iterations);
    EXPECT_EQ(result.edgesProcessed, golden.totalEdgesProcessed);
}

TEST(GunrockSim, TimeAndEnergyArePositive)
{
    const auto g = testGraph(2000, 16000, 72);
    auto bfs = algo::makeAlgorithm(AlgorithmId::Bfs);
    GunrockSim gpu(GunrockConfig{}, g, *bfs);
    const auto r = gpu.run(algo::defaultSource(g));
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_GT(r.energyJoules, 0.0);
    EXPECT_GT(r.memoryBytes, 0u);
    EXPECT_GT(r.gteps(), 0.0);
}

TEST(GunrockSim, ThroughputInPaperBand)
{
    // Fig. 7: Gunrock averages ~8 GTEPS; any value in the low single to
    // low double digits is the right band for a mid-size skewed graph.
    GunrockConfig cfg;
    cfg.maxIterations = 10;
    const auto g = testGraph(50000, 800000, 73);
    auto pr = algo::makeAlgorithm(AlgorithmId::Pr);
    GunrockSim gpu(cfg, g, *pr);
    const auto r = gpu.run(0);
    EXPECT_GT(r.gteps(), 1.0);
    EXPECT_LT(r.gteps(), 30.0);
}

TEST(GunrockSim, BandwidthUtilizationInPaperBand)
{
    // Fig. 13: ~31% average bandwidth utilization.
    GunrockConfig cfg;
    cfg.maxIterations = 10;
    const auto g = testGraph(50000, 800000, 74);
    auto pr = algo::makeAlgorithm(AlgorithmId::Pr);
    GunrockSim gpu(cfg, g, *pr);
    const auto r = gpu.run(0);
    EXPECT_GT(r.bandwidthUtilization, 0.10);
    EXPECT_LT(r.bandwidthUtilization, 0.60);
}

TEST(GunrockSim, FootprintDominatedByPreprocessingMetadata)
{
    // Fig. 11: Gunrock stores >2x the original graph data as metadata.
    const auto g = testGraph(2000, 16000, 75);
    auto bfs = algo::makeAlgorithm(AlgorithmId::Bfs);
    GunrockSim gpu(GunrockConfig{}, g, *bfs);
    const std::uint64_t csr = (g.numVertices() + 1) * 4 + g.numEdges() * 4;
    EXPECT_GT(gpu.footprintBytes(), 2 * csr);
}

TEST(GunrockSim, GraphDynSWinsOnTimeTrafficAndFootprint)
{
    // Fig. 6 / Fig. 11 / Fig. 12 directions for the GPU comparison.
    const auto g = testGraph(20000, 320000, 76);
    auto pr_a = algo::makeAlgorithm(AlgorithmId::Pr);
    auto pr_b = algo::makeAlgorithm(AlgorithmId::Pr);
    GunrockConfig gpu_cfg;
    gpu_cfg.maxIterations = 5;
    core::GdsConfig gds_cfg;
    gds_cfg.maxIterations = 5;
    GunrockSim gpu(gpu_cfg, g, *pr_a);
    core::GdsAccel gds(gds_cfg, g, *pr_b);
    const auto r_gpu = gpu.run(0);
    const auto r_gds = gds.run();

    const double gds_seconds = static_cast<double>(r_gds.cycles) * 1e-9;
    EXPECT_LT(gds_seconds, r_gpu.seconds);
    EXPECT_LT(r_gds.memoryBytes, r_gpu.memoryBytes);
    EXPECT_LT(r_gds.footprintBytes, r_gpu.footprintBytes);
}

TEST(GunrockSim, MoreEdgesTakeLonger)
{
    // Fixed-iteration PR: work scales with |E| (BFS would not be
    // monotone -- a denser graph converges in fewer, launch-dominated
    // iterations).
    GunrockConfig cfg;
    cfg.maxIterations = 5;
    auto pr1 = algo::makeAlgorithm(AlgorithmId::Pr);
    auto pr2 = algo::makeAlgorithm(AlgorithmId::Pr);
    const auto small = testGraph(2000, 16000, 77);
    const auto large = testGraph(2000, 64000, 77);
    GunrockSim gpu_small(cfg, small, *pr1);
    GunrockSim gpu_large(cfg, large, *pr2);
    const auto r_small = gpu_small.run(0);
    const auto r_large = gpu_large.run(0);
    EXPECT_GT(r_large.seconds, r_small.seconds);
}

TEST(GunrockSim, WeightedAlgorithmNeedsWeights)
{
    const auto g = graph::uniform(100, 500, 1, false);
    auto sssp = algo::makeAlgorithm(AlgorithmId::Sssp);
    EXPECT_THROW(GunrockSim(GunrockConfig{}, g, *sssp), ConfigError);
}

/** All five algorithms produce reference-equal results and sane timing. */
class GunrockSweep : public ::testing::TestWithParam<AlgorithmId>
{};

TEST_P(GunrockSweep, ReferenceResultsAndSaneTiming)
{
    const AlgorithmId id = GetParam();
    GunrockConfig cfg;
    cfg.maxIterations = 20;
    const auto g = testGraph(1500, 12000, 78);
    const VertexId source = algo::defaultSource(g);

    auto algo_sim = algo::makeAlgorithm(id);
    GunrockSim gpu(cfg, g, *algo_sim);
    const auto r = gpu.run(source);

    auto algo_ref = algo::makeAlgorithm(id);
    algo::ReferenceOptions opts;
    opts.maxIterations = cfg.maxIterations;
    const auto golden = algo::runReference(g, *algo_ref, source, opts);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(r.properties[v], golden.properties[v]);
    EXPECT_GT(r.seconds, 0.0);
    EXPECT_LE(r.bandwidthUtilization, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, GunrockSweep,
                         ::testing::Values(AlgorithmId::Bfs,
                                           AlgorithmId::Sssp,
                                           AlgorithmId::Cc,
                                           AlgorithmId::Sswp,
                                           AlgorithmId::Pr));

} // namespace
} // namespace gds::baseline
