/**
 * @file
 * Unit tests for src/common: RNG determinism and distribution, bit
 * utilities, and the logging formatter.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace gds
{
namespace
{

TEST(SplitMix64, DeterministicForSameSeed)
{
    SplitMix64 a(42);
    SplitMix64 b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge)
{
    SplitMix64 a(1);
    SplitMix64 b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(7);
    Rng b(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(99);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.below(17);
        EXPECT_LT(v, 17u);
    }
}

TEST(Rng, BelowCoversFullRange)
{
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    // Mean of U(0,1) is 0.5; stderr ~ 0.29/sqrt(n) ~ 0.001.
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, RoughlyUniformBuckets)
{
    Rng rng(123);
    const int n = 100000;
    int buckets[10] = {};
    for (int i = 0; i < n; ++i)
        ++buckets[rng.below(10)];
    for (int b = 0; b < 10; ++b)
        EXPECT_NEAR(buckets[b], n / 10, n / 100);
}

TEST(BitUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(1, 3), 1);
    EXPECT_EQ(ceilDiv(0, 3), 0);
    EXPECT_EQ(ceilDiv<std::uint64_t>(1ULL << 40, 7), ((1ULL << 40) + 6) / 7);
}

TEST(BitUtil, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(2));
    EXPECT_TRUE(isPow2(1024));
    EXPECT_TRUE(isPow2(1ULL << 63));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(1023));
}

TEST(BitUtil, Log2Floor)
{
    EXPECT_EQ(log2Floor(1), 0u);
    EXPECT_EQ(log2Floor(2), 1u);
    EXPECT_EQ(log2Floor(3), 1u);
    EXPECT_EQ(log2Floor(1024), 10u);
    EXPECT_EQ(log2Floor((1ULL << 32) + 5), 32u);
}

TEST(BitUtil, AlignUpDown)
{
    EXPECT_EQ(alignUp(0, 32), 0u);
    EXPECT_EQ(alignUp(1, 32), 32u);
    EXPECT_EQ(alignUp(32, 32), 32u);
    EXPECT_EQ(alignUp(33, 32), 64u);
    EXPECT_EQ(alignDown(31, 32), 0u);
    EXPECT_EQ(alignDown(32, 32), 32u);
    EXPECT_EQ(alignDown(63, 32), 32u);
}

TEST(Logging, FormatterProducesPrintfOutput)
{
    EXPECT_EQ(detail::vformat("x=%d y=%s", 5, "abc"), "x=5 y=abc");
    EXPECT_EQ(detail::vformat("plain"), "plain");
}

TEST(Logging, AssertPassesOnTrueCondition)
{
    // Should not abort.
    gds_assert(1 + 1 == 2, "math works");
    SUCCEED();
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH({ panic("boom %d", 3); }, "boom 3");
}

TEST(LoggingDeath, AssertAbortsOnFalse)
{
    EXPECT_DEATH({ gds_assert(false, "invariant %s", "broken"); },
                 "invariant broken");
}

TEST(Types, Sentinels)
{
    EXPECT_EQ(invalidVertex, 0xffffffffu);
    EXPECT_TRUE(propInf > 1e30f);
}

} // namespace
} // namespace gds
