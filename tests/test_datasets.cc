/**
 * @file
 * Tests for the Table 4 dataset registry: coverage of all 11 graphs,
 * scaling behaviour, and surrogate fidelity (|V|, |E|, skew).
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "graph/datasets.hh"
#include "span_eq.hh"

namespace gds::graph
{
namespace
{

TEST(Datasets, RegistryCoversTable4)
{
    EXPECT_EQ(realWorldDatasets().size(), 6u);
    EXPECT_EQ(rmatDatasets().size(), 5u);
    const char *names[] = {"FR", "PK", "LJ", "HO", "IN", "OR",
                           "RM22", "RM23", "RM24", "RM25", "RM26"};
    for (const char *n : names)
        EXPECT_EQ(datasetByName(n).name, n);
}

TEST(DatasetsDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT((void)datasetByName("BOGUS"),
                ::testing::ExitedWithCode(1), "unknown dataset");
}

TEST(Datasets, Table4PaperSizes)
{
    EXPECT_EQ(datasetByName("FR").paperVertices, 820'000u);
    EXPECT_EQ(datasetByName("FR").paperEdges, 9'840'000u);
    EXPECT_EQ(datasetByName("OR").paperEdges, 234'370'000u);
    EXPECT_EQ(datasetByName("RM22").rmatScale, 22u);
    EXPECT_EQ(datasetByName("RM26").rmatScale, 26u);
}

TEST(Datasets, ScalingDividesSizes)
{
    const DatasetSpec &fr = datasetByName("FR");
    EXPECT_EQ(fr.scaledVertices(1), 820'000u);
    EXPECT_EQ(fr.scaledVertices(16), 820'000u / 16);
    EXPECT_EQ(fr.scaledEdges(16), 9'840'000u / 16);
}

TEST(Datasets, RmatScalingReducesScaleParameter)
{
    const DatasetSpec &rm = datasetByName("RM22");
    // Divisor 16 = 2^4 -> scale 18.
    EXPECT_EQ(rm.scaledVertices(16), 1ULL << 18);
    EXPECT_EQ(rm.scaledEdges(16), (1ULL << 18) * 16);
}

TEST(Datasets, ScaleDivisorEnvOverride)
{
    ::setenv("GDS_SCALE", "32", 1);
    EXPECT_EQ(datasetScaleDivisor(), 32u);
    ::setenv("GDS_SCALE", "bogus", 1);
    EXPECT_EQ(datasetScaleDivisor(), 16u);
    ::unsetenv("GDS_SCALE");
    EXPECT_EQ(datasetScaleDivisor(), 16u);
}

TEST(Datasets, SurrogateMatchesSpecSizes)
{
    const DatasetSpec &fr = datasetByName("FR");
    const unsigned divisor = 64;
    const Csr g = makeDataset(fr, divisor, false);
    EXPECT_EQ(g.numVertices(), fr.scaledVertices(divisor));
    EXPECT_EQ(g.numEdges(), fr.scaledEdges(divisor));
    EXPECT_FALSE(g.hasWeights());
}

TEST(Datasets, WeightedVariant)
{
    const Csr g = makeDataset(datasetByName("FR"), 64, true);
    EXPECT_TRUE(g.hasWeights());
}

TEST(Datasets, SurrogatePreservesEdgeVertexRatio)
{
    for (const auto &spec : realWorldDatasets()) {
        const double paper_ratio =
            static_cast<double>(spec.paperEdges) / spec.paperVertices;
        const Csr g = makeDataset(spec, 128, false);
        EXPECT_NEAR(g.edgeVertexRatio(), paper_ratio, paper_ratio * 0.05)
            << spec.name;
    }
}

TEST(Datasets, SurrogatesAreSkewed)
{
    const Csr g = makeDataset(datasetByName("LJ"), 64, false);
    const DegreeStats ds = g.degreeStats();
    EXPECT_GT(ds.maxDegree, static_cast<std::uint64_t>(10 * ds.meanDegree));
}

TEST(Datasets, DeterministicAcrossCalls)
{
    const Csr a = makeDataset(datasetByName("PK"), 128, false);
    const Csr b = makeDataset(datasetByName("PK"), 128, false);
    EXPECT_SPAN_EQ(a.neighborArray(), b.neighborArray());
}

} // namespace
} // namespace gds::graph
