/**
 * @file
 * Tests of the independent result validators: correct outputs pass,
 * systematically corrupted outputs are caught (each violated condition
 * exercised), and every engine's output on every algorithm certifies.
 */

#include <gtest/gtest.h>

#include "algo/reference_engine.hh"
#include "algo/validate.hh"
#include "baseline/graphicionado.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"

namespace gds::algo
{
namespace
{

graph::Csr
testGraph(std::uint64_t seed)
{
    return graph::powerLaw(800, 6400, 0.6, seed, /*weighted=*/true);
}

struct RunData
{
    graph::Csr g;
    VertexId source;
    std::vector<PropValue> props;
};

RunData
runRef(AlgorithmId id, std::uint64_t seed, unsigned max_iter = 1000)
{
    RunData r{testGraph(seed), 0, {}};
    r.source = id == AlgorithmId::Cc || id == AlgorithmId::Pr
                   ? 0
                   : defaultSource(r.g);
    auto a = makeAlgorithm(id);
    ReferenceOptions opts;
    opts.maxIterations = max_iter;
    r.props = runReference(r.g, *a, r.source, opts).properties;
    return r;
}

TEST(ValidateBfs, AcceptsCorrectLevels)
{
    const RunData r = runRef(AlgorithmId::Bfs, 1);
    EXPECT_TRUE(validateBfs(r.g, r.source, r.props).valid);
}

TEST(ValidateBfs, CatchesWrongSource)
{
    RunData r = runRef(AlgorithmId::Bfs, 1);
    r.props[r.source] = 1.0f;
    EXPECT_FALSE(validateBfs(r.g, r.source, r.props).valid);
}

TEST(ValidateBfs, CatchesSkippedLevel)
{
    RunData r = runRef(AlgorithmId::Bfs, 1);
    // Push a reached vertex two levels deeper than its best parent.
    for (VertexId v = 0; v < r.g.numVertices(); ++v) {
        if (v != r.source && r.props[v] == 1.0f) {
            r.props[v] = 5.0f;
            break;
        }
    }
    EXPECT_FALSE(validateBfs(r.g, r.source, r.props).valid);
}

TEST(ValidateBfs, CatchesTooGoodLevel)
{
    RunData r = runRef(AlgorithmId::Bfs, 1);
    for (VertexId v = 0; v < r.g.numVertices(); ++v) {
        if (r.props[v] == 2.0f) {
            r.props[v] = 1.0f; // claims a parent at level 0 it lacks
            break;
        }
    }
    const auto result = validateBfs(r.g, r.source, r.props);
    EXPECT_FALSE(result.valid);
}

TEST(ValidateSssp, AcceptsCorrectDistances)
{
    const RunData r = runRef(AlgorithmId::Sssp, 2);
    EXPECT_TRUE(validateSssp(r.g, r.source, r.props).valid);
}

TEST(ValidateSssp, CatchesRelaxableEdge)
{
    RunData r = runRef(AlgorithmId::Sssp, 2);
    for (VertexId v = 0; v < r.g.numVertices(); ++v) {
        if (v != r.source && r.props[v] != propInf &&
            r.props[v] != 0.0f) {
            r.props[v] += 1000.0f; // now an in-edge can relax it
            break;
        }
    }
    EXPECT_FALSE(validateSssp(r.g, r.source, r.props).valid);
}

TEST(ValidateSssp, CatchesUnderestimatedDistance)
{
    RunData r = runRef(AlgorithmId::Sssp, 2);
    for (VertexId v = 0; v < r.g.numVertices(); ++v) {
        if (v != r.source && r.props[v] != propInf &&
            r.props[v] > 2.0f) {
            r.props[v] = 1.0f; // unachievable by any in-edge
            break;
        }
    }
    EXPECT_FALSE(validateSssp(r.g, r.source, r.props).valid);
}

TEST(ValidateSswp, AcceptsCorrectWidths)
{
    const RunData r = runRef(AlgorithmId::Sswp, 3);
    EXPECT_TRUE(validateSswp(r.g, r.source, r.props).valid);
}

TEST(ValidateSswp, CatchesOverstatedWidth)
{
    RunData r = runRef(AlgorithmId::Sswp, 3);
    for (VertexId v = 0; v < r.g.numVertices(); ++v) {
        if (v != r.source && r.props[v] > 0.0f &&
            r.props[v] != propInf) {
            r.props[v] = 1e6f; // wider than any in-path allows
            break;
        }
    }
    EXPECT_FALSE(validateSswp(r.g, r.source, r.props).valid);
}

TEST(ValidateCc, AcceptsCorrectLabels)
{
    const RunData r = runRef(AlgorithmId::Cc, 4);
    EXPECT_TRUE(validateCc(r.g, r.props).valid);
}

TEST(ValidateCc, CatchesLabelAboveOwnId)
{
    RunData r = runRef(AlgorithmId::Cc, 4);
    r.props[0] = 5.0f; // vertex 0 can never hold a label > 0
    EXPECT_FALSE(validateCc(r.g, r.props).valid);
}

TEST(ValidateCc, CatchesUnpropagatedLabel)
{
    RunData r = runRef(AlgorithmId::Cc, 4);
    // Find an edge whose endpoints share a label and split them.
    for (VertexId u = 0; u < r.g.numVertices(); ++u) {
        const auto nbrs = r.g.neighborsOf(u);
        if (!nbrs.empty() && r.props[nbrs[0]] == r.props[u] &&
            nbrs[0] > u) {
            r.props[nbrs[0]] = static_cast<PropValue>(nbrs[0]);
            break;
        }
    }
    EXPECT_FALSE(validateCc(r.g, r.props).valid);
}

TEST(ValidatePr, AcceptsConvergedRanks)
{
    const RunData r = runRef(AlgorithmId::Pr, 5, 300);
    EXPECT_TRUE(validatePr(r.g, r.props).valid);
}

TEST(ValidatePr, CatchesMassLoss)
{
    RunData r = runRef(AlgorithmId::Pr, 5, 300);
    for (auto &p : r.props)
        p *= 0.5f;
    EXPECT_FALSE(validatePr(r.g, r.props).valid);
}

TEST(ValidatePr, CatchesNegativeRank)
{
    RunData r = runRef(AlgorithmId::Pr, 5, 300);
    r.props[3] = -r.props[3];
    EXPECT_FALSE(validatePr(r.g, r.props).valid);
}

TEST(ValidatePr, CatchesLocalImbalance)
{
    RunData r = runRef(AlgorithmId::Pr, 5, 300);
    // Move most of one vertex's mass to another: the total is nearly
    // preserved (mass check passes) but the pointwise deviation at the
    // donor far exceeds what activation hysteresis can produce.
    const double moved = r.props[1] * 0.9;
    r.props[1] -= static_cast<PropValue>(moved);
    r.props[2] += static_cast<PropValue>(
        moved * std::max<std::uint64_t>(r.g.outDegree(1), 1) /
        std::max<std::uint64_t>(r.g.outDegree(2), 1));
    EXPECT_FALSE(validatePr(r.g, r.props).valid);
}

TEST(Validate, DispatcherCoversAllAlgorithms)
{
    for (const AlgorithmId id : allAlgorithms) {
        const unsigned iters = id == AlgorithmId::Pr ? 300 : 1000;
        const RunData r = runRef(id, 6, iters);
        EXPECT_TRUE(validate(id, r.g, r.source, r.props).valid)
            << algorithmName(id);
    }
}

TEST(Validate, CertifiesBothAcceleratorOutputs)
{
    const graph::Csr g = testGraph(7);
    const VertexId source = defaultSource(g);
    auto a1 = makeAlgorithm(AlgorithmId::Sssp);
    auto a2 = makeAlgorithm(AlgorithmId::Sssp);
    core::GdsAccel gds(core::GdsConfig{}, g, *a1);
    baseline::GraphicionadoAccel gi(baseline::GraphicionadoConfig{}, g,
                                    *a2);
    core::RunOptions run;
    run.source = source;
    EXPECT_TRUE(validateSssp(g, source, gds.run(run).properties).valid);
    EXPECT_TRUE(validateSssp(g, source, gi.run(run).properties).valid);
}

} // namespace
} // namespace gds::algo
