/**
 * @file
 * Tests for the functional VCPM reference engine against independent
 * textbook oracles (queue BFS, Dijkstra, union-find, bottleneck Dijkstra,
 * dense power iteration), plus trace instrumentation checks. These oracles
 * anchor the correctness of the whole repository: both accelerator models
 * are later verified against the reference engine.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <queue>

#include "algo/reference_engine.hh"
#include "common/error.hh"
#include "common/rng.hh"
#include "expect_error.hh"
#include "graph/builder.hh"
#include "graph/generators.hh"

namespace gds::algo
{
namespace
{

using graph::CooEdge;
using graph::Csr;

/** Random directed weighted graph with every vertex on a Hamiltonian-ish
 *  cycle (so out-degree >= 1 everywhere, convenient for PR). */
Csr
randomGraph(VertexId v_count, EdgeId extra_edges, std::uint64_t seed,
            bool symmetric = false)
{
    Rng rng(seed);
    std::vector<CooEdge> edges;
    for (VertexId v = 0; v < v_count; ++v) {
        edges.push_back(CooEdge{
            v, static_cast<VertexId>((v + 1) % v_count),
            static_cast<Weight>(1 + rng.below(255))});
    }
    for (EdgeId e = 0; e < extra_edges; ++e) {
        const auto u = static_cast<VertexId>(rng.below(v_count));
        const auto w = static_cast<VertexId>(rng.below(v_count));
        const auto wt = static_cast<Weight>(1 + rng.below(255));
        edges.push_back(CooEdge{u, w, wt});
        if (symmetric)
            edges.push_back(CooEdge{w, u, wt});
    }
    if (symmetric) {
        // Mirror the cycle as well.
        for (VertexId v = 0; v < v_count; ++v) {
            edges.push_back(CooEdge{
                static_cast<VertexId>((v + 1) % v_count), v, 1});
        }
    }
    graph::BuildOptions opts;
    opts.keepWeights = true;
    return graph::buildCsr(v_count, std::move(edges), opts);
}

std::vector<double>
bfsOracle(const Csr &g, VertexId source)
{
    std::vector<double> level(g.numVertices(),
                              std::numeric_limits<double>::infinity());
    std::queue<VertexId> frontier;
    level[source] = 0;
    frontier.push(source);
    while (!frontier.empty()) {
        const VertexId u = frontier.front();
        frontier.pop();
        for (const VertexId v : g.neighborsOf(u)) {
            if (level[v] > level[u] + 1) {
                level[v] = level[u] + 1;
                frontier.push(v);
            }
        }
    }
    return level;
}

std::vector<double>
dijkstraOracle(const Csr &g, VertexId source)
{
    using Entry = std::pair<double, VertexId>;
    std::vector<double> dist(g.numVertices(),
                             std::numeric_limits<double>::infinity());
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
    dist[source] = 0;
    pq.emplace(0.0, source);
    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d > dist[u])
            continue;
        const auto nbrs = g.neighborsOf(u);
        const auto ws = g.weightsOf(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const double nd = d + ws[i];
            if (nd < dist[nbrs[i]]) {
                dist[nbrs[i]] = nd;
                pq.emplace(nd, nbrs[i]);
            }
        }
    }
    return dist;
}

std::vector<double>
widestPathOracle(const Csr &g, VertexId source)
{
    using Entry = std::pair<double, VertexId>;
    std::vector<double> width(g.numVertices(), 0.0);
    std::priority_queue<Entry> pq; // max-heap on width
    width[source] = std::numeric_limits<double>::infinity();
    pq.emplace(width[source], source);
    while (!pq.empty()) {
        const auto [w, u] = pq.top();
        pq.pop();
        if (w < width[u])
            continue;
        const auto nbrs = g.neighborsOf(u);
        const auto ws = g.weightsOf(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const double nw = std::min(w, static_cast<double>(ws[i]));
            if (nw > width[nbrs[i]]) {
                width[nbrs[i]] = nw;
                pq.emplace(nw, nbrs[i]);
            }
        }
    }
    return width;
}

/** Union-find components (graph must be symmetric for this oracle). */
std::vector<VertexId>
componentsOracle(const Csr &g)
{
    std::vector<VertexId> parent(g.numVertices());
    std::iota(parent.begin(), parent.end(), 0);
    std::function<VertexId(VertexId)> find = [&](VertexId x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (VertexId u = 0; u < g.numVertices(); ++u) {
        for (const VertexId v : g.neighborsOf(u)) {
            const VertexId ru = find(u);
            const VertexId rv = find(v);
            if (ru != rv)
                parent[std::max(ru, rv)] = std::min(ru, rv);
        }
    }
    std::vector<VertexId> label(g.numVertices());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        label[v] = find(v);
    return label;
}

TEST(ReferenceEngine, BfsMatchesQueueOracle)
{
    const Csr g = randomGraph(300, 1200, 17);
    auto bfs = makeAlgorithm(AlgorithmId::Bfs);
    const auto result = runReference(g, *bfs, 0);
    const auto oracle = bfsOracle(g, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(static_cast<double>(result.properties[v]), oracle[v])
            << "vertex " << v;
}

TEST(ReferenceEngine, SsspMatchesDijkstra)
{
    const Csr g = randomGraph(300, 1500, 23);
    auto sssp = makeAlgorithm(AlgorithmId::Sssp);
    const auto result = runReference(g, *sssp, 5);
    const auto oracle = dijkstraOracle(g, 5);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(static_cast<double>(result.properties[v]), oracle[v])
            << "vertex " << v;
}

TEST(ReferenceEngine, SswpMatchesBottleneckDijkstra)
{
    const Csr g = randomGraph(250, 1000, 31);
    auto sswp = makeAlgorithm(AlgorithmId::Sswp);
    const auto result = runReference(g, *sswp, 3);
    const auto oracle = widestPathOracle(g, 3);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(static_cast<double>(result.properties[v]), oracle[v])
            << "vertex " << v;
}

TEST(ReferenceEngine, CcMatchesUnionFindOnSymmetricGraph)
{
    // Several disconnected symmetric clusters.
    std::vector<CooEdge> edges;
    auto link = [&edges](VertexId a, VertexId b) {
        edges.push_back(CooEdge{a, b, 1});
        edges.push_back(CooEdge{b, a, 1});
    };
    // Cluster A: 0-1-2, Cluster B: 3-4, Cluster C: 5 alone, D: 6-7-8-9.
    link(0, 1);
    link(1, 2);
    link(3, 4);
    link(6, 7);
    link(7, 8);
    link(8, 9);
    link(6, 9);
    const Csr g = graph::buildCsr(10, std::move(edges));

    auto cc = makeAlgorithm(AlgorithmId::Cc);
    const auto result = runReference(g, *cc, 0);
    const auto oracle = componentsOracle(g);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(result.properties[v], static_cast<PropValue>(oracle[v]))
            << "vertex " << v;
}

TEST(ReferenceEngine, CcOnRandomSymmetricGraph)
{
    const Csr g = randomGraph(200, 300, 41, /*symmetric=*/true);
    auto cc = makeAlgorithm(AlgorithmId::Cc);
    const auto result = runReference(g, *cc, 0);
    const auto oracle = componentsOracle(g);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        EXPECT_EQ(result.properties[v], static_cast<PropValue>(oracle[v]));
}

TEST(ReferenceEngine, PrMatchesPowerIteration)
{
    const Csr g = randomGraph(150, 900, 53);
    auto pr = makeAlgorithm(AlgorithmId::Pr);
    ReferenceOptions options;
    options.maxIterations = 200;
    const auto result = runReference(g, *pr, 0, options);

    // Dense power iteration on the same damping model.
    const double d = 0.85;
    const VertexId n = g.numVertices();
    std::vector<double> rank(n, 1.0 / n);
    std::vector<double> next(n);
    for (int iter = 0; iter < 300; ++iter) {
        std::fill(next.begin(), next.end(), (1.0 - d) / n);
        for (VertexId u = 0; u < n; ++u) {
            const double share = rank[u] / g.outDegree(u);
            for (const VertexId v : g.neighborsOf(u))
                next[v] += d * share;
        }
        rank.swap(next);
    }

    // Engine stores rank/degree.
    for (VertexId v = 0; v < n; ++v) {
        const double engine_rank =
            static_cast<double>(result.properties[v]) * g.outDegree(v);
        EXPECT_NEAR(engine_rank, rank[v], std::max(rank[v] * 0.02, 1e-4))
            << "vertex " << v;
    }
}

TEST(ReferenceEngine, PrRankMassIsConserved)
{
    const Csr g = randomGraph(100, 400, 59);
    auto pr = makeAlgorithm(AlgorithmId::Pr);
    ReferenceOptions options;
    options.maxIterations = 100;
    const auto result = runReference(g, *pr, 0, options);
    double total = 0.0;
    for (VertexId v = 0; v < g.numVertices(); ++v)
        total += static_cast<double>(result.properties[v]) * g.outDegree(v);
    // Activation-based ("delta") PR deactivates vertices once their rank
    // stabilizes within tolerance, so a few percent of rank mass leaks
    // relative to an exact power iteration.
    EXPECT_GT(total, 0.90);
    EXPECT_LT(total, 1.001);
}

TEST(ReferenceEngine, IterationCapRespected)
{
    const Csr g = randomGraph(100, 500, 61);
    auto pr = makeAlgorithm(AlgorithmId::Pr);
    ReferenceOptions options;
    options.maxIterations = 3;
    const auto result = runReference(g, *pr, 0, options);
    EXPECT_EQ(result.iterations, 3u);
}

TEST(ReferenceEngine, BfsTerminatesBeforeCap)
{
    const Csr g = randomGraph(200, 800, 67);
    auto bfs = makeAlgorithm(AlgorithmId::Bfs);
    const auto result = runReference(g, *bfs, 0);
    EXPECT_LT(result.iterations, 1000u);
    EXPECT_GT(result.iterations, 0u);
}

TEST(ReferenceEngine, TraceShapesMatchRun)
{
    const Csr g = randomGraph(200, 800, 71);
    auto bfs = makeAlgorithm(AlgorithmId::Bfs);
    ReferenceOptions options;
    options.collectTrace = true;
    const auto result = runReference(g, *bfs, 0, options);
    ASSERT_EQ(result.trace.size(), result.iterations);

    // First iteration: exactly the source is active.
    EXPECT_EQ(result.trace[0].activeVertices, 1u);
    EXPECT_EQ(result.trace[0].edgesProcessed, g.outDegree(0));

    std::uint64_t edges = 0;
    std::uint64_t updates = 0;
    for (const auto &t : result.trace) {
        edges += t.edgesProcessed;
        updates += t.vertexUpdates;
        // Histogram counts all active vertices.
        std::uint64_t hist_total = 0;
        for (const auto b : t.degreeHistogram)
            hist_total += b;
        EXPECT_EQ(hist_total, t.activeVertices);
    }
    EXPECT_EQ(edges, result.totalEdgesProcessed);
    EXPECT_EQ(updates, result.totalVertexUpdates);
}

TEST(ReferenceEngine, UpdateIrregularityVisibleInTrace)
{
    // On a skewed graph, later BFS iterations update few vertices --
    // the Fig. 2 observation that motivates update scheduling.
    const Csr g = graph::powerLaw(5000, 40000, 0.6, 3, true);
    auto sssp = makeAlgorithm(AlgorithmId::Sssp);
    ReferenceOptions options;
    options.collectTrace = true;
    const auto result =
        runReference(g, *sssp, defaultSource(g), options);
    ASSERT_GT(result.trace.size(), 2u);
    const auto &last = result.trace.back();
    EXPECT_LT(last.vertexUpdates, g.numVertices() / 10);
}

TEST(ReferenceEngineDeath, WeightedAlgorithmNeedsWeights)
{
    const Csr g = randomGraph(10, 10, 3).withoutWeights();
    auto sssp = makeAlgorithm(AlgorithmId::Sssp);
    EXPECT_TYPED_ERROR((void)runReference(g, *sssp, 0), ConfigError,
                       "weighted");
}

TEST(ReferenceEngineDeath, SourceOutOfRange)
{
    const Csr g = randomGraph(10, 10, 3);
    auto bfs = makeAlgorithm(AlgorithmId::Bfs);
    EXPECT_TYPED_ERROR((void)runReference(g, *bfs, 10), ConfigError,
                       "out of range");
}

/** Property sweep: oracles hold across sizes, densities and seeds. */
class ReferenceSweep
    : public ::testing::TestWithParam<std::tuple<VertexId, EdgeId,
                                                 std::uint64_t>>
{};

TEST_P(ReferenceSweep, BfsAndSsspMatchOracles)
{
    const auto [v_count, extra, seed] = GetParam();
    const Csr g = randomGraph(v_count, extra, seed);
    const VertexId source = static_cast<VertexId>(seed % v_count);

    auto bfs = makeAlgorithm(AlgorithmId::Bfs);
    const auto bfs_result = runReference(g, *bfs, source);
    const auto bfs_oracle = bfsOracle(g, source);
    for (VertexId v = 0; v < v_count; ++v)
        ASSERT_EQ(static_cast<double>(bfs_result.properties[v]),
                  bfs_oracle[v]);

    auto sssp = makeAlgorithm(AlgorithmId::Sssp);
    const auto sssp_result = runReference(g, *sssp, source);
    const auto sssp_oracle = dijkstraOracle(g, source);
    for (VertexId v = 0; v < v_count; ++v)
        ASSERT_EQ(static_cast<double>(sssp_result.properties[v]),
                  sssp_oracle[v]);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSeeds, ReferenceSweep,
    ::testing::Combine(::testing::Values(50u, 200u, 500u),
                       ::testing::Values(100u, 1000u, 4000u),
                       ::testing::Values(1u, 2u, 3u)));

} // namespace
} // namespace gds::algo
