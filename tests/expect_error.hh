/**
 * @file
 * Shared helper for asserting typed-error failure paths: the PR 1
 * EXPECT_DEATH tests became EXPECT_TYPED_ERROR when the user-facing
 * layers moved from aborting gds_assert to throwing SimError subclasses.
 */

#pragma once

#include <gtest/gtest.h>

#include <string>

/**
 * Expect @p statement to throw @p error_type whose what() contains
 * @p needle (a plain substring, not a regex).
 */
#define EXPECT_TYPED_ERROR(statement, error_type, needle)                   \
    do {                                                                    \
        try {                                                               \
            statement;                                                      \
            ADD_FAILURE() << "expected " #error_type " from " #statement;   \
        } catch (const error_type &caught_typed_error) {                    \
            EXPECT_NE(std::string(caught_typed_error.what())                \
                          .find(needle),                                    \
                      std::string::npos)                                    \
                << "message was: " << caught_typed_error.what();            \
        }                                                                   \
    } while (0)
