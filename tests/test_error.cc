/**
 * @file
 * Tests of the typed-error layer and every input-hardening path built on
 * it: Status/Result plumbing, the SimError hierarchy, Csr array
 * validation, bounded binary-graph loading, edge-list parsing with line
 * numbers, and the crash-safe result cache (format versioning, corrupt
 * line skipping, atomic saves).
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/error.hh"
#include "span_eq.hh"
#include "graph/generators.hh"
#include "graph/loader.hh"
#include "harness/experiment.hh"

namespace gds
{
namespace
{

namespace fs = std::filesystem;

// ---------------------------------------------------------------------
// Status / Result / error codes.
// ---------------------------------------------------------------------

TEST(ErrorCode, StableNames)
{
    EXPECT_STREQ(errorCodeName(ErrorCode::Ok), "ok");
    EXPECT_STREQ(errorCodeName(ErrorCode::Deadlock), "deadlock");
    EXPECT_STREQ(errorCodeName(ErrorCode::Livelock), "livelock");
    EXPECT_STREQ(errorCodeName(ErrorCode::CycleLimit), "cycle-limit");
    EXPECT_STREQ(errorCodeName(ErrorCode::CorruptInput), "corrupt-input");
    EXPECT_STREQ(errorCodeName(ErrorCode::Config), "config");
    EXPECT_STREQ(errorCodeName(ErrorCode::Internal), "internal");
}

TEST(Status, DefaultIsOk)
{
    const Status s;
    EXPECT_TRUE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::Ok);
    EXPECT_EQ(s.toString(), "ok");
}

TEST(Status, FailureCarriesCodeAndMessage)
{
    const Status s = Status::failure(ErrorCode::Config, "bad knob");
    EXPECT_FALSE(s.ok());
    EXPECT_EQ(s.code(), ErrorCode::Config);
    EXPECT_EQ(s.message(), "bad knob");
    EXPECT_EQ(s.toString(), "config: bad knob");
}

TEST(ResultT, ValueRoundTrip)
{
    Result<int> r(42);
    EXPECT_TRUE(r.ok());
    EXPECT_TRUE(static_cast<bool>(r));
    EXPECT_EQ(r.value(), 42);
    EXPECT_EQ(r.valueOr(7), 42);
    EXPECT_TRUE(r.status().ok());
}

TEST(ResultT, FailurePropagatesStatus)
{
    const Result<int> r(
        Status::failure(ErrorCode::CorruptInput, "short read"));
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), ErrorCode::CorruptInput);
    EXPECT_EQ(r.valueOr(7), 7);
}

TEST(SimErrorHierarchy, CodesAndStatusConversion)
{
    const DeadlockError dead("stuck");
    EXPECT_EQ(dead.code(), ErrorCode::Deadlock);
    EXPECT_STREQ(dead.what(), "stuck");
    EXPECT_EQ(dead.toStatus().code(), ErrorCode::Deadlock);

    EXPECT_EQ(LivelockError("l").code(), ErrorCode::Livelock);
    EXPECT_EQ(CycleLimitError("c").code(), ErrorCode::CycleLimit);
    EXPECT_EQ(ConfigError("k").code(), ErrorCode::Config);
}

TEST(SimErrorHierarchy, CorruptInputDescribesLocation)
{
    const CorruptInputError with_line("graph.el", 17, "bad edge");
    EXPECT_EQ(with_line.path(), "graph.el");
    EXPECT_EQ(with_line.line(), 17u);
    EXPECT_STREQ(with_line.what(), "graph.el:17: bad edge");

    const CorruptInputError binary("graph.bin", 0, "bad magic");
    EXPECT_STREQ(binary.what(), "graph.bin: bad magic");

    const CorruptInputError bare("", 0, "just a message");
    EXPECT_STREQ(bare.what(), "just a message");
}

TEST(ThrowStatus, DispatchesToMatchingSubclass)
{
    EXPECT_THROW(
        throwStatus(Status::failure(ErrorCode::Deadlock, "d")),
        DeadlockError);
    EXPECT_THROW(
        throwStatus(Status::failure(ErrorCode::Livelock, "l")),
        LivelockError);
    EXPECT_THROW(
        throwStatus(Status::failure(ErrorCode::CycleLimit, "c")),
        CycleLimitError);
    EXPECT_THROW(
        throwStatus(Status::failure(ErrorCode::CorruptInput, "i")),
        CorruptInputError);
    EXPECT_THROW(throwStatus(Status::failure(ErrorCode::Config, "k")),
                 ConfigError);
    EXPECT_THROW(throwStatus(Status::failure(ErrorCode::Internal, "x")),
                 SimError);
}

// ---------------------------------------------------------------------
// Csr validation.
// ---------------------------------------------------------------------

/** Brace-friendly shim: validateArrays takes spans, which have no
 *  initializer_list constructor. */
Status
validateArrays(const std::vector<EdgeId> &offsets,
               const std::vector<VertexId> &neighbors,
               const std::vector<Weight> &weights)
{
    return graph::Csr::validateArrays(offsets, neighbors, weights);
}

TEST(CsrValidate, AcceptsWellFormedArrays)
{
    EXPECT_TRUE(validateArrays({0, 2, 3}, {1, 0, 0}, {}).ok());
    EXPECT_TRUE(
        validateArrays({0, 2, 3}, {1, 0, 0}, {5, 6, 7}).ok());
    EXPECT_TRUE(graph::uniform(100, 500, 1, true).validate().ok());
}

TEST(CsrValidate, RejectsEachBrokenInvariant)
{
    // No offsets at all (needs V+1 >= 1 entries).
    EXPECT_FALSE(validateArrays({}, {}, {}).ok());
    // Offsets not starting at zero.
    EXPECT_FALSE(validateArrays({1, 2}, {0}, {}).ok());
    // End of the offset array disagreeing with the edge count.
    EXPECT_FALSE(validateArrays({0, 5}, {0}, {}).ok());
    // Decreasing offsets.
    EXPECT_FALSE(
        validateArrays({0, 2, 1, 3}, {0, 1, 2}, {}).ok());
    // Edge destination out of range.
    const Status dest =
        validateArrays({0, 1, 2}, {1, 9}, {});
    EXPECT_FALSE(dest.ok());
    EXPECT_EQ(dest.code(), ErrorCode::CorruptInput);
    // Weight array of the wrong size.
    EXPECT_FALSE(
        validateArrays({0, 1, 2}, {1, 0}, {3}).ok());
}

// ---------------------------------------------------------------------
// Binary graph loader.
// ---------------------------------------------------------------------

/** Unique scratch file that cleans itself up. */
class ScratchFile
{
  public:
    explicit ScratchFile(const std::string &name)
        : _path((fs::temp_directory_path() /
                 ("gds_test_" + name + "_" +
                  std::to_string(::getpid())))
                    .string())
    {}

    ~ScratchFile()
    {
        std::error_code ec;
        fs::remove(_path, ec);
    }

    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

template <typename T>
void
writePod(std::ofstream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
void
writeVec(std::ofstream &os, const std::vector<T> &v)
{
    writePod<std::uint64_t>(os, v.size());
    os.write(reinterpret_cast<const char *>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/** Write a GDSB file with the given header and arrays. */
void
writeGdsb(const std::string &path, std::uint32_t magic,
          std::uint32_t version, const std::vector<EdgeId> &offsets,
          const std::vector<VertexId> &neighbors,
          const std::vector<Weight> &weights)
{
    std::ofstream out(path, std::ios::binary);
    writePod(out, magic);
    writePod(out, version);
    writeVec(out, offsets);
    writeVec(out, neighbors);
    writeVec(out, weights);
}

constexpr std::uint32_t gdsbMagic = 0x42534447;

TEST(LoadBinary, RoundTripsThroughSaveBinary)
{
    const ScratchFile file("roundtrip.bin");
    const auto g = graph::powerLaw(500, 4000, 0.6, 3, true);
    graph::saveBinaryAtomic(g, file.path());
    const auto loaded = graph::loadBinary(file.path());
    EXPECT_EQ(loaded.numVertices(), g.numVertices());
    EXPECT_EQ(loaded.numEdges(), g.numEdges());
    EXPECT_SPAN_EQ(loaded.offsetArray(), g.offsetArray());
    EXPECT_SPAN_EQ(loaded.neighborArray(), g.neighborArray());
    EXPECT_SPAN_EQ(loaded.weightArray(), g.weightArray());
}

TEST(LoadBinary, MissingFileIsConfigError)
{
    EXPECT_THROW((void)graph::loadBinary("/nonexistent/graph.bin"),
                 ConfigError);
}

TEST(LoadBinary, RejectsForeignMagic)
{
    const ScratchFile file("magic.bin");
    writeGdsb(file.path(), 0xDEADBEEF, 1, {0, 1}, {0}, {});
    EXPECT_THROW((void)graph::loadBinary(file.path()), CorruptInputError);
}

TEST(LoadBinary, RejectsUnsupportedVersion)
{
    const ScratchFile file("version.bin");
    writeGdsb(file.path(), gdsbMagic, 99, {0, 1}, {0}, {});
    EXPECT_THROW((void)graph::loadBinary(file.path()), CorruptInputError);
}

TEST(LoadBinary, RejectsTruncatedFile)
{
    const ScratchFile file("truncated.bin");
    const auto g = graph::uniform(200, 1600, 4, false);
    graph::saveBinaryAtomic(g, file.path());
    fs::resize_file(file.path(), fs::file_size(file.path()) / 2);
    EXPECT_THROW((void)graph::loadBinary(file.path()), CorruptInputError);
}

TEST(LoadBinary, RejectsOversizedLengthField)
{
    // A header whose offset-array length claims more data than the file
    // holds must fail before any giant allocation is attempted.
    const ScratchFile file("oversized.bin");
    std::ofstream out(file.path(), std::ios::binary);
    writePod(out, gdsbMagic);
    writePod<std::uint32_t>(out, 1);
    writePod<std::uint64_t>(out, ~0ULL); // offset count
    out.close();
    EXPECT_THROW((void)graph::loadBinary(file.path()), CorruptInputError);
}

TEST(LoadBinary, RejectsCorruptedContents)
{
    // Structurally valid file whose arrays break the CSR invariants
    // (destination 9 with only two vertices).
    const ScratchFile file("corrupt.bin");
    writeGdsb(file.path(), gdsbMagic, 1, {0, 1, 2}, {1, 9}, {});
    try {
        (void)graph::loadBinary(file.path());
        FAIL() << "expected CorruptInputError";
    } catch (const CorruptInputError &e) {
        EXPECT_EQ(e.path(), file.path());
        EXPECT_NE(std::string(e.what()).find("edge destination"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Edge-list loader.
// ---------------------------------------------------------------------

void
writeText(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    out << text;
}

TEST(LoadEdgeList, ParsesCommentsAndWeights)
{
    const ScratchFile file("edges.el");
    writeText(file.path(), "# comment\n0 1 5\n1 2 7\n% more\n2 0 9\n");
    const auto g = graph::loadEdgeList(file.path(), 0, true);
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_TRUE(g.hasWeights());
}

TEST(LoadEdgeList, MalformedLineCarriesLineNumber)
{
    const ScratchFile file("bad.el");
    writeText(file.path(), "0 1\n1 2\nnot an edge\n");
    try {
        (void)graph::loadEdgeList(file.path());
        FAIL() << "expected CorruptInputError";
    } catch (const CorruptInputError &e) {
        EXPECT_EQ(e.line(), 3u);
    }
}

TEST(LoadEdgeList, MissingWeightIsCorruptInput)
{
    const ScratchFile file("noweight.el");
    writeText(file.path(), "0 1 5\n1 2\n");
    EXPECT_THROW((void)graph::loadEdgeList(file.path(), 0, true),
                 CorruptInputError);
}

TEST(LoadEdgeList, EndpointBeyondDeclaredVertexCount)
{
    const ScratchFile file("range.el");
    writeText(file.path(), "0 1\n1 5\n");
    EXPECT_THROW((void)graph::loadEdgeList(file.path(), 3),
                 CorruptInputError);
}

TEST(LoadEdgeList, MissingFileIsConfigError)
{
    EXPECT_THROW((void)graph::loadEdgeList("/nonexistent/edges.el"),
                 ConfigError);
}

// ---------------------------------------------------------------------
// Result cache.
// ---------------------------------------------------------------------

/** Runs each test in a private scratch directory (the cache file name is
 *  fixed, so the working directory must be isolated). */
class ResultCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        previous = fs::current_path();
        scratch = fs::temp_directory_path() /
                  ("gds_cache_test_" + std::to_string(::getpid()));
        fs::create_directories(scratch);
        fs::current_path(scratch);
    }

    void
    TearDown() override
    {
        fs::current_path(previous);
        std::error_code ec;
        fs::remove_all(scratch, ec);
    }

    static harness::RunRecord
    record(const std::string &status)
    {
        harness::RunRecord r;
        r.system = "GraphDynS";
        r.algorithm = "BFS";
        r.dataset = "test";
        r.status = status;
        r.iterations = 3;
        r.seconds = 0.5;
        r.gteps = 2.0;
        return r;
    }

    static constexpr const char *cacheName = "gds_bench_cache_v1.csv";

    fs::path previous;
    fs::path scratch;
};

TEST_F(ResultCacheTest, RoundTripsThroughDisk)
{
    {
        harness::ResultCache cache;
        cache.store("k1", record("ok"));
    }
    EXPECT_TRUE(fs::exists(cacheName));
    // The atomic save must not leave its temp file behind.
    EXPECT_FALSE(fs::exists(std::string(cacheName) + ".tmp"));

    harness::ResultCache reloaded;
    const auto hit = reloaded.lookup("k1");
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->system, "GraphDynS");
    EXPECT_EQ(hit->status, "ok");
    EXPECT_EQ(hit->iterations, 3u);
    EXPECT_DOUBLE_EQ(hit->seconds, 0.5);
}

TEST_F(ResultCacheTest, GetOrRunCachesOnlySuccesses)
{
    harness::ResultCache cache;
    int runs = 0;
    const auto failing = [&] {
        ++runs;
        return record("deadlock");
    };
    EXPECT_EQ(cache.getOrRun("bad", failing).status, "deadlock");
    EXPECT_EQ(cache.getOrRun("bad", failing).status, "deadlock");
    EXPECT_EQ(runs, 2) << "failed cells must be retried, not cached";

    const auto succeeding = [&] {
        ++runs;
        return record("ok");
    };
    EXPECT_EQ(cache.getOrRun("good", succeeding).status, "ok");
    EXPECT_EQ(cache.getOrRun("good", succeeding).status, "ok");
    EXPECT_EQ(runs, 3) << "successful cells are cached after one run";
}

TEST_F(ResultCacheTest, SkipsCorruptLinesKeepsGoodOnes)
{
    {
        harness::ResultCache cache;
        cache.store("good", record("ok"));
    }
    // Append garbage: both must be skipped without losing "good".
    {
        std::ofstream out(cacheName, std::ios::app);
        out << "mangled,line,without,enough,fields\n";
        out << "key2,Sys,BFS,test,ok,not_a_number,x,x,x,x,x,x,x,x,x,x,x\n";
    }
    harness::ResultCache reloaded;
    EXPECT_TRUE(reloaded.lookup("good").has_value());
    EXPECT_FALSE(reloaded.lookup("key2").has_value());
}

TEST_F(ResultCacheTest, IgnoresCacheWithForeignFormatLine)
{
    {
        std::ofstream out(cacheName);
        out << "# some other format\n";
        out << "k,Sys,BFS,test,ok,1,1,1,1,1,1,1,1,1,1,1,1\n";
    }
    harness::ResultCache cache;
    EXPECT_FALSE(cache.lookup("k").has_value());
}

TEST_F(ResultCacheTest, EmptyOrMissingFileIsFine)
{
    harness::ResultCache cache;
    EXPECT_FALSE(cache.lookup("anything").has_value());
}

// ---------------------------------------------------------------------
// JSON record dump.
// ---------------------------------------------------------------------

TEST(DumpRecordsJson, EmitsStatusAndEscapes)
{
    harness::RunRecord r;
    r.system = "GraphDynS";
    r.algorithm = "BFS";
    r.dataset = "a\"b";
    r.status = "livelock";
    r.gteps = 1.5;
    std::ostringstream os;
    harness::dumpRecordsJson({r}, os);
    const std::string json = os.str();
    EXPECT_NE(json.find("\"status\":\"livelock\""), std::string::npos);
    EXPECT_NE(json.find("\"dataset\":\"a\\\"b\""), std::string::npos);
    EXPECT_NE(json.find("\"gteps\":1.5"), std::string::npos);
    EXPECT_EQ(json.front(), '[');
}

} // namespace
} // namespace gds
