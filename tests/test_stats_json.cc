/**
 * @file
 * Tests of the JSON statistics export: structure, escaping, all stat
 * kinds, nesting, and numeric edge cases.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/json.hh"

namespace gds::stats
{
namespace
{

std::string
toJson(const Group &g)
{
    std::ostringstream os;
    dumpJson(g, os);
    return os.str();
}

TEST(StatsJson, EmptyGroup)
{
    Group root(nullptr, "root");
    EXPECT_EQ(toJson(root), "{}\n");
}

TEST(StatsJson, ScalarsAndVectors)
{
    Group root(nullptr, "root");
    Scalar s(&root, "cycles", "d");
    s = 42.5;
    Vector v(&root, "perPe", "d", 3);
    v[0] = 1;
    v[2] = 3;
    EXPECT_EQ(toJson(root),
              "{\"cycles\":42.5,\"perPe\":[1,0,3]}\n");
}

TEST(StatsJson, DistributionsUseBucketLabels)
{
    Group root(nullptr, "root");
    Distribution d(&root, "deg", "d");
    d.sample(1);
    d.sample(100);
    const std::string json = toJson(root);
    EXPECT_NE(json.find("\"[1,2]\":1"), std::string::npos);
    EXPECT_NE(json.find("\">64\":1"), std::string::npos);
    EXPECT_NE(json.find("\"[0,0]\":0"), std::string::npos);
}

TEST(StatsJson, NestedGroups)
{
    Group root(nullptr, "accel");
    Scalar top(&root, "total", "d");
    top = 7;
    Group child(&root, "pe");
    Scalar inner(&child, "ops", "d");
    inner = 3;
    EXPECT_EQ(toJson(root), "{\"total\":7,\"pe\":{\"ops\":3}}\n");
}

TEST(StatsJson, NonFiniteValuesBecomeNull)
{
    Group root(nullptr, "root");
    Scalar s(&root, "ratio", "d");
    s = std::numeric_limits<double>::infinity();
    EXPECT_EQ(toJson(root), "{\"ratio\":null}\n");
}

TEST(StatsJson, QuotesAreEscaped)
{
    Group root(nullptr, "root");
    Scalar s(&root, "a\"b", "d");
    EXPECT_NE(toJson(root).find("\"a\\\"b\""), std::string::npos);
}

TEST(StatsJson, ControlCharactersAreEscapedPerRfc8259)
{
    std::ostringstream os;
    emitJsonString(os, "a\nb\tc\rd\be\ff");
    EXPECT_EQ(os.str(), "\"a\\nb\\tc\\rd\\be\\ff\"");

    // Control characters without a short form use \u00xx.
    std::ostringstream os2;
    emitJsonString(os2, std::string("x\x01y\x1fz"));
    EXPECT_EQ(os2.str(), "\"x\\u0001y\\u001fz\"");

    // Backslash and quote still escape; printable text is untouched.
    std::ostringstream os3;
    emitJsonString(os3, "p\\q\"r");
    EXPECT_EQ(os3.str(), "\"p\\\\q\\\"r\"");
}

} // namespace
} // namespace gds::stats
