/**
 * @file
 * Degenerate-workload edge cases through the full GraphDynS stack:
 * single-vertex graphs, isolated vertices, self loops, parallel edges,
 * stars (one giant hub), chains (maximum iteration counts), empty
 * frontiers, and sources with no outgoing edges.
 */

#include <gtest/gtest.h>

#include "algo/reference_engine.hh"
#include "core/gds_accel.hh"
#include "graph/builder.hh"

namespace gds::core
{
namespace
{

using algo::AlgorithmId;
using graph::BuildOptions;
using graph::CooEdge;
using graph::Csr;

void
expectMatch(const Csr &g, AlgorithmId id, VertexId source)
{
    auto ref_algo = algo::makeAlgorithm(id);
    const auto golden = algo::runReference(g, *ref_algo, source);
    auto sim_algo = algo::makeAlgorithm(id);
    GdsAccel accel(GdsConfig{}, g, *sim_algo);
    RunOptions run;
    run.source = source;
    const auto result = accel.run(run);
    ASSERT_EQ(result.iterations, golden.iterations);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(result.properties[v], golden.properties[v])
            << "vertex " << v;
}

Csr
weighted(VertexId v, std::vector<CooEdge> edges)
{
    BuildOptions opts;
    opts.keepWeights = true;
    return graph::buildCsr(v, std::move(edges), opts);
}

TEST(EdgeCases, SingleVertexNoEdges)
{
    const Csr g = weighted(1, {});
    expectMatch(g, AlgorithmId::Bfs, 0);
    expectMatch(g, AlgorithmId::Cc, 0);
}

TEST(EdgeCases, TwoVerticesOneEdge)
{
    const Csr g = weighted(2, {{0, 1, 5}});
    expectMatch(g, AlgorithmId::Sssp, 0);
    expectMatch(g, AlgorithmId::Sswp, 0);
}

TEST(EdgeCases, SourceHasNoOutEdges)
{
    const Csr g = weighted(3, {{1, 2, 1}});
    // BFS from vertex 0 (no out-edges): terminates after one iteration.
    expectMatch(g, AlgorithmId::Bfs, 0);
}

TEST(EdgeCases, SelfLoops)
{
    const Csr g = weighted(3, {{0, 0, 1}, {0, 1, 2}, {1, 1, 3},
                               {1, 2, 4}});
    expectMatch(g, AlgorithmId::Bfs, 0);
    expectMatch(g, AlgorithmId::Sssp, 0);
    expectMatch(g, AlgorithmId::Cc, 0);
}

TEST(EdgeCases, ParallelEdgesKeepMinimumSemantics)
{
    const Csr g = weighted(2, {{0, 1, 9}, {0, 1, 2}, {0, 1, 5}});
    expectMatch(g, AlgorithmId::Sssp, 0);
    expectMatch(g, AlgorithmId::Sswp, 0);
}

TEST(EdgeCases, StarGraphOneGiantHub)
{
    // One hub pointing at 5000 leaves: a single record larger than the
    // split threshold, the Epref budget, and any one PE queue.
    std::vector<CooEdge> edges;
    for (VertexId leaf = 1; leaf <= 5000; ++leaf)
        edges.push_back(CooEdge{0, leaf, leaf % 255 + 1});
    const Csr g = weighted(5001, std::move(edges));
    expectMatch(g, AlgorithmId::Bfs, 0);
    expectMatch(g, AlgorithmId::Sssp, 0);
}

TEST(EdgeCases, ReverseStarAllIntoOneVertex)
{
    // 5000 sources all updating the same destination: the ultimate RAW
    // conflict pattern for the reduce pipeline.
    std::vector<CooEdge> edges;
    for (VertexId src = 1; src <= 5000; ++src)
        edges.push_back(CooEdge{src, 0, src % 255 + 1});
    const Csr g = weighted(5001, std::move(edges));
    auto cc_sim = algo::makeAlgorithm(AlgorithmId::Cc);
    GdsConfig cfg;
    cfg.zeroStallAtomics = false; // stress the stall path too
    GdsAccel accel(cfg, g, *cc_sim);
    const auto result = accel.run();
    auto cc_ref = algo::makeAlgorithm(AlgorithmId::Cc);
    const auto golden = algo::runReference(g, *cc_ref, 0);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(result.properties[v], golden.properties[v]);
}

TEST(EdgeCases, LongChainManyIterations)
{
    // A 3000-deep chain: 3000 BFS iterations of single-vertex frontiers.
    std::vector<CooEdge> edges;
    for (VertexId v = 0; v + 1 < 3000; ++v)
        edges.push_back(CooEdge{v, v + 1, 1});
    const Csr g = weighted(3000, std::move(edges));
    auto bfs_sim = algo::makeAlgorithm(AlgorithmId::Bfs);
    GdsConfig cfg;
    cfg.maxIterations = 4000;
    GdsAccel accel(cfg, g, *bfs_sim);
    RunOptions run;
    run.source = 0;
    const auto result = accel.run(run);
    // Iteration k activates vertex k; the 3000th iteration scatters the
    // final (edge-less) frontier and activates nothing.
    EXPECT_EQ(result.iterations, 3000u);
    EXPECT_EQ(result.properties[2999], 2999.0f);
}

TEST(EdgeCases, DisconnectedIslands)
{
    // CC over many singleton vertices plus one small component.
    std::vector<CooEdge> edges = {{0, 1, 1}, {1, 0, 1}};
    const Csr g = weighted(1000, std::move(edges));
    expectMatch(g, AlgorithmId::Cc, 0);
}

TEST(EdgeCases, MaxIterationsZeroReturnsInitialState)
{
    const Csr g = weighted(10, {{0, 1, 1}});
    auto bfs = algo::makeAlgorithm(AlgorithmId::Bfs);
    GdsConfig cfg;
    cfg.maxIterations = 0;
    GdsAccel accel(cfg, g, *bfs);
    const auto result = accel.run();
    EXPECT_EQ(result.iterations, 0u);
    EXPECT_EQ(result.properties[0], 0.0f);
    EXPECT_EQ(result.properties[1], propInf);
}

TEST(EdgeCases, PrOnTinyCycle)
{
    // 3-cycle: PR fixed point is exactly uniform.
    const Csr g = weighted(3, {{0, 1, 1}, {1, 2, 1}, {2, 0, 1}});
    auto pr = algo::makeAlgorithm(AlgorithmId::Pr);
    GdsConfig cfg;
    cfg.maxIterations = 50;
    GdsAccel accel(cfg, g, *pr);
    const auto result = accel.run();
    for (VertexId v = 0; v < 3; ++v)
        EXPECT_NEAR(result.properties[v], 1.0f / 3.0f, 1e-3f);
}

} // namespace
} // namespace gds::core
