/**
 * @file
 * Tests of the zero-copy dataset memory layer: the binary CSR format v2
 * (page-aligned sections, endian guard, FNV-1a-64 checksums, v1
 * fallback), common::MappedFile hardening (short maps raise typed
 * errors, never SIGBUS), the deterministic parallel graph build and
 * chunked generators (byte-identical at every job count), heap- vs
 * mmap-backed simulation bit-identity, and the DatasetPool storage
 * gauges.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "algo/reference_engine.hh"
#include "common/error.hh"
#include "common/mapped_file.hh"
#include "common/rng.hh"
#include "graph/builder.hh"
#include "graph/generators.hh"
#include "graph/loader.hh"
#include "harness/dataset_pool.hh"
#include "span_eq.hh"

namespace gds
{
namespace
{

namespace fs = std::filesystem;

/** Self-deleting temp path (the test writes the file itself). */
class ScratchFile
{
  public:
    explicit ScratchFile(const std::string &name)
        : _path((fs::temp_directory_path() /
                 ("gds_dsl_" + name + "_" + std::to_string(::getpid())))
                    .string())
    {}

    ~ScratchFile()
    {
        std::error_code ec;
        fs::remove(_path, ec);
    }

    const std::string &path() const { return _path; }

  private:
    std::string _path;
};

/** A small deterministic graph with interesting degree skew. */
graph::Csr
sampleGraph(bool weighted = true)
{
    return graph::powerLaw(400, 3000, 0.6, /*seed=*/7, weighted);
}

/** Flip one byte of the file at @p offset. */
void
flipByte(const std::string &path, std::uint64_t offset)
{
    std::fstream f(path,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(offset));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(static_cast<std::streamoff>(offset));
    f.write(&byte, 1);
}

/** Truncate the file to @p keep_bytes. */
void
truncateTo(const std::string &path, std::uint64_t keep_bytes)
{
    fs::resize_file(path, keep_bytes);
}

template <typename T>
void
writePod(std::ofstream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
void
writeVec(std::ofstream &os, const std::vector<T> &v)
{
    writePod<std::uint64_t>(os, v.size());
    os.write(reinterpret_cast<const char *>(v.data()),
             static_cast<std::streamsize>(v.size() * sizeof(T)));
}

/** Write a legacy v1 GDSB file (length-prefixed arrays, no checksums). */
void
writeV1(const std::string &path, const std::vector<EdgeId> &offsets,
        const std::vector<VertexId> &neighbors,
        const std::vector<Weight> &weights)
{
    std::ofstream out(path, std::ios::binary);
    writePod<std::uint32_t>(out, 0x42534447); // "GDSB"
    writePod<std::uint32_t>(out, 1);
    writeVec(out, offsets);
    writeVec(out, neighbors);
    writeVec(out, weights);
}

// ---------------------------------------------------------------------
// common::MappedFile.
// ---------------------------------------------------------------------

TEST(MappedFile, MapsWholeFileAndServesTypedViews)
{
    const ScratchFile file("mapbasic");
    const std::vector<std::uint64_t> values = {1, 2, 3, 4, 5};
    {
        std::ofstream out(file.path(), std::ios::binary);
        out.write(reinterpret_cast<const char *>(values.data()),
                  static_cast<std::streamsize>(values.size() * 8));
    }
    const auto map = common::MappedFile::open(file.path());
    EXPECT_EQ(map->size(), values.size() * 8);
    const auto view = map->viewAt<std::uint64_t>(8, 3);
    ASSERT_EQ(view.size(), 3u);
    EXPECT_EQ(view[0], 2u);
    EXPECT_EQ(view[2], 4u);
    // Advice is best-effort; it must at least not throw on valid ranges.
    map->adviseWillNeed(0, map->size());
    map->adviseSequential(0, map->size());
}

TEST(MappedFile, ViewBeyondMappingIsCorruptInput)
{
    const ScratchFile file("mapshort");
    {
        std::ofstream out(file.path(), std::ios::binary);
        const std::uint64_t v = 42;
        writePod(out, v);
    }
    const auto map = common::MappedFile::open(file.path());
    EXPECT_THROW((void)map->viewAt<std::uint64_t>(0, 2),
                 CorruptInputError);
    EXPECT_THROW((void)map->viewAt<std::uint64_t>(8, 1),
                 CorruptInputError);
}

TEST(MappedFile, MissingFileIsConfigError)
{
    EXPECT_THROW((void)common::MappedFile::open("/nonexistent/f.bin"),
                 ConfigError);
}

// ---------------------------------------------------------------------
// Format v2 round trips.
// ---------------------------------------------------------------------

TEST(FormatV2, MappedRoundTripIsZeroCopy)
{
    const ScratchFile file("v2map");
    const graph::Csr g = sampleGraph();
    graph::saveBinaryAtomic(g, file.path());

    const graph::Csr mapped = graph::loadBinaryMapped(file.path());
    EXPECT_TRUE(mapped.isMapped());
    EXPECT_GT(mapped.mappedBytes(), 0u);
    EXPECT_EQ(mapped.heapBytes(), 0u);
    EXPECT_SPAN_EQ(mapped.offsetArray(), g.offsetArray());
    EXPECT_SPAN_EQ(mapped.neighborArray(), g.neighborArray());
    EXPECT_SPAN_EQ(mapped.weightArray(), g.weightArray());
}

TEST(FormatV2, MappedRoundTripWithFullVerification)
{
    const ScratchFile file("v2verify");
    const graph::Csr g = sampleGraph(false);
    graph::saveBinaryAtomic(g, file.path());
    const graph::Csr mapped =
        graph::loadBinaryMapped(file.path(), {.verify = true});
    EXPECT_TRUE(mapped.isMapped());
    EXPECT_SPAN_EQ(mapped.neighborArray(), g.neighborArray());
    EXPECT_TRUE(mapped.weightArray().empty());
}

TEST(FormatV2, HeapRoundTripMatchesMapped)
{
    const ScratchFile file("v2heap");
    const graph::Csr g = sampleGraph();
    graph::saveBinaryAtomic(g, file.path());
    const graph::Csr heap = graph::loadBinary(file.path());
    EXPECT_FALSE(heap.isMapped());
    EXPECT_GT(heap.heapBytes(), 0u);
    EXPECT_EQ(heap.mappedBytes(), 0u);
    const graph::Csr mapped = graph::loadBinaryMapped(file.path());
    EXPECT_SPAN_EQ(heap.offsetArray(), mapped.offsetArray());
    EXPECT_SPAN_EQ(heap.neighborArray(), mapped.neighborArray());
    EXPECT_SPAN_EQ(heap.weightArray(), mapped.weightArray());
}

TEST(FormatV2, EmptyGraphRoundTrips)
{
    const ScratchFile file("v2empty");
    const graph::Csr g = graph::buildCsr(3, {});
    graph::saveBinaryAtomic(g, file.path());
    const graph::Csr mapped = graph::loadBinaryMapped(file.path());
    EXPECT_EQ(mapped.numVertices(), 3u);
    EXPECT_EQ(mapped.numEdges(), 0u);
}

// ---------------------------------------------------------------------
// Format v2 hardening: every corruption is a typed error.
// ---------------------------------------------------------------------

TEST(FormatV2, RejectsBadMagic)
{
    const ScratchFile file("v2magic");
    graph::saveBinaryAtomic(sampleGraph(), file.path());
    flipByte(file.path(), 0); // first magic byte
    EXPECT_THROW((void)graph::loadBinary(file.path()),
                 CorruptInputError);
    EXPECT_THROW((void)graph::loadBinaryMapped(file.path()),
                 CorruptInputError);
}

TEST(FormatV2, RejectsWrongEndianGuard)
{
    const ScratchFile file("v2endian");
    graph::saveBinaryAtomic(sampleGraph(), file.path());
    // Corrupt the endian guard at header offset 8 — the header a
    // big-endian writer would have produced.
    flipByte(file.path(), 8);
    try {
        (void)graph::loadBinaryMapped(file.path());
        FAIL() << "wrong-endian file must be rejected";
    } catch (const CorruptInputError &e) {
        EXPECT_NE(std::string(e.what()).find("endian"),
                  std::string::npos)
            << e.what();
    }
}

TEST(FormatV2, RejectsHeaderBitFlip)
{
    const ScratchFile file("v2hdrflip");
    graph::saveBinaryAtomic(sampleGraph(), file.path());
    flipByte(file.path(), 24); // inside numVertices
    EXPECT_THROW((void)graph::loadBinaryMapped(file.path()),
                 CorruptInputError);
}

TEST(FormatV2, RejectsSectionBitFlipWhenVerifying)
{
    const ScratchFile file("v2secflip");
    graph::saveBinaryAtomic(sampleGraph(), file.path());
    // Past the header page, inside the offsets section.
    flipByte(file.path(), 4096 + 16);
    // Full-verify paths re-hash the sections and must notice.
    EXPECT_THROW((void)graph::loadBinary(file.path()),
                 CorruptInputError);
    EXPECT_THROW(
        (void)graph::loadBinaryMapped(file.path(), {.verify = true}),
        CorruptInputError);
}

TEST(FormatV2, RejectsTruncatedHeader)
{
    const ScratchFile file("v2trunchdr");
    graph::saveBinaryAtomic(sampleGraph(), file.path());
    truncateTo(file.path(), 64);
    EXPECT_THROW((void)graph::loadBinaryMapped(file.path()),
                 CorruptInputError);
}

TEST(FormatV2, ShortMapIsTypedErrorNotSigbus)
{
    const ScratchFile file("v2shortmap");
    graph::saveBinaryAtomic(sampleGraph(), file.path());
    const std::uint64_t full = fs::file_size(file.path());
    // Keep the header and offsets but cut the neighbors section short.
    truncateTo(file.path(), full - 512);
    EXPECT_THROW((void)graph::loadBinaryMapped(file.path()),
                 CorruptInputError);
    EXPECT_THROW((void)graph::loadBinary(file.path()),
                 CorruptInputError);
}

TEST(FormatV2, RejectsTinyFile)
{
    const ScratchFile file("v2tiny");
    {
        std::ofstream out(file.path(), std::ios::binary);
        out << "GD";
    }
    EXPECT_THROW((void)graph::loadBinaryMapped(file.path()),
                 CorruptInputError);
}

// ---------------------------------------------------------------------
// v1 fallback.
// ---------------------------------------------------------------------

TEST(FormatV1, LegacyFileStillLoads)
{
    const ScratchFile file("v1compat");
    writeV1(file.path(), {0, 2, 3}, {1, 0, 0}, {5, 6, 7});
    const graph::Csr g = graph::loadBinary(file.path());
    EXPECT_EQ(g.numVertices(), 2u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.neighborArray()[0], 1u);
    EXPECT_EQ(g.weightArray()[2], 7u);
}

TEST(FormatV1, MappedLoaderFallsBackToHeap)
{
    const ScratchFile file("v1mapfall");
    writeV1(file.path(), {0, 1, 2}, {1, 0}, {});
    const graph::Csr g = graph::loadBinaryMapped(file.path());
    EXPECT_FALSE(g.isMapped()); // v1 has no aligned sections to map
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_TRUE(g.weightArray().empty());
}

TEST(FormatV2, SavedFilesAreV2)
{
    const ScratchFile file("v2version");
    graph::saveBinaryAtomic(sampleGraph(false), file.path());
    std::ifstream in(file.path(), std::ios::binary);
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    in.read(reinterpret_cast<char *>(&magic), 4);
    in.read(reinterpret_cast<char *>(&version), 4);
    EXPECT_EQ(magic, 0x42534447u);
    EXPECT_EQ(version, 2u);
}

// ---------------------------------------------------------------------
// Deterministic parallel build.
// ---------------------------------------------------------------------

std::vector<graph::CooEdge>
randomEdges(std::size_t count, VertexId num_vertices, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<graph::CooEdge> edges(count);
    for (auto &e : edges) {
        e.src = static_cast<VertexId>(rng.below(num_vertices));
        e.dst = static_cast<VertexId>(rng.below(num_vertices));
        e.weight = static_cast<Weight>(1 + rng.below(255));
    }
    return edges;
}

TEST(ParallelBuild, ByteIdenticalAcrossJobCounts)
{
    const VertexId v = 1000;
    const auto edges = randomEdges(200000, v, 11);
    graph::BuildOptions opts;
    opts.keepWeights = true;
    opts.jobs = 1;
    const graph::Csr serial = graph::buildCsr(v, edges, opts);
    for (const unsigned jobs : {2u, 3u, 8u}) {
        opts.jobs = jobs;
        const graph::Csr parallel = graph::buildCsr(v, edges, opts);
        EXPECT_SPAN_EQ(parallel.offsetArray(), serial.offsetArray());
        EXPECT_SPAN_EQ(parallel.neighborArray(),
                       serial.neighborArray());
        EXPECT_SPAN_EQ(parallel.weightArray(), serial.weightArray());
    }
}

TEST(ParallelBuild, StableOrderPreservedWithinVertex)
{
    // Duplicate (src, dst) pairs with distinct weights: the counting
    // sort must keep input order inside each vertex's adjacency run at
    // every job count (this is what "byte-identical" rests on).
    std::vector<graph::CooEdge> edges;
    for (Weight w = 1; w <= 64; ++w)
        edges.push_back({0, static_cast<VertexId>(w % 3), w});
    graph::BuildOptions opts;
    opts.keepWeights = true;
    opts.jobs = 8;
    const graph::Csr g = graph::buildCsr(3, edges, opts);
    ASSERT_EQ(g.numEdges(), 64u);
    // All edges come from vertex 0 in input order.
    for (std::size_t i = 1; i < g.weightArray().size(); ++i)
        EXPECT_LT(g.weightArray()[i - 1], g.weightArray()[i]);
}

TEST(ParallelBuild, DedupeAndSelfLoopOptionsMatchSerial)
{
    const VertexId v = 300;
    auto edges = randomEdges(20000, v, 23);
    for (std::size_t i = 0; i < edges.size(); i += 17)
        edges[i].dst = edges[i].src; // plant self loops
    graph::BuildOptions opts;
    opts.keepWeights = true;
    opts.removeSelfLoops = true;
    opts.removeDuplicates = true;
    opts.jobs = 1;
    const graph::Csr serial = graph::buildCsr(v, edges, opts);
    opts.jobs = 8;
    const graph::Csr parallel = graph::buildCsr(v, edges, opts);
    EXPECT_SPAN_EQ(parallel.offsetArray(), serial.offsetArray());
    EXPECT_SPAN_EQ(parallel.neighborArray(), serial.neighborArray());
    EXPECT_SPAN_EQ(parallel.weightArray(), serial.weightArray());
}

TEST(Generators, ChunkedGenerationIdenticalAcrossJobCounts)
{
    for (const unsigned jobs : {2u, 3u, 8u}) {
        {
            const auto a = graph::rmat(10, 8, 42, {}, true, 1);
            const auto b = graph::rmat(10, 8, 42, {}, true, jobs);
            EXPECT_SPAN_EQ(a.offsetArray(), b.offsetArray());
            EXPECT_SPAN_EQ(a.neighborArray(), b.neighborArray());
            EXPECT_SPAN_EQ(a.weightArray(), b.weightArray());
        }
        {
            const auto a = graph::powerLaw(2000, 30000, 0.6, 7, true, 1);
            const auto b =
                graph::powerLaw(2000, 30000, 0.6, 7, true, jobs);
            EXPECT_SPAN_EQ(a.offsetArray(), b.offsetArray());
            EXPECT_SPAN_EQ(a.neighborArray(), b.neighborArray());
            EXPECT_SPAN_EQ(a.weightArray(), b.weightArray());
        }
        {
            const auto a = graph::uniform(1500, 20000, 9, false, 1);
            const auto b = graph::uniform(1500, 20000, 9, false, jobs);
            EXPECT_SPAN_EQ(a.offsetArray(), b.offsetArray());
            EXPECT_SPAN_EQ(a.neighborArray(), b.neighborArray());
        }
    }
}

// ---------------------------------------------------------------------
// Storage-independent simulation results.
// ---------------------------------------------------------------------

TEST(MappedGraph, ReferenceRunBitIdenticalToHeap)
{
    const ScratchFile file("simident");
    graph::saveBinaryAtomic(sampleGraph(), file.path());
    const graph::Csr heap = graph::loadBinary(file.path());
    const graph::Csr mapped = graph::loadBinaryMapped(file.path());

    for (const auto id :
         {algo::AlgorithmId::Bfs, algo::AlgorithmId::Sssp,
          algo::AlgorithmId::Pr}) {
        const auto algorithm_a = algo::makeAlgorithm(id);
        const auto algorithm_b = algo::makeAlgorithm(id);
        const auto a = algo::runReference(heap, *algorithm_a,
                                          algo::defaultSource(heap));
        const auto b = algo::runReference(mapped, *algorithm_b,
                                          algo::defaultSource(mapped));
        EXPECT_EQ(a.iterations, b.iterations);
        EXPECT_EQ(a.totalEdgesProcessed, b.totalEdgesProcessed);
        ASSERT_EQ(a.properties.size(), b.properties.size());
        EXPECT_EQ(std::memcmp(a.properties.data(), b.properties.data(),
                              a.properties.size() * sizeof(PropValue)),
                  0);
    }
}

TEST(MappedGraph, TransformsKeepMappedTopology)
{
    const ScratchFile file("simxform");
    graph::saveBinaryAtomic(sampleGraph(false), file.path());
    const graph::Csr mapped = graph::loadBinaryMapped(file.path());
    // Weight synthesis must not force a copy of the mapped topology.
    const graph::Csr weighted = mapped.withRandomWeights(3);
    EXPECT_TRUE(weighted.isMapped());
    EXPECT_GT(weighted.heapBytes(), 0u); // weights live on the heap
    EXPECT_SPAN_EQ(weighted.neighborArray(), mapped.neighborArray());
}

// ---------------------------------------------------------------------
// DatasetPool gauges.
// ---------------------------------------------------------------------

TEST(DatasetPool, ReportsMappedAndHeapBytes)
{
    const auto scratch = std::make_shared<ScratchFile>("poolgauge");
    graph::saveBinaryAtomic(sampleGraph(), scratch->path());
    harness::DatasetPool pool(
        [scratch](const std::string &name, bool) -> graph::Csr {
            if (name == "mapped")
                return graph::loadBinaryMapped(scratch->path());
            return graph::loadBinary(scratch->path());
        });
    EXPECT_EQ(pool.mappedBytes(), 0u);
    EXPECT_EQ(pool.heapBytes(), 0u);

    pool.expect("mapped", false);
    pool.expect("heap", false);
    const auto mapped = pool.get("mapped", false);
    const auto heap = pool.get("heap", false);
    EXPECT_EQ(pool.mappedBytes(), mapped->mappedBytes());
    EXPECT_GT(pool.mappedBytes(), 0u);
    EXPECT_EQ(pool.heapBytes(), heap->heapBytes());
    EXPECT_GT(pool.heapBytes(), 0u);

    pool.release("mapped", false);
    EXPECT_EQ(pool.mappedBytes(), 0u);
    EXPECT_GT(pool.heapBytes(), 0u);
    pool.release("heap", false);
    EXPECT_EQ(pool.heapBytes(), 0u);
}

} // namespace
} // namespace gds
