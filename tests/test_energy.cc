/**
 * @file
 * Tests of the power/area/energy model against the paper's synthesis
 * numbers: total 3.38 W / 12.08 mm2, the Fig. 8 breakdown percentages,
 * the Graphicionado relation (GraphDynS = ~68% power / ~57% area), the
 * HBM 7 pJ/bit accounting, the ~92% HBM energy share (Fig. 10), and
 * scaling behaviour across the Fig. 14e UE sweep.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

namespace gds::energy
{
namespace
{

TEST(PowerArea, GdsTotalsMatchPaper)
{
    EnergyModel model;
    const auto b = model.gdsBreakdown(core::GdsConfig{});
    // Paper: 3.38 W and 12.08 mm2.
    EXPECT_NEAR(b.totalPowerW(), 3.38, 3.38 * 0.03);
    EXPECT_NEAR(b.totalAreaMm2(), 12.08, 12.08 * 0.03);
}

TEST(PowerArea, Fig8PowerBreakdown)
{
    EnergyModel model;
    const auto b = model.gdsBreakdown(core::GdsConfig{});
    const double total = b.totalPowerW();
    // Fig. 8: Dispatcher 1%, Processor 59%, Updater 36%, Prefetcher 4%.
    EXPECT_NEAR(b.dispatcher.powerW / total, 0.01, 0.01);
    EXPECT_NEAR(b.processor.powerW / total, 0.59, 0.03);
    EXPECT_NEAR(b.updater.powerW / total, 0.36, 0.03);
    EXPECT_NEAR(b.prefetcher.powerW / total, 0.04, 0.02);
}

TEST(PowerArea, Fig8AreaBreakdown)
{
    EnergyModel model;
    const auto b = model.gdsBreakdown(core::GdsConfig{});
    const double total = b.totalAreaMm2();
    // Fig. 8: Dispatcher ~0%, Processor 8%, Updater 90%, Prefetcher 2%.
    EXPECT_LT(b.dispatcher.areaMm2 / total, 0.01);
    EXPECT_NEAR(b.processor.areaMm2 / total, 0.08, 0.02);
    EXPECT_NEAR(b.updater.areaMm2 / total, 0.90, 0.02);
    EXPECT_NEAR(b.prefetcher.areaMm2 / total, 0.02, 0.01);
}

TEST(PowerArea, GraphicionadoRelationMatchesPaper)
{
    // Paper Sec. 7: GraphDynS power and area are 68% and 57% of
    // Graphicionado's.
    EnergyModel model;
    const auto gds = model.gdsBreakdown(core::GdsConfig{});
    const auto gi =
        model.graphicionadoBreakdown(baseline::GraphicionadoConfig{});
    EXPECT_NEAR(gds.totalPowerW() / gi.totalPowerW(), 0.68, 0.06);
    EXPECT_NEAR(gds.totalAreaMm2() / gi.totalAreaMm2(), 0.57, 0.06);
}

TEST(PowerArea, UpdaterScalesWithUeCount)
{
    EnergyModel model;
    core::GdsConfig half;
    half.numUes = 64;
    core::GdsConfig full;
    const auto b_half = model.gdsBreakdown(half);
    const auto b_full = model.gdsBreakdown(full);
    // UEs scale linearly; the crossbar scales quadratically, so the
    // updater at radix 64 costs less than half of radix 128.
    EXPECT_LT(b_half.updater.areaMm2, 0.55 * b_full.updater.areaMm2);
    EXPECT_GT(b_half.updater.areaMm2, 0.25 * b_full.updater.areaMm2);
    // Other components are unaffected.
    EXPECT_EQ(b_half.processor.powerW, b_full.processor.powerW);
}

TEST(Energy, HbmSevenPicojoulesPerBit)
{
    EnergyModel model;
    // 1 GB = 8e9 bits -> 56 mJ.
    EXPECT_NEAR(model.hbmEnergyJ(1'000'000'000ULL), 0.056, 1e-6);
    EXPECT_EQ(model.hbmEnergyJ(0), 0.0);
}

TEST(Energy, HbmDominatesRunEnergy)
{
    // Fig. 10: ~92% of GraphDynS energy is HBM. A representative run:
    // ~1 GB moved over ~3 ms.
    EnergyModel model;
    const auto e =
        model.gdsEnergy(core::GdsConfig{}, 3'000'000, 1'000'000'000ULL);
    EXPECT_GT(e.hbmShare(), 0.80);
    EXPECT_LT(e.hbmShare(), 0.98);
    // Processor is the largest on-chip consumer.
    EXPECT_GT(e.processorJ, e.updaterJ);
    EXPECT_GT(e.updaterJ, e.dispatcherJ);
}

TEST(Energy, ScalesLinearlyWithTimeAndBytes)
{
    EnergyModel model;
    const auto e1 = model.gdsEnergy(core::GdsConfig{}, 1'000'000,
                                    100'000'000ULL);
    const auto e2 = model.gdsEnergy(core::GdsConfig{}, 2'000'000,
                                    200'000'000ULL);
    EXPECT_NEAR(e2.totalJ(), 2.0 * e1.totalJ(), 1e-9);
    EXPECT_NEAR(e2.hbmJ, 2.0 * e1.hbmJ, 1e-12);
    EXPECT_NEAR(e2.processorJ, 2.0 * e1.processorJ, 1e-12);
}

TEST(Energy, GraphicionadoSpendsMoreForSameWork)
{
    // Same cycles + same traffic: Graphicionado's higher static power
    // (64 MB eDRAM, 128 streams) costs more energy.
    EnergyModel model;
    const auto gds = model.gdsEnergy(core::GdsConfig{}, 1'000'000,
                                     500'000'000ULL);
    const auto gi = model.graphicionadoEnergy(
        baseline::GraphicionadoConfig{}, 1'000'000, 500'000'000ULL);
    EXPECT_LT(gds.totalJ(), gi.totalJ());
}

} // namespace
} // namespace gds::energy
