/**
 * @file
 * Unit tests for the CSR representation, the COO->CSR builder, file I/O
 * and the destination-range slicer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hh"
#include "expect_error.hh"
#include "span_eq.hh"
#include "graph/builder.hh"
#include "graph/csr.hh"
#include "graph/loader.hh"
#include "graph/slicer.hh"

namespace gds::graph
{
namespace
{

/** The example graph from Fig. 1 of the paper (vertices relabelled 0..5):
 *  paper ids {3, 6, 99, 245, 4228, 6838} -> {0, 1, 5, 2, 3, 4}. */
Csr
fig1Graph()
{
    std::vector<CooEdge> edges = {
        {1, 2, 10}, {1, 3, 20}, {1, 4, 30}, // 6 -> 245, 4228, 6838
        {0, 4, 5},                          // 3 -> 6838
        {2, 5, 7},                          // 245 -> 99
        {3, 5, 9},                          // 4228 -> 99
    };
    BuildOptions opts;
    opts.keepWeights = true;
    return buildCsr(6, std::move(edges), opts);
}

TEST(Csr, EmptyGraph)
{
    Csr g;
    EXPECT_EQ(g.numVertices(), 0u);
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_FALSE(g.hasWeights());
}

TEST(Csr, BasicTopology)
{
    const Csr g = fig1Graph();
    EXPECT_EQ(g.numVertices(), 6u);
    EXPECT_EQ(g.numEdges(), 6u);
    EXPECT_TRUE(g.hasWeights());
    EXPECT_EQ(g.outDegree(1), 3u);
    EXPECT_EQ(g.outDegree(5), 0u);
    EXPECT_EQ(g.offsetOf(0), 0u);
    EXPECT_EQ(g.offsetOf(1), 1u);

    const auto nbrs = g.neighborsOf(1);
    ASSERT_EQ(nbrs.size(), 3u);
    EXPECT_EQ(nbrs[0], 2u);
    EXPECT_EQ(nbrs[1], 3u);
    EXPECT_EQ(nbrs[2], 4u);
    const auto ws = g.weightsOf(1);
    EXPECT_EQ(ws[0], 10u);
    EXPECT_EQ(ws[2], 30u);
}

TEST(Csr, DegreeStats)
{
    const Csr g = fig1Graph();
    const DegreeStats ds = g.degreeStats();
    EXPECT_EQ(ds.minDegree, 0u);
    EXPECT_EQ(ds.maxDegree, 3u);
    EXPECT_NEAR(ds.meanDegree, 1.0, 1e-9);
    EXPECT_NEAR(ds.zeroFraction, 2.0 / 6.0, 1e-9);
    EXPECT_NEAR(g.edgeVertexRatio(), 1.0, 1e-9);
}

TEST(Csr, RandomWeightsDeterministicAndInRange)
{
    const Csr g = fig1Graph().withoutWeights();
    EXPECT_FALSE(g.hasWeights());
    const Csr w1 = g.withRandomWeights(9);
    const Csr w2 = g.withRandomWeights(9);
    const Csr w3 = g.withRandomWeights(10);
    ASSERT_TRUE(w1.hasWeights());
    EXPECT_SPAN_EQ(w1.weightArray(), w2.weightArray());
    EXPECT_SPAN_NE(w1.weightArray(), w3.weightArray());
    for (const Weight w : w1.weightArray()) {
        EXPECT_GE(w, 1u);
        EXPECT_LE(w, 255u);
    }
}

TEST(CsrErrors, MalformedOffsetsThrow)
{
    EXPECT_TYPED_ERROR(Csr({0, 2}, {0}), CorruptInputError,
                       "must equal edge count");
    EXPECT_TYPED_ERROR(Csr({1, 1}, {}), CorruptInputError, "start at 0");
    EXPECT_TYPED_ERROR(Csr({0, 2, 1}, {0}), CorruptInputError,
                       "non-decreasing");
}

TEST(CsrErrors, OutOfRangeDestinationThrows)
{
    EXPECT_TYPED_ERROR(Csr({0, 1}, {5}), CorruptInputError, "out of range");
}

TEST(Builder, CountingSortGroupsBySource)
{
    std::vector<CooEdge> edges = {{2, 0}, {0, 1}, {2, 1}, {0, 2}, {1, 0}};
    const Csr g = buildCsr(3, std::move(edges));
    EXPECT_EQ(g.outDegree(0), 2u);
    EXPECT_EQ(g.outDegree(1), 1u);
    EXPECT_EQ(g.outDegree(2), 2u);
    // Stable within a source: (0,1) came before (0,2).
    EXPECT_EQ(g.neighborsOf(0)[0], 1u);
    EXPECT_EQ(g.neighborsOf(0)[1], 2u);
}

TEST(Builder, RemoveSelfLoops)
{
    std::vector<CooEdge> edges = {{0, 0}, {0, 1}, {1, 1}};
    BuildOptions opts;
    opts.removeSelfLoops = true;
    const Csr g = buildCsr(2, std::move(edges), opts);
    EXPECT_EQ(g.numEdges(), 1u);
    EXPECT_EQ(g.neighborsOf(0)[0], 1u);
}

TEST(Builder, RemoveDuplicatesKeepsFirstWeight)
{
    std::vector<CooEdge> edges = {{0, 1, 5}, {0, 1, 9}, {0, 2, 3}};
    BuildOptions opts;
    opts.removeDuplicates = true;
    opts.keepWeights = true;
    const Csr g = buildCsr(3, std::move(edges), opts);
    EXPECT_EQ(g.numEdges(), 2u);
    EXPECT_EQ(g.weightsOf(0)[0], 5u);
}

TEST(BuilderErrors, EndpointOutOfRangeThrows)
{
    std::vector<CooEdge> edges = {{0, 7}};
    EXPECT_TYPED_ERROR(buildCsr(3, std::move(edges)), CorruptInputError,
                       "out of range");
}

TEST(Loader, EdgeListRoundTrip)
{
    const auto path = std::filesystem::temp_directory_path() /
                      "gds_test_edges.txt";
    {
        std::ofstream out(path);
        out << "# comment line\n";
        out << "0 1 10\n";
        out << "1 2 20\n";
        out << "% another comment\n";
        out << "2 0 30\n";
    }
    const Csr g = loadEdgeList(path.string(), 0, true);
    EXPECT_EQ(g.numVertices(), 3u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.weightsOf(0)[0], 10u);
    std::filesystem::remove(path);
}

TEST(Loader, BinaryRoundTripPreservesEverything)
{
    const Csr g = fig1Graph();
    const auto path = std::filesystem::temp_directory_path() /
                      "gds_test_graph.bin";
    saveBinaryAtomic(g, path.string());
    const Csr h = loadBinary(path.string());
    EXPECT_SPAN_EQ(g.offsetArray(), h.offsetArray());
    EXPECT_SPAN_EQ(g.neighborArray(), h.neighborArray());
    EXPECT_SPAN_EQ(g.weightArray(), h.weightArray());
    std::filesystem::remove(path);
}

TEST(Slicer, SingleSliceWhenGraphFits)
{
    const Csr g = fig1Graph();
    const auto slices = sliceByDestination(g, 100);
    ASSERT_EQ(slices.size(), 1u);
    EXPECT_EQ(slices[0].dstBegin, 0u);
    EXPECT_EQ(slices[0].dstEnd, 6u);
    EXPECT_EQ(slices[0].subgraph.numEdges(), g.numEdges());
}

TEST(Slicer, PartitionsEdgesByDestinationRange)
{
    const Csr g = fig1Graph();
    const auto slices = sliceByDestination(g, 3);
    ASSERT_EQ(slices.size(), 2u);
    // Slice 0 holds destinations 0..2, slice 1 holds 3..5.
    EdgeId total = 0;
    for (const auto &s : slices) {
        for (VertexId u = 0; u < s.subgraph.numVertices(); ++u) {
            for (const VertexId dst : s.subgraph.neighborsOf(u)) {
                EXPECT_GE(dst, s.dstBegin);
                EXPECT_LT(dst, s.dstEnd);
            }
        }
        total += s.subgraph.numEdges();
    }
    EXPECT_EQ(total, g.numEdges());
}

TEST(Slicer, PreservesWeights)
{
    const Csr g = fig1Graph();
    const auto slices = sliceByDestination(g, 3);
    // Edge 1->2 (weight 10) lands in slice 0.
    const auto &s0 = slices[0].subgraph;
    ASSERT_EQ(s0.outDegree(1), 1u);
    EXPECT_EQ(s0.neighborsOf(1)[0], 2u);
    EXPECT_EQ(s0.weightsOf(1)[0], 10u);
}

TEST(Slicer, NumSlices)
{
    EXPECT_EQ(numSlices(10, 10), 1u);
    EXPECT_EQ(numSlices(11, 10), 2u);
    EXPECT_EQ(numSlices(0, 10), 1u);
    EXPECT_EQ(numSlices(100, 1), 100u);
}

} // namespace
} // namespace gds::graph
