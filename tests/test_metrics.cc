/**
 * @file
 * Tests for the service-level metrics layer (stats/metrics.hh): the
 * bounded log-scaled Histogram (bucket placement, merge, percentile
 * estimation against the exact tracked max) and the MetricsRegistry
 * (stable counter handles, labeled families, scrape-time gauges, and the
 * Prometheus text exposition rendered as a golden string).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/error.hh"
#include "stats/metrics.hh"
#include "expect_error.hh"

using namespace gds;
using stats::Histogram;
using stats::MetricsRegistry;

namespace
{

TEST(MetricsHistogram, RejectsDegenerateShapes)
{
    EXPECT_TYPED_ERROR(Histogram(0.0, 2.0, 4), ConfigError, "");
    EXPECT_TYPED_ERROR(Histogram(-1.0, 2.0, 4), ConfigError, "");
    EXPECT_TYPED_ERROR(Histogram(1.0, 1.0, 4), ConfigError, "");
    EXPECT_TYPED_ERROR(Histogram(1.0, 2.0, 0), ConfigError, "");
}

TEST(MetricsHistogram, BucketBoundsGrowGeometrically)
{
    const Histogram h(1.0, 2.0, 4);
    EXPECT_EQ(h.upperBounds(), (std::vector<double>{1, 2, 4, 8}));
}

TEST(MetricsHistogram, ObservationsLandInTheRightBuckets)
{
    Histogram h(1.0, 2.0, 4); // bounds 1, 2, 4, 8, +Inf
    h.observe(-3.0);          // clamps into bucket 0
    h.observe(1.0);           // boundary: <= 1 stays in bucket 0
    h.observe(1.5);
    h.observe(3.0);
    h.observe(3.5);
    h.observe(100.0); // overflow
    EXPECT_EQ(h.bucketCounts(),
              (std::vector<std::uint64_t>{2, 1, 2, 0, 1}));
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_DOUBLE_EQ(h.sum(), -3.0 + 1.0 + 1.5 + 3.0 + 3.5 + 100.0);
}

TEST(MetricsHistogram, PercentileReadsBucketBoundsClampedToExactMax)
{
    Histogram h(1.0, 2.0, 4); // bounds 1, 2, 4, 8, +Inf
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0); // empty

    for (const double v : {0.5, 1.5, 3.0, 3.0, 7.0})
        h.observe(v);
    // Ranks are nearest-rank over 5 observations: p50 -> 3rd value,
    // which lives in the (2,4] bucket -> its upper bound.
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 4.0);
    // The top rank would report the (4,8] bound, but the exact tracked
    // maximum (7) is tighter.
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 7.0);
    // Bottom rank: bucket 0's bound already caps the smallest value.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
}

TEST(MetricsHistogram, OverflowPercentileIsTheExactMax)
{
    Histogram h(1.0, 2.0, 2); // bounds 1, 2, +Inf
    h.observe(100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(MetricsHistogram, MergeFoldsCountsAndRequiresIdenticalShape)
{
    Histogram a(1.0, 2.0, 3);
    Histogram b(1.0, 2.0, 3);
    a.observe(0.5);
    b.observe(3.0);
    b.observe(100.0);
    a.merge(b);
    EXPECT_EQ(a.bucketCounts(), (std::vector<std::uint64_t>{1, 0, 1, 1}));
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 103.5);
    EXPECT_DOUBLE_EQ(a.max(), 100.0);

    Histogram narrower(1.0, 2.0, 2);
    EXPECT_TYPED_ERROR(a.merge(narrower), ConfigError, "");
}

TEST(MetricsHistogram, ConcurrentObserversStayConsistent)
{
    Histogram h(1e-3, 2.0, 20);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10'000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&h, t] {
            for (int i = 0; i < kPerThread; ++i)
                h.observe(0.001 * ((t + i) % 1000));
        });
    }
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(h.count(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
    std::uint64_t total = 0;
    for (const std::uint64_t c : h.bucketCounts())
        total += c;
    EXPECT_EQ(total, h.count());
}

TEST(MetricsRegistry, CounterHandlesAreStableAndSharedByName)
{
    MetricsRegistry reg;
    MetricsRegistry::Counter &a = reg.counter("gds_test_total", "Help");
    MetricsRegistry::Counter &b = reg.counter("gds_test_total", "Help");
    EXPECT_EQ(&a, &b);
    a.inc();
    b.inc(2);
    EXPECT_EQ(a.value(), 3u);
}

TEST(MetricsRegistry, MismatchedReregistrationIsATypedError)
{
    MetricsRegistry reg;
    reg.counter("gds_test_total", "Help");
    EXPECT_TYPED_ERROR(reg.counter("gds_test_total", "Other help"),
                       ConfigError, "");
    reg.counter("gds_labeled_total", "Help", "outcome", "ok");
    EXPECT_TYPED_ERROR(
        reg.counter("gds_labeled_total", "Help", "status", "ok"),
        ConfigError, "");
}

TEST(MetricsRegistry, ExposeRendersPrometheusTextExposition)
{
    MetricsRegistry reg;
    reg.counter("jobs_total", "Total jobs").inc(3);
    reg.counter("outcomes_total", "Outcomes", "outcome", "ok").inc(2);
    reg.counter("outcomes_total", "Outcomes", "outcome", "failed").inc();
    reg.gauge("queue_depth", "Depth", [] { return 2.5; });
    Histogram &h =
        reg.histogram("latency_seconds", "Latency", 1.0, 2.0, 3);
    h.observe(0.5);
    h.observe(3.0);
    h.observe(100.0);

    // Families render in registration order, histogram buckets are
    // cumulative and close with +Inf/_sum/_count: golden-testable.
    EXPECT_EQ(reg.expose(),
              "# HELP jobs_total Total jobs\n"
              "# TYPE jobs_total counter\n"
              "jobs_total 3\n"
              "# HELP outcomes_total Outcomes\n"
              "# TYPE outcomes_total counter\n"
              "outcomes_total{outcome=\"ok\"} 2\n"
              "outcomes_total{outcome=\"failed\"} 1\n"
              "# HELP queue_depth Depth\n"
              "# TYPE queue_depth gauge\n"
              "queue_depth 2.5\n"
              "# HELP latency_seconds Latency\n"
              "# TYPE latency_seconds histogram\n"
              "latency_seconds_bucket{le=\"1\"} 1\n"
              "latency_seconds_bucket{le=\"2\"} 1\n"
              "latency_seconds_bucket{le=\"4\"} 2\n"
              "latency_seconds_bucket{le=\"+Inf\"} 3\n"
              "latency_seconds_sum 103.5\n"
              "latency_seconds_count 3\n");
}

} // namespace
