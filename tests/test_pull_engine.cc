/**
 * @file
 * Tests for the pull-mode executor: fixed-point agreement with the push
 * reference for the monotone algorithms across graph families, exact
 * power-iteration behaviour for PR, validator certification, and the
 * structural guarantees of pull mode (every edge scanned each iteration,
 * no conflicts by construction).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algo/pull_engine.hh"
#include "algo/reference_engine.hh"
#include "algo/validate.hh"
#include "common/error.hh"
#include "expect_error.hh"
#include "graph/generators.hh"

namespace gds::algo
{
namespace
{

graph::Csr
testGraph(std::uint64_t seed)
{
    return graph::powerLaw(1000, 8000, 0.6, seed, /*weighted=*/true);
}

TEST(PullEngine, BfsFixedPointMatchesPush)
{
    const auto g = testGraph(31);
    const VertexId source = defaultSource(g);
    auto push_algo = makeAlgorithm(AlgorithmId::Bfs);
    auto pull_algo = makeAlgorithm(AlgorithmId::Bfs);
    const auto push = runReference(g, *push_algo, source);
    const auto pull = runPullReference(g, *pull_algo, source);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(pull.properties[v], push.properties[v]) << v;
}

TEST(PullEngine, SsspFixedPointMatchesPush)
{
    const auto g = testGraph(32);
    const VertexId source = defaultSource(g);
    auto push_algo = makeAlgorithm(AlgorithmId::Sssp);
    auto pull_algo = makeAlgorithm(AlgorithmId::Sssp);
    const auto push = runReference(g, *push_algo, source);
    const auto pull = runPullReference(g, *pull_algo, source);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(pull.properties[v], push.properties[v]) << v;
}

TEST(PullEngine, CcAndSswpFixedPointsMatchPush)
{
    const auto g = testGraph(33);
    for (const AlgorithmId id : {AlgorithmId::Cc, AlgorithmId::Sswp}) {
        const VertexId source =
            id == AlgorithmId::Cc ? 0 : defaultSource(g);
        auto push_algo = makeAlgorithm(id);
        auto pull_algo = makeAlgorithm(id);
        const auto push = runReference(g, *push_algo, source);
        const auto pull = runPullReference(g, *pull_algo, source);
        for (VertexId v = 0; v < g.numVertices(); ++v)
            ASSERT_EQ(pull.properties[v], push.properties[v])
                << algorithmName(id) << " vertex " << v;
    }
}

TEST(PullEngine, PrIsTheDensePowerIteration)
{
    // Pull PR with no activation gating converges to the classical
    // fixed point; the (semi-oracle) validator certifies it tightly.
    const auto g = testGraph(34);
    auto pr = makeAlgorithm(AlgorithmId::Pr);
    const auto pull = runPullReference(g, *pr, 0, 300);
    EXPECT_TRUE(validatePr(g, pull.properties, 0.02).valid);
}

TEST(PullEngine, MonotoneResultsValidate)
{
    const auto g = testGraph(35);
    for (const AlgorithmId id :
         {AlgorithmId::Bfs, AlgorithmId::Sssp, AlgorithmId::Cc,
          AlgorithmId::Sswp}) {
        const VertexId source =
            id == AlgorithmId::Cc ? 0 : defaultSource(g);
        auto a = makeAlgorithm(id);
        const auto pull = runPullReference(g, *a, source);
        EXPECT_TRUE(validate(id, g, source, pull.properties).valid)
            << algorithmName(id);
    }
}

TEST(PullEngine, ScansAllEdgesEveryIteration)
{
    const auto g = testGraph(36);
    auto bfs = makeAlgorithm(AlgorithmId::Bfs);
    const auto pull = runPullReference(g, *bfs, defaultSource(g));
    EXPECT_EQ(pull.edgesScanned,
              static_cast<std::uint64_t>(g.numEdges()) * pull.iterations);
}

TEST(PullEngine, PullNeedsAtLeastAsManyIterationSweeps)
{
    // Jacobi-style pull can take more iterations than push (which reads
    // same-iteration updates within Scatter), never fewer.
    const auto g = testGraph(37);
    const VertexId source = defaultSource(g);
    auto push_algo = makeAlgorithm(AlgorithmId::Bfs);
    auto pull_algo = makeAlgorithm(AlgorithmId::Bfs);
    const auto push = runReference(g, *push_algo, source);
    const auto pull = runPullReference(g, *pull_algo, source);
    EXPECT_GE(pull.iterations + 1, push.iterations);
}

TEST(PullEngine, GridGraphAgreement)
{
    const auto g = graph::grid2d(30, 30, 38, true);
    auto push_algo = makeAlgorithm(AlgorithmId::Sswp);
    auto pull_algo = makeAlgorithm(AlgorithmId::Sswp);
    const auto push = runReference(g, *push_algo, 0);
    const auto pull = runPullReference(g, *pull_algo, 0, 3000);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(pull.properties[v], push.properties[v]);
}

TEST(PullEngineDeath, InvalidInputs)
{
    const auto g = graph::uniform(10, 50, 1, false);
    auto sssp = makeAlgorithm(AlgorithmId::Sssp);
    EXPECT_TYPED_ERROR((void)runPullReference(g, *sssp, 0), ConfigError,
                       "weighted");
    auto bfs = makeAlgorithm(AlgorithmId::Bfs);
    EXPECT_TYPED_ERROR((void)runPullReference(g, *bfs, 10), ConfigError,
                       "out of range");
}

} // namespace
} // namespace gds::algo
