/**
 * @file
 * Robustness sweeps over the GraphDynS configuration space: extreme
 * queue depths, buffer budgets, batch sizes, SIMT widths and fabric
 * sizes must never deadlock or change functional results -- they may
 * only change timing. This is the failure-injection net for the
 * backpressure and flow-control logic.
 */

#include <gtest/gtest.h>

#include "algo/reference_engine.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"

namespace gds::core
{
namespace
{

graph::Csr
sweepGraph()
{
    static const graph::Csr g =
        graph::powerLaw(1200, 9600, 0.65, 99, /*weighted=*/true);
    return g;
}

void
expectSsspCorrect(const GdsConfig &cfg)
{
    const graph::Csr g = sweepGraph();
    const VertexId source = algo::defaultSource(g);

    auto ref_algo = algo::makeAlgorithm(algo::AlgorithmId::Sssp);
    const auto golden = algo::runReference(g, *ref_algo, source);

    auto sim_algo = algo::makeAlgorithm(algo::AlgorithmId::Sssp);
    GdsAccel accel(cfg, g, *sim_algo);
    RunOptions run;
    run.source = source;
    const RunResult result = accel.run(run);

    ASSERT_EQ(result.iterations, golden.iterations);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(result.properties[v], golden.properties[v]);
}

TEST(ConfigSweep, TinyPeQueues)
{
    GdsConfig cfg;
    // The queue must cover the largest whole-list dispatch, so shrink
    // the split threshold along with it.
    cfg.peQueueEdges = 16;
    cfg.eThreshold = 16;
    cfg.eListSize = 8;
    expectSsspCorrect(cfg);
}

TEST(ConfigSweep, QueueSmallerThanDispatchUnitIsRejected)
{
    GdsConfig cfg;
    cfg.peQueueEdges = 16; // < eThreshold (128): a latent deadlock
    const graph::Csr g = sweepGraph();
    auto sssp = algo::makeAlgorithm(algo::AlgorithmId::Sssp);
    EXPECT_THROW(GdsAccel(cfg, g, *sssp), ConfigError);
}

TEST(ConfigSweep, TinyVpb)
{
    GdsConfig cfg;
    cfg.vpbRecords = 2;
    expectSsspCorrect(cfg);
}

TEST(ConfigSweep, TinyEprefBudget)
{
    GdsConfig cfg;
    cfg.eprefBufferEdges = 64; // hubs exceed this: solo-oversize path
    expectSsspCorrect(cfg);
}

TEST(ConfigSweep, SingleEntryUeInboxes)
{
    GdsConfig cfg;
    cfg.ueQueueDepth = 1;
    expectSsspCorrect(cfg);
}

TEST(ConfigSweep, SingleRecordVprefBatches)
{
    GdsConfig cfg;
    cfg.vprefBatch = 1;
    cfg.vprefMaxInflight = 4;
    expectSsspCorrect(cfg);
}

TEST(ConfigSweep, UnbatchedAuStores)
{
    GdsConfig cfg;
    cfg.auBatchRecords = 1;
    expectSsspCorrect(cfg);
}

TEST(ConfigSweep, TinyApplyWindow)
{
    GdsConfig cfg;
    cfg.applyMaxInflightGroups = 1;
    cfg.applyListQueue = 2;
    expectSsspCorrect(cfg);
}

TEST(ConfigSweep, LowSplitThreshold)
{
    GdsConfig cfg;
    cfg.eThreshold = 4; // nearly every list splits
    cfg.eListSize = 4;
    expectSsspCorrect(cfg);
}

TEST(ConfigSweep, MinimalEverything)
{
    GdsConfig cfg;
    cfg.peQueueEdges = 16;
    cfg.eThreshold = 16;
    cfg.eListSize = 8;
    cfg.vpbRecords = 2;
    cfg.eprefBufferEdges = 64;
    cfg.ueQueueDepth = 1;
    cfg.vprefBatch = 1;
    cfg.vprefMaxInflight = 2;
    cfg.eprefMaxInflight = 2;
    cfg.auBatchRecords = 1;
    cfg.applyMaxInflightGroups = 1;
    cfg.applyListQueue = 1;
    expectSsspCorrect(cfg);
}

/** Fabric-shape sweep: (numPes, nSimt, numUes). */
class FabricSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned,
                                                 unsigned>>
{};

TEST_P(FabricSweep, FunctionalAcrossFabricShapes)
{
    const auto [pes, simt, ues] = GetParam();
    GdsConfig cfg;
    cfg.numPes = pes;
    cfg.numDispatchers = pes;
    cfg.nSimt = simt;
    cfg.numUes = ues;
    expectSsspCorrect(cfg);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FabricSweep,
    ::testing::Values(std::make_tuple(8u, 8u, 64u),
                      std::make_tuple(8u, 4u, 32u),
                      std::make_tuple(16u, 16u, 128u),
                      std::make_tuple(32u, 8u, 128u),
                      std::make_tuple(4u, 2u, 16u)));

/** Tight configs must be slower, never wrong: check timing monotonicity
 *  of one representative pairing. */
TEST(ConfigSweep, TightConfigIsSlowerNotWrong)
{
    const graph::Csr g = sweepGraph();
    auto a1 = algo::makeAlgorithm(algo::AlgorithmId::Sssp);
    auto a2 = algo::makeAlgorithm(algo::AlgorithmId::Sssp);
    GdsConfig roomy;
    GdsConfig tight;
    tight.vprefMaxInflight = 2;
    tight.eprefMaxInflight = 2;
    tight.ueQueueDepth = 1;
    GdsAccel fast(roomy, g, *a1);
    GdsAccel slow(tight, g, *a2);
    RunOptions run;
    run.source = algo::defaultSource(g);
    const auto r_fast = fast.run(run);
    const auto r_slow = slow.run(run);
    EXPECT_LE(r_fast.cycles, r_slow.cycles);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(r_fast.properties[v], r_slow.properties[v]);
}

} // namespace
} // namespace gds::core
