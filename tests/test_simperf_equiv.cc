/**
 * @file
 * Fast-forward equivalence suite: the idle-cycle skipping engine must be
 * invisible in every observable artifact. Each test runs the same workload
 * twice — RunOptions::fastForward on and off — and requires byte-identical
 * cycle counts, iteration counts, computed properties, end-of-run stats
 * JSON, sampler CSV and trace JSON, on both accelerator models, with and
 * without telemetry attached, and under an active fault injector. Also
 * holds the non-power-of-two sampler-interval regression for the countdown
 * boundary cache.
 */

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>

#include "algo/vcpm.hh"
#include "baseline/graphicionado.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "sim/fault.hh"
#include "stats/json.hh"

namespace gds
{
namespace
{

using algo::AlgorithmId;

/** Everything observable about one run, captured for comparison. */
struct Artifacts
{
    core::RunResult result;
    std::string statsJson;
    std::string samplerCsv;
    std::string traceJson;
};

/** Knobs of one equivalence cell (everything except fastForward). */
struct Cell
{
    AlgorithmId algorithm = AlgorithmId::Bfs;
    bool telemetry = false;
    sim::FaultPlan faults;
    Cycle samplerInterval = 100;
    /** PR cells cap iterations: equivalence needs cycles, not convergence. */
    unsigned maxIterations = 1000;
};

template <typename Accel, typename Config>
Artifacts
runOnce(const Cell &cell, bool fast_forward)
{
    const graph::Csr g = graph::rmat(8, 16, 42, {}, false);
    Config cfg;
    cfg.maxIterations = cell.maxIterations;
    auto algorithm = algo::makeAlgorithm(cell.algorithm);
    Accel accel(cfg, g, *algorithm);

    core::RunOptions run;
    run.source = 0;
    run.fastForward = fast_forward;
    run.faults = cell.faults;
    obs::Tracer tracer;
    obs::Sampler sampler;
    std::optional<obs::ScopedActiveTracer> scope;
    if (cell.telemetry) {
        sampler.setInterval(cell.samplerInterval);
        run.sampler = &sampler;
        run.traceCounterInterval = cell.samplerInterval;
        scope.emplace(&tracer);
    }

    Artifacts a;
    a.result = accel.run(run);
    std::ostringstream stats_os;
    stats::dumpJson(accel.statsGroup(), stats_os);
    a.statsJson = stats_os.str();
    if (cell.telemetry) {
        std::ostringstream csv_os;
        sampler.writeCsv(csv_os);
        a.samplerCsv = csv_os.str();
        std::ostringstream trace_os;
        tracer.write(trace_os);
        a.traceJson = trace_os.str();
    }
    return a;
}

/** Run the cell naive and fast-forwarded; every artifact must match. */
template <typename Accel, typename Config>
void
expectEquivalent(const Cell &cell)
{
    const Artifacts naive = runOnce<Accel, Config>(cell, false);
    const Artifacts fast = runOnce<Accel, Config>(cell, true);

    EXPECT_EQ(naive.result.report.outcome, fast.result.report.outcome);
    EXPECT_EQ(naive.result.report.cycles, fast.result.report.cycles);
    EXPECT_EQ(naive.result.report.lastProgressCycle,
              fast.result.report.lastProgressCycle);
    EXPECT_EQ(naive.result.cycles, fast.result.cycles);
    EXPECT_EQ(naive.result.iterations, fast.result.iterations);
    EXPECT_EQ(naive.result.edgesProcessed, fast.result.edgesProcessed);
    EXPECT_EQ(naive.result.vertexUpdates, fast.result.vertexUpdates);
    EXPECT_EQ(naive.result.memoryBytes, fast.result.memoryBytes);
    EXPECT_EQ(naive.result.schedulingOps, fast.result.schedulingOps);
    EXPECT_EQ(naive.result.atomicStalls, fast.result.atomicStalls);
    EXPECT_EQ(naive.result.properties, fast.result.properties);
    EXPECT_EQ(naive.statsJson, fast.statsJson);
    EXPECT_EQ(naive.samplerCsv, fast.samplerCsv);
    EXPECT_EQ(naive.traceJson, fast.traceJson);
    // A no-op equivalence (nothing ran) would pass vacuously; rule it out.
    EXPECT_TRUE(fast.result.completed());
    EXPECT_GT(fast.result.cycles, 0u);
}

// --- GraphDynS -----------------------------------------------------------

TEST(FastForwardEquiv, GdsBfsPlain)
{
    Cell cell;
    expectEquivalent<core::GdsAccel, core::GdsConfig>(cell);
}

TEST(FastForwardEquiv, GdsBfsTelemetry)
{
    Cell cell;
    cell.telemetry = true;
    expectEquivalent<core::GdsAccel, core::GdsConfig>(cell);
}

TEST(FastForwardEquiv, GdsPageRankTelemetry)
{
    Cell cell;
    cell.algorithm = AlgorithmId::Pr;
    cell.telemetry = true;
    cell.maxIterations = 20;
    expectEquivalent<core::GdsAccel, core::GdsConfig>(cell);
}

TEST(FastForwardEquiv, GdsBfsFaulted)
{
    // Delayed and rejected HBM responses draw from the injector's RNG, so
    // equivalence additionally proves the skip never swallows a cycle in
    // which a faultable decision would have been drawn.
    Cell cell;
    cell.faults.delayResponseProb = 0.05;
    cell.faults.delayCycles = 200;
    cell.faults.rejectRequestProb = 0.02;
    expectEquivalent<core::GdsAccel, core::GdsConfig>(cell);
}

TEST(FastForwardEquiv, GdsBfsFaultedTelemetry)
{
    Cell cell;
    cell.telemetry = true;
    cell.faults.delayResponseProb = 0.05;
    cell.faults.delayCycles = 200;
    expectEquivalent<core::GdsAccel, core::GdsConfig>(cell);
}

// --- Graphicionado baseline ----------------------------------------------

TEST(FastForwardEquiv, GraphicionadoBfsPlain)
{
    Cell cell;
    expectEquivalent<baseline::GraphicionadoAccel,
                     baseline::GraphicionadoConfig>(cell);
}

TEST(FastForwardEquiv, GraphicionadoBfsTelemetry)
{
    Cell cell;
    cell.telemetry = true;
    expectEquivalent<baseline::GraphicionadoAccel,
                     baseline::GraphicionadoConfig>(cell);
}

TEST(FastForwardEquiv, GraphicionadoPageRankPlain)
{
    Cell cell;
    cell.algorithm = AlgorithmId::Pr;
    cell.maxIterations = 20;
    expectEquivalent<baseline::GraphicionadoAccel,
                     baseline::GraphicionadoConfig>(cell);
}

TEST(FastForwardEquiv, GraphicionadoBfsFaulted)
{
    Cell cell;
    cell.faults.delayResponseProb = 0.05;
    cell.faults.delayCycles = 200;
    expectEquivalent<baseline::GraphicionadoAccel,
                     baseline::GraphicionadoConfig>(cell);
}

// --- Sampler boundary regression -----------------------------------------

TEST(SamplerBoundary, NonPowerOfTwoIntervalSamplesEveryBoundary)
{
    // The cached next-boundary fast path must not skip or duplicate
    // samples for intervals that do not divide anything convenient.
    obs::Sampler s;
    s.setInterval(37);
    Cycle probe_cycle = 0;
    s.add("cycle", [&] { return static_cast<double>(probe_cycle); });
    for (Cycle c = 0; c < 500; ++c) {
        probe_cycle = c;
        s.tick(c);
    }
    ASSERT_EQ(s.sampleCount(), 14u); // 0, 37, ..., 481
    for (std::size_t i = 0; i < s.sampleCount(); ++i) {
        EXPECT_EQ(s.series().cycleAt(i), i * 37);
        EXPECT_DOUBLE_EQ(s.series().value(i, 0),
                         static_cast<double>(i * 37));
    }
}

TEST(SamplerBoundary, CyclesUntilNextSampleIsConsistentWithTick)
{
    obs::Sampler s;
    s.setInterval(37);
    for (Cycle c = 0; c < 200; ++c) {
        const Cycle d = s.cyclesUntilNextSample(c);
        EXPECT_EQ(d, c % 37 == 0 ? 0u : 37u - c % 37);
    }
    obs::Sampler off;
    EXPECT_EQ(off.cyclesUntilNextSample(123), ~Cycle{0});
}

TEST(SamplerBoundary, ClockJumpAcrossBoundariesStillSamples)
{
    // The fast-forward engine clamps skips at boundaries, but the sampler
    // itself must also survive a caller whose clock jumps (rewind, restart
    // with a reused sampler object after setInterval).
    obs::Sampler s;
    s.setInterval(10);
    s.add("one", [] { return 1.0; });
    s.tick(0);
    s.tick(30); // jumped a boundary: the divide path must re-arm correctly
    s.tick(31);
    s.tick(40);
    ASSERT_EQ(s.sampleCount(), 3u);
    EXPECT_EQ(s.series().cycleAt(1), 30u);
    EXPECT_EQ(s.series().cycleAt(2), 40u);
}

TEST(FastForwardEquiv, NonPowerOfTwoSamplerIntervalEndToEnd)
{
    // Interval 37 never aligns with phase boundaries; the skip clamp must
    // still land a real tick on every multiple of 37.
    Cell cell;
    cell.telemetry = true;
    cell.samplerInterval = 37;
    expectEquivalent<core::GdsAccel, core::GdsConfig>(cell);
}

} // namespace
} // namespace gds
