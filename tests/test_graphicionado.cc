/**
 * @file
 * End-to-end tests of the Graphicionado baseline model: functional
 * equivalence with the reference engine, the behaviours the GraphDynS
 * paper attributes to it (hash-placement imbalance, atomic stalls, full
 * Apply sweep, src_vid storage overhead), and cross-model comparisons
 * against GraphDynS (speedup/traffic/footprint directions of Figs. 6-12).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "algo/reference_engine.hh"
#include "baseline/graphicionado.hh"
#include "core/gds_accel.hh"
#include "graph/generators.hh"

namespace gds::baseline
{
namespace
{

using algo::AlgorithmId;

graph::Csr
testGraph(VertexId v_count, EdgeId e_count, std::uint64_t seed)
{
    return graph::powerLaw(v_count, e_count, 0.6, seed, /*weighted=*/true);
}

void
expectMatchesReference(const GraphicionadoConfig &cfg, const graph::Csr &g,
                       AlgorithmId id, VertexId source)
{
    auto algo_ref = algo::makeAlgorithm(id);
    algo::ReferenceOptions ref_opts;
    ref_opts.maxIterations = cfg.maxIterations;
    const auto golden = algo::runReference(g, *algo_ref, source, ref_opts);

    auto algo_sim = algo::makeAlgorithm(id);
    GraphicionadoAccel accel(cfg, g, *algo_sim);
    core::RunOptions run;
    run.source = source;
    const core::RunResult result = accel.run(run);

    ASSERT_EQ(result.properties.size(), golden.properties.size());
    if (id == AlgorithmId::Pr) {
        // See test_gds_accel.cc: activation-gated PR is order-dependent.
        double err_sum = 0.0;
        for (VertexId v = 0; v < g.numVertices(); ++v) {
            const double want = golden.properties[v];
            err_sum += std::fabs(result.properties[v] - want) /
                       std::max(std::fabs(want), 1e-12);
        }
        EXPECT_LT(err_sum / g.numVertices(), 0.02);
        return;
    }
    EXPECT_EQ(result.iterations, golden.iterations);
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        EXPECT_EQ(result.properties[v], golden.properties[v])
            << algo_ref->name() << " vertex " << v;
    }
    EXPECT_EQ(result.edgesProcessed, golden.totalEdgesProcessed);
}

TEST(Graphicionado, BfsMatchesReference)
{
    const auto g = testGraph(2000, 16000, 81);
    expectMatchesReference(GraphicionadoConfig{}, g, AlgorithmId::Bfs,
                           algo::defaultSource(g));
}

TEST(Graphicionado, SsspMatchesReference)
{
    const auto g = testGraph(2000, 16000, 82);
    expectMatchesReference(GraphicionadoConfig{}, g, AlgorithmId::Sssp,
                           algo::defaultSource(g));
}

TEST(Graphicionado, CcMatchesReference)
{
    const auto g = testGraph(1500, 12000, 83);
    expectMatchesReference(GraphicionadoConfig{}, g, AlgorithmId::Cc, 0);
}

TEST(Graphicionado, SswpMatchesReference)
{
    const auto g = testGraph(1500, 12000, 84);
    expectMatchesReference(GraphicionadoConfig{}, g, AlgorithmId::Sswp,
                           algo::defaultSource(g));
}

TEST(Graphicionado, PrMatchesReference)
{
    GraphicionadoConfig cfg;
    cfg.maxIterations = 8;
    const auto g = testGraph(1000, 8000, 85);
    expectMatchesReference(cfg, g, AlgorithmId::Pr, 0);
}

TEST(Graphicionado, AtomicStallsOccurOnSkewedGraphs)
{
    GraphicionadoConfig cfg;
    cfg.maxIterations = 5;
    const auto g = testGraph(2000, 32000, 86);
    auto pr = algo::makeAlgorithm(AlgorithmId::Pr);
    GraphicionadoAccel accel(cfg, g, *pr);
    const auto r = accel.run();
    EXPECT_GT(r.atomicStalls, 0u);
}

TEST(Graphicionado, NeverSkipsUpdates)
{
    const auto g = testGraph(2000, 16000, 87);
    auto bfs = algo::makeAlgorithm(AlgorithmId::Bfs);
    GraphicionadoAccel accel(GraphicionadoConfig{}, g, *bfs);
    core::RunOptions run;
    run.source = algo::defaultSource(g);
    const auto r = accel.run(run);
    EXPECT_EQ(r.updatesSkipped, 0u);
    // Full sweep: applyOps == V per iteration.
    EXPECT_EQ(accel.statsGroup().scalar("applyOps").value(),
              static_cast<double>(g.numVertices()) * r.iterations);
}

TEST(Graphicionado, HashPlacementIsImbalanced)
{
    GraphicionadoConfig cfg;
    cfg.maxIterations = 2;
    const auto g = testGraph(4000, 64000, 88);
    auto pr = algo::makeAlgorithm(AlgorithmId::Pr);
    GraphicionadoAccel accel(cfg, g, *pr);
    core::RunOptions run;
    run.collectPeLoads = true;
    const auto r = accel.run(run);
    // On a power-law graph the hub's stream carries far more than the
    // mean (Sec. 3.2: "only half of the pipelines experiencing
    // workloads").
    const auto &loads = r.peLoads.front();
    double mean = 0;
    for (const auto l : loads)
        mean += static_cast<double>(l);
    mean /= loads.size();
    double max_load = 0;
    for (const auto l : loads)
        max_load = std::max(max_load, static_cast<double>(l));
    EXPECT_GT(max_load, 2.0 * mean);
}

TEST(Graphicionado, FootprintLargerThanGraphDynS)
{
    const auto g = testGraph(2000, 16000, 89);
    auto bfs_a = algo::makeAlgorithm(AlgorithmId::Bfs);
    auto bfs_b = algo::makeAlgorithm(AlgorithmId::Bfs);
    GraphicionadoAccel graphicionado(GraphicionadoConfig{}, g, *bfs_a);
    core::GdsAccel gds(core::GdsConfig{}, g, *bfs_b);
    // src_vid-tagged edges roughly double unweighted edge storage.
    EXPECT_GT(graphicionado.footprintBytes(), gds.footprintBytes());
}

TEST(Graphicionado, SlicingPreservesResults)
{
    GraphicionadoConfig cfg;
    cfg.onChipBytes = 1024 * bytesPerWord; // 1024-vertex slices
    const auto g = testGraph(3000, 24000, 90);
    auto sssp = algo::makeAlgorithm(AlgorithmId::Sssp);
    GraphicionadoAccel accel(cfg, g, *sssp);
    EXPECT_EQ(accel.numSlices(), 3u);
    expectMatchesReference(cfg, g, AlgorithmId::Sssp,
                           algo::defaultSource(g));
}

TEST(Graphicionado, GraphDynSIsFasterOnPr)
{
    // The headline comparison (Fig. 6 direction): GraphDynS beats
    // Graphicionado on the same memory system.
    const auto g = testGraph(20000, 320000, 91);
    auto pr_a = algo::makeAlgorithm(AlgorithmId::Pr);
    auto pr_b = algo::makeAlgorithm(AlgorithmId::Pr);
    GraphicionadoConfig gi_cfg;
    gi_cfg.maxIterations = 5;
    core::GdsConfig gds_cfg;
    gds_cfg.maxIterations = 5;
    GraphicionadoAccel graphicionado(gi_cfg, g, *pr_a);
    core::GdsAccel gds(gds_cfg, g, *pr_b);
    const auto r_gi = graphicionado.run();
    const auto r_gds = gds.run();
    EXPECT_LT(r_gds.cycles, r_gi.cycles);
    // Fig. 12 direction: GraphDynS moves fewer bytes (no src_vid, no
    // sentinel reads, selective updates).
    EXPECT_LT(r_gds.memoryBytes, r_gi.memoryBytes);
}

/** All algorithms x graph families produce reference results. */
class GraphicionadoSweep
    : public ::testing::TestWithParam<std::tuple<AlgorithmId, unsigned>>
{};

TEST_P(GraphicionadoSweep, MatchesReference)
{
    const auto [id, family] = GetParam();
    GraphicionadoConfig cfg;
    cfg.maxIterations = id == AlgorithmId::Pr ? 8 : 25;
    graph::Csr g = family == 0 ? testGraph(1200, 9600, 92)
                   : family == 1
                       ? graph::uniform(1200, 9600, 93, true)
                       : graph::rmat(10, 8, 94, {}, true);
    expectMatchesReference(cfg, g, id, algo::defaultSource(g));
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithmsAllFamilies, GraphicionadoSweep,
    ::testing::Combine(::testing::Values(AlgorithmId::Bfs,
                                         AlgorithmId::Sssp, AlgorithmId::Cc,
                                         AlgorithmId::Sswp,
                                         AlgorithmId::Pr),
                       ::testing::Values(0u, 1u, 2u)));

} // namespace
} // namespace gds::baseline
