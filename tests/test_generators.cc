/**
 * @file
 * Tests for the synthetic graph generators: determinism, size contracts,
 * degree-skew properties (power law vs uniform), and grid structure.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/error.hh"
#include "expect_error.hh"
#include "span_eq.hh"
#include "graph/generators.hh"

namespace gds::graph
{
namespace
{

TEST(Rmat, SizeContract)
{
    const Csr g = rmat(10, 8, 1);
    EXPECT_EQ(g.numVertices(), 1024u);
    EXPECT_EQ(g.numEdges(), 8192u);
    EXPECT_FALSE(g.hasWeights());
}

TEST(Rmat, DeterministicForSeed)
{
    const Csr a = rmat(8, 8, 42);
    const Csr b = rmat(8, 8, 42);
    const Csr c = rmat(8, 8, 43);
    EXPECT_SPAN_EQ(a.neighborArray(), b.neighborArray());
    EXPECT_SPAN_NE(a.neighborArray(), c.neighborArray());
}

TEST(Rmat, WeightedVariantHasWeightsInRange)
{
    const Csr g = rmat(8, 4, 7, {}, true);
    ASSERT_TRUE(g.hasWeights());
    for (const Weight w : g.weightArray()) {
        EXPECT_GE(w, 1u);
        EXPECT_LE(w, 255u);
    }
}

TEST(Rmat, SkewedDegreeDistribution)
{
    const Csr g = rmat(12, 16, 5);
    const DegreeStats ds = g.degreeStats();
    // RMAT hubs: max degree far above the mean.
    EXPECT_GT(ds.maxDegree, static_cast<std::uint64_t>(8 * ds.meanDegree));
}

TEST(PowerLaw, SizeContract)
{
    const Csr g = powerLaw(5000, 40000, 0.6, 3);
    EXPECT_EQ(g.numVertices(), 5000u);
    EXPECT_EQ(g.numEdges(), 40000u);
}

TEST(PowerLaw, DeterministicForSeed)
{
    const Csr a = powerLaw(1000, 8000, 0.6, 11);
    const Csr b = powerLaw(1000, 8000, 0.6, 11);
    EXPECT_SPAN_EQ(a.neighborArray(), b.neighborArray());
}

TEST(PowerLaw, MoreSkewedThanUniform)
{
    const Csr pl = powerLaw(10000, 160000, 0.6, 1);
    const Csr un = uniform(10000, 160000, 1);
    EXPECT_GT(pl.degreeStats().maxDegree, 2 * un.degreeStats().maxDegree);
}

TEST(PowerLaw, HigherAlphaMeansHeavierTail)
{
    const Csr light = powerLaw(10000, 160000, 0.4, 1);
    const Csr heavy = powerLaw(10000, 160000, 0.8, 1);
    EXPECT_GT(heavy.degreeStats().maxDegree,
              light.degreeStats().maxDegree);
}

TEST(Uniform, SizeAndLowSkew)
{
    const Csr g = uniform(4096, 65536, 9);
    EXPECT_EQ(g.numVertices(), 4096u);
    EXPECT_EQ(g.numEdges(), 65536u);
    // Poisson(16): max degree stays within a small factor of the mean.
    EXPECT_LT(g.degreeStats().maxDegree, 64u);
}

TEST(Grid2d, StructureAndDegrees)
{
    const Csr g = grid2d(5, 4, 1);
    EXPECT_EQ(g.numVertices(), 20u);
    // Bidirectional 4-neighbour mesh: 2*(w-1)*h + 2*w*(h-1) edges.
    EXPECT_EQ(g.numEdges(), 2u * 4 * 4 + 2u * 5 * 3);
    const DegreeStats ds = g.degreeStats();
    EXPECT_EQ(ds.minDegree, 2u); // corners
    EXPECT_EQ(ds.maxDegree, 4u); // interior
}

TEST(BarabasiAlbert, SizeAndConnectivity)
{
    const Csr g = barabasiAlbert(2000, 4, 3);
    EXPECT_EQ(g.numVertices(), 2000u);
    // Each non-seed vertex adds up to 4 undirected (=8 directed) edges,
    // minus duplicates.
    EXPECT_GT(g.numEdges(), 2000u * 4);
    EXPECT_LE(g.numEdges(), 2000u * 8);
    // Preferential attachment keeps everything in one component.
    const DegreeStats ds = g.degreeStats();
    EXPECT_GE(ds.minDegree, 1u);
}

TEST(BarabasiAlbert, HeavyTailedDegrees)
{
    const Csr g = barabasiAlbert(5000, 4, 5);
    const DegreeStats ds = g.degreeStats();
    EXPECT_GT(ds.maxDegree, static_cast<std::uint64_t>(8 * ds.meanDegree));
}

TEST(BarabasiAlbert, Deterministic)
{
    const Csr a = barabasiAlbert(1000, 3, 7);
    const Csr b = barabasiAlbert(1000, 3, 7);
    EXPECT_SPAN_EQ(a.neighborArray(), b.neighborArray());
}

TEST(BarabasiAlbertErrors, BadParameters)
{
    EXPECT_TYPED_ERROR((void)barabasiAlbert(3, 4, 1), ConfigError,
                       "more vertices");
    EXPECT_TYPED_ERROR((void)barabasiAlbert(10, 0, 1), ConfigError,
                       "at least one");
}

TEST(WattsStrogatz, RingWithoutRewiring)
{
    const Csr g = wattsStrogatz(100, 4, 0.0, 1);
    EXPECT_EQ(g.numVertices(), 100u);
    // Pure ring lattice: every vertex has exactly degree 4.
    const DegreeStats ds = g.degreeStats();
    EXPECT_EQ(ds.minDegree, 4u);
    EXPECT_EQ(ds.maxDegree, 4u);
}

TEST(WattsStrogatz, RewiringKeepsNearUniformDegrees)
{
    const Csr g = wattsStrogatz(2000, 8, 0.2, 3);
    const DegreeStats ds = g.degreeStats();
    // Small-world rewiring perturbs degrees only slightly.
    EXPECT_LT(ds.maxDegree, 3 * 8u);
    EXPECT_GE(ds.minDegree, 4u);
}

TEST(WattsStrogatz, SymmetricEdges)
{
    const Csr g = wattsStrogatz(200, 4, 0.3, 5);
    for (VertexId u = 0; u < g.numVertices(); ++u) {
        for (const VertexId v : g.neighborsOf(u)) {
            const auto back = g.neighborsOf(v);
            ASSERT_NE(std::find(back.begin(), back.end(), u), back.end());
        }
    }
}

TEST(WattsStrogatzErrors, BadParameters)
{
    EXPECT_TYPED_ERROR((void)wattsStrogatz(100, 3, 0.1, 1), ConfigError,
                       "even");
    EXPECT_TYPED_ERROR((void)wattsStrogatz(100, 4, 1.5, 1), ConfigError,
                       "probability");
}

/** Degree-preservation sweep across generator families. */
class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(GeneratorSweep, RmatEdgeCountScalesWithParams)
{
    const auto [scale, edge_factor] = GetParam();
    const Csr g = rmat(scale, edge_factor, 77);
    EXPECT_EQ(g.numVertices(), 1ULL << scale);
    EXPECT_EQ(g.numEdges(),
              (1ULL << scale) * static_cast<EdgeId>(edge_factor));
    // All destinations in range is enforced by Csr's constructor; reaching
    // here means the generator produced a structurally valid graph.
}

INSTANTIATE_TEST_SUITE_P(
    ScalesAndFactors, GeneratorSweep,
    ::testing::Combine(::testing::Values(6u, 8u, 10u, 12u),
                       ::testing::Values(4u, 8u, 16u)));

} // namespace
} // namespace gds::graph
