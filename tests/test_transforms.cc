/**
 * @file
 * Tests for graph transformations: transpose (involution, degree
 * exchange), symmetrization, degree-sorted reordering (and its
 * algorithm-invariance), permutation application, and structural
 * queries.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "algo/reference_engine.hh"
#include "common/error.hh"
#include "expect_error.hh"
#include "span_eq.hh"
#include "graph/builder.hh"
#include "graph/generators.hh"
#include "graph/transforms.hh"

namespace gds::graph
{
namespace
{

Csr
smallGraph()
{
    std::vector<CooEdge> edges = {{0, 1, 5}, {0, 2, 7}, {1, 2, 3},
                                  {3, 0, 2}};
    BuildOptions opts;
    opts.keepWeights = true;
    return buildCsr(4, std::move(edges), opts);
}

TEST(Transpose, ReversesEdges)
{
    const Csr g = smallGraph();
    const Csr t = transpose(g);
    EXPECT_EQ(t.numEdges(), g.numEdges());
    // 0->1 becomes 1->0 etc.
    EXPECT_EQ(t.outDegree(0), 1u); // from 3->0
    EXPECT_EQ(t.outDegree(1), 1u);
    EXPECT_EQ(t.outDegree(2), 2u);
    EXPECT_EQ(t.neighborsOf(2)[0], 0u);
    EXPECT_EQ(t.neighborsOf(2)[1], 1u);
}

TEST(Transpose, PreservesWeights)
{
    const Csr g = smallGraph();
    const Csr t = transpose(g);
    // Edge 0->2 weight 7 becomes 2->0 weight 7.
    const auto nbrs = t.neighborsOf(2);
    const auto ws = t.weightsOf(2);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (nbrs[i] == 0) {
            EXPECT_EQ(ws[i], 7u);
        }
    }
}

TEST(Transpose, IsAnInvolution)
{
    const Csr g = powerLaw(500, 4000, 0.6, 3, true);
    const Csr tt = transpose(transpose(g));
    EXPECT_SPAN_EQ(tt.offsetArray(), g.offsetArray());
    // Within a vertex, transpose-of-transpose may reorder the edge list,
    // so compare sorted adjacency.
    for (VertexId v = 0; v < g.numVertices(); ++v) {
        auto a = std::vector<VertexId>(g.neighborsOf(v).begin(),
                                       g.neighborsOf(v).end());
        auto b = std::vector<VertexId>(tt.neighborsOf(v).begin(),
                                       tt.neighborsOf(v).end());
        std::sort(a.begin(), a.end());
        std::sort(b.begin(), b.end());
        ASSERT_EQ(a, b) << "vertex " << v;
    }
}

TEST(Transpose, InDegreesBecomeOutDegrees)
{
    const Csr g = powerLaw(300, 2400, 0.6, 5);
    const auto in_deg = inDegrees(g);
    const Csr t = transpose(g);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(t.outDegree(v), in_deg[v]);
}

TEST(Symmetrize, EveryEdgeHasAReverse)
{
    const Csr g = powerLaw(200, 1000, 0.6, 7);
    const Csr s = symmetrize(g);
    for (VertexId u = 0; u < s.numVertices(); ++u) {
        for (const VertexId v : s.neighborsOf(u)) {
            const auto back = s.neighborsOf(v);
            EXPECT_NE(std::find(back.begin(), back.end(), u), back.end())
                << u << "->" << v << " lacks a reverse";
        }
    }
}

TEST(Symmetrize, NoDuplicateEdges)
{
    const Csr g = smallGraph();
    const Csr s = symmetrize(g);
    for (VertexId u = 0; u < s.numVertices(); ++u) {
        auto nbrs = std::vector<VertexId>(s.neighborsOf(u).begin(),
                                          s.neighborsOf(u).end());
        std::sort(nbrs.begin(), nbrs.end());
        EXPECT_EQ(std::adjacent_find(nbrs.begin(), nbrs.end()),
                  nbrs.end());
    }
}

TEST(DegreeSort, OrdersByDescendingDegree)
{
    const Csr g = powerLaw(400, 3200, 0.7, 9);
    const Csr sorted = degreeSortReorder(g);
    for (VertexId v = 0; v + 1 < sorted.numVertices(); ++v)
        ASSERT_GE(sorted.outDegree(v), sorted.outDegree(v + 1));
    EXPECT_EQ(sorted.numEdges(), g.numEdges());
}

TEST(DegreeSort, PermutationIsBijective)
{
    const Csr g = powerLaw(300, 2400, 0.6, 11);
    std::vector<VertexId> perm;
    (void)degreeSortReorder(g, &perm);
    std::vector<VertexId> sorted_perm = perm;
    std::sort(sorted_perm.begin(), sorted_perm.end());
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(sorted_perm[v], v);
}

TEST(DegreeSort, SsspResultsPermuteConsistently)
{
    // Reordering must not change the algorithm's answers (modulo the
    // relabeling) -- the property GPU preprocessing relies on.
    const Csr g = powerLaw(500, 4000, 0.6, 13, true);
    std::vector<VertexId> perm;
    const Csr sorted = degreeSortReorder(g, &perm);

    auto sssp_a = algo::makeAlgorithm(algo::AlgorithmId::Sssp);
    auto sssp_b = algo::makeAlgorithm(algo::AlgorithmId::Sssp);
    const VertexId source = algo::defaultSource(g);
    const auto plain = algo::runReference(g, *sssp_a, source);
    const auto reordered =
        algo::runReference(sorted, *sssp_b, perm[source]);
    for (VertexId v = 0; v < g.numVertices(); ++v)
        ASSERT_EQ(plain.properties[v], reordered.properties[perm[v]]);
}

TEST(ApplyPermutation, IdentityIsNoop)
{
    const Csr g = smallGraph();
    std::vector<VertexId> identity(g.numVertices());
    std::iota(identity.begin(), identity.end(), 0);
    const Csr h = applyPermutation(g, identity);
    EXPECT_SPAN_EQ(h.offsetArray(), g.offsetArray());
    EXPECT_SPAN_EQ(h.neighborArray(), g.neighborArray());
    EXPECT_SPAN_EQ(h.weightArray(), g.weightArray());
}

TEST(ApplyPermutationErrors, WrongSizeThrows)
{
    const Csr g = smallGraph();
    EXPECT_TYPED_ERROR((void)applyPermutation(g, {0, 1}), ConfigError,
                       "permutation size");
}

TEST(InDegrees, CountsIncomingEdges)
{
    const Csr g = smallGraph();
    const auto d = inDegrees(g);
    EXPECT_EQ(d[0], 1u);
    EXPECT_EQ(d[1], 1u);
    EXPECT_EQ(d[2], 2u);
    EXPECT_EQ(d[3], 0u);
}

TEST(WeakComponents, CountsGroups)
{
    std::vector<CooEdge> edges = {{0, 1}, {1, 2}, {3, 4}};
    const Csr g = buildCsr(6, std::move(edges));
    // {0,1,2}, {3,4}, {5} -> 3 components.
    EXPECT_EQ(countWeakComponents(g), 3u);
}

TEST(WeakComponents, FullyConnectedGraphIsOne)
{
    const Csr g = grid2d(10, 10, 1);
    EXPECT_EQ(countWeakComponents(g), 1u);
}

} // namespace
} // namespace gds::graph
