#include "common/rss.hh"

#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace gds::common
{

namespace
{

/**
 * Scan /proc/self/status for a "Key:   <n> kB" line and return the value
 * in bytes, or 0 when the file or the key is missing (non-Linux).
 */
std::uint64_t
procStatusBytes(const char *key)
{
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (!f)
        return 0;
    const std::size_t key_len = std::strlen(key);
    char line[256];
    std::uint64_t bytes = 0;
    while (std::fgets(line, sizeof(line), f)) {
        if (std::strncmp(line, key, key_len) != 0 || line[key_len] != ':')
            continue;
        unsigned long long kb = 0;
        if (std::sscanf(line + key_len + 1, " %llu", &kb) == 1)
            bytes = static_cast<std::uint64_t>(kb) * 1024;
        break;
    }
    std::fclose(f);
    return bytes;
}

} // namespace

std::uint64_t
currentRssBytes()
{
    return procStatusBytes("VmRSS");
}

std::uint64_t
peakRssBytes()
{
    if (std::uint64_t bytes = procStatusBytes("VmHWM"))
        return bytes;
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) == 0 && usage.ru_maxrss > 0) {
#if defined(__APPLE__)
        // macOS reports ru_maxrss in bytes; Linux and the BSDs in kB.
        return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
        return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
    }
#endif
    return 0;
}

} // namespace gds::common
