/**
 * @file
 * Typed error handling for the simulator.
 *
 * Three tiers, complementing logging.hh:
 *  - panic()/gds_assert() remain reserved for genuine internal invariant
 *    violations (simulator bugs);
 *  - Status / Result<T> report recoverable conditions through return
 *    values where exceptions are awkward (validation passes, parsers);
 *  - the SimError hierarchy carries typed failures (deadlocked runs,
 *    corrupt inputs, invalid configurations) across module boundaries so
 *    the experiment harness can record a failed cell and keep going
 *    instead of aborting a whole figure regeneration.
 */

#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace gds
{

/** Classification of every reportable failure. */
enum class ErrorCode
{
    Ok,           ///< no error
    Deadlock,     ///< nothing busy, completion predicate unsatisfied
    Livelock,     ///< components busy but no progress for many cycles
    CycleLimit,   ///< run exceeded its cycle budget
    CorruptInput, ///< malformed/truncated input data (graph file, cache)
    Config,       ///< invalid user-supplied configuration
    Internal,     ///< unexpected internal condition surfaced as an error
    Stopped,      ///< run interrupted by a graceful-stop request (signal)
    Timeout,      ///< run exceeded its wall-clock budget
    Checkpoint,   ///< checkpoint file corrupt, truncated or incompatible
    Resource,     ///< a bounded resource (admission queue, pool) is full
};

/** Stable lower-case name of an error code ("ok", "deadlock", ...). */
const char *errorCodeName(ErrorCode code);

/**
 * A cheap value-type verdict: Ok, or a code plus a human-readable message.
 * Returned by validation passes that must not throw (and that callers may
 * legitimately ignore after logging).
 */
class Status
{
  public:
    /** Default: success. */
    Status() = default;

    static Status
    failure(ErrorCode error_code, std::string msg)
    {
        gds_assert(error_code != ErrorCode::Ok,
                   "failure status needs a non-Ok code");
        return Status(error_code, std::move(msg));
    }

    bool ok() const { return _code == ErrorCode::Ok; }
    ErrorCode code() const { return _code; }
    const std::string &message() const { return _message; }

    /** "ok" or "<code>: <message>". */
    std::string toString() const;

  private:
    Status(ErrorCode error_code, std::string msg)
        : _code(error_code), _message(std::move(msg))
    {}

    ErrorCode _code = ErrorCode::Ok;
    std::string _message;
};

/**
 * A value or a failure Status. Library code that can fail without it being
 * exceptional (lookups, parsers) returns Result<T> so callers must confront
 * the failure path.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : _value(std::move(value)) {}

    Result(Status failure_status) : _status(std::move(failure_status))
    {
        gds_assert(!_status.ok(), "Result failure needs a non-ok Status");
    }

    bool ok() const { return _value.has_value(); }
    explicit operator bool() const { return ok(); }

    const Status &
    status() const
    {
        static const Status ok_status;
        return _value ? ok_status : _status;
    }

    T &
    value()
    {
        gds_assert(_value.has_value(), "value() on failed Result: %s",
                   _status.toString().c_str());
        return *_value;
    }

    const T &
    value() const
    {
        gds_assert(_value.has_value(), "value() on failed Result: %s",
                   _status.toString().c_str());
        return *_value;
    }

    T
    valueOr(T fallback) const
    {
        return _value ? *_value : std::move(fallback);
    }

  private:
    std::optional<T> _value;
    Status _status;
};

// ---------------------------------------------------------------------
// Exception hierarchy.
// ---------------------------------------------------------------------

/** Base of every typed simulator failure. */
class SimError : public std::runtime_error
{
  public:
    SimError(ErrorCode error_code, const std::string &msg)
        : std::runtime_error(msg), _code(error_code)
    {}

    ErrorCode code() const { return _code; }

    Status toStatus() const { return Status::failure(_code, what()); }

  private:
    ErrorCode _code;
};

/** A run stopped with no component busy and the predicate unsatisfied. */
class DeadlockError : public SimError
{
  public:
    explicit DeadlockError(const std::string &msg)
        : SimError(ErrorCode::Deadlock, msg)
    {}
};

/** A run kept components busy but made no progress for many cycles. */
class LivelockError : public SimError
{
  public:
    explicit LivelockError(const std::string &msg)
        : SimError(ErrorCode::Livelock, msg)
    {}
};

/** A run exceeded its cycle budget. */
class CycleLimitError : public SimError
{
  public:
    explicit CycleLimitError(const std::string &msg)
        : SimError(ErrorCode::CycleLimit, msg)
    {}
};

/** Malformed or truncated input data. Carries the offending location. */
class CorruptInputError : public SimError
{
  public:
    /**
     * @param input_path file (or resource) the corruption was found in
     * @param line_number 1-based text line, or 0 for binary/unknown
     * @param msg what was wrong
     */
    CorruptInputError(std::string input_path, std::size_t line_number,
                      const std::string &msg)
        : SimError(ErrorCode::CorruptInput, describe(input_path,
                                                     line_number, msg)),
          _path(std::move(input_path)),
          _line(line_number)
    {}

    /** Corruption in in-memory data with no file to point at. */
    explicit CorruptInputError(const std::string &msg)
        : CorruptInputError("", 0, msg)
    {}

    const std::string &path() const { return _path; }

    /** 1-based line number; 0 when not applicable (binary files). */
    std::size_t line() const { return _line; }

  private:
    static std::string describe(const std::string &input_path,
                                std::size_t line_number,
                                const std::string &msg);

    std::string _path;
    std::size_t _line;
};

/** The user asked for an unsupported or inconsistent configuration. */
class ConfigError : public SimError
{
  public:
    explicit ConfigError(const std::string &msg)
        : SimError(ErrorCode::Config, msg)
    {}
};

/**
 * An unexpected internal condition surfaced as a typed error instead of a
 * panic, so a long experiment run can record the failure and continue.
 */
class InternalError : public SimError
{
  public:
    explicit InternalError(const std::string &msg)
        : SimError(ErrorCode::Internal, msg)
    {}
};

/** A run was interrupted by a graceful-stop request (SIGINT/SIGTERM). */
class StoppedError : public SimError
{
  public:
    explicit StoppedError(const std::string &msg)
        : SimError(ErrorCode::Stopped, msg)
    {}
};

/** A run exceeded its wall-clock budget and was reaped. */
class TimeoutError : public SimError
{
  public:
    explicit TimeoutError(const std::string &msg)
        : SimError(ErrorCode::Timeout, msg)
    {}
};

/** A checkpoint file is corrupt, truncated, or from an incompatible build. */
class CheckpointError : public SimError
{
  public:
    explicit CheckpointError(const std::string &msg)
        : SimError(ErrorCode::Checkpoint, msg)
    {}
};

/**
 * A bounded resource is exhausted: the request was well-formed but the
 * system cannot take it on right now (e.g. the simulation service's
 * admission queue is full). Clients are expected to back off and retry.
 */
class ResourceError : public SimError
{
  public:
    explicit ResourceError(const std::string &msg)
        : SimError(ErrorCode::Resource, msg)
    {}
};

/** Throw the SimError subclass matching @p status (which must be !ok). */
[[noreturn]] void throwStatus(const Status &status);

/**
 * Throw @p error_type (a SimError subclass taking a single message) unless
 * a user-facing precondition holds. This is the typed-error sibling of
 * gds_assert(): gds_assert flags simulator bugs and aborts, gds_require
 * flags bad user input/configuration and throws, so the experiment
 * harness can record the failed cell and keep going.
 */
#define gds_require(cond, error_type, ...)                                  \
    do {                                                                    \
        if (!(cond))                                                        \
            throw error_type(::gds::detail::vformat(__VA_ARGS__));          \
    } while (0)

} // namespace gds
