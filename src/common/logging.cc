#include "common/logging.hh"

#include <cstdarg>
#include <mutex>
#include <vector>

namespace gds
{
namespace detail
{

namespace
{

/** Serializes stderr emission so concurrent workers never interleave
 *  messages (function-local static: safe before/after main). */
std::mutex &
emitMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

std::string
vformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

void
emit(const char *prefix, const std::string &msg)
{
    const std::lock_guard<std::mutex> lock(emitMutex());
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}

void
terminatePanic(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
terminateFatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

} // namespace detail
} // namespace gds
