#include "common/logging.hh"

#include <cstdarg>
#include <cstring>
#include <mutex>
#include <vector>

#include "common/log.hh"

namespace gds
{
namespace detail
{

namespace
{

/** Serializes stderr emission so concurrent workers never interleave
 *  messages (function-local static: safe before/after main). */
std::mutex &
emitMutex()
{
    static std::mutex m;
    return m;
}

} // namespace

std::string
vformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<std::size_t>(needed));
}

void
emitRawLine(const std::string &line)
{
    const std::lock_guard<std::mutex> lock(emitMutex());
    std::fprintf(stderr, "%s\n", line.c_str());
}

void
emit(const char *prefix, const std::string &msg)
{
    // Route the legacy severity prefixes through the structured logger
    // (common/log) so warn()/inform() call sites inherit level filtering
    // and GDS_LOG_FORMAT=json. An empty prefix stays verbatim: it carries
    // pre-formatted output such as CLI usage text.
    if (std::strcmp(prefix, "warn: ") == 0) {
        log::write(log::Level::Warn, "", {}, msg);
        return;
    }
    if (std::strcmp(prefix, "info: ") == 0) {
        log::write(log::Level::Info, "", {}, msg);
        return;
    }
    if (std::strcmp(prefix, "[harness] ") == 0) {
        log::write(log::Level::Info, "harness", {}, msg);
        return;
    }
    emitRawLine(std::string(prefix) + msg);
}

void
terminatePanic(const std::string &msg, const char *file, int line)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
terminateFatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

} // namespace detail
} // namespace gds
