/**
 * @file
 * Small arithmetic helpers used throughout the memory system and the
 * accelerator models.
 */

#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace gds
{

/** Integer ceiling division. */
template <typename T>
constexpr T
ceilDiv(T num, T den)
{
    return (num + den - 1) / den;
}

/** True iff x is a power of two (x > 0). */
constexpr bool
isPow2(std::uint64_t x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** floor(log2(x)) for x > 0. */
constexpr unsigned
log2Floor(std::uint64_t x)
{
    return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/** Round x up to the next multiple of align (align must be a power of 2). */
constexpr std::uint64_t
alignUp(std::uint64_t x, std::uint64_t align)
{
    return (x + align - 1) & ~(align - 1);
}

/** Round x down to a multiple of align (align must be a power of 2). */
constexpr std::uint64_t
alignDown(std::uint64_t x, std::uint64_t align)
{
    return x & ~(align - 1);
}

/**
 * FNV-1a 64-bit hash of a raw byte range. One shared definition for
 * every integrity checksum in the tree: the binary graph format's
 * section checksums, checkpoint payloads, and the provenance
 * configHash (harness::fnv1a delegates here).
 */
inline std::uint64_t
fnv1a64(const void *data, std::size_t size,
        std::uint64_t hash = 0xcbf29ce484222325ULL)
{
    const unsigned char *bytes = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= bytes[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace gds
