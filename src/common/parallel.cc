#include "common/parallel.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/parse.hh"

namespace gds::common
{

unsigned
jobCount()
{
    const unsigned fallback =
        std::max(1u, std::thread::hardware_concurrency());
    // Strict parse: "GDS_JOBS=-1" used to strtoul-wrap to ~4 billion
    // workers; parseEnvU64 warns and falls back instead. The cap keeps a
    // fat-fingered "GDS_JOBS=1000000" from exhausting thread handles.
    return static_cast<unsigned>(
        common::parseEnvU64("GDS_JOBS", fallback, 1, 4096));
}

ThreadPool::ThreadPool(unsigned workers)
{
    workers = std::max(1u, workers);
    threads.reserve(workers);
    for (unsigned i = 0; i < workers; ++i)
        threads.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        const std::lock_guard<std::mutex> lock(mu);
        stopping = true;
    }
    task_ready.notify_all();
    for (std::thread &t : threads)
        t.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        const std::lock_guard<std::mutex> lock(mu);
        gds_assert(!stopping, "submit() on a stopping ThreadPool");
        queue.push_back(std::move(task));
    }
    task_ready.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mu);
    all_done.wait(lock, [this] { return queue.empty() && running == 0; });
    if (first_error) {
        const std::exception_ptr error = first_error;
        first_error = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(mu);
    for (;;) {
        task_ready.wait(lock,
                        [this] { return stopping || !queue.empty(); });
        if (queue.empty())
            return; // stopping, and nothing left to drain
        std::function<void()> task = std::move(queue.front());
        queue.pop_front();
        ++running;
        lock.unlock();
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        lock.lock();
        if (error && !first_error)
            first_error = error;
        --running;
        if (queue.empty() && running == 0)
            all_done.notify_all();
    }
}

void
parallelFor(std::size_t n, unsigned jobs,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;
    if (jobs <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool pool(static_cast<unsigned>(
        std::min<std::size_t>(jobs, n)));
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&fn, i] { fn(i); });
    pool.wait();
}

} // namespace gds::common
