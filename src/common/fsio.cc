#include "common/fsio.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "common/logging.hh"

namespace gds
{

namespace
{

/** fsync an already-resolved path; directories are opened read-only. */
bool
fsyncPath(const std::string &path, const char *what)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        warn("cannot open %s '%s' for fsync: %s", what, path.c_str(),
             std::strerror(errno));
        return false;
    }
    const bool ok = ::fsync(fd) == 0;
    if (!ok) {
        warn("fsync of %s '%s' failed: %s", what, path.c_str(),
             std::strerror(errno));
    }
    ::close(fd);
    return ok;
}

} // namespace

bool
fsyncFile(const std::string &path)
{
    return fsyncPath(path, "file");
}

bool
fsyncParentDir(const std::string &path)
{
    std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    if (parent.empty())
        parent = ".";
    return fsyncPath(parent.string(), "directory");
}

bool
durableRename(const std::string &from, const std::string &to)
{
    if (!fsyncFile(from))
        return false;
    std::error_code ec;
    std::filesystem::rename(from, to, ec);
    if (ec) {
        warn("cannot rename '%s' to '%s': %s", from.c_str(), to.c_str(),
             ec.message().c_str());
        return false;
    }
    return fsyncParentDir(to);
}

} // namespace gds
