/**
 * @file
 * Minimal RFC 8259 JSON reader for the simulation service's request
 * parsing (the writer side lives in stats/json.hh, which emits JSON but
 * never reads it). Builds a JsonValue tree; numbers additionally retain
 * their raw lexeme so integer fields can be re-parsed through the strict
 * common/parse.hh helpers — one checked numeric path for CLI flags and
 * daemon requests alike.
 *
 * Not a general-purpose JSON library: no streaming, no comments, inputs
 * are single request lines. Depth is bounded to keep adversarial inputs
 * from recursing the stack away.
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/error.hh"

namespace gds::common
{

/** One parsed JSON value (tree node). */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    using Object = std::map<std::string, JsonValue>;
    using Array = std::vector<JsonValue>;

    JsonValue() = default;

    Kind kind() const { return _kind; }
    bool isNull() const { return _kind == Kind::Null; }
    bool isBool() const { return _kind == Kind::Bool; }
    bool isNumber() const { return _kind == Kind::Number; }
    bool isString() const { return _kind == Kind::String; }
    bool isObject() const { return _kind == Kind::Object; }
    bool isArray() const { return _kind == Kind::Array; }

    /** Value accessors; calling the wrong one is a caller bug. */
    bool asBool() const;
    double asNumber() const;
    /** The number exactly as it appeared in the input ("1e3", "42"). */
    const std::string &numberLexeme() const;
    const std::string &asString() const;
    const Object &asObject() const;
    const Array &asArray() const;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;

    // Construction helpers (used by the parser).
    static JsonValue makeNull();
    static JsonValue makeBool(bool v);
    static JsonValue makeNumber(double v, std::string lexeme);
    static JsonValue makeString(std::string v);
    static JsonValue makeObject(Object v);
    static JsonValue makeArray(Array v);

  private:
    Kind _kind = Kind::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _text; ///< string value, or the number's raw lexeme
    std::shared_ptr<Object> _object;
    std::shared_ptr<Array> _array;
};

/**
 * Parse @p text as exactly one JSON value (trailing garbage is an
 * error). Failures carry "byte N: what" messages.
 */
Result<JsonValue> parseJson(const std::string &text);

/** Escape + quote @p s as a JSON string (writer-side convenience). */
std::string jsonQuote(const std::string &s);

} // namespace gds::common
