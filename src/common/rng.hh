/**
 * @file
 * Deterministic pseudo-random number generation for graph synthesis and
 * workload construction. Everything in this repository that is "random" is
 * seeded explicitly, so every experiment is exactly reproducible.
 */

#pragma once

#include <array>
#include <cstdint>

namespace gds
{

/** SplitMix64: used to expand a single seed into generator state. */
class SplitMix64
{
  public:
    explicit SplitMix64(std::uint64_t seed) : state(seed) {}

    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

  private:
    std::uint64_t state;
};

/**
 * xoshiro256** 1.0 (Blackman & Vigna). Fast, high-quality, 64-bit output;
 * the workhorse generator for graph synthesis.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed)
    {
        SplitMix64 sm(seed);
        for (auto &word : s)
            word = sm.next();
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Lemire's multiply-shift rejection-free variant is fine here:
        // tiny modulo bias (< 2^-64 * bound) is irrelevant for synthesis.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Raw generator state, for mid-run checkpointing. */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {s[0], s[1], s[2], s[3]};
    }

    /** Overwrite the generator state with a checkpointed snapshot. */
    void
    setState(const std::array<std::uint64_t, 4> &words)
    {
        for (std::size_t i = 0; i < words.size(); ++i)
            s[i] = words[i];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];
};

} // namespace gds
