/**
 * @file
 * Worker-pool scheduler shared by the experiment harness, the simulation
 * service and the graph build pipeline. Tasks are independent units of
 * work fanned out across a fixed pool of workers; determinism is
 * preserved by having each task write into a pre-assigned result slot
 * rather than by ordering the execution itself.
 *
 * This lives in common (not harness) so that lower layers — notably the
 * parallel COO→CSR build and the chunked graph generators in src/graph —
 * can share one pool implementation without a dependency cycle;
 * harness/parallel.hh re-exports the same names for its historical users.
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gds::common
{

/**
 * Worker-count policy for parallel work: the GDS_JOBS environment
 * variable when set to a positive integer, otherwise
 * std::thread::hardware_concurrency() (minimum 1). GDS_JOBS=1 forces the
 * strictly serial path.
 */
unsigned jobCount();

/**
 * A fixed-size pool of worker threads draining a FIFO task queue.
 *
 * Exceptions thrown by tasks are captured; wait() rethrows the first one
 * after the queue has fully drained, so no submitted work is silently
 * abandoned mid-flight. The destructor drains outstanding tasks and joins
 * every worker.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(unsigned workers);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue one task; runs on an arbitrary worker. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task has finished, then rethrow the
     * first exception any task raised (if any). Reusable: more tasks may
     * be submitted after a wait().
     */
    void wait();

    unsigned
    workerCount() const
    {
        return static_cast<unsigned>(threads.size());
    }

  private:
    void workerLoop();

    std::vector<std::thread> threads;
    std::deque<std::function<void()>> queue;
    std::mutex mu;
    std::condition_variable task_ready;
    std::condition_variable all_done;
    std::size_t running = 0;
    bool stopping = false;
    std::exception_ptr first_error;
};

/**
 * Run fn(0), ..., fn(n-1). With jobs <= 1 the calls happen strictly
 * serially on the calling thread in index order; otherwise on a pool of
 * min(jobs, n) workers in unspecified order. The first exception thrown
 * by any index is rethrown after all work has drained.
 */
void parallelFor(std::size_t n, unsigned jobs,
                 const std::function<void(std::size_t)> &fn);

} // namespace gds::common
