#include "common/log.hh"

#include <cstdarg>
#include <cstdio>
#include <vector>

#include "common/jsonio.hh"
#include "common/parse.hh"

namespace gds::log
{

namespace
{

/**
 * Knob parsing runs inside a function-local-static initializer, where
 * calling warn() would recurse back into threshold() and deadlock the
 * static-init guard. Complaints about malformed knob values are instead
 * emitted directly through the raw serialized-stderr path.
 */
void
complainRaw(const char *knob, const std::string &got, const char *fallback)
{
    detail::emitRawLine("warn: " + std::string(knob) + "='" + got +
                        "' is not a recognized value; using " + fallback);
}

Level
parseLevelKnob()
{
    const std::string text = common::parseEnvStr("GDS_LOG_LEVEL", "info");
    if (text == "debug")
        return Level::Debug;
    if (text == "info")
        return Level::Info;
    if (text == "warn")
        return Level::Warn;
    if (text == "error")
        return Level::Error;
    complainRaw("GDS_LOG_LEVEL", text, "info");
    return Level::Info;
}

Format
parseFormatKnob()
{
    const std::string text = common::parseEnvStr("GDS_LOG_FORMAT", "human");
    if (text == "human")
        return Format::Human;
    if (text == "json")
        return Format::Json;
    complainRaw("GDS_LOG_FORMAT", text, "human");
    return Format::Human;
}

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Debug: return "debug";
      case Level::Info: return "info";
      case Level::Warn: return "warn";
      case Level::Error: return "error";
    }
    return "info";
}

Level
threshold()
{
    static const Level level = parseLevelKnob();
    return level;
}

Format
format()
{
    static const Format fmt = parseFormatKnob();
    return fmt;
}

std::string
formatHuman(Level level, const std::string &subsys, const std::string &msg,
            const Fields &fields)
{
    std::string line = levelName(level);
    line += ": ";
    if (!subsys.empty()) {
        line += "[";
        line += subsys;
        line += "] ";
    }
    line += msg;
    if (!fields.empty()) {
        line += " (";
        for (std::size_t i = 0; i < fields.size(); ++i) {
            if (i)
                line += ", ";
            line += fields[i].key;
            line += "=";
            line += fields[i].value;
        }
        line += ")";
    }
    return line;
}

std::string
formatJson(Level level, const std::string &subsys, const std::string &msg,
            const Fields &fields)
{
    std::string line = "{\"level\":";
    line += common::jsonQuote(levelName(level));
    if (!subsys.empty()) {
        line += ",\"subsys\":";
        line += common::jsonQuote(subsys);
    }
    line += ",\"msg\":";
    line += common::jsonQuote(msg);
    for (const Field &field : fields) {
        line += ",";
        line += common::jsonQuote(field.key);
        line += ":";
        line += common::jsonQuote(field.value);
    }
    line += "}";
    return line;
}

void
write(Level level, const std::string &subsys, const Fields &fields,
      const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(threshold()))
        return;
    const std::string line = format() == Format::Json
        ? formatJson(level, subsys, msg, fields)
        : formatHuman(level, subsys, msg, fields);
    detail::emitRawLine(line);
}

void
writef(Level level, const std::string &subsys, const Fields &fields,
       const char *fmt, ...)
{
    // Cheap early-out before formatting: dropped lines cost one compare.
    if (static_cast<int>(level) < static_cast<int>(threshold()))
        return;
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string msg;
    if (needed < 0) {
        msg = fmt;
    } else {
        std::vector<char> buf(static_cast<std::size_t>(needed) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
        msg.assign(buf.data(), static_cast<std::size_t>(needed));
    }
    va_end(args_copy);
    write(level, subsys, fields, msg);
}

} // namespace gds::log
