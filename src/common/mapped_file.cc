#include "common/mapped_file.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace gds::common
{

std::shared_ptr<const MappedFile>
MappedFile::open(const std::string &path)
{
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) {
        throw ConfigError("cannot open '" + path +
                          "' for mapping: " + std::strerror(errno));
    }
    struct stat st = {};
    if (::fstat(fd, &st) != 0) {
        const int saved = errno;
        ::close(fd);
        throw ConfigError("cannot stat '" + path +
                          "': " + std::strerror(saved));
    }
    const std::size_t length = static_cast<std::size_t>(st.st_size);

    const std::byte *base = nullptr;
    if (length > 0) {
        void *map =
            ::mmap(nullptr, length, PROT_READ, MAP_SHARED, fd, 0);
        if (map == MAP_FAILED) {
            const int saved = errno;
            ::close(fd);
            throw CorruptInputError(path, 0,
                                    std::string("mmap failed: ") +
                                        std::strerror(saved));
        }
        base = static_cast<const std::byte *>(map);
    }
    // The mapping keeps the inode alive; the fd is no longer needed.
    ::close(fd);
    return std::shared_ptr<const MappedFile>(
        new MappedFile(path, base, length));
}

MappedFile::~MappedFile()
{
    if (base != nullptr && length > 0) {
        // munmap takes a non-const pointer; the mapping itself was
        // created read-only, so the cast does not enable any write.
        ::munmap(const_cast<std::byte *>(base), length);
    }
}

void
MappedFile::checkRange(std::uint64_t offset, std::uint64_t count,
                       std::size_t elem_size, std::size_t elem_align) const
{
    const std::uint64_t max_count =
        elem_size == 0 ? 0 : (UINT64_MAX - offset) / elem_size;
    if (offset > length || count > max_count ||
        offset + count * elem_size > length) {
        throw CorruptInputError(
            file_path, 0,
            detail::vformat("short map: need bytes [%llu, %llu) of a "
                            "%zu-byte mapping",
                            static_cast<unsigned long long>(offset),
                            static_cast<unsigned long long>(
                                offset + count * elem_size),
                            length));
    }
    if (offset % elem_align != 0) {
        throw CorruptInputError(
            file_path, 0,
            detail::vformat("misaligned section: offset %llu is not "
                            "%zu-byte aligned",
                            static_cast<unsigned long long>(offset),
                            elem_align));
    }
}

namespace
{

void
advise(const std::byte *base, std::size_t length, std::uint64_t offset,
       std::uint64_t len, int hint)
{
    if (base == nullptr || offset >= length)
        return;
    len = std::min<std::uint64_t>(len, length - offset);
    if (len == 0)
        return;
    // Round down to a page boundary as madvise requires; best effort.
    const std::uint64_t page = 4096;
    const std::uint64_t start = offset & ~(page - 1);
    ::madvise(const_cast<std::byte *>(base) + start,
              static_cast<std::size_t>(len + (offset - start)), hint);
}

} // namespace

void
MappedFile::adviseWillNeed(std::uint64_t offset, std::uint64_t len) const
{
    advise(base, length, offset, len, MADV_WILLNEED);
}

void
MappedFile::adviseSequential(std::uint64_t offset, std::uint64_t len) const
{
    advise(base, length, offset, len, MADV_SEQUENTIAL);
}

} // namespace gds::common
