/**
 * @file
 * gem5-style debug tracing. Categories ("flags") are enabled at runtime
 * through the GDS_DEBUG environment variable, e.g.
 *
 *   GDS_DEBUG=Dispatch,Prefetch ./examples/gds_sim --algo bfs --rmat 12
 *
 * and emitted with DPRINTF(Flag, "format", args...). Disabled categories
 * cost one predictable branch, so tracing can stay in hot code.
 */

#pragma once

#include <cstdio>
#include <string>

#include "common/types.hh"

namespace gds::debug
{

/** Trace categories, one bit each. */
enum class Flag : unsigned
{
    Dispatch = 0, ///< DE workload dispatch decisions
    Prefetch,     ///< Vpref/Epref request issue and commit
    Reduce,       ///< UE reduce pipeline activity
    Apply,        ///< Apply-phase group/list flow
    Memory,       ///< HBM request/response traffic
    Phase,        ///< phase/iteration transitions
    Watchdog,     ///< stall detection and failure-diagnostic snapshots
    Fault,        ///< fault-injection decisions
    NumFlags,
};

/** True if @p flag was named in GDS_DEBUG (or GDS_DEBUG=All). */
bool enabled(Flag flag);

/**
 * True if any flag at all is active. One relaxed atomic load after the
 * first call; hot loops use it to hoist per-component attribution scopes
 * (and any other trace-only work) behind a single predictable branch.
 */
bool anyEnabled();

/** Name of a flag as accepted in GDS_DEBUG. */
const char *flagName(Flag flag);

/** Parse a GDS_DEBUG-style comma list into the active set (testing and
 *  programmatic use; the environment is parsed on first query). */
void setActiveFlags(const std::string &comma_list);

// ---------------------------------------------------------------------
// Trace attribution context (thread-local).
//
// Every emitted line is prefixed with the current simulated cycle and
// the emitting component's path, so interleaved multi-component traces
// stay attributable. The Simulator stamps the cycle each step() and
// scopes the component around each tick; components that tick children
// directly (e.g. GdsAccel ticking its Hbm) re-scope themselves so their
// lines carry their own name.
// ---------------------------------------------------------------------

/** Stamp the simulated cycle attributed to subsequent lines. */
void setTraceCycle(Cycle cycle);

/** The cycle attributed to lines emitted now (0 outside a run). */
Cycle traceCycle();

/** The component path attributed to lines now, or nullptr for none.
 *  The pointed-to string must outlive the scope (components own theirs). */
const char *traceComponent();

/** RAII component-attribution scope; restores the previous one. */
class ScopedTraceComponent
{
  public:
    explicit ScopedTraceComponent(const char *path);
    ~ScopedTraceComponent();

    ScopedTraceComponent(const ScopedTraceComponent &) = delete;
    ScopedTraceComponent &operator=(const ScopedTraceComponent &) = delete;

  private:
    const char *previous;
};

/**
 * Secondary consumer of emitted lines (thread-local). The obs tracer
 * installs one so DPRINTF output also lands in the event trace with
 * cycle + component attribution; nullptr detaches.
 */
using LineSink = void (*)(void *obj, Flag flag, Cycle cycle,
                          const char *component, const char *text);
void setLineSink(LineSink sink, void *obj);

namespace detail
{
void vprint(Flag flag, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));
} // namespace detail

/** Emit a trace line when the category is active. */
#define DPRINTF(flag, ...)                                                 \
    do {                                                                   \
        if (::gds::debug::enabled(::gds::debug::Flag::flag))               \
            ::gds::debug::detail::vprint(::gds::debug::Flag::flag,         \
                                         __VA_ARGS__);                     \
    } while (0)

} // namespace gds::debug
