/**
 * @file
 * Fundamental scalar types shared by every module of the GraphDynS
 * reproduction: graph identifiers, simulated time, memory addresses and
 * vertex property values.
 */

#pragma once

#include <cstdint>
#include <limits>

namespace gds
{

/** Vertex identifier. 4 bytes, matching the paper's storage layout. */
using VertexId = std::uint32_t;

/** Edge index into the CSR edge array. 64-bit: RMAT-26 has 1e9 edges. */
using EdgeId = std::uint64_t;

/** Edge weight as stored in memory (random integers in [0, 255]). */
using Weight = std::uint32_t;

/**
 * Vertex property value. The accelerator datapath is built from
 * single-precision floating point units (Sec. 4.2.1), so properties are
 * 4-byte floats. Integer-flavoured algorithms (BFS level, CC label) are
 * exactly representable for every graph size we simulate (< 2^24).
 */
using PropValue = float;

/** Simulated clock cycle count (1 GHz accelerator clock). */
using Cycle = std::uint64_t;

/** Simulated byte address in the accelerator's physical address space. */
using Addr = std::uint64_t;

/** Sentinel for "no vertex". */
inline constexpr VertexId invalidVertex =
    std::numeric_limits<VertexId>::max();

/** Sentinel for "no edge". */
inline constexpr EdgeId invalidEdge = std::numeric_limits<EdgeId>::max();

/** Positive infinity for min-reduction algorithms (BFS/SSSP/CC). */
inline constexpr PropValue propInf = std::numeric_limits<PropValue>::infinity();

/** Bytes per vertex identifier / weight / property word. */
inline constexpr unsigned bytesPerWord = 4;

} // namespace gds
