/**
 * @file
 * Durable filesystem primitives shared by every atomic-write path in the
 * repository (graph binary caches, the harness result journal, simulator
 * checkpoints).
 *
 * The classic crash-safe publish sequence is: write a temporary file,
 * fsync it, rename it over the destination, then fsync the destination's
 * parent directory so the rename itself is on stable storage. Skipping
 * either fsync leaves a window where power loss produces an empty or
 * truncated file under the final name — exactly the torn-journal failure
 * these helpers exist to rule out.
 */

#pragma once

#include <string>

namespace gds
{

/** fsync() the file at @p path. Returns false (and warns) on failure. */
bool fsyncFile(const std::string &path);

/**
 * fsync() the directory containing @p path, making a completed rename of
 * @p path durable. Returns false (and warns) on failure.
 */
bool fsyncParentDir(const std::string &path);

/**
 * Durably publish @p from as @p to: fsync @p from, rename it over @p to,
 * then fsync the parent directory. Returns false (and warns) when any
 * step fails; the rename is not attempted if the source fsync fails.
 */
bool durableRename(const std::string &from, const std::string &to);

} // namespace gds
