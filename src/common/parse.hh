/**
 * @file
 * Checked numeric parsing shared by every user-input boundary: CLI
 * flags, daemon request fields and environment variables.
 *
 * The bare std::stoul / strtoul idioms these helpers replace have three
 * documented traps:
 *  - std::stoul throws std::invalid_argument / std::out_of_range, which
 *    escape CLI parsers as uncaught-exception crashes;
 *  - strtoul silently accepts a leading '-' by wrapping around, so
 *    GDS_CELL_RETRIES=-1 became ~4 billion retries;
 *  - trailing garbage ("10x") is accepted or rejected inconsistently
 *    from call site to call site.
 *
 * parseU64/parseF64 are strict (whole string, no sign, overflow is an
 * error) and report through Result<T>. requireU64/requireF64 are the
 * throwing wrappers for CLI/request parsing: failure is a ConfigError
 * naming the offending flag, so drivers can print usage text instead of
 * crashing. parseEnvU64/parseEnvF64 are the environment-variable policy:
 * an invalid value warns once and falls back to the documented default.
 */

#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "common/error.hh"

namespace gds::common
{

/**
 * Parse @p text as an unsigned 64-bit decimal integer. Strict: the whole
 * string must be consumed, signs (including '+') and leading/trailing
 * whitespace are rejected, and a value above
 * std::numeric_limits<uint64_t>::max() is an overflow failure, never a
 * wraparound.
 */
Result<std::uint64_t> parseU64(const std::string &text);

/**
 * Parse @p text as a finite, non-negative double. Strict like
 * parseU64(): whole string, no leading/trailing whitespace, and "nan",
 * "inf" and negative values are rejected.
 */
Result<double> parseF64(const std::string &text);

/**
 * parseU64 for a CLI flag or request field: throws ConfigError naming
 * @p what ("--num-pes", request field "iters", ...) on any parse
 * failure or when the value falls outside [@p min, @p max].
 */
std::uint64_t
requireU64(const std::string &what, const std::string &text,
           std::uint64_t min = 0,
           std::uint64_t max = std::numeric_limits<std::uint64_t>::max());

/** requireU64 for non-negative doubles (wall budgets, rates). */
double requireF64(const std::string &what, const std::string &text);

/**
 * Environment-variable policy for unsigned integer knobs: unset returns
 * @p def; a malformed value (sign, trailing garbage, overflow) or one
 * outside [@p min, @p max] warns and returns @p def. Never throws — a
 * bad environment must not kill a long experiment run.
 */
std::uint64_t
parseEnvU64(const char *name, std::uint64_t def, std::uint64_t min = 0,
            std::uint64_t max = std::numeric_limits<std::uint64_t>::max());

/**
 * Environment-variable policy for non-negative double knobs (e.g. wall
 * budgets in seconds): unset or invalid returns @p def with a warning.
 */
double parseEnvF64(const char *name, double def);

/**
 * Environment-variable policy for string knobs (paths, mode names):
 * unset returns @p def verbatim. No validation beyond presence — the
 * caller owns interpreting the value — but every GDS_* read still goes
 * through one audited chokepoint (lint rule env-knob-discipline).
 */
std::string parseEnvStr(const char *name, const std::string &def);

/** True when the environment variable @p name is set (to anything). */
bool envFlag(const char *name);

} // namespace gds::common
