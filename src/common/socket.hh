/**
 * @file
 * Local (Unix-domain) stream-socket primitives for the simulation
 * service: a listener bound to a filesystem path, a client connector,
 * and a line-oriented channel for the daemon's JSON-lines protocol.
 *
 * Deliberately local-only: the daemon serves same-machine clients (the
 * CLI, test harnesses, batch submitters); there is no TCP surface and
 * therefore no remote attack surface. All failures are reported through
 * Status/Result — a refused connection or a vanished peer is routine,
 * not exceptional.
 */

#pragma once

#include <cstddef>
#include <string>

#include "common/error.hh"

namespace gds::common
{

/**
 * One connected stream socket with line framing. Owns the file
 * descriptor (closed on destruction); movable, not copyable.
 */
class LineChannel
{
  public:
    LineChannel() = default;
    /** Adopt an already-connected descriptor. */
    explicit LineChannel(int fd) : _fd(fd) {}
    ~LineChannel();

    LineChannel(LineChannel &&other) noexcept;
    LineChannel &operator=(LineChannel &&other) noexcept;
    LineChannel(const LineChannel &) = delete;
    LineChannel &operator=(const LineChannel &) = delete;

    bool open() const { return _fd >= 0; }
    int fd() const { return _fd; }
    void close();

    /**
     * Read one '\n'-terminated line (the newline is stripped). Blocks up
     * to @p timeout_ms (<0 = forever). Returns:
     *  - ok Status with @p line filled on success;
     *  - ErrorCode::Stopped when the peer closed with no partial line
     *    (normal end of a connection);
     *  - ErrorCode::Timeout when the deadline passed;
     *  - ErrorCode::CorruptInput when a line exceeds @p max_line bytes
     *    or the peer closed mid-line;
     *  - ErrorCode::Internal on a socket error.
     */
    Status readLine(std::string &line, int timeout_ms = -1,
                    std::size_t max_line = 1 << 20);

    /** Write @p line plus a trailing newline, retrying short writes. */
    Status writeLine(const std::string &line);

  private:
    int _fd = -1;
    std::string buffered; ///< bytes read past the last returned line
};

/**
 * A listening Unix-domain socket bound to @p path. The socket file is
 * unlinked on destruction (and a stale file from a dead daemon is
 * replaced at bind time when nothing is listening behind it).
 */
class UnixListener
{
  public:
    UnixListener() = default;
    ~UnixListener();

    UnixListener(const UnixListener &) = delete;
    UnixListener &operator=(const UnixListener &) = delete;

    /** Bind + listen. Fails if a live daemon already owns @p path. */
    Status bind(const std::string &path, int backlog = 16);

    bool listening() const { return _fd >= 0; }
    const std::string &path() const { return _path; }

    /**
     * Accept one connection, waiting up to @p timeout_ms. Returns a
     * Timeout failure when nothing arrived (callers poll this to notice
     * drain requests), an Internal failure on socket errors.
     */
    Result<LineChannel> accept(int timeout_ms);

    void close();

  private:
    int _fd = -1;
    std::string _path;
};

/** Connect to the daemon listening at @p path. */
Result<LineChannel> connectUnix(const std::string &path,
                                int timeout_ms = 5000);

} // namespace gds::common
