/**
 * @file
 * Process resident-set-size probes for the memory-footprint track.
 *
 * Graph datasets dominate the simulator's footprint (CSR arrays plus the
 * service's resident-dataset cache), so peak RSS is a first-class gated
 * metric: bench_simperf reports it per cell, manifest.json records it per
 * run, and the daemon exports both current and peak RSS gauges on
 * /metricsz.
 *
 * Linux reports both numbers in /proc/self/status (VmRSS / VmHWM, in
 * kB). When procfs is unavailable the peak falls back to
 * getrusage(RUSAGE_SELF).ru_maxrss; when even that fails both probes
 * return 0, which downstream consumers render as "unavailable" rather
 * than failing the run.
 */

#pragma once

#include <cstdint>

namespace gds::common
{

/** Current resident set size in bytes (/proc/self/status VmRSS), or 0
 *  when the probe is unavailable on this platform. */
std::uint64_t currentRssBytes();

/** Peak resident set size in bytes (/proc/self/status VmHWM, falling
 *  back to getrusage ru_maxrss), or 0 when unavailable. */
std::uint64_t peakRssBytes();

} // namespace gds::common
