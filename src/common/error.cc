#include "common/error.hh"

namespace gds
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::Deadlock:
        return "deadlock";
      case ErrorCode::Livelock:
        return "livelock";
      case ErrorCode::CycleLimit:
        return "cycle-limit";
      case ErrorCode::CorruptInput:
        return "corrupt-input";
      case ErrorCode::Config:
        return "config";
      case ErrorCode::Internal:
        return "internal";
      case ErrorCode::Stopped:
        return "stopped";
      case ErrorCode::Timeout:
        return "timeout";
      case ErrorCode::Checkpoint:
        return "checkpoint";
      case ErrorCode::Resource:
        return "resource";
    }
    panic("bad error code %d", static_cast<int>(code));
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(errorCodeName(_code)) + ": " + _message;
}

std::string
CorruptInputError::describe(const std::string &input_path,
                            std::size_t line_number, const std::string &msg)
{
    std::string where = input_path;
    if (line_number != 0) {
        // Two appends, not operator+: GCC 12's -Wrestrict false-positive
        // (PR105651) fires on `"lit" + std::string&&` under -O2 -Werror.
        where += ':';
        where += std::to_string(line_number);
    }
    return where.empty() ? msg : where + ": " + msg;
}

void
throwStatus(const Status &status)
{
    gds_assert(!status.ok(), "cannot throw an ok Status");
    switch (status.code()) {
      case ErrorCode::Deadlock:
        throw DeadlockError(status.message());
      case ErrorCode::Livelock:
        throw LivelockError(status.message());
      case ErrorCode::CycleLimit:
        throw CycleLimitError(status.message());
      case ErrorCode::CorruptInput:
        throw CorruptInputError("", 0, status.message());
      case ErrorCode::Config:
        throw ConfigError(status.message());
      case ErrorCode::Internal:
        throw InternalError(status.message());
      case ErrorCode::Stopped:
        throw StoppedError(status.message());
      case ErrorCode::Timeout:
        throw TimeoutError(status.message());
      case ErrorCode::Checkpoint:
        throw CheckpointError(status.message());
      case ErrorCode::Resource:
        throw ResourceError(status.message());
      default:
        throw SimError(status.code(), status.message());
    }
}

} // namespace gds
