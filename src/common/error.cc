#include "common/error.hh"

namespace gds
{

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::Ok:
        return "ok";
      case ErrorCode::Deadlock:
        return "deadlock";
      case ErrorCode::Livelock:
        return "livelock";
      case ErrorCode::CycleLimit:
        return "cycle-limit";
      case ErrorCode::CorruptInput:
        return "corrupt-input";
      case ErrorCode::Config:
        return "config";
      case ErrorCode::Internal:
        return "internal";
    }
    panic("bad error code %d", static_cast<int>(code));
}

std::string
Status::toString() const
{
    if (ok())
        return "ok";
    return std::string(errorCodeName(_code)) + ": " + _message;
}

std::string
CorruptInputError::describe(const std::string &input_path,
                            std::size_t line_number, const std::string &msg)
{
    std::string where = input_path;
    if (line_number != 0)
        where += ":" + std::to_string(line_number);
    return where.empty() ? msg : where + ": " + msg;
}

void
throwStatus(const Status &status)
{
    gds_assert(!status.ok(), "cannot throw an ok Status");
    switch (status.code()) {
      case ErrorCode::Deadlock:
        throw DeadlockError(status.message());
      case ErrorCode::Livelock:
        throw LivelockError(status.message());
      case ErrorCode::CycleLimit:
        throw CycleLimitError(status.message());
      case ErrorCode::CorruptInput:
        throw CorruptInputError("", 0, status.message());
      case ErrorCode::Config:
        throw ConfigError(status.message());
      case ErrorCode::Internal:
        throw InternalError(status.message());
      default:
        throw SimError(status.code(), status.message());
    }
}

} // namespace gds
