#include "common/parse.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace gds::common
{

namespace
{

/** Shared shape check: non-empty, and every boundary case a C parser
 *  would wave through (sign, whitespace, empty) is rejected up front. */
Status
rejectShape(const std::string &text)
{
    if (text.empty())
        return Status::failure(ErrorCode::Config, "empty value");
    const unsigned char first = static_cast<unsigned char>(text.front());
    if (first == '-' || first == '+')
        return Status::failure(ErrorCode::Config,
                               "sign not allowed (value is unsigned)");
    if (std::isspace(first) ||
        std::isspace(static_cast<unsigned char>(text.back())))
        return Status::failure(ErrorCode::Config,
                               "leading/trailing whitespace");
    return Status();
}

} // namespace

Result<std::uint64_t>
parseU64(const std::string &text)
{
    if (const Status s = rejectShape(text); !s.ok())
        return s;
    if (!std::isdigit(static_cast<unsigned char>(text.front())))
        return Status::failure(ErrorCode::Config, "not a decimal number");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE)
        return Status::failure(ErrorCode::Config,
                               "value overflows 64 bits");
    if (end != text.c_str() + text.size())
        return Status::failure(ErrorCode::Config,
                               "trailing garbage after number");
    return static_cast<std::uint64_t>(v);
}

Result<double>
parseF64(const std::string &text)
{
    if (const Status s = rejectShape(text); !s.ok())
        return s;
    if (!std::isdigit(static_cast<unsigned char>(text.front())) &&
        text.front() != '.')
        return Status::failure(ErrorCode::Config, "not a number");
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (errno == ERANGE)
        return Status::failure(ErrorCode::Config, "value out of range");
    if (end != text.c_str() + text.size())
        return Status::failure(ErrorCode::Config,
                               "trailing garbage after number");
    if (!(v >= 0.0) || v > std::numeric_limits<double>::max())
        return Status::failure(ErrorCode::Config,
                               "value must be a finite non-negative "
                               "number");
    return v;
}

std::uint64_t
requireU64(const std::string &what, const std::string &text,
           std::uint64_t min, std::uint64_t max)
{
    const Result<std::uint64_t> r = parseU64(text);
    if (!r) {
        throw ConfigError(what + ": invalid value '" + text + "' (" +
                          r.status().message() + ")");
    }
    if (r.value() < min || r.value() > max) {
        throw ConfigError(what + ": value " + text + " out of range [" +
                          std::to_string(min) + ", " +
                          std::to_string(max) + "]");
    }
    return r.value();
}

double
requireF64(const std::string &what, const std::string &text)
{
    const Result<double> r = parseF64(text);
    if (!r) {
        throw ConfigError(what + ": invalid value '" + text + "' (" +
                          r.status().message() + ")");
    }
    return r.value();
}

std::uint64_t
parseEnvU64(const char *name, std::uint64_t def, std::uint64_t min,
            std::uint64_t max)
{
    const char *env = std::getenv(name);
    if (!env)
        return def;
    const Result<std::uint64_t> r = parseU64(env);
    if (!r) {
        warn("ignoring invalid %s='%s' (%s); using default %llu", name,
             env, r.status().message().c_str(),
             static_cast<unsigned long long>(def));
        return def;
    }
    if (r.value() < min || r.value() > max) {
        warn("ignoring out-of-range %s=%s (allowed [%llu, %llu]); using "
             "default %llu",
             name, env, static_cast<unsigned long long>(min),
             static_cast<unsigned long long>(max),
             static_cast<unsigned long long>(def));
        return def;
    }
    return r.value();
}

double
parseEnvF64(const char *name, double def)
{
    const char *env = std::getenv(name);
    if (!env)
        return def;
    const Result<double> r = parseF64(env);
    if (!r) {
        warn("ignoring invalid %s='%s' (%s); using default %g", name, env,
             r.status().message().c_str(), def);
        return def;
    }
    return r.value();
}

std::string
parseEnvStr(const char *name, const std::string &def)
{
    const char *env = std::getenv(name);
    return env != nullptr ? std::string(env) : def;
}

bool
envFlag(const char *name)
{
    return std::getenv(name) != nullptr;
}

} // namespace gds::common
