#include "common/debug.hh"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace gds::debug
{

namespace
{

// Atomics (not plain globals): enabled() is queried from concurrent
// harness workers, and the first queries race to parse GDS_DEBUG.
std::atomic<unsigned> activeMask{0};
std::atomic<bool> parsed{false};
std::mutex parseMutex;

const char *names[] = {"Dispatch", "Prefetch", "Reduce",    "Apply",
                       "Memory",   "Phase",    "Watchdog",  "Fault"};

void
parse(const std::string &list)
{
    unsigned mask = 0;
    std::size_t begin = 0;
    while (begin <= list.size()) {
        std::size_t end = list.find(',', begin);
        if (end == std::string::npos)
            end = list.size();
        const std::string token = list.substr(begin, end - begin);
        if (token == "All" || token == "all") {
            mask = ~0u;
        } else {
            for (unsigned f = 0;
                 f < static_cast<unsigned>(Flag::NumFlags); ++f) {
                if (token == names[f])
                    mask |= 1u << f;
            }
        }
        begin = end + 1;
    }
    activeMask.store(mask, std::memory_order_relaxed);
    parsed.store(true, std::memory_order_release);
}

void
parseEnvOnce()
{
    if (parsed.load(std::memory_order_acquire))
        return;
    const std::lock_guard<std::mutex> lock(parseMutex);
    if (parsed.load(std::memory_order_relaxed))
        return;
    const char *env = std::getenv("GDS_DEBUG");
    parse(env ? env : "");
}

} // namespace

bool
enabled(Flag flag)
{
    parseEnvOnce();
    return (activeMask.load(std::memory_order_relaxed) >>
            static_cast<unsigned>(flag)) & 1u;
}

bool
anyEnabled()
{
    parseEnvOnce();
    return activeMask.load(std::memory_order_relaxed) != 0;
}

const char *
flagName(Flag flag)
{
    return names[static_cast<unsigned>(flag)];
}

void
setActiveFlags(const std::string &comma_list)
{
    parse(comma_list);
}

// ---------------------------------------------------------------------
// Attribution context + line sink (all thread-local: harness workers
// tracing concurrent cells must not cross-attribute lines).
// ---------------------------------------------------------------------

namespace
{

thread_local Cycle contextCycle = 0;
thread_local const char *contextComponent = nullptr;
thread_local LineSink lineSink = nullptr;
thread_local void *lineSinkObj = nullptr;

} // namespace

void
setTraceCycle(Cycle cycle)
{
    contextCycle = cycle;
}

Cycle
traceCycle()
{
    return contextCycle;
}

const char *
traceComponent()
{
    return contextComponent;
}

ScopedTraceComponent::ScopedTraceComponent(const char *path)
    : previous(contextComponent)
{
    contextComponent = path;
}

ScopedTraceComponent::~ScopedTraceComponent()
{
    contextComponent = previous;
}

void
setLineSink(LineSink sink, void *obj)
{
    lineSink = sink;
    lineSinkObj = obj;
}

namespace detail
{

void
vprint(Flag flag, const char *fmt, ...)
{
    char body[1024];
    va_list args;
    va_start(args, fmt);
    std::vsnprintf(body, sizeof(body), fmt, args);
    va_end(args);

    // gem5-style attribution: "<cycle>: <component>: <Flag>: <text>".
    // One fprintf call keeps a line contiguous under mild concurrency.
    const char *component =
        contextComponent != nullptr ? contextComponent : "global";
    std::fprintf(stderr, "%10llu: %s: %-9s: %s\n",
                 static_cast<unsigned long long>(contextCycle), component,
                 flagName(flag), body);

    if (lineSink != nullptr)
        lineSink(lineSinkObj, flag, contextCycle, contextComponent, body);
}

} // namespace detail

} // namespace gds::debug
