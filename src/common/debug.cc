#include "common/debug.hh"

#include <atomic>
#include <cstdarg>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace gds::debug
{

namespace
{

// Atomics (not plain globals): enabled() is queried from concurrent
// harness workers, and the first queries race to parse GDS_DEBUG.
std::atomic<unsigned> activeMask{0};
std::atomic<bool> parsed{false};
std::mutex parseMutex;

const char *names[] = {"Dispatch", "Prefetch", "Reduce",    "Apply",
                       "Memory",   "Phase",    "Watchdog",  "Fault"};

void
parse(const std::string &list)
{
    unsigned mask = 0;
    std::size_t begin = 0;
    while (begin <= list.size()) {
        std::size_t end = list.find(',', begin);
        if (end == std::string::npos)
            end = list.size();
        const std::string token = list.substr(begin, end - begin);
        if (token == "All" || token == "all") {
            mask = ~0u;
        } else {
            for (unsigned f = 0;
                 f < static_cast<unsigned>(Flag::NumFlags); ++f) {
                if (token == names[f])
                    mask |= 1u << f;
            }
        }
        begin = end + 1;
    }
    activeMask.store(mask, std::memory_order_relaxed);
    parsed.store(true, std::memory_order_release);
}

void
parseEnvOnce()
{
    if (parsed.load(std::memory_order_acquire))
        return;
    const std::lock_guard<std::mutex> lock(parseMutex);
    if (parsed.load(std::memory_order_relaxed))
        return;
    const char *env = std::getenv("GDS_DEBUG");
    parse(env ? env : "");
}

} // namespace

bool
enabled(Flag flag)
{
    parseEnvOnce();
    return (activeMask.load(std::memory_order_relaxed) >>
            static_cast<unsigned>(flag)) & 1u;
}

const char *
flagName(Flag flag)
{
    return names[static_cast<unsigned>(flag)];
}

void
setActiveFlags(const std::string &comma_list)
{
    parse(comma_list);
}

namespace detail
{

void
vprint(Flag flag, const char *fmt, ...)
{
    std::fprintf(stderr, "%-9s: ", flagName(flag));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

} // namespace detail

} // namespace gds::debug
