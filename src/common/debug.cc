#include "common/debug.hh"

#include <cstdarg>
#include <cstdlib>
#include <cstring>

namespace gds::debug
{

namespace
{

unsigned activeMask = 0;
bool parsed = false;

const char *names[] = {"Dispatch", "Prefetch", "Reduce",    "Apply",
                       "Memory",   "Phase",    "Watchdog",  "Fault"};

void
parse(const std::string &list)
{
    activeMask = 0;
    std::size_t begin = 0;
    while (begin <= list.size()) {
        std::size_t end = list.find(',', begin);
        if (end == std::string::npos)
            end = list.size();
        const std::string token = list.substr(begin, end - begin);
        if (token == "All" || token == "all") {
            activeMask = ~0u;
        } else {
            for (unsigned f = 0;
                 f < static_cast<unsigned>(Flag::NumFlags); ++f) {
                if (token == names[f])
                    activeMask |= 1u << f;
            }
        }
        begin = end + 1;
    }
    parsed = true;
}

void
parseEnvOnce()
{
    if (parsed)
        return;
    const char *env = std::getenv("GDS_DEBUG");
    parse(env ? env : "");
}

} // namespace

bool
enabled(Flag flag)
{
    parseEnvOnce();
    return (activeMask >> static_cast<unsigned>(flag)) & 1u;
}

const char *
flagName(Flag flag)
{
    return names[static_cast<unsigned>(flag)];
}

void
setActiveFlags(const std::string &comma_list)
{
    parse(comma_list);
}

namespace detail
{

void
vprint(Flag flag, const char *fmt, ...)
{
    std::fprintf(stderr, "%-9s: ", flagName(flag));
    va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
}

} // namespace detail

} // namespace gds::debug
