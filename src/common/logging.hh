/**
 * @file
 * gem5-flavoured status/error reporting. panic() flags an internal simulator
 * bug and aborts; fatal() flags a user/configuration error and exits;
 * warn()/inform() report without stopping.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace gds
{

namespace detail
{

[[noreturn]] void terminatePanic(const std::string &msg,
                                 const char *file, int line);
[[noreturn]] void terminateFatal(const std::string &msg);
void emit(const char *prefix, const std::string &msg);

/** Emit one already-formatted line through the mutex-serialized stderr
 *  path, verbatim. The low-level chokepoint under common/log. */
void emitRawLine(const std::string &line);

/** Minimal printf-style formatter returning a std::string. */
std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Abort with a message: something happened that is a simulator bug. */
#define panic(...)                                                          \
    ::gds::detail::terminatePanic(::gds::detail::vformat(__VA_ARGS__),      \
                                  __FILE__, __LINE__)

/** Exit with a message: the user asked for something unsupported/invalid. */
#define fatal(...)                                                          \
    ::gds::detail::terminateFatal(::gds::detail::vformat(__VA_ARGS__))

/** Report a suspicious-but-survivable condition. */
#define warn(...)                                                           \
    ::gds::detail::emit("warn: ", ::gds::detail::vformat(__VA_ARGS__))

/** Report normal operating status. */
#define inform(...)                                                         \
    ::gds::detail::emit("info: ", ::gds::detail::vformat(__VA_ARGS__))

/** panic() unless the invariant holds. Always compiled in. */
#define gds_assert(cond, ...)                                               \
    do {                                                                    \
        if (!(cond))                                                        \
            panic("assertion '%s' failed: %s", #cond,                       \
                  ::gds::detail::vformat(__VA_ARGS__).c_str());             \
    } while (0)

} // namespace gds
