#include "common/jsonio.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace gds::common
{

bool
JsonValue::asBool() const
{
    gds_assert(_kind == Kind::Bool, "asBool() on a non-bool JsonValue");
    return _bool;
}

double
JsonValue::asNumber() const
{
    gds_assert(_kind == Kind::Number,
               "asNumber() on a non-number JsonValue");
    return _number;
}

const std::string &
JsonValue::numberLexeme() const
{
    gds_assert(_kind == Kind::Number,
               "numberLexeme() on a non-number JsonValue");
    return _text;
}

const std::string &
JsonValue::asString() const
{
    gds_assert(_kind == Kind::String,
               "asString() on a non-string JsonValue");
    return _text;
}

const JsonValue::Object &
JsonValue::asObject() const
{
    gds_assert(_kind == Kind::Object && _object,
               "asObject() on a non-object JsonValue");
    return *_object;
}

const JsonValue::Array &
JsonValue::asArray() const
{
    gds_assert(_kind == Kind::Array && _array,
               "asArray() on a non-array JsonValue");
    return *_array;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (_kind != Kind::Object || !_object)
        return nullptr;
    const auto it = _object->find(key);
    return it == _object->end() ? nullptr : &it->second;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue();
}

JsonValue
JsonValue::makeBool(bool v)
{
    JsonValue j;
    j._kind = Kind::Bool;
    j._bool = v;
    return j;
}

JsonValue
JsonValue::makeNumber(double v, std::string lexeme)
{
    JsonValue j;
    j._kind = Kind::Number;
    j._number = v;
    j._text = std::move(lexeme);
    return j;
}

JsonValue
JsonValue::makeString(std::string v)
{
    JsonValue j;
    j._kind = Kind::String;
    j._text = std::move(v);
    return j;
}

JsonValue
JsonValue::makeObject(Object v)
{
    JsonValue j;
    j._kind = Kind::Object;
    j._object = std::make_shared<Object>(std::move(v));
    return j;
}

JsonValue
JsonValue::makeArray(Array v)
{
    JsonValue j;
    j._kind = Kind::Array;
    j._array = std::make_shared<Array>(std::move(v));
    return j;
}

namespace
{

/** Recursive-descent JSON reader over one in-memory string. */
class Reader
{
  public:
    explicit Reader(const std::string &text) : in(text) {}

    Result<JsonValue>
    parse()
    {
        skipWs();
        JsonValue v;
        if (const Status s = value(v, 0); !s.ok())
            return s;
        skipWs();
        if (pos != in.size())
            return fail("trailing garbage after JSON value");
        return v;
    }

  private:
    static constexpr std::size_t kMaxDepth = 64;

    Status
    fail(const std::string &what) const
    {
        return Status::failure(ErrorCode::CorruptInput,
                               "byte " + std::to_string(pos) + ": " +
                                   what);
    }

    bool atEnd() const { return pos >= in.size(); }
    char peek() const { return in[pos]; }

    void
    skipWs()
    {
        while (!atEnd() && (in[pos] == ' ' || in[pos] == '\t' ||
                            in[pos] == '\n' || in[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (atEnd() || in[pos] != c)
            return false;
        ++pos;
        return true;
    }

    Status
    literal(const char *word, JsonValue v, JsonValue &out)
    {
        for (const char *p = word; *p != '\0'; ++p) {
            if (atEnd() || in[pos] != *p)
                return fail(std::string("expected '") + word + "'");
            ++pos;
        }
        out = std::move(v);
        return Status();
    }

    Status
    value(JsonValue &out, std::size_t depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
          case 'n':
            return literal("null", JsonValue::makeNull(), out);
          case 't':
            return literal("true", JsonValue::makeBool(true), out);
          case 'f':
            return literal("false", JsonValue::makeBool(false), out);
          case '"':
            return stringValue(out);
          case '{':
            return objectValue(out, depth);
          case '[':
            return arrayValue(out, depth);
          default:
            return numberValue(out);
        }
    }

    Status
    stringBody(std::string &out)
    {
        ++pos; // opening quote
        out.clear();
        while (true) {
            if (atEnd())
                return fail("unterminated string");
            const unsigned char c = static_cast<unsigned char>(in[pos]);
            if (c == '"') {
                ++pos;
                return Status();
            }
            if (c < 0x20)
                return fail("raw control character in string");
            if (c != '\\') {
                out.push_back(static_cast<char>(c));
                ++pos;
                continue;
            }
            ++pos; // backslash
            if (atEnd())
                return fail("unterminated escape");
            const char e = in[pos++];
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                unsigned cp = 0;
                if (const Status s = hex4(cp); !s.ok())
                    return s;
                // Combine a surrogate pair when one follows; a lone
                // surrogate degrades to U+FFFD rather than failing.
                if (cp >= 0xD800 && cp <= 0xDBFF &&
                    pos + 1 < in.size() && in[pos] == '\\' &&
                    in[pos + 1] == 'u') {
                    pos += 2;
                    unsigned lo = 0;
                    if (const Status s = hex4(lo); !s.ok())
                        return s;
                    if (lo >= 0xDC00 && lo <= 0xDFFF) {
                        cp = 0x10000 + ((cp - 0xD800) << 10) +
                             (lo - 0xDC00);
                    } else {
                        cp = 0xFFFD;
                    }
                } else if (cp >= 0xD800 && cp <= 0xDFFF) {
                    cp = 0xFFFD;
                }
                appendUtf8(out, cp);
                break;
              }
              default:
                return fail("unknown escape sequence");
            }
        }
    }

    Status
    hex4(unsigned &out)
    {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd() ||
                !std::isxdigit(static_cast<unsigned char>(in[pos])))
                return fail("bad \\u escape (need 4 hex digits)");
            const char c = in[pos++];
            unsigned digit = 0;
            if (c >= '0' && c <= '9')
                digit = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<unsigned>(c - 'a') + 10;
            else
                digit = static_cast<unsigned>(c - 'A') + 10;
            out = (out << 4) | digit;
        }
        return Status();
    }

    static void
    appendUtf8(std::string &out, unsigned cp)
    {
        if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
        } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else if (cp < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        } else {
            out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
        }
    }

    Status
    stringValue(JsonValue &out)
    {
        std::string s;
        if (const Status st = stringBody(s); !st.ok())
            return st;
        out = JsonValue::makeString(std::move(s));
        return Status();
    }

    Status
    numberValue(JsonValue &out)
    {
        const std::size_t start = pos;
        if (!atEnd() && in[pos] == '-')
            ++pos;
        const auto digits = [&] {
            std::size_t n = 0;
            while (!atEnd() &&
                   std::isdigit(static_cast<unsigned char>(in[pos]))) {
                ++pos;
                ++n;
            }
            return n;
        };
        if (digits() == 0)
            return fail("expected a JSON value");
        if (!atEnd() && in[pos] == '.') {
            ++pos;
            if (digits() == 0)
                return fail("digits required after decimal point");
        }
        if (!atEnd() && (in[pos] == 'e' || in[pos] == 'E')) {
            ++pos;
            if (!atEnd() && (in[pos] == '+' || in[pos] == '-'))
                ++pos;
            if (digits() == 0)
                return fail("digits required in exponent");
        }
        std::string lexeme = in.substr(start, pos - start);
        const double v = std::strtod(lexeme.c_str(), nullptr);
        out = JsonValue::makeNumber(v, std::move(lexeme));
        return Status();
    }

    Status
    objectValue(JsonValue &out, std::size_t depth)
    {
        ++pos; // '{'
        JsonValue::Object members;
        skipWs();
        if (consume('}')) {
            out = JsonValue::makeObject(std::move(members));
            return Status();
        }
        while (true) {
            skipWs();
            if (atEnd() || peek() != '"')
                return fail("expected a quoted object key");
            std::string key;
            if (const Status s = stringBody(key); !s.ok())
                return s;
            skipWs();
            if (!consume(':'))
                return fail("expected ':' after object key");
            skipWs();
            JsonValue member;
            if (const Status s = value(member, depth + 1); !s.ok())
                return s;
            members[key] = std::move(member);
            skipWs();
            if (consume(','))
                continue;
            if (consume('}')) {
                out = JsonValue::makeObject(std::move(members));
                return Status();
            }
            return fail("expected ',' or '}' in object");
        }
    }

    Status
    arrayValue(JsonValue &out, std::size_t depth)
    {
        ++pos; // '['
        JsonValue::Array elems;
        skipWs();
        if (consume(']')) {
            out = JsonValue::makeArray(std::move(elems));
            return Status();
        }
        while (true) {
            skipWs();
            JsonValue elem;
            if (const Status s = value(elem, depth + 1); !s.ok())
                return s;
            elems.push_back(std::move(elem));
            skipWs();
            if (consume(','))
                continue;
            if (consume(']')) {
                out = JsonValue::makeArray(std::move(elems));
                return Status();
            }
            return fail("expected ',' or ']' in array");
        }
    }

    const std::string &in;
    std::size_t pos = 0;
};

} // namespace

Result<JsonValue>
parseJson(const std::string &text)
{
    return Reader(text).parse();
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (const unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

} // namespace gds::common
