/**
 * @file
 * Structured, leveled logging for the service and harness layers.
 *
 * Every line the project emits on stderr funnels through one
 * mutex-serialized chokepoint (common/logging's emit path), so concurrent
 * workers never interleave partial lines. This layer adds, on top of that
 * chokepoint:
 *
 *  - severity levels (debug < info < warn < error) with a process-wide
 *    threshold read once from GDS_LOG_LEVEL (default "info");
 *  - two output formats selected by GDS_LOG_FORMAT: "human" (the
 *    traditional `warn: message (key=value)` lines) and "json" (one JSON
 *    object per line, machine-ingestable by log shippers);
 *  - a per-subsystem tag ("svc", "harness", "daemon", ...) so a fleet of
 *    daemons can be filtered by layer; and
 *  - structured correlation fields — most importantly the per-job "job"
 *    (jobId) and "configHash" fields the simulation service attaches, so
 *    one job's queue/load/sim/validate lifecycle can be grepped out of a
 *    busy daemon's log.
 *
 * The legacy warn()/inform() macros (common/logging.hh) are not going
 * away: their backend now routes through this layer, so every existing
 * call site inherits level filtering and the JSON format for free. New
 * code in the service/harness layers should prefer the field-carrying
 * helpers below.
 *
 * Both knobs are parsed through common/parse (GDS_LOG_LEVEL /
 * GDS_LOG_FORMAT are read via parseEnvStr, honoring the
 * env-knob-discipline lint rule); an unknown value warns once and falls
 * back to the documented default.
 */

#pragma once

#include <string>
#include <vector>

#include "common/logging.hh"

namespace gds::log
{

/** Severity levels, least to most severe. */
enum class Level
{
    Debug = 0,
    Info,
    Warn,
    Error,
};

/** Lowercase level name ("debug", "info", "warn", "error"). */
const char *levelName(Level level);

/** Output formats (GDS_LOG_FORMAT). */
enum class Format
{
    Human, ///< `warn: [svc] message (job=j1)` — the traditional lines
    Json,  ///< `{"level":"warn","subsys":"svc","msg":...,"job":"j1"}`
};

/**
 * The process-wide emission threshold: lines below it are dropped.
 * Read once from GDS_LOG_LEVEL ("debug", "info", "warn" or "error");
 * unset or unknown values fall back to Info (unknown warns once).
 */
Level threshold();

/** The process-wide output format, read once from GDS_LOG_FORMAT
 *  ("human" or "json"; unknown warns once and falls back to human). */
Format format();

/** One structured correlation field (rendered as key=value / JSON). */
struct Field
{
    std::string key;
    std::string value;
};

using Fields = std::vector<Field>;

/**
 * Render one line in the human format:
 * `<level>: [<subsys>] <msg> (k=v, k=v)`. The subsystem bracket and the
 * field list are omitted when empty, which makes plain warn()/inform()
 * output byte-identical to the historical `warn: <msg>` lines.
 */
std::string formatHuman(Level level, const std::string &subsys,
                        const std::string &msg, const Fields &fields);

/**
 * Render one line in the JSON format: a single RFC 8259 object with
 * "level", "subsys" (when non-empty), "msg" and one member per field, in
 * field order. Deterministic: no timestamp or pid members, so log lines
 * are byte-comparable across runs (shippers stamp arrival times).
 */
std::string formatJson(Level level, const std::string &subsys,
                       const std::string &msg, const Fields &fields);

/**
 * Emit one line through the serialized stderr path iff @p level passes
 * threshold(). The format is chosen by format().
 */
void write(Level level, const std::string &subsys, const Fields &fields,
           const std::string &msg);

/** printf-style write(). The fields ride along unformatted. */
void writef(Level level, const std::string &subsys, const Fields &fields,
            const char *fmt, ...) __attribute__((format(printf, 4, 5)));

// Convenience wrappers, one per level.

template <typename... Args>
void
debugf(const std::string &subsys, const Fields &fields, const char *fmt,
       Args... args)
{
    writef(Level::Debug, subsys, fields, fmt, args...);
}

template <typename... Args>
void
infof(const std::string &subsys, const Fields &fields, const char *fmt,
      Args... args)
{
    writef(Level::Info, subsys, fields, fmt, args...);
}

template <typename... Args>
void
warnf(const std::string &subsys, const Fields &fields, const char *fmt,
      Args... args)
{
    writef(Level::Warn, subsys, fields, fmt, args...);
}

template <typename... Args>
void
errorf(const std::string &subsys, const Fields &fields, const char *fmt,
       Args... args)
{
    writef(Level::Error, subsys, fields, fmt, args...);
}

} // namespace gds::log
