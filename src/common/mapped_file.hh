/**
 * @file
 * Read-only memory-mapped files for the zero-copy dataset layer.
 *
 * Large immutable graph arrays (the binary CSR cache) are served straight
 * from the page cache instead of being copied into heap vectors: mapping
 * is O(1) in the file size, concurrent processes (daemon restarts, the
 * evaluation matrix and the service sharing one cache directory) share
 * physical pages, and memory pressure evicts clean pages instead of
 * swapping anonymous heap. The wrapper owns the fd and the mapping
 * (munmap/close in the destructor) and hands out bounds-checked typed
 * views; consumers keep the file alive through a shared_ptr.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/error.hh"

namespace gds::common
{

/**
 * An immutable, shared, memory-mapped view of a whole file.
 *
 * Mappings are PROT_READ/MAP_SHARED: every process mapping the same
 * dataset file shares one set of physical pages. Empty files map to a
 * null, zero-length view (valid, never dereferenced).
 */
class MappedFile
{
  public:
    /**
     * Map @p path read-only in its entirety.
     *
     * @throws ConfigError when the file cannot be opened or stat'ed
     * @throws CorruptInputError when the mapping itself fails
     */
    static std::shared_ptr<const MappedFile> open(const std::string &path);

    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const std::byte *data() const { return base; }
    std::size_t size() const { return length; }
    const std::string &path() const { return file_path; }

    /**
     * A typed view of @p count elements of T starting at byte @p offset.
     * Alignment and bounds are checked against the live mapping, so a
     * file truncated after its header was written (a "short map") raises
     * a typed error instead of a SIGBUS at first dereference.
     *
     * @throws CorruptInputError when the range leaves the mapping or is
     *         misaligned for T
     */
    template <typename T>
    std::span<const T>
    viewAt(std::uint64_t offset, std::uint64_t count) const
    {
        checkRange(offset, count, sizeof(T), alignof(T));
        return std::span<const T>(
            reinterpret_cast<const T *>(base + offset),
            static_cast<std::size_t>(count));
    }

    /**
     * Advise the kernel that [offset, offset+len) will be needed soon
     * (readahead). Best effort: failures are ignored, the hint can only
     * affect performance.
     */
    void adviseWillNeed(std::uint64_t offset, std::uint64_t len) const;

    /** Advise sequential access over [offset, offset+len). Best effort. */
    void adviseSequential(std::uint64_t offset, std::uint64_t len) const;

  private:
    MappedFile(std::string mapped_path, const std::byte *map_base,
               std::size_t map_length)
        : file_path(std::move(mapped_path)), base(map_base),
          length(map_length)
    {}

    void checkRange(std::uint64_t offset, std::uint64_t count,
                    std::size_t elem_size, std::size_t elem_align) const;

    std::string file_path;
    const std::byte *base = nullptr;
    std::size_t length = 0;
};

} // namespace gds::common
