#include "common/socket.hh"

#include <cerrno>
#include <cstring>
#include <utility>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace gds::common
{

namespace
{

Status
errnoStatus(const char *what)
{
    return Status::failure(ErrorCode::Internal,
                           std::string(what) + ": " +
                               std::strerror(errno));
}

/** sockaddr_un for @p path; sun_path is a fixed 108-byte array. */
Status
fillAddr(const std::string &path, sockaddr_un &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path)) {
        return Status::failure(
            ErrorCode::Config,
            "socket path must be 1.." +
                std::to_string(sizeof(addr.sun_path) - 1) +
                " bytes: '" + path + "'");
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return Status();
}

/** Wait for readability/writability; 0 = timed out, 1 = ready, -1 = error. */
int
waitFd(int fd, short events, int timeout_ms)
{
    pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc >= 0)
            return rc > 0 ? 1 : 0;
        if (errno != EINTR)
            return -1;
        // EINTR: retry. A drain signal interrupting poll() is noticed by
        // the caller's own stop flag on the next loop, not here.
    }
}

} // namespace

LineChannel::~LineChannel()
{
    close();
}

LineChannel::LineChannel(LineChannel &&other) noexcept
    : _fd(other._fd), buffered(std::move(other.buffered))
{
    other._fd = -1;
}

LineChannel &
LineChannel::operator=(LineChannel &&other) noexcept
{
    if (this != &other) {
        close();
        _fd = other._fd;
        buffered = std::move(other.buffered);
        other._fd = -1;
    }
    return *this;
}

void
LineChannel::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
    buffered.clear();
}

Status
LineChannel::readLine(std::string &line, int timeout_ms,
                      std::size_t max_line)
{
    gds_assert(open(), "readLine() on a closed channel");
    for (;;) {
        const std::size_t nl = buffered.find('\n');
        if (nl != std::string::npos) {
            line = buffered.substr(0, nl);
            buffered.erase(0, nl + 1);
            return Status();
        }
        if (buffered.size() > max_line) {
            return Status::failure(ErrorCode::CorruptInput,
                                   "request line exceeds " +
                                       std::to_string(max_line) +
                                       " bytes");
        }
        const int ready = waitFd(_fd, POLLIN, timeout_ms);
        if (ready < 0)
            return errnoStatus("poll");
        if (ready == 0)
            return Status::failure(ErrorCode::Timeout,
                                   "timed out waiting for a line");
        char chunk[4096];
        const ssize_t n = ::recv(_fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            if (errno == EINTR || errno == EAGAIN)
                continue;
            return errnoStatus("recv");
        }
        if (n == 0) {
            if (buffered.empty()) {
                return Status::failure(ErrorCode::Stopped,
                                       "connection closed");
            }
            return Status::failure(ErrorCode::CorruptInput,
                                   "connection closed mid-line");
        }
        buffered.append(chunk, static_cast<std::size_t>(n));
    }
}

Status
LineChannel::writeLine(const std::string &line)
{
    gds_assert(open(), "writeLine() on a closed channel");
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
        // MSG_NOSIGNAL: a vanished client surfaces as EPIPE, not a
        // process-killing SIGPIPE in the middle of the daemon.
        const ssize_t n = ::send(_fd, out.data() + off, out.size() - off,
                                 MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return errnoStatus("send");
        }
        off += static_cast<std::size_t>(n);
    }
    return Status();
}

UnixListener::~UnixListener()
{
    close();
}

void
UnixListener::close()
{
    if (_fd >= 0) {
        ::close(_fd);
        _fd = -1;
    }
    if (!_path.empty()) {
        ::unlink(_path.c_str());
        _path.clear();
    }
}

Status
UnixListener::bind(const std::string &path, int backlog)
{
    gds_assert(!listening(), "listener already bound to '%s'",
               _path.c_str());
    sockaddr_un addr;
    if (const Status s = fillAddr(path, addr); !s.ok())
        return s;

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return errnoStatus("socket");

    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        if (errno != EADDRINUSE) {
            const Status s = errnoStatus("bind");
            ::close(fd);
            return s;
        }
        // A socket file exists. If a live daemon answers, refuse; if it
        // is a leftover from a dead process, replace it.
        const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        const bool alive =
            probe >= 0 &&
            ::connect(probe, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0;
        if (probe >= 0)
            ::close(probe);
        if (alive) {
            ::close(fd);
            return Status::failure(ErrorCode::Resource,
                                   "another daemon is already listening "
                                   "on '" + path + "'");
        }
        ::unlink(path.c_str());
        if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
                   sizeof(addr)) < 0) {
            const Status s = errnoStatus("bind");
            ::close(fd);
            return s;
        }
    }

    if (::listen(fd, backlog) < 0) {
        const Status s = errnoStatus("listen");
        ::close(fd);
        ::unlink(path.c_str());
        return s;
    }
    _fd = fd;
    _path = path;
    return Status();
}

Result<LineChannel>
UnixListener::accept(int timeout_ms)
{
    gds_assert(listening(), "accept() on a closed listener");
    const int ready = waitFd(_fd, POLLIN, timeout_ms);
    if (ready < 0)
        return errnoStatus("poll");
    if (ready == 0) {
        return Status::failure(ErrorCode::Timeout,
                               "no connection within the accept window");
    }
    const int client = ::accept(_fd, nullptr, nullptr);
    if (client < 0)
        return errnoStatus("accept");
    return LineChannel(client);
}

Result<LineChannel>
connectUnix(const std::string &path, int timeout_ms)
{
    sockaddr_un addr;
    if (const Status s = fillAddr(path, addr); !s.ok())
        return s;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return errnoStatus("socket");
    (void)timeout_ms; // local sockets connect immediately or fail
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        const Status s = Status::failure(
            ErrorCode::Resource, "cannot connect to '" + path + "': " +
                                     std::strerror(errno));
        ::close(fd);
        return s;
    }
    return LineChannel(fd);
}

} // namespace gds::common
