/**
 * @file
 * Experiment harness shared by every figure-regeneration bench and the
 * examples: it knows how to build each evaluated system (GraphDynS with
 * any ablation configuration, Graphicionado, GunrockSim), run one
 * (algorithm, dataset) cell, attach the energy model, and cache results
 * on disk so the many benches that share the 5-algorithms x 6-datasets x
 * 3-systems matrix only simulate each cell once.
 */

#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "algo/vcpm.hh"
#include "baseline/graphicionado.hh"
#include "baseline/gunrock_sim.hh"
#include "core/gds_accel.hh"
#include "graph/datasets.hh"

namespace gds::harness
{

/** The three evaluated systems. */
enum class SystemId
{
    GraphDynS,
    Graphicionado,
    Gunrock,
};

std::string systemName(SystemId id);

/** GraphDynS ablation configurations (Fig. 14c naming). */
enum class GdsVariant
{
    Full,  ///< WEAU: all four techniques (the default GraphDynS)
    Wb,    ///< workload balancing only
    We,    ///< WB + exact prefetching
    Wea,   ///< WE + zero-stall atomics
    NoWb,  ///< everything except workload balancing (Fig. 14a baseline)
};

std::string variantName(GdsVariant v);

/** Outcome of one (system, algorithm, dataset) cell. */
struct RunRecord
{
    std::string system;
    std::string algorithm;
    std::string dataset;
    /**
     * "ok" for a completed run, otherwise the ErrorCode name of what went
     * wrong ("deadlock", "cycle-limit", "config", ...). Failed cells are
     * reported but never cached, so a rerun retries them.
     */
    std::string status = "ok";
    unsigned iterations = 0;
    double seconds = 0.0;
    double gteps = 0.0;
    double memoryBytes = 0.0;
    double footprintBytes = 0.0;
    double bandwidthUtilization = 0.0;
    double energyJoules = 0.0;
    double schedulingOps = 0.0;
    double atomicStalls = 0.0;
    double updatesSkipped = 0.0;
    double vertexUpdates = 0.0;
    double edgesProcessed = 0.0;
    /** FNV-1a fingerprint of the effective configuration (provenance). */
    std::string configHash;
    /** Wall-clock split of the cell (see harness/walltime.hh). */
    double wallLoadSeconds = 0.0;
    double wallSimSeconds = 0.0;
    double wallValidateSeconds = 0.0;

    bool ok() const { return status == "ok"; }
};

/** Iteration cap policy: PR runs a fixed budget, others to convergence. */
unsigned iterationCap(algo::AlgorithmId id);

/** Deterministic source policy (highest-degree vertex for traversals). */
VertexId sourceFor(algo::AlgorithmId id, const graph::Csr &g);

/**
 * Materialize a Table 4 dataset at the global scale divisor, with a
 * binary-file cache beside the working directory so repeated bench
 * invocations skip generation. A corrupt or truncated cache file is
 * removed and the dataset regenerated (with a warning), never fatal.
 * The cache file is written atomically (temp file + rename), so a crash
 * or a concurrent process can never leave a truncated cache behind.
 *
 * By default a cached dataset is served zero-copy: the returned Csr's
 * arrays are views into a read-only mapping of the cache file, so a
 * cache hit costs no array copies and concurrent processes share the
 * same page-cache pages. GDS_DATASET_MMAP=0 forces heap copies instead;
 * simulation results are bit-identical either way.
 */
graph::Csr loadDataset(const std::string &name, bool weighted);

/** Whether loadDataset() serves cached datasets via mmap (GDS_DATASET_MMAP,
 *  default on). */
bool datasetMmapEnabled();

/** The on-disk cache filename loadDataset() uses for a dataset. */
std::string datasetCachePath(const std::string &name, unsigned scale,
                             bool weighted);

/**
 * Per-cell cycle budget applied to every simulated run (GraphDynS and
 * Graphicionado): the GDS_CELL_BUDGET environment variable when set,
 * otherwise 50e9 cycles (50 s at the 1 GHz clock). Like every harness
 * env knob, the value is parsed strictly (common::parseEnvU64): a
 * signed, non-numeric, trailing-garbage or overflowing value is
 * rejected with a warning and the documented default is used — it can
 * never wrap around to a nonsense budget.
 */
Cycle cellCycleBudget();

/**
 * Per-cell wall-clock budget in seconds: the GDS_CELL_WALL_BUDGET
 * environment variable when set (fractional values allowed), otherwise 0
 * (no wall-clock limit). A cell that exceeds it is reaped at the next
 * watchdog boundary and recorded with status "timeout".
 */
double cellWallBudgetSeconds();

/**
 * How many times a transiently failed cell is retried before its failure
 * is recorded: the GDS_CELL_RETRIES environment variable when set,
 * otherwise 2. Only "internal", "checkpoint" and "corrupt-input" errors
 * count as transient; verdicts about the run itself (deadlock, budget
 * exhaustion, a requested stop) are never retried.
 */
unsigned cellRetryLimit();

/**
 * Checkpoint policy for one cell, keyed by its config hash. Disabled
 * (empty dir) unless the GDS_CHECKPOINT_DIR environment variable names a
 * directory; then each cell periodically checkpoints there (every
 * GDS_CHECKPOINT_INTERVAL cycles, default 100e6) under a basename derived
 * from the algorithm, dataset and config hash, and resumes from its own
 * previous checkpoint when one is present — a preempted evaluation matrix
 * picks up mid-cell instead of restarting cells from cycle zero.
 */
core::CheckpointOptions cellCheckpointOptions(const std::string &algorithm,
                                              const std::string &dataset,
                                              const std::string &config_hash);

/**
 * Run one cell's compute function, degrading failure into data: a thrown
 * SimError (bad config, corrupt dataset, watchdog verdict) becomes a
 * RunRecord whose status names the error, so the surrounding bench keeps
 * emitting its remaining cells. Transient failures (see cellRetryLimit())
 * are retried with capped exponential backoff before being recorded.
 */
RunRecord runCell(const std::string &system, algo::AlgorithmId algorithm,
                  const std::string &dataset,
                  const std::function<RunRecord()> &compute);

/** Apply a variant to a base GraphDynS configuration. */
core::GdsConfig applyVariant(core::GdsConfig cfg, GdsVariant v);

/**
 * Per-job overrides for the env-driven cell policy. The evaluation
 * matrix passes none (every cell reads GDS_CELL_BUDGET & friends once
 * per run); the simulation-service daemon builds one per request so
 * concurrent jobs can carry different budgets, sources and checkpoint
 * options without touching shared process environment.
 */
struct CellPolicy
{
    /** Cycle budget; 0 falls back to cellCycleBudget(). */
    Cycle cycleBudget = 0;
    /** Wall budget in seconds; negative falls back to
     *  cellWallBudgetSeconds(); 0 means "no wall limit". */
    double wallBudgetSeconds = -1.0;
    /** Source vertex; unset falls back to sourceFor(). */
    std::optional<VertexId> source;
    /** Iteration cap; unset falls back to iterationCap(). */
    std::optional<unsigned> iterations;
    /** Checkpoint options; null falls back to cellCheckpointOptions()
     *  (the GDS_CHECKPOINT_DIR policy). Not owned; must outlive the run. */
    const core::CheckpointOptions *checkpoint = nullptr;
    /**
     * Interval sampler to attach to the run (core::RunOptions::sampler):
     * the simulation service uses it, with Sampler::setOnSample, to
     * stream live progress to subscribed clients. Not owned; must
     * outlive the run. Null leaves sampling off (the matrix default).
     */
    obs::Sampler *sampler = nullptr;
};

/** Run one cell on GraphDynS (optionally an ablation variant). */
RunRecord runGds(algo::AlgorithmId algorithm, const std::string &dataset,
                 const graph::Csr &g, GdsVariant variant = GdsVariant::Full,
                 const core::GdsConfig *base = nullptr,
                 const CellPolicy *policy = nullptr);

/** Run one cell on Graphicionado. */
RunRecord runGraphicionado(algo::AlgorithmId algorithm,
                           const std::string &dataset, const graph::Csr &g,
                           const CellPolicy *policy = nullptr);

/** Run one cell on GunrockSim. */
RunRecord runGunrock(algo::AlgorithmId algorithm,
                     const std::string &dataset, const graph::Csr &g);

/**
 * Disk-backed result cache. Keys combine system/variant, algorithm,
 * dataset and the scale divisor; the file lives in the current working
 * directory ("gds_bench_cache_v1.csv"). Delete it to force re-simulation.
 *
 * The file carries a format-version header; a cache written by an
 * incompatible build is ignored wholesale, and individually corrupt lines
 * are skipped with a warning. The file doubles as an append journal:
 * store() appends (and flushes) one line, so an interrupted run keeps its
 * progress without rewriting the whole file per cell, and the destructor
 * compacts the journal once via an atomic temp-file + rename (duplicate
 * keys collapse, last write wins).
 *
 * All public members are safe to call from concurrent workers; compute
 * functions passed to getOrRun() run outside the cache lock.
 */
class ResultCache
{
  public:
    ResultCache();
    ~ResultCache();

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Fetch a cached record, or run @p compute. Only successful records
     * are cached; a failed cell is returned but retried on the next run.
     * Concurrent callers racing on the same missing key may each run
     * @p compute; the last store wins (cell computations are
     * deterministic, so every caller still sees the same values).
     */
    template <typename Fn>
    RunRecord
    getOrRun(const std::string &key, Fn &&compute)
    {
        if (auto found = lookup(key))
            return *found;
        RunRecord record = compute();
        if (record.ok())
            store(key, record);
        return record;
    }

    std::optional<RunRecord> lookup(const std::string &key) const;

    /**
     * Record a cell result and append it to the on-disk journal. Throws
     * ConfigError (storing nothing) if the key or any string field
     * contains a comma, newline or other control character: such a line
     * would re-parse with silently shifted columns.
     */
    void store(const std::string &key, const RunRecord &record);

  private:
    void load();
    void appendLocked(const std::string &key, const RunRecord &record);
    void compactLocked();

    mutable std::mutex mu;
    std::map<std::string, RunRecord> entries;
    std::ofstream journal;
    bool needs_header = false;  ///< file absent/rejected: rewrite on open
    bool journal_failed = false;
    std::uint64_t appended = 0; ///< journal lines since load
};

/** Cache key for a cell. */
std::string cellKey(const std::string &system_tag, algo::AlgorithmId id,
                    const std::string &dataset);

/**
 * The paper's main evaluation matrix: 5 algorithms x the 6 real-world
 * datasets x 3 systems (Figs. 6, 7, 9, 11, 12, 13 all read from it).
 * Cells are simulated once and cached.
 *
 * Provenance: every completed call writes manifest.json in the working
 * directory recording, per cell, the config hash, dataset + seed, the
 * build's git SHA, simulated + wall time (load/sim/validate split) and
 * the outcome — whether the cell was simulated now or served from the
 * cache (see harness/manifest.hh).
 *
 * Cold cells run concurrently on jobCount() workers (GDS_JOBS env;
 * GDS_JOBS=1 forces the serial path). Each dataset is loaded exactly once
 * per (name, weighted) combination regardless of worker interleaving and
 * is released as soon as its last cell completes. The returned records
 * are always in the serial traversal order — byte-identical whatever the
 * worker count — and progress is reported live on stderr
 * ("[harness] 42/90 cells, 3 running").
 */
std::vector<RunRecord> evaluationMatrix(ResultCache &cache);

/** Find a cell in a record list; fatal() if absent. */
const RunRecord &findRecord(const std::vector<RunRecord> &records,
                            const std::string &system,
                            const std::string &algorithm,
                            const std::string &dataset);

/**
 * Find a *successful* cell, or nullptr when the cell is absent or failed.
 * Benches use this to skip rows for cells that could not be simulated.
 */
const RunRecord *tryFindRecord(const std::vector<RunRecord> &records,
                               const std::string &system,
                               const std::string &algorithm,
                               const std::string &dataset);

// ---------------------------------------------------------------------
// Reporting helpers.
// ---------------------------------------------------------------------

/** Geometric mean of a series (ignores non-positive values). */
double geometricMean(const std::vector<double> &values);

/**
 * Serialize records as a JSON array (status field included), for
 * machine consumption next to stats::dumpJson.
 */
void dumpRecordsJson(const std::vector<RunRecord> &records,
                     std::ostream &os);

/**
 * Print a table: header row, one row per entry, fixed-width columns.
 * Used by every figure bench to emit the paper's rows.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> columns);

    void addRow(std::vector<std::string> cells);
    void print() const;

    /** Format helper: fixed-precision double. */
    static std::string num(double v, int precision = 2);

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace gds::harness
