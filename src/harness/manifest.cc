#include "harness/manifest.hh"

#include <fstream>
#include <sstream>

#include "common/bitutil.hh"
#include "common/logging.hh"
#include "graph/datasets.hh"
#include "stats/json.hh"

namespace gds::harness
{

std::uint64_t
fnv1a(std::string_view data)
{
    return fnv1a64(data.data(), data.size());
}

std::string
hashHex(std::uint64_t value)
{
    static const char digits[] = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[value & 0xf];
        value >>= 4;
    }
    return out;
}

namespace
{

/** Field-by-field serializer feeding fnv1a: every field is named, so two
 *  configs differing in any single knob hash differently, and reordering
 *  the struct cannot silently collide. */
class FieldHasher
{
  public:
    template <typename T>
    FieldHasher &
    field(const char *fieldName, const T &value)
    {
        os << fieldName << '=' << value << ';';
        return *this;
    }

    std::string hex() const { return hashHex(fnv1a(os.str())); }

  private:
    std::ostringstream os;
};

void
hashHbm(FieldHasher &h, const mem::HbmConfig &m)
{
    h.field("hbm.numChannels", m.numChannels)
        .field("hbm.banksPerChannel", m.banksPerChannel)
        .field("hbm.rowBytes", m.rowBytes)
        .field("hbm.txBytes", m.txBytes)
        .field("hbm.tBurst", m.tBurst)
        .field("hbm.tCl", m.tCl)
        .field("hbm.tRcd", m.tRcd)
        .field("hbm.tRp", m.tRp)
        .field("hbm.tCcd", m.tCcd)
        .field("hbm.tRrd", m.tRrd)
        .field("hbm.tRefi", m.tRefi)
        .field("hbm.tRfcPerBank", m.tRfcPerBank)
        .field("hbm.queueDepth", m.queueDepth)
        .field("hbm.frfcfsWindow", m.frfcfsWindow);
}

} // namespace

std::string
configHash(const core::GdsConfig &cfg)
{
    FieldHasher h;
    h.field("model", "graphdyns")
        .field("numDispatchers", cfg.numDispatchers)
        .field("numPes", cfg.numPes)
        .field("nSimt", cfg.nSimt)
        .field("numUes", cfg.numUes)
        .field("eThreshold", cfg.eThreshold)
        .field("eListSize", cfg.eListSize)
        .field("vListSize", cfg.vListSize)
        .field("vbBytesPerUe", cfg.vbBytesPerUe)
        .field("rbGroupSize", cfg.rbGroupSize)
        .field("ueQueueDepth", cfg.ueQueueDepth)
        .field("peQueueEdges", cfg.peQueueEdges)
        .field("vpbRecords", cfg.vpbRecords)
        .field("applyListQueue", cfg.applyListQueue)
        .field("auBatchRecords", cfg.auBatchRecords)
        .field("vbLatency", cfg.vbLatency)
        .field("vprefBatch", cfg.vprefBatch)
        .field("vprefMaxInflight", cfg.vprefMaxInflight)
        .field("eprefMaxInflight", cfg.eprefMaxInflight)
        .field("eprefBufferEdges", cfg.eprefBufferEdges)
        .field("applyMaxInflightGroups", cfg.applyMaxInflightGroups)
        .field("workloadBalance", cfg.workloadBalance)
        .field("exactPrefetch", cfg.exactPrefetch)
        .field("zeroStallAtomics", cfg.zeroStallAtomics)
        .field("updateScheduling", cfg.updateScheduling)
        .field("maxIterations", cfg.maxIterations);
    hashHbm(h, cfg.hbm);
    return h.hex();
}

std::string
configHash(const baseline::GraphicionadoConfig &cfg)
{
    FieldHasher h;
    h.field("model", "graphicionado")
        .field("numStreams", cfg.numStreams)
        .field("onChipBytes", cfg.onChipBytes)
        .field("atomicPipelineDepth", cfg.atomicPipelineDepth)
        .field("vprefBatch", cfg.vprefBatch)
        .field("vprefMaxInflight", cfg.vprefMaxInflight)
        .field("streamLookahead", cfg.streamLookahead)
        .field("streamQueueRecords", cfg.streamQueueRecords)
        .field("edgeMaxInflight", cfg.edgeMaxInflight)
        .field("applyMaxInflight", cfg.applyMaxInflight)
        .field("maxIterations", cfg.maxIterations);
    hashHbm(h, cfg.hbm);
    return h.hex();
}

std::string
configHash(const baseline::GunrockConfig &cfg)
{
    FieldHasher h;
    h.field("model", "gunrock")
        .field("clockGhz", cfg.clockGhz)
        .field("numCores", cfg.numCores)
        .field("warpSize", cfg.warpSize)
        .field("memBandwidthGBs", cfg.memBandwidthGBs)
        .field("cachelineBytes", cfg.cachelineBytes)
        .field("cyclesPerEdge", cfg.cyclesPerEdge)
        .field("cyclesPerApply", cfg.cyclesPerApply)
        .field("atomicSerializeNs", cfg.atomicSerializeNs)
        .field("vertexPropHitRate", cfg.vertexPropHitRate)
        .field("kernelLaunchUs", cfg.kernelLaunchUs)
        .field("preprocessNsPerEdge", cfg.preprocessNsPerEdge)
        .field("preprocessNsPerVertex", cfg.preprocessNsPerVertex)
        .field("idlePowerW", cfg.idlePowerW)
        .field("activePowerW", cfg.activePowerW)
        .field("maxIterations", cfg.maxIterations);
    return h.hex();
}

const char *
buildGitSha()
{
#ifdef GDS_GIT_SHA
    return GDS_GIT_SHA;
#else
    return "unknown";
#endif
}

void
Manifest::add(ManifestCell cell)
{
    const std::lock_guard<std::mutex> lock(mu);
    cells.push_back(std::move(cell));
}

std::size_t
Manifest::size() const
{
    const std::lock_guard<std::mutex> lock(mu);
    return cells.size();
}

void
Manifest::write(std::ostream &os) const
{
    const std::lock_guard<std::mutex> lock(mu);
    auto str = [&os](const char *fieldName, const std::string &value) {
        stats::emitJsonString(os, fieldName);
        os << ':';
        stats::emitJsonString(os, value);
    };
    auto num = [&os](const char *fieldName, double value) {
        stats::emitJsonString(os, fieldName);
        os << ':';
        stats::emitJsonNumber(os, value);
    };
    os << '{';
    str("gitSha", buildGitSha());
    os << ',';
    num("scaleDivisor", graph::datasetScaleDivisor());
    os << ',';
    stats::emitJsonString(os, "cells");
    os << ":[";
    bool first = true;
    for (const ManifestCell &c : cells) {
        if (!first)
            os << ',';
        first = false;
        os << '{';
        str("key", c.key);
        os << ',';
        str("system", c.system);
        os << ',';
        str("algorithm", c.algorithm);
        os << ',';
        str("dataset", c.dataset);
        os << ',';
        num("seed", static_cast<double>(c.seed));
        os << ',';
        str("configHash", c.configHash);
        os << ',';
        str("outcome", c.outcome);
        os << ',';
        stats::emitJsonString(os, "cached");
        os << ':' << (c.cached ? "true" : "false") << ',';
        num("simulatedSeconds", c.simulatedSeconds);
        os << ',';
        num("wallLoadSeconds", c.wallLoadSeconds);
        os << ',';
        num("wallSimSeconds", c.wallSimSeconds);
        os << ',';
        num("wallValidateSeconds", c.wallValidateSeconds);
        os << ',';
        num("peakRssBytes", c.peakRssBytes);
        os << '}';
    }
    os << "]}\n";
}

bool
Manifest::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (out)
        write(out);
    if (!out) {
        warn("cannot write manifest '%s'", path.c_str());
        return false;
    }
    return true;
}

} // namespace gds::harness
