/**
 * @file
 * Harness-facing aliases for the shared worker-pool scheduler. The
 * implementation moved to common/parallel.hh so the graph build pipeline
 * can use the same pool without a graph→harness dependency cycle; the
 * historical harness::ThreadPool / harness::parallelFor / harness::
 * jobCount spellings keep working through these using-declarations.
 */

#pragma once

#include "common/parallel.hh"

namespace gds::harness
{

using common::jobCount;
using common::parallelFor;
using common::ThreadPool;

} // namespace gds::harness
