/**
 * @file
 * Wall-clock instrumentation for harness cells. A ScopedWallTimer
 * accumulates the scope's elapsed wall time into a caller-owned double,
 * so one cell can split its cost into load / simulate / validate spans
 * that end up in the result cache and the run manifest.
 */

#pragma once

#include <chrono>

namespace gds::harness
{

/** Accumulates the scope's elapsed wall-clock seconds into @p target. */
class ScopedWallTimer
{
  public:
    explicit ScopedWallTimer(double &target)
        : _target(&target), _start(Clock::now())
    {}

    ~ScopedWallTimer() { *_target += elapsedSeconds(); }

    ScopedWallTimer(const ScopedWallTimer &) = delete;
    ScopedWallTimer &operator=(const ScopedWallTimer &) = delete;

    /** Seconds elapsed since construction (the scope is still open). */
    double
    elapsedSeconds() const
    {
        const std::chrono::duration<double> d = Clock::now() - _start;
        return d.count();
    }

  private:
    using Clock = std::chrono::steady_clock;

    double *_target;
    Clock::time_point _start;
};

} // namespace gds::harness
