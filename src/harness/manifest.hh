/**
 * @file
 * Run provenance manifests. Every evaluationMatrix cell records what was
 * run (system, algorithm, dataset, seed), against which code (git SHA
 * baked in at build time) and which configuration (an FNV-1a hash over
 * every config field), how it ended (outcome), and what it cost
 * (simulated seconds + wall-clock load/sim/validate split). The manifest
 * is written as manifest.json next to the result cache, so a cached
 * figure can always be traced back to the exact runs that produced it.
 */

#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "baseline/graphicionado.hh"
#include "baseline/gunrock_sim.hh"
#include "core/config.hh"

namespace gds::harness
{

/** FNV-1a 64-bit hash (provenance fingerprints, not cryptography). */
std::uint64_t fnv1a(std::string_view data);

/** 16-digit lowercase hex rendering of a 64-bit hash. */
std::string hashHex(std::uint64_t value);

/** Fingerprint over every GdsConfig field (HBM geometry included). */
std::string configHash(const core::GdsConfig &cfg);

/** Fingerprint over every GraphicionadoConfig field. */
std::string configHash(const baseline::GraphicionadoConfig &cfg);

/** Fingerprint over every GunrockConfig field. */
std::string configHash(const baseline::GunrockConfig &cfg);

/** The git SHA this binary was built from ("unknown" outside a repo). */
const char *buildGitSha();

/** Provenance of one evaluation cell. */
struct ManifestCell
{
    std::string key;        ///< result-cache key
    std::string system;
    std::string algorithm;
    std::string dataset;
    std::uint64_t seed = 0; ///< dataset generator seed
    std::string configHash; ///< fingerprint of the effective config
    std::string outcome;    ///< RunRecord::status
    bool cached = false;    ///< served from the result cache, not re-run
    double simulatedSeconds = 0.0;
    double wallLoadSeconds = 0.0;     ///< dataset load/generation
    double wallSimSeconds = 0.0;      ///< cycle-level simulation
    double wallValidateSeconds = 0.0; ///< post-run models + bookkeeping
    /** Process peak RSS in bytes when the cell finished (the memory
     *  footprint track, ROADMAP item 3); 0 when the probe is
     *  unavailable. Monotone across a run: the high-water mark as of
     *  this cell, not the cell's own footprint in isolation. */
    double peakRssBytes = 0.0;
};

/**
 * Thread-safe collection of cell provenance, serialized as one JSON
 * object: {"gitSha": ..., "scaleDivisor": ..., "cells": [...]}.
 */
class Manifest
{
  public:
    Manifest() = default;

    Manifest(const Manifest &) = delete;
    Manifest &operator=(const Manifest &) = delete;

    void add(ManifestCell cell);
    std::size_t size() const;

    void write(std::ostream &os) const;

    /** write() to @p path; returns false (and warns) on I/O failure. */
    bool writeFile(const std::string &path) const;

  private:
    mutable std::mutex mu;
    std::vector<ManifestCell> cells;
};

} // namespace gds::harness
