#include "harness/experiment.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "common/fsio.hh"
#include "common/parse.hh"
#include "common/rss.hh"
#include "energy/energy_model.hh"
#include "graph/loader.hh"
#include "harness/dataset_pool.hh"
#include "harness/manifest.hh"
#include "harness/parallel.hh"
#include "harness/walltime.hh"
#include "stats/json.hh"

namespace gds::harness
{

namespace
{

/** One mutex-serialized "[harness] ..." stderr line (workers interleave). */
#define harnessLine(...)                                                    \
    ::gds::detail::emit("[harness] ", ::gds::detail::vformat(__VA_ARGS__))

} // namespace

std::string
systemName(SystemId id)
{
    switch (id) {
      case SystemId::GraphDynS:
        return "GraphDynS";
      case SystemId::Graphicionado:
        return "Graphicionado";
      case SystemId::Gunrock:
        return "Gunrock";
    }
    panic("bad system id");
}

std::string
variantName(GdsVariant v)
{
    switch (v) {
      case GdsVariant::Full:
        return "WEAU";
      case GdsVariant::Wb:
        return "WB";
      case GdsVariant::We:
        return "WE";
      case GdsVariant::Wea:
        return "WEA";
      case GdsVariant::NoWb:
        return "noWB";
    }
    panic("bad variant");
}

unsigned
iterationCap(algo::AlgorithmId id)
{
    // PR runs a fixed budget (the paper's "maximum number of
    // iterations"); the monotone algorithms converge on their own.
    return id == algo::AlgorithmId::Pr ? 10 : 1000;
}

VertexId
sourceFor(algo::AlgorithmId id, const graph::Csr &g)
{
    switch (id) {
      case algo::AlgorithmId::Bfs:
      case algo::AlgorithmId::Sssp:
      case algo::AlgorithmId::Sswp:
        return algo::defaultSource(g);
      default:
        return 0;
    }
}

bool
datasetMmapEnabled()
{
    // GDS_DATASET_MMAP=0 forces heap copies (e.g. to A/B the two storage
    // paths); default is zero-copy mapped serving.
    return common::parseEnvU64("GDS_DATASET_MMAP", 1, 0, 1) == 1;
}

std::string
datasetCachePath(const std::string &name, unsigned scale, bool weighted)
{
    // "_g2" versions the generation scheme (chunked counter-seeded
    // generators): a cache written by the old sequential generators holds
    // different edges, so it must never satisfy a new-scheme request.
    return "gds_dataset_" + name + "_s" + std::to_string(scale) +
           (weighted ? "_w" : "_u") + "_g2.bin";
}

graph::Csr
loadDataset(const std::string &name, bool weighted)
{
    const unsigned scale = graph::datasetScaleDivisor();
    const std::string cache_file = datasetCachePath(name, scale, weighted);
    const bool mmap_enabled = datasetMmapEnabled();
    if (std::filesystem::exists(cache_file)) {
        try {
            return mmap_enabled ? graph::loadBinaryMapped(cache_file)
                                : graph::loadBinary(cache_file);
        } catch (const SimError &e) {
            warn("dataset cache '%s' unusable (%s); regenerating",
                 cache_file.c_str(), e.what());
            std::filesystem::remove(cache_file);
        }
    }
    graph::Csr g =
        graph::makeDataset(graph::datasetByName(name), scale, weighted);
    // Atomic write: a crash or a concurrent process never leaves a
    // truncated cache file for the next run to trip over.
    graph::saveBinaryAtomic(g, cache_file);
    if (mmap_enabled) {
        // Serve the freshly written file zero-copy so the generation-time
        // heap arrays are released and later processes share the same
        // page-cache pages. Falls back to the in-memory graph if the
        // re-map fails (e.g. read-only corner cases).
        try {
            return graph::loadBinaryMapped(cache_file);
        } catch (const SimError &e) {
            warn("cannot re-map fresh dataset cache '%s' (%s); serving "
                 "from heap",
                 cache_file.c_str(), e.what());
        }
    }
    return g;
}

Cycle
cellCycleBudget()
{
    // parseEnvU64 rejects sign, garbage and overflow (strtoull would
    // happily wrap "-1" to 2^64-1) and warns + falls back to the default.
    return common::parseEnvU64("GDS_CELL_BUDGET", 50'000'000'000ULL, 1);
}

double
cellWallBudgetSeconds()
{
    return common::parseEnvF64("GDS_CELL_WALL_BUDGET", 0.0);
}

unsigned
cellRetryLimit()
{
    return static_cast<unsigned>(
        common::parseEnvU64("GDS_CELL_RETRIES", 2, 0, 100));
}

core::CheckpointOptions
cellCheckpointOptions(const std::string &algorithm,
                      const std::string &dataset,
                      const std::string &config_hash)
{
    core::CheckpointOptions ckpt;
    const std::string dir = common::parseEnvStr("GDS_CHECKPOINT_DIR", "");
    if (dir.empty())
        return ckpt; // disabled: empty dir, interval 0
    ckpt.dir = dir;
    // One checkpoint file per cell: the basename encodes what is being
    // run, the identity (verified on resume) fingerprints how.
    std::string base = algorithm + "_" + dataset + "_" + config_hash;
    for (char &c : base) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_';
        if (!ok)
            c = '_';
    }
    ckpt.basename = base;
    ckpt.identity = config_hash;
    ckpt.resume = true;
    // 100 ms of simulated time at 1 GHz unless overridden; the strict
    // parser keeps "-1"/"1e6"/trailing garbage from becoming an interval.
    ckpt.interval =
        common::parseEnvU64("GDS_CHECKPOINT_INTERVAL", 100'000'000, 1);
    return ckpt;
}

RunRecord
runCell(const std::string &system, algo::AlgorithmId algorithm,
        const std::string &dataset,
        const std::function<RunRecord()> &compute)
{
    const unsigned retries = cellRetryLimit();
    for (unsigned attempt = 0;; ++attempt) {
        try {
            return compute();
        } catch (const SimError &e) {
            // Environmental failures (an unreadable checkpoint, a torn
            // dataset cache, an internal race) can succeed on a rerun;
            // verdicts about the simulation itself cannot.
            const bool transient = e.code() == ErrorCode::Internal ||
                                   e.code() == ErrorCode::Checkpoint ||
                                   e.code() == ErrorCode::CorruptInput;
            if (transient && attempt < retries) {
                const std::uint64_t delay_ms =
                    std::min<std::uint64_t>(100ULL << attempt, 2000);
                warn("cell %s/%s/%s attempt %u failed (%s); retrying in "
                     "%llu ms",
                     system.c_str(),
                     algo::algorithmName(algorithm).c_str(),
                     dataset.c_str(), attempt + 1, e.what(),
                     static_cast<unsigned long long>(delay_ms));
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(delay_ms));
                continue;
            }
            warn("cell %s/%s/%s failed: %s", system.c_str(),
                 algo::algorithmName(algorithm).c_str(), dataset.c_str(),
                 e.what());
            RunRecord r;
            r.system = system;
            r.algorithm = algo::algorithmName(algorithm);
            r.dataset = dataset;
            r.status = errorCodeName(e.code());
            return r;
        }
    }
}

core::GdsConfig
applyVariant(core::GdsConfig cfg, GdsVariant v)
{
    switch (v) {
      case GdsVariant::Full:
        break;
      case GdsVariant::Wb:
        cfg.exactPrefetch = false;
        cfg.zeroStallAtomics = false;
        cfg.updateScheduling = false;
        break;
      case GdsVariant::We:
        cfg.zeroStallAtomics = false;
        cfg.updateScheduling = false;
        break;
      case GdsVariant::Wea:
        cfg.updateScheduling = false;
        break;
      case GdsVariant::NoWb:
        cfg.workloadBalance = false;
        break;
    }
    return cfg;
}

namespace
{

RunRecord
baseRecord(const std::string &system, algo::AlgorithmId id,
           const std::string &dataset)
{
    RunRecord r;
    r.system = system;
    r.algorithm = algo::algorithmName(id);
    r.dataset = dataset;
    return r;
}

} // namespace

namespace
{

/**
 * Resolve the effective RunOptions for one cell: per-job CellPolicy
 * overrides first, the env-driven defaults (GDS_CELL_BUDGET & friends)
 * for anything the policy leaves unset.
 */
core::RunOptions
cellRunOptions(algo::AlgorithmId algorithm, const std::string &dataset,
               const graph::Csr &g, const std::string &config_hash,
               const CellPolicy *policy)
{
    core::RunOptions options;
    options.source = policy && policy->source ? *policy->source
                                              : sourceFor(algorithm, g);
    options.cycleBudget = policy && policy->cycleBudget != 0
                              ? policy->cycleBudget
                              : cellCycleBudget();
    options.wallBudgetSeconds = policy && policy->wallBudgetSeconds >= 0.0
                                    ? policy->wallBudgetSeconds
                                    : cellWallBudgetSeconds();
    options.checkpoint =
        policy && policy->checkpoint
            ? *policy->checkpoint
            : cellCheckpointOptions(algo::algorithmName(algorithm), dataset,
                                    config_hash);
    options.sampler = policy ? policy->sampler : nullptr;
    return options;
}

} // namespace

RunRecord
runGds(algo::AlgorithmId algorithm, const std::string &dataset,
       const graph::Csr &g, GdsVariant variant,
       const core::GdsConfig *base, const CellPolicy *policy)
{
    core::GdsConfig cfg = base ? *base : core::GdsConfig{};
    cfg.maxIterations = policy && policy->iterations
                            ? *policy->iterations
                            : iterationCap(algorithm);
    cfg = applyVariant(cfg, variant);

    auto a = algo::makeAlgorithm(algorithm);
    core::GdsAccel accel(cfg, g, *a);
    const std::string hash = configHash(cfg);
    const core::RunOptions options =
        cellRunOptions(algorithm, dataset, g, hash, policy);

    double sim_seconds = 0.0;
    double validate_seconds = 0.0;
    core::RunResult run;
    {
        const ScopedWallTimer timer(sim_seconds);
        run = accel.run(options);
    }

    const ScopedWallTimer validate_timer(validate_seconds);
    energy::EnergyModel energy_model;
    const auto energy = energy_model.gdsEnergy(
        cfg, run.cycles, run.memoryBytes);

    RunRecord r = baseRecord(variant == GdsVariant::Full
                                 ? "GraphDynS"
                                 : "GraphDynS-" + variantName(variant),
                             algorithm, dataset);
    r.configHash = hash;
    r.wallSimSeconds = sim_seconds;
    if (!run.completed())
        r.status = errorCodeName(sim::runOutcomeError(run.report.outcome));
    r.iterations = run.iterations;
    r.seconds = static_cast<double>(run.cycles) * 1e-9;
    r.gteps = run.gteps();
    r.memoryBytes = static_cast<double>(run.memoryBytes);
    r.footprintBytes = static_cast<double>(run.footprintBytes);
    r.bandwidthUtilization = run.bandwidthUtilization;
    r.energyJoules = energy.totalJ();
    r.schedulingOps = static_cast<double>(run.schedulingOps);
    r.atomicStalls = static_cast<double>(run.atomicStalls);
    r.updatesSkipped = static_cast<double>(run.updatesSkipped);
    r.vertexUpdates = static_cast<double>(run.vertexUpdates);
    r.edgesProcessed = static_cast<double>(run.edgesProcessed);
    r.wallValidateSeconds = validate_timer.elapsedSeconds();
    return r;
}

RunRecord
runGraphicionado(algo::AlgorithmId algorithm, const std::string &dataset,
                 const graph::Csr &g, const CellPolicy *policy)
{
    baseline::GraphicionadoConfig cfg;
    cfg.maxIterations = policy && policy->iterations
                            ? *policy->iterations
                            : iterationCap(algorithm);

    auto a = algo::makeAlgorithm(algorithm);
    baseline::GraphicionadoAccel accel(cfg, g, *a);
    const std::string hash = configHash(cfg);
    const core::RunOptions options =
        cellRunOptions(algorithm, dataset, g, hash, policy);

    double sim_seconds = 0.0;
    double validate_seconds = 0.0;
    core::RunResult run;
    {
        const ScopedWallTimer timer(sim_seconds);
        run = accel.run(options);
    }

    const ScopedWallTimer validate_timer(validate_seconds);
    energy::EnergyModel energy_model;
    const auto energy = energy_model.graphicionadoEnergy(
        cfg, run.cycles, run.memoryBytes);

    RunRecord r = baseRecord("Graphicionado", algorithm, dataset);
    r.configHash = hash;
    r.wallSimSeconds = sim_seconds;
    if (!run.completed())
        r.status = errorCodeName(sim::runOutcomeError(run.report.outcome));
    r.iterations = run.iterations;
    r.seconds = static_cast<double>(run.cycles) * 1e-9;
    r.gteps = run.gteps();
    r.memoryBytes = static_cast<double>(run.memoryBytes);
    r.footprintBytes = static_cast<double>(run.footprintBytes);
    r.bandwidthUtilization = run.bandwidthUtilization;
    r.energyJoules = energy.totalJ();
    r.atomicStalls = static_cast<double>(run.atomicStalls);
    r.vertexUpdates = static_cast<double>(run.vertexUpdates);
    r.edgesProcessed = static_cast<double>(run.edgesProcessed);
    r.wallValidateSeconds = validate_timer.elapsedSeconds();
    return r;
}

RunRecord
runGunrock(algo::AlgorithmId algorithm, const std::string &dataset,
           const graph::Csr &g)
{
    baseline::GunrockConfig cfg;
    cfg.maxIterations = iterationCap(algorithm);

    auto a = algo::makeAlgorithm(algorithm);
    baseline::GunrockSim gpu(cfg, g, *a);

    double sim_seconds = 0.0;
    baseline::GunrockResult run;
    {
        const ScopedWallTimer timer(sim_seconds);
        run = gpu.run(sourceFor(algorithm, g));
    }

    RunRecord r = baseRecord("Gunrock", algorithm, dataset);
    r.configHash = configHash(cfg);
    r.wallSimSeconds = sim_seconds;
    r.iterations = run.iterations;
    r.seconds = run.seconds;
    r.gteps = run.gteps();
    r.memoryBytes = static_cast<double>(run.memoryBytes);
    r.footprintBytes = static_cast<double>(run.footprintBytes);
    r.bandwidthUtilization = run.bandwidthUtilization;
    r.energyJoules = run.energyJoules;
    r.edgesProcessed = static_cast<double>(run.edgesProcessed);
    return r;
}

namespace
{

/** Cache-key system tag for a SystemId. */
const char *
systemTag(SystemId sys)
{
    switch (sys) {
      case SystemId::GraphDynS:
        return "gds";
      case SystemId::Graphicionado:
        return "graphicionado";
      case SystemId::Gunrock:
        return "gunrock";
    }
    panic("bad system id");
}

} // namespace

std::vector<RunRecord>
evaluationMatrix(ResultCache &cache)
{
    struct Cell
    {
        SystemId sys;
        algo::AlgorithmId id;
        const graph::DatasetSpec *spec;
        bool weighted;
    };

    // Enumerate cells in the canonical serial traversal order; each cell
    // writes into its own slot, so the returned records are identical
    // whatever the worker count or completion interleaving.
    std::vector<Cell> cells;
    for (const algo::AlgorithmId id : algo::allAlgorithms) {
        const bool weighted = algo::makeAlgorithm(id)->usesWeights();
        for (const auto &spec : graph::realWorldDatasets()) {
            for (const SystemId sys :
                 {SystemId::GraphDynS, SystemId::Graphicionado,
                  SystemId::Gunrock})
                cells.push_back({sys, id, &spec, weighted});
        }
    }

    DatasetPool pool;
    for (const Cell &c : cells)
        pool.expect(c.spec->name, c.weighted);

    std::vector<RunRecord> records(cells.size());
    std::vector<std::uint8_t> servedFromCache(cells.size(), 0);
    std::atomic<std::size_t> done{0};
    std::atomic<unsigned> running{0};

    auto run_one = [&](std::size_t i) {
        const Cell &c = cells[i];
        const std::string system = systemName(c.sys);
        const std::string &dataset = c.spec->name;
        const std::string key = cellKey(systemTag(c.sys), c.id, dataset);
        servedFromCache[i] = cache.lookup(key).has_value() ? 1 : 0;
        running.fetch_add(1, std::memory_order_relaxed);
        // runCell degrades a failed cell (bad config, corrupt dataset,
        // watchdog verdict) into a status!="ok" record, so one broken
        // cell never kills a whole figure regeneration.
        records[i] = cache.getOrRun(key, [&] {
            harnessLine("%s %s %s", system.c_str(),
                        algo::algorithmName(c.id).c_str(), dataset.c_str());
            return runCell(system, c.id, dataset, [&] {
                double load_seconds = 0.0;
                DatasetPool::GraphPtr g;
                {
                    const ScopedWallTimer timer(load_seconds);
                    g = pool.get(dataset, c.weighted);
                }
                RunRecord r;
                switch (c.sys) {
                  case SystemId::GraphDynS:
                    r = runGds(c.id, dataset, *g);
                    break;
                  case SystemId::Graphicionado:
                    r = runGraphicionado(c.id, dataset, *g);
                    break;
                  case SystemId::Gunrock:
                    r = runGunrock(c.id, dataset, *g);
                    break;
                }
                r.wallLoadSeconds = load_seconds;
                return r;
            });
        });
        pool.release(dataset, c.weighted);
        const std::size_t completed =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        const unsigned active =
            running.fetch_sub(1, std::memory_order_relaxed) - 1;
        harnessLine("%zu/%zu cells, %u running", completed, cells.size(),
                    active);
    };

    parallelFor(cells.size(), jobCount(), run_one);

    // Provenance manifest: one entry per cell, in the serial traversal
    // order (the records vector), so manifests diff cleanly across runs.
    Manifest manifest;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const RunRecord &r = records[i];
        ManifestCell entry;
        entry.key = cellKey(systemTag(cells[i].sys), cells[i].id,
                            cells[i].spec->name);
        entry.system = r.system;
        entry.algorithm = r.algorithm;
        entry.dataset = r.dataset;
        entry.seed = cells[i].spec->seed;
        entry.configHash = r.configHash;
        entry.outcome = r.status;
        entry.cached = servedFromCache[i] != 0;
        entry.simulatedSeconds = r.seconds;
        entry.wallLoadSeconds = r.wallLoadSeconds;
        entry.wallSimSeconds = r.wallSimSeconds;
        entry.wallValidateSeconds = r.wallValidateSeconds;
        entry.peakRssBytes =
            static_cast<double>(common::peakRssBytes());
        manifest.add(std::move(entry));
    }
    manifest.writeFile("manifest.json");
    return records;
}

const RunRecord &
findRecord(const std::vector<RunRecord> &records, const std::string &system,
           const std::string &algorithm, const std::string &dataset)
{
    for (const RunRecord &r : records) {
        if (r.system == system && r.algorithm == algorithm &&
            r.dataset == dataset)
            return r;
    }
    fatal("no record for %s/%s/%s", system.c_str(), algorithm.c_str(),
          dataset.c_str());
}

const RunRecord *
tryFindRecord(const std::vector<RunRecord> &records,
              const std::string &system, const std::string &algorithm,
              const std::string &dataset)
{
    for (const RunRecord &r : records) {
        if (r.system == system && r.algorithm == algorithm &&
            r.dataset == dataset)
            return r.ok() ? &r : nullptr;
    }
    return nullptr;
}

// ---------------------------------------------------------------------
// Result cache.
// ---------------------------------------------------------------------

namespace
{
constexpr const char *cacheFile = "gds_bench_cache_v1.csv";
/** First line of the file; bumped whenever the column layout changes. */
constexpr const char *cacheFormatLine = "# gds-bench-cache format 3";
constexpr const char *cacheColumnsLine =
    "# key,system,algorithm,dataset,status,iterations,seconds,"
    "gteps,memoryBytes,footprintBytes,bandwidthUtilization,"
    "energyJoules,schedulingOps,atomicStalls,updatesSkipped,"
    "vertexUpdates,edgesProcessed,configHash,wallLoadSeconds,"
    "wallSimSeconds,wallValidateSeconds";

/** The cache line format has no quoting, so a field containing the
 *  delimiter (or a line break / control character) would re-parse with
 *  silently shifted columns; such fields are refused at store() time. */
bool
cacheFieldOk(const std::string &field)
{
    for (const unsigned char c : field) {
        if (c == ',' || c < 0x20)
            return false;
    }
    return true;
}

void
writeRecordLine(std::ostream &out, const std::string &key,
                const RunRecord &r)
{
    out.precision(17);
    out << key << ',' << r.system << ',' << r.algorithm << ','
        << r.dataset << ',' << r.status << ',' << r.iterations << ','
        << r.seconds << ',' << r.gteps << ',' << r.memoryBytes << ','
        << r.footprintBytes << ',' << r.bandwidthUtilization << ','
        << r.energyJoules << ',' << r.schedulingOps << ','
        << r.atomicStalls << ',' << r.updatesSkipped << ','
        << r.vertexUpdates << ',' << r.edgesProcessed << ','
        << r.configHash << ',' << r.wallLoadSeconds << ','
        << r.wallSimSeconds << ',' << r.wallValidateSeconds << '\n';
}

} // namespace

std::string
cellKey(const std::string &system_tag, algo::AlgorithmId id,
        const std::string &dataset)
{
    return system_tag + "|" + algo::algorithmName(id) + "|" + dataset +
           "|s" + std::to_string(graph::datasetScaleDivisor());
}

ResultCache::ResultCache()
{
    load();
}

ResultCache::~ResultCache()
{
    const std::lock_guard<std::mutex> lock(mu);
    if (appended == 0)
        return; // nothing new: the on-disk file is already canonical
    if (journal.is_open())
        journal.close();
    compactLocked();
}

std::optional<RunRecord>
ResultCache::lookup(const std::string &key) const
{
    const std::lock_guard<std::mutex> lock(mu);
    const auto it = entries.find(key);
    if (it == entries.end())
        return std::nullopt;
    return it->second;
}

void
ResultCache::store(const std::string &key, const RunRecord &record)
{
    if (!cacheFieldOk(key) || !cacheFieldOk(record.system) ||
        !cacheFieldOk(record.algorithm) || !cacheFieldOk(record.dataset) ||
        !cacheFieldOk(record.status) || !cacheFieldOk(record.configHash)) {
        throw ConfigError(
            "result-cache fields must not contain commas or control "
            "characters: key '" + key + "', cell " + record.system + "/" +
            record.algorithm + "/" + record.dataset);
    }
    const std::lock_guard<std::mutex> lock(mu);
    entries[key] = record;
    appendLocked(key, record);
}

void
ResultCache::appendLocked(const std::string &key, const RunRecord &record)
{
    if (journal_failed)
        return;
    if (!journal.is_open()) {
        journal.open(cacheFile,
                     needs_header ? std::ios::trunc : std::ios::app);
        if (journal && needs_header) {
            journal << cacheFormatLine << '\n'
                    << cacheColumnsLine << '\n';
            needs_header = false;
        }
    }
    if (journal.is_open())
        writeRecordLine(journal, key, record);
    // Flush eagerly so interrupted bench runs keep their progress.
    if (!journal.is_open() || !journal.flush()) {
        warn("cannot append to result cache '%s'; results from this run "
             "will not be persisted",
             cacheFile);
        journal_failed = true;
        return;
    }
    // ...and fsync so a power loss (not just a SIGKILL) can't take an
    // already-reported cell result with it. Cells cost seconds to
    // minutes; one fsync per cell is noise.
    fsyncFile(cacheFile);
    ++appended;
}

void
ResultCache::load()
{
    std::ifstream in(cacheFile);
    if (!in) {
        needs_header = true;
        return;
    }
    std::string line;
    if (!std::getline(in, line) || line != cacheFormatLine) {
        warn("ignoring result cache '%s': unrecognized format (expected "
             "\"%s\"); it will be rebuilt",
             cacheFile, cacheFormatLine);
        needs_header = true;
        return;
    }
    std::uint64_t line_number = 1;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream iss(line);
        std::string key;
        RunRecord r;
        bool parsed = std::getline(iss, key, ',') && !key.empty() &&
                      std::getline(iss, r.system, ',') &&
                      std::getline(iss, r.algorithm, ',') &&
                      std::getline(iss, r.dataset, ',') &&
                      std::getline(iss, r.status, ',');
        if (parsed) {
            iss >> r.iterations;
            iss.ignore(1) >> r.seconds;
            iss.ignore(1) >> r.gteps;
            iss.ignore(1) >> r.memoryBytes;
            iss.ignore(1) >> r.footprintBytes;
            iss.ignore(1) >> r.bandwidthUtilization;
            iss.ignore(1) >> r.energyJoules;
            iss.ignore(1) >> r.schedulingOps;
            iss.ignore(1) >> r.atomicStalls;
            iss.ignore(1) >> r.updatesSkipped;
            iss.ignore(1) >> r.vertexUpdates;
            iss.ignore(1) >> r.edgesProcessed;
            iss.ignore(1);
            parsed = static_cast<bool>(iss) &&
                     static_cast<bool>(std::getline(iss, r.configHash, ','));
            iss >> r.wallLoadSeconds;
            iss.ignore(1) >> r.wallSimSeconds;
            iss.ignore(1) >> r.wallValidateSeconds;
            parsed = parsed && static_cast<bool>(iss);
        }
        if (!parsed) {
            warn("skipping corrupt line %llu in result cache '%s'",
                 static_cast<unsigned long long>(line_number), cacheFile);
            continue;
        }
        entries[key] = r;
    }
}

void
ResultCache::compactLocked()
{
    // Rewrite the journal once, deduplicated, via a temp file + durable
    // rename (fsync file, rename, fsync parent directory) so neither a
    // crash mid-write nor a power loss right after can truncate or
    // corrupt the existing cache.
    const std::string tmp_file = std::string(cacheFile) + ".tmp";
    {
        std::ofstream out(tmp_file);
        out << cacheFormatLine << '\n';
        out << cacheColumnsLine << '\n';
        for (const auto &[key, r] : entries)
            writeRecordLine(out, key, r);
        if (!out) {
            warn("cannot write result cache temp file '%s'",
                 tmp_file.c_str());
            return;
        }
    }
    if (!durableRename(tmp_file, cacheFile)) {
        std::error_code ec;
        std::filesystem::remove(tmp_file, ec);
    }
}

// ---------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------

double
geometricMean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    std::size_t count = 0;
    for (const double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            ++count;
        }
    }
    return count == 0 ? 0.0
                      : std::exp(log_sum / static_cast<double>(count));
}

void
dumpRecordsJson(const std::vector<RunRecord> &records, std::ostream &os)
{
    os << '[';
    bool first = true;
    for (const RunRecord &r : records) {
        if (!first)
            os << ',';
        first = false;
        os << '{';
        auto str = [&](const char *name, const std::string &value,
                       bool comma = true) {
            stats::emitJsonString(os, name);
            os << ':';
            stats::emitJsonString(os, value);
            if (comma)
                os << ',';
        };
        auto num = [&](const char *name, double value, bool comma = true) {
            stats::emitJsonString(os, name);
            os << ':';
            stats::emitJsonNumber(os, value);
            if (comma)
                os << ',';
        };
        str("system", r.system);
        str("algorithm", r.algorithm);
        str("dataset", r.dataset);
        str("status", r.status);
        num("iterations", r.iterations);
        num("seconds", r.seconds);
        num("gteps", r.gteps);
        num("memoryBytes", r.memoryBytes);
        num("footprintBytes", r.footprintBytes);
        num("bandwidthUtilization", r.bandwidthUtilization);
        num("energyJoules", r.energyJoules);
        num("schedulingOps", r.schedulingOps);
        num("atomicStalls", r.atomicStalls);
        num("updatesSkipped", r.updatesSkipped);
        num("vertexUpdates", r.vertexUpdates);
        num("edgesProcessed", r.edgesProcessed);
        // Wall-clock fields are provenance, not simulation results: they
        // live in the manifest and cache journal, and including them here
        // would break the byte-identical-across-GDS_JOBS guarantee.
        str("configHash", r.configHash, false);
        os << '}';
    }
    os << "]\n";
}

Table::Table(std::vector<std::string> columns) : header(std::move(columns))
{}

void
Table::addRow(std::vector<std::string> cells)
{
    gds_assert(cells.size() == header.size(),
               "row has %zu cells, table has %zu columns", cells.size(),
               header.size());
    rows.push_back(std::move(cells));
}

void
Table::print() const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%-*s  ", static_cast<int>(widths[c]),
                        row[c].c_str());
        std::printf("\n");
    };
    print_row(header);
    std::string rule;
    for (std::size_t c = 0; c < header.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    std::printf("%s\n", rule.c_str());
    for (const auto &row : rows)
        print_row(row);
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace gds::harness
