#include "harness/experiment.hh"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "energy/energy_model.hh"
#include "graph/loader.hh"

namespace gds::harness
{

std::string
systemName(SystemId id)
{
    switch (id) {
      case SystemId::GraphDynS:
        return "GraphDynS";
      case SystemId::Graphicionado:
        return "Graphicionado";
      case SystemId::Gunrock:
        return "Gunrock";
    }
    panic("bad system id");
}

std::string
variantName(GdsVariant v)
{
    switch (v) {
      case GdsVariant::Full:
        return "WEAU";
      case GdsVariant::Wb:
        return "WB";
      case GdsVariant::We:
        return "WE";
      case GdsVariant::Wea:
        return "WEA";
      case GdsVariant::NoWb:
        return "noWB";
    }
    panic("bad variant");
}

unsigned
iterationCap(algo::AlgorithmId id)
{
    // PR runs a fixed budget (the paper's "maximum number of
    // iterations"); the monotone algorithms converge on their own.
    return id == algo::AlgorithmId::Pr ? 10 : 1000;
}

VertexId
sourceFor(algo::AlgorithmId id, const graph::Csr &g)
{
    switch (id) {
      case algo::AlgorithmId::Bfs:
      case algo::AlgorithmId::Sssp:
      case algo::AlgorithmId::Sswp:
        return algo::defaultSource(g);
      default:
        return 0;
    }
}

graph::Csr
loadDataset(const std::string &name, bool weighted)
{
    const unsigned scale = graph::datasetScaleDivisor();
    const std::string cache_file = "gds_dataset_" + name + "_s" +
                                   std::to_string(scale) +
                                   (weighted ? "_w" : "_u") + ".bin";
    if (std::filesystem::exists(cache_file))
        return graph::loadBinary(cache_file);
    const graph::Csr g =
        graph::makeDataset(graph::datasetByName(name), scale, weighted);
    graph::saveBinary(g, cache_file);
    return g;
}

core::GdsConfig
applyVariant(core::GdsConfig cfg, GdsVariant v)
{
    switch (v) {
      case GdsVariant::Full:
        break;
      case GdsVariant::Wb:
        cfg.exactPrefetch = false;
        cfg.zeroStallAtomics = false;
        cfg.updateScheduling = false;
        break;
      case GdsVariant::We:
        cfg.zeroStallAtomics = false;
        cfg.updateScheduling = false;
        break;
      case GdsVariant::Wea:
        cfg.updateScheduling = false;
        break;
      case GdsVariant::NoWb:
        cfg.workloadBalance = false;
        break;
    }
    return cfg;
}

namespace
{

RunRecord
baseRecord(const std::string &system, algo::AlgorithmId id,
           const std::string &dataset)
{
    RunRecord r;
    r.system = system;
    r.algorithm = algo::algorithmName(id);
    r.dataset = dataset;
    return r;
}

} // namespace

RunRecord
runGds(algo::AlgorithmId algorithm, const std::string &dataset,
       const graph::Csr &g, GdsVariant variant,
       const core::GdsConfig *base)
{
    core::GdsConfig cfg = base ? *base : core::GdsConfig{};
    cfg.maxIterations = iterationCap(algorithm);
    cfg = applyVariant(cfg, variant);

    auto a = algo::makeAlgorithm(algorithm);
    core::GdsAccel accel(cfg, g, *a);
    core::RunOptions options;
    options.source = sourceFor(algorithm, g);
    const core::RunResult run = accel.run(options);

    energy::EnergyModel energy_model;
    const auto energy = energy_model.gdsEnergy(
        cfg, run.cycles, run.memoryBytes);

    RunRecord r = baseRecord(variant == GdsVariant::Full
                                 ? "GraphDynS"
                                 : "GraphDynS-" + variantName(variant),
                             algorithm, dataset);
    r.iterations = run.iterations;
    r.seconds = static_cast<double>(run.cycles) * 1e-9;
    r.gteps = run.gteps();
    r.memoryBytes = static_cast<double>(run.memoryBytes);
    r.footprintBytes = static_cast<double>(run.footprintBytes);
    r.bandwidthUtilization = run.bandwidthUtilization;
    r.energyJoules = energy.totalJ();
    r.schedulingOps = static_cast<double>(run.schedulingOps);
    r.atomicStalls = static_cast<double>(run.atomicStalls);
    r.updatesSkipped = static_cast<double>(run.updatesSkipped);
    r.vertexUpdates = static_cast<double>(run.vertexUpdates);
    r.edgesProcessed = static_cast<double>(run.edgesProcessed);
    return r;
}

RunRecord
runGraphicionado(algo::AlgorithmId algorithm, const std::string &dataset,
                 const graph::Csr &g)
{
    baseline::GraphicionadoConfig cfg;
    cfg.maxIterations = iterationCap(algorithm);

    auto a = algo::makeAlgorithm(algorithm);
    baseline::GraphicionadoAccel accel(cfg, g, *a);
    core::RunOptions options;
    options.source = sourceFor(algorithm, g);
    const core::RunResult run = accel.run(options);

    energy::EnergyModel energy_model;
    const auto energy = energy_model.graphicionadoEnergy(
        cfg, run.cycles, run.memoryBytes);

    RunRecord r = baseRecord("Graphicionado", algorithm, dataset);
    r.iterations = run.iterations;
    r.seconds = static_cast<double>(run.cycles) * 1e-9;
    r.gteps = run.gteps();
    r.memoryBytes = static_cast<double>(run.memoryBytes);
    r.footprintBytes = static_cast<double>(run.footprintBytes);
    r.bandwidthUtilization = run.bandwidthUtilization;
    r.energyJoules = energy.totalJ();
    r.atomicStalls = static_cast<double>(run.atomicStalls);
    r.vertexUpdates = static_cast<double>(run.vertexUpdates);
    r.edgesProcessed = static_cast<double>(run.edgesProcessed);
    return r;
}

RunRecord
runGunrock(algo::AlgorithmId algorithm, const std::string &dataset,
           const graph::Csr &g)
{
    baseline::GunrockConfig cfg;
    cfg.maxIterations = iterationCap(algorithm);

    auto a = algo::makeAlgorithm(algorithm);
    baseline::GunrockSim gpu(cfg, g, *a);
    const baseline::GunrockResult run = gpu.run(sourceFor(algorithm, g));

    RunRecord r = baseRecord("Gunrock", algorithm, dataset);
    r.iterations = run.iterations;
    r.seconds = run.seconds;
    r.gteps = run.gteps();
    r.memoryBytes = static_cast<double>(run.memoryBytes);
    r.footprintBytes = static_cast<double>(run.footprintBytes);
    r.bandwidthUtilization = run.bandwidthUtilization;
    r.energyJoules = run.energyJoules;
    r.edgesProcessed = static_cast<double>(run.edgesProcessed);
    return r;
}

std::vector<RunRecord>
evaluationMatrix(ResultCache &cache)
{
    std::vector<RunRecord> records;
    for (const algo::AlgorithmId id : algo::allAlgorithms) {
        const bool weighted = algo::makeAlgorithm(id)->usesWeights();
        for (const auto &spec : graph::realWorldDatasets()) {
            // Load lazily: only cells missing from the cache pay for it.
            std::optional<graph::Csr> g;
            auto graph_ref = [&]() -> const graph::Csr & {
                if (!g) {
                    std::cerr << "[harness] loading " << spec.name
                              << (weighted ? " (weighted)" : "") << "\n";
                    g = loadDataset(spec.name, weighted);
                }
                return *g;
            };
            records.push_back(cache.getOrRun(
                cellKey("gds", id, spec.name), [&] {
                    std::cerr << "[harness] GraphDynS " <<
                        algo::algorithmName(id) << " " << spec.name << "\n";
                    return runGds(id, spec.name, graph_ref());
                }));
            records.push_back(cache.getOrRun(
                cellKey("graphicionado", id, spec.name), [&] {
                    std::cerr << "[harness] Graphicionado " <<
                        algo::algorithmName(id) << " " << spec.name << "\n";
                    return runGraphicionado(id, spec.name, graph_ref());
                }));
            records.push_back(cache.getOrRun(
                cellKey("gunrock", id, spec.name), [&] {
                    std::cerr << "[harness] Gunrock " <<
                        algo::algorithmName(id) << " " << spec.name << "\n";
                    return runGunrock(id, spec.name, graph_ref());
                }));
        }
    }
    return records;
}

const RunRecord &
findRecord(const std::vector<RunRecord> &records, const std::string &system,
           const std::string &algorithm, const std::string &dataset)
{
    for (const RunRecord &r : records) {
        if (r.system == system && r.algorithm == algorithm &&
            r.dataset == dataset)
            return r;
    }
    fatal("no record for %s/%s/%s", system.c_str(), algorithm.c_str(),
          dataset.c_str());
}

// ---------------------------------------------------------------------
// Result cache.
// ---------------------------------------------------------------------

namespace
{
constexpr const char *cacheFile = "gds_bench_cache_v1.csv";
}

std::string
cellKey(const std::string &system_tag, algo::AlgorithmId id,
        const std::string &dataset)
{
    return system_tag + "|" + algo::algorithmName(id) + "|" + dataset +
           "|s" + std::to_string(graph::datasetScaleDivisor());
}

ResultCache::ResultCache()
{
    load();
}

ResultCache::~ResultCache()
{
    if (dirty)
        save();
}

std::optional<RunRecord>
ResultCache::lookup(const std::string &key) const
{
    const auto it = entries.find(key);
    if (it == entries.end())
        return std::nullopt;
    return it->second;
}

void
ResultCache::store(const std::string &key, const RunRecord &record)
{
    entries[key] = record;
    dirty = true;
    save(); // persist eagerly so interrupted bench runs keep progress
    dirty = false;
}

void
ResultCache::load()
{
    std::ifstream in(cacheFile);
    if (!in)
        return;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream iss(line);
        std::string key;
        RunRecord r;
        if (!std::getline(iss, key, ','))
            continue;
        std::getline(iss, r.system, ',');
        std::getline(iss, r.algorithm, ',');
        std::getline(iss, r.dataset, ',');
        iss >> r.iterations;
        iss.ignore(1) >> r.seconds;
        iss.ignore(1) >> r.gteps;
        iss.ignore(1) >> r.memoryBytes;
        iss.ignore(1) >> r.footprintBytes;
        iss.ignore(1) >> r.bandwidthUtilization;
        iss.ignore(1) >> r.energyJoules;
        iss.ignore(1) >> r.schedulingOps;
        iss.ignore(1) >> r.atomicStalls;
        iss.ignore(1) >> r.updatesSkipped;
        iss.ignore(1) >> r.vertexUpdates;
        iss.ignore(1) >> r.edgesProcessed;
        if (iss)
            entries[key] = r;
    }
}

void
ResultCache::save() const
{
    std::ofstream out(cacheFile);
    out << "# key,system,algorithm,dataset,iterations,seconds,gteps,"
           "memoryBytes,footprintBytes,bandwidthUtilization,energyJoules,"
           "schedulingOps,atomicStalls,updatesSkipped,vertexUpdates,"
           "edgesProcessed\n";
    out.precision(17);
    for (const auto &[key, r] : entries) {
        out << key << ',' << r.system << ',' << r.algorithm << ','
            << r.dataset << ',' << r.iterations << ',' << r.seconds << ','
            << r.gteps << ',' << r.memoryBytes << ',' << r.footprintBytes
            << ',' << r.bandwidthUtilization << ',' << r.energyJoules
            << ',' << r.schedulingOps << ',' << r.atomicStalls << ','
            << r.updatesSkipped << ',' << r.vertexUpdates << ','
            << r.edgesProcessed << '\n';
    }
}

// ---------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------

double
geometricMean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    std::size_t count = 0;
    for (const double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            ++count;
        }
    }
    return count == 0 ? 0.0
                      : std::exp(log_sum / static_cast<double>(count));
}

Table::Table(std::vector<std::string> columns) : header(std::move(columns))
{}

void
Table::addRow(std::vector<std::string> cells)
{
    gds_assert(cells.size() == header.size(),
               "row has %zu cells, table has %zu columns", cells.size(),
               header.size());
    rows.push_back(std::move(cells));
}

void
Table::print() const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        widths[c] = header[c].size();
    for (const auto &row : rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%-*s  ", static_cast<int>(widths[c]),
                        row[c].c_str());
        std::printf("\n");
    };
    print_row(header);
    std::string rule;
    for (std::size_t c = 0; c < header.size(); ++c)
        rule += std::string(widths[c], '-') + "  ";
    std::printf("%s\n", rule.c_str());
    for (const auto &row : rows)
        print_row(row);
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

} // namespace gds::harness
