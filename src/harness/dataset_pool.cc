#include "harness/dataset_pool.hh"

#include <chrono>
#include <utility>

#include "common/debug.hh"
#include "common/logging.hh"
#include "harness/experiment.hh"

namespace gds::harness
{

DatasetPool::DatasetPool()
    : loader([](const std::string &name, bool weighted) {
          return loadDataset(name, weighted);
      })
{
}

DatasetPool::DatasetPool(Loader dataset_loader)
    : loader(std::move(dataset_loader))
{
    gds_require(static_cast<bool>(loader), ConfigError,
                "DatasetPool needs a loader");
}

std::string
DatasetPool::key(const std::string &name, bool weighted)
{
    return name + (weighted ? "|w" : "|u");
}

void
DatasetPool::expect(const std::string &name, bool weighted)
{
    const std::lock_guard<std::mutex> lock(mu);
    ++slots[key(name, weighted)].remaining;
}

DatasetPool::GraphPtr
DatasetPool::get(const std::string &name, bool weighted)
{
    Slot *slot = nullptr;
    bool load_here = false;
    {
        const std::lock_guard<std::mutex> lock(mu);
        slot = &slots[key(name, weighted)];
        gds_assert(slot->remaining > 0,
                   "dataset %s fetched with no registered consumers",
                   name.c_str());
        if (!slot->future.valid()) {
            slot->future = slot->promise.get_future().share();
            load_here = true;
        }
    }
    // The load runs outside the pool lock so distinct datasets load
    // concurrently; waiters for *this* dataset block on the future.
    if (load_here) {
        try {
            detail::emit("[harness] ",
                         detail::vformat("loading %s%s", name.c_str(),
                                         weighted ? " (weighted)" : ""));
            slot->promise.set_value(
                std::make_shared<graph::Csr>(loader(name, weighted)));
        } catch (...) {
            slot->promise.set_exception(std::current_exception());
        }
    }
    return slot->future.get();
}

void
DatasetPool::release(const std::string &name, bool weighted)
{
    const std::lock_guard<std::mutex> lock(mu);
    const auto it = slots.find(key(name, weighted));
    gds_assert(it != slots.end() && it->second.remaining > 0,
               "dataset %s released more often than expected", name.c_str());
    if (--it->second.remaining == 0)
        slots.erase(it);
}

std::size_t
DatasetPool::residentCount() const
{
    const std::lock_guard<std::mutex> lock(mu);
    std::size_t n = 0;
    for (const auto &[k, slot] : slots)
        if (slot.future.valid())
            ++n;
    return n;
}

std::vector<std::string>
DatasetPool::residentKeys() const
{
    const std::lock_guard<std::mutex> lock(mu);
    std::vector<std::string> keys;
    for (const auto &[k, slot] : slots)
        if (slot.future.valid())
            keys.push_back(k); // map iteration order is already sorted
    return keys;
}

namespace
{

/** The slot's graph if fully loaded; null while loading or failed. */
DatasetPool::GraphPtr
loadedGraph(const std::shared_future<DatasetPool::GraphPtr> &future)
{
    if (!future.valid() ||
        future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready)
        return nullptr;
    try {
        return future.get();
    } catch (...) {
        return nullptr; // failed load: nothing resident to account
    }
}

} // namespace

std::uint64_t
DatasetPool::mappedBytes() const
{
    const std::lock_guard<std::mutex> lock(mu);
    std::uint64_t total = 0;
    for (const auto &[k, slot] : slots) {
        if (const GraphPtr g = loadedGraph(slot.future))
            total += g->mappedBytes();
    }
    return total;
}

std::uint64_t
DatasetPool::heapBytes() const
{
    const std::lock_guard<std::mutex> lock(mu);
    std::uint64_t total = 0;
    for (const auto &[k, slot] : slots) {
        if (const GraphPtr g = loadedGraph(slot.future))
            total += g->heapBytes();
    }
    return total;
}

std::size_t
DatasetPool::pendingConsumers() const
{
    const std::lock_guard<std::mutex> lock(mu);
    std::size_t n = 0;
    for (const auto &[k, slot] : slots)
        n += slot.remaining;
    return n;
}

} // namespace gds::harness
