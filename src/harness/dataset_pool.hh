/**
 * @file
 * Refcounted, once-only dataset loading shared by concurrent consumers:
 * the evaluation matrix's workers (PR 2) and, since the simulation
 * service, every daemon job that names the same dataset. The first
 * consumer needing a (name, weighted) combination loads it while the
 * others block on a shared future — no duplicate generation, no race on
 * the on-disk binary dataset cache — and the graph is freed as soon as
 * its last registered consumer releases it.
 *
 * Lifecycle per consumer: expect() reserves a reference (admission
 * time), get() fetches the shared graph (loading it on the first call),
 * release() drops the reference (always, whether or not get() was ever
 * called). The pool is safe to use from any number of threads.
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/csr.hh"

namespace gds::harness
{

class DatasetPool
{
  public:
    using GraphPtr = std::shared_ptr<const graph::Csr>;

    /**
     * Maps a (name, weighted) pair to a loaded graph. The default
     * loader is harness::loadDataset (Table 4 datasets with the on-disk
     * binary cache); the simulation service installs a loader that also
     * understands ad-hoc RMAT requests.
     */
    using Loader =
        std::function<graph::Csr(const std::string &name, bool weighted)>;

    /** Pool with the default Table 4 loader. */
    DatasetPool();

    /** Pool with a custom loader. */
    explicit DatasetPool(Loader dataset_loader);

    DatasetPool(const DatasetPool &) = delete;
    DatasetPool &operator=(const DatasetPool &) = delete;

    /** Register one consumer that may need (name, weighted). */
    void expect(const std::string &name, bool weighted);

    /**
     * Fetch the shared graph, loading it on the first call. Requires a
     * preceding expect(). A loader failure is rethrown to every waiter.
     */
    GraphPtr get(const std::string &name, bool weighted);

    /**
     * One consumer of (name, weighted) is done; free the graph after
     * the last one (whether or not it ever called get()).
     */
    void release(const std::string &name, bool weighted);

    /** Number of datasets currently loaded (or loading). */
    std::size_t residentCount() const;

    /** Keys ("name|w" / "name|u") of resident datasets, sorted. */
    std::vector<std::string> residentKeys() const;

    /** Total refcount over all slots (consumers not yet released). */
    std::size_t pendingConsumers() const;

    /**
     * Total bytes of live file mappings behind resident graphs
     * (mmap-served datasets; these pages are shared and reclaimable).
     * Still-loading slots are skipped — gauges never block on a load.
     */
    std::uint64_t mappedBytes() const;

    /** Total heap bytes of resident graphs' owned arrays. */
    std::uint64_t heapBytes() const;

  private:
    struct Slot
    {
        std::promise<GraphPtr> promise;
        std::shared_future<GraphPtr> future;
        unsigned remaining = 0;
    };

    static std::string key(const std::string &name, bool weighted);

    Loader loader;
    mutable std::mutex mu;
    std::map<std::string, Slot> slots; // node-stable under insert/erase
};

} // namespace gds::harness
