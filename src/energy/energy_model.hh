/**
 * @file
 * Power, area and energy models (the role Synopsys DC + PrimeTime + Cacti
 * play in the paper's methodology, Sec. 6).
 *
 * Per-module power/area constants at 16 nm are calibrated so the default
 * GraphDynS configuration reproduces the paper's synthesis results:
 * 3.38 W and 12.08 mm2 total, with the Fig. 8 breakdown (Processor 59% of
 * power / 8% of area, Updater 36% / 90%, Dispatcher+Prefetcher ~5% / ~2%).
 * Because the constants are per instance, the model also scales with the
 * UE-count sweep of Fig. 14e. HBM energy uses 7 pJ/bit (O'Connor,
 * Memory Forum 2014 -- the paper's reference [44]).
 *
 * Graphicionado's constants are derived from the same component library
 * (128 single-issue streams, 64 MB of eDRAM), landing at the paper's
 * reported relation: GraphDynS consumes ~68% of Graphicionado's power in
 * ~57% of its area.
 */

#pragma once

#include "baseline/graphicionado.hh"
#include "core/config.hh"

namespace gds::energy
{

/** Power (W) and area (mm2) of one module group. */
struct ModuleCost
{
    double powerW = 0.0;
    double areaMm2 = 0.0;
};

/** Fig. 8: per-component breakdown of the accelerator. */
struct AcceleratorBreakdown
{
    ModuleCost dispatcher;
    ModuleCost processor;
    ModuleCost updater; ///< UEs (VB eDRAM + RU + AU) + crossbar
    ModuleCost prefetcher;

    double
    totalPowerW() const
    {
        return dispatcher.powerW + processor.powerW + updater.powerW +
               prefetcher.powerW;
    }

    double
    totalAreaMm2() const
    {
        return dispatcher.areaMm2 + processor.areaMm2 + updater.areaMm2 +
               prefetcher.areaMm2;
    }
};

/** Per-instance constants of the 16 nm component library. */
struct ComponentLibrary
{
    // Dispatching Element: a simple in-order core.
    double dePowerW = 0.00211;
    double deAreaMm2 = 0.0030;
    // Processing Element: 8-lane SIMT core with FP add/mul/compare.
    double pePowerW = 0.12465;
    double peAreaMm2 = 0.0604;
    // Updating Element: 256 KB dual-ported eDRAM slice + Reduce Pipeline
    // + Activating Unit + Ready-to-Update Bitmap.
    double uePowerW = 0.00795;
    double ueAreaMm2 = 0.0695;
    // Crossbar switch: wire-dominated, scaling with radix^2 (Cakir et
    // al., NOCS 2015 -- the paper's reference [9]).
    double crossbarPowerWAtRadix128 = 0.2;
    double crossbarAreaMm2AtRadix128 = 1.97;
    // Prefetcher (Vpref + Epref + prefetch buffers).
    double prefetcherPowerW = 0.1352;
    double prefetcherAreaMm2 = 0.2416;
    // Graphicionado library: single-issue stream pipeline + eDRAM
    // (eDRAM density consistent with the UE slices above: the paper's
    // relation -- GraphDynS at 68% of the power in 57% of the area --
    // pins these).
    double streamPowerW = 0.0307;
    double streamAreaMm2 = 0.0227;
    double edramPowerWPerMb = 0.0120;
    double edramAreaMm2PerMb = 0.2780;
    // HBM access energy (O'Connor 2014).
    double hbmPjPerBit = 7.0;
};

/** Energy of one accelerator run, split per component (Figs. 9/10). */
struct EnergyBreakdown
{
    double dispatcherJ = 0.0;
    double processorJ = 0.0;
    double updaterJ = 0.0;
    double prefetcherJ = 0.0;
    double hbmJ = 0.0;

    double
    totalJ() const
    {
        return dispatcherJ + processorJ + updaterJ + prefetcherJ + hbmJ;
    }

    /** Fraction of total energy spent in HBM (paper: ~92% on average). */
    double
    hbmShare() const
    {
        const double total = totalJ();
        return total > 0.0 ? hbmJ / total : 0.0;
    }
};

/** The power/area/energy model. */
class EnergyModel
{
  public:
    explicit EnergyModel(const ComponentLibrary &library = {})
        : lib(library)
    {}

    /** Fig. 8: GraphDynS power/area breakdown for a configuration. */
    AcceleratorBreakdown gdsBreakdown(const core::GdsConfig &cfg) const;

    /** Graphicionado power/area for a configuration. */
    AcceleratorBreakdown graphicionadoBreakdown(
        const baseline::GraphicionadoConfig &cfg) const;

    /**
     * Energy of a GraphDynS run: component power x execution time plus
     * HBM energy at 7 pJ/bit over the bytes actually moved.
     */
    EnergyBreakdown gdsEnergy(const core::GdsConfig &cfg, Cycle cycles,
                              std::uint64_t hbm_bytes) const;

    /** Energy of a Graphicionado run (same accounting). */
    EnergyBreakdown graphicionadoEnergy(
        const baseline::GraphicionadoConfig &cfg, Cycle cycles,
        std::uint64_t hbm_bytes) const;

    /** HBM energy for a byte count. */
    double
    hbmEnergyJ(std::uint64_t bytes) const
    {
        return static_cast<double>(bytes) * 8.0 * lib.hbmPjPerBit * 1e-12;
    }

    const ComponentLibrary &library() const { return lib; }

  private:
    ComponentLibrary lib;
};

} // namespace gds::energy
