#include "energy/energy_model.hh"

namespace gds::energy
{

AcceleratorBreakdown
EnergyModel::gdsBreakdown(const core::GdsConfig &cfg) const
{
    AcceleratorBreakdown b;
    b.dispatcher.powerW = lib.dePowerW * cfg.numDispatchers;
    b.dispatcher.areaMm2 = lib.deAreaMm2 * cfg.numDispatchers;
    b.processor.powerW = lib.pePowerW * cfg.numPes;
    b.processor.areaMm2 = lib.peAreaMm2 * cfg.numPes;

    // Crossbar cost scales with radix^2 (wire dominated).
    const double radix_sq_scale =
        static_cast<double>(cfg.numUes) * cfg.numUes / (128.0 * 128.0);
    b.updater.powerW = lib.uePowerW * cfg.numUes +
                       lib.crossbarPowerWAtRadix128 * radix_sq_scale;
    b.updater.areaMm2 = lib.ueAreaMm2 * cfg.numUes +
                        lib.crossbarAreaMm2AtRadix128 * radix_sq_scale;

    b.prefetcher.powerW = lib.prefetcherPowerW;
    b.prefetcher.areaMm2 = lib.prefetcherAreaMm2;
    return b;
}

AcceleratorBreakdown
EnergyModel::graphicionadoBreakdown(
    const baseline::GraphicionadoConfig &cfg) const
{
    AcceleratorBreakdown b;
    // Graphicionado has no dispatcher; streams subsume processing and
    // updating; the dominant cost is the 64 MB eDRAM.
    b.processor.powerW = lib.streamPowerW * cfg.numStreams;
    b.processor.areaMm2 = lib.streamAreaMm2 * cfg.numStreams;
    const double edram_mb =
        static_cast<double>(cfg.onChipBytes) / (1024.0 * 1024.0);
    b.updater.powerW = lib.edramPowerWPerMb * edram_mb;
    b.updater.areaMm2 = lib.edramAreaMm2PerMb * edram_mb;
    b.prefetcher.powerW = lib.prefetcherPowerW * 2.0; // per-stream units
    b.prefetcher.areaMm2 = lib.prefetcherAreaMm2 * 2.0;
    return b;
}

namespace
{

EnergyBreakdown
runEnergy(const AcceleratorBreakdown &b, Cycle cycles, double hbm_j)
{
    const double seconds = static_cast<double>(cycles) * 1e-9; // 1 GHz
    EnergyBreakdown e;
    e.dispatcherJ = b.dispatcher.powerW * seconds;
    e.processorJ = b.processor.powerW * seconds;
    e.updaterJ = b.updater.powerW * seconds;
    e.prefetcherJ = b.prefetcher.powerW * seconds;
    e.hbmJ = hbm_j;
    return e;
}

} // namespace

EnergyBreakdown
EnergyModel::gdsEnergy(const core::GdsConfig &cfg, Cycle cycles,
                       std::uint64_t hbm_bytes) const
{
    return runEnergy(gdsBreakdown(cfg), cycles, hbmEnergyJ(hbm_bytes));
}

EnergyBreakdown
EnergyModel::graphicionadoEnergy(const baseline::GraphicionadoConfig &cfg,
                                 Cycle cycles,
                                 std::uint64_t hbm_bytes) const
{
    return runEnergy(graphicionadoBreakdown(cfg), cycles,
                     hbmEnergyJ(hbm_bytes));
}

} // namespace gds::energy
