/**
 * @file
 * GraphDynS Scatter phase (Fig. 3c): active-record streaming (Vpref),
 * exact edge prefetching (Epref), workload-balanced dispatch (DEs),
 * SIMT edge processing (PEs), crossbar routing, and the zero-stall
 * store-reduce pipeline (UEs).
 */

#include "core/detail.hh"
#include "core/gds_accel.hh"

#include "common/debug.hh"

namespace gds::core
{

using detail::Tag;
using detail::makeTag;
using detail::tagKind;
using detail::tagPayload;
using detail::maxRequestBytes;

void
GdsAccel::startScatter()
{
    DPRINTF(Phase, "iter %u slice %u: Scatter starts (%zu active)",
            iteration, curSlice, activeCur[curSlice].size());
    if (curSlice == 0)
        traceBegin("iteration:" + std::to_string(iteration));
    traceBegin("scatter");
    phase = Phase::ScatterPhase;
    const auto &records = activeCur[curSlice];

    sc = ScatterState{};
    sc.recordsTotal = records.size();
    for (const ActiveRecord &r : records)
        sc.expectedEdges += r.edgeCnt;
    sc.batchesTotal = ceilDiv<std::uint64_t>(sc.recordsTotal,
                                             cfg.vprefBatch);
    sc.batchReady.assign(sc.batchesTotal, 0);
    sc.fetch.assign(sc.recordsTotal, RecordFetch{});
    sc.fetchedEdges.assign(sc.recordsTotal, {});

    // Sliced, non-resetting algorithms restore this slice's temporary
    // properties into the Vertex Buffer from the property array (see
    // DESIGN.md: min/max algorithms satisfy tProp==f(prop) after Apply,
    // so the fill is timing/traffic only -- the functional tProp array
    // is already correct).
    if (sliceCount > 1 && !algo.tPropResetsEachIteration()) {
        sc.fillCursor = layout->propAddr(sliceBegin(curSlice));
        sc.fillBytesLeft =
            static_cast<std::uint64_t>(sliceEnd(curSlice) -
                                       sliceBegin(curSlice)) *
            bytesPerWord;
    }

    for (De &de : des)
        de.chunkCursor = 0;
}

bool
GdsAccel::scatterDone() const
{
    return sc.recordsDispatched == sc.recordsTotal &&
           sc.edgesReduced == sc.expectedEdges &&
           sc.fillBytesLeft == 0 && sc.fillOutstanding == 0;
}

void
GdsAccel::tickScatter()
{
    // Consumers before producers: a value produced in cycle N is consumed
    // in cycle N+1 at the earliest.
    tickUes();
    tickPesScatter();
    tickDispatchers();
    tickEpref();
    tickVpref();
}

bool
GdsAccel::scatterQuiescent() const
{
    // Mirrors tickScatter() stage by stage: true only when every stage
    // would provably do nothing but per-cycle wait accounting (which
    // skipCycles() replays) and, crucially, would attempt no HBM access --
    // even a refused access draws fault-injector randomness.
    // perfectMem is resolved once per run (GdsAccel::run), so this
    // predicate and dispatchChunk() can never disagree about it.

    // A drained phase transitions at the end of its next tick.
    if (scatterDone())
        return false;

    // PEs and UEs: pending flits would route, queued edges would process,
    // queued updates would reduce. The aggregate occupancy counters stand
    // in for scanning every engine.
    if (scFlitsBuffered != 0 || scEdgesQueued != 0 || ueFlitsQueued != 0)
        return false;
    // DEs: a head record with edges but no data waits (statDeWaitReady);
    // anything else makes progress. With every PE queue empty a ready head
    // always dispatches, so "blocked on a full PE queue" cannot occur here.
    for (const De &de : des) {
        if (de.vpb.empty())
            continue;
        if (perfectMem)
            return false; // dispatch would materialize the record
        const std::uint64_t rec = de.vpb.front();
        if (activeCur[curSlice][rec].edgeCnt == 0 || sc.fetch[rec].ready)
            return false;
    }
    // Epref: walk the same window tickEpref() scans. Skipping a record
    // for buffer budget is pure; reaching any other case pops a zero-edge
    // record or attempts an access.
    if (!sc.eprefPending.empty() &&
        eportRead.inflight() < cfg.eprefMaxInflight) {
        bool budget_blocked = false;
        const std::size_t window =
            std::min<std::size_t>(sc.eprefPending.size(), 8);
        for (std::size_t w = 0; w < window; ++w) {
            const std::uint64_t rec = sc.eprefPending[w];
            const ActiveRecord &r = activeCur[curSlice][rec];
            const RecordFetch &f = sc.fetch[rec];
            if (r.edgeCnt == 0)
                return false;
            if (!f.reserved &&
                (budget_blocked ||
                 (sc.bufferedEdges > 0 &&
                  sc.bufferedEdges + r.edgeCnt > cfg.eprefBufferEdges))) {
                budget_blocked = true;
                continue;
            }
            return false;
        }
    }
    // Vpref: the tProp fill and the record stream would issue; a commit
    // goes through unless blocked on batch data or a full VPB RAM.
    if (sc.fillBytesLeft > 0 &&
        vportRead.inflight() < cfg.vprefMaxInflight)
        return false;
    if (sc.batchesIssued < sc.batchesTotal &&
        vportRead.inflight() < cfg.vprefMaxInflight)
        return false;
    if (sc.commitCursor < sc.recordsTotal) {
        const std::uint64_t k = sc.commitCursor;
        if (sc.batchReady[k / cfg.vprefBatch] &&
            des[k % cfg.numDispatchers].vpb.canPush())
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------
// Vpref: stream active-vertex records (and the sliced-run tProp fill).
// ---------------------------------------------------------------------

void
GdsAccel::tickVpref()
{
    // tProp fill traffic (sequential stream of this slice's properties).
    while (sc.fillBytesLeft > 0 &&
           vportRead.inflight() < cfg.vprefMaxInflight) {
        const unsigned chunk = static_cast<unsigned>(
            std::min<std::uint64_t>(sc.fillBytesLeft, maxRequestBytes));
        if (!hbm->access(sc.fillCursor, chunk, false,
                         makeTag(Tag::TPropFill, 0), &vportRead))
            break;
        sc.fillCursor += chunk;
        sc.fillBytesLeft -= chunk;
        ++sc.fillOutstanding;
    }

    // Issue active-record stream requests (batches of vprefBatch records).
    while (sc.batchesIssued < sc.batchesTotal &&
           vportRead.inflight() < cfg.vprefMaxInflight) {
        const std::uint64_t b = sc.batchesIssued;
        const std::uint64_t first = b * cfg.vprefBatch;
        const std::uint64_t count =
            std::min<std::uint64_t>(cfg.vprefBatch,
                                    sc.recordsTotal - first);
        const Addr addr = layout->activeRecordAddr(activeBuf, first);
        const unsigned bytes = static_cast<unsigned>(
            count * layout->fmt.activeRecordBytes);
        if (!hbm->access(addr, bytes, false, makeTag(Tag::RecordBatch, b),
                         &vportRead))
            break;
        ++sc.batchesIssued;
    }

    // Commit records in arrival order into the per-DE VPB RAMs
    // (RAM id = arrival order % number of DEs, Sec. 5.2.2) and announce
    // them to Epref.
    unsigned committed = 0;
    while (sc.commitCursor < sc.recordsTotal &&
           committed < cfg.numDispatchers) {
        const std::uint64_t k = sc.commitCursor;
        if (!sc.batchReady[k / cfg.vprefBatch]) {
            ++statCommitBlockedBatch;
            break;
        }
        De &de = des[k % cfg.numDispatchers];
        if (!de.vpb.canPush()) {
            ++statCommitBlockedVpb;
            break;
        }
        de.vpb.push(k);
        sc.eprefPending.push_back(k);
        ++sc.commitCursor;
        ++committed;
    }
}

// ---------------------------------------------------------------------
// Epref: fetch edge data. Exact mode knows (offset, edgeCnt) from the
// active record, streams precisely those bytes, and coalesces adjacent
// lists into large requests. Non-exact mode (EP ablation off) models the
// prior-design alternative the paper describes: the offset comes from a
// large on-chip cache (Graphicionado's solution, so no dependent memory
// read), but fetches are per-record, cacheline-granular (64 B) and never
// coalesced -- wasting bandwidth and in-flight request slots.
// ---------------------------------------------------------------------

void
GdsAccel::materializeRecord(std::uint64_t rec_index)
{
    const ActiveRecord &r = activeCur[curSlice][rec_index];
    const graph::Csr &sg = sliceGraph(curSlice);
    auto &edges = sc.fetchedEdges[rec_index];
    edges.reserve(r.edgeCnt);
    for (std::uint32_t i = 0; i < r.edgeCnt; ++i) {
        const EdgeId e = r.offset + i;
        edges.push_back(EdgeTask{sg.edgeDest(e),
                                 weighted ? sg.edgeWeight(e) : Weight{1},
                                 r.prop});
    }
    sc.fetch[rec_index].ready = true;
}

void
GdsAccel::tickEpref()
{
    // Scan a small window of pending records each cycle. Offset lookups
    // (non-exact mode) may overlap freely; reorder-buffer budget is
    // granted strictly in FIFO order so that a deep record of a DE can
    // never starve that DE's own head-of-queue record. In exact mode,
    // adjacent records with contiguous edge ranges are coalesced into one
    // request (Sec. 5.2.1: "coalesce memory accesses to edge data and
    // maximize the number of in-flight memory requests").
    unsigned issued = 0;
    bool budget_blocked = false;
    std::size_t w = 0;
    while (w < std::min<std::size_t>(sc.eprefPending.size(), 8) &&
           issued < 4 && eportRead.inflight() < cfg.eprefMaxInflight) {
        const std::uint64_t rec = sc.eprefPending[w];
        const ActiveRecord &r = activeCur[curSlice][rec];
        RecordFetch &f = sc.fetch[rec];

        if (r.edgeCnt == 0) {
            f.ready = true;
            sc.eprefPending.erase(sc.eprefPending.begin() +
                                  static_cast<std::ptrdiff_t>(w));
            continue;
        }

        // Budget is granted FIFO; one oversize record may run alone.
        const auto over_budget = [this](std::uint64_t extra) {
            return sc.bufferedEdges > 0 &&
                   sc.bufferedEdges + extra > cfg.eprefBufferEdges;
        };
        if (!f.reserved && (budget_blocked || over_budget(r.edgeCnt))) {
            budget_blocked = true;
            ++w;
            continue;
        }

        const unsigned edge_bytes = layout->fmt.edgeBytes;
        const Addr begin =
            layout->edgeAddr(sliceEdgeStart[curSlice] + r.offset);
        const std::uint64_t r_bytes =
            static_cast<std::uint64_t>(r.edgeCnt) * edge_bytes;

        if (cfg.exactPrefetch && r_bytes <= maxRequestBytes &&
            f.bytesIssued == 0) {
            // Coalescing path: greedily absorb following pending records
            // whose edge ranges continue this one. Mutations happen only
            // after the request is accepted.
            std::uint64_t batch_bytes = r_bytes;
            std::uint64_t batch_edges = r.edgeCnt;
            std::size_t members = 1;
            while (w + members < sc.eprefPending.size()) {
                const std::uint64_t nrec = sc.eprefPending[w + members];
                const ActiveRecord &nr = activeCur[curSlice][nrec];
                if (nr.edgeCnt == 0)
                    break;
                const ActiveRecord &pr =
                    activeCur[curSlice][sc.eprefPending[w + members - 1]];
                if (nr.offset != pr.offset + pr.edgeCnt)
                    break; // not contiguous in the edge array
                const std::uint64_t n_bytes =
                    static_cast<std::uint64_t>(nr.edgeCnt) * edge_bytes;
                if (batch_bytes + n_bytes > maxRequestBytes)
                    break;
                if (over_budget(batch_edges + nr.edgeCnt))
                    break;
                batch_bytes += n_bytes;
                batch_edges += nr.edgeCnt;
                ++members;
            }
            const std::uint64_t batch_id = sc.fetchBatches.size();
            if (!hbm->access(begin,
                             static_cast<unsigned>(batch_bytes), false,
                             makeTag(Tag::EdgeBatch, batch_id),
                             &eportRead))
                break; // memory backpressure
            std::vector<std::uint64_t> group;
            group.reserve(members);
            for (std::size_t m = 0; m < members; ++m) {
                const std::uint64_t mrec = sc.eprefPending[w + m];
                RecordFetch &mf = sc.fetch[mrec];
                mf.reserved = true;
                mf.allIssued = true;
                group.push_back(mrec);
            }
            sc.bufferedEdges += batch_edges;
            sc.fetchBatches.push_back(std::move(group));
            sc.eprefPending.erase(
                sc.eprefPending.begin() + static_cast<std::ptrdiff_t>(w),
                sc.eprefPending.begin() +
                    static_cast<std::ptrdiff_t>(w + members));
            ++issued;
            continue;
        }

        // Large or non-exact records: issue bounded parts.
        if (!f.reserved) {
            f.reserved = true;
            sc.bufferedEdges += r.edgeCnt;
        }
        Addr part_begin = begin;
        Addr part_end = begin + r_bytes;
        if (!cfg.exactPrefetch) {
            // Over-fetch to 64 B cacheline granularity.
            part_begin = alignDown(part_begin, 64);
            part_end = alignUp(part_end, 64);
        }
        const std::uint64_t total = part_end - part_begin;
        const unsigned chunk = static_cast<unsigned>(
            std::min<std::uint64_t>(total - f.bytesIssued,
                                    maxRequestBytes));
        if (!hbm->access(part_begin + f.bytesIssued, chunk, false,
                         makeTag(Tag::EdgeFetch, rec), &eportRead)) {
            break; // memory backpressure: stop issuing entirely
        }
        f.bytesIssued += chunk;
        ++f.parts;
        ++issued;
        if (f.bytesIssued == total) {
            f.allIssued = true;
            sc.eprefPending.erase(sc.eprefPending.begin() +
                                  static_cast<std::ptrdiff_t>(w));
        } else {
            ++w;
        }
    }
}

// ---------------------------------------------------------------------
// Dispatcher: workload-balanced threshold dispatch (Sec. 5.1.1).
// ---------------------------------------------------------------------

void
GdsAccel::dispatchChunk(De &de, unsigned de_index)
{
    const std::uint64_t rec = de.vpb.front();
    const ActiveRecord &r = activeCur[curSlice][rec];
    RecordFetch &f = sc.fetch[rec];

    if (r.edgeCnt == 0) {
        de.vpb.pop();
        de.chunkCursor = 0;
        ++sc.recordsDispatched;
        return;
    }

    if (!f.ready && perfectMem)
        materializeRecord(rec);
    if (!f.ready) {
        ++statDeWaitReady;
        return;
    }

    auto &edges = sc.fetchedEdges[rec];

    if (!cfg.workloadBalance) {
        // Ablation: Graphicionado-style hash placement -- the whole edge
        // list stays on this DE's own PE, scheduled one edge at a time.
        Pe &pe = pes[de_index];
        std::uint32_t &cursor = de.chunkCursor;
        unsigned moved = 0;
        while (cursor < r.edgeCnt && moved < cfg.nSimt &&
               pe.edgeQueue.canPush()) {
            pe.edgeQueue.push(edges[cursor]);
            ++scEdgesQueued;
            ++cursor;
            ++moved;
            ++statSchedulingOps;
        }
        if (cursor == r.edgeCnt) {
            de.vpb.pop();
            de.chunkCursor = 0;
            ++sc.recordsDispatched;
            if (f.reserved) {
                sc.bufferedEdges -= r.edgeCnt;
                f.reserved = false;
            }
            edges = {};
        }
        return;
    }

    // Workload-balanced dispatch: lists below eThreshold go wholesale to
    // the paired PE; larger lists are split into eListSize chunks spread
    // round-robin over all PEs. One scheduling operation per cycle per DE.
    const bool split = r.edgeCnt >= cfg.eThreshold;
    const std::uint32_t chunk_len =
        split ? cfg.eListSize : r.edgeCnt;
    const std::uint32_t begin = de.chunkCursor * chunk_len;
    gds_assert(begin < r.edgeCnt, "dispatch cursor overran the edge list");
    const std::uint32_t len =
        std::min<std::uint32_t>(chunk_len, r.edgeCnt - begin);
    const unsigned target =
        split ? (de_index + de.chunkCursor) % cfg.numPes : de_index;

    Pe &pe = pes[target];
    if (pe.edgeQueue.size() + len > pe.edgeQueue.capacity()) {
        ++statDeBlockedPe;
        return; // backpressure: retry next cycle
    }

    for (std::uint32_t i = 0; i < len; ++i)
        pe.edgeQueue.push(edges[begin + i]);
    scEdgesQueued += len;
    ++statSchedulingOps;
    ++de.chunkCursor;

    if (begin + len == r.edgeCnt) {
        DPRINTF(Dispatch, "DE%u dispatched v%u (%u edges, %s)", de_index,
                r.vid, r.edgeCnt, split ? "split" : "whole");
        de.vpb.pop();
        de.chunkCursor = 0;
        ++sc.recordsDispatched;
        if (f.reserved) {
            sc.bufferedEdges -= r.edgeCnt;
            f.reserved = false;
        }
        edges = {};
    }
}

void
GdsAccel::tickDispatchers()
{
    for (unsigned i = 0; i < cfg.numDispatchers; ++i) {
        if (!des[i].vpb.empty())
            dispatchChunk(des[i], i);
        else
            ++statDeIdle;
    }
}

// ---------------------------------------------------------------------
// Processor: S2V vectorization + SIMT Process_Edge, results routed
// through the crossbar to the UEs.
// ---------------------------------------------------------------------

void
GdsAccel::tickPesScatter()
{
    // Each PE drives nSimt crossbar input lanes; refused flits wait in a
    // small per-PE output FIFO (one register per lane plus elasticity), so
    // a single hot UE does not freeze the whole SIMT vector -- only
    // sustained contention backpressures edge processing.
    const std::size_t flit_buffer_cap = 4u * cfg.nSimt;
    // Nothing buffered and nothing queued: no lane can do anything, and
    // with no tryRoute() calls this cycle the crossbar's per-cycle grant
    // state is never read, so skipping beginCycle() is state-identical.
    if (scFlitsBuffered == 0 && scEdgesQueued == 0)
        return;
    xbar->beginCycle();
    for (unsigned p = 0; p < cfg.numPes; ++p) {
        Pe &pe = pes[p];

        // Route up to nSimt buffered flits; blocked ones retry next cycle
        // (lanes are independent, so later flits may overtake a blocked
        // one -- Reduce is commutative, Sec. 5.2.3).
        unsigned routed = 0;
        auto it = pe.pendingFlits.begin();
        while (it != pe.pendingFlits.end() && routed < cfg.nSimt) {
            const unsigned ue = it->dst % cfg.numUes;
            if (ues[ue].inbox.canPush() && xbar->tryRoute(ue)) {
                ues[ue].inbox.push(*it);
                ++ueFlitsQueued;
                it = pe.pendingFlits.erase(it);
                --scFlitsBuffered;
                ++routed;
            } else {
                ++it;
            }
        }

        // S2V: assemble up to nSimt edges (merging small lists happens
        // naturally because the workload queue is edge-granular). Stall
        // only when the output FIFO cannot absorb a full vector.
        if (pe.pendingFlits.size() + cfg.nSimt > flit_buffer_cap)
            continue;
        const unsigned n = static_cast<unsigned>(
            std::min<std::size_t>(cfg.nSimt, pe.edgeQueue.size()));
        if (n == 0)
            continue;
        for (unsigned lane = 0; lane < n; ++lane) {
            const EdgeTask task = pe.edgeQueue.pop();
            const PropValue value =
                algo.processEdge(task.uProp, task.weight);
            pe.pendingFlits.push_back(ResultFlit{task.dst, value});
        }
        scEdgesQueued -= n;
        scFlitsBuffered += n;
        statEdgesProcessed += n;
        statPeEdges[p] += n;
        if (collectPeLoads)
            peLoadThisIteration[p] += n;
    }
}

// ---------------------------------------------------------------------
// Updater: store-reduce through the Reduce Pipeline (Sec. 5.2.3).
// ---------------------------------------------------------------------

void
GdsAccel::reduceFlit(const ResultFlit &flit)
{
    const PropValue old_value = tProp[flit.dst];
    const PropValue new_value = algo.reduce(old_value, flit.value);
    if (new_value != old_value) {
        tProp[flit.dst] = new_value;
        ++statTPropMods;
        if (cfg.updateScheduling)
            readyGroup[groupIndexOf(flit.dst)] = 1;
    }
    ++statReduceOps;
    statVbAccesses += 2; // read + write
    ++sc.edgesReduced;
    progressed(now);
}

void
GdsAccel::tickUes()
{
    if (ueFlitsQueued == 0)
        return;
    for (Ue &ue : ues) {
        if (ue.inbox.empty())
            continue;
        const ResultFlit &flit = ue.inbox.front();

        if (!cfg.zeroStallAtomics) {
            // Graphicionado-style: stall while a conflicting update is
            // still inside the 3-stage read/execute/write pipeline.
            bool conflict = false;
            for (unsigned k = 0; k < 2; ++k) {
                if (ue.pipeAddr[k] == flit.dst &&
                    now - ue.pipeCycle[k] < 3)
                    conflict = true;
            }
            if (conflict) {
                ++statAtomicStalls;
                continue;
            }
            ue.pipeAddr[1] = ue.pipeAddr[0];
            ue.pipeCycle[1] = ue.pipeCycle[0];
            ue.pipeAddr[0] = flit.dst;
            ue.pipeCycle[0] = now;
        }

        reduceFlit(flit);
        ue.inbox.pop();
        --ueFlitsQueued;
    }
}

} // namespace gds::core
