/**
 * @file
 * GraphDynS: the paper's accelerator, as a combined functional + cycle-level
 * timing model.
 *
 * The model executes the optimized programming model of Algorithm 2 on the
 * hardware organization of Fig. 3: a Prefetcher (Vpref + Epref) streaming
 * exactly the data the decoupled datapath announces, a Dispatcher of 16 DEs
 * performing workload-balanced threshold dispatch, a Processor of 16
 * 8-lane-SIMT PEs, and an Updater of 128 UEs behind a 128-radix crossbar,
 * each UE holding a 256 KB Vertex Buffer slice, a Ready-to-Update Bitmap,
 * a zero-stall Reduce Pipeline and an Activating Unit with coalesced,
 * double-buffered off-chip stores. Graphs whose temporary properties exceed
 * the 32 MB Vertex Buffer are processed in destination-range slices.
 *
 * Property values are computed for real during simulation, so every run's
 * output can be (and in the tests, is) compared against the functional
 * reference engine.
 *
 * The four data-aware scheduling techniques are individually switchable
 * (GdsConfig::workloadBalance / exactPrefetch / zeroStallAtomics /
 * updateScheduling), which is how the Fig. 14 ablation benches are built.
 */

#pragma once

#include <array>
#include <deque>
#include <memory>
#include <vector>

#include "algo/vcpm.hh"
#include "core/config.hh"
#include "core/memmap.hh"
#include "graph/slicer.hh"
#include "mem/crossbar.hh"
#include "mem/hbm.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "sim/fault.hh"
#include "sim/queues.hh"
#include "sim/simulator.hh"

namespace gds::core
{

/**
 * Checkpoint policy of one accelerator run. With a directory configured
 * the run periodically snapshots its complete state (datapath, HBM,
 * crossbar, fault RNG, sampler, tracer, driver) to
 * `<dir>/<basename>.ckpt`; with resume set it first tries to continue
 * from the newest valid checkpoint whose identity matches. See
 * DESIGN.md "Checkpoint & recovery".
 */
struct CheckpointOptions
{
    /** Checkpoint directory; empty disables checkpointing entirely. */
    std::string dir;
    /** File base name inside dir (one logical run per base name). */
    std::string basename = "run";
    /** Cycles between periodic checkpoints; 0 = only on graceful stop. */
    Cycle interval = 0;
    /** Try to resume from the newest valid checkpoint first. */
    bool resume = false;
    /** Extra identity salt (e.g. the harness config hash); a checkpoint
     *  written under a different salt is refused on resume. */
    std::string identity;
};

/** Options of one accelerator run. */
struct RunOptions
{
    VertexId source = 0;
    /** Record per-PE edge counts for every iteration (Fig. 14b). */
    bool collectPeLoads = false;
    /** Hard cycle budget; 0 = the 50e9-cycle default. */
    Cycle cycleBudget = 0;
    /** No-progress window before declaring deadlock/livelock; 0 = default. */
    Cycle stallCycles = 0;
    /** Faults to inject (HBM delays/drops, crossbar stalls). */
    sim::FaultPlan faults;
    /**
     * Interval sampler driven by the run's Simulator (not owned). When it
     * has no probes yet, the default probe set is registered (see
     * registerProbes()).
     */
    obs::Sampler *sampler = nullptr;
    /**
     * Emit per-component activity counter tracks into the thread's active
     * tracer every this many cycles; 0 keeps counter tracks off.
     */
    Cycle traceCounterInterval = 0;
    /**
     * Skip provably idle cycle stretches (cycle-exact; see DESIGN.md
     * "Simulation performance"). Overridden off by GDS_NO_FASTFORWARD,
     * GDS_PERFECT_MEM and GDS_PROGRESS.
     */
    bool fastForward = true;
    /** Checkpoint/resume policy (preemption tolerance). */
    CheckpointOptions checkpoint;
    /** Wall-clock budget in seconds; 0 = unlimited. An exhausted budget
     *  writes a final checkpoint (when configured) and the run returns
     *  RunOutcome::Timeout. */
    double wallBudgetSeconds = 0.0;
    /**
     * Crash-injection hook for the checkpoint tests: raise SIGKILL the
     * moment this many cycles have elapsed in this run. 0 disables.
     * Combined with CheckpointOptions this proves a resumed run is
     * bit-exact against an uninterrupted one.
     */
    Cycle killAtCycle = 0;
};

/** Outcome of one accelerator run. */
struct RunResult
{
    /**
     * Watchdog verdict + failure diagnostics. On anything other than
     * RunOutcome::Completed the remaining fields describe the partial
     * run up to the point the watchdog fired.
     */
    sim::RunReport report;
    std::vector<PropValue> properties;
    unsigned iterations = 0;
    Cycle cycles = 0;
    std::uint64_t edgesProcessed = 0;
    std::uint64_t vertexUpdates = 0;
    std::uint64_t updatesSkipped = 0;
    std::uint64_t memoryBytes = 0;
    std::uint64_t footprintBytes = 0;
    double bandwidthUtilization = 0.0;
    std::uint64_t schedulingOps = 0;
    std::uint64_t atomicStalls = 0;
    /** Per-iteration per-PE edge loads (only when collectPeLoads). */
    std::vector<std::vector<std::uint64_t>> peLoads;

    /** True when the run finished normally. */
    bool completed() const { return report.ok(); }

    /** Giga-traversed-edges per second at the 1 GHz clock. */
    double
    gteps() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(edgesProcessed) / cycles;
    }
};

/** The GraphDynS accelerator model. */
class GdsAccel : public sim::Component
{
  public:
    /**
     * Bind the accelerator to a graph and an algorithm.
     *
     * @param config hardware configuration (Table 3 defaults)
     * @param g the graph; must carry weights iff the algorithm needs them
     * @param algorithm the VCPM kernels to execute
     * @throws ConfigError when the configuration is inconsistent
     */
    GdsAccel(const GdsConfig &config, const graph::Csr &g,
             algo::VcpmAlgorithm &algorithm,
             sim::Component *parent = nullptr);
    ~GdsAccel() override;

    /**
     * Execute the algorithm to convergence (or the iteration cap) under
     * watchdog supervision. Never hangs: a wedged run returns with
     * RunResult::report naming the outcome and the stalled components.
     *
     * @throws ConfigError on an invalid source or fault plan
     */
    RunResult run(const RunOptions &options = {});

    void tick() override;
    bool busy() const override;
    std::string debugState() const override;

    /**
     * 1 unless the current cycle is provably a pure wait (no port response
     * pending and the active phase cannot move or touch memory); then the
     * earliest cycle that can change that: the HBM's own horizon and, in
     * the Apply phase, the earliest VB-pipeline maturity.
     */
    Cycle nextEventCycle() const override;

    /**
     * Replay @p cycles pure-wait ticks in bulk: phase cycle counters,
     * per-cycle bottleneck attribution, VB pipeline clocks and the HBM
     * (refresh schedule included) all advance exactly as @p cycles naive
     * tick() calls would have left them.
     */
    void skipCycles(Cycle cycles) override;

    bool supportsFastForward() const override { return true; }

    /**
     * Checkpoint the complete accelerator: functional property arrays,
     * frontier buffers, every DE/PE/UE queue and pipeline register, both
     * phase-state blocks, the HBM (ports registered on the
     * serializer first) and the crossbar. Configuration and the bound
     * graph/algorithm are rebuilt by the constructor and must match —
     * run() guards that with the checkpoint identity string.
     */
    void saveState(sim::Serializer &s) const override;
    void restoreState(sim::Deserializer &d) override;

    /** Activity = edges processed by the PEs (counter-track unit). */
    std::uint64_t
    activityCounter() const override
    {
        return static_cast<std::uint64_t>(statEdgesProcessed.value());
    }

    /**
     * Register the default interval-probe set on @p sampler: HBM
     * read/write bytes, crossbar conflicts, DE/PE/UE queue occupancies
     * and the frontier size. run() calls this automatically when
     * RunOptions::sampler arrives with no probes of its own.
     */
    void registerProbes(obs::Sampler &sampler) const;

    /** The memory device (bandwidth/traffic stats for the benches). */
    const mem::Hbm &hbmDevice() const { return *hbm; }

    /** Off-chip storage footprint (Fig. 11). */
    std::uint64_t footprintBytes() const { return layout->footprintBytes(); }

    /** Number of destination-range slices in use. */
    unsigned numSlices() const { return static_cast<unsigned>(
        sliceCount); }

  private:
    // ------------------------------------------------------------------
    // Record/flit types flowing between components.
    // ------------------------------------------------------------------

    /** Active vertex data (Sec. 4.1.1): prop + offset + edgeCnt = 12 B.
     *  vid is carried for functional simulation only. */
    struct ActiveRecord
    {
        VertexId vid;
        PropValue prop;
        std::uint32_t edgeCnt;
        EdgeId offset; ///< into the owning slice's edge array
    };

    /** One SIMT lane's worth of scatter work. */
    struct EdgeTask
    {
        VertexId dst;
        Weight weight;
        PropValue uProp;
    };

    /** Edge-processing result routed through the crossbar to a UE. */
    struct ResultFlit
    {
        VertexId dst;
        PropValue value;
    };

    /** An Apply-phase vertex list (vListSize consecutive vertices). */
    struct ApplyList
    {
        VertexId startVid;
        std::uint16_t count;
        std::uint32_t group; ///< index into ApplyState::groups
    };

    /** Per-record edge-prefetch bookkeeping. Large edge lists are fetched
     *  in several bounded requests ("parts"). */
    struct RecordFetch
    {
        bool reserved = false;   ///< buffer budget reserved
        bool allIssued = false;  ///< every part request issued
        bool ready = false;      ///< edge data available for dispatch
        std::uint32_t parts = 0; ///< part responses still outstanding
        std::uint64_t bytesIssued = 0;
    };

    /** Per-UE state: Reduce Pipeline history + AU batching. */
    struct Ue
    {
        sim::BoundedQueue<ResultFlit> inbox;
        // Zero-stall mode resolves RAW by forwarding; stall mode
        // (Graphicionado-style) must wait while a conflicting update is in
        // flight in the 3-stage pipeline.
        std::array<VertexId, 2> pipeAddr{invalidVertex, invalidVertex};
        std::array<Cycle, 2> pipeCycle{0, 0};

        explicit Ue(unsigned depth) : inbox(depth) {}
    };

    /** Per-PE state. */
    struct Pe
    {
        sim::BoundedQueue<EdgeTask> edgeQueue;       ///< scatter workload
        std::vector<ResultFlit> pendingFlits;        ///< xbar retry buffer
        sim::BoundedQueue<ApplyList> applyQueue;     ///< apply workload
        sim::DelayQueue<ApplyList> vbStage;          ///< VB read pipeline

        Pe(unsigned edge_cap, unsigned apply_cap, Cycle vb_latency)
            : edgeQueue(edge_cap), applyQueue(apply_cap),
              vbStage(4, vb_latency)
        {}
    };

    /** Per-DE dispatch progress on its current record. */
    struct De
    {
        sim::BoundedQueue<std::uint64_t> vpb; ///< record indices
        std::uint32_t chunkCursor = 0;

        explicit De(unsigned cap) : vpb(cap) {}
    };

    enum class Phase
    {
        ScatterPhase,
        ApplyPhase,
        Finished,
    };

    // ------------------------------------------------------------------
    // Phase bookkeeping.
    // ------------------------------------------------------------------

    struct ScatterState
    {
        std::uint64_t recordsTotal = 0;
        std::uint64_t expectedEdges = 0;
        std::uint64_t batchesTotal = 0;
        std::uint64_t batchesIssued = 0;
        std::vector<std::uint8_t> batchReady;
        std::uint64_t commitCursor = 0;   ///< next record to commit
        std::uint64_t recordsDispatched = 0;
        std::uint64_t edgesReduced = 0;
        std::uint64_t fillOutstanding = 0;
        Addr fillCursor = 0;
        std::uint64_t fillBytesLeft = 0;
        std::deque<std::uint64_t> eprefPending; ///< records awaiting fetch
        std::vector<RecordFetch> fetch;
        std::vector<std::vector<EdgeTask>> fetchedEdges;
        std::vector<std::vector<std::uint64_t>> fetchBatches;
        std::uint64_t bufferedEdges = 0;
    };

    struct GroupFetch
    {
        unsigned requestsIssued = 0; ///< prefetch requests sent so far
        unsigned outstanding = 0;    ///< HBM responses still due
        std::uint32_t listsPushed = 0;
        std::uint32_t remainingVerts = 0;
    };

    struct ApplyState
    {
        std::vector<VertexId> groups; ///< start vid of each ready group
        std::vector<GroupFetch> fetch;
        std::uint64_t groupsRequested = 0;
        std::uint64_t commitCursor = 0; ///< group currently pushing lists
        std::uint64_t groupsCompleted = 0;
        std::uint64_t auBufferedRecords = 0;
        Addr auWriteCursor = 0;
        std::deque<std::pair<Addr, unsigned>> propWrites;
    };

    // ------------------------------------------------------------------
    // Phase logic (gds_scatter.cc / gds_apply.cc).
    // ------------------------------------------------------------------

    void startIteration();
    void startScatter();
    void tickScatter();
    bool scatterDone() const;
    void tickVpref();
    void tickEpref();
    void materializeRecord(std::uint64_t rec_index);
    void tickDispatchers();
    void dispatchChunk(De &de, unsigned de_index);
    void tickPesScatter();
    void tickUes();
    void reduceFlit(const ResultFlit &flit);

    // Fast-forward quiescence predicates (one per phase; each mirrors its
    // phase's tick path and returns true only when that path is provably a
    // pure wait — per-cycle stats aside, which skipCycles() replays).
    bool scatterQuiescent() const;
    bool applyQuiescent() const;

    void startApply();
    void tickApply();
    bool applyDone() const;
    void tickApplyPrefetch();
    void tickApplyCommit();
    void tickPesApply();
    void applyVertex(VertexId v);
    void flushAu(bool force);

    void finishSlice();

    // Tracer hooks (one branch each when tracing is off).
    void traceBegin(std::string event);
    void traceEnd();

    // Helpers.
    const graph::Csr &sliceGraph(unsigned s) const;
    VertexId sliceBegin(unsigned s) const;
    VertexId sliceEnd(unsigned s) const;
    void buildInitialActives(VertexId source);
    void activateVertex(VertexId v, PropValue new_prop);
    std::uint64_t groupIndexOf(VertexId v) const
    {
        return v / cfg.rbGroupSize;
    }

    // ------------------------------------------------------------------
    // Configuration and bound inputs.
    // ------------------------------------------------------------------

    // gds-ckpt: skip(cfg) construction-time configuration; resume verifies
    // the config hash instead of serializing it
    GdsConfig cfg;
    // gds-ckpt: skip(fullGraph) non-owning reference to the immutable input
    // graph the caller rebinds on resume
    const graph::Csr &fullGraph;
    // gds-ckpt: skip(algo) non-owning reference to the stateless algorithm
    // kernel the caller rebinds on resume
    algo::VcpmAlgorithm &algo;
    // gds-ckpt: skip(weighted) derived from the algorithm kernel in the
    // constructor
    bool weighted;
    // gds-ckpt: skip(hasConstProp) derived from the algorithm kernel in the
    // constructor
    bool hasConstProp;

    // Slicing.
    // gds-ckpt: skip(sliceCount) derived from cfg and the graph in the
    // constructor
    unsigned sliceCount = 1;
    // gds-ckpt: skip(slices) deterministic re-partition of the immutable
    // input graph, rebuilt in the constructor
    std::vector<graph::Slice> slices; ///< empty when sliceCount == 1
    // gds-ckpt: skip(sliceEdgeStart) derived from slices in the constructor
    std::vector<EdgeId> sliceEdgeStart;

    // gds-ckpt: skip(layout) address map derived from cfg and the graph in
    // the constructor
    std::unique_ptr<MemoryLayout> layout;
    std::unique_ptr<mem::Hbm> hbm;
    std::unique_ptr<mem::Crossbar> xbar;

    // Functional state.
    std::vector<PropValue> prop;
    std::vector<PropValue> tProp;
    std::vector<PropValue> cProp;
    std::vector<std::uint8_t> readyGroup;
    std::vector<std::vector<ActiveRecord>> activeCur;  ///< per slice
    std::vector<std::vector<ActiveRecord>> activeNext; ///< per slice
    std::uint64_t activatedThisIteration = 0;

    // Microarchitectural state.
    std::vector<De> des;
    std::vector<Pe> pes;
    std::vector<Ue> ues;
    /**
     * Aggregate occupancy of the scatter datapath queues, maintained at
     * every push/pop. The per-tick stage walks and the fast-forward
     * quiescence predicate consult these instead of scanning all PEs/UEs,
     * which keeps idle stages O(1) per cycle.
     */
    std::uint64_t scEdgesQueued = 0;   ///< sum of PE edgeQueue sizes
    std::uint64_t scFlitsBuffered = 0; ///< sum of PE pendingFlits sizes
    std::uint64_t ueFlitsQueued = 0;   ///< sum of UE inbox sizes
    ScatterState sc;
    ApplyState ap;
    Phase phase = Phase::Finished;
    unsigned curSlice = 0;
    unsigned iteration = 0;
    unsigned activeBuf = 0;
    Cycle now = 0;
    /** Local clock at run() entry; serialized so a resumed run reports
     *  cycles spanning the whole logical run, not just the tail. */
    Cycle runStart = 0;
    /**
     * GDS_PERFECT_MEM, resolved exactly once at run() entry and used by
     * every consumer (dispatch materialization, the scatter quiescence
     * predicate, fast-forward gating). Run-scoped on purpose: a test or
     * a daemon job that flips the environment variable between runs gets
     * consistent behaviour within each run, and nothing latched in a
     * function-local static can leak across jobs sharing the process.
     */
    // gds-ckpt: skip(perfectMem) run-scoped environment latch, re-resolved
    // at run() entry on the resumed process before restore applies
    bool perfectMem = false;
    bool collectPeLoads = false;
    std::vector<std::uint64_t> peLoadThisIteration;
    std::vector<std::vector<std::uint64_t>> peLoadTrace;

    mem::HbmPort vportRead;  ///< Vpref record/vertex reads + tProp fill
    mem::HbmPort eportRead;  ///< Epref edge reads
    mem::HbmPort auPortWrite;///< AU active/prop stores

    // Stats.
    stats::Scalar statIterations;
    stats::Scalar statScatterCycles;
    stats::Scalar statApplyCycles;
    stats::Scalar statEdgesProcessed;
    stats::Scalar statVertexUpdates;
    stats::Scalar statUpdatesSkipped;
    stats::Scalar statSchedulingOps;
    stats::Scalar statAtomicStalls;
    stats::Scalar statTPropMods;
    stats::Scalar statApplyOps;
    stats::Scalar statVbAccesses;
    stats::Scalar statReduceOps;
    stats::Vector statPeEdges;
    // Bottleneck attribution counters (per DE-cycle / commit attempt).
    stats::Scalar statDeIdle;        ///< DE cycles with an empty VPB RAM
    stats::Scalar statDeWaitReady;   ///< DE cycles waiting on edge data
    stats::Scalar statDeBlockedPe;   ///< DE cycles blocked by a full PE queue
    stats::Scalar statCommitBlockedBatch; ///< commits stalled on Vpref data
    stats::Scalar statCommitBlockedVpb;   ///< commits stalled on a full VPB
};

} // namespace gds::core
