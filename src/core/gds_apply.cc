/**
 * @file
 * GraphDynS Apply phase (Fig. 3d): Ready-to-Update-Bitmap-driven selective
 * vertex prefetch, strided vertex-list dispatch, SIMT Apply on the PEs
 * reading the Vertex Buffer, and the Activating Unit's coalesced
 * double-buffered stores of properties and next-iteration active records.
 */

#include "core/detail.hh"
#include "core/gds_accel.hh"

#include "common/debug.hh"

namespace gds::core
{

using detail::Tag;
using detail::makeTag;

void
GdsAccel::startApply()
{
    DPRINTF(Phase, "iter %u slice %u: Apply starts", iteration, curSlice);
    traceEnd(); // "scatter"
    traceBegin("apply");
    phase = Phase::ApplyPhase;
    ap = ApplyState{};
    ap.auWriteCursor = layout->activeArrayBase(activeBuf ^ 1);

    const VertexId lo = sliceBegin(curSlice);
    const VertexId hi = sliceEnd(curSlice);
    std::uint64_t selected_verts = 0;
    for (VertexId b = lo; b < hi; b += cfg.rbGroupSize) {
        const bool ready = !cfg.updateScheduling ||
                           readyGroup[groupIndexOf(b)] != 0;
        if (!ready)
            continue;
        ap.groups.push_back(b);
        selected_verts += std::min<VertexId>(cfg.rbGroupSize, hi - b);
    }
    statUpdatesSkipped += static_cast<double>((hi - lo) - selected_verts);
    DPRINTF(Apply, "%zu ready groups selected, %llu vertices skipped",
            ap.groups.size(),
            static_cast<unsigned long long>((hi - lo) - selected_verts));

    ap.fetch.assign(ap.groups.size(), GroupFetch{});
    for (std::size_t g = 0; g < ap.groups.size(); ++g) {
        const VertexId b = ap.groups[g];
        ap.fetch[g].remainingVerts = static_cast<std::uint32_t>(
            std::min<VertexId>(cfg.rbGroupSize, hi - b));
    }
}

bool
GdsAccel::applyDone() const
{
    return ap.commitCursor == ap.groups.size() &&
           ap.groupsCompleted == ap.groups.size() &&
           ap.auBufferedRecords == 0 && ap.propWrites.empty() &&
           auPortWrite.inflight() == 0;
}

void
GdsAccel::tickApply()
{
    tickPesApply();
    tickApplyCommit();
    tickApplyPrefetch();
    // Flush sub-batch AU remainders once every group has been applied.
    flushAu(ap.groupsCompleted == ap.groups.size());
}

bool
GdsAccel::applyQuiescent() const
{
    // Mirrors tickApply() stage by stage: true only when each stage would
    // do nothing but advance VB pipeline clocks (replayed by skipCycles())
    // and attempt no HBM access.

    // A drained phase transitions at the end of its next tick.
    if (applyDone())
        return false;

    // PEs: a matured VB-stage entry applies; an empty stage slot pulls
    // from a non-empty list queue.
    for (const Pe &pe : pes) {
        if (pe.vbStage.ready())
            return false;
        if (!pe.applyQueue.empty() && pe.vbStage.canPush())
            return false;
    }
    // Commit: the head group pushes lists (or retires) once fully fetched,
    // unless its next list's PE queue is full.
    if (ap.commitCursor < ap.groups.size()) {
        const GroupFetch &gf = ap.fetch[ap.commitCursor];
        const unsigned total_reqs = 1 + sliceCount + (hasConstProp ? 1 : 0);
        if (gf.requestsIssued >= total_reqs && gf.outstanding == 0) {
            const std::uint32_t lists =
                ceilDiv(gf.remainingVerts, cfg.vListSize);
            if (gf.listsPushed >= lists)
                return false; // would retire the group
            if (pes[gf.listsPushed % cfg.numPes].applyQueue.canPush())
                return false; // would push a list
        }
    }
    // Prefetch: an open request window always attempts an access (the
    // group at the window head is never fully issued between ticks).
    if (ap.groupsRequested < ap.groups.size() &&
        ap.groupsRequested - ap.commitCursor < cfg.applyMaxInflightGroups)
        return false;
    // AU: pending property write-backs or a flushable record batch.
    if (!ap.propWrites.empty())
        return false;
    const bool force = ap.groupsCompleted == ap.groups.size();
    if (ap.auBufferedRecords >= cfg.auBatchRecords ||
        (force && ap.auBufferedRecords > 0))
        return false;
    return true;
}

// ---------------------------------------------------------------------
// Vpref (Apply): prefetch exactly the ready groups' vertex data --
// properties, offset-array runs for edgeCnt computation (one per slice,
// because activation needs every slice's edge counts), and the constant
// property for PR.
// ---------------------------------------------------------------------

void
GdsAccel::tickApplyPrefetch()
{
    while (ap.groupsRequested < ap.groups.size() &&
           ap.groupsRequested - ap.commitCursor <
               cfg.applyMaxInflightGroups) {
        const std::uint64_t g = ap.groupsRequested;
        const VertexId b = ap.groups[g];
        const std::uint32_t len = ap.fetch[g].remainingVerts;

        // All requests of a group are issued in one go; if the memory
        // refuses any of them we retry the whole group next cycle (the
        // request queue state is unchanged for unissued parts because we
        // track how many got through).
        unsigned &done = ap.fetch[g].requestsIssued;
        const unsigned total_reqs = 1 + sliceCount + (hasConstProp ? 1 : 0);
        bool blocked = false;
        while (done < total_reqs && !blocked) {
            bool ok = false;
            if (done == 0) {
                ok = hbm->access(layout->propAddr(b), len * bytesPerWord,
                                 false, makeTag(Tag::GroupData, g),
                                 &vportRead);
            } else if (done <= sliceCount) {
                // Offset run of slice (done - 1): len + 1 entries.
                ok = hbm->access(layout->offsetAddr(b),
                                 (len + 1) * bytesPerWord, false,
                                 makeTag(Tag::GroupData, g), &vportRead);
            } else {
                ok = hbm->access(layout->cPropAddr(b), len * bytesPerWord,
                                 false, makeTag(Tag::GroupData, g),
                                 &vportRead);
            }
            if (ok) {
                ++done;
                ++ap.fetch[g].outstanding;
            } else {
                blocked = true;
            }
        }
        if (done < total_reqs)
            break;
        ++ap.groupsRequested;
    }
}

// ---------------------------------------------------------------------
// DE (Apply): once a group's data has arrived, generate vListSize vertex
// lists and dispatch them with the fixed stride mapping (list j -> PE
// j % numPes), which by construction avoids Vertex Buffer conflicts.
// ---------------------------------------------------------------------

void
GdsAccel::tickApplyCommit()
{
    const unsigned total_reqs = 1 + sliceCount + (hasConstProp ? 1 : 0);
    while (ap.commitCursor < ap.groups.size()) {
        const std::uint64_t g = ap.commitCursor;
        GroupFetch &gf = ap.fetch[g];
        if (gf.requestsIssued < total_reqs || gf.outstanding > 0)
            break; // data not yet (fully requested and) on chip
        const VertexId b = ap.groups[g];
        const std::uint32_t len = gf.remainingVerts;
        const std::uint32_t lists = ceilDiv(len, cfg.vListSize);
        while (gf.listsPushed < lists) {
            const std::uint32_t j = gf.listsPushed;
            Pe &pe = pes[j % cfg.numPes];
            if (!pe.applyQueue.canPush())
                return; // backpressure: resume here next cycle
            const VertexId start = b + j * cfg.vListSize;
            const std::uint16_t count = static_cast<std::uint16_t>(
                std::min<std::uint32_t>(cfg.vListSize,
                                        len - j * cfg.vListSize));
            pe.applyQueue.push(ApplyList{
                start, count, static_cast<std::uint32_t>(g)});
            ++gf.listsPushed;
        }
        ++ap.commitCursor;
    }
}

// ---------------------------------------------------------------------
// PE (Apply): two-stage pipeline -- VB read (vbLatency cycles), then the
// SIMT Apply kernel, results handed to the AUs.
// ---------------------------------------------------------------------

void
GdsAccel::applyVertex(VertexId v)
{
    const PropValue cp = hasConstProp ? cProp[v] : PropValue{0};
    const PropValue apply_res = algo.apply(prop[v], tProp[v], cp);
    if (algo.changed(prop[v], apply_res)) {
        prop[v] = apply_res;
        activateVertex(v, apply_res);
        ++statVertexUpdates;
    } else if (algo.tPropResetsEachIteration()) {
        prop[v] = apply_res;
    }
    if (algo.tPropResetsEachIteration())
        tProp[v] = 0.0f; // PR's reduce identity
    ++statApplyOps;
    progressed(now);
}

void
GdsAccel::tickPesApply()
{
    for (Pe &pe : pes) {
        pe.vbStage.tick();
        if (pe.vbStage.ready()) {
            const ApplyList list = pe.vbStage.pop();
            for (std::uint16_t k = 0; k < list.count; ++k)
                applyVertex(list.startVid + k);
            statVbAccesses += list.count;
            GroupFetch &gf = ap.fetch[list.group];
            gds_assert(gf.remainingVerts >= list.count,
                       "group vertex accounting underflow");
            gf.remainingVerts -= list.count;
            if (gf.remainingVerts == 0) {
                // Whole group applied: write the property run back
                // (stored regardless of the per-vertex condition flag to
                // keep the store sequential, Sec. 5.3.2).
                const VertexId b = ap.groups[list.group];
                const VertexId hi = sliceEnd(curSlice);
                const std::uint32_t len = static_cast<std::uint32_t>(
                    std::min<VertexId>(cfg.rbGroupSize, hi - b));
                ap.propWrites.push_back(
                    {layout->propAddr(b), len * bytesPerWord});
                ++ap.groupsCompleted;
            }
        } else if (!pe.applyQueue.empty() && pe.vbStage.canPush()) {
            pe.vbStage.push(pe.applyQueue.pop());
        }
    }
}

// ---------------------------------------------------------------------
// AU: coalesced off-chip stores -- active records in auBatchRecords
// batches (double-buffered queues) and the pending property write-backs.
// ---------------------------------------------------------------------

void
GdsAccel::flushAu(bool force)
{
    // Property write-backs.
    while (!ap.propWrites.empty()) {
        const auto [addr, bytes] = ap.propWrites.front();
        if (!hbm->access(addr, bytes, true, makeTag(Tag::PropWrite, 0),
                         &auPortWrite))
            break;
        ap.propWrites.pop_front();
    }

    // Active-record stores, batched.
    const std::uint64_t batch = cfg.auBatchRecords;
    while (ap.auBufferedRecords >= batch ||
           (force && ap.auBufferedRecords > 0)) {
        const std::uint64_t n = std::min(ap.auBufferedRecords, batch);
        const unsigned bytes = static_cast<unsigned>(
            n * layout->fmt.activeRecordBytes);
        if (!hbm->access(ap.auWriteCursor, bytes, true,
                         makeTag(Tag::AuWrite, 0), &auPortWrite))
            break;
        ap.auWriteCursor += bytes;
        ap.auBufferedRecords -= n;
    }
}

} // namespace gds::core
