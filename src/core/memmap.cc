#include "core/memmap.hh"

namespace gds::core
{

namespace
{
constexpr Addr pageAlign = 4096;
}

MemoryLayout::MemoryLayout(VertexId num_vertices, EdgeId num_edges,
                           const RecordFormat &record_fmt,
                           bool has_const_prop, bool tprop_offchip)
    : fmt(record_fmt)
{
    Addr cursor = pageAlign; // keep address 0 unused
    auto place = [&cursor](std::uint64_t bytes) {
        const Addr base = cursor;
        cursor = alignUp(cursor + bytes, pageAlign);
        return base;
    };

    const std::uint64_t v = num_vertices;
    _offsetBase = place((v + 1) * bytesPerWord);
    _edgeBase = place(num_edges * fmt.edgeBytes);
    _propBase = place(v * bytesPerWord);
    _cPropBase = has_const_prop ? place(v * bytesPerWord) : 0;
    _activeBase0 = place(v * fmt.activeRecordBytes);
    _activeBase1 = place(v * fmt.activeRecordBytes);
    if (fmt.metadataBytesPerVertex > 0)
        place(v * fmt.metadataBytesPerVertex);
    const std::uint64_t resident = cursor - pageAlign;
    // The spill region sits above everything else; it only counts toward
    // the footprint when temporary properties actually live off-chip.
    _tPropBase = place(v * bytesPerWord);
    _footprint = tprop_offchip ? cursor - pageAlign : resident;
}

} // namespace gds::core
