/**
 * @file
 * Implementation-internal helpers shared by the GraphDynS phase files:
 * HBM request tag encoding and request size limits. Not part of the
 * public API.
 */

#pragma once

#include <cstdint>

namespace gds::core::detail
{

/** HBM request tag kinds (high byte of the tag). */
enum class Tag : std::uint64_t
{
    RecordBatch = 1, ///< Vpref active-record stream (payload: batch index)
    TPropFill,       ///< VB fill for sliced runs
    EdgeFetch,       ///< Epref edge data (payload: record index)
    EdgeBatch,       ///< Epref coalesced edge data (payload: batch index)
    GroupData,       ///< Apply-phase group prefetch (payload: group index)
    AuWrite,         ///< AU active-record store
    PropWrite,       ///< Apply-phase property write-back
};

constexpr std::uint64_t
makeTag(Tag kind, std::uint64_t payload)
{
    return (static_cast<std::uint64_t>(kind) << 56) | payload;
}

constexpr Tag
tagKind(std::uint64_t tag)
{
    return static_cast<Tag>(tag >> 56);
}

constexpr std::uint64_t
tagPayload(std::uint64_t tag)
{
    return tag & ((1ULL << 56) - 1);
}

/** Largest single HBM request the prefetchers issue. */
constexpr unsigned maxRequestBytes = 512;

} // namespace gds::core::detail
