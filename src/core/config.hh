/**
 * @file
 * GraphDynS accelerator configuration (Table 3 + Sec. 5.1.3 parameters)
 * and the ablation knobs of the Fig. 14 scheduling study.
 */

#ifndef GDS_CORE_CONFIG_HH
#define GDS_CORE_CONFIG_HH

#include "common/types.hh"
#include "mem/hbm.hh"

namespace gds::core
{

/** Full accelerator configuration. Defaults match the paper. */
struct GdsConfig
{
    // --- Compute fabric (Table 3: 1 GHz, 16 x SIMT8) ---
    unsigned numDispatchers = 16; ///< DEs
    unsigned numPes = 16;         ///< PEs
    unsigned nSimt = 8;           ///< SIMT lanes per PE
    unsigned numUes = 128;        ///< UEs = crossbar radix

    // --- Scheduling parameters (Sec. 5.1.3) ---
    unsigned eThreshold = 128; ///< split edge lists above this
    unsigned eListSize = 16;   ///< sub-edge-list chunk size
    unsigned vListSize = 8;    ///< apply-phase vertex list size

    // --- On-chip memories ---
    std::uint64_t vbBytesPerUe = 256 * 1024; ///< 128 x 256 KB = 32 MB
    unsigned rbGroupSize = 256;   ///< vertices covered per RB bit
    unsigned ueQueueDepth = 8;    ///< UE input queue (crossbar sink)
    unsigned peQueueEdges = 512;  ///< per-PE edge workload queue (EPB share)
    unsigned vpbRecords = 64;     ///< active records buffered per DE RAM
    unsigned applyListQueue = 64; ///< apply vertex lists queued per PE
    unsigned auBatchRecords = 16; ///< active records per coalesced store
    Cycle vbLatency = 2;          ///< VB read latency in Apply

    // --- Prefetcher ---
    unsigned vprefBatch = 32;        ///< active records per stream request
    unsigned vprefMaxInflight = 32;  ///< outstanding record-stream requests
    unsigned eprefMaxInflight = 64;  ///< outstanding edge requests
    unsigned eprefBufferEdges = 16384;///< prefetched-not-yet-dispatched cap
    unsigned applyMaxInflightGroups = 32;

    // --- Data-aware dynamic scheduling knobs (Fig. 14c/d ablations) ---
    bool workloadBalance = true; ///< WB: threshold dispatch + splitting
    bool exactPrefetch = true;   ///< EP: exact edge prefetching
    bool zeroStallAtomics = true;///< AO: zero-stall Reduce Pipeline
    bool updateScheduling = true;///< US: RB-driven selective Apply

    // --- Run control ---
    unsigned maxIterations = 1000;

    // --- Memory system (Table 3: 512 GB/s HBM 1.0) ---
    mem::HbmConfig hbm;

    /** Vertices whose temporary property fits on chip (slice capacity). */
    VertexId
    sliceCapacity() const
    {
        const std::uint64_t cap =
            static_cast<std::uint64_t>(numUes) * vbBytesPerUe / bytesPerWord;
        return static_cast<VertexId>(
            std::min<std::uint64_t>(cap, invalidVertex - 1));
    }
};

} // namespace gds::core

#endif // GDS_CORE_CONFIG_HH
