/**
 * @file
 * GraphDynS accelerator configuration (Table 3 + Sec. 5.1.3 parameters)
 * and the ablation knobs of the Fig. 14 scheduling study.
 */

#pragma once

#include "common/bitutil.hh"
#include "common/error.hh"
#include "common/types.hh"
#include "mem/hbm.hh"

namespace gds::core
{

/** Full accelerator configuration. Defaults match the paper. */
struct GdsConfig
{
    // --- Compute fabric (Table 3: 1 GHz, 16 x SIMT8) ---
    unsigned numDispatchers = 16; ///< DEs
    unsigned numPes = 16;         ///< PEs
    unsigned nSimt = 8;           ///< SIMT lanes per PE
    unsigned numUes = 128;        ///< UEs = crossbar radix

    // --- Scheduling parameters (Sec. 5.1.3) ---
    unsigned eThreshold = 128; ///< split edge lists above this
    unsigned eListSize = 16;   ///< sub-edge-list chunk size
    unsigned vListSize = 8;    ///< apply-phase vertex list size

    // --- On-chip memories ---
    std::uint64_t vbBytesPerUe = 256 * 1024; ///< 128 x 256 KB = 32 MB
    unsigned rbGroupSize = 256;   ///< vertices covered per RB bit
    unsigned ueQueueDepth = 8;    ///< UE input queue (crossbar sink)
    unsigned peQueueEdges = 512;  ///< per-PE edge workload queue (EPB share)
    unsigned vpbRecords = 64;     ///< active records buffered per DE RAM
    unsigned applyListQueue = 64; ///< apply vertex lists queued per PE
    unsigned auBatchRecords = 16; ///< active records per coalesced store
    Cycle vbLatency = 2;          ///< VB read latency in Apply

    // --- Prefetcher ---
    unsigned vprefBatch = 32;        ///< active records per stream request
    unsigned vprefMaxInflight = 32;  ///< outstanding record-stream requests
    unsigned eprefMaxInflight = 64;  ///< outstanding edge requests
    unsigned eprefBufferEdges = 16384;///< prefetched-not-yet-dispatched cap
    unsigned applyMaxInflightGroups = 32;

    // --- Data-aware dynamic scheduling knobs (Fig. 14c/d ablations) ---
    bool workloadBalance = true; ///< WB: threshold dispatch + splitting
    bool exactPrefetch = true;   ///< EP: exact edge prefetching
    bool zeroStallAtomics = true;///< AO: zero-stall Reduce Pipeline
    bool updateScheduling = true;///< US: RB-driven selective Apply

    // --- Run control ---
    unsigned maxIterations = 1000;

    // --- Memory system (Table 3: 512 GB/s HBM 1.0) ---
    mem::HbmConfig hbm;

    /** Vertices whose temporary property fits on chip (slice capacity). */
    VertexId
    sliceCapacity() const
    {
        const std::uint64_t cap =
            static_cast<std::uint64_t>(numUes) * vbBytesPerUe / bytesPerWord;
        return static_cast<VertexId>(
            std::min<std::uint64_t>(cap, invalidVertex - 1));
    }
};

/**
 * First violated configuration contract, or nullptr when the config is
 * well formed. constexpr so the same predicate backs the compile-time
 * checks below (static_assert / checkedConfig) and the runtime
 * validateConfig() used for configs read from files or sweep axes.
 *
 * The contracts encode structural assumptions baked into the models:
 * power-of-two fabric widths (the crossbar routes by low destination
 * bits and the slicer masks rather than divides), HBM rows made of
 * whole transactions, and nonzero queue depths (a zero-depth queue
 * deadlocks the pipeline on the first push).
 */
constexpr const char *
configContractViolation(const GdsConfig &c)
{
    if (c.numDispatchers == 0)
        return "numDispatchers must be nonzero";
    if (c.numPes == 0 || !isPow2(c.numPes))
        return "numPes must be a nonzero power of two";
    if (c.nSimt == 0 || !isPow2(c.nSimt))
        return "nSimt must be a nonzero power of two";
    if (c.numUes == 0 || !isPow2(c.numUes))
        return "numUes must be a nonzero power of two";
    if (c.eThreshold == 0)
        return "eThreshold must be nonzero";
    if (c.eListSize == 0)
        return "eListSize must be nonzero";
    if (c.vListSize == 0)
        return "vListSize must be nonzero";
    if (c.vbBytesPerUe < bytesPerWord)
        return "vbBytesPerUe must hold at least one property word";
    if (c.rbGroupSize == 0)
        return "rbGroupSize must be nonzero";
    if (c.ueQueueDepth == 0)
        return "ueQueueDepth must be nonzero";
    if (c.peQueueEdges == 0)
        return "peQueueEdges must be nonzero";
    if (c.vpbRecords == 0)
        return "vpbRecords must be nonzero";
    if (c.applyListQueue == 0)
        return "applyListQueue must be nonzero";
    if (c.auBatchRecords == 0)
        return "auBatchRecords must be nonzero";
    if (c.vprefBatch == 0)
        return "vprefBatch must be nonzero";
    if (c.vprefMaxInflight == 0)
        return "vprefMaxInflight must be nonzero";
    if (c.eprefMaxInflight == 0)
        return "eprefMaxInflight must be nonzero";
    if (c.eprefBufferEdges < c.eListSize)
        return "eprefBufferEdges must hold at least one edge list";
    if (c.applyMaxInflightGroups == 0)
        return "applyMaxInflightGroups must be nonzero";
    if (c.maxIterations == 0)
        return "maxIterations must be nonzero";
    if (c.hbm.numChannels == 0)
        return "hbm.numChannels must be nonzero";
    if (c.hbm.banksPerChannel == 0)
        return "hbm.banksPerChannel must be nonzero";
    if (c.hbm.txBytes == 0 || !isPow2(c.hbm.txBytes))
        return "hbm.txBytes must be a nonzero power of two";
    if (c.hbm.rowBytes == 0 || c.hbm.rowBytes % c.hbm.txBytes != 0)
        return "hbm.rowBytes must be a nonzero multiple of hbm.txBytes";
    if (c.hbm.tBurst == 0)
        return "hbm.tBurst must be nonzero";
    if (c.hbm.queueDepth == 0)
        return "hbm.queueDepth must be nonzero";
    if (c.hbm.frfcfsWindow == 0)
        return "hbm.frfcfsWindow must be nonzero";
    return nullptr;
}

/** True iff every configuration contract holds. Usable in static_assert. */
constexpr bool
configContractsHold(const GdsConfig &c)
{
    return configContractViolation(c) == nullptr;
}

/**
 * Compile-time configuration gate: pass a config through checkedConfig()
 * in a constant-evaluated context and any contract violation becomes a
 * compile error naming the violated contract:
 *
 *   constexpr GdsConfig cfg = checkedConfig([]{
 *       GdsConfig c; c.nSimt = 8; return c; }());
 */
consteval GdsConfig
checkedConfig(GdsConfig c)
{
    if (const char *violation = configContractViolation(c))
        throw violation; // unreachable at runtime: consteval
    return c;
}

/** Runtime contract check for configs built from files or sweep axes. */
inline Status
validateConfig(const GdsConfig &c)
{
    if (const char *violation = configContractViolation(c))
        return Status::failure(ErrorCode::Config, violation);
    return Status();
}

// The paper's default configuration (Table 3) must itself be well formed.
static_assert(configContractsHold(GdsConfig{}),
              "default GdsConfig violates its own contracts");

} // namespace gds::core
