/**
 * @file
 * GraphDynS top level: construction, initialization, the run loop,
 * HBM response dispatch, and iteration/slice control.
 */

#include "core/gds_accel.hh"

#include "core/detail.hh"

namespace gds::core
{

using detail::Tag;
using detail::makeTag;
using detail::tagKind;
using detail::tagPayload;

GdsAccel::GdsAccel(const GdsConfig &config, const graph::Csr &g,
                   algo::VcpmAlgorithm &algorithm, sim::Component *parent)
    : sim::Component("graphdyns", parent),
      cfg(config),
      fullGraph(g),
      algo(algorithm),
      weighted(algorithm.usesWeights()),
      hasConstProp(algorithm.usesConstProp()),
      statIterations(&statsGroup(), "iterations", "iterations executed"),
      statScatterCycles(&statsGroup(), "scatterCycles",
                        "cycles spent in Scatter phases"),
      statApplyCycles(&statsGroup(), "applyCycles",
                      "cycles spent in Apply phases"),
      statEdgesProcessed(&statsGroup(), "edgesProcessed",
                         "edges processed by PEs"),
      statVertexUpdates(&statsGroup(), "vertexUpdates",
                        "vertices whose property changed in Apply"),
      statUpdatesSkipped(&statsGroup(), "updatesSkipped",
                         "Apply operations eliminated by the RB bitmap"),
      statSchedulingOps(&statsGroup(), "schedulingOps",
                        "Dispatcher scheduling operations"),
      statAtomicStalls(&statsGroup(), "atomicStalls",
                       "Reduce stalls from RAW conflicts"),
      statTPropMods(&statsGroup(), "tPropModifications",
                    "reduces that modified a temporary property"),
      statApplyOps(&statsGroup(), "applyOps", "Apply kernel executions"),
      statVbAccesses(&statsGroup(), "vbAccesses",
                     "Vertex Buffer read/write operations"),
      statReduceOps(&statsGroup(), "reduceOps", "Reduce kernel executions"),
      statPeEdges(&statsGroup(), "peEdges", "edges processed per PE",
                  config.numPes),
      statDeIdle(&statsGroup(), "deIdle", "DE cycles with empty VPB"),
      statDeWaitReady(&statsGroup(), "deWaitReady",
                      "DE cycles waiting for edge data"),
      statDeBlockedPe(&statsGroup(), "deBlockedPe",
                      "DE cycles blocked on a full PE queue"),
      statCommitBlockedBatch(&statsGroup(), "commitBlockedBatch",
                             "record commits stalled on Vpref data"),
      statCommitBlockedVpb(&statsGroup(), "commitBlockedVpb",
                           "record commits stalled on a full VPB RAM")
{
    gds_assert(!weighted || fullGraph.hasWeights(),
               "%s needs a weighted graph", algo.name().c_str());
    gds_assert(cfg.numUes % cfg.numPes == 0,
               "numUes must be a multiple of numPes");
    gds_assert(cfg.numDispatchers == cfg.numPes,
               "the DE->PE pairing assumes one DE per PE");
    // The workload queue must be able to hold the largest single
    // dispatch: a whole sub-threshold edge list or one split chunk.
    gds_assert(cfg.peQueueEdges >= cfg.eThreshold &&
                   cfg.peQueueEdges >= cfg.eListSize,
               "peQueueEdges (%u) must cover eThreshold (%u) and "
               "eListSize (%u) or dispatch can deadlock",
               cfg.peQueueEdges, cfg.eThreshold, cfg.eListSize);

    // Destination-range slicing when tProp exceeds the Vertex Buffer.
    const VertexId v_count = fullGraph.numVertices();
    const VertexId capacity = cfg.sliceCapacity();
    sliceCount = graph::numSlices(v_count, capacity);
    if (sliceCount > 1)
        slices = graph::sliceByDestination(fullGraph, capacity);

    sliceEdgeStart.resize(sliceCount, 0);
    EdgeId edge_cursor = 0;
    for (unsigned s = 0; s < sliceCount; ++s) {
        sliceEdgeStart[s] = edge_cursor;
        edge_cursor += sliceGraph(s).numEdges();
    }

    const RecordFormat fmt{weighted ? 8u : 4u, 12u, 0u};
    layout = std::make_unique<MemoryLayout>(v_count, edge_cursor, fmt,
                                            hasConstProp, sliceCount > 1);
    hbm = std::make_unique<mem::Hbm>(cfg.hbm, this);
    xbar = std::make_unique<mem::Crossbar>(cfg.numUes, this);

    for (unsigned i = 0; i < cfg.numDispatchers; ++i)
        des.emplace_back(cfg.vpbRecords);
    for (unsigned i = 0; i < cfg.numPes; ++i)
        pes.emplace_back(cfg.peQueueEdges, cfg.applyListQueue,
                         cfg.vbLatency);
    for (unsigned i = 0; i < cfg.numUes; ++i)
        ues.emplace_back(cfg.ueQueueDepth);
}

GdsAccel::~GdsAccel() = default;

const graph::Csr &
GdsAccel::sliceGraph(unsigned s) const
{
    return sliceCount == 1 ? fullGraph : slices[s].subgraph;
}

VertexId
GdsAccel::sliceBegin(unsigned s) const
{
    return sliceCount == 1 ? 0 : slices[s].dstBegin;
}

VertexId
GdsAccel::sliceEnd(unsigned s) const
{
    return sliceCount == 1 ? fullGraph.numVertices() : slices[s].dstEnd;
}

void
GdsAccel::buildInitialActives(VertexId source)
{
    activeCur.assign(sliceCount, {});
    activeNext.assign(sliceCount, {});
    auto add = [this](VertexId v) {
        for (unsigned s = 0; s < sliceCount; ++s) {
            const graph::Csr &sg = sliceGraph(s);
            activeCur[s].push_back(ActiveRecord{
                v, prop[v],
                static_cast<std::uint32_t>(sg.outDegree(v)),
                sg.offsetOf(v)});
        }
    };
    if (algo.allInitiallyActive()) {
        for (VertexId v = 0; v < fullGraph.numVertices(); ++v)
            add(v);
    } else {
        add(source);
    }
}

void
GdsAccel::activateVertex(VertexId v, PropValue new_prop)
{
    ++activatedThisIteration;
    for (unsigned s = 0; s < sliceCount; ++s) {
        const graph::Csr &sg = sliceGraph(s);
        activeNext[s].push_back(ActiveRecord{
            v, new_prop, static_cast<std::uint32_t>(sg.outDegree(v)),
            sg.offsetOf(v)});
    }
    ap.auBufferedRecords += sliceCount;
}

RunResult
GdsAccel::run(const RunOptions &options)
{
    const VertexId v_count = fullGraph.numVertices();
    gds_assert(v_count > 0, "cannot run on an empty graph");
    gds_assert(options.source < v_count, "source %u out of range",
               options.source);

    algo.bind(fullGraph);

    prop.resize(v_count);
    tProp.resize(v_count);
    for (VertexId v = 0; v < v_count; ++v) {
        prop[v] = algo.initialProp(v, fullGraph, options.source);
        tProp[v] = algo.tPropIdentity(v, fullGraph, options.source);
    }
    if (hasConstProp) {
        cProp.resize(v_count);
        for (VertexId v = 0; v < v_count; ++v)
            cProp[v] = algo.constProp(v, fullGraph);
    }
    readyGroup.assign(groupIndexOf(v_count - 1) + 1, 0);

    buildInitialActives(options.source);
    collectPeLoads = options.collectPeLoads;
    peLoadTrace.clear();
    peLoadThisIteration.assign(cfg.numPes, 0);

    iteration = 0;
    activeBuf = 0;
    activatedThisIteration = 0;
    startIteration();

    const Cycle start_cycle = now;
    constexpr Cycle watchdog = 50'000'000'000ULL;
    const bool progress = std::getenv("GDS_PROGRESS") != nullptr;
    while (phase != Phase::Finished) {
        tick();
        // Diagnostic heartbeat for debugging long runs (GDS_PROGRESS=1).
        if (progress && (now - start_cycle) % 1'000'000 == 0) {
            inform("cycle=%llu iter=%u slice=%u phase=%d "
                   "scatter=%llu/%llu reduced=%llu/%llu apply=%llu/%zu",
                   static_cast<unsigned long long>(now - start_cycle),
                   iteration, curSlice, static_cast<int>(phase),
                   static_cast<unsigned long long>(sc.recordsDispatched),
                   static_cast<unsigned long long>(sc.recordsTotal),
                   static_cast<unsigned long long>(sc.edgesReduced),
                   static_cast<unsigned long long>(sc.expectedEdges),
                   static_cast<unsigned long long>(ap.groupsCompleted),
                   ap.groups.size());
        }
        gds_assert(now - start_cycle < watchdog,
                   "GraphDynS run exceeded the watchdog cycle limit");
    }

    RunResult result;
    result.properties = prop;
    result.iterations = iteration;
    result.cycles = now - start_cycle;
    result.edgesProcessed =
        static_cast<std::uint64_t>(statEdgesProcessed.value());
    result.vertexUpdates =
        static_cast<std::uint64_t>(statVertexUpdates.value());
    result.updatesSkipped =
        static_cast<std::uint64_t>(statUpdatesSkipped.value());
    result.memoryBytes = static_cast<std::uint64_t>(hbm->totalBytes());
    result.footprintBytes = layout->footprintBytes();
    result.bandwidthUtilization = hbm->bandwidthUtilization();
    result.schedulingOps =
        static_cast<std::uint64_t>(statSchedulingOps.value());
    result.atomicStalls =
        static_cast<std::uint64_t>(statAtomicStalls.value());
    result.peLoads = peLoadTrace;
    return result;
}

void
GdsAccel::startIteration()
{
    activatedThisIteration = 0;
    curSlice = 0;
    // An iteration with no active vertices anywhere terminates the run.
    bool any_active = false;
    for (const auto &list : activeCur)
        any_active |= !list.empty();
    if (!any_active || iteration >= cfg.maxIterations) {
        phase = Phase::Finished;
        return;
    }
    startScatter();
}

void
GdsAccel::finishSlice()
{
    // Clear the Ready-to-Update bits this slice consumed.
    const std::uint64_t first = groupIndexOf(sliceBegin(curSlice));
    const std::uint64_t last = groupIndexOf(sliceEnd(curSlice) - 1);
    for (std::uint64_t g = first; g <= last; ++g)
        readyGroup[g] = 0;

    ++curSlice;
    if (curSlice < sliceCount) {
        startScatter();
        return;
    }

    // Iteration complete.
    ++iteration;
    ++statIterations;
    if (collectPeLoads) {
        peLoadTrace.push_back(peLoadThisIteration);
        peLoadThisIteration.assign(cfg.numPes, 0);
    }
    activeCur.swap(activeNext);
    for (auto &list : activeNext)
        list.clear();
    activeBuf ^= 1;
    startIteration();
}

void
GdsAccel::tick()
{
    // Deliver matured HBM responses to their owners.
    while (vportRead.hasResponse()) {
        const std::uint64_t tag = vportRead.popResponse();
        switch (tagKind(tag)) {
          case Tag::RecordBatch:
            sc.batchReady[tagPayload(tag)] = 1;
            break;
          case Tag::TPropFill:
            --sc.fillOutstanding;
            break;
          case Tag::GroupData: {
            GroupFetch &gf = ap.fetch[tagPayload(tag)];
            gds_assert(gf.outstanding > 0, "stray group response");
            --gf.outstanding;
            break;
          }
          default:
            panic("unexpected tag on the Vpref port");
        }
    }
    while (eportRead.hasResponse()) {
        const std::uint64_t tag = eportRead.popResponse();
        const std::uint64_t payload = tagPayload(tag);
        switch (tagKind(tag)) {
          case Tag::EdgeFetch: {
            RecordFetch &f = sc.fetch[payload];
            gds_assert(f.parts > 0, "stray edge response");
            --f.parts;
            if (f.allIssued && f.parts == 0)
                materializeRecord(payload);
            break;
          }
          case Tag::EdgeBatch:
            // One coalesced request served several whole records.
            for (const std::uint64_t rec : sc.fetchBatches[payload])
                materializeRecord(rec);
            break;
          default:
            panic("unexpected tag on the Epref port");
        }
    }
    while (auPortWrite.hasResponse())
        auPortWrite.popResponse(); // stores only gate phase completion

    switch (phase) {
      case Phase::ScatterPhase:
        ++statScatterCycles;
        tickScatter();
        if (scatterDone())
            startApply();
        break;
      case Phase::ApplyPhase:
        ++statApplyCycles;
        tickApply();
        if (applyDone())
            finishSlice();
        break;
      case Phase::Finished:
        break;
    }

    hbm->tick();
    ++now;
}

} // namespace gds::core
