/**
 * @file
 * GraphDynS top level: construction, initialization, the run loop,
 * HBM response dispatch, and iteration/slice control.
 */

#include "core/gds_accel.hh"

#include <algorithm>
#include <csignal>
#include <optional>
#include <sstream>

#include "common/parse.hh"
#include "core/detail.hh"
#include "sim/checkpoint.hh"

namespace gds::core
{

using detail::Tag;
using detail::makeTag;
using detail::tagKind;
using detail::tagPayload;

GdsAccel::GdsAccel(const GdsConfig &config, const graph::Csr &g,
                   algo::VcpmAlgorithm &algorithm, sim::Component *parent)
    : sim::Component("graphdyns", parent),
      cfg(config),
      fullGraph(g),
      algo(algorithm),
      weighted(algorithm.usesWeights()),
      hasConstProp(algorithm.usesConstProp()),
      statIterations(&statsGroup(), "iterations", "iterations executed"),
      statScatterCycles(&statsGroup(), "scatterCycles",
                        "cycles spent in Scatter phases"),
      statApplyCycles(&statsGroup(), "applyCycles",
                      "cycles spent in Apply phases"),
      statEdgesProcessed(&statsGroup(), "edgesProcessed",
                         "edges processed by PEs"),
      statVertexUpdates(&statsGroup(), "vertexUpdates",
                        "vertices whose property changed in Apply"),
      statUpdatesSkipped(&statsGroup(), "updatesSkipped",
                         "Apply operations eliminated by the RB bitmap"),
      statSchedulingOps(&statsGroup(), "schedulingOps",
                        "Dispatcher scheduling operations"),
      statAtomicStalls(&statsGroup(), "atomicStalls",
                       "Reduce stalls from RAW conflicts"),
      statTPropMods(&statsGroup(), "tPropModifications",
                    "reduces that modified a temporary property"),
      statApplyOps(&statsGroup(), "applyOps", "Apply kernel executions"),
      statVbAccesses(&statsGroup(), "vbAccesses",
                     "Vertex Buffer read/write operations"),
      statReduceOps(&statsGroup(), "reduceOps", "Reduce kernel executions"),
      statPeEdges(&statsGroup(), "peEdges", "edges processed per PE",
                  config.numPes),
      statDeIdle(&statsGroup(), "deIdle", "DE cycles with empty VPB"),
      statDeWaitReady(&statsGroup(), "deWaitReady",
                      "DE cycles waiting for edge data"),
      statDeBlockedPe(&statsGroup(), "deBlockedPe",
                      "DE cycles blocked on a full PE queue"),
      statCommitBlockedBatch(&statsGroup(), "commitBlockedBatch",
                             "record commits stalled on Vpref data"),
      statCommitBlockedVpb(&statsGroup(), "commitBlockedVpb",
                           "record commits stalled on a full VPB RAM")
{
    // User-facing configuration consistency: typed errors, not asserts,
    // so a bad sweep point fails its cell instead of killing the bench.
    if (weighted && !fullGraph.hasWeights())
        throw ConfigError(algo.name() + " needs a weighted graph");
    if (cfg.numPes == 0 || cfg.numUes % cfg.numPes != 0)
        throw ConfigError("numUes must be a positive multiple of numPes");
    if (cfg.numDispatchers != cfg.numPes)
        throw ConfigError("the DE->PE pairing assumes one DE per PE");
    // The workload queue must be able to hold the largest single
    // dispatch: a whole sub-threshold edge list or one split chunk.
    if (cfg.peQueueEdges < cfg.eThreshold ||
        cfg.peQueueEdges < cfg.eListSize) {
        throw ConfigError(gds::detail::vformat(
            "peQueueEdges (%u) must cover eThreshold (%u) and "
            "eListSize (%u) or dispatch can deadlock",
            cfg.peQueueEdges, cfg.eThreshold, cfg.eListSize));
    }

    // Destination-range slicing when tProp exceeds the Vertex Buffer.
    const VertexId v_count = fullGraph.numVertices();
    const VertexId capacity = cfg.sliceCapacity();
    sliceCount = graph::numSlices(v_count, capacity);
    if (sliceCount > 1)
        slices = graph::sliceByDestination(fullGraph, capacity);

    sliceEdgeStart.resize(sliceCount, 0);
    EdgeId edge_cursor = 0;
    for (unsigned s = 0; s < sliceCount; ++s) {
        sliceEdgeStart[s] = edge_cursor;
        edge_cursor += sliceGraph(s).numEdges();
    }

    const RecordFormat fmt{weighted ? 8u : 4u, 12u, 0u};
    layout = std::make_unique<MemoryLayout>(v_count, edge_cursor, fmt,
                                            hasConstProp, sliceCount > 1);
    hbm = std::make_unique<mem::Hbm>(cfg.hbm, this);
    xbar = std::make_unique<mem::Crossbar>(cfg.numUes, this);

    for (unsigned i = 0; i < cfg.numDispatchers; ++i)
        des.emplace_back(cfg.vpbRecords);
    for (unsigned i = 0; i < cfg.numPes; ++i)
        pes.emplace_back(cfg.peQueueEdges, cfg.applyListQueue,
                         cfg.vbLatency);
    for (unsigned i = 0; i < cfg.numUes; ++i)
        ues.emplace_back(cfg.ueQueueDepth);
}

GdsAccel::~GdsAccel() = default;

const graph::Csr &
GdsAccel::sliceGraph(unsigned s) const
{
    return sliceCount == 1 ? fullGraph : slices[s].subgraph;
}

VertexId
GdsAccel::sliceBegin(unsigned s) const
{
    return sliceCount == 1 ? 0 : slices[s].dstBegin;
}

VertexId
GdsAccel::sliceEnd(unsigned s) const
{
    return sliceCount == 1 ? fullGraph.numVertices() : slices[s].dstEnd;
}

void
GdsAccel::buildInitialActives(VertexId source)
{
    activeCur.assign(sliceCount, {});
    activeNext.assign(sliceCount, {});
    auto add = [this](VertexId v) {
        for (unsigned s = 0; s < sliceCount; ++s) {
            const graph::Csr &sg = sliceGraph(s);
            activeCur[s].push_back(ActiveRecord{
                v, prop[v],
                static_cast<std::uint32_t>(sg.outDegree(v)),
                sg.offsetOf(v)});
        }
    };
    if (algo.allInitiallyActive()) {
        for (VertexId v = 0; v < fullGraph.numVertices(); ++v)
            add(v);
    } else {
        add(source);
    }
}

void
GdsAccel::activateVertex(VertexId v, PropValue new_prop)
{
    ++activatedThisIteration;
    for (unsigned s = 0; s < sliceCount; ++s) {
        const graph::Csr &sg = sliceGraph(s);
        activeNext[s].push_back(ActiveRecord{
            v, new_prop, static_cast<std::uint32_t>(sg.outDegree(v)),
            sg.offsetOf(v)});
    }
    ap.auBufferedRecords += sliceCount;
}

RunResult
GdsAccel::run(const RunOptions &options)
{
    const VertexId v_count = fullGraph.numVertices();
    if (v_count == 0)
        throw ConfigError("cannot run on an empty graph");
    if (options.source >= v_count)
        throw ConfigError(gds::detail::vformat(
            "source %u out of range (V=%u)", options.source, v_count));

    // Resolve env-derived run behaviour exactly once, here. Every other
    // consumer reads the member: re-reading getenv() mid-run (or caching
    // it in a function-local static, as dispatchChunk once did) lets two
    // sites disagree when the environment changes mid-process — fatal in
    // a daemon where many jobs share one process.
    perfectMem = common::envFlag("GDS_PERFECT_MEM");

    algo.bind(fullGraph);

    prop.resize(v_count);
    tProp.resize(v_count);
    for (VertexId v = 0; v < v_count; ++v) {
        prop[v] = algo.initialProp(v, fullGraph, options.source);
        tProp[v] = algo.tPropIdentity(v, fullGraph, options.source);
    }
    if (hasConstProp) {
        cProp.resize(v_count);
        for (VertexId v = 0; v < v_count; ++v)
            cProp[v] = algo.constProp(v, fullGraph);
    }
    readyGroup.assign(groupIndexOf(v_count - 1) + 1, 0);

    buildInitialActives(options.source);
    collectPeLoads = options.collectPeLoads;
    peLoadTrace.clear();
    peLoadThisIteration.assign(cfg.numPes, 0);

    iteration = 0;
    activeBuf = 0;
    activatedThisIteration = 0;
    startIteration();

    runStart = now;
    const bool progress = common::envFlag("GDS_PROGRESS");

    // Supervised execution: a Simulator drives tick() under a watchdog
    // that distinguishes completion, deadlock, livelock and cycle-budget
    // exhaustion instead of asserting on runaway simulations.
    sim::Simulator driver;
    driver.add(this);
    if (options.sampler) {
        if (options.sampler->probeCount() == 0)
            registerProbes(*options.sampler);
        driver.setSampler(options.sampler);
    }
    driver.setTracer(obs::activeTracer(), options.traceCounterInterval);
    sim::RunLimits limits;
    if (options.cycleBudget != 0)
        limits.maxCycles = options.cycleBudget;
    else
        limits.maxCycles = 50'000'000'000ULL;
    if (options.stallCycles != 0)
        limits.stallCycles = options.stallCycles;
    // Fast-forward is cycle-exact but incompatible with the per-cycle
    // heartbeat (its modulo would miss skipped boundaries) and pointless
    // under perfect memory (dispatch materializes records on demand, so
    // waits never become provable).
    limits.fastForward = options.fastForward && !progress &&
                         !common::envFlag("GDS_NO_FASTFORWARD") &&
                         !perfectMem;

    std::optional<sim::FaultInjector> injector;
    if (options.faults.any()) {
        injector.emplace(options.faults); // throws ConfigError if invalid
        hbm->setFaultInjector(&*injector);
        xbar->setFaultInjector(&*injector);
    }

    // Checkpoint wiring. The payload is the accelerator (plus HBM and
    // crossbar), then the optional fault/sampler/tracer state, then the
    // driver — one fixed order on both sides.
    constexpr std::uint32_t kStateVersion = 1;
    std::optional<sim::CheckpointStore> store;
    std::string identity;
    if (!options.checkpoint.dir.empty()) {
        identity = gds::detail::vformat(
            "graphdyns|%s|V=%u|E=%llu|src=%u|%s", algo.name().c_str(),
            v_count,
            static_cast<unsigned long long>(fullGraph.numEdges()),
            options.source, options.checkpoint.identity.c_str());
        store.emplace(options.checkpoint.dir, options.checkpoint.basename);
    }

    const auto serializeAll = [&](sim::Serializer &s) {
        saveState(s);
        s.writeBool(injector.has_value());
        if (injector)
            injector->saveState(s);
        s.writeBool(options.sampler != nullptr);
        if (options.sampler)
            options.sampler->saveState(s);
        obs::Tracer *tr = obs::activeTracer();
        s.writeBool(tr != nullptr);
        if (tr)
            tr->saveState(s);
        driver.saveState(s);
    };

    if (store && options.checkpoint.resume) {
        std::string reason;
        if (const auto loaded = store->loadLatest(&reason)) {
            if (loaded->meta.stateVersion != kStateVersion ||
                loaded->meta.identity != identity) {
                warn("ignoring checkpoint %s: identity/version mismatch "
                     "(have \"%s\" v%u, want \"%s\" v%u); starting clean",
                     store->currentPath().c_str(),
                     loaded->meta.identity.c_str(),
                     loaded->meta.stateVersion, identity.c_str(),
                     kStateVersion);
            } else {
                sim::Deserializer d(loaded->payload);
                restoreState(d);
                const bool had_injector = d.readBool();
                gds_require(had_injector == injector.has_value(),
                            CheckpointError,
                            "checkpoint fault-injection state does not "
                            "match this run's fault plan");
                if (injector)
                    injector->restoreState(d);
                const bool had_sampler = d.readBool();
                gds_require(had_sampler == (options.sampler != nullptr),
                            CheckpointError,
                            "checkpoint sampler state does not match this "
                            "run's sampler configuration");
                if (options.sampler)
                    options.sampler->restoreState(d);
                const bool had_tracer = d.readBool();
                obs::Tracer *tr = obs::activeTracer();
                gds_require(had_tracer == (tr != nullptr), CheckpointError,
                            "checkpoint tracer state does not match this "
                            "run's tracer configuration");
                if (tr)
                    tr->restoreState(d);
                driver.restoreState(d);
                d.expectEnd();
                inform("resumed from %s at cycle %llu%s",
                       (loaded->usedFallback ? store->previousPath()
                                             : store->currentPath())
                           .c_str(),
                       static_cast<unsigned long long>(loaded->meta.cycle),
                       loaded->usedFallback
                           ? " (previous checkpoint; current was invalid)"
                           : "");
            }
        } else if (!reason.empty()) {
            warn("no usable checkpoint (%s); starting clean",
                 reason.c_str());
        }
    }

    sim::RunHooks hooks;
    hooks.wallBudgetSeconds = options.wallBudgetSeconds;
    if (store) {
        hooks.checkpointInterval = options.checkpoint.interval;
        hooks.writeCheckpoint = [&] {
            sim::Serializer s;
            serializeAll(s);
            sim::CheckpointMeta meta;
            meta.stateVersion = kStateVersion;
            meta.identity = identity;
            meta.cycle = now;
            store->write(meta, s);
        };
    }

    const Cycle start_cycle = runStart;
    const sim::RunReport report = driver.run(
        [&] {
            // Diagnostic heartbeat for long runs (GDS_PROGRESS=1).
            if (progress && now != start_cycle &&
                (now - start_cycle) % 1'000'000 == 0) {
                inform("cycle=%llu iter=%u slice=%u phase=%d "
                       "scatter=%llu/%llu reduced=%llu/%llu apply=%llu/%zu",
                       static_cast<unsigned long long>(now - start_cycle),
                       iteration, curSlice, static_cast<int>(phase),
                       static_cast<unsigned long long>(
                           sc.recordsDispatched),
                       static_cast<unsigned long long>(sc.recordsTotal),
                       static_cast<unsigned long long>(sc.edgesReduced),
                       static_cast<unsigned long long>(sc.expectedEdges),
                       static_cast<unsigned long long>(ap.groupsCompleted),
                       ap.groups.size());
            }
            // Crash injection for the checkpoint tests: die without any
            // cleanup, exactly like an external SIGKILL preemption.
            if (options.killAtCycle != 0 &&
                now - start_cycle >= options.killAtCycle)
                std::raise(SIGKILL);
            return phase == Phase::Finished;
        },
        limits, hooks);

    hbm->setFaultInjector(nullptr);
    xbar->setFaultInjector(nullptr);

    // A completed run leaves nothing to resume; drop its checkpoints so a
    // later run under the same base name starts clean.
    if (store && report.outcome == sim::RunOutcome::Completed)
        store->removeAll();

    RunResult result;
    result.report = report;
    result.properties = prop;
    result.iterations = iteration;
    result.cycles = now - start_cycle;
    result.edgesProcessed =
        static_cast<std::uint64_t>(statEdgesProcessed.value());
    result.vertexUpdates =
        static_cast<std::uint64_t>(statVertexUpdates.value());
    result.updatesSkipped =
        static_cast<std::uint64_t>(statUpdatesSkipped.value());
    result.memoryBytes = static_cast<std::uint64_t>(hbm->totalBytes());
    result.footprintBytes = layout->footprintBytes();
    result.bandwidthUtilization = hbm->bandwidthUtilization();
    result.schedulingOps =
        static_cast<std::uint64_t>(statSchedulingOps.value());
    result.atomicStalls =
        static_cast<std::uint64_t>(statAtomicStalls.value());
    result.peLoads = peLoadTrace;
    return result;
}

void
GdsAccel::registerProbes(obs::Sampler &sampler) const
{
    sampler.add("hbm.readBytes", [this] { return hbm->readBytes(); });
    sampler.add("hbm.writeBytes", [this] { return hbm->writeBytes(); });
    sampler.add("xbar.conflicts", [this] { return xbar->conflicts(); });
    sampler.add("de.vpbRecords", [this] {
        std::size_t total = 0;
        for (const De &de : des)
            total += de.vpb.size();
        return static_cast<double>(total);
    });
    sampler.add("pe.edgeQueue", [this] {
        std::size_t total = 0;
        for (const Pe &pe : pes)
            total += pe.edgeQueue.size();
        return static_cast<double>(total);
    });
    sampler.add("pe.applyQueue", [this] {
        std::size_t total = 0;
        for (const Pe &pe : pes)
            total += pe.applyQueue.size() + pe.vbStage.size();
        return static_cast<double>(total);
    });
    sampler.add("ue.inbox", [this] {
        std::size_t total = 0;
        for (const Ue &ue : ues)
            total += ue.inbox.size();
        return static_cast<double>(total);
    });
    sampler.add("frontier.records", [this] {
        // Every active vertex appears once per slice; report vertices.
        return activeCur.empty()
                   ? 0.0
                   : static_cast<double>(activeCur[0].size());
    });
    sampler.addScalar("edgesProcessed", statEdgesProcessed);
}

void
GdsAccel::traceBegin(std::string event)
{
    if (obs::Tracer *t = obs::activeTracer())
        t->begin(t->track(tracePath()), std::move(event), now);
}

void
GdsAccel::traceEnd()
{
    if (obs::Tracer *t = obs::activeTracer())
        t->end(t->track(tracePath()), now);
}

void
GdsAccel::startIteration()
{
    activatedThisIteration = 0;
    curSlice = 0;
    // An iteration with no active vertices anywhere terminates the run.
    bool any_active = false;
    for (const auto &list : activeCur)
        any_active |= !list.empty();
    if (!any_active || iteration >= cfg.maxIterations) {
        phase = Phase::Finished;
        return;
    }
    startScatter();
}

void
GdsAccel::finishSlice()
{
    traceEnd(); // "apply"

    // Clear the Ready-to-Update bits this slice consumed.
    const std::uint64_t first = groupIndexOf(sliceBegin(curSlice));
    const std::uint64_t last = groupIndexOf(sliceEnd(curSlice) - 1);
    for (std::uint64_t g = first; g <= last; ++g)
        readyGroup[g] = 0;

    ++curSlice;
    if (curSlice < sliceCount) {
        startScatter();
        return;
    }

    // Iteration complete.
    traceEnd(); // "iteration:N"
    ++iteration;
    ++statIterations;
    if (collectPeLoads) {
        peLoadTrace.push_back(peLoadThisIteration);
        peLoadThisIteration.assign(cfg.numPes, 0);
    }
    activeCur.swap(activeNext);
    for (auto &list : activeNext)
        list.clear();
    activeBuf ^= 1;
    startIteration();
}

bool
GdsAccel::busy() const
{
    // "Busy" means work is actually in flight at the accelerator level --
    // outstanding memory requests, undelivered responses, or occupied
    // datapath queues. A wedged run with none of these is a deadlock; one
    // where responses never drain (e.g. dropped by fault injection) keeps
    // the ports in flight and classifies as livelock instead.
    if (vportRead.inflight() > 0 || eportRead.inflight() > 0 ||
        auPortWrite.inflight() > 0)
        return true;
    if (vportRead.hasResponse() || eportRead.hasResponse() ||
        auPortWrite.hasResponse())
        return true;
    for (const De &de : des) {
        if (!de.vpb.empty())
            return true;
    }
    for (const Pe &pe : pes) {
        if (!pe.edgeQueue.empty() || !pe.applyQueue.empty() ||
            !pe.vbStage.empty() || !pe.pendingFlits.empty())
            return true;
    }
    for (const Ue &ue : ues) {
        if (!ue.inbox.empty())
            return true;
    }
    if (!sc.eprefPending.empty() || !ap.propWrites.empty())
        return true;
    return false;
}

std::string
GdsAccel::debugState() const
{
    std::ostringstream os;
    os << "phase=";
    switch (phase) {
      case Phase::ScatterPhase:
        os << "scatter";
        break;
      case Phase::ApplyPhase:
        os << "apply";
        break;
      case Phase::Finished:
        os << "finished";
        break;
    }
    os << " iter=" << iteration << " slice=" << curSlice << "/" << sliceCount
       << " cycle=" << now;
    os << " inflight[v=" << vportRead.inflight()
       << " e=" << eportRead.inflight() << " au=" << auPortWrite.inflight()
       << "]";
    if (phase == Phase::ScatterPhase) {
        os << " scatter[dispatched=" << sc.recordsDispatched << "/"
           << sc.recordsTotal << " reduced=" << sc.edgesReduced << "/"
           << sc.expectedEdges << " commit=" << sc.commitCursor
           << " eprefPending=" << sc.eprefPending.size()
           << " bufferedEdges=" << sc.bufferedEdges << "]";
    } else if (phase == Phase::ApplyPhase) {
        os << " apply[groups=" << ap.groupsCompleted << "/"
           << ap.groups.size() << " commit=" << ap.commitCursor
           << " auBuffered=" << ap.auBufferedRecords
           << " propWrites=" << ap.propWrites.size() << "]";
    }
    std::size_t edge_q = 0, apply_q = 0, ue_q = 0, vpb_q = 0;
    for (const Pe &pe : pes) {
        edge_q += pe.edgeQueue.size();
        apply_q += pe.applyQueue.size() + pe.vbStage.size();
    }
    for (const Ue &ue : ues)
        ue_q += ue.inbox.size();
    for (const De &de : des)
        vpb_q += de.vpb.size();
    os << " queues[vpb=" << vpb_q << " edge=" << edge_q
       << " apply=" << apply_q << " ue=" << ue_q << "]";
    return os.str();
}

void
GdsAccel::tick()
{
    // Deliver matured HBM responses to their owners.
    while (vportRead.hasResponse()) {
        const std::uint64_t tag = vportRead.popResponse();
        switch (tagKind(tag)) {
          case Tag::RecordBatch:
            sc.batchReady[tagPayload(tag)] = 1;
            break;
          case Tag::TPropFill:
            --sc.fillOutstanding;
            break;
          case Tag::GroupData: {
            GroupFetch &gf = ap.fetch[tagPayload(tag)];
            gds_assert(gf.outstanding > 0, "stray group response");
            --gf.outstanding;
            break;
          }
          default:
            panic("unexpected tag on the Vpref port");
        }
    }
    while (eportRead.hasResponse()) {
        const std::uint64_t tag = eportRead.popResponse();
        const std::uint64_t payload = tagPayload(tag);
        switch (tagKind(tag)) {
          case Tag::EdgeFetch: {
            RecordFetch &f = sc.fetch[payload];
            gds_assert(f.parts > 0, "stray edge response");
            --f.parts;
            if (f.allIssued && f.parts == 0)
                materializeRecord(payload);
            break;
          }
          case Tag::EdgeBatch:
            // One coalesced request served several whole records.
            for (const std::uint64_t rec : sc.fetchBatches[payload])
                materializeRecord(rec);
            break;
          default:
            panic("unexpected tag on the Epref port");
        }
    }
    while (auPortWrite.hasResponse())
        auPortWrite.popResponse(); // stores only gate phase completion

    switch (phase) {
      case Phase::ScatterPhase:
        ++statScatterCycles;
        tickScatter();
        if (scatterDone())
            startApply();
        break;
      case Phase::ApplyPhase:
        ++statApplyCycles;
        tickApply();
        if (applyDone())
            finishSlice();
        break;
      case Phase::Finished:
        break;
    }

    if (debug::anyEnabled()) {
        // Re-scope attribution: the HBM is ticked from inside our tick,
        // but its DPRINTF lines should carry its own path.
        const debug::ScopedTraceComponent scope(hbm->tracePath());
        hbm->tick();
    } else {
        hbm->tick();
    }
    ++now;
}

Cycle
GdsAccel::nextEventCycle() const
{
    // A pending port response is drained (and acted on) next tick.
    if (vportRead.hasResponse() || eportRead.hasResponse() ||
        auPortWrite.hasResponse())
        return 1;

    switch (phase) {
      case Phase::ScatterPhase:
        if (!scatterQuiescent())
            return 1;
        break;
      case Phase::ApplyPhase:
        if (!applyQuiescent())
            return 1;
        break;
      case Phase::Finished:
        break;
    }

    // Provably waiting: the only things that can end the wait are an HBM
    // event (a completion maturing or a queued transaction becoming
    // issuable) and, in Apply, a VB-pipeline entry maturing.
    Cycle horizon = hbm->nextEventCycle();
    if (phase == Phase::ApplyPhase) {
        for (const Pe &pe : pes)
            horizon = std::min(horizon, pe.vbStage.cyclesUntilReady());
    }
    return horizon < 1 ? Cycle{1} : horizon;
}

namespace
{

constexpr std::uint32_t kAccelMarker = 0x47445331; // "GDS1"

template <typename SER, typename T>
void
saveNestedVec(SER &s, const std::vector<std::vector<T>> &v)
{
    s.writeU64(v.size());
    for (const std::vector<T> &inner : v)
        s.writePodVec(inner);
}

template <typename DES, typename T>
void
restoreNestedVec(DES &d, std::vector<std::vector<T>> &v)
{
    v.resize(static_cast<std::size_t>(d.readU64()));
    for (std::vector<T> &inner : v)
        d.readPodVec(inner);
}

} // namespace

void
GdsAccel::saveState(sim::Serializer &s) const
{
    // Port identities first: the HBM request slab references them
    // through the pointer registry.
    s.registerPointer(&vportRead);
    s.registerPointer(&eportRead);
    s.registerPointer(&auPortWrite);

    sim::Component::saveState(s);
    s.writeMarker(kAccelMarker);

    // Functional state.
    s.writePodVec(prop);
    s.writePodVec(tProp);
    s.writePodVec(cProp);
    s.writePodVec(readyGroup);
    saveNestedVec(s, activeCur);
    saveNestedVec(s, activeNext);
    s.writeU64(activatedThisIteration);

    // Datapath queues and pipeline registers.
    for (const De &de : des) {
        de.vpb.saveState(s);
        s.writeU32(de.chunkCursor);
    }
    for (const Pe &pe : pes) {
        pe.edgeQueue.saveState(s);
        s.writePodVec(pe.pendingFlits);
        pe.applyQueue.saveState(s);
        pe.vbStage.saveState(s);
    }
    for (const Ue &ue : ues) {
        ue.inbox.saveState(s);
        s.writePod(ue.pipeAddr);
        s.writePod(ue.pipeCycle);
    }
    s.writeU64(scEdgesQueued);
    s.writeU64(scFlitsBuffered);
    s.writeU64(ueFlitsQueued);

    // Scatter-phase bookkeeping.
    s.writeU64(sc.recordsTotal);
    s.writeU64(sc.expectedEdges);
    s.writeU64(sc.batchesTotal);
    s.writeU64(sc.batchesIssued);
    s.writePodVec(sc.batchReady);
    s.writeU64(sc.commitCursor);
    s.writeU64(sc.recordsDispatched);
    s.writeU64(sc.edgesReduced);
    s.writeU64(sc.fillOutstanding);
    s.writeU64(sc.fillCursor);
    s.writeU64(sc.fillBytesLeft);
    s.writePodDeque(sc.eprefPending);
    s.writePodVec(sc.fetch);
    saveNestedVec(s, sc.fetchedEdges);
    saveNestedVec(s, sc.fetchBatches);
    s.writeU64(sc.bufferedEdges);

    // Apply-phase bookkeeping.
    s.writePodVec(ap.groups);
    s.writePodVec(ap.fetch);
    s.writeU64(ap.groupsRequested);
    s.writeU64(ap.commitCursor);
    s.writeU64(ap.groupsCompleted);
    s.writeU64(ap.auBufferedRecords);
    s.writeU64(ap.auWriteCursor);
    // std::pair is not trivially copyable; serialize element-wise.
    s.writeU64(ap.propWrites.size());
    for (const auto &[addr, count] : ap.propWrites) {
        s.writeU64(addr);
        s.writeU32(count);
    }

    // Control state.
    s.writeU8(static_cast<std::uint8_t>(phase));
    s.writeU32(curSlice);
    s.writeU32(iteration);
    s.writeU32(activeBuf);
    s.writeU64(now);
    s.writeU64(runStart);
    s.writeBool(collectPeLoads);
    s.writePodVec(peLoadThisIteration);
    saveNestedVec(s, peLoadTrace);

    // Ports, then the child components.
    vportRead.saveState(s);
    eportRead.saveState(s);
    auPortWrite.saveState(s);
    hbm->saveState(s);
    xbar->saveState(s);
}

void
GdsAccel::restoreState(sim::Deserializer &d)
{
    d.registerPointer(&vportRead);
    d.registerPointer(&eportRead);
    d.registerPointer(&auPortWrite);

    sim::Component::restoreState(d);
    d.expectMarker(kAccelMarker);

    d.readPodVec(prop);
    d.readPodVec(tProp);
    d.readPodVec(cProp);
    d.readPodVec(readyGroup);
    restoreNestedVec(d, activeCur);
    restoreNestedVec(d, activeNext);
    activatedThisIteration = d.readU64();

    for (De &de : des) {
        de.vpb.restoreState(d);
        de.chunkCursor = d.readU32();
    }
    for (Pe &pe : pes) {
        pe.edgeQueue.restoreState(d);
        d.readPodVec(pe.pendingFlits);
        pe.applyQueue.restoreState(d);
        pe.vbStage.restoreState(d);
    }
    for (Ue &ue : ues) {
        ue.inbox.restoreState(d);
        ue.pipeAddr = d.readPod<std::array<VertexId, 2>>();
        ue.pipeCycle = d.readPod<std::array<Cycle, 2>>();
    }
    scEdgesQueued = d.readU64();
    scFlitsBuffered = d.readU64();
    ueFlitsQueued = d.readU64();

    sc.recordsTotal = d.readU64();
    sc.expectedEdges = d.readU64();
    sc.batchesTotal = d.readU64();
    sc.batchesIssued = d.readU64();
    d.readPodVec(sc.batchReady);
    sc.commitCursor = d.readU64();
    sc.recordsDispatched = d.readU64();
    sc.edgesReduced = d.readU64();
    sc.fillOutstanding = d.readU64();
    sc.fillCursor = d.readU64();
    sc.fillBytesLeft = d.readU64();
    d.readPodDeque(sc.eprefPending);
    d.readPodVec(sc.fetch);
    restoreNestedVec(d, sc.fetchedEdges);
    restoreNestedVec(d, sc.fetchBatches);
    sc.bufferedEdges = d.readU64();

    d.readPodVec(ap.groups);
    d.readPodVec(ap.fetch);
    ap.groupsRequested = d.readU64();
    ap.commitCursor = d.readU64();
    ap.groupsCompleted = d.readU64();
    ap.auBufferedRecords = d.readU64();
    ap.auWriteCursor = d.readU64();
    ap.propWrites.clear();
    const std::uint64_t prop_writes = d.readU64();
    for (std::uint64_t i = 0; i < prop_writes; ++i) {
        const Addr addr = d.readU64();
        const unsigned count = d.readU32();
        ap.propWrites.emplace_back(addr, count);
    }

    phase = static_cast<Phase>(d.readU8());
    curSlice = d.readU32();
    iteration = d.readU32();
    activeBuf = d.readU32();
    now = d.readU64();
    runStart = d.readU64();
    collectPeLoads = d.readBool();
    d.readPodVec(peLoadThisIteration);
    restoreNestedVec(d, peLoadTrace);

    vportRead.restoreState(d);
    eportRead.restoreState(d);
    auPortWrite.restoreState(d);
    hbm->restoreState(d);
    xbar->restoreState(d);
}

void
GdsAccel::skipCycles(Cycle cycles)
{
    // Replay per-cycle bookkeeping exactly as `cycles` quiescent tick()
    // calls would have: phase cycle counters, per-DE and commit bottleneck
    // attribution (the quiescence predicate pinned down which branch every
    // skipped cycle would have taken), VB pipeline clocks, and the HBM.
    switch (phase) {
      case Phase::ScatterPhase: {
        statScatterCycles += static_cast<double>(cycles);
        for (const De &de : des) {
            if (de.vpb.empty())
                statDeIdle += static_cast<double>(cycles);
            else
                statDeWaitReady += static_cast<double>(cycles);
        }
        if (sc.commitCursor < sc.recordsTotal) {
            if (!sc.batchReady[sc.commitCursor / cfg.vprefBatch])
                statCommitBlockedBatch += static_cast<double>(cycles);
            else
                statCommitBlockedVpb += static_cast<double>(cycles);
        }
        break;
      }
      case Phase::ApplyPhase:
        statApplyCycles += static_cast<double>(cycles);
        for (Pe &pe : pes)
            pe.vbStage.advance(cycles);
        break;
      case Phase::Finished:
        break;
    }
    hbm->skipCycles(cycles);
    now += cycles;
}

} // namespace gds::core
