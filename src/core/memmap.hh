/**
 * @file
 * Off-chip address-space layout of a graph-analytics engine.
 *
 * Both accelerator models place the CSR arrays, the property arrays, and
 * the double-buffered active vertex arrays at fixed, page-aligned base
 * addresses; all modelled HBM traffic uses these addresses, so row-buffer
 * locality emerges from real access patterns. The layout also yields the
 * engine's off-chip storage footprint (Fig. 11), which differs per engine:
 * GraphDynS needs neither src_vid-tagged edges nor preprocessing metadata.
 */

#pragma once

#include "common/bitutil.hh"
#include "common/types.hh"
#include "graph/csr.hh"

namespace gds::core
{

/** Byte sizes of the engine-specific record formats. */
struct RecordFormat
{
    /** Bytes per stored edge (4 unweighted / 8 weighted for GraphDynS;
     *  +4 for Graphicionado's src_vid). */
    unsigned edgeBytes;
    /** Bytes per active-vertex record (GraphDynS: prop + offset + edgeCnt
     *  = 12; Graphicionado: vid + prop = 8). */
    unsigned activeRecordBytes;
    /** Extra per-vertex metadata bytes (GPU preprocessing structures). */
    unsigned metadataBytesPerVertex = 0;
};

/** Base addresses and sizes of every off-chip array. */
class MemoryLayout
{
  public:
    /**
     * Lay out the arrays for a graph.
     *
     * @param num_vertices |V| of the (slice-owning) graph
     * @param num_edges |E| stored off-chip (sum over slices)
     * @param fmt engine record format
     * @param has_const_prop PR keeps a cProp array off-chip
     * @param tprop_offchip temporary properties live off-chip and count
     *        toward the footprint (GPUs always; accelerators only when the
     *        graph is sliced)
     */
    MemoryLayout(VertexId num_vertices, EdgeId num_edges,
                 const RecordFormat &fmt, bool has_const_prop,
                 bool tprop_offchip);

    Addr offsetArrayBase() const { return _offsetBase; }
    Addr edgeArrayBase() const { return _edgeBase; }
    Addr vertexPropBase() const { return _propBase; }
    Addr constPropBase() const { return _cPropBase; }
    /** Active-array bases, double buffered (index 0/1). */
    Addr activeArrayBase(unsigned which) const
    {
        return which == 0 ? _activeBase0 : _activeBase1;
    }
    /** Off-chip spill area for temporary properties (sliced runs). */
    Addr tPropSpillBase() const { return _tPropBase; }

    /** Address of the offset-array entry for vertex v. */
    Addr
    offsetAddr(VertexId v) const
    {
        return _offsetBase + static_cast<Addr>(v) * bytesPerWord;
    }

    /** Address of stored edge e. */
    Addr
    edgeAddr(EdgeId e) const
    {
        return _edgeBase + e * fmt.edgeBytes;
    }

    /** Address of vertex v's property. */
    Addr
    propAddr(VertexId v) const
    {
        return _propBase + static_cast<Addr>(v) * bytesPerWord;
    }

    /** Address of vertex v's constant property. */
    Addr
    cPropAddr(VertexId v) const
    {
        return _cPropBase + static_cast<Addr>(v) * bytesPerWord;
    }

    /** Address of active record i in buffer @p which. */
    Addr
    activeRecordAddr(unsigned which, std::uint64_t i) const
    {
        return activeArrayBase(which) + i * fmt.activeRecordBytes;
    }

    /** Total off-chip bytes this engine keeps resident (Fig. 11). */
    std::uint64_t footprintBytes() const { return _footprint; }

    const RecordFormat fmt;

  private:
    Addr _offsetBase;
    Addr _edgeBase;
    Addr _propBase;
    Addr _cPropBase;
    Addr _activeBase0;
    Addr _activeBase1;
    Addr _tPropBase;
    std::uint64_t _footprint;
};

} // namespace gds::core
