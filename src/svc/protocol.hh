/**
 * @file
 * Wire protocol of the simulation service (gds_simd): JSON-lines over a
 * Unix-domain stream socket. Every request is one JSON object on one
 * line; every response is one JSON object on one line whose first field
 * is "ok" (true/false). Failure responses carry the ErrorCode name in
 * "error" plus a human-readable "message", mirroring the in-process
 * Status type so clients and tests can switch on the same code names.
 *
 * Requests:
 *   {"op":"submit","system":"gds","algorithm":"bfs","dataset":"FR",
 *    "source":3,"iterations":10,"cycle_budget":1000000,
 *    "wall_budget_seconds":2.5,"progress_interval":100000}
 *                                      (all but algorithm/dataset optional)
 *   {"op":"poll","job":"j1"}
 *   {"op":"result","job":"j1"}
 *   {"op":"subscribe","job":"j1"}
 *   {"op":"statsz"}
 *   {"op":"metricsz"}
 *   {"op":"shutdown"}
 *
 * subscribe is the one streaming op: after the {"ok":true,...} ack the
 * server keeps the connection and pushes one JSON-lines progress event
 * per line ({"event":"start"|"progress"|"done",...}) until the terminal
 * "done" event, after which the connection reverts to request/response.
 *
 * Every numeric request field is re-parsed from its raw lexeme through
 * the same strict common/parse.hh helpers the CLI flags use, so
 * "source":-3 or "iterations":1e99 is a typed "config" rejection, never
 * a silent wraparound.
 */

#pragma once

#include <optional>
#include <string>

#include "algo/vcpm.hh"
#include "common/error.hh"
#include "common/types.hh"
#include "harness/experiment.hh"

namespace gds::svc
{

/** The request operations. */
enum class RequestOp
{
    Submit,    ///< enqueue one simulation job
    Poll,      ///< query a job's state
    Result,    ///< fetch a finished job's record
    Subscribe, ///< stream a job's live progress events
    Statsz,    ///< service metrics snapshot (JSON)
    Metricsz,  ///< Prometheus text exposition of the metrics registry
    Shutdown,  ///< request a graceful drain (same path as SIGTERM)
};

/** One validated simulation job request. */
struct JobSpec
{
    harness::SystemId system = harness::SystemId::GraphDynS;
    algo::AlgorithmId algorithm = algo::AlgorithmId::Bfs;
    std::string dataset; ///< a Table 4 tag (FR..OR, RM22..RM26)
    /** Source vertex override; unset uses the harness policy. */
    std::optional<VertexId> source;
    /** Iteration-cap override; unset uses the harness policy. */
    std::optional<unsigned> iterations;
    /** Cycle budget override; 0 uses GDS_CELL_BUDGET / default. */
    Cycle cycleBudget = 0;
    /** Wall budget override in seconds; negative uses the env policy. */
    double wallBudgetSeconds = -1.0;
    /**
     * Simulated-cycle interval between live progress samples streamed to
     * subscribed clients; 0 turns sampling off for this job. Pure
     * telemetry — it never changes the simulated outcome, so it is
     * deliberately NOT part of key().
     */
    Cycle progressInterval = 1'000'000;

    /**
     * Result-cache key. Extends the harness cellKey() (system tag,
     * algorithm, dataset, scale divisor) with any overrides that change
     * the simulated outcome, so a job with a custom source never
     * collides with the evaluation matrix's canonical cells.
     */
    std::string key() const;

    /** Cache-key / statsz tag for the system ("gds", "gunrock", ...). */
    std::string systemTag() const;
};

/** One parsed request line. */
struct Request
{
    RequestOp op = RequestOp::Statsz;
    JobSpec spec;      ///< Submit only
    std::string jobId; ///< Poll / Result / Subscribe only
};

/**
 * Parse + validate one request line. Failures are ConfigError statuses
 * for anything the client got wrong (unknown op/algorithm/dataset,
 * malformed numbers) and CorruptInput for non-JSON bytes.
 */
Result<Request> parseRequest(const std::string &line);

/** {"ok":false,"error":"<code name>","message":...} */
std::string errorLine(ErrorCode code, const std::string &message);

/** errorLine() from a failure Status. */
std::string errorLine(const Status &status);

/** Serialize one RunRecord as a JSON object (reuses the harness dump). */
std::string recordJson(const harness::RunRecord &record);

} // namespace gds::svc
