#include "svc/server.hh"

#include <sstream>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "stats/json.hh"

namespace gds::svc
{

namespace
{

/** {"ok":true,"job":...,"state":...,"cached":...[,"record":{...}]} */
std::string
jobLine(const JobView &view)
{
    std::ostringstream os;
    os << "{\"ok\":true,\"job\":";
    stats::emitJsonString(os, view.id);
    os << ",\"state\":";
    stats::emitJsonString(os, jobStateName(view.state));
    os << ",\"cached\":" << (view.cached ? "true" : "false");
    if (view.state == JobState::Done || view.state == JobState::Failed) {
        os << ",\"latency_seconds\":";
        stats::emitJsonNumber(os, view.latencySeconds);
        os << ",\"record\":" << recordJson(view.record);
    }
    os << '}';
    return os.str();
}

} // namespace

Server::Server(ServerConfig server_config)
    : config(server_config), sim_service(server_config.service)
{
}

std::string
Server::handleLine(const std::string &line)
{
    auto parsed = parseRequest(line);
    if (!parsed.ok())
        return errorLine(parsed.status());
    const Request &req = parsed.value();

    switch (req.op) {
      case RequestOp::Submit: {
          auto view = sim_service.submit(req.spec);
          return view.ok() ? jobLine(view.value())
                           : errorLine(view.status());
      }
      case RequestOp::Poll: {
          auto view = sim_service.poll(req.jobId);
          return view.ok() ? jobLine(view.value())
                           : errorLine(view.status());
      }
      case RequestOp::Result: {
          auto view = sim_service.result(req.jobId);
          return view.ok() ? jobLine(view.value())
                           : errorLine(view.status());
      }
      case RequestOp::Statsz:
        return sim_service.statszLine();
      case RequestOp::Shutdown:
        requestStop();
        return "{\"ok\":true,\"state\":\"draining\"}";
    }
    panic("bad request op");
}

Status
Server::serve()
{
    common::UnixListener listener;
    if (Status s = listener.bind(config.socketPath); !s.ok())
        return s;
    inform("gds_simd listening on %s (%u workers, queue %zu)",
           config.socketPath.c_str(), config.service.workers,
           config.service.maxQueue);

    while (!stop.load(std::memory_order_relaxed) && !sim::stopRequested()) {
        auto channel = listener.accept(200);
        if (!channel.ok()) {
            if (channel.status().code() == ErrorCode::Timeout)
                continue; // idle tick: re-check the stop flags
            warn("accept failed: %s", channel.status().message().c_str());
            continue;
        }
        common::LineChannel chan = std::move(channel.value());
        // Serve every line the client sends on this connection; a clean
        // peer close (Stopped) ends it. Stop flags are honoured between
        // requests so a drain never hangs on an idle client.
        std::string line;
        for (;;) {
            const Status s = chan.readLine(line, 1000);
            if (s.ok()) {
                if (Status w = chan.writeLine(handleLine(line)); !w.ok()) {
                    warn("client write failed: %s", w.message().c_str());
                    break;
                }
                continue;
            }
            if (s.code() == ErrorCode::Timeout) {
                if (stop.load(std::memory_order_relaxed) ||
                    sim::stopRequested())
                    break;
                continue;
            }
            if (s.code() != ErrorCode::Stopped)
                warn("client read failed: %s", s.toString().c_str());
            break;
        }
    }

    inform("gds_simd draining (%zu jobs in flight)",
           sim_service.stats().queueDepth);
    sim_service.drain();
    inform("gds_simd drained; exiting");
    return Status{};
}

void
Server::requestStop()
{
    stop.store(true, std::memory_order_relaxed);
}

} // namespace gds::svc
