#include "svc/server.hh"

#include <sstream>
#include <utility>

#include "common/jsonio.hh"
#include "common/log.hh"
#include "common/logging.hh"
#include "sim/simulator.hh"
#include "stats/json.hh"

namespace gds::svc
{

namespace
{

/** {"ok":true,"job":...,"state":...,"cached":...[,"record":{...}]} */
std::string
jobLine(const JobView &view)
{
    std::ostringstream os;
    os << "{\"ok\":true,\"job\":";
    stats::emitJsonString(os, view.id);
    os << ",\"state\":";
    stats::emitJsonString(os, jobStateName(view.state));
    os << ",\"cached\":" << (view.cached ? "true" : "false");
    if (view.state == JobState::Done || view.state == JobState::Failed) {
        os << ",\"latency_seconds\":";
        stats::emitJsonNumber(os, view.latencySeconds);
        os << ",\"record\":" << recordJson(view.record);
    }
    os << '}';
    return os.str();
}

/** The subscribe ack: the job's current state plus "subscribed". */
std::string
subscribeAck(const JobView &view)
{
    std::ostringstream os;
    os << "{\"ok\":true,\"job\":";
    stats::emitJsonString(os, view.id);
    os << ",\"state\":";
    stats::emitJsonString(os, jobStateName(view.state));
    os << ",\"subscribed\":true}";
    return os.str();
}

} // namespace

Server::Server(ServerConfig server_config)
    : config(std::move(server_config)), sim_service(config.service)
{
}

bool
Server::stopRequested() const
{
    return stop.load(std::memory_order_relaxed) || sim::stopRequested();
}

std::string
Server::handleLine(const std::string &line)
{
    return handleParsed(parseRequest(line));
}

std::string
Server::handleParsed(const Result<Request> &parsed)
{
    if (!parsed.ok())
        return errorLine(parsed.status());
    const Request &req = parsed.value();

    switch (req.op) {
      case RequestOp::Submit: {
          auto view = sim_service.submit(req.spec);
          return view.ok() ? jobLine(view.value())
                           : errorLine(view.status());
      }
      case RequestOp::Poll: {
          auto view = sim_service.poll(req.jobId);
          return view.ok() ? jobLine(view.value())
                           : errorLine(view.status());
      }
      case RequestOp::Result: {
          auto view = sim_service.result(req.jobId);
          return view.ok() ? jobLine(view.value())
                           : errorLine(view.status());
      }
      case RequestOp::Subscribe: {
          auto view = sim_service.poll(req.jobId);
          return view.ok() ? subscribeAck(view.value())
                           : errorLine(view.status());
      }
      case RequestOp::Statsz:
        return sim_service.statszLine();
      case RequestOp::Metricsz: {
          // The whole multi-line exposition rides inside one JSON-line
          // response, so protocol clients never need a second socket.
          std::string out = "{\"ok\":true,\"metrics\":";
          out += common::jsonQuote(sim_service.metricsText());
          out += '}';
          return out;
      }
      case RequestOp::Shutdown:
        requestStop();
        return "{\"ok\":true,\"state\":\"draining\"}";
    }
    panic("bad request op");
}

void
Server::streamJob(common::LineChannel &chan, const std::string &job_id)
{
    std::uint64_t after = 0;
    while (!stopRequested()) {
        auto events = sim_service.progressSince(job_id, after, 500);
        if (!events.ok()) {
            chan.writeLine(errorLine(events.status()));
            return;
        }
        for (const ProgressEvent &event : events.value()) {
            after = event.seq;
            if (Status w = chan.writeLine(event.line); !w.ok())
                return; // subscriber went away: unsubscribe by closing
            if (event.terminal)
                return;
        }
    }
}

void
Server::serveConnection(common::LineChannel chan)
{
    // Serve every line the client sends on this connection; a clean
    // peer close (Stopped) ends it. Stop flags are honoured between
    // requests so a drain never hangs on an idle client.
    std::string line;
    for (;;) {
        const Status s = chan.readLine(line, 1000);
        if (s.ok()) {
            const auto parsed = parseRequest(line);
            if (Status w = chan.writeLine(handleParsed(parsed)); !w.ok()) {
                log::warnf("svc", {}, "client write failed: %s",
                           w.message().c_str());
                break;
            }
            // After a successful subscribe ack the connection switches
            // to pushing events until the job's terminal event, then
            // reverts to request/response.
            if (parsed.ok() &&
                parsed.value().op == RequestOp::Subscribe &&
                sim_service.poll(parsed.value().jobId).ok())
                streamJob(chan, parsed.value().jobId);
            continue;
        }
        if (s.code() == ErrorCode::Timeout) {
            if (stopRequested())
                break;
            continue;
        }
        if (s.code() != ErrorCode::Stopped)
            log::warnf("svc", {}, "client read failed: %s",
                       s.toString().c_str());
        break;
    }
}

void
Server::serveMetrics(common::UnixListener &listener)
{
    while (!stopRequested()) {
        auto channel = listener.accept(200);
        if (!channel.ok()) {
            if (channel.status().code() != ErrorCode::Timeout) {
                log::warnf("svc", {}, "metrics accept failed: %s",
                           channel.status().message().c_str());
            }
            continue;
        }
        // Scrape semantics: write one exposition, close. The text ends
        // with '\n' already; writeLine's extra newline terminates the
        // response unambiguously for line-oriented readers.
        common::LineChannel chan = std::move(channel.value());
        if (Status w = chan.writeLine(sim_service.metricsText()); !w.ok()) {
            log::warnf("svc", {}, "metrics write failed: %s",
                       w.message().c_str());
        }
    }
}

void
Server::reapConnections(bool only_finished)
{
    const std::lock_guard<std::mutex> lock(connectionsMu);
    for (auto it = connections.begin(); it != connections.end();) {
        if (only_finished && !(*it)->finished.load(std::memory_order_acquire)) {
            ++it;
            continue;
        }
        if ((*it)->thread.joinable())
            (*it)->thread.join();
        it = connections.erase(it);
    }
}

Status
Server::serve()
{
    common::UnixListener listener;
    if (Status s = listener.bind(config.socketPath); !s.ok())
        return s;
    inform("gds_simd listening on %s (%u workers, queue %zu)",
           config.socketPath.c_str(), config.service.workers,
           config.service.maxQueue);

    common::UnixListener metrics_listener;
    std::thread metrics_thread;
    if (!config.metricsSocketPath.empty()) {
        if (Status s = metrics_listener.bind(config.metricsSocketPath);
            !s.ok())
            return s;
        inform("gds_simd metrics on %s",
               config.metricsSocketPath.c_str());
        metrics_thread =
            std::thread([this, &metrics_listener] {
                serveMetrics(metrics_listener);
            });
    }

    while (!stopRequested()) {
        auto channel = listener.accept(200);
        if (!channel.ok()) {
            if (channel.status().code() == ErrorCode::Timeout)
                continue; // idle tick: re-check the stop flags
            warn("accept failed: %s", channel.status().message().c_str());
            continue;
        }
        // One thread per connection: a long-lived subscriber must not
        // block submitters. Finished threads are reaped on the next
        // accept so an up-forever daemon doesn't accumulate them.
        reapConnections(true);
        auto conn = std::make_unique<Connection>();
        Connection *raw = conn.get();
        {
            const std::lock_guard<std::mutex> lock(connectionsMu);
            connections.push_back(std::move(conn));
        }
        raw->thread = std::thread(
            [this, raw, chan = std::move(channel.value())]() mutable {
                serveConnection(std::move(chan));
                raw->finished.store(true, std::memory_order_release);
            });
    }

    reapConnections(false);
    if (metrics_thread.joinable())
        metrics_thread.join();

    inform("gds_simd draining (%zu jobs in flight)",
           sim_service.stats().queueDepth);
    sim_service.drain();
    inform("gds_simd drained; exiting");
    return Status{};
}

void
Server::requestStop()
{
    stop.store(true, std::memory_order_relaxed);
}

} // namespace gds::svc
