/**
 * @file
 * The simulation service proper, socket-free so tests can drive it
 * in-process: a job registry in front of the experiment harness.
 * Submitted jobs are admitted into a bounded queue, scheduled onto a
 * harness::ThreadPool, share loaded graphs through the refcounted
 * harness::DatasetPool, and are served straight from the disk-backed
 * harness::ResultCache when an identical request (same key, see
 * JobSpec::key()) already ran — in this process or a previous one.
 *
 * Observability (the fleet-level view of a daemon):
 *  - every job's queue-wait, run and end-to-end latency is recorded into
 *    bounded stats::Histogram instances (O(1) memory for the daemon's
 *    whole life), and counters/gauges live in a stats::MetricsRegistry
 *    whose Prometheus rendering is served as /metricsz (metricsText());
 *  - each job emits a queue → load → sim → validate → store span chain
 *    into one per-daemon Perfetto trace (ServiceConfig::tracePath),
 *    with a configHash instant event linking the daemon-level span to
 *    the per-run simulator trace of the same cell;
 *  - a per-job interval obs::Sampler forwards live progress (cycle,
 *    frontier occupancy, edges, cycle-budget ETA) into a bounded
 *    per-job event buffer that subscribed clients drain through
 *    progressSince() — the {"op":"subscribe"} / `gds_cli watch` path.
 *
 * Draining: drain() stops admission (submits are rejected with a
 * "resource" error), raises the global sim::requestStop() flag so every
 * in-flight simulation stops at its next check boundary — writing a
 * resumable checkpoint first when a checkpoint directory is configured —
 * and waits for the pool to empty, then writes the daemon trace. A
 * drained service can still answer poll/result/statsz/metricsz, so
 * clients can collect what finished.
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "harness/dataset_pool.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "obs/trace.hh"
#include "stats/metrics.hh"
#include "svc/protocol.hh"

namespace gds::svc
{

/** Daemon-side configuration (CLI flags of gds_simd). */
struct ServiceConfig
{
    /** Simulation worker threads. */
    unsigned workers = 2;
    /** Admission bound: queued + running jobs; submits beyond it are
     *  rejected with a "resource" error instead of queuing unboundedly. */
    std::size_t maxQueue = 8;
    /** Checkpoint directory for in-flight jobs ("" disables). Jobs
     *  interrupted by a drain leave `<dir>/<sanitized key>.ckpt` and an
     *  identical resubmission resumes from it. */
    std::string checkpointDir;
    /** Perfetto trace of job-lifecycle spans, written at drain (""
     *  disables). One track per job, named by its jobId. */
    std::string tracePath;
};

/** Lifecycle of one submitted job. */
enum class JobState
{
    Queued,
    Running,
    Done,   ///< finished with record.ok()
    Failed, ///< finished with a non-ok status ("stopped", "timeout", ...)
};

const char *jobStateName(JobState state);

/** Snapshot of one job for poll/result responses. */
struct JobView
{
    std::string id;
    JobState state = JobState::Queued;
    bool cached = false; ///< served from the result cache at submit
    harness::RunRecord record; ///< meaningful once Done/Failed
    double latencySeconds = 0.0; ///< submit → finish (0 while in flight)
};

/** Aggregate service metrics (the /statsz payload). */
struct ServiceStats
{
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0; ///< admission-queue-full rejections
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheLookups = 0;
    std::size_t queueDepth = 0; ///< admitted, not yet finished
    std::size_t running = 0;
    unsigned workers = 0;
    bool draining = false;
    std::size_t datasetsResident = 0;
    std::vector<std::string> datasetKeys;
    /** Bytes of mmap-served dataset storage behind resident graphs. */
    std::uint64_t datasetMappedBytes = 0;
    /** Bytes of heap-owned dataset storage behind resident graphs. */
    std::uint64_t datasetHeapBytes = 0;
    /** Submit→finish latency percentiles over finished jobs (seconds),
     *  estimated from the bounded end-to-end latency histogram. */
    double latencyP50 = 0.0;
    double latencyP90 = 0.0;
    double latencyMax = 0.0;
};

/**
 * One progress-stream event: a pre-rendered JSON line ({"event":"start"},
 * {"event":"progress",...} or the terminal {"event":"done",...}), with a
 * per-job sequence number so a subscriber resumes where it left off.
 */
struct ProgressEvent
{
    std::uint64_t seq = 0;
    std::string line;
    bool terminal = false; ///< the job's final event ("done")
};

class SimService
{
  public:
    explicit SimService(ServiceConfig service_config);
    ~SimService();

    SimService(const SimService &) = delete;
    SimService &operator=(const SimService &) = delete;

    /**
     * Admit one job. Returns its JobView — state Done immediately when
     * the result cache already holds the record (cached=true). Fails
     * with ErrorCode::Resource when the admission queue is full or the
     * service is draining.
     */
    Result<JobView> submit(const JobSpec &spec);

    /** Look up a job by id (ConfigError for an unknown id). */
    Result<JobView> poll(const std::string &job_id) const;

    /**
     * Fetch a finished job's record. A job still in flight fails with
     * ErrorCode::Timeout ("not finished yet") so clients can poll-loop
     * on the code, not on message text.
     */
    Result<JobView> result(const std::string &job_id) const;

    /**
     * Fetch a job's progress events with sequence numbers above
     * @p after_seq, blocking up to @p timeout_ms for the first new one.
     * An empty vector means the wait timed out (the job is still
     * running and quiet) — callers loop. The event carrying
     * ProgressEvent::terminal ends the stream. A subscriber that fell
     * more than the buffer bound behind resumes from the oldest
     * retained event (progress is a lossy telemetry stream, not a log).
     * Unknown ids fail with ConfigError.
     */
    Result<std::vector<ProgressEvent>>
    progressSince(const std::string &job_id, std::uint64_t after_seq,
                  unsigned timeout_ms) const;

    /** Metrics snapshot. */
    ServiceStats stats() const;

    /** Serialize stats() as one JSON object line ({"ok":true,...}). */
    std::string statszLine() const;

    /** The full metrics registry in Prometheus text exposition format
     *  (the /metricsz payload). */
    std::string metricsText() const;

    /** Stop admission, stop in-flight runs (checkpointing), wait, and
     *  write the daemon span trace when one is configured. */
    void drain();

    bool draining() const;

  private:
    using TimePoint = std::chrono::steady_clock::time_point;

    struct Job
    {
        std::string id;
        JobSpec spec;
        std::string key;
        JobState state = JobState::Queued;
        bool cached = false;
        harness::RunRecord record;
        TimePoint submitTime;
        TimePoint startTime;
        double latencySeconds = 0.0;
        /** Bounded progress-event ring (subscribe streams drain it). */
        std::deque<ProgressEvent> events;
        std::uint64_t nextSeq = 1;
    };

    void runJob(const std::shared_ptr<Job> &job);
    JobView viewOf(const Job &job) const;

    /** Append one event to the job's ring and wake subscribers.
     *  Caller must hold mu. */
    void publishLocked(Job &job, std::string line, bool terminal);

    /** The terminal {"event":"done",...} line for a finished job. */
    static std::string doneEventLine(const Job &job);

    /** Record the queue/load/sim/validate/store span chain (and the
     *  configHash link) for a finished job on the daemon tracer. */
    void recordSpans(const Job &job, TimePoint load_end, TimePoint finish);

    /** Microseconds from the daemon epoch to @p t (the tracer's clock). */
    Cycle traceStamp(TimePoint t) const;

    ServiceConfig config;

    // Metrics. Counter handles are cached here so hot paths increment
    // without touching the registry lock; gauges read live state at
    // scrape time. Lock order: registry internals -> mu (expose() calls
    // gauge callbacks that take mu), so no thread may call a registry
    // registration method while holding mu.
    mutable stats::MetricsRegistry registry;
    stats::MetricsRegistry::Counter *ctrSubmitted;
    stats::MetricsRegistry::Counter *ctrAdmitted;
    stats::MetricsRegistry::Counter *ctrRejected;
    stats::MetricsRegistry::Counter *ctrCacheHits;
    stats::MetricsRegistry::Counter *ctrCacheLookups;
    stats::MetricsRegistry::Counter *ctrCheckpointWrites;
    stats::MetricsRegistry::Counter *ctrJobsCached;
    stats::Histogram *histQueueWait;
    stats::Histogram *histRun;
    stats::Histogram *histE2e;

    harness::DatasetPool pool;
    harness::ResultCache cache;

    // Daemon-level span trace (one track per job). The tracer itself is
    // single-threaded; traceMu serializes workers. Lock order: mu may be
    // held when taking traceMu, never the reverse.
    const TimePoint epoch = std::chrono::steady_clock::now();
    mutable std::mutex traceMu;
    obs::Tracer tracer{"gds_simd"};

    std::unique_ptr<harness::ThreadPool> threads; ///< destroyed before pool

    mutable std::mutex mu;
    mutable std::condition_variable progressCv;
    std::map<std::string, std::shared_ptr<Job>> jobs;
    std::uint64_t nextId = 1;
    std::size_t inFlight = 0; ///< admitted, not yet finished
    std::size_t runningNow = 0;
    bool stopping = false;
    ServiceStats counters; ///< monotonic fields only (queue fields derived)
};

} // namespace gds::svc
