/**
 * @file
 * The simulation service proper, socket-free so tests can drive it
 * in-process: a job registry in front of the experiment harness.
 * Submitted jobs are admitted into a bounded queue, scheduled onto a
 * harness::ThreadPool, share loaded graphs through the refcounted
 * harness::DatasetPool, and are served straight from the disk-backed
 * harness::ResultCache when an identical request (same key, see
 * JobSpec::key()) already ran — in this process or a previous one.
 *
 * Draining: drain() stops admission (submits are rejected with a
 * "resource" error), raises the global sim::requestStop() flag so every
 * in-flight simulation stops at its next check boundary — writing a
 * resumable checkpoint first when a checkpoint directory is configured —
 * and waits for the pool to empty. A drained service can still answer
 * poll/result/statsz, so clients can collect what finished.
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "harness/dataset_pool.hh"
#include "harness/experiment.hh"
#include "harness/parallel.hh"
#include "svc/protocol.hh"

namespace gds::svc
{

/** Daemon-side configuration (CLI flags of gds_simd). */
struct ServiceConfig
{
    /** Simulation worker threads. */
    unsigned workers = 2;
    /** Admission bound: queued + running jobs; submits beyond it are
     *  rejected with a "resource" error instead of queuing unboundedly. */
    std::size_t maxQueue = 8;
    /** Checkpoint directory for in-flight jobs ("" disables). Jobs
     *  interrupted by a drain leave `<dir>/<sanitized key>.ckpt` and an
     *  identical resubmission resumes from it. */
    std::string checkpointDir;
};

/** Lifecycle of one submitted job. */
enum class JobState
{
    Queued,
    Running,
    Done,   ///< finished with record.ok()
    Failed, ///< finished with a non-ok status ("stopped", "timeout", ...)
};

const char *jobStateName(JobState state);

/** Snapshot of one job for poll/result responses. */
struct JobView
{
    std::string id;
    JobState state = JobState::Queued;
    bool cached = false; ///< served from the result cache at submit
    harness::RunRecord record; ///< meaningful once Done/Failed
    double latencySeconds = 0.0; ///< submit → finish (0 while in flight)
};

/** Aggregate service metrics (the /statsz payload). */
struct ServiceStats
{
    std::uint64_t submitted = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0; ///< admission-queue-full rejections
    std::uint64_t completed = 0;
    std::uint64_t failed = 0;
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheLookups = 0;
    std::size_t queueDepth = 0; ///< admitted, not yet finished
    std::size_t running = 0;
    unsigned workers = 0;
    bool draining = false;
    std::size_t datasetsResident = 0;
    std::vector<std::string> datasetKeys;
    /** Submit→finish latency percentiles over finished jobs (seconds). */
    double latencyP50 = 0.0;
    double latencyP90 = 0.0;
    double latencyMax = 0.0;
};

class SimService
{
  public:
    explicit SimService(ServiceConfig service_config);
    ~SimService();

    SimService(const SimService &) = delete;
    SimService &operator=(const SimService &) = delete;

    /**
     * Admit one job. Returns its JobView — state Done immediately when
     * the result cache already holds the record (cached=true). Fails
     * with ErrorCode::Resource when the admission queue is full or the
     * service is draining.
     */
    Result<JobView> submit(const JobSpec &spec);

    /** Look up a job by id (ConfigError for an unknown id). */
    Result<JobView> poll(const std::string &job_id) const;

    /**
     * Fetch a finished job's record. A job still in flight fails with
     * ErrorCode::Timeout ("not finished yet") so clients can poll-loop
     * on the code, not on message text.
     */
    Result<JobView> result(const std::string &job_id) const;

    /** Metrics snapshot. */
    ServiceStats stats() const;

    /** Serialize stats() as one JSON object line ({"ok":true,...}). */
    std::string statszLine() const;

    /** Stop admission, stop in-flight runs (checkpointing), wait. */
    void drain();

    bool draining() const;

  private:
    struct Job
    {
        std::string id;
        JobSpec spec;
        std::string key;
        JobState state = JobState::Queued;
        bool cached = false;
        harness::RunRecord record;
        std::chrono::steady_clock::time_point submitTime;
        double latencySeconds = 0.0;
    };

    void runJob(const std::shared_ptr<Job> &job);
    JobView viewOf(const Job &job) const;

    ServiceConfig config;
    harness::DatasetPool pool;
    harness::ResultCache cache;
    std::unique_ptr<harness::ThreadPool> threads; ///< destroyed before pool

    mutable std::mutex mu;
    std::map<std::string, std::shared_ptr<Job>> jobs;
    std::uint64_t nextId = 1;
    std::size_t inFlight = 0; ///< admitted, not yet finished
    std::size_t runningNow = 0;
    bool stopping = false;
    ServiceStats counters; ///< monotonic fields only (queue fields derived)
    std::vector<double> latencies;
};

} // namespace gds::svc
