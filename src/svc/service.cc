#include "svc/service.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/logging.hh"
#include "sim/simulator.hh"
#include "stats/json.hh"

namespace gds::svc
{

namespace
{

/** Filesystem-safe checkpoint basename from a cache key. */
std::string
sanitizedBasename(const std::string &key)
{
    std::string base = key;
    for (char &c : base) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_';
        if (!ok)
            c = '_';
    }
    return base;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
    }
    panic("bad job state");
}

SimService::SimService(ServiceConfig service_config)
    : config(std::move(service_config))
{
    gds_require(config.workers > 0, ConfigError,
                "service needs at least one worker");
    gds_require(config.maxQueue > 0, ConfigError,
                "service needs a positive admission bound");
    counters.workers = config.workers;
    threads = std::make_unique<harness::ThreadPool>(config.workers);
}

SimService::~SimService()
{
    drain();
}

Result<JobView>
SimService::submit(const JobSpec &spec)
{
    const std::string key = spec.key();
    const bool weighted =
        algo::makeAlgorithm(spec.algorithm)->usesWeights();

    std::shared_ptr<Job> job;
    {
        const std::lock_guard<std::mutex> lock(mu);
        ++counters.submitted;
        if (stopping)
            return Status::failure(ErrorCode::Resource,
                                   "service is draining; not accepting "
                                   "new jobs");

        job = std::make_shared<Job>();
        // (vformat, not "j" + to_string: GCC 12 -Wrestrict misfires on
        // literal + temporary-string concatenation under -Werror.)
        job->id = detail::vformat(
            "j%llu", static_cast<unsigned long long>(nextId++));
        job->spec = spec;
        job->key = key;
        job->submitTime = std::chrono::steady_clock::now();

        // Cache probe at admission: a repeat request costs one map
        // lookup, no queue slot and no worker.
        ++counters.cacheLookups;
        if (auto hit = cache.lookup(key)) {
            ++counters.cacheHits;
            job->cached = true;
            job->state = JobState::Done;
            job->record = *hit;
            jobs.emplace(job->id, job);
            return viewOf(*job);
        }

        if (inFlight >= config.maxQueue) {
            ++counters.rejected;
            return Status::failure(
                ErrorCode::Resource,
                detail::vformat("admission queue full (%zu/%zu jobs in "
                                "flight); resubmit later",
                                inFlight, config.maxQueue));
        }
        ++counters.admitted;
        ++inFlight;
        jobs.emplace(job->id, job);
    }

    // Reserve the dataset reference outside the registry lock (the pool
    // has its own); the matching release happens when the job finishes.
    pool.expect(spec.dataset, weighted);
    threads->submit([this, job] { runJob(job); });
    {
        const std::lock_guard<std::mutex> lock(mu);
        return viewOf(*job);
    }
}

void
SimService::runJob(const std::shared_ptr<Job> &job)
{
    {
        const std::lock_guard<std::mutex> lock(mu);
        job->state = JobState::Running;
        ++runningNow;
    }

    const JobSpec &spec = job->spec;
    const bool weighted =
        algo::makeAlgorithm(spec.algorithm)->usesWeights();

    harness::RunRecord record;
    try {
        // Per-job policy: the request's budgets and overrides, plus a
        // per-key checkpoint so a drained job's resubmission resumes
        // where the SIGTERM stopped it.
        harness::CellPolicy policy;
        policy.cycleBudget = spec.cycleBudget;
        policy.wallBudgetSeconds = spec.wallBudgetSeconds;
        policy.source = spec.source;
        policy.iterations = spec.iterations;
        core::CheckpointOptions ckpt;
        if (!config.checkpointDir.empty()) {
            ckpt.dir = config.checkpointDir;
            ckpt.basename = sanitizedBasename(job->key);
            ckpt.identity = job->key;
            ckpt.resume = true;
            ckpt.interval = 100'000'000;
            policy.checkpoint = &ckpt;
        }

        const std::string system = harness::systemName(spec.system);
        record = cache.getOrRun(job->key, [&] {
            return harness::runCell(system, spec.algorithm, spec.dataset,
                                    [&] {
                auto g = pool.get(spec.dataset, weighted);
                switch (spec.system) {
                  case harness::SystemId::GraphDynS:
                    return harness::runGds(spec.algorithm, spec.dataset,
                                           *g, harness::GdsVariant::Full,
                                           nullptr, &policy);
                  case harness::SystemId::Graphicionado:
                    return harness::runGraphicionado(
                        spec.algorithm, spec.dataset, *g, &policy);
                  case harness::SystemId::Gunrock:
                    return harness::runGunrock(spec.algorithm,
                                               spec.dataset, *g);
                }
                panic("bad system id");
            });
        });
    } catch (const std::exception &e) {
        // runCell degrades SimErrors into records; anything else (a
        // std::bad_alloc, a filesystem surprise) must not poison the
        // pool's wait() for unrelated jobs.
        warn("job %s failed unexpectedly: %s", job->id.c_str(), e.what());
        record.system = harness::systemName(spec.system);
        record.algorithm = algo::algorithmName(spec.algorithm);
        record.dataset = spec.dataset;
        record.status = "internal";
    }

    pool.release(spec.dataset, weighted);

    const std::lock_guard<std::mutex> lock(mu);
    job->record = record;
    job->state = record.ok() ? JobState::Done : JobState::Failed;
    job->latencySeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      job->submitTime)
            .count();
    latencies.push_back(job->latencySeconds);
    record.ok() ? ++counters.completed : ++counters.failed;
    --runningNow;
    --inFlight;
}

JobView
SimService::viewOf(const Job &job) const
{
    JobView v;
    v.id = job.id;
    v.state = job.state;
    v.cached = job.cached;
    v.record = job.record;
    v.latencySeconds = job.latencySeconds;
    return v;
}

Result<JobView>
SimService::poll(const std::string &job_id) const
{
    const std::lock_guard<std::mutex> lock(mu);
    const auto it = jobs.find(job_id);
    if (it == jobs.end())
        return Status::failure(ErrorCode::Config,
                               "unknown job '" + job_id + "'");
    return viewOf(*it->second);
}

Result<JobView>
SimService::result(const std::string &job_id) const
{
    const std::lock_guard<std::mutex> lock(mu);
    const auto it = jobs.find(job_id);
    if (it == jobs.end())
        return Status::failure(ErrorCode::Config,
                               "unknown job '" + job_id + "'");
    const Job &job = *it->second;
    if (job.state != JobState::Done && job.state != JobState::Failed)
        return Status::failure(ErrorCode::Timeout,
                               "job '" + job_id + "' not finished yet");
    return viewOf(job);
}

ServiceStats
SimService::stats() const
{
    ServiceStats s;
    std::vector<double> lat;
    {
        const std::lock_guard<std::mutex> lock(mu);
        s = counters;
        s.queueDepth = inFlight;
        s.running = runningNow;
        s.draining = stopping;
        lat = latencies;
    }
    s.datasetsResident = pool.residentCount();
    s.datasetKeys = pool.residentKeys();
    std::sort(lat.begin(), lat.end());
    s.latencyP50 = percentile(lat, 0.50);
    s.latencyP90 = percentile(lat, 0.90);
    s.latencyMax = lat.empty() ? 0.0 : lat.back();
    return s;
}

std::string
SimService::statszLine() const
{
    const ServiceStats s = stats();
    std::ostringstream os;
    auto num = [&](const char *name, double value) {
        stats::emitJsonString(os, name);
        os << ':';
        stats::emitJsonNumber(os, value);
        os << ',';
    };
    os << "{\"ok\":true,";
    num("submitted", static_cast<double>(s.submitted));
    num("admitted", static_cast<double>(s.admitted));
    num("rejected", static_cast<double>(s.rejected));
    num("completed", static_cast<double>(s.completed));
    num("failed", static_cast<double>(s.failed));
    num("cache_hits", static_cast<double>(s.cacheHits));
    num("cache_lookups", static_cast<double>(s.cacheLookups));
    num("cache_hit_rate",
        s.cacheLookups == 0 ? 0.0
                            : static_cast<double>(s.cacheHits) /
                                  static_cast<double>(s.cacheLookups));
    num("queue_depth", static_cast<double>(s.queueDepth));
    num("running", static_cast<double>(s.running));
    num("workers", s.workers);
    os << "\"draining\":" << (s.draining ? "true" : "false") << ',';
    num("datasets_resident", static_cast<double>(s.datasetsResident));
    os << "\"dataset_keys\":[";
    for (std::size_t i = 0; i < s.datasetKeys.size(); ++i) {
        if (i)
            os << ',';
        stats::emitJsonString(os, s.datasetKeys[i]);
    }
    os << "],";
    num("latency_p50_seconds", s.latencyP50);
    num("latency_p90_seconds", s.latencyP90);
    os << "\"latency_max_seconds\":";
    stats::emitJsonNumber(os, s.latencyMax);
    os << '}';
    return os.str();
}

void
SimService::drain()
{
    {
        const std::lock_guard<std::mutex> lock(mu);
        if (stopping && !threads)
            return; // already drained
        stopping = true;
    }
    // Every in-flight run notices the global stop flag at its next
    // check-interval boundary, writes a checkpoint when configured, and
    // returns RunOutcome::Stopped (record status "stopped").
    sim::requestStop();
    if (threads) {
        try {
            threads->wait();
        } catch (const std::exception &e) {
            warn("drain: worker raised: %s", e.what());
        }
        threads.reset();
    }
    sim::clearStopRequest();
}

bool
SimService::draining() const
{
    const std::lock_guard<std::mutex> lock(mu);
    return stopping;
}

} // namespace gds::svc
