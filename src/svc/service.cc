#include "svc/service.hh"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/log.hh"
#include "common/logging.hh"
#include "common/rss.hh"
#include "sim/simulator.hh"
#include "stats/json.hh"

namespace gds::svc
{

namespace
{

/** Filesystem-safe checkpoint basename from a cache key. */
std::string
sanitizedBasename(const std::string &key)
{
    std::string base = key;
    for (char &c : base) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '-' || c == '_';
        if (!ok)
            c = '_';
    }
    return base;
}

/** Per-job event-ring bound: a subscriber that falls further behind
 *  resumes from the oldest retained event. ~512 events outlive any
 *  realistic poll gap while bounding a job's telemetry memory. */
constexpr std::size_t kEventRingBound = 512;

/** Latency histogram shape: 1 ms lowest bound, doubling per bucket, 20
 *  finite buckets — covering 1 ms .. ~524 s, beyond which the +Inf
 *  bucket and the exact tracked max take over. */
constexpr double kLatLowest = 1e-3;
constexpr double kLatGrowth = 2.0;
constexpr int kLatBuckets = 20;

double
elapsedSeconds(std::chrono::steady_clock::time_point from,
               std::chrono::steady_clock::time_point to)
{
    return std::chrono::duration<double>(to - from).count();
}

} // namespace

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
    }
    panic("bad job state");
}

SimService::SimService(ServiceConfig service_config)
    : config(std::move(service_config))
{
    gds_require(config.workers > 0, ConfigError,
                "service needs at least one worker");
    gds_require(config.maxQueue > 0, ConfigError,
                "service needs a positive admission bound");
    counters.workers = config.workers;

    // Register every metric up front: /metricsz exposes the full schema
    // (zero-valued) from the first scrape, and hot paths touch only the
    // cached handles, never the registry lock.
    ctrSubmitted = &registry.counter(
        "gds_svc_submitted_total", "Jobs submitted (accepted or not)");
    ctrAdmitted = &registry.counter(
        "gds_svc_admitted_total", "Jobs admitted into the run queue");
    ctrRejected = &registry.counter(
        "gds_svc_admission_rejected_total",
        "Submissions rejected because the admission queue was full");
    ctrCacheHits = &registry.counter(
        "gds_svc_cache_hits_total",
        "Submissions served from the result cache");
    ctrCacheLookups = &registry.counter(
        "gds_svc_cache_lookups_total",
        "Result-cache probes at admission");
    ctrCheckpointWrites = &registry.counter(
        "gds_svc_checkpoint_writes_total",
        "In-flight jobs checkpointed by a drain");
    ctrJobsCached = &registry.counter(
        "gds_svc_jobs_total", "Finished jobs by outcome", "outcome",
        "cached");
    histQueueWait = &registry.histogram(
        "gds_svc_queue_wait_seconds",
        "Submit-to-start wait of admitted jobs", kLatLowest, kLatGrowth,
        kLatBuckets);
    histRun = &registry.histogram(
        "gds_svc_run_seconds", "Start-to-finish run time of jobs",
        kLatLowest, kLatGrowth, kLatBuckets);
    histE2e = &registry.histogram(
        "gds_svc_e2e_latency_seconds",
        "Submit-to-finish latency of jobs", kLatLowest, kLatGrowth,
        kLatBuckets);
    registry.gauge("gds_svc_queue_depth",
                   "Jobs admitted and not yet finished", [this] {
                       const std::lock_guard<std::mutex> lock(mu);
                       return static_cast<double>(inFlight);
                   });
    registry.gauge("gds_svc_running", "Jobs running right now", [this] {
        const std::lock_guard<std::mutex> lock(mu);
        return static_cast<double>(runningNow);
    });
    registry.gauge("gds_svc_draining",
                   "1 while the service is draining", [this] {
                       const std::lock_guard<std::mutex> lock(mu);
                       return stopping ? 1.0 : 0.0;
                   });
    registry.gauge("gds_svc_workers", "Simulation worker threads",
                   [this] { return static_cast<double>(config.workers); });
    registry.gauge("gds_svc_datasets_resident",
                   "Datasets resident in the shared pool", [this] {
                       return static_cast<double>(pool.residentCount());
                   });
    registry.gauge("gds_svc_dataset_mapped_bytes",
                   "Bytes of mmap-served dataset storage (page-cache "
                   "shared)",
                   [this] {
                       return static_cast<double>(pool.mappedBytes());
                   });
    registry.gauge("gds_svc_dataset_heap_bytes",
                   "Bytes of heap-owned dataset storage", [this] {
                       return static_cast<double>(pool.heapBytes());
                   });
    registry.gauge("gds_process_resident_memory_bytes",
                   "Resident set size of the daemon process", [] {
                       return static_cast<double>(common::currentRssBytes());
                   });
    registry.gauge("gds_process_peak_resident_memory_bytes",
                   "Peak resident set size of the daemon process", [] {
                       return static_cast<double>(common::peakRssBytes());
                   });

    threads = std::make_unique<harness::ThreadPool>(config.workers);
}

SimService::~SimService()
{
    drain();
}

Cycle
SimService::traceStamp(TimePoint t) const
{
    // The daemon tracer's clock is wall microseconds since service
    // start, reusing the tracer's cycles-rendered-as-us convention.
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        t - epoch);
    return static_cast<Cycle>(std::max<std::int64_t>(us.count(), 0));
}

void
SimService::publishLocked(Job &job, std::string line, bool terminal)
{
    ProgressEvent event;
    event.seq = job.nextSeq++;
    event.line = std::move(line);
    event.terminal = terminal;
    job.events.push_back(std::move(event));
    while (job.events.size() > kEventRingBound)
        job.events.pop_front();
    progressCv.notify_all();
}

std::string
SimService::doneEventLine(const Job &job)
{
    std::ostringstream os;
    os << "{\"event\":\"done\",\"job\":";
    stats::emitJsonString(os, job.id);
    os << ",\"state\":";
    stats::emitJsonString(os, jobStateName(job.state));
    os << ",\"cached\":" << (job.cached ? "true" : "false")
       << ",\"latency_seconds\":";
    stats::emitJsonNumber(os, job.latencySeconds);
    os << ",\"record\":" << recordJson(job.record) << '}';
    return os.str();
}

Result<JobView>
SimService::submit(const JobSpec &spec)
{
    const std::string key = spec.key();
    const bool weighted =
        algo::makeAlgorithm(spec.algorithm)->usesWeights();

    ctrSubmitted->inc();
    std::shared_ptr<Job> job;
    bool cached_hit = false;
    {
        const std::lock_guard<std::mutex> lock(mu);
        ++counters.submitted;
        if (stopping)
            return Status::failure(ErrorCode::Resource,
                                   "service is draining; not accepting "
                                   "new jobs");

        job = std::make_shared<Job>();
        // (vformat, not "j" + to_string: GCC 12 -Wrestrict misfires on
        // literal + temporary-string concatenation under -Werror.)
        job->id = detail::vformat(
            "j%llu", static_cast<unsigned long long>(nextId++));
        job->spec = spec;
        job->key = key;
        job->submitTime = std::chrono::steady_clock::now();

        // Cache probe at admission: a repeat request costs one map
        // lookup, no queue slot and no worker.
        ++counters.cacheLookups;
        ctrCacheLookups->inc();
        if (auto hit = cache.lookup(key)) {
            ++counters.cacheHits;
            ctrCacheHits->inc();
            ctrJobsCached->inc();
            job->cached = true;
            job->state = JobState::Done;
            job->record = *hit;
            jobs.emplace(job->id, job);
            publishLocked(*job, doneEventLine(*job), true);
            cached_hit = true;
        } else if (inFlight >= config.maxQueue) {
            ++counters.rejected;
            ctrRejected->inc();
            return Status::failure(
                ErrorCode::Resource,
                detail::vformat("admission queue full (%zu/%zu jobs in "
                                "flight); resubmit later",
                                inFlight, config.maxQueue));
        } else {
            ++counters.admitted;
            ctrAdmitted->inc();
            ++inFlight;
            jobs.emplace(job->id, job);
        }
    }

    if (cached_hit) {
        if (!config.tracePath.empty()) {
            const std::lock_guard<std::mutex> trace_lock(traceMu);
            tracer.instant(tracer.track(job->id), "cached",
                           traceStamp(job->submitTime),
                           job->record.configHash);
        }
        log::infof("svc",
                   {{"job", job->id},
                    {"configHash", job->record.configHash}},
                   "job served from result cache");
        const std::lock_guard<std::mutex> lock(mu);
        return viewOf(*job);
    }

    log::infof("svc", {{"job", job->id}, {"key", key}}, "job admitted");

    // Reserve the dataset reference outside the registry lock (the pool
    // has its own); the matching release happens when the job finishes.
    pool.expect(spec.dataset, weighted);
    threads->submit([this, job] { runJob(job); });
    {
        const std::lock_guard<std::mutex> lock(mu);
        return viewOf(*job);
    }
}

void
SimService::runJob(const std::shared_ptr<Job> &job)
{
    const TimePoint start = std::chrono::steady_clock::now();
    {
        const std::lock_guard<std::mutex> lock(mu);
        job->state = JobState::Running;
        job->startTime = start;
        ++runningNow;
        std::ostringstream os;
        os << "{\"event\":\"start\",\"job\":";
        stats::emitJsonString(os, job->id);
        os << ",\"key\":";
        stats::emitJsonString(os, job->key);
        os << '}';
        publishLocked(*job, os.str(), false);
    }
    histQueueWait->observe(elapsedSeconds(job->submitTime, start));

    const JobSpec &spec = job->spec;
    const bool weighted =
        algo::makeAlgorithm(spec.algorithm)->usesWeights();
    // ETA horizon for progress events: the cycle budget this run will
    // be cut off at, whatever its source.
    const Cycle budget = spec.cycleBudget != 0 ? spec.cycleBudget
                                               : harness::cellCycleBudget();

    harness::RunRecord record;
    TimePoint load_end = start;
    try {
        // Per-job policy: the request's budgets and overrides, plus a
        // per-key checkpoint so a drained job's resubmission resumes
        // where the SIGTERM stopped it.
        harness::CellPolicy policy;
        policy.cycleBudget = spec.cycleBudget;
        policy.wallBudgetSeconds = spec.wallBudgetSeconds;
        policy.source = spec.source;
        policy.iterations = spec.iterations;
        core::CheckpointOptions ckpt;
        if (!config.checkpointDir.empty()) {
            ckpt.dir = config.checkpointDir;
            ckpt.basename = sanitizedBasename(job->key);
            ckpt.identity = job->key;
            ckpt.resume = true;
            ckpt.interval = 100'000'000;
            policy.checkpoint = &ckpt;
        }

        const std::string system = harness::systemName(spec.system);
        record = cache.getOrRun(job->key, [&] {
            return harness::runCell(system, spec.algorithm, spec.dataset,
                                    [&] {
                auto g = pool.get(spec.dataset, weighted);
                load_end = std::chrono::steady_clock::now();

                // A fresh sampler per attempt: its probes capture the
                // accelerator built inside runGds/runGraphicionado, so
                // reusing one across runCell retries would sample a
                // destroyed model. Always attached (interval 0 merely
                // never fires), keeping checkpoint sampler-presence
                // symmetric across drain/resume whatever the
                // progress_interval of either request.
                obs::Sampler sampler;
                sampler.setInterval(spec.progressInterval);
                // Resolved from the sealed column set at the first
                // sample; -1 while unresolved / absent.
                std::ptrdiff_t frontier_col = -1, edges_col = -1;
                bool cols_resolved = false;
                sampler.setOnSample([&](Cycle cycle,
                                        const std::vector<double> &row) {
                    if (!cols_resolved) {
                        const auto &cols = sampler.series().columns();
                        for (std::size_t c = 0; c < cols.size(); ++c) {
                            if (cols[c].find("frontier") !=
                                std::string::npos)
                                frontier_col =
                                    static_cast<std::ptrdiff_t>(c);
                            if (cols[c] == "edgesProcessed")
                                edges_col =
                                    static_cast<std::ptrdiff_t>(c);
                        }
                        cols_resolved = true;
                    }
                    std::ostringstream os;
                    os << "{\"event\":\"progress\",\"job\":";
                    stats::emitJsonString(os, job->id);
                    os << ",\"cycle\":" << cycle;
                    if (edges_col >= 0) {
                        os << ",\"edges\":";
                        stats::emitJsonNumber(
                            os, row[static_cast<std::size_t>(edges_col)]);
                    }
                    if (frontier_col >= 0) {
                        os << ",\"frontier\":";
                        stats::emitJsonNumber(
                            os,
                            row[static_cast<std::size_t>(frontier_col)]);
                    }
                    os << ",\"eta_cycles\":"
                       << (budget > cycle ? budget - cycle : 0) << '}';
                    const std::lock_guard<std::mutex> lock(mu);
                    publishLocked(*job, os.str(), false);
                });
                policy.sampler = &sampler;

                switch (spec.system) {
                  case harness::SystemId::GraphDynS:
                    return harness::runGds(spec.algorithm, spec.dataset,
                                           *g, harness::GdsVariant::Full,
                                           nullptr, &policy);
                  case harness::SystemId::Graphicionado:
                    return harness::runGraphicionado(
                        spec.algorithm, spec.dataset, *g, &policy);
                  case harness::SystemId::Gunrock:
                    return harness::runGunrock(spec.algorithm,
                                               spec.dataset, *g);
                }
                panic("bad system id");
            });
        });
    } catch (const std::exception &e) {
        // runCell degrades SimErrors into records; anything else (a
        // std::bad_alloc, a filesystem surprise) must not poison the
        // pool's wait() for unrelated jobs.
        log::errorf("svc", {{"job", job->id}},
                    "job failed unexpectedly: %s", e.what());
        record.system = harness::systemName(spec.system);
        record.algorithm = algo::algorithmName(spec.algorithm);
        record.dataset = spec.dataset;
        record.status = "internal";
    }

    pool.release(spec.dataset, weighted);

    const TimePoint finish = std::chrono::steady_clock::now();
    histRun->observe(elapsedSeconds(start, finish));
    histE2e->observe(elapsedSeconds(job->submitTime, finish));
    // Jobs-by-outcome counter series materialize lazily per status name;
    // the registry lock taken here is fine because mu is NOT held.
    registry.counter("gds_svc_jobs_total", "Finished jobs by outcome",
                     "outcome", record.status)
        .inc();
    if (record.status == "stopped" && !config.checkpointDir.empty())
        ctrCheckpointWrites->inc();

    log::infof("svc",
               {{"job", job->id},
                {"configHash", record.configHash},
                {"outcome", record.status}},
               "job finished in %.3fs",
               elapsedSeconds(job->submitTime, finish));

    {
        const std::lock_guard<std::mutex> lock(mu);
        job->record = record;
        job->state = record.ok() ? JobState::Done : JobState::Failed;
        job->latencySeconds = elapsedSeconds(job->submitTime, finish);
        record.ok() ? ++counters.completed : ++counters.failed;
        --runningNow;
        --inFlight;
        publishLocked(*job, doneEventLine(*job), true);
    }

    recordSpans(*job, load_end, finish);
}

void
SimService::recordSpans(const Job &job, TimePoint load_end, TimePoint finish)
{
    if (config.tracePath.empty())
        return;

    // One sequential, depth-1 span chain per job track. The sim and
    // validate spans are reconstructed from the record's wall-clock
    // split and clamped so the chain stays monotonic even when runCell
    // retried the cell (load_end then belongs to the last attempt).
    const Cycle t_submit = traceStamp(job.submitTime);
    const Cycle t_start = std::max(traceStamp(job.startTime), t_submit);
    const Cycle t_finish = std::max(traceStamp(finish), t_start);
    const Cycle t_load = std::min(
        std::max(traceStamp(load_end), t_start), t_finish);
    const auto micros = [](double seconds) {
        return static_cast<Cycle>(std::max(seconds, 0.0) * 1e6);
    };
    const Cycle t_sim = std::min(
        t_load + micros(job.record.wallSimSeconds), t_finish);
    const Cycle t_validate = std::min(
        t_sim + micros(job.record.wallValidateSeconds), t_finish);

    const std::lock_guard<std::mutex> lock(traceMu);
    const obs::TrackId track = tracer.track(job.id);
    tracer.begin(track, "queue", t_submit);
    tracer.end(track, t_start);
    tracer.begin(track, "load", t_start);
    tracer.end(track, t_load);
    tracer.begin(track, "sim", t_load);
    tracer.end(track, t_sim);
    tracer.begin(track, "validate", t_sim);
    tracer.end(track, t_validate);
    tracer.begin(track, "store", t_validate);
    tracer.end(track, t_finish);
    // The link back to the per-run simulator trace of the same cell.
    tracer.instant(track, "configHash", t_finish, job.record.configHash);
}

JobView
SimService::viewOf(const Job &job) const
{
    JobView v;
    v.id = job.id;
    v.state = job.state;
    v.cached = job.cached;
    v.record = job.record;
    v.latencySeconds = job.latencySeconds;
    return v;
}

Result<JobView>
SimService::poll(const std::string &job_id) const
{
    const std::lock_guard<std::mutex> lock(mu);
    const auto it = jobs.find(job_id);
    if (it == jobs.end())
        return Status::failure(ErrorCode::Config,
                               "unknown job '" + job_id + "'");
    return viewOf(*it->second);
}

Result<JobView>
SimService::result(const std::string &job_id) const
{
    const std::lock_guard<std::mutex> lock(mu);
    const auto it = jobs.find(job_id);
    if (it == jobs.end())
        return Status::failure(ErrorCode::Config,
                               "unknown job '" + job_id + "'");
    const Job &job = *it->second;
    if (job.state != JobState::Done && job.state != JobState::Failed)
        return Status::failure(ErrorCode::Timeout,
                               "job '" + job_id + "' not finished yet");
    return viewOf(job);
}

Result<std::vector<ProgressEvent>>
SimService::progressSince(const std::string &job_id,
                          std::uint64_t after_seq,
                          unsigned timeout_ms) const
{
    std::unique_lock<std::mutex> lock(mu);
    const auto it = jobs.find(job_id);
    if (it == jobs.end())
        return Status::failure(ErrorCode::Config,
                               "unknown job '" + job_id + "'");
    const std::shared_ptr<Job> job = it->second;

    const auto fresh = [&] {
        return !job->events.empty() && job->events.back().seq > after_seq;
    };
    progressCv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                        fresh);

    std::vector<ProgressEvent> out;
    for (const ProgressEvent &event : job->events)
        if (event.seq > after_seq)
            out.push_back(event);
    return out;
}

ServiceStats
SimService::stats() const
{
    ServiceStats s;
    {
        const std::lock_guard<std::mutex> lock(mu);
        s = counters;
        s.queueDepth = inFlight;
        s.running = runningNow;
        s.draining = stopping;
    }
    s.datasetsResident = pool.residentCount();
    s.datasetKeys = pool.residentKeys();
    s.datasetMappedBytes = pool.mappedBytes();
    s.datasetHeapBytes = pool.heapBytes();
    s.latencyP50 = histE2e->percentile(0.50);
    s.latencyP90 = histE2e->percentile(0.90);
    s.latencyMax = histE2e->max();
    return s;
}

std::string
SimService::statszLine() const
{
    const ServiceStats s = stats();
    std::ostringstream os;
    auto num = [&](const char *name, double value) {
        stats::emitJsonString(os, name);
        os << ':';
        stats::emitJsonNumber(os, value);
        os << ',';
    };
    os << "{\"ok\":true,";
    num("submitted", static_cast<double>(s.submitted));
    num("admitted", static_cast<double>(s.admitted));
    num("rejected", static_cast<double>(s.rejected));
    num("completed", static_cast<double>(s.completed));
    num("failed", static_cast<double>(s.failed));
    num("cache_hits", static_cast<double>(s.cacheHits));
    num("cache_lookups", static_cast<double>(s.cacheLookups));
    num("cache_hit_rate",
        s.cacheLookups == 0 ? 0.0
                            : static_cast<double>(s.cacheHits) /
                                  static_cast<double>(s.cacheLookups));
    num("queue_depth", static_cast<double>(s.queueDepth));
    num("running", static_cast<double>(s.running));
    num("workers", s.workers);
    os << "\"draining\":" << (s.draining ? "true" : "false") << ',';
    num("datasets_resident", static_cast<double>(s.datasetsResident));
    num("dataset_mapped_bytes",
        static_cast<double>(s.datasetMappedBytes));
    num("dataset_heap_bytes", static_cast<double>(s.datasetHeapBytes));
    os << "\"dataset_keys\":[";
    for (std::size_t i = 0; i < s.datasetKeys.size(); ++i) {
        if (i)
            os << ',';
        stats::emitJsonString(os, s.datasetKeys[i]);
    }
    os << "],";
    num("latency_p50_seconds", s.latencyP50);
    num("latency_p90_seconds", s.latencyP90);
    os << "\"latency_max_seconds\":";
    stats::emitJsonNumber(os, s.latencyMax);
    os << '}';
    return os.str();
}

std::string
SimService::metricsText() const
{
    return registry.expose();
}

void
SimService::drain()
{
    {
        const std::lock_guard<std::mutex> lock(mu);
        if (stopping && !threads)
            return; // already drained
        stopping = true;
    }
    // Every in-flight run notices the global stop flag at its next
    // check-interval boundary, writes a checkpoint when configured, and
    // returns RunOutcome::Stopped (record status "stopped").
    sim::requestStop();
    if (threads) {
        try {
            threads->wait();
        } catch (const std::exception &e) {
            warn("drain: worker raised: %s", e.what());
        }
        threads.reset();
        if (!config.tracePath.empty()) {
            const std::lock_guard<std::mutex> lock(traceMu);
            if (tracer.writeFile(config.tracePath)) {
                log::infof("svc", {{"path", config.tracePath}},
                           "daemon span trace written");
            }
        }
    }
    sim::clearStopRequest();
    // Wake any subscriber still waiting so it re-checks its stop flags.
    progressCv.notify_all();
}

bool
SimService::draining() const
{
    const std::lock_guard<std::mutex> lock(mu);
    return stopping;
}

} // namespace gds::svc
