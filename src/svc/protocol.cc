#include "svc/protocol.hh"

#include <limits>
#include <sstream>

#include "common/jsonio.hh"
#include "common/parse.hh"
#include "graph/datasets.hh"
#include "stats/json.hh"

namespace gds::svc
{

namespace
{

std::string
lowered(const std::string &s)
{
    std::string out = s;
    for (char &c : out)
        if (c >= 'A' && c <= 'Z')
            c = static_cast<char>(c - 'A' + 'a');
    return out;
}

Status
badRequest(const std::string &message)
{
    return Status::failure(ErrorCode::Config, message);
}

/**
 * Fetch an optional numeric field as its raw text, accepting both JSON
 * numbers (via the retained lexeme) and strings, so `"source":3` and
 * `"source":"3"` both funnel into the same strict parser the CLI uses.
 */
Result<std::optional<std::string>>
numericText(const common::JsonValue &obj, const std::string &field)
{
    const common::JsonValue *v = obj.find(field);
    if (!v)
        return std::optional<std::string>{};
    if (v->isNumber())
        return std::optional<std::string>{v->numberLexeme()};
    if (v->isString())
        return std::optional<std::string>{v->asString()};
    return badRequest("field '" + field + "' must be a number");
}

/** Strictly parse an optional u64 field into @p out (left unset if absent). */
Status
readU64Field(const common::JsonValue &obj, const std::string &field,
             std::optional<std::uint64_t> &out, std::uint64_t max)
{
    auto text = numericText(obj, field);
    if (!text.ok())
        return text.status();
    if (!text.value().has_value())
        return Status{};
    const auto parsed = common::parseU64(*text.value());
    if (!parsed.ok())
        return badRequest("field '" + field + "': " +
                          parsed.status().message());
    if (parsed.value() > max)
        return badRequest("field '" + field + "' exceeds " +
                          std::to_string(max));
    out = parsed.value();
    return Status{};
}

Result<harness::SystemId>
parseSystem(const std::string &name)
{
    const std::string s = lowered(name);
    if (s == "gds" || s == "graphdyns")
        return harness::SystemId::GraphDynS;
    if (s == "graphicionado")
        return harness::SystemId::Graphicionado;
    if (s == "gunrock")
        return harness::SystemId::Gunrock;
    return badRequest("unknown system '" + name +
                      "' (want gds, graphicionado or gunrock)");
}

Result<algo::AlgorithmId>
parseAlgorithm(const std::string &name)
{
    const std::string s = lowered(name);
    for (const algo::AlgorithmId id : algo::allAlgorithms)
        if (s == lowered(algo::algorithmName(id)))
            return id;
    return badRequest("unknown algorithm '" + name +
                      "' (want bfs, sssp, cc, sswp or pr)");
}

Status
validateDataset(const std::string &name)
{
    for (const auto &spec : graph::realWorldDatasets())
        if (spec.name == name)
            return Status{};
    for (const auto &spec : graph::rmatDatasets())
        if (spec.name == name)
            return Status{};
    return badRequest("unknown dataset '" + name +
                      "' (want a Table 4 tag: FR PK LJ HO IN OR or "
                      "RM22..RM26)");
}

Result<JobSpec>
parseSubmit(const common::JsonValue &obj)
{
    JobSpec spec;

    if (const common::JsonValue *sys = obj.find("system")) {
        if (!sys->isString())
            return badRequest("field 'system' must be a string");
        auto parsed = parseSystem(sys->asString());
        if (!parsed.ok())
            return parsed.status();
        spec.system = parsed.value();
    }

    const common::JsonValue *alg = obj.find("algorithm");
    if (!alg || !alg->isString())
        return badRequest("submit needs a string field 'algorithm'");
    {
        auto parsed = parseAlgorithm(alg->asString());
        if (!parsed.ok())
            return parsed.status();
        spec.algorithm = parsed.value();
    }

    const common::JsonValue *ds = obj.find("dataset");
    if (!ds || !ds->isString())
        return badRequest("submit needs a string field 'dataset'");
    spec.dataset = ds->asString();
    if (Status s = validateDataset(spec.dataset); !s.ok())
        return s;

    std::optional<std::uint64_t> u64;
    if (Status s = readU64Field(obj, "source", u64,
                                std::numeric_limits<VertexId>::max());
        !s.ok())
        return s;
    if (u64)
        spec.source = static_cast<VertexId>(*u64);

    u64.reset();
    if (Status s = readU64Field(obj, "iterations", u64, 1'000'000); !s.ok())
        return s;
    if (u64) {
        if (*u64 == 0)
            return badRequest("field 'iterations' must be positive");
        spec.iterations = static_cast<unsigned>(*u64);
    }

    u64.reset();
    if (Status s = readU64Field(obj, "cycle_budget", u64,
                                std::numeric_limits<Cycle>::max());
        !s.ok())
        return s;
    if (u64)
        spec.cycleBudget = *u64;

    auto wall = numericText(obj, "wall_budget_seconds");
    if (!wall.ok())
        return wall.status();
    if (wall.value().has_value()) {
        const auto parsed = common::parseF64(*wall.value());
        if (!parsed.ok())
            return badRequest("field 'wall_budget_seconds': " +
                              parsed.status().message());
        spec.wallBudgetSeconds = parsed.value();
    }

    u64.reset();
    if (Status s = readU64Field(obj, "progress_interval", u64,
                                std::numeric_limits<Cycle>::max());
        !s.ok())
        return s;
    if (u64)
        spec.progressInterval = *u64;

    return spec;
}

} // namespace

std::string
JobSpec::systemTag() const
{
    switch (system) {
      case harness::SystemId::GraphDynS:
        return "gds";
      case harness::SystemId::Graphicionado:
        return "graphicionado";
      case harness::SystemId::Gunrock:
        return "gunrock";
    }
    panic("bad system id");
}

std::string
JobSpec::key() const
{
    std::string k = harness::cellKey(systemTag(), algorithm, dataset);
    // Only overrides that change the simulated outcome extend the key:
    // a spec with none reuses (and warms) the evaluation matrix's cells.
    if (source)
        k += "|src" + std::to_string(*source);
    if (iterations)
        k += "|it" + std::to_string(*iterations);
    if (cycleBudget != 0)
        k += "|cb" + std::to_string(cycleBudget);
    return k;
}

Result<Request>
parseRequest(const std::string &line)
{
    auto json = common::parseJson(line);
    if (!json.ok())
        return json.status();
    const common::JsonValue &root = json.value();
    if (!root.isObject())
        return badRequest("request must be a JSON object");

    const common::JsonValue *op = root.find("op");
    if (!op || !op->isString())
        return badRequest("request needs a string field 'op'");

    Request req;
    const std::string name = lowered(op->asString());
    if (name == "submit") {
        req.op = RequestOp::Submit;
        auto spec = parseSubmit(root);
        if (!spec.ok())
            return spec.status();
        req.spec = spec.value();
        return req;
    }
    if (name == "poll" || name == "result" || name == "subscribe") {
        req.op = name == "poll"
                     ? RequestOp::Poll
                     : name == "result" ? RequestOp::Result
                                        : RequestOp::Subscribe;
        const common::JsonValue *job = root.find("job");
        if (!job || !job->isString() || job->asString().empty())
            return badRequest("'" + name +
                              "' needs a non-empty string field 'job'");
        req.jobId = job->asString();
        return req;
    }
    if (name == "statsz") {
        req.op = RequestOp::Statsz;
        return req;
    }
    if (name == "metricsz") {
        req.op = RequestOp::Metricsz;
        return req;
    }
    if (name == "shutdown") {
        req.op = RequestOp::Shutdown;
        return req;
    }
    return badRequest("unknown op '" + op->asString() +
                      "' (want submit, poll, result, subscribe, statsz, "
                      "metricsz or shutdown)");
}

std::string
errorLine(ErrorCode code, const std::string &message)
{
    std::ostringstream os;
    os << "{\"ok\":false,\"error\":";
    stats::emitJsonString(os, errorCodeName(code));
    os << ",\"message\":";
    stats::emitJsonString(os, message);
    os << '}';
    return os.str();
}

std::string
errorLine(const Status &status)
{
    return errorLine(status.code(), status.message());
}

std::string
recordJson(const harness::RunRecord &record)
{
    // dumpRecordsJson emits an array (plus a trailing newline); a
    // single-record call is "[{...}]\n", so the object is the middle
    // slice. Reusing the harness serializer keeps daemon responses
    // field-for-field identical to bench dumps.
    std::ostringstream os;
    harness::dumpRecordsJson({record}, os);
    std::string arr = os.str();
    while (!arr.empty() && (arr.back() == '\n' || arr.back() == ' '))
        arr.pop_back();
    gds_assert(arr.size() >= 2 && arr.front() == '[' && arr.back() == ']',
               "unexpected records array shape");
    return arr.substr(1, arr.size() - 2);
}

} // namespace gds::svc
