/**
 * @file
 * Socket front-end of the simulation service: binds a Unix-domain
 * listener, reads JSON-line requests, dispatches them to SimService and
 * writes JSON-line responses. Each accepted connection is served on its
 * own thread — requests themselves are cheap registry operations (the
 * simulations run on the service's worker pool), but a subscribe stream
 * holds its connection open for a job's whole lifetime, so a busy
 * subscriber must not block submitters on other connections.
 *
 * Two listeners:
 *  - the protocol socket (JSON-lines request/response, plus the
 *    subscribe streaming mode — see svc/protocol.hh);
 *  - an optional plain-text metrics socket (--metrics-socket): every
 *    accepted connection receives one Prometheus text exposition of the
 *    service registry and is closed, i.e. scrape semantics, so a
 *    Prometheus agent can read the daemon without speaking the JSON
 *    protocol.
 *
 * Shutdown: every loop polls sim::stopRequested() (the daemon's SIGTERM
 * handler raises it) and the in-band {"op":"shutdown"} request; either
 * way serve() joins the connection threads, drains the service —
 * in-flight jobs checkpoint and stop — and returns an ok Status for a
 * clean exit.
 */

#pragma once

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/error.hh"
#include "common/socket.hh"
#include "svc/service.hh"

namespace gds::svc
{

struct ServerConfig
{
    std::string socketPath = "gds_simd.sock";
    /** Prometheus scrape socket ("" disables). */
    std::string metricsSocketPath;
    ServiceConfig service;
};

class Server
{
  public:
    explicit Server(ServerConfig server_config);

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind and serve until a stop is requested (signal or shutdown op).
     * Returns a failure Status only for setup errors (socket path in
     * use); protocol-level failures are answered in-band, never fatal.
     */
    Status serve();

    /** Ask the accept loop to exit after the current connection. */
    void requestStop();

    /** Dispatch one request line to one response line (exposed for
     *  in-process tests; no socket involved). For subscribe this is the
     *  ack line only — the event stream needs a real connection. */
    std::string handleLine(const std::string &line);

    SimService &service() { return sim_service; }

  private:
    /** One tracked connection thread (joined when finished or at exit). */
    struct Connection
    {
        std::thread thread;
        std::atomic<bool> finished{false};
    };

    bool stopRequested() const;

    /** The response line for an already-parsed request. */
    std::string handleParsed(const Result<Request> &parsed);

    /** Serve one protocol connection until close/stop. */
    void serveConnection(common::LineChannel chan);

    /** Push a job's progress events down @p chan until its terminal
     *  event, a write failure, or a stop request. */
    void streamJob(common::LineChannel &chan, const std::string &job_id);

    /** Accept loop of the metrics socket: one scrape per connection. */
    void serveMetrics(common::UnixListener &listener);

    /** Join connection threads; @p only_finished prunes as it goes. */
    void reapConnections(bool only_finished);

    ServerConfig config;
    SimService sim_service;
    std::atomic<bool> stop{false};

    std::mutex connectionsMu;
    std::list<std::unique_ptr<Connection>> connections;
};

} // namespace gds::svc
