/**
 * @file
 * Socket front-end of the simulation service: binds a Unix-domain
 * listener, reads JSON-line requests, dispatches them to SimService and
 * writes JSON-line responses. Connections are served one at a time —
 * requests are cheap registry operations (the simulations themselves run
 * on the service's worker pool), so a serial accept loop keeps the
 * protocol surface single-threaded and trivially race-free.
 *
 * Shutdown: the loop polls sim::stopRequested() between accepts (the
 * daemon's SIGTERM handler raises it) and also honours an in-band
 * {"op":"shutdown"} request; either way serve() drains the service —
 * in-flight jobs checkpoint and stop — and returns an ok Status for a
 * clean exit.
 */

#pragma once

#include <atomic>
#include <string>

#include "common/error.hh"
#include "common/socket.hh"
#include "svc/service.hh"

namespace gds::svc
{

struct ServerConfig
{
    std::string socketPath = "gds_simd.sock";
    ServiceConfig service;
};

class Server
{
  public:
    explicit Server(ServerConfig server_config);

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Bind and serve until a stop is requested (signal or shutdown op).
     * Returns a failure Status only for setup errors (socket path in
     * use); protocol-level failures are answered in-band, never fatal.
     */
    Status serve();

    /** Ask the accept loop to exit after the current connection. */
    void requestStop();

    /** Dispatch one request line to one response line (exposed for
     *  in-process tests; no socket involved). */
    std::string handleLine(const std::string &line);

    SimService &service() { return sim_service; }

  private:
    ServerConfig config;
    SimService sim_service;
    std::atomic<bool> stop{false};
};

} // namespace gds::svc
