#include "sim/simulator.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>

#include "common/debug.hh"
#include "sim/checkpoint.hh"

namespace gds::sim
{

const char *
runOutcomeName(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Completed:
        return "completed";
      case RunOutcome::Deadlock:
        return "deadlock";
      case RunOutcome::Livelock:
        return "livelock";
      case RunOutcome::CycleLimit:
        return "cycle-limit";
      case RunOutcome::Stopped:
        return "stopped";
      case RunOutcome::Timeout:
        return "timeout";
    }
    panic("bad run outcome %d", static_cast<int>(outcome));
}

namespace
{

/** Process-wide graceful-stop request (set from signal handlers). */
std::atomic<bool> stopFlag{false};

} // namespace

void
requestStop()
{
    stopFlag.store(true, std::memory_order_relaxed);
}

bool
stopRequested()
{
    return stopFlag.load(std::memory_order_relaxed);
}

void
clearStopRequest()
{
    stopFlag.store(false, std::memory_order_relaxed);
}

ErrorCode
runOutcomeError(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Completed:
        return ErrorCode::Ok;
      case RunOutcome::Deadlock:
        return ErrorCode::Deadlock;
      case RunOutcome::Livelock:
        return ErrorCode::Livelock;
      case RunOutcome::CycleLimit:
        return ErrorCode::CycleLimit;
      case RunOutcome::Stopped:
        return ErrorCode::Stopped;
      case RunOutcome::Timeout:
        return ErrorCode::Timeout;
    }
    panic("bad run outcome %d", static_cast<int>(outcome));
}

std::string
RunReport::summary() const
{
    std::ostringstream os;
    os << runOutcomeName(outcome) << " after " << cycles << " cycles";
    if (!ok()) {
        os << " (last progress at cycle " << lastProgressCycle << ")";
        if (!components.empty()) {
            unsigned busy_count = 0;
            for (const ComponentDiag &d : components)
                busy_count += d.busy ? 1 : 0;
            os << "; " << busy_count << "/" << components.size()
               << " components busy";
        }
    }
    return os.str();
}

std::string
RunReport::snapshotText() const
{
    std::ostringstream os;
    for (const ComponentDiag &d : components) {
        os << "  " << d.path << ": " << (d.busy ? "busy" : "idle")
           << ", progress=" << d.progressCount << ", lastProgressAt="
           << d.lastProgressAt;
        if (!d.detail.empty())
            os << ", " << d.detail;
        os << "\n";
    }
    return os.str();
}

void
RunReport::throwIfFailed() const
{
    if (ok())
        return;
    const std::string msg = summary() + "\n" + snapshotText();
    switch (outcome) {
      case RunOutcome::Deadlock:
        throw DeadlockError(msg);
      case RunOutcome::Livelock:
        throw LivelockError(msg);
      case RunOutcome::CycleLimit:
        throw CycleLimitError(msg);
      case RunOutcome::Stopped:
        throw StoppedError(msg);
      case RunOutcome::Timeout:
        throw TimeoutError(msg);
      case RunOutcome::Completed:
        break;
    }
}

namespace
{

void
collectDiag(const Component &c, std::vector<ComponentDiag> &out)
{
    out.push_back(ComponentDiag{c.statsGroup().path(), c.busy(),
                                c.progressCount(), c.lastProgressAt(),
                                c.debugState()});
    for (const Component *child : c.children())
        collectDiag(*child, out);
}

} // namespace

std::vector<ComponentDiag>
Simulator::snapshot() const
{
    std::vector<ComponentDiag> diags;
    for (const Component *c : components)
        collectDiag(*c, diags);
    return diags;
}

std::uint64_t
Simulator::totalProgress() const
{
    std::uint64_t total = 0;
    for (const Component *c : components)
        total += c->subtreeProgress();
    return total;
}

namespace
{

void
accumulateProgress(const Component &c, std::uint64_t &progress, bool &busy)
{
    progress += c.progressCount();
    busy = busy || c.busy();
    for (const Component *child : c.children())
        accumulateProgress(*child, progress, busy);
}

} // namespace

Simulator::ProgressSnapshot
Simulator::progressSnapshot() const
{
    ProgressSnapshot snap;
    for (const Component *c : components)
        accumulateProgress(*c, snap.progress, snap.busy);
    return snap;
}

Simulator::SkipPlan
Simulator::clampedSkip(Cycle elapsed, Cycle next_check,
                       const RunLimits &limits) const
{
    Cycle horizon = Component::kNeverEvent;
    for (const Component *c : components)
        horizon = std::min(horizon, c->nextEventCycle());
    if (horizon <= 1)
        return {};

    // The next horizon-1 ticks are contractually pure waits. Clamp so no
    // observer boundary falls inside the skipped window: the watchdog
    // checkpoint and cycle budget are re-examined at loop top (elapsed may
    // land exactly on them), while a sampler or counter-track boundary
    // cycle must be reached by a real step() so its row carries the naive
    // cycle stamp.
    Cycle skip = horizon - 1;
    skip = std::min(skip, next_check - elapsed);
    skip = std::min(skip, limits.maxCycles - elapsed);
    if (_sampler != nullptr)
        skip = std::min(skip, _sampler->cyclesUntilNextSample(_cycle));
    if (_nextCounterAt != Component::kNeverEvent)
        skip = std::min(skip, _nextCounterAt - _cycle);
    // A skip that runs all the way to the horizon proves the very next
    // tick is the event itself: nothing changes during pure waits, so
    // re-deriving the horizon before that tick would burn a full
    // quiescence evaluation just to conclude "step now".
    return {skip, skip == horizon - 1};
}

void
Simulator::buildCounterTracks()
{
    // Enumerate every component subtree into flat counter tracks;
    // registration order is fixed before the first step, so the order is
    // deterministic (checkpoint restore depends on that).
    const std::function<void(Component *)> collect = [&](Component *c) {
        counterTracks.push_back(CounterTrack{
            c, _tracer->track(c->tracePath()), c->activityCounter()});
        for (Component *child : c->children())
            collect(child);
    };
    for (Component *c : components)
        collect(c);
}

void
Simulator::emitActivityCounters()
{
    // Lazily built: setTracer() clears the tracks, the first counter
    // boundary rebuilds them.
    if (counterTracks.empty())
        buildCounterTracks();
    for (CounterTrack &ct : counterTracks) {
        const std::uint64_t now = ct.component->activityCounter();
        _tracer->counter(ct.track, "activity",
                         static_cast<double>(now - ct.last), _cycle);
        ct.last = now;
    }
}

RunReport
Simulator::run(const std::function<bool()> &done, const RunLimits &limits,
               const RunHooks &hooks)
{
    gds_assert(limits.checkInterval > 0, "check interval must be positive");

    RunReport report;
    const Cycle start = _cycle;
    Cycle last_progress_cycle = 0; // elapsed cycles at last progress
    std::uint64_t last_progress_count = totalProgress();

    auto fail = [&](RunOutcome outcome) {
        report.outcome = outcome;
        report.cycles = _cycle - start;
        report.lastProgressCycle = last_progress_cycle;
        report.components = snapshot();
        warn("simulation %s", report.summary().c_str());
        DPRINTF(Watchdog, "diagnostic snapshot:\n%s",
                report.snapshotText().c_str());
        // Unconditional incident marker (DPRINTF routing into the tracer
        // only fires when the Watchdog category is also enabled).
        if (_tracer) {
            _tracer->instant(_tracer->track("watchdog"),
                             runOutcomeName(outcome), _cycle,
                             report.summary());
        }
        return report;
    };

    const bool fast_forward = limits.fastForward && fastForwardEligible();
    Cycle next_check = 0; // next elapsed cycle with a watchdog checkpoint
    bool event_due = false; // last skip ran to the horizon; step, don't ask

    // Checkpoint policy: periodic snapshots at elapsed-cycle boundaries
    // (reached exactly, like watchdog boundaries, because skips clamp to
    // them), a final snapshot on graceful stop or wall-clock timeout.
    const bool periodic_ckpt =
        static_cast<bool>(hooks.writeCheckpoint) &&
        hooks.checkpointInterval > 0;
    Cycle next_ckpt =
        periodic_ckpt ? hooks.checkpointInterval : Component::kNeverEvent;
    const bool wall_budgeted = hooks.wallBudgetSeconds > 0.0;
    const auto wall_start = std::chrono::steady_clock::now();

    while (!done()) {
        const Cycle elapsed = _cycle - start;
        if (elapsed >= limits.maxCycles)
            return fail(RunOutcome::CycleLimit);
        if (elapsed == next_check) {
            // One subtree traversal yields both the progress sum and the
            // busy verdict needed for the stall classification.
            const ProgressSnapshot snap = progressSnapshot();
            if (snap.progress != last_progress_count) {
                last_progress_count = snap.progress;
                last_progress_cycle = elapsed;
            } else if (elapsed - last_progress_cycle >= limits.stallCycles) {
                return fail(snap.busy ? RunOutcome::Livelock
                                      : RunOutcome::Deadlock);
            }
            next_check += limits.checkInterval;
            if (stopRequested()) {
                if (hooks.writeCheckpoint)
                    hooks.writeCheckpoint();
                report.outcome = RunOutcome::Stopped;
                report.cycles = _cycle - start;
                report.lastProgressCycle = last_progress_cycle;
                inform("simulation %s", report.summary().c_str());
                return report;
            }
            if (wall_budgeted &&
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                        .count() >= hooks.wallBudgetSeconds) {
                if (hooks.writeCheckpoint)
                    hooks.writeCheckpoint();
                return fail(RunOutcome::Timeout);
            }
        }
        if (elapsed == next_ckpt) {
            hooks.writeCheckpoint();
            next_ckpt += hooks.checkpointInterval;
        }
        if (fast_forward && !event_due) {
            const SkipPlan plan = clampedSkip(
                elapsed, std::min(next_check, next_ckpt), limits);
            if (plan.skip > 0) {
                for (Component *c : components)
                    c->skipCycles(plan.skip);
                _cycle += plan.skip;
                event_due = plan.eventNext;
                report.skippedCycles += plan.skip;
                ++report.skipWindows;
                continue;
            }
        }
        event_due = false;
        ++report.steppedCycles;
        step();
    }

    report.outcome = RunOutcome::Completed;
    report.cycles = _cycle - start;
    report.lastProgressCycle = _cycle - start;
    return report;
}

void
Simulator::saveState(Serializer &s) const
{
    s.writeU64(_cycle);
    s.writeBool(!counterTracks.empty());
    s.writeU64(counterTracks.size());
    for (const CounterTrack &ct : counterTracks)
        s.writeU64(ct.last);
}

void
Simulator::restoreState(Deserializer &d)
{
    _cycle = d.readU64();
    // Re-derive the counter boundary for the restored clock; setTracer()
    // computed it against the pre-restore cycle.
    if (_tracer != nullptr && _counterInterval != 0) {
        _nextCounterAt = _cycle % _counterInterval == 0
                             ? _cycle
                             : _cycle + _counterInterval -
                                   _cycle % _counterInterval;
    } else {
        _nextCounterAt = Component::kNeverEvent;
    }
    const bool tracks_built = d.readBool();
    const std::uint64_t n = d.readU64();
    counterTracks.clear();
    if (!tracks_built) {
        gds_require(n == 0, CheckpointError,
                    "checkpoint carries %llu counter-track baselines for "
                    "unbuilt tracks", static_cast<unsigned long long>(n));
        return;
    }
    gds_require(_tracer != nullptr && _counterInterval != 0,
                CheckpointError,
                "checkpoint carries counter tracks but this run has no "
                "tracer with a counter interval attached");
    buildCounterTracks();
    gds_require(n == counterTracks.size(), CheckpointError,
                "checkpoint carries %llu counter-track baselines, this "
                "component tree has %zu",
                static_cast<unsigned long long>(n), counterTracks.size());
    for (CounterTrack &ct : counterTracks)
        ct.last = d.readU64();
}

} // namespace gds::sim
