/**
 * @file
 * Base class for every clocked hardware model in the repository.
 *
 * A Component is a named node in a hierarchy, owns a stats group mirroring
 * that hierarchy, and exposes a tick() advanced once per simulated cycle by
 * the Simulator. Components are ticked in the order they were registered;
 * models register consumers before producers (reverse dataflow order) so a
 * value written into a queue in cycle N is consumed no earlier than cycle
 * N+1, giving well-defined single-cycle stage latencies without a two-phase
 * update protocol.
 *
 * For watchdog supervision every component also carries a monotone progress
 * counter: models call progressed() whenever observable forward progress
 * happens (a request completes, a record commits, a vertex applies). The
 * Simulator samples the counters to distinguish a healthy long run from a
 * deadlocked or livelocked one, and walks the parent/child links to emit a
 * component-level diagnostic snapshot on failure.
 */

#pragma once

#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace gds::sim
{

class Simulator;

/** A named, clocked model element. */
class Component
{
  public:
    /**
     * @param component_name leaf name of this component
     * @param parent enclosing component, or nullptr for a root
     */
    Component(std::string component_name, Component *parent);
    virtual ~Component();

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Advance one clock cycle. */
    virtual void tick() {}

    /** True while the component still has work in flight. */
    virtual bool busy() const { return false; }

    /**
     * One-line free-form state description for failure diagnostics
     * (queue occupancies, cursors, outstanding requests).
     */
    virtual std::string debugState() const { return {}; }

    /**
     * Monotone count of this component's "work units", sampled by the
     * tracer's per-component counter tracks. Defaults to the progress
     * counter; components with a more natural unit (bytes moved, records
     * routed, lanes occupied) override it.
     */
    virtual std::uint64_t activityCounter() const { return _progressCount; }

    const std::string &name() const { return _name; }

    /**
     * Hierarchical path used for trace attribution (same as the stats
     * path). Cached: returned pointer is stable and cheap enough for the
     * per-tick DPRINTF attribution scope.
     */
    const char *tracePath() const;

    Component *parent() const { return _parent; }
    const std::vector<Component *> &children() const { return _children; }

    /**
     * Record observable forward progress. @p at is the component's local
     * cycle when known (0 when the caller has no clock); only its maximum
     * is retained, for diagnostics.
     */
    void
    progressed(Cycle at = 0)
    {
        ++_progressCount;
        if (at > _lastProgressAt)
            _lastProgressAt = at;
    }

    /** Monotone count of progressed() calls on this component alone. */
    std::uint64_t progressCount() const { return _progressCount; }

    /** Largest cycle stamp passed to progressed() (component-local clock). */
    Cycle lastProgressAt() const { return _lastProgressAt; }

    /** Sum of progress counters over this component and all descendants. */
    std::uint64_t subtreeProgress() const;

    /** True if this component or any descendant reports busy(). */
    bool subtreeBusy() const;

    /** Stats group for this component (child of the parent's group). */
    stats::Group &statsGroup() { return _stats; }
    const stats::Group &statsGroup() const { return _stats; }

  private:
    std::string _name;
    Component *_parent;
    std::vector<Component *> _children;
    std::uint64_t _progressCount = 0;
    Cycle _lastProgressAt = 0;
    stats::Group _stats;
    mutable std::string _tracePath;
};

} // namespace gds::sim
