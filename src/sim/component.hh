/**
 * @file
 * Base class for every clocked hardware model in the repository.
 *
 * A Component is a named node in a hierarchy, owns a stats group mirroring
 * that hierarchy, and exposes a tick() advanced once per simulated cycle by
 * the Simulator. Components are ticked in the order they were registered;
 * models register consumers before producers (reverse dataflow order) so a
 * value written into a queue in cycle N is consumed no earlier than cycle
 * N+1, giving well-defined single-cycle stage latencies without a two-phase
 * update protocol.
 *
 * For watchdog supervision every component also carries a monotone progress
 * counter: models call progressed() whenever observable forward progress
 * happens (a request completes, a record commits, a vertex applies). The
 * Simulator samples the counters to distinguish a healthy long run from a
 * deadlocked or livelocked one, and walks the parent/child links to emit a
 * component-level diagnostic snapshot on failure.
 */

#pragma once

#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace gds::sim
{

class Simulator;
class Serializer;
class Deserializer;

/** A named, clocked model element. */
class Component
{
  public:
    /**
     * Sentinel returned by nextEventCycle() when the component has no
     * self-scheduled future event: left unticked, it would never change
     * state again.
     */
    static constexpr Cycle kNeverEvent = ~Cycle{0};

    /**
     * @param component_name leaf name of this component
     * @param parent enclosing component, or nullptr for a root
     */
    Component(std::string component_name, Component *parent);
    virtual ~Component();

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Advance one clock cycle. */
    virtual void tick() {}

    /** True while the component still has work in flight. */
    virtual bool busy() const { return false; }

    /**
     * Earliest future tick at which this component could make observable
     * progress, as a distance in cycles from "now" (the next tick).
     *
     * Returning d means: the next d-1 tick() calls are guaranteed to be
     * pure waits — no architectural state change and no side effect other
     * than the per-cycle bookkeeping that skipCycles() replays — while the
     * d-th tick may act. 1 means "must tick next cycle"; kNeverEvent means
     * "no self-scheduled event" (only external input can wake it).
     *
     * Underestimates are safe (the component is woken early, ticks, and a
     * new horizon is computed); overestimates are correctness bugs because
     * the Simulator replaces the skipped ticks with one skipCycles() call.
     * The default is maximally conservative for any busy component.
     */
    virtual Cycle
    nextEventCycle() const
    {
        return busy() ? 1 : kNeverEvent;
    }

    /**
     * Replay the effects of @p cycles consecutive pure-wait ticks in one
     * call: advance internal clocks and apply exactly the per-cycle stat
     * updates (idle counters, occupancy integrals, scheduled refreshes)
     * that naive ticking would have produced. Only invoked for windows the
     * component itself declared pure via nextEventCycle(). Components that
     * return true from supportsFastForward() must override this if any of
     * their per-cycle bookkeeping is observable in stats or reports.
     */
    virtual void skipCycles(Cycle cycles) { (void)cycles; }

    /**
     * Opt-in gate for the fast-forward engine. The Simulator bulk-advances
     * time only when every registered component opts in, because the
     * default Component contract ("tick() is called every cycle") allows
     * tick-driven models that are never busy() yet still observable.
     */
    virtual bool supportsFastForward() const { return false; }

    /**
     * One-line free-form state description for failure diagnostics
     * (queue occupancies, cursors, outstanding requests).
     */
    virtual std::string debugState() const { return {}; }

    /**
     * Monotone count of this component's "work units", sampled by the
     * tracer's per-component counter tracks. Defaults to the progress
     * counter; components with a more natural unit (bytes moved, records
     * routed, lanes occupied) override it.
     */
    virtual std::uint64_t activityCounter() const { return _progressCount; }

    const std::string &name() const { return _name; }

    /**
     * Hierarchical path used for trace attribution (same as the stats
     * path). Cached: returned pointer is stable and cheap enough for the
     * per-tick DPRINTF attribution scope.
     */
    const char *tracePath() const;

    Component *parent() const { return _parent; }
    const std::vector<Component *> &children() const { return _children; }

    /**
     * Record observable forward progress. @p at is the component's local
     * cycle when known (0 when the caller has no clock); only its maximum
     * is retained, for diagnostics.
     */
    void
    progressed(Cycle at = 0)
    {
        ++_progressCount;
        if (at > _lastProgressAt)
            _lastProgressAt = at;
    }

    /** Monotone count of progressed() calls on this component alone. */
    std::uint64_t progressCount() const { return _progressCount; }

    /** Largest cycle stamp passed to progressed() (component-local clock). */
    Cycle lastProgressAt() const { return _lastProgressAt; }

    /** Sum of progress counters over this component and all descendants. */
    std::uint64_t subtreeProgress() const;

    /** True if this component or any descendant reports busy(). */
    bool subtreeBusy() const;

    /**
     * Serialize every run-mutable datum of this component into @p s so a
     * later restoreState() resumes bit-exactly: queue contents, cursors,
     * local clocks, RNG streams, plus the base-class progress counters
     * and directly-registered stats (the base implementation covers the
     * latter two — overrides must call it first). Configuration-derived
     * state (geometry, capacities, wiring) is rebuilt by the constructor
     * and must NOT be serialized. Child components are saved explicitly
     * by their owner, in a fixed order, after its own state.
     */
    virtual void saveState(Serializer &s) const;

    /**
     * Mirror of saveState(): consume the same fields in the same order.
     * @throws CheckpointError (via Deserializer) on any layout mismatch.
     */
    virtual void restoreState(Deserializer &d);

    /** Stats group for this component (child of the parent's group). */
    stats::Group &statsGroup() { return _stats; }
    const stats::Group &statsGroup() const { return _stats; }

  private:
    std::string _name;
    Component *_parent;
    std::vector<Component *> _children;
    std::uint64_t _progressCount = 0;
    Cycle _lastProgressAt = 0;
    stats::Group _stats;
    mutable std::string _tracePath;
};

} // namespace gds::sim
