/**
 * @file
 * Base class for every clocked hardware model in the repository.
 *
 * A Component is a named node in a hierarchy, owns a stats group mirroring
 * that hierarchy, and exposes a tick() advanced once per simulated cycle by
 * the Simulator. Components are ticked in the order they were registered;
 * models register consumers before producers (reverse dataflow order) so a
 * value written into a queue in cycle N is consumed no earlier than cycle
 * N+1, giving well-defined single-cycle stage latencies without a two-phase
 * update protocol.
 */

#ifndef GDS_SIM_COMPONENT_HH
#define GDS_SIM_COMPONENT_HH

#include <string>

#include "common/types.hh"
#include "stats/stats.hh"

namespace gds::sim
{

class Simulator;

/** A named, clocked model element. */
class Component
{
  public:
    /**
     * @param component_name leaf name of this component
     * @param parent enclosing component, or nullptr for a root
     */
    Component(std::string component_name, Component *parent);
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Advance one clock cycle. */
    virtual void tick() {}

    /** True while the component still has work in flight. */
    virtual bool busy() const { return false; }

    const std::string &name() const { return _name; }

    /** Stats group for this component (child of the parent's group). */
    stats::Group &statsGroup() { return _stats; }
    const stats::Group &statsGroup() const { return _stats; }

  private:
    std::string _name;
    stats::Group _stats;
};

} // namespace gds::sim

#endif // GDS_SIM_COMPONENT_HH
