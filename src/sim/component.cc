#include "sim/component.hh"

#include <algorithm>

#include "sim/checkpoint.hh"

namespace gds::sim
{

Component::Component(std::string component_name, Component *parent)
    : _name(std::move(component_name)),
      _parent(parent),
      _stats(parent ? &parent->statsGroup() : nullptr, _name)
{
    if (_parent)
        _parent->_children.push_back(this);
}

Component::~Component()
{
    if (_parent) {
        auto &siblings = _parent->_children;
        siblings.erase(std::remove(siblings.begin(), siblings.end(), this),
                       siblings.end());
    }
}

const char *
Component::tracePath() const
{
    if (_tracePath.empty())
        _tracePath = _stats.path();
    return _tracePath.c_str();
}

std::uint64_t
Component::subtreeProgress() const
{
    std::uint64_t total = _progressCount;
    for (const Component *child : _children)
        total += child->subtreeProgress();
    return total;
}

void
Component::saveState(Serializer &s) const
{
    s.writeU64(_progressCount);
    s.writeU64(_lastProgressAt);
    saveStats(s, _stats);
}

void
Component::restoreState(Deserializer &d)
{
    _progressCount = d.readU64();
    _lastProgressAt = d.readU64();
    restoreStats(d, _stats);
}

bool
Component::subtreeBusy() const
{
    if (busy())
        return true;
    for (const Component *child : _children) {
        if (child->subtreeBusy())
            return true;
    }
    return false;
}

} // namespace gds::sim
