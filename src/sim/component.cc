#include "sim/component.hh"

namespace gds::sim
{

Component::Component(std::string component_name, Component *parent)
    : _name(std::move(component_name)),
      _stats(parent ? &parent->statsGroup() : nullptr, _name)
{}

} // namespace gds::sim
