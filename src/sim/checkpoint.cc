#include "sim/checkpoint.hh"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <system_error>

#include "common/fsio.hh"
#include "common/parse.hh"

namespace gds::sim
{

namespace
{

constexpr char kMagic[8] = {'G', 'D', 'S', 'C', 'K', 'P', 'T', '1'};
constexpr std::uint32_t kFormatVersion = 1;

/** Stat kinds in the serialized stream. */
enum StatKind : std::uint8_t
{
    KindScalar = 0,
    KindVector = 1,
    KindDistribution = 2,
};

std::uint64_t
fnv1a64(const std::uint8_t *data, std::size_t n)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ULL;
    }
    return h;
}

/**
 * Crash-injection hook for the torn-write tests: when
 * GDS_CKPT_KILL_MID_WRITE=<n> is set, the n-th checkpoint write since the
 * variable was set truncates the freshly published file to half its size — the
 * state a non-atomic writer would leave after power loss — and raises
 * SIGKILL, proving the loader detects the tear and falls back to .prev.
 */
bool
tearThisWrite()
{
    // Re-read the environment on every write (not latched in a static):
    // the crash tests fork and arm the hook in the child only, after the
    // parent process has already written checkpoints of its own. An
    // unparsable value warns and disables the hook (default 0).
    const std::uint64_t target =
        common::parseEnvU64("GDS_CKPT_KILL_MID_WRITE", 0);
    if (target == 0)
        return false;
    static std::atomic<std::uint64_t> writes{0};
    return writes.fetch_add(1) + 1 == target;
}

} // namespace

void
saveStats(Serializer &s, const stats::Group &group)
{
    const auto &list = group.stats();
    s.writeU32(static_cast<std::uint32_t>(list.size()));
    for (const stats::Stat *stat : list) {
        s.writeString(stat->name());
        if (const auto *sc = dynamic_cast<const stats::Scalar *>(stat)) {
            s.writeU8(KindScalar);
            s.writeDouble(sc->value());
        } else if (const auto *vec =
                       dynamic_cast<const stats::Vector *>(stat)) {
            s.writeU8(KindVector);
            s.writeU64(vec->size());
            for (std::size_t i = 0; i < vec->size(); ++i)
                s.writeDouble(vec->at(i));
        } else if (const auto *dist =
                       dynamic_cast<const stats::Distribution *>(stat)) {
            s.writeU8(KindDistribution);
            s.writeU64(stats::Distribution::numBuckets());
            for (std::size_t b = 0;
                 b < stats::Distribution::numBuckets(); ++b)
                s.writeU64(dist->bucketCount(b));
            s.writeU64(dist->count());
            s.writeU64(dist->sampleSum());
            s.writeU64(dist->maxSampled());
        } else {
            gds_assert(false, "unserializable stat kind for '%s'",
                       stat->name().c_str());
        }
    }
}

void
restoreStats(Deserializer &d, stats::Group &group)
{
    const auto &list = group.stats();
    const std::uint32_t n = d.readU32();
    gds_require(n == list.size(), CheckpointError,
                "stats group '%s' has %zu stats, checkpoint carries %u",
                group.path().c_str(), list.size(), n);
    for (stats::Stat *stat : list) {
        const std::string name = d.readString();
        gds_require(name == stat->name(), CheckpointError,
                    "stat order mismatch in group '%s': expected '%s', "
                    "checkpoint has '%s'", group.path().c_str(),
                    stat->name().c_str(), name.c_str());
        const std::uint8_t kind = d.readU8();
        if (auto *sc = dynamic_cast<stats::Scalar *>(stat)) {
            gds_require(kind == KindScalar, CheckpointError,
                        "stat '%s' kind mismatch", name.c_str());
            *sc = d.readDouble();
        } else if (auto *vec = dynamic_cast<stats::Vector *>(stat)) {
            gds_require(kind == KindVector, CheckpointError,
                        "stat '%s' kind mismatch", name.c_str());
            const std::uint64_t size = d.readU64();
            gds_require(size == vec->size(), CheckpointError,
                        "vector stat '%s' has %zu lanes, checkpoint "
                        "carries %llu", name.c_str(), vec->size(),
                        static_cast<unsigned long long>(size));
            for (std::size_t i = 0; i < vec->size(); ++i)
                (*vec)[i] = d.readDouble();
        } else if (auto *dist = dynamic_cast<stats::Distribution *>(stat)) {
            gds_require(kind == KindDistribution, CheckpointError,
                        "stat '%s' kind mismatch", name.c_str());
            const std::uint64_t buckets = d.readU64();
            std::vector<std::uint64_t> counts;
            counts.reserve(static_cast<std::size_t>(buckets));
            for (std::uint64_t b = 0; b < buckets; ++b)
                counts.push_back(d.readU64());
            const std::uint64_t samples = d.readU64();
            const std::uint64_t sum = d.readU64();
            const std::uint64_t max_sample = d.readU64();
            dist->restoreRaw(counts, samples, sum, max_sample);
        } else {
            gds_assert(false, "unserializable stat kind for '%s'",
                       name.c_str());
        }
    }
}

CheckpointStore::CheckpointStore(std::string directory,
                                 std::string base_name)
    : dir(std::move(directory))
{
    gds_require(!dir.empty(), ConfigError,
                "checkpoint directory must not be empty");
    gds_require(!base_name.empty(), ConfigError,
                "checkpoint basename must not be empty");
    current = dir + "/" + base_name + ".ckpt";
    previous = current + ".prev";
}

void
CheckpointStore::write(const CheckpointMeta &meta,
                       const Serializer &payload)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    gds_require(!ec, CheckpointError,
                "cannot create checkpoint directory '%s': %s",
                dir.c_str(), ec.message().c_str());

    // Assemble the whole file image in memory; checkpoints are a few MB
    // at the largest configurations and the checksum needs every byte.
    Serializer file;
    for (const char c : kMagic)
        file.writeU8(static_cast<std::uint8_t>(c));
    file.writeU32(kFormatVersion);
    file.writeU32(meta.stateVersion);
    file.writeU64(meta.cycle);
    file.writeU32(static_cast<std::uint32_t>(meta.identity.size()));
    for (const char c : meta.identity)
        file.writeU8(static_cast<std::uint8_t>(c));
    file.writeU64(payload.bytes().size());
    const std::vector<std::uint8_t> &image = file.bytes();
    // Checksum covers the header plus the payload that follows it.
    std::uint64_t check = fnv1a64(image.data(), image.size());
    check ^= fnv1a64(payload.bytes().data(), payload.bytes().size()) *
             0x100000001b3ULL;

    const std::string tmp = current + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        gds_require(static_cast<bool>(out), CheckpointError,
                    "cannot open checkpoint temp file '%s'", tmp.c_str());
        out.write(reinterpret_cast<const char *>(image.data()),
                  static_cast<std::streamsize>(image.size()));
        out.write(
            reinterpret_cast<const char *>(payload.bytes().data()),
            static_cast<std::streamsize>(payload.bytes().size()));
        out.write(reinterpret_cast<const char *>(&check), sizeof check);
        out.flush();
        gds_require(static_cast<bool>(out), CheckpointError,
                    "short write to checkpoint temp file '%s'",
                    tmp.c_str());
    }

    // Rotate the last good checkpoint out of the way, then publish.
    // Between the two renames there is no current file; the loader's
    // .prev fallback covers a crash in that window.
    if (std::filesystem::exists(current, ec)) {
        std::filesystem::rename(current, previous, ec);
        gds_require(!ec, CheckpointError,
                    "cannot rotate checkpoint '%s' to '%s': %s",
                    current.c_str(), previous.c_str(),
                    ec.message().c_str());
    }
    gds_require(durableRename(tmp, current), CheckpointError,
                "cannot publish checkpoint '%s'", current.c_str());

    if (tearThisWrite()) {
        const std::uintmax_t size =
            std::filesystem::file_size(current, ec);
        if (!ec)
            std::filesystem::resize_file(current, size / 2, ec);
        fsyncFile(current);
        std::raise(SIGKILL);
    }
}

CheckpointStore::Loaded
CheckpointStore::readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    gds_require(static_cast<bool>(in), CheckpointError,
                "cannot open checkpoint '%s'", path.c_str());
    std::vector<std::uint8_t> image(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    gds_require(image.size() >= sizeof(kMagic) + 2 * sizeof(std::uint32_t) +
                                    2 * sizeof(std::uint64_t) +
                                    sizeof(std::uint32_t) +
                                    sizeof(std::uint64_t),
                CheckpointError, "checkpoint '%s' is truncated (%zu bytes)",
                path.c_str(), image.size());

    // Verify the trailing checksum before trusting any length field.
    const std::size_t body = image.size() - sizeof(std::uint64_t);
    std::uint64_t stored = 0;
    std::memcpy(&stored, image.data() + body, sizeof stored);
    Deserializer probe(image.data(), body);
    std::uint8_t magic[sizeof(kMagic)];
    for (auto &b : magic)
        b = probe.readU8();
    gds_require(std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                CheckpointError, "'%s' is not a checkpoint file",
                path.c_str());
    const std::uint32_t format = probe.readU32();
    gds_require(format == kFormatVersion, CheckpointError,
                "checkpoint '%s' has format version %u, this build "
                "reads %u", path.c_str(), format, kFormatVersion);

    Loaded loaded;
    loaded.meta.stateVersion = probe.readU32();
    loaded.meta.cycle = probe.readU64();
    const std::uint32_t identity_len = probe.readU32();
    for (std::uint32_t i = 0; i < identity_len; ++i)
        loaded.meta.identity.push_back(
            static_cast<char>(probe.readU8()));
    const std::uint64_t payload_len = probe.readU64();
    gds_require(payload_len == probe.remaining(), CheckpointError,
                "checkpoint '%s' is torn: payload claims %llu bytes, "
                "file carries %zu", path.c_str(),
                static_cast<unsigned long long>(payload_len),
                probe.remaining());

    const std::size_t header = body - static_cast<std::size_t>(payload_len);
    std::uint64_t check = fnv1a64(image.data(), header);
    check ^= fnv1a64(image.data() + header,
                     static_cast<std::size_t>(payload_len)) *
             0x100000001b3ULL;
    gds_require(check == stored, CheckpointError,
                "checkpoint '%s' fails its checksum (corrupt or torn)",
                path.c_str());

    loaded.payload.assign(image.begin() +
                              static_cast<std::ptrdiff_t>(header),
                          image.begin() + static_cast<std::ptrdiff_t>(body));
    return loaded;
}

std::optional<CheckpointStore::Loaded>
CheckpointStore::loadLatest(std::string *reason) const
{
    // A missing file is the routine cold-start case and stays out of
    // `why`; only files that exist but fail validation are worth a
    // caller's warning.
    std::string why;
    for (const std::string &path : {current, previous}) {
        std::error_code ec;
        if (!std::filesystem::exists(path, ec))
            continue;
        try {
            Loaded loaded = readFile(path);
            loaded.usedFallback = path == previous;
            if (loaded.usedFallback) {
                warn("checkpoint '%s' is unusable (%s); falling back "
                     "to '%s'", current.c_str(), why.c_str(),
                     previous.c_str());
                if (reason != nullptr)
                    *reason = why;
            }
            return loaded;
        } catch (const CheckpointError &e) {
            if (!why.empty())
                why += "; ";
            why += e.what();
        }
    }
    if (reason != nullptr)
        *reason = why;
    return std::nullopt;
}

void
CheckpointStore::removeAll() const
{
    std::error_code ec;
    std::filesystem::remove(current, ec);
    std::filesystem::remove(previous, ec);
    std::filesystem::remove(current + ".tmp", ec);
}

} // namespace gds::sim
