/**
 * @file
 * Cycle-stepped simulation driver.
 *
 * The Simulator owns the global cycle counter and a flat, ordered list of
 * components to tick. Accelerator top-levels register their pieces in
 * reverse dataflow order (see Component) and then call run() with a
 * completion predicate. The driver supervises the run: it samples the
 * component progress counters and, instead of asserting, returns a
 * RunReport that distinguishes normal completion from deadlock (nothing
 * busy, predicate unsatisfied), livelock (busy but no progress for the
 * stall window) and cycle-budget exhaustion, together with a
 * component-level diagnostic snapshot.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/debug.hh"
#include "common/error.hh"
#include "common/types.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "sim/component.hh"

namespace gds::sim
{

/** How a supervised run ended. */
enum class RunOutcome
{
    Completed,  ///< the completion predicate was satisfied
    Deadlock,   ///< no component busy, predicate unsatisfied, no progress
    Livelock,   ///< components busy but no progress for the stall window
    CycleLimit, ///< the cycle budget was exhausted
    Stopped,    ///< a graceful-stop request interrupted the run
    Timeout,    ///< the wall-clock budget was exhausted
};

/**
 * Async-signal-safe graceful-stop request flag, shared by every
 * Simulator in the process. A signal handler calls requestStop(); the
 * run loop notices at the next watchdog boundary, writes a final
 * checkpoint when one is configured, and returns RunOutcome::Stopped
 * instead of dying with torn output files.
 */
void requestStop();
bool stopRequested();
void clearStopRequest();

/** Stable name of an outcome ("completed", "deadlock", ...). */
const char *runOutcomeName(RunOutcome outcome);

/** ErrorCode equivalent of a failed outcome. */
ErrorCode runOutcomeError(RunOutcome outcome);

/** Per-component diagnostic snapshot entry. */
struct ComponentDiag
{
    std::string path;          ///< hierarchical stats path
    bool busy = false;
    std::uint64_t progressCount = 0;
    Cycle lastProgressAt = 0;  ///< component-local clock
    std::string detail;        ///< Component::debugState()
};

/** Outcome + diagnostics of one supervised run. */
struct RunReport
{
    RunOutcome outcome = RunOutcome::Completed;
    Cycle cycles = 0;             ///< cycles elapsed during the run
    Cycle lastProgressCycle = 0;  ///< elapsed cycle of the last progress
    std::vector<ComponentDiag> components; ///< populated on failure

    // Fast-forward effectiveness telemetry (wall-clock only; simulated
    // behaviour is identical whether or not cycles were skipped).
    Cycle steppedCycles = 0; ///< cycles executed by real step() calls
    Cycle skippedCycles = 0; ///< cycles bulk-advanced through quiescence
    std::uint64_t skipWindows = 0; ///< number of bulk advances

    bool ok() const { return outcome == RunOutcome::Completed; }

    /** One-line human summary ("deadlock after 1234 cycles; ..."). */
    std::string summary() const;

    /** Multi-line component snapshot for logs. Empty when ok. */
    std::string snapshotText() const;

    /** Throw the matching SimError subclass unless ok. */
    void throwIfFailed() const;
};

/** Supervision limits of one run. */
struct RunLimits
{
    /** Hard cycle budget. */
    Cycle maxCycles = 100'000'000'000ULL;
    /** Declare deadlock/livelock after this many cycles without progress. */
    Cycle stallCycles = 10'000'000;
    /** Progress-counter sampling period (power of two, amortizes cost). */
    Cycle checkInterval = 1024;
    /**
     * Allow the event-horizon fast-forward engine. Engages only when
     * every registered component opts in via supportsFastForward();
     * otherwise the run is naively cycle-stepped regardless. Cycle-exact
     * either way: skipped windows are provably pure waits and skips are
     * clamped to every sampler/counter-track/watchdog/budget boundary,
     * so all observers see exactly the naive cycles (see DESIGN.md).
     */
    bool fastForward = true;
};

/**
 * Checkpoint policy of one supervised run. Periodic checkpoints fire at
 * elapsed-cycle boundaries (skips are clamped so the boundary is always
 * reached at loop top, between cycles, where component state is
 * closed-form); the final checkpoint fires on a graceful stop or a
 * wall-clock timeout, so no interruption loses more than one interval.
 */
struct RunHooks
{
    /** Elapsed cycles between periodic checkpoints; 0 = only on stop. */
    Cycle checkpointInterval = 0;
    /** Snapshot callback; owns serialization and the atomic write. */
    std::function<void()> writeCheckpoint;
    /** Wall-clock budget in seconds; 0 = unlimited. Checked at watchdog
     *  boundaries; an exhausted budget returns RunOutcome::Timeout. */
    double wallBudgetSeconds = 0.0;
};

class Simulator
{
  public:
    Simulator() = default;

    /**
     * Register a component; ticked in registration order every cycle.
     * Components partition into a skippable set (supportsFastForward())
     * and an always-tick set; one member of the latter pins the whole
     * run to naive stepping, because skipping its ticks could change
     * behaviour the fast-forward contract cannot see.
     */
    void
    add(Component *c)
    {
        gds_assert(c != nullptr, "null component");
        components.push_back(c);
        if (!c->supportsFastForward())
            ++_alwaysTick;
    }

    /** True when every registered component opted into fast-forwarding. */
    bool
    fastForwardEligible() const
    {
        return _alwaysTick == 0 && !components.empty();
    }

    /** Current simulated cycle. */
    Cycle cycle() const { return _cycle; }

    /**
     * Attach an interval sampler, driven once per step(). Not owned;
     * nullptr detaches. With no interval configured the per-step cost is
     * one predictable branch.
     */
    void setSampler(obs::Sampler *sampler) { _sampler = sampler; }
    obs::Sampler *sampler() const { return _sampler; }

    /**
     * Attach a tracer. Every @p counter_interval cycles the driver emits
     * one counter sample per registered component (and descendant) onto
     * that component's track, plotting per-interval activity deltas;
     * 0 keeps counter tracks off (the tracer still receives watchdog
     * instants from run()). Not owned; nullptr detaches.
     */
    void
    setTracer(obs::Tracer *tracer, Cycle counter_interval = 0)
    {
        _tracer = tracer;
        _counterInterval = counter_interval;
        counterTracks.clear();
        if (_tracer != nullptr && _counterInterval != 0) {
            _nextCounterAt = _cycle % _counterInterval == 0
                                 ? _cycle
                                 : _cycle + _counterInterval -
                                       _cycle % _counterInterval;
        } else {
            _nextCounterAt = Component::kNeverEvent;
        }
    }
    obs::Tracer *tracer() const { return _tracer; }

    /**
     * Tick every registered component exactly once. The telemetry-off
     * hot path does no per-component scope work (one cached any-flag
     * branch) and no modulo arithmetic (counter emission compares
     * against a precomputed boundary cycle).
     */
    void
    step()
    {
        debug::setTraceCycle(_cycle);
        if (debug::anyEnabled()) {
            for (Component *c : components) {
                const debug::ScopedTraceComponent scope(c->tracePath());
                c->tick();
            }
        } else {
            for (Component *c : components)
                c->tick();
        }
        if (_sampler)
            _sampler->tick(_cycle);
        if (_cycle == _nextCounterAt) {
            emitActivityCounters();
            _nextCounterAt += _counterInterval;
        }
        ++_cycle;
    }

    /**
     * Run until done() returns true, under watchdog supervision.
     *
     * @param done completion predicate, evaluated after every cycle
     * @param limits cycle budget and stall window
     * @return outcome + diagnostics; never asserts on runaway simulations
     */
    RunReport run(const std::function<bool()> &done,
                  const RunLimits &limits = {},
                  const RunHooks &hooks = {});

    /**
     * Serialize driver-side run state: the cycle counter and the counter-
     * track delta baselines (whose first post-resume emission would
     * otherwise report a bogus delta). Components serialize themselves;
     * call this after them so the stream order is fixed.
     */
    void saveState(Serializer &s) const;

    /**
     * Mirror of saveState(). Call only after add()/setSampler()/
     * setTracer() have re-established the wiring the save-side run had:
     * the counter tracks are rebuilt against the restored tracer and the
     * counter boundary is re-derived from the restored cycle.
     */
    void restoreState(Deserializer &d);

    /** True if any registered component reports in-flight work. */
    bool
    anyBusy() const
    {
        for (const Component *c : components) {
            if (c->subtreeBusy())
                return true;
        }
        return false;
    }

    /** Current diagnostic snapshot of every registered component tree. */
    std::vector<ComponentDiag> snapshot() const;

  private:
    /** One counter track per component: delta baseline + cached id. */
    struct CounterTrack
    {
        Component *component;
        obs::TrackId track;
        std::uint64_t last;
    };

    /** Progress sum + busy verdict from one traversal (watchdog). */
    struct ProgressSnapshot
    {
        std::uint64_t progress = 0;
        bool busy = false;
    };

    /** Outcome of one fast-forward attempt. */
    struct SkipPlan
    {
        Cycle skip = 0;       ///< pure-wait cycles safe to bulk-advance
        bool eventNext = false; ///< skip reaches the horizon: next tick IS
                                ///< the event, no need to re-derive it
    };

    std::uint64_t totalProgress() const;
    ProgressSnapshot progressSnapshot() const;
    SkipPlan clampedSkip(Cycle elapsed, Cycle next_check,
                         const RunLimits &limits) const;
    void buildCounterTracks();
    void emitActivityCounters();

    std::vector<Component *> components;
    std::vector<CounterTrack> counterTracks;
    obs::Sampler *_sampler = nullptr;
    obs::Tracer *_tracer = nullptr;
    Cycle _counterInterval = 0;
    Cycle _nextCounterAt = Component::kNeverEvent;
    Cycle _cycle = 0;
    std::size_t _alwaysTick = 0; ///< components outside the skippable set
};

} // namespace gds::sim
