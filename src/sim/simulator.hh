/**
 * @file
 * Cycle-stepped simulation driver.
 *
 * The Simulator owns the global cycle counter and a flat, ordered list of
 * components to tick. Accelerator top-levels register their pieces in
 * reverse dataflow order (see Component) and then call run() with a
 * completion predicate. The driver supervises the run: it samples the
 * component progress counters and, instead of asserting, returns a
 * RunReport that distinguishes normal completion from deadlock (nothing
 * busy, predicate unsatisfied), livelock (busy but no progress for the
 * stall window) and cycle-budget exhaustion, together with a
 * component-level diagnostic snapshot.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/debug.hh"
#include "common/error.hh"
#include "common/types.hh"
#include "obs/sampler.hh"
#include "obs/trace.hh"
#include "sim/component.hh"

namespace gds::sim
{

/** How a supervised run ended. */
enum class RunOutcome
{
    Completed,  ///< the completion predicate was satisfied
    Deadlock,   ///< no component busy, predicate unsatisfied, no progress
    Livelock,   ///< components busy but no progress for the stall window
    CycleLimit, ///< the cycle budget was exhausted
};

/** Stable name of an outcome ("completed", "deadlock", ...). */
const char *runOutcomeName(RunOutcome outcome);

/** ErrorCode equivalent of a failed outcome. */
ErrorCode runOutcomeError(RunOutcome outcome);

/** Per-component diagnostic snapshot entry. */
struct ComponentDiag
{
    std::string path;          ///< hierarchical stats path
    bool busy = false;
    std::uint64_t progressCount = 0;
    Cycle lastProgressAt = 0;  ///< component-local clock
    std::string detail;        ///< Component::debugState()
};

/** Outcome + diagnostics of one supervised run. */
struct RunReport
{
    RunOutcome outcome = RunOutcome::Completed;
    Cycle cycles = 0;             ///< cycles elapsed during the run
    Cycle lastProgressCycle = 0;  ///< elapsed cycle of the last progress
    std::vector<ComponentDiag> components; ///< populated on failure

    bool ok() const { return outcome == RunOutcome::Completed; }

    /** One-line human summary ("deadlock after 1234 cycles; ..."). */
    std::string summary() const;

    /** Multi-line component snapshot for logs. Empty when ok. */
    std::string snapshotText() const;

    /** Throw the matching SimError subclass unless ok. */
    void throwIfFailed() const;
};

/** Supervision limits of one run. */
struct RunLimits
{
    /** Hard cycle budget. */
    Cycle maxCycles = 100'000'000'000ULL;
    /** Declare deadlock/livelock after this many cycles without progress. */
    Cycle stallCycles = 10'000'000;
    /** Progress-counter sampling period (power of two, amortizes cost). */
    Cycle checkInterval = 1024;
};

class Simulator
{
  public:
    Simulator() = default;

    /** Register a component; ticked in registration order every cycle. */
    void
    add(Component *c)
    {
        gds_assert(c != nullptr, "null component");
        components.push_back(c);
    }

    /** Current simulated cycle. */
    Cycle cycle() const { return _cycle; }

    /**
     * Attach an interval sampler, driven once per step(). Not owned;
     * nullptr detaches. With no interval configured the per-step cost is
     * one predictable branch.
     */
    void setSampler(obs::Sampler *sampler) { _sampler = sampler; }
    obs::Sampler *sampler() const { return _sampler; }

    /**
     * Attach a tracer. Every @p counter_interval cycles the driver emits
     * one counter sample per registered component (and descendant) onto
     * that component's track, plotting per-interval activity deltas;
     * 0 keeps counter tracks off (the tracer still receives watchdog
     * instants from run()). Not owned; nullptr detaches.
     */
    void
    setTracer(obs::Tracer *tracer, Cycle counter_interval = 0)
    {
        _tracer = tracer;
        _counterInterval = counter_interval;
        counterTracks.clear();
    }
    obs::Tracer *tracer() const { return _tracer; }

    /** Tick every registered component exactly once. */
    void
    step()
    {
        debug::setTraceCycle(_cycle);
        for (Component *c : components) {
            const debug::ScopedTraceComponent scope(c->tracePath());
            c->tick();
        }
        if (_sampler)
            _sampler->tick(_cycle);
        if (_tracer && _counterInterval != 0 &&
            _cycle % _counterInterval == 0) {
            emitActivityCounters();
        }
        ++_cycle;
    }

    /**
     * Run until done() returns true, under watchdog supervision.
     *
     * @param done completion predicate, evaluated after every cycle
     * @param limits cycle budget and stall window
     * @return outcome + diagnostics; never asserts on runaway simulations
     */
    RunReport run(const std::function<bool()> &done,
                  const RunLimits &limits = {});

    /** True if any registered component reports in-flight work. */
    bool
    anyBusy() const
    {
        for (const Component *c : components) {
            if (c->subtreeBusy())
                return true;
        }
        return false;
    }

    /** Current diagnostic snapshot of every registered component tree. */
    std::vector<ComponentDiag> snapshot() const;

  private:
    /** One counter track per component: delta baseline + cached id. */
    struct CounterTrack
    {
        Component *component;
        obs::TrackId track;
        std::uint64_t last;
    };

    std::uint64_t totalProgress() const;
    void emitActivityCounters();

    std::vector<Component *> components;
    std::vector<CounterTrack> counterTracks;
    obs::Sampler *_sampler = nullptr;
    obs::Tracer *_tracer = nullptr;
    Cycle _counterInterval = 0;
    Cycle _cycle = 0;
};

} // namespace gds::sim
