/**
 * @file
 * Cycle-stepped simulation driver.
 *
 * The Simulator owns the global cycle counter and a flat, ordered list of
 * components to tick. Accelerator top-levels register their pieces in
 * reverse dataflow order (see Component) and then call run() with a
 * completion predicate; the driver also watches for deadlock (no component
 * busy yet predicate unsatisfied) and runaway simulations.
 */

#ifndef GDS_SIM_SIMULATOR_HH
#define GDS_SIM_SIMULATOR_HH

#include <functional>
#include <vector>

#include "common/types.hh"
#include "sim/component.hh"

namespace gds::sim
{

class Simulator
{
  public:
    Simulator() = default;

    /** Register a component; ticked in registration order every cycle. */
    void
    add(Component *c)
    {
        gds_assert(c != nullptr, "null component");
        components.push_back(c);
    }

    /** Current simulated cycle. */
    Cycle cycle() const { return _cycle; }

    /** Tick every registered component exactly once. */
    void
    step()
    {
        for (Component *c : components)
            c->tick();
        ++_cycle;
    }

    /**
     * Run until done() returns true.
     *
     * @param done completion predicate, evaluated after every cycle
     * @param max_cycles hard safety limit; panics if exceeded
     * @return cycles elapsed during this call
     */
    Cycle
    run(const std::function<bool()> &done,
        Cycle max_cycles = 100'000'000'000ULL)
    {
        const Cycle start = _cycle;
        while (!done()) {
            step();
            gds_assert(_cycle - start < max_cycles,
                       "simulation exceeded %llu cycles without finishing",
                       static_cast<unsigned long long>(max_cycles));
        }
        return _cycle - start;
    }

    /** True if any registered component reports in-flight work. */
    bool
    anyBusy() const
    {
        for (const Component *c : components) {
            if (c->busy())
                return true;
        }
        return false;
    }

  private:
    std::vector<Component *> components;
    Cycle _cycle = 0;
};

} // namespace gds::sim

#endif // GDS_SIM_SIMULATOR_HH
