#include "sim/fault.hh"

#include "common/debug.hh"
#include "sim/checkpoint.hh"

namespace gds::sim
{

namespace
{

bool
isProbability(double p)
{
    return p >= 0.0 && p <= 1.0;
}

} // namespace

Status
FaultPlan::validate() const
{
    if (!isProbability(delayResponseProb))
        return Status::failure(ErrorCode::Config,
                               "delayResponseProb must be in [0, 1]");
    if (!isProbability(dropResponseProb))
        return Status::failure(ErrorCode::Config,
                               "dropResponseProb must be in [0, 1]");
    if (!isProbability(rejectRequestProb))
        return Status::failure(ErrorCode::Config,
                               "rejectRequestProb must be in [0, 1]");
    if (!isProbability(stallOutputProb))
        return Status::failure(ErrorCode::Config,
                               "stallOutputProb must be in [0, 1]");
    if (delayResponseProb > 0.0 && delayCycles == 0)
        return Status::failure(ErrorCode::Config,
                               "delayCycles must be positive when "
                               "delayResponseProb is set");
    return Status();
}

FaultInjector::FaultInjector(const FaultPlan &fault_plan)
    : _plan(fault_plan), rng(fault_plan.seed)
{
    const Status valid = _plan.validate();
    if (!valid.ok())
        throw ConfigError("bad fault plan: " + valid.message());
}

bool
FaultInjector::dropResponse()
{
    ++_responsesSeen;
    const bool deterministic =
        _plan.dropAfterResponses != FaultPlan::never &&
        _responsesSeen > _plan.dropAfterResponses;
    const bool random =
        _plan.dropResponseProb > 0.0 &&
        rng.uniform() < _plan.dropResponseProb;
    if (deterministic || random) {
        ++_dropped;
        DPRINTF(Fault, "dropping HBM response #%llu",
                static_cast<unsigned long long>(_responsesSeen));
        return true;
    }
    return false;
}

Cycle
FaultInjector::responseDelay()
{
    if (_plan.delayResponseProb > 0.0 &&
        rng.uniform() < _plan.delayResponseProb) {
        ++_delayed;
        DPRINTF(Fault, "delaying HBM response by %llu cycles",
                static_cast<unsigned long long>(_plan.delayCycles));
        return _plan.delayCycles;
    }
    return 0;
}

bool
FaultInjector::rejectRequest()
{
    if (_plan.rejectRequestProb > 0.0 &&
        rng.uniform() < _plan.rejectRequestProb) {
        ++_rejected;
        return true;
    }
    return false;
}

bool
FaultInjector::stallOutput()
{
    if (_plan.stallOutputProb > 0.0 &&
        rng.uniform() < _plan.stallOutputProb) {
        ++_stalled;
        return true;
    }
    return false;
}

void
FaultInjector::saveState(Serializer &s) const
{
    for (const std::uint64_t word : rng.state())
        s.writeU64(word);
    s.writeU64(_responsesSeen);
    s.writeU64(_dropped);
    s.writeU64(_delayed);
    s.writeU64(_rejected);
    s.writeU64(_stalled);
}

void
FaultInjector::restoreState(Deserializer &d)
{
    std::array<std::uint64_t, 4> words{};
    for (std::uint64_t &word : words)
        word = d.readU64();
    rng.setState(words);
    _responsesSeen = d.readU64();
    _dropped = d.readU64();
    _delayed = d.readU64();
    _rejected = d.readU64();
    _stalled = d.readU64();
}

} // namespace gds::sim
