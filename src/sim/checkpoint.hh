/**
 * @file
 * Versioned, checksummed checkpoint/restore of mid-run simulator state.
 *
 * Components serialize into a Serializer (a flat byte buffer with typed
 * append helpers) and restore from a Deserializer (the bounds-checked
 * mirror; every defect throws a typed CheckpointError). The byte stream
 * is a same-build artifact: values are host-endian memcpy images guarded
 * by a state-version stamp and an identity string, never a portable
 * interchange format — a checkpoint resumes the exact binary that wrote
 * it, which is all preemption tolerance needs.
 *
 * CheckpointStore manages the on-disk lifecycle: atomically published
 * files (`<base>.ckpt` via fsync + rename + directory fsync), one-deep
 * rotation to `<base>.ckpt.prev` so a crash mid-write — or a torn file
 * from a lost power event — falls back to the previous good checkpoint,
 * and checksum/version/length validation on load.
 *
 * Layout of one checkpoint file:
 *
 *   magic "GDSCKPT1"            8 bytes
 *   format version              u32 (layout of this envelope)
 *   state  version              u32 (producer's serialization layout)
 *   cycle                       u64 (component-local clock at the snapshot)
 *   identity length + bytes     u32 + n (config hash, graph, algo, kind)
 *   payload  length + bytes     u64 + n (the Serializer buffer)
 *   FNV-1a-64 checksum          u64 (over every preceding byte)
 */

#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/types.hh"
#include "stats/stats.hh"

namespace gds::sim
{

/** Typed append-only byte buffer that components save their state into. */
class Serializer
{
  public:
    Serializer() = default;

    void writeBool(bool v) { writeU8(v ? 1 : 0); }
    void writeU8(std::uint8_t v) { buf.push_back(v); }
    void writeU32(std::uint32_t v) { writeRaw(&v, sizeof v); }
    void writeU64(std::uint64_t v) { writeRaw(&v, sizeof v); }
    void writeDouble(double v) { writeRaw(&v, sizeof v); }

    void
    writeString(const std::string &v)
    {
        writeU64(v.size());
        writeRaw(v.data(), v.size());
    }

    /** Structural sanity marker; the reader asserts it back. */
    void writeMarker(std::uint32_t tag) { writeU32(tag); }

    template <typename T>
    void
    writePod(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "writePod needs a trivially copyable type");
        writeRaw(&v, sizeof v);
    }

    template <typename T>
    void
    writePodVec(const std::vector<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "writePodVec needs a trivially copyable type");
        writeU64(v.size());
        if (!v.empty())
            writeRaw(v.data(), v.size() * sizeof(T));
    }

    template <typename T>
    void
    writePodDeque(const std::deque<T> &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "writePodDeque needs a trivially copyable type");
        writeU64(v.size());
        for (const T &e : v)
            writeRaw(&e, sizeof e);
    }

    /** std::vector<bool> has no contiguous storage; one byte per bit. */
    void
    writeBoolVec(const std::vector<bool> &v)
    {
        writeU64(v.size());
        for (const bool b : v)
            writeU8(b ? 1 : 0);
    }

    /**
     * Enroll a live object address. Pointers are serialized as the index
     * of their registration; the restore side must registerPointer() the
     * same objects in the same order.
     */
    void
    registerPointer(const void *p)
    {
        gds_assert(p != nullptr, "cannot register a null pointer");
        const auto id = static_cast<std::uint32_t>(ids.size());
        ids.emplace(p, id);
    }

    template <typename T>
    void
    writePointer(const T *p)
    {
        if (p == nullptr) {
            writeU32(kNullPointer);
            return;
        }
        const auto it = ids.find(p);
        gds_assert(it != ids.end(),
                   "serialized pointer was never registered");
        writeU32(it->second);
    }

    const std::vector<std::uint8_t> &bytes() const { return buf; }

    static constexpr std::uint32_t kNullPointer = ~std::uint32_t{0};

  private:
    void
    writeRaw(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const std::uint8_t *>(data);
        buf.insert(buf.end(), p, p + n);
    }

    std::vector<std::uint8_t> buf;
    std::unordered_map<const void *, std::uint32_t> ids;
};

/**
 * Bounds-checked reader over a checkpoint payload. Any underrun, marker
 * mismatch or malformed length throws CheckpointError; restore code can
 * therefore consume the stream without defensive length bookkeeping.
 */
class Deserializer
{
  public:
    Deserializer(const std::uint8_t *payload, std::size_t size)
        : data(payload), len(size)
    {}

    explicit Deserializer(const std::vector<std::uint8_t> &payload)
        : Deserializer(payload.data(), payload.size())
    {}

    bool readBool() { return readU8() != 0; }

    std::uint8_t
    readU8()
    {
        need(1);
        return data[pos++];
    }

    std::uint32_t readU32() { return readRawAs<std::uint32_t>(); }
    std::uint64_t readU64() { return readRawAs<std::uint64_t>(); }
    double readDouble() { return readRawAs<double>(); }

    std::string
    readString()
    {
        const std::uint64_t n = readU64();
        need(n);
        std::string s(reinterpret_cast<const char *>(data + pos),
                      static_cast<std::size_t>(n));
        pos += static_cast<std::size_t>(n);
        return s;
    }

    void
    expectMarker(std::uint32_t tag)
    {
        const std::uint32_t found = readU32();
        gds_require(found == tag, CheckpointError,
                    "checkpoint section marker mismatch "
                    "(found 0x%08x, expected 0x%08x at offset %zu)",
                    found, tag, pos - sizeof(std::uint32_t));
    }

    template <typename T>
    T
    readPod()
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "readPod needs a trivially copyable type");
        return readRawAs<T>();
    }

    template <typename T>
    void
    readPodVec(std::vector<T> &out)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "readPodVec needs a trivially copyable type");
        const std::uint64_t n = readU64();
        gds_require(n <= remaining() / sizeof(T), CheckpointError,
                    "checkpoint truncated: vector of %llu elements "
                    "exceeds the %zu bytes left",
                    static_cast<unsigned long long>(n), remaining());
        out.resize(static_cast<std::size_t>(n));
        if (n != 0) {
            std::memcpy(out.data(), data + pos,
                        static_cast<std::size_t>(n) * sizeof(T));
            pos += static_cast<std::size_t>(n) * sizeof(T);
        }
    }

    template <typename T>
    void
    readPodDeque(std::deque<T> &out)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "readPodDeque needs a trivially copyable type");
        const std::uint64_t n = readU64();
        out.clear();
        for (std::uint64_t i = 0; i < n; ++i)
            out.push_back(readRawAs<T>());
    }

    void
    readBoolVec(std::vector<bool> &out)
    {
        const std::uint64_t n = readU64();
        need(n);
        out.assign(static_cast<std::size_t>(n), false);
        for (std::uint64_t i = 0; i < n; ++i)
            out[static_cast<std::size_t>(i)] = data[pos++] != 0;
    }

    /** Mirror of Serializer::registerPointer; same objects, same order. */
    void registerPointer(void *p) { ptrs.push_back(p); }

    template <typename T>
    T *
    readPointer()
    {
        const std::uint32_t id = readU32();
        if (id == Serializer::kNullPointer)
            return nullptr;
        gds_require(id < ptrs.size(), CheckpointError,
                    "checkpoint references unregistered pointer id %u "
                    "(only %zu registered)", id, ptrs.size());
        return static_cast<T *>(ptrs[id]);
    }

    std::size_t remaining() const { return len - pos; }

    /** Assert the whole payload was consumed (catches layout drift). */
    void
    expectEnd() const
    {
        gds_require(pos == len, CheckpointError,
                    "checkpoint payload has %zu unread trailing bytes",
                    len - pos);
    }

  private:
    void
    need(std::uint64_t n)
    {
        gds_require(n <= len - pos, CheckpointError,
                    "checkpoint truncated: need %llu bytes at offset %zu "
                    "of %zu", static_cast<unsigned long long>(n), pos, len);
    }

    template <typename T>
    T
    readRawAs()
    {
        need(sizeof(T));
        T v;
        std::memcpy(&v, data + pos, sizeof v);
        pos += sizeof v;
        return v;
    }

    const std::uint8_t *data;
    std::size_t len;
    std::size_t pos = 0;
    std::vector<void *> ptrs;
};

/**
 * Serialize every stat registered directly on @p group (child groups
 * belong to child components, which save themselves). Order is the
 * registration order, which is fixed at construction.
 */
void saveStats(Serializer &s, const stats::Group &group);

/**
 * Restore the stats written by saveStats(). Names and kinds are verified
 * stat-by-stat; any mismatch means the checkpoint came from a different
 * layout and throws CheckpointError.
 */
void restoreStats(Deserializer &d, stats::Group &group);

/** Descriptive header of one checkpoint, verified before restoring. */
struct CheckpointMeta
{
    /** Producer's serialization-layout version (bump on layout change). */
    std::uint32_t stateVersion = 0;
    /** Who this state belongs to: config hash, graph shape, algorithm,
     *  accelerator kind. A resume with a different identity is refused. */
    std::string identity;
    /** Component-local clock at the snapshot (diagnostics only). */
    Cycle cycle = 0;
};

/**
 * On-disk lifecycle of one logical checkpoint: `<dir>/<base>.ckpt` plus a
 * one-deep `.prev` rotation. write() is atomic and durable; loadLatest()
 * validates and falls back, so a torn or corrupt current file costs at
 * most one checkpoint interval of recomputation.
 */
class CheckpointStore
{
  public:
    CheckpointStore(std::string directory, std::string base_name);

    const std::string &currentPath() const { return current; }
    const std::string &previousPath() const { return previous; }

    /**
     * Atomically publish a new checkpoint, rotating any existing current
     * file to `.prev` first. @throws CheckpointError on I/O failure.
     */
    void write(const CheckpointMeta &meta, const Serializer &payload);

    struct Loaded
    {
        CheckpointMeta meta;
        std::vector<std::uint8_t> payload;
        bool usedFallback = false; ///< current was bad; .prev supplied this
    };

    /**
     * Newest valid checkpoint: the current file, else the `.prev`
     * fallback. Corruption is reported through @p reason (never thrown):
     * falling back — or starting clean — is the contract. Missing files
     * are the routine cold-start case and leave @p reason empty.
     */
    std::optional<Loaded> loadLatest(std::string *reason = nullptr) const;

    /** Parse and validate one checkpoint file.
     *  @throws CheckpointError on any defect. */
    static Loaded readFile(const std::string &path);

    /** Delete both files (the run completed; nothing left to resume). */
    void removeAll() const;

  private:
    std::string dir;
    std::string current;
    std::string previous;
};

} // namespace gds::sim
