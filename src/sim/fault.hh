/**
 * @file
 * Deterministic, seed-driven fault injection.
 *
 * A FaultPlan describes which faults to inject — delayed or dropped HBM
 * responses, rejected HBM requests (extra backpressure), stalled crossbar
 * output ports — and a FaultInjector draws the per-event decisions from a
 * private xoshiro stream, so a given (plan, seed) reproduces the exact
 * same fault sequence on every run. The models consult the injector at
 * well-defined points (mem::Hbm response completion and request admission,
 * mem::Crossbar output arbitration); a null injector means fault-free
 * operation at zero cost.
 *
 * The subsystem exists to prove the watchdog works: an injected hang must
 * surface as RunOutcome::Deadlock/Livelock with a diagnostic snapshot, and
 * injected backpressure must only slow a run down, never wedge or corrupt
 * it.
 */

#pragma once

#include <cstdint>

#include "common/error.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace gds::sim
{

class Serializer;
class Deserializer;

/** Declarative description of the faults to inject. */
struct FaultPlan
{
    static constexpr std::uint64_t never = ~0ULL;

    /** Seed of the injector's private decision stream. */
    std::uint64_t seed = 1;

    // --- HBM response faults ---
    /** Probability a completed response is held back for delayCycles. */
    double delayResponseProb = 0.0;
    /** Extra latency applied to delayed responses. */
    Cycle delayCycles = 500;
    /** Probability a completed response is dropped (never delivered). */
    double dropResponseProb = 0.0;
    /** Drop every response after this many have been delivered
     *  (deterministic hang); never = disabled. */
    std::uint64_t dropAfterResponses = never;

    // --- HBM request-admission faults ---
    /** Probability a request is refused admission (extra backpressure). */
    double rejectRequestProb = 0.0;

    // --- Crossbar faults ---
    /** Probability an output-port grant is refused (port stall). */
    double stallOutputProb = 0.0;

    /** True when any fault is enabled. */
    bool
    any() const
    {
        return delayResponseProb > 0.0 || dropResponseProb > 0.0 ||
               dropAfterResponses != never || rejectRequestProb > 0.0 ||
               stallOutputProb > 0.0;
    }

    /** Reject malformed plans (probabilities outside [0, 1]). */
    Status validate() const;
};

/** Draws deterministic per-event fault decisions from a FaultPlan. */
class FaultInjector
{
  public:
    /** @throws ConfigError when the plan does not validate. */
    explicit FaultInjector(const FaultPlan &fault_plan);

    const FaultPlan &plan() const { return _plan; }

    /**
     * Decide the fate of one completed HBM response.
     * @return true to drop the response entirely.
     */
    bool dropResponse();

    /** Extra delay for one completed HBM response (0 = deliver now). */
    Cycle responseDelay();

    /** True to refuse admission of one HBM request this cycle. */
    bool rejectRequest();

    /** True to refuse one crossbar output grant this cycle. */
    bool stallOutput();

    /**
     * Checkpoint the decision stream: RNG words plus counters, so a
     * resumed run draws the exact same fault sequence from where the
     * interrupted one left off. The plan itself is configuration and is
     * rebuilt by the constructor.
     */
    void saveState(Serializer &s) const;
    void restoreState(Deserializer &d);

    // Decision counters (observability + test assertions).
    std::uint64_t responsesSeen() const { return _responsesSeen; }
    std::uint64_t dropped() const { return _dropped; }
    std::uint64_t delayed() const { return _delayed; }
    std::uint64_t rejected() const { return _rejected; }
    std::uint64_t stalled() const { return _stalled; }

  private:
    FaultPlan _plan;
    Rng rng;
    std::uint64_t _responsesSeen = 0;
    std::uint64_t _dropped = 0;
    std::uint64_t _delayed = 0;
    std::uint64_t _rejected = 0;
    std::uint64_t _stalled = 0;
};

} // namespace gds::sim
