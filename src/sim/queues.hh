/**
 * @file
 * Inter-stage communication primitives.
 *
 * BoundedQueue models a hardware FIFO with a fixed capacity; a full queue
 * exerts backpressure (the producer must check canPush()). DelayQueue adds
 * a fixed pipeline latency: an element pushed at cycle T becomes visible to
 * the consumer at cycle T + latency, modelling SRAM/eDRAM access pipelines.
 */

#pragma once

#include <deque>

#include "common/logging.hh"
#include "common/types.hh"

namespace gds::sim
{

/** Fixed-capacity FIFO with backpressure. */
template <typename T>
class BoundedQueue
{
  public:
    explicit BoundedQueue(std::size_t queue_capacity)
        : _capacity(queue_capacity)
    {
        gds_assert(_capacity > 0, "queue capacity must be positive");
    }

    bool canPush() const { return entries.size() < _capacity; }
    bool empty() const { return entries.empty(); }
    std::size_t size() const { return entries.size(); }
    std::size_t capacity() const { return _capacity; }

    void
    push(T value)
    {
        gds_assert(canPush(), "push into full queue (capacity %zu)",
                   _capacity);
        entries.push_back(std::move(value));
    }

    const T &
    front() const
    {
        gds_assert(!entries.empty(), "front of empty queue");
        return entries.front();
    }

    T &
    front()
    {
        gds_assert(!entries.empty(), "front of empty queue");
        return entries.front();
    }

    T
    pop()
    {
        gds_assert(!entries.empty(), "pop from empty queue");
        T value = std::move(entries.front());
        entries.pop_front();
        return value;
    }

    /** Checkpoint hook; capacity is configuration, only contents move. */
    template <typename SER>
    void
    saveState(SER &s) const
    {
        s.writePodDeque(entries);
    }

    template <typename DES>
    void
    restoreState(DES &d)
    {
        d.readPodDeque(entries);
    }

  private:
    std::size_t _capacity;
    std::deque<T> entries;
};

/**
 * FIFO whose elements become visible only after a fixed latency.
 * The owner must call tick() once per cycle.
 */
template <typename T>
class DelayQueue
{
  public:
    DelayQueue(std::size_t queue_capacity, Cycle delay_cycles)
        : _capacity(queue_capacity), delay(delay_cycles)
    {
        gds_assert(_capacity > 0, "queue capacity must be positive");
    }

    void tick() { ++now; }

    /**
     * Advance the local clock by @p cycles at once, in place of that many
     * tick() calls. The caller must have established (via cyclesUntilReady)
     * that no element matures strictly inside the skipped window.
     */
    void
    advance(Cycle cycles)
    {
        gds_assert(entries.empty() ||
                       entries.front().readyAt >= now + cycles,
                   "advance() across a matured delay-queue element");
        now += cycles;
    }

    /**
     * Ticks until the head element matures: 0 when ready() already holds,
     * the distance in tick() calls otherwise, or kNever when empty.
     */
    static constexpr Cycle kNever = ~Cycle{0};
    Cycle
    cyclesUntilReady() const
    {
        if (entries.empty())
            return kNever;
        return entries.front().readyAt <= now ? 0
                                              : entries.front().readyAt - now;
    }

    bool canPush() const { return entries.size() < _capacity; }
    std::size_t size() const { return entries.size(); }
    bool empty() const { return entries.empty(); }

    /** True when the head element has matured and can be popped. */
    bool
    ready() const
    {
        return !entries.empty() && entries.front().readyAt <= now;
    }

    void
    push(T value)
    {
        gds_assert(canPush(), "push into full delay queue (capacity %zu)",
                   _capacity);
        entries.push_back(Entry{now + delay, std::move(value)});
    }

    const T &
    front() const
    {
        gds_assert(ready(), "front of non-ready delay queue");
        return entries.front().value;
    }

    T
    pop()
    {
        gds_assert(ready(), "pop from non-ready delay queue");
        T value = std::move(entries.front().value);
        entries.pop_front();
        return value;
    }

    /** Checkpoint hook: local clock plus in-flight entries (their
     *  readyAt stamps are relative to that clock, so both travel). */
    template <typename SER>
    void
    saveState(SER &s) const
    {
        s.writeU64(now);
        s.writePodDeque(entries);
    }

    template <typename DES>
    void
    restoreState(DES &d)
    {
        now = d.readU64();
        d.readPodDeque(entries);
    }

  private:
    struct Entry
    {
        Cycle readyAt;
        T value;
    };

    std::size_t _capacity;
    Cycle delay;
    Cycle now = 0;
    std::deque<Entry> entries;
};

} // namespace gds::sim
