#include "graph/transforms.hh"

#include <algorithm>
#include <numeric>

#include "common/error.hh"
#include "graph/builder.hh"

namespace gds::graph
{

Csr
transpose(const Csr &g)
{
    const VertexId v_count = g.numVertices();
    std::vector<EdgeId> offsets(static_cast<std::size_t>(v_count) + 1, 0);
    for (const VertexId dst : g.neighborArray())
        ++offsets[dst + 1];
    for (std::size_t v = 1; v < offsets.size(); ++v)
        offsets[v] += offsets[v - 1];

    std::vector<VertexId> neighbors(g.numEdges());
    std::vector<Weight> weights(g.hasWeights() ? g.numEdges() : 0);
    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (VertexId u = 0; u < v_count; ++u) {
        const auto nbrs = g.neighborsOf(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const EdgeId slot = cursor[nbrs[i]]++;
            neighbors[slot] = u;
            if (g.hasWeights())
                weights[slot] = g.weightsOf(u)[i];
        }
    }
    return Csr(std::move(offsets), std::move(neighbors),
               std::move(weights));
}

Csr
symmetrize(const Csr &g)
{
    std::vector<CooEdge> edges;
    edges.reserve(2 * g.numEdges());
    for (VertexId u = 0; u < g.numVertices(); ++u) {
        const auto nbrs = g.neighborsOf(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            const Weight w = g.hasWeights() ? g.weightsOf(u)[i] : 1;
            edges.push_back(CooEdge{u, nbrs[i], w});
            edges.push_back(CooEdge{nbrs[i], u, w});
        }
    }
    BuildOptions opts;
    opts.removeDuplicates = true;
    opts.keepWeights = g.hasWeights();
    return buildCsr(g.numVertices(), std::move(edges), opts);
}

Csr
degreeSortReorder(const Csr &g, std::vector<VertexId> *permutation)
{
    const VertexId v_count = g.numVertices();
    std::vector<VertexId> by_degree(v_count);
    std::iota(by_degree.begin(), by_degree.end(), 0);
    std::stable_sort(by_degree.begin(), by_degree.end(),
                     [&g](VertexId a, VertexId b) {
                         return g.outDegree(a) > g.outDegree(b);
                     });
    std::vector<VertexId> perm(v_count);
    for (VertexId rank = 0; rank < v_count; ++rank)
        perm[by_degree[rank]] = rank;
    if (permutation)
        *permutation = perm;
    return applyPermutation(g, perm);
}

Csr
applyPermutation(const Csr &g, const std::vector<VertexId> &permutation)
{
    gds_require(permutation.size() == g.numVertices(), ConfigError,
               "permutation size %zu != |V| %u", permutation.size(),
               g.numVertices());
    std::vector<CooEdge> edges;
    edges.reserve(g.numEdges());
    for (VertexId u = 0; u < g.numVertices(); ++u) {
        const auto nbrs = g.neighborsOf(u);
        for (std::size_t i = 0; i < nbrs.size(); ++i) {
            edges.push_back(CooEdge{
                permutation[u], permutation[nbrs[i]],
                g.hasWeights() ? g.weightsOf(u)[i] : Weight{1}});
        }
    }
    BuildOptions opts;
    opts.keepWeights = g.hasWeights();
    return buildCsr(g.numVertices(), std::move(edges), opts);
}

std::vector<std::uint64_t>
inDegrees(const Csr &g)
{
    std::vector<std::uint64_t> degrees(g.numVertices(), 0);
    for (const VertexId dst : g.neighborArray())
        ++degrees[dst];
    return degrees;
}

std::uint64_t
countWeakComponents(const Csr &g)
{
    const VertexId v_count = g.numVertices();
    std::vector<VertexId> parent(v_count);
    std::iota(parent.begin(), parent.end(), 0);
    auto find = [&parent](VertexId x) {
        while (parent[x] != x) {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        return x;
    };
    for (VertexId u = 0; u < v_count; ++u) {
        for (const VertexId v : g.neighborsOf(u)) {
            const VertexId ru = find(u);
            const VertexId rv = find(v);
            if (ru != rv)
                parent[std::max(ru, rv)] = std::min(ru, rv);
        }
    }
    std::uint64_t roots = 0;
    for (VertexId v = 0; v < v_count; ++v) {
        if (find(v) == v)
            ++roots;
    }
    return roots;
}

} // namespace gds::graph
