#include "graph/generators.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/bitutil.hh"
#include "common/error.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "graph/builder.hh"

namespace gds::graph
{

namespace
{

/** Deterministic id scramble (bijective) so degree does not follow id. */
VertexId
scramble(VertexId v, VertexId num_vertices, std::uint64_t salt)
{
    // Feistel-free multiplicative hash, folded into range by rejection-free
    // modulo against a fixed permutation-sized domain: we permute within
    // [0, num_vertices) using the "multiply by odd constant modulo 2^k,
    // then rank" approach. Simpler and fully bijective: when num_vertices
    // is not a power of two, use a cycle-walking Feistel over the next
    // power of two.
    std::uint64_t bits = 1;
    while ((1ULL << bits) < num_vertices)
        ++bits;
    const std::uint64_t mask = (1ULL << bits) - 1;
    std::uint64_t x = v;
    do {
        // Two rounds of an invertible mix restricted to 'bits' bits.
        x = (x * 0x9e3779b97f4a7c15ULL + salt) & mask;
        x ^= x >> (bits / 2 + 1);
        x = (x * 0xbf58476d1ce4e5b9ULL + 0x94d049bb133111ebULL) & mask;
        x ^= x >> (bits / 2 + 1);
    } while (x >= num_vertices);
    return static_cast<VertexId>(x);
}

/**
 * Edges per generator chunk. Fixed (never derived from the job count) so
 * that chunk boundaries — and therefore every chunk's random stream —
 * are identical at any parallelism; jobs only decides how many chunks
 * run concurrently.
 */
constexpr std::size_t generatorChunkEdges = 1u << 16;

/** Independent per-chunk seed: counter-based, so chunk c's stream never
 *  depends on how many edges earlier chunks drew. */
std::uint64_t
chunkSeed(std::uint64_t seed, std::size_t chunk)
{
    SplitMix64 sm(seed + 0x632be59bd9b4e019ULL * (chunk + 1));
    return sm.next();
}

/**
 * Fill @p edges by running @p fill(rng, e) for every edge index, in
 * fixed-size chunks each with its own counter-seeded Rng.
 */
template <typename FillFn>
void
generateChunked(std::vector<CooEdge> &edges, std::uint64_t seed,
                unsigned jobs, const FillFn &fill)
{
    const std::size_t num_edges = edges.size();
    const std::size_t chunks =
        std::max<std::size_t>(1, ceilDiv(num_edges, generatorChunkEdges));
    const unsigned pool_jobs = jobs == 0 ? common::jobCount() : jobs;
    common::parallelFor(chunks, pool_jobs, [&](std::size_t c) {
        Rng rng(chunkSeed(seed, c));
        const std::size_t begin = c * generatorChunkEdges;
        const std::size_t end =
            std::min(num_edges, begin + generatorChunkEdges);
        for (std::size_t e = begin; e < end; ++e)
            edges[e] = fill(rng);
    });
}

} // namespace

Csr
rmat(unsigned scale, unsigned edge_factor, std::uint64_t seed,
     const RmatParams &params, bool weighted, unsigned jobs)
{
    gds_require(scale >= 1 && scale <= 32, ConfigError,
                "rmat scale %u unsupported", scale);
    const VertexId num_vertices = static_cast<VertexId>(1ULL << scale);
    const EdgeId num_edges =
        static_cast<EdgeId>(edge_factor) * num_vertices;

    std::vector<CooEdge> edges(num_edges);
    const double ab = params.a + params.b;
    const double abc = ab + params.c;
    generateChunked(edges, seed, jobs, [&](Rng &rng) {
        VertexId src = 0;
        VertexId dst = 0;
        for (unsigned bit = 0; bit < scale; ++bit) {
            const double r = rng.uniform();
            unsigned src_bit;
            unsigned dst_bit;
            if (r < params.a) {
                src_bit = 0;
                dst_bit = 0;
            } else if (r < ab) {
                src_bit = 0;
                dst_bit = 1;
            } else if (r < abc) {
                src_bit = 1;
                dst_bit = 0;
            } else {
                src_bit = 1;
                dst_bit = 1;
            }
            src = (src << 1) | src_bit;
            dst = (dst << 1) | dst_bit;
        }
        const Weight w =
            weighted ? static_cast<Weight>(1 + rng.below(255)) : 1;
        return CooEdge{scramble(src, num_vertices, seed ^ 0x5bd1),
                       scramble(dst, num_vertices, seed ^ 0x5bd1), w};
    });

    BuildOptions opts;
    opts.keepWeights = weighted;
    opts.jobs = jobs;
    return buildCsr(num_vertices, std::move(edges), opts);
}

Csr
powerLaw(VertexId num_vertices, EdgeId num_edges, double alpha,
         std::uint64_t seed, bool weighted, unsigned jobs)
{
    gds_require(num_vertices > 0, ConfigError, "need at least one vertex");
    gds_require(alpha > 0.0 && alpha < 1.0, ConfigError,
                "alpha must be in (0,1)");

    // Zipf sampling by inversion: endpoint rank r is drawn with density
    // proportional to r^-alpha, giving a heavy-tailed expected-degree
    // sequence without a V-sized cumulative table. Larger alpha means a
    // heavier tail; alpha in [0.5, 0.8] matches the hub sizes of the
    // paper's social/web graphs.
    const double s = alpha; // Zipf exponent in (0,1)
    const double v_pow = std::pow(static_cast<double>(num_vertices),
                                  1.0 - s);

    auto sample_rank = [&](Rng &rng) -> VertexId {
        // Inverse of the continuous Zipf CDF F(x) = (x^(1-s) - 1) /
        // (V^(1-s) - 1), x in [1, V].
        const double u = rng.uniform();
        const double x = std::pow(u * (v_pow - 1.0) + 1.0, 1.0 / (1.0 - s));
        VertexId rank = static_cast<VertexId>(x) - 1;
        return std::min(rank, num_vertices - 1);
    };

    std::vector<CooEdge> edges(num_edges);
    generateChunked(edges, seed, jobs, [&](Rng &rng) {
        const VertexId src =
            scramble(sample_rank(rng), num_vertices, seed ^ 0xfeed);
        const VertexId dst =
            scramble(sample_rank(rng), num_vertices, seed ^ 0xfeed);
        const Weight w =
            weighted ? static_cast<Weight>(1 + rng.below(255)) : 1;
        return CooEdge{src, dst, w};
    });

    BuildOptions opts;
    opts.keepWeights = weighted;
    opts.jobs = jobs;
    return buildCsr(num_vertices, std::move(edges), opts);
}

Csr
uniform(VertexId num_vertices, EdgeId num_edges, std::uint64_t seed,
        bool weighted, unsigned jobs)
{
    gds_require(num_vertices > 0, ConfigError, "need at least one vertex");
    std::vector<CooEdge> edges(num_edges);
    generateChunked(edges, seed, jobs, [&](Rng &rng) {
        const auto src = static_cast<VertexId>(rng.below(num_vertices));
        const auto dst = static_cast<VertexId>(rng.below(num_vertices));
        const Weight w =
            weighted ? static_cast<Weight>(1 + rng.below(255)) : 1;
        return CooEdge{src, dst, w};
    });
    BuildOptions opts;
    opts.keepWeights = weighted;
    opts.jobs = jobs;
    return buildCsr(num_vertices, std::move(edges), opts);
}

Csr
barabasiAlbert(VertexId num_vertices, unsigned edges_per_vertex,
               std::uint64_t seed, bool weighted)
{
    gds_require(edges_per_vertex >= 1, ConfigError,
                "need at least one edge per vertex");
    gds_require(num_vertices > edges_per_vertex, ConfigError,
               "need more vertices than edges per vertex");
    Rng rng(seed);

    // Degree-proportional sampling via the repeated-endpoints trick:
    // every endpoint of every edge goes into a pool; a uniform draw from
    // the pool is a degree-proportional draw over vertices.
    std::vector<VertexId> pool;
    pool.reserve(static_cast<std::size_t>(num_vertices) *
                 edges_per_vertex * 2);
    std::vector<CooEdge> edges;
    edges.reserve(static_cast<std::size_t>(num_vertices) *
                  edges_per_vertex * 2);

    // Seed clique over the first m+1 vertices.
    for (VertexId u = 0; u <= edges_per_vertex; ++u) {
        for (VertexId v = u + 1; v <= edges_per_vertex; ++v) {
            edges.push_back(CooEdge{u, v, 1});
            edges.push_back(CooEdge{v, u, 1});
            pool.push_back(u);
            pool.push_back(v);
        }
    }

    for (VertexId u = edges_per_vertex + 1; u < num_vertices; ++u) {
        for (unsigned k = 0; k < edges_per_vertex; ++k) {
            const VertexId target = pool[rng.below(pool.size())];
            edges.push_back(CooEdge{u, target, 1});
            edges.push_back(CooEdge{target, u, 1});
            pool.push_back(u);
            pool.push_back(target);
        }
    }

    BuildOptions opts;
    opts.keepWeights = weighted;
    opts.removeDuplicates = true;
    if (weighted) {
        for (auto &e : edges)
            e.weight = static_cast<Weight>(1 + rng.below(255));
    }
    return buildCsr(num_vertices, std::move(edges), opts);
}

Csr
wattsStrogatz(VertexId num_vertices, unsigned ring_degree,
              double rewire_probability, std::uint64_t seed, bool weighted)
{
    gds_require(ring_degree >= 2 && ring_degree % 2 == 0, ConfigError,
               "ring degree must be even and >= 2");
    gds_require(num_vertices > ring_degree, ConfigError,
               "need more vertices than the ring degree");
    gds_require(rewire_probability >= 0.0 && rewire_probability <= 1.0,
                ConfigError,
               "rewire probability must be in [0,1]");
    Rng rng(seed);

    std::vector<CooEdge> edges;
    edges.reserve(static_cast<std::size_t>(num_vertices) * ring_degree);
    for (VertexId u = 0; u < num_vertices; ++u) {
        for (unsigned k = 1; k <= ring_degree / 2; ++k) {
            VertexId v = static_cast<VertexId>(
                (static_cast<std::uint64_t>(u) + k) % num_vertices);
            if (rng.uniform() < rewire_probability) {
                // Rewire to a random endpoint (avoiding a self loop).
                do {
                    v = static_cast<VertexId>(rng.below(num_vertices));
                } while (v == u);
            }
            edges.push_back(CooEdge{u, v, 1});
            edges.push_back(CooEdge{v, u, 1});
        }
    }

    BuildOptions opts;
    opts.keepWeights = weighted;
    opts.removeDuplicates = true;
    if (weighted) {
        for (auto &e : edges)
            e.weight = static_cast<Weight>(1 + rng.below(255));
    }
    return buildCsr(num_vertices, std::move(edges), opts);
}

Csr
grid2d(VertexId width, VertexId height, std::uint64_t seed, bool weighted)
{
    gds_require(width > 0 && height > 0, ConfigError,
                "grid dimensions must be positive");
    const VertexId num_vertices = width * height;
    Rng rng(seed);
    std::vector<CooEdge> edges;
    edges.reserve(static_cast<std::size_t>(num_vertices) * 4);
    auto id = [width](VertexId x, VertexId y) { return y * width + x; };
    for (VertexId y = 0; y < height; ++y) {
        for (VertexId x = 0; x < width; ++x) {
            if (x + 1 < width) {
                edges.push_back(CooEdge{id(x, y), id(x + 1, y), 1});
                edges.push_back(CooEdge{id(x + 1, y), id(x, y), 1});
            }
            if (y + 1 < height) {
                edges.push_back(CooEdge{id(x, y), id(x, y + 1), 1});
                edges.push_back(CooEdge{id(x, y + 1), id(x, y), 1});
            }
        }
    }
    BuildOptions opts;
    opts.keepWeights = weighted;
    if (weighted) {
        for (auto &e : edges)
            e.weight = static_cast<Weight>(1 + rng.below(255));
    }
    return buildCsr(num_vertices, std::move(edges), opts);
}

} // namespace gds::graph
