#include "graph/builder.hh"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "common/bitutil.hh"
#include "common/error.hh"
#include "common/parallel.hh"

namespace gds::graph
{

namespace
{

/** Below this many edges a thread pool costs more than it saves. */
constexpr std::size_t parallelGrainEdges = 1u << 15;

/**
 * Cap on the per-chunk histogram scratch (chunks × V × 4 bytes); beyond
 * it the chunk count is reduced rather than letting the scratch rival
 * the graph itself.
 */
constexpr std::uint64_t histogramByteBudget = 512ULL << 20;

/** Edge-index range [begin, end) of chunk c out of @p chunks. */
std::pair<std::size_t, std::size_t>
chunkRange(std::size_t total, std::size_t chunks, std::size_t c)
{
    const std::size_t per = ceilDiv(total, chunks);
    const std::size_t begin = std::min(total, c * per);
    return {begin, std::min(total, begin + per)};
}

/**
 * Number of edge/vertex chunks to use for @p num_edges edges: the job
 * policy, capped by the work grain and the histogram scratch budget.
 * The chunk count never changes the output, only the parallelism.
 */
std::size_t
chunkCount(std::size_t num_edges, VertexId num_vertices, unsigned jobs)
{
    const unsigned policy = jobs == 0 ? common::jobCount() : jobs;
    std::size_t chunks = std::max<std::size_t>(1, policy);
    chunks = std::min(chunks,
                      std::max<std::size_t>(
                          1, num_edges / parallelGrainEdges));
    const std::uint64_t per_chunk_bytes =
        (static_cast<std::uint64_t>(num_vertices) + 1) *
        sizeof(std::uint32_t);
    if (per_chunk_bytes > 0) {
        chunks = std::min<std::size_t>(
            chunks, std::max<std::uint64_t>(
                        1, histogramByteBudget / per_chunk_bytes));
    }
    return chunks;
}

/** Classic serial counting sort with 64-bit cursors, for edge lists too
 *  large for the chunked path's 32-bit scatter cursors. */
Csr
buildCsrSerialWide(VertexId num_vertices, const std::vector<CooEdge> &edges,
                   bool keep_weights)
{
    std::vector<EdgeId> offsets(static_cast<std::size_t>(num_vertices) + 1,
                                0);
    for (const CooEdge &e : edges) {
        gds_require(e.src < num_vertices && e.dst < num_vertices,
                    CorruptInputError, "edge (%u,%u) out of range (V=%u)",
                    e.src, e.dst, num_vertices);
        ++offsets[e.src + 1];
    }
    for (std::size_t v = 1; v < offsets.size(); ++v)
        offsets[v] += offsets[v - 1];

    std::vector<VertexId> neighbors(edges.size());
    std::vector<Weight> weights(keep_weights ? edges.size() : 0);
    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (const CooEdge &e : edges) {
        const EdgeId slot = cursor[e.src]++;
        neighbors[slot] = e.dst;
        if (keep_weights)
            weights[slot] = e.weight;
    }
    return Csr(std::move(offsets), std::move(neighbors),
               std::move(weights));
}

/** Collapse duplicate destinations per vertex; see buildCsr(). */
Csr
dedupePerVertex(VertexId num_vertices, std::vector<EdgeId> offsets,
                std::vector<VertexId> neighbors,
                std::vector<Weight> weights, bool keep_weights,
                unsigned jobs)
{
    const std::size_t blocks =
        chunkCount(neighbors.size(), num_vertices, jobs);
    const unsigned pool_jobs = static_cast<unsigned>(blocks);

    // Pass 1: per-vertex sort + in-place compaction. Each vertex's slice
    // [offsets[v], offsets[v+1]) is touched by exactly one block, so the
    // compacted prefixes can be written back without synchronisation.
    std::vector<std::uint32_t> deduped_degree(num_vertices, 0);
    common::parallelFor(blocks, pool_jobs, [&](std::size_t b) {
        const auto [v_begin, v_end] = chunkRange(num_vertices, blocks, b);
        std::vector<std::pair<VertexId, Weight>> slice;
        for (std::size_t v = v_begin; v < v_end; ++v) {
            const EdgeId begin = offsets[v];
            const EdgeId end = offsets[v + 1];
            slice.clear();
            slice.reserve(end - begin);
            for (EdgeId e = begin; e < end; ++e) {
                slice.emplace_back(neighbors[e],
                                   keep_weights ? weights[e] : Weight{1});
            }
            // Stable: the first weight seen for a destination survives.
            std::stable_sort(slice.begin(), slice.end(),
                             [](const auto &a, const auto &b2) {
                                 return a.first < b2.first;
                             });
            EdgeId out = begin;
            VertexId last = invalidVertex;
            for (const auto &[dst, w] : slice) {
                if (dst == last)
                    continue;
                last = dst;
                neighbors[out] = dst;
                if (keep_weights)
                    weights[out] = w;
                ++out;
            }
            deduped_degree[v] = static_cast<std::uint32_t>(out - begin);
        }
    });

    // Pass 2: serial prefix sum over the deduplicated degrees.
    std::vector<EdgeId> new_offsets(
        static_cast<std::size_t>(num_vertices) + 1, 0);
    for (VertexId v = 0; v < num_vertices; ++v)
        new_offsets[v + 1] = new_offsets[v] + deduped_degree[v];

    // Pass 3: gather the compacted prefixes into dense arrays.
    const EdgeId new_edge_count = new_offsets[num_vertices];
    std::vector<VertexId> new_neighbors(new_edge_count);
    std::vector<Weight> new_weights(keep_weights ? new_edge_count : 0);
    common::parallelFor(blocks, pool_jobs, [&](std::size_t b) {
        const auto [v_begin, v_end] = chunkRange(num_vertices, blocks, b);
        for (std::size_t v = v_begin; v < v_end; ++v) {
            const EdgeId src_begin = offsets[v];
            const EdgeId dst_begin = new_offsets[v];
            const std::uint32_t degree = deduped_degree[v];
            std::copy_n(neighbors.begin() +
                            static_cast<std::ptrdiff_t>(src_begin),
                        degree,
                        new_neighbors.begin() +
                            static_cast<std::ptrdiff_t>(dst_begin));
            if (keep_weights) {
                std::copy_n(weights.begin() +
                                static_cast<std::ptrdiff_t>(src_begin),
                            degree,
                            new_weights.begin() +
                                static_cast<std::ptrdiff_t>(dst_begin));
            }
        }
    });

    return Csr(std::move(new_offsets), std::move(new_neighbors),
               std::move(new_weights));
}

} // namespace

Csr
buildCsr(VertexId num_vertices, std::vector<CooEdge> edges,
         const BuildOptions &opts)
{
    if (opts.removeSelfLoops) {
        std::erase_if(edges,
                      [](const CooEdge &e) { return e.src == e.dst; });
    }

    const std::size_t num_edges = edges.size();
    if (num_edges >= UINT32_MAX) {
        // The chunked path's scatter cursors are 32-bit; >4G edges take
        // the wide serial path (the same stable counting sort, so the
        // result is still identical).
        Csr g = buildCsrSerialWide(num_vertices, edges, opts.keepWeights);
        edges.clear();
        edges.shrink_to_fit();
        if (!opts.removeDuplicates)
            return g;
        // Csr arrays are immutable; re-extract for the dedup pass.
        std::vector<EdgeId> o(g.offsetArray().begin(),
                              g.offsetArray().end());
        std::vector<VertexId> n(g.neighborArray().begin(),
                                g.neighborArray().end());
        std::vector<Weight> w(g.weightArray().begin(),
                              g.weightArray().end());
        return dedupePerVertex(num_vertices, std::move(o), std::move(n),
                               std::move(w), opts.keepWeights, opts.jobs);
    }
    const std::size_t chunks =
        chunkCount(num_edges, num_vertices, opts.jobs);
    const unsigned pool_jobs = static_cast<unsigned>(chunks);

    // Pass 1: per-chunk degree histograms (plus endpoint validation).
    // Chunks partition the edge list in order; each chunk only writes its
    // own histogram.
    std::vector<std::vector<std::uint32_t>> chunk_counts(chunks);
    common::parallelFor(chunks, pool_jobs, [&](std::size_t c) {
        auto &counts = chunk_counts[c];
        counts.assign(num_vertices, 0);
        const auto [begin, end] = chunkRange(num_edges, chunks, c);
        for (std::size_t e = begin; e < end; ++e) {
            const CooEdge &edge = edges[e];
            gds_require(edge.src < num_vertices &&
                            edge.dst < num_vertices,
                        CorruptInputError,
                        "edge (%u,%u) out of range (V=%u)", edge.src,
                        edge.dst, num_vertices);
            ++counts[edge.src];
        }
    });

    // Pass 2: blocked prefix sum. Block totals first (parallel), a serial
    // exclusive scan over the (few) block totals, then each block turns
    // its histogram columns into absolute scatter cursors: chunk c's
    // first edge for vertex v lands at offsets[v] plus everything chunks
    // before c contribute to v. That equality with the serial counting
    // sort's cursor is what makes the output byte-identical.
    std::vector<EdgeId> offsets(static_cast<std::size_t>(num_vertices) + 1,
                                0);
    std::vector<EdgeId> block_total(chunks, 0);
    common::parallelFor(chunks, pool_jobs, [&](std::size_t b) {
        const auto [v_begin, v_end] = chunkRange(num_vertices, chunks, b);
        EdgeId total = 0;
        for (std::size_t v = v_begin; v < v_end; ++v) {
            for (std::size_t c = 0; c < chunks; ++c)
                total += chunk_counts[c][v];
        }
        block_total[b] = total;
    });
    std::vector<EdgeId> block_base(chunks, 0);
    for (std::size_t b = 1; b < chunks; ++b)
        block_base[b] = block_base[b - 1] + block_total[b - 1];
    common::parallelFor(chunks, pool_jobs, [&](std::size_t b) {
        const auto [v_begin, v_end] = chunkRange(num_vertices, chunks, b);
        EdgeId running = block_base[b];
        for (std::size_t v = v_begin; v < v_end; ++v) {
            offsets[v] = running;
            for (std::size_t c = 0; c < chunks; ++c) {
                const std::uint32_t count = chunk_counts[c][v];
                chunk_counts[c][v] = static_cast<std::uint32_t>(running);
                running += count;
            }
        }
    });
    offsets[num_vertices] = num_edges;

    // Pass 3: scatter. Cursor slots are disjoint across chunks by
    // construction, so concurrent writes never touch the same index.
    std::vector<VertexId> neighbors(num_edges);
    std::vector<Weight> weights(opts.keepWeights ? num_edges : 0);
    common::parallelFor(chunks, pool_jobs, [&](std::size_t c) {
        auto &cursor = chunk_counts[c];
        const auto [begin, end] = chunkRange(num_edges, chunks, c);
        for (std::size_t e = begin; e < end; ++e) {
            const CooEdge &edge = edges[e];
            const EdgeId slot = cursor[edge.src]++;
            neighbors[slot] = edge.dst;
            if (opts.keepWeights)
                weights[slot] = edge.weight;
        }
    });
    chunk_counts.clear();
    edges.clear();
    edges.shrink_to_fit();

    if (!opts.removeDuplicates)
        return Csr(std::move(offsets), std::move(neighbors),
                   std::move(weights));

    return dedupePerVertex(num_vertices, std::move(offsets),
                           std::move(neighbors), std::move(weights),
                           opts.keepWeights, opts.jobs);
}

} // namespace gds::graph
