#include "graph/builder.hh"

#include <algorithm>

#include "common/error.hh"

namespace gds::graph
{

Csr
buildCsr(VertexId num_vertices, std::vector<CooEdge> edges,
         const BuildOptions &opts)
{
    if (opts.removeSelfLoops) {
        std::erase_if(edges,
                      [](const CooEdge &e) { return e.src == e.dst; });
    }

    // Counting sort by source vertex.
    std::vector<EdgeId> offsets(static_cast<std::size_t>(num_vertices) + 1,
                                0);
    for (const CooEdge &e : edges) {
        gds_require(e.src < num_vertices && e.dst < num_vertices,
                    CorruptInputError,
                   "edge (%u,%u) out of range (V=%u)", e.src, e.dst,
                   num_vertices);
        ++offsets[e.src + 1];
    }
    for (std::size_t v = 1; v < offsets.size(); ++v)
        offsets[v] += offsets[v - 1];

    std::vector<VertexId> neighbors(edges.size());
    std::vector<Weight> weights(opts.keepWeights ? edges.size() : 0);
    std::vector<EdgeId> cursor(offsets.begin(), offsets.end() - 1);
    for (const CooEdge &e : edges) {
        const EdgeId slot = cursor[e.src]++;
        neighbors[slot] = e.dst;
        if (opts.keepWeights)
            weights[slot] = e.weight;
    }

    if (!opts.removeDuplicates)
        return Csr(std::move(offsets), std::move(neighbors),
                   std::move(weights));

    // Deduplicate within each vertex's (now contiguous) edge list.
    std::vector<EdgeId> new_offsets(offsets.size(), 0);
    std::vector<VertexId> new_neighbors;
    std::vector<Weight> new_weights;
    new_neighbors.reserve(neighbors.size());
    if (opts.keepWeights)
        new_weights.reserve(neighbors.size());

    for (VertexId v = 0; v < num_vertices; ++v) {
        const EdgeId begin = offsets[v];
        const EdgeId end = offsets[v + 1];
        // Sort this vertex's slice by destination, carrying weights.
        std::vector<std::pair<VertexId, Weight>> slice;
        slice.reserve(end - begin);
        for (EdgeId e = begin; e < end; ++e) {
            slice.emplace_back(neighbors[e],
                               opts.keepWeights ? weights[e] : Weight{1});
        }
        std::stable_sort(slice.begin(), slice.end(),
                         [](const auto &a, const auto &b) {
                             return a.first < b.first;
                         });
        VertexId last = invalidVertex;
        for (const auto &[dst, w] : slice) {
            if (dst == last)
                continue;
            last = dst;
            new_neighbors.push_back(dst);
            if (opts.keepWeights)
                new_weights.push_back(w);
        }
        new_offsets[v + 1] = new_neighbors.size();
    }

    return Csr(std::move(new_offsets), std::move(new_neighbors),
               std::move(new_weights));
}

} // namespace gds::graph
