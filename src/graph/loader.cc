#include "graph/loader.hh"

#include <unistd.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/bitutil.hh"
#include "common/fsio.hh"
#include "graph/builder.hh"

namespace gds::graph
{

namespace
{

constexpr std::uint32_t binaryMagic = 0x42534447; // "GDSB" little-endian
constexpr std::uint32_t binaryVersionV1 = 1;
constexpr std::uint32_t binaryVersionV2 = 2;
/** Written as 0x01020304; reads back permuted on a foreign-endian host. */
constexpr std::uint32_t endianGuardValue = 0x01020304;
/** Section alignment unit; one x86/arm base page. */
constexpr std::uint32_t formatPageBytes = 4096;

/** On-disk descriptor of one array section (format v2). */
struct SectionDesc
{
    std::uint64_t fileOffset = 0;
    std::uint64_t byteLength = 0;
    std::uint64_t checksum = 0; ///< FNV-1a-64 of the section bytes
};

/**
 * Format v2 header, stored in the first formatPageBytes of the file
 * (remainder zero). All fields little-endian (the endianGuard rejects
 * foreign-endian files before any other field is trusted).
 */
struct HeaderV2
{
    std::uint32_t magic = binaryMagic;
    std::uint32_t version = binaryVersionV2;
    std::uint32_t endianGuard = endianGuardValue;
    std::uint32_t pageBytes = formatPageBytes;
    std::uint64_t numVertices = 0;
    std::uint64_t numEdges = 0;
    std::uint64_t flags = 0; ///< bit 0: weighted
    SectionDesc sections[3]; ///< offsets, neighbors, weights
    std::uint64_t headerChecksum = 0; ///< FNV-1a-64 of bytes [0, 112)
};

static_assert(sizeof(HeaderV2) == 120,
              "v2 header layout is part of the on-disk format");
static_assert(offsetof(HeaderV2, headerChecksum) == 112,
              "headerChecksum must close the hashed prefix");
static_assert(sizeof(HeaderV2) <= formatPageBytes);

constexpr std::uint64_t flagWeighted = 1;

template <typename T>
void
writePod(std::ofstream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

void
writeZeroPad(std::ofstream &os, std::uint64_t current, std::uint64_t target)
{
    static const char zeros[512] = {};
    while (current < target) {
        const std::uint64_t n =
            std::min<std::uint64_t>(sizeof(zeros), target - current);
        os.write(zeros, static_cast<std::streamsize>(n));
        current += n;
    }
}

template <typename T>
std::uint64_t
sectionChecksum(std::span<const T> data)
{
    return fnv1a64(data.data(), data.size_bytes());
}

/** Write format v2 to an already-open stream (shared by both savers). */
void
writeBinaryV2(const Csr &graph, std::ofstream &out)
{
    const auto offsets = graph.offsetArray();
    const auto neighbors = graph.neighborArray();
    const auto weights = graph.weightArray();

    HeaderV2 h;
    h.numVertices = graph.numVertices();
    h.numEdges = graph.numEdges();
    h.flags = graph.hasWeights() ? flagWeighted : 0;

    std::uint64_t cursor = formatPageBytes;
    auto place = [&cursor](SectionDesc &sec, std::uint64_t byte_length,
                           std::uint64_t checksum) {
        sec.fileOffset = cursor;
        sec.byteLength = byte_length;
        sec.checksum = checksum;
        cursor = alignUp(cursor + byte_length, formatPageBytes);
    };
    place(h.sections[0], offsets.size_bytes(), sectionChecksum(offsets));
    place(h.sections[1], neighbors.size_bytes(),
          sectionChecksum(neighbors));
    place(h.sections[2], weights.size_bytes(), sectionChecksum(weights));
    h.headerChecksum = fnv1a64(&h, offsetof(HeaderV2, headerChecksum));

    writePod(out, h);
    writeZeroPad(out, sizeof(HeaderV2), formatPageBytes);
    std::uint64_t written = formatPageBytes;
    auto emit = [&](const SectionDesc &sec, const char *bytes) {
        out.write(bytes, static_cast<std::streamsize>(sec.byteLength));
        written = sec.fileOffset + sec.byteLength;
        // Pad up to the next section's page boundary (the final section
        // ends the file unpadded).
        writeZeroPad(out, written,
                     std::min<std::uint64_t>(cursor,
                                             alignUp(written,
                                                     formatPageBytes)));
    };
    emit(h.sections[0],
         reinterpret_cast<const char *>(offsets.data()));
    emit(h.sections[1],
         reinterpret_cast<const char *>(neighbors.data()));
    out.write(reinterpret_cast<const char *>(weights.data()),
              static_cast<std::streamsize>(weights.size_bytes()));
}

void
writeBinaryFile(const Csr &graph, const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        fatal("cannot write graph to '%s'", path.c_str());
    writeBinaryV2(graph, out);
    if (!out)
        fatal("write failure on '%s'", path.c_str());
}

/**
 * Binary reads over untrusted v1 files: every length field is checked
 * against the bytes actually remaining in the file before anything is
 * allocated or read, so a truncated or corrupted header raises
 * CorruptInputError instead of a huge allocation or a silent short read.
 */
class BoundedReader
{
  public:
    BoundedReader(std::ifstream &stream, const std::string &file_path)
        : is(stream), path(file_path)
    {
        std::error_code ec;
        const auto size = std::filesystem::file_size(path, ec);
        if (ec)
            throw CorruptInputError(path, 0, "cannot determine file size");
        remaining = static_cast<std::uint64_t>(size);
    }

    template <typename T>
    T
    readPod(const char *what)
    {
        T value{};
        need(sizeof(T), what);
        is.read(reinterpret_cast<char *>(&value), sizeof(T));
        check(what);
        remaining -= sizeof(T);
        return value;
    }

    template <typename T>
    std::vector<T>
    readVec(const char *what)
    {
        const auto n = readPod<std::uint64_t>(what);
        if (n > remaining / sizeof(T)) {
            throw CorruptInputError(
                path, 0,
                gds::detail::vformat(
                    "%s length %llu exceeds the remaining %llu bytes", what,
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(remaining)));
        }
        std::vector<T> v(n);
        is.read(reinterpret_cast<char *>(v.data()),
                static_cast<std::streamsize>(n * sizeof(T)));
        check(what);
        remaining -= n * sizeof(T);
        return v;
    }

  private:
    void
    need(std::uint64_t bytes, const char *what)
    {
        if (bytes > remaining) {
            throw CorruptInputError(
                path, 0,
                gds::detail::vformat("truncated while reading %s", what));
        }
    }

    void
    check(const char *what)
    {
        if (!is) {
            throw CorruptInputError(
                path, 0,
                gds::detail::vformat("read failure on %s", what));
        }
    }

    std::ifstream &is;
    const std::string &path;
    std::uint64_t remaining = 0;
};

/** Legacy v1 body: three length-prefixed arrays after magic+version. */
Csr
loadBinaryV1(std::ifstream &in, const std::string &path)
{
    BoundedReader reader(in, path);
    (void)reader.readPod<std::uint32_t>("magic");
    (void)reader.readPod<std::uint32_t>("version");
    auto offsets = reader.readVec<EdgeId>("offset array");
    auto neighbors = reader.readVec<VertexId>("neighbor array");
    auto weights = reader.readVec<Weight>("weight array");

    // Pre-validate so corrupted contents surface as a typed error rather
    // than tripping the Csr constructor's internal invariants.
    const Status valid = Csr::validateArrays(offsets, neighbors, weights);
    if (!valid.ok())
        throw CorruptInputError(path, 0, valid.message());
    return Csr(std::move(offsets), std::move(neighbors),
               std::move(weights));
}

/** Parsed, bounds-checked v2 sections as typed views into a mapping. */
struct ParsedV2
{
    std::span<const EdgeId> offsets;
    std::span<const VertexId> neighbors;
    std::span<const Weight> weights;
};

/**
 * Validate the v2 header against the live mapping and return typed
 * section views. @p verify_checksums additionally re-hashes every
 * section (touching all pages).
 */
ParsedV2
parseV2(const common::MappedFile &file, bool verify_checksums)
{
    const std::string &path = file.path();
    const auto header_view = file.viewAt<HeaderV2>(0, 1);
    const HeaderV2 &h = header_view.front();

    gds_require(h.magic == binaryMagic, CorruptInputError,
                "%s: not a GDSB graph file", path.c_str());
    gds_require(h.endianGuard == endianGuardValue, CorruptInputError,
                "%s: wrong endianness (guard reads 0x%08x, expected "
                "0x%08x): the binary cache is not portable across "
                "byte orders",
                path.c_str(), h.endianGuard, endianGuardValue);
    gds_require(h.version == binaryVersionV2, CorruptInputError,
                "%s: unsupported GDSB version %u", path.c_str(),
                h.version);
    gds_require(h.pageBytes == formatPageBytes, CorruptInputError,
                "%s: unsupported section alignment %u", path.c_str(),
                h.pageBytes);
    const std::uint64_t expected_header =
        fnv1a64(&h, offsetof(HeaderV2, headerChecksum));
    gds_require(h.headerChecksum == expected_header, CorruptInputError,
                "%s: header checksum mismatch (stored %016llx, computed "
                "%016llx)",
                path.c_str(),
                static_cast<unsigned long long>(h.headerChecksum),
                static_cast<unsigned long long>(expected_header));

    gds_require(h.numVertices < invalidVertex, CorruptInputError,
                "%s: vertex count %llu overflows 32-bit ids",
                path.c_str(),
                static_cast<unsigned long long>(h.numVertices));
    const std::uint64_t v_count = h.numVertices;
    const std::uint64_t e_count = h.numEdges;
    gds_require(h.sections[0].byteLength ==
                    (v_count + 1) * sizeof(EdgeId),
                CorruptInputError,
                "%s: offset section length %llu does not match V=%llu",
                path.c_str(),
                static_cast<unsigned long long>(
                    h.sections[0].byteLength),
                static_cast<unsigned long long>(v_count));
    gds_require(h.sections[1].byteLength == e_count * sizeof(VertexId),
                CorruptInputError,
                "%s: neighbor section length %llu does not match E=%llu",
                path.c_str(),
                static_cast<unsigned long long>(
                    h.sections[1].byteLength),
                static_cast<unsigned long long>(e_count));
    const bool weighted = (h.flags & flagWeighted) != 0;
    gds_require(h.sections[2].byteLength ==
                    (weighted ? e_count * sizeof(Weight) : 0),
                CorruptInputError,
                "%s: weight section length %llu inconsistent with "
                "weighted flag %d",
                path.c_str(),
                static_cast<unsigned long long>(
                    h.sections[2].byteLength),
                weighted ? 1 : 0);

    // viewAt bounds-checks each section against the mapping, so a file
    // truncated below what its header promises ("short map") raises
    // CorruptInputError here instead of SIGBUS on first access.
    ParsedV2 parsed;
    parsed.offsets = file.viewAt<EdgeId>(h.sections[0].fileOffset,
                                         v_count + 1);
    parsed.neighbors = file.viewAt<VertexId>(h.sections[1].fileOffset,
                                             e_count);
    parsed.weights = file.viewAt<Weight>(h.sections[2].fileOffset,
                                         weighted ? e_count : 0);

    if (verify_checksums) {
        const char *names[3] = {"offset", "neighbor", "weight"};
        const std::uint64_t computed[3] = {
            sectionChecksum(parsed.offsets),
            sectionChecksum(parsed.neighbors),
            sectionChecksum(parsed.weights),
        };
        for (int i = 0; i < 3; ++i) {
            gds_require(computed[i] == h.sections[i].checksum,
                        CorruptInputError,
                        "%s: %s section checksum mismatch (stored "
                        "%016llx, computed %016llx)",
                        path.c_str(), names[i],
                        static_cast<unsigned long long>(
                            h.sections[i].checksum),
                        static_cast<unsigned long long>(computed[i]));
        }
    }
    return parsed;
}

/** Magic+version sniff shared by both loaders. 0 on a too-short file. */
std::uint32_t
sniffVersion(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw ConfigError("cannot open graph '" + path + "'");
    std::uint32_t magic_and_version[2] = {0, 0};
    in.read(reinterpret_cast<char *>(magic_and_version),
            sizeof(magic_and_version));
    if (!in)
        throw CorruptInputError(path, 0,
                                "truncated while reading magic/version");
    if (magic_and_version[0] != binaryMagic)
        throw CorruptInputError(path, 0, "not a GDSB graph file");
    return magic_and_version[1];
}

} // namespace

Csr
loadEdgeList(const std::string &path, VertexId num_vertices, bool weighted)
{
    std::ifstream in(path);
    if (!in)
        throw ConfigError("cannot open edge list '" + path + "'");

    std::vector<CooEdge> edges;
    VertexId max_vertex = 0;
    std::string line;
    std::uint64_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream iss(line);
        std::uint64_t src = 0;
        std::uint64_t dst = 0;
        std::uint64_t w = 1;
        if (!(iss >> src >> dst)) {
            throw CorruptInputError(path, line_number,
                                    "malformed edge-list line '" + line +
                                        "'");
        }
        if (weighted && !(iss >> w)) {
            throw CorruptInputError(path, line_number,
                                    "missing weight in '" + line + "'");
        }
        if (src >= invalidVertex || dst >= invalidVertex) {
            throw CorruptInputError(path, line_number,
                                    "vertex id overflows 32 bits in '" +
                                        line + "'");
        }
        edges.push_back(CooEdge{static_cast<VertexId>(src),
                                static_cast<VertexId>(dst),
                                static_cast<Weight>(w)});
        max_vertex = std::max({max_vertex, static_cast<VertexId>(src),
                               static_cast<VertexId>(dst)});
    }

    if (num_vertices == 0)
        num_vertices = edges.empty() ? 0 : max_vertex + 1;
    if (!edges.empty() && max_vertex >= num_vertices) {
        throw CorruptInputError(
            path, 0,
            gds::detail::vformat("endpoint %u out of range (V=%u)",
                                 max_vertex, num_vertices));
    }

    BuildOptions opts;
    opts.keepWeights = weighted;
    return buildCsr(num_vertices, std::move(edges), opts);
}

void
saveBinary(const Csr &graph, const std::string &path)
{
    writeBinaryFile(graph, path);
}

void
saveBinaryAtomic(const Csr &graph, const std::string &path)
{
    const std::string tmp_file =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    writeBinaryFile(graph, tmp_file);
    // Durable publish (fsync + rename + parent-dir fsync): a power loss
    // can otherwise leave a zero-length file under the final name, which
    // every later run would have to detect and regenerate.
    if (!durableRename(tmp_file, path)) {
        std::error_code ec;
        std::filesystem::remove(tmp_file, ec);
    }
}

Csr
loadBinary(const std::string &path)
{
    const std::uint32_t version = sniffVersion(path);
    if (version == binaryVersionV1) {
        std::ifstream in(path, std::ios::binary);
        if (!in)
            throw ConfigError("cannot open graph '" + path + "'");
        return loadBinaryV1(in, path);
    }
    if (version != binaryVersionV2) {
        throw CorruptInputError(
            path, 0,
            gds::detail::vformat("unsupported GDSB version %u", version));
    }
    // v2 heap path: map, verify everything, copy into owned vectors. The
    // mapping is released on return; only the heap copies survive.
    const auto file = common::MappedFile::open(path);
    file->adviseSequential(0, file->size());
    const ParsedV2 parsed = parseV2(*file, /*verify_checksums=*/true);
    std::vector<EdgeId> offsets(parsed.offsets.begin(),
                                parsed.offsets.end());
    std::vector<VertexId> neighbors(parsed.neighbors.begin(),
                                    parsed.neighbors.end());
    std::vector<Weight> weights(parsed.weights.begin(),
                                parsed.weights.end());
    const Status valid = Csr::validateArrays(offsets, neighbors, weights);
    if (!valid.ok())
        throw CorruptInputError(path, 0, valid.message());
    return Csr(std::move(offsets), std::move(neighbors),
               std::move(weights));
}

Csr
loadBinaryMapped(const std::string &path, const MapOptions &opts)
{
    const std::uint32_t version = sniffVersion(path);
    if (version == binaryVersionV1) {
        // v1 sections are neither aligned nor checksummed; serve the
        // legacy file through the heap loader instead.
        return loadBinary(path);
    }
    if (version != binaryVersionV2) {
        throw CorruptInputError(
            path, 0,
            gds::detail::vformat("unsupported GDSB version %u", version));
    }
    auto file = common::MappedFile::open(path);
    const ParsedV2 parsed = parseV2(*file, opts.verify);
    // The offset array is walked by every engine's per-vertex loop;
    // neighbours stream sequentially during traversal.
    file->adviseWillNeed(0, formatPageBytes +
                                parsed.offsets.size_bytes());
    file->adviseSequential(0, file->size());
    return Csr::fromMapping(parsed.offsets, parsed.neighbors,
                            parsed.weights, std::move(file),
                            /*deep_validate=*/opts.verify);
}

} // namespace gds::graph
