#include "graph/loader.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "graph/builder.hh"

namespace gds::graph
{

namespace
{

constexpr std::uint32_t binaryMagic = 0x42534447; // "GDSB" little-endian
constexpr std::uint32_t binaryVersion = 1;

template <typename T>
void
writePod(std::ofstream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
void
readPod(std::ifstream &is, T &value)
{
    is.read(reinterpret_cast<char *>(&value), sizeof(T));
}

template <typename T>
void
writeVec(std::ofstream &os, const std::vector<T> &v)
{
    const std::uint64_t n = v.size();
    writePod(os, n);
    os.write(reinterpret_cast<const char *>(v.data()),
             static_cast<std::streamsize>(n * sizeof(T)));
}

template <typename T>
std::vector<T>
readVec(std::ifstream &is)
{
    std::uint64_t n = 0;
    readPod(is, n);
    std::vector<T> v(n);
    is.read(reinterpret_cast<char *>(v.data()),
            static_cast<std::streamsize>(n * sizeof(T)));
    return v;
}

} // namespace

Csr
loadEdgeList(const std::string &path, VertexId num_vertices, bool weighted)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open edge list '%s'", path.c_str());

    std::vector<CooEdge> edges;
    VertexId max_vertex = 0;
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream iss(line);
        std::uint64_t src = 0;
        std::uint64_t dst = 0;
        std::uint64_t w = 1;
        if (!(iss >> src >> dst))
            fatal("malformed edge-list line in '%s': '%s'", path.c_str(),
                  line.c_str());
        if (weighted && !(iss >> w))
            fatal("missing weight in '%s': '%s'", path.c_str(),
                  line.c_str());
        edges.push_back(CooEdge{static_cast<VertexId>(src),
                                static_cast<VertexId>(dst),
                                static_cast<Weight>(w)});
        max_vertex = std::max({max_vertex, static_cast<VertexId>(src),
                               static_cast<VertexId>(dst)});
    }

    if (num_vertices == 0)
        num_vertices = edges.empty() ? 0 : max_vertex + 1;

    BuildOptions opts;
    opts.keepWeights = weighted;
    return buildCsr(num_vertices, std::move(edges), opts);
}

void
saveBinary(const Csr &graph, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write graph to '%s'", path.c_str());
    writePod(out, binaryMagic);
    writePod(out, binaryVersion);
    writeVec(out, graph.offsetArray());
    writeVec(out, graph.neighborArray());
    writeVec(out, graph.weightArray());
    if (!out)
        fatal("write failure on '%s'", path.c_str());
}

Csr
loadBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        fatal("cannot open graph '%s'", path.c_str());
    std::uint32_t magic = 0;
    std::uint32_t version = 0;
    readPod(in, magic);
    readPod(in, version);
    if (magic != binaryMagic)
        fatal("'%s' is not a GDSB graph file", path.c_str());
    if (version != binaryVersion)
        fatal("'%s' has unsupported version %u", path.c_str(), version);
    auto offsets = readVec<EdgeId>(in);
    auto neighbors = readVec<VertexId>(in);
    auto weights = readVec<Weight>(in);
    if (!in)
        fatal("truncated graph file '%s'", path.c_str());
    return Csr(std::move(offsets), std::move(neighbors), std::move(weights));
}

} // namespace gds::graph
