#include "graph/loader.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/fsio.hh"
#include "graph/builder.hh"

namespace gds::graph
{

namespace
{

constexpr std::uint32_t binaryMagic = 0x42534447; // "GDSB" little-endian
constexpr std::uint32_t binaryVersion = 1;

template <typename T>
void
writePod(std::ofstream &os, const T &value)
{
    os.write(reinterpret_cast<const char *>(&value), sizeof(T));
}

template <typename T>
void
writeVec(std::ofstream &os, const std::vector<T> &v)
{
    const std::uint64_t n = v.size();
    writePod(os, n);
    os.write(reinterpret_cast<const char *>(v.data()),
             static_cast<std::streamsize>(n * sizeof(T)));
}

/**
 * Binary reads over untrusted files: every length field is checked
 * against the bytes actually remaining in the file before anything is
 * allocated or read, so a truncated or corrupted header raises
 * CorruptInputError instead of a huge allocation or a silent short read.
 */
class BoundedReader
{
  public:
    BoundedReader(std::ifstream &stream, const std::string &file_path)
        : is(stream), path(file_path)
    {
        std::error_code ec;
        const auto size = std::filesystem::file_size(path, ec);
        if (ec)
            throw CorruptInputError(path, 0, "cannot determine file size");
        remaining = static_cast<std::uint64_t>(size);
    }

    template <typename T>
    T
    readPod(const char *what)
    {
        T value{};
        need(sizeof(T), what);
        is.read(reinterpret_cast<char *>(&value), sizeof(T));
        check(what);
        remaining -= sizeof(T);
        return value;
    }

    template <typename T>
    std::vector<T>
    readVec(const char *what)
    {
        const auto n = readPod<std::uint64_t>(what);
        if (n > remaining / sizeof(T)) {
            throw CorruptInputError(
                path, 0,
                gds::detail::vformat(
                    "%s length %llu exceeds the remaining %llu bytes", what,
                    static_cast<unsigned long long>(n),
                    static_cast<unsigned long long>(remaining)));
        }
        std::vector<T> v(n);
        is.read(reinterpret_cast<char *>(v.data()),
                static_cast<std::streamsize>(n * sizeof(T)));
        check(what);
        remaining -= n * sizeof(T);
        return v;
    }

  private:
    void
    need(std::uint64_t bytes, const char *what)
    {
        if (bytes > remaining) {
            throw CorruptInputError(
                path, 0,
                gds::detail::vformat("truncated while reading %s", what));
        }
    }

    void
    check(const char *what)
    {
        if (!is) {
            throw CorruptInputError(
                path, 0,
                gds::detail::vformat("read failure on %s", what));
        }
    }

    std::ifstream &is;
    const std::string &path;
    std::uint64_t remaining = 0;
};

} // namespace

Csr
loadEdgeList(const std::string &path, VertexId num_vertices, bool weighted)
{
    std::ifstream in(path);
    if (!in)
        throw ConfigError("cannot open edge list '" + path + "'");

    std::vector<CooEdge> edges;
    VertexId max_vertex = 0;
    std::string line;
    std::uint64_t line_number = 0;
    while (std::getline(in, line)) {
        ++line_number;
        if (line.empty() || line[0] == '#' || line[0] == '%')
            continue;
        std::istringstream iss(line);
        std::uint64_t src = 0;
        std::uint64_t dst = 0;
        std::uint64_t w = 1;
        if (!(iss >> src >> dst)) {
            throw CorruptInputError(path, line_number,
                                    "malformed edge-list line '" + line +
                                        "'");
        }
        if (weighted && !(iss >> w)) {
            throw CorruptInputError(path, line_number,
                                    "missing weight in '" + line + "'");
        }
        if (src >= invalidVertex || dst >= invalidVertex) {
            throw CorruptInputError(path, line_number,
                                    "vertex id overflows 32 bits in '" +
                                        line + "'");
        }
        edges.push_back(CooEdge{static_cast<VertexId>(src),
                                static_cast<VertexId>(dst),
                                static_cast<Weight>(w)});
        max_vertex = std::max({max_vertex, static_cast<VertexId>(src),
                               static_cast<VertexId>(dst)});
    }

    if (num_vertices == 0)
        num_vertices = edges.empty() ? 0 : max_vertex + 1;
    if (!edges.empty() && max_vertex >= num_vertices) {
        throw CorruptInputError(
            path, 0,
            gds::detail::vformat("endpoint %u out of range (V=%u)",
                                 max_vertex, num_vertices));
    }

    BuildOptions opts;
    opts.keepWeights = weighted;
    return buildCsr(num_vertices, std::move(edges), opts);
}

void
saveBinary(const Csr &graph, const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        fatal("cannot write graph to '%s'", path.c_str());
    writePod(out, binaryMagic);
    writePod(out, binaryVersion);
    writeVec(out, graph.offsetArray());
    writeVec(out, graph.neighborArray());
    writeVec(out, graph.weightArray());
    if (!out)
        fatal("write failure on '%s'", path.c_str());
}

void
saveBinaryAtomic(const Csr &graph, const std::string &path)
{
    const std::string tmp_file =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    saveBinary(graph, tmp_file);
    // Durable publish (fsync + rename + parent-dir fsync): a power loss
    // can otherwise leave a zero-length file under the final name, which
    // every later run would have to detect and regenerate.
    if (!durableRename(tmp_file, path)) {
        std::error_code ec;
        std::filesystem::remove(tmp_file, ec);
    }
}

Csr
loadBinary(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw ConfigError("cannot open graph '" + path + "'");
    BoundedReader reader(in, path);
    const auto magic = reader.readPod<std::uint32_t>("magic");
    const auto version = reader.readPod<std::uint32_t>("version");
    if (magic != binaryMagic)
        throw CorruptInputError(path, 0, "not a GDSB graph file");
    if (version != binaryVersion) {
        throw CorruptInputError(
            path, 0,
            gds::detail::vformat("unsupported GDSB version %u", version));
    }
    auto offsets = reader.readVec<EdgeId>("offset array");
    auto neighbors = reader.readVec<VertexId>("neighbor array");
    auto weights = reader.readVec<Weight>("weight array");

    // Pre-validate so corrupted contents surface as a typed error rather
    // than tripping the Csr constructor's internal invariants.
    const Status valid = Csr::validateArrays(offsets, neighbors, weights);
    if (!valid.ok())
        throw CorruptInputError(path, 0, valid.message());
    return Csr(std::move(offsets), std::move(neighbors), std::move(weights));
}

} // namespace gds::graph
