/**
 * @file
 * Registry of the paper's evaluation graphs (Table 4).
 *
 * The six real-world SuiteSparse graphs are not redistributable inside this
 * repository, so each is replaced by a deterministic synthetic *surrogate*
 * with matching vertex count, edge count and heavy-tailed degree skew (see
 * DESIGN.md, Substitutions). The five RMAT graphs are generated with the
 * Graph500 generator exactly as in the paper.
 *
 * All sizes are divided by the global scale divisor (environment variable
 * GDS_SCALE, default 16) so the full experiment matrix runs on a laptop;
 * set GDS_SCALE=1 to evaluate at paper-native sizes.
 */

#pragma once

#include <string>
#include <vector>

#include "graph/csr.hh"

namespace gds::graph
{

/** How a dataset is synthesized. */
enum class DatasetKind
{
    PowerLawSurrogate, ///< Chung-Lu/Zipf surrogate of a real-world graph
    Rmat,              ///< Graph500 RMAT
};

/** One row of Table 4. */
struct DatasetSpec
{
    std::string name;        ///< short tag used in the paper (FR, PK, ...)
    std::string description; ///< Table 4 "Brief Explanation"
    DatasetKind kind;
    /** Paper-native vertex count (before scaling). */
    std::uint64_t paperVertices;
    /** Paper-native edge count (before scaling). */
    std::uint64_t paperEdges;
    /** Zipf alpha for surrogates (degree-skew knob). */
    double alpha = 0.6;
    /** RMAT scale for RMAT datasets (before scaling). */
    unsigned rmatScale = 0;
    /** Edges per vertex for RMAT datasets. */
    unsigned rmatEdgeFactor = 16;
    std::uint64_t seed = 1;

    /** Vertex count after dividing by the scale divisor. */
    std::uint64_t scaledVertices(unsigned scale_divisor) const;
    /** Edge count after dividing by the scale divisor. */
    std::uint64_t scaledEdges(unsigned scale_divisor) const;
};

/** The six real-world graph surrogates of Table 4 (FR PK LJ HO IN OR). */
const std::vector<DatasetSpec> &realWorldDatasets();

/** The five RMAT datasets of Table 4 (RM22..RM26). */
const std::vector<DatasetSpec> &rmatDatasets();

/** Look up any Table 4 dataset by tag; fatal() if unknown. */
const DatasetSpec &datasetByName(const std::string &name);

/** Read the GDS_SCALE environment variable (default 16, minimum 1). */
unsigned datasetScaleDivisor();

/**
 * Materialize a dataset at the given scale divisor.
 *
 * @param spec dataset descriptor
 * @param scale_divisor divide |V| and |E| by this
 * @param weighted attach deterministic random weights in [1,255]
 */
Csr makeDataset(const DatasetSpec &spec, unsigned scale_divisor,
                bool weighted, unsigned jobs = 0);

} // namespace gds::graph
