#include "graph/csr.hh"

#include <algorithm>

#include "common/rng.hh"

namespace gds::graph
{

Csr::Csr(std::vector<EdgeId> offset_array,
         std::vector<VertexId> neighbor_array,
         std::vector<Weight> weight_array)
    : offsets(std::move(offset_array)),
      neighbors(std::move(neighbor_array)),
      weights(std::move(weight_array))
{
    gds_assert(!offsets.empty(), "offset array must have V+1 entries");
    gds_assert(offsets.front() == 0, "offset array must start at 0");
    gds_assert(offsets.back() == neighbors.size(),
               "offset array end (%llu) must equal edge count (%zu)",
               static_cast<unsigned long long>(offsets.back()),
               neighbors.size());
    gds_assert(std::is_sorted(offsets.begin(), offsets.end()),
               "offset array must be non-decreasing");
    gds_assert(weights.empty() || weights.size() == neighbors.size(),
               "weight array size mismatch");
    const VertexId v_count = numVertices();
    for (VertexId dst : neighbors) {
        gds_assert(dst < v_count, "edge destination %u out of range (V=%u)",
                   dst, v_count);
    }
}

DegreeStats
Csr::degreeStats() const
{
    DegreeStats ds;
    const VertexId v_count = numVertices();
    if (v_count == 0)
        return ds;
    std::uint64_t min_deg = outDegree(0);
    std::uint64_t max_deg = 0;
    std::uint64_t zero_count = 0;
    for (VertexId v = 0; v < v_count; ++v) {
        const std::uint64_t d = outDegree(v);
        min_deg = std::min(min_deg, d);
        max_deg = std::max(max_deg, d);
        if (d == 0)
            ++zero_count;
    }
    ds.minDegree = min_deg;
    ds.maxDegree = max_deg;
    ds.meanDegree = static_cast<double>(numEdges()) / v_count;
    ds.zeroFraction = static_cast<double>(zero_count) / v_count;
    return ds;
}

Csr
Csr::withRandomWeights(std::uint64_t seed) const
{
    Rng rng(seed);
    std::vector<Weight> w(neighbors.size());
    for (auto &value : w)
        value = static_cast<Weight>(1 + rng.below(255));
    return Csr(offsets, neighbors, std::move(w));
}

Csr
Csr::withoutWeights() const
{
    return Csr(offsets, neighbors, {});
}

} // namespace gds::graph
