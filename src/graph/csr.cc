#include "graph/csr.hh"

#include <algorithm>

#include "common/rng.hh"

namespace gds::graph
{

Status
Csr::validateArrays(const std::vector<EdgeId> &offset_array,
                    const std::vector<VertexId> &neighbor_array,
                    const std::vector<Weight> &weight_array)
{
    auto corrupt = [](std::string msg) {
        return Status::failure(ErrorCode::CorruptInput, std::move(msg));
    };
    if (offset_array.empty())
        return corrupt("offset array must have V+1 entries");
    if (offset_array.front() != 0)
        return corrupt("offset array must start at 0");
    if (offset_array.back() != neighbor_array.size()) {
        return corrupt(gds::detail::vformat(
            "offset array end (%llu) must equal edge count (%zu)",
            static_cast<unsigned long long>(offset_array.back()),
            neighbor_array.size()));
    }
    if (!std::is_sorted(offset_array.begin(), offset_array.end()))
        return corrupt("offset array must be non-decreasing");
    if (!weight_array.empty() &&
        weight_array.size() != neighbor_array.size()) {
        return corrupt(gds::detail::vformat(
            "weight array size mismatch (%zu weights, %zu edges)",
            weight_array.size(), neighbor_array.size()));
    }
    const VertexId v_count =
        static_cast<VertexId>(offset_array.size() - 1);
    for (VertexId dst : neighbor_array) {
        if (dst >= v_count) {
            return corrupt(gds::detail::vformat(
                "edge destination %u out of range (V=%u)", dst, v_count));
        }
    }
    return {};
}

Csr::Csr(std::vector<EdgeId> offset_array,
         std::vector<VertexId> neighbor_array,
         std::vector<Weight> weight_array)
    : offsets(std::move(offset_array)),
      neighbors(std::move(neighbor_array)),
      weights(std::move(weight_array))
{
    // Constructing from malformed arrays raises the typed error directly,
    // so both untrusted sources (file loaders) and buggy builders surface
    // as a recordable CorruptInputError instead of aborting the harness.
    const Status valid = validateArrays(offsets, neighbors, weights);
    if (!valid.ok())
        throwStatus(valid);
}

DegreeStats
Csr::degreeStats() const
{
    DegreeStats ds;
    const VertexId v_count = numVertices();
    if (v_count == 0)
        return ds;
    std::uint64_t min_deg = outDegree(0);
    std::uint64_t max_deg = 0;
    std::uint64_t zero_count = 0;
    for (VertexId v = 0; v < v_count; ++v) {
        const std::uint64_t d = outDegree(v);
        min_deg = std::min(min_deg, d);
        max_deg = std::max(max_deg, d);
        if (d == 0)
            ++zero_count;
    }
    ds.minDegree = min_deg;
    ds.maxDegree = max_deg;
    ds.meanDegree = static_cast<double>(numEdges()) / v_count;
    ds.zeroFraction = static_cast<double>(zero_count) / v_count;
    return ds;
}

Csr
Csr::withRandomWeights(std::uint64_t seed) const
{
    Rng rng(seed);
    std::vector<Weight> w(neighbors.size());
    for (auto &value : w)
        value = static_cast<Weight>(1 + rng.below(255));
    return Csr(offsets, neighbors, std::move(w));
}

Csr
Csr::withoutWeights() const
{
    return Csr(offsets, neighbors, {});
}

} // namespace gds::graph
