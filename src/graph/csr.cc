#include "graph/csr.hh"

#include <algorithm>

#include "common/rng.hh"

namespace gds::graph
{

Status
Csr::validateArrays(std::span<const EdgeId> offset_array,
                    std::span<const VertexId> neighbor_array,
                    std::span<const Weight> weight_array)
{
    auto corrupt = [](std::string msg) {
        return Status::failure(ErrorCode::CorruptInput, std::move(msg));
    };
    if (offset_array.empty())
        return corrupt("offset array must have V+1 entries");
    if (offset_array.front() != 0)
        return corrupt("offset array must start at 0");
    if (offset_array.back() != neighbor_array.size()) {
        return corrupt(gds::detail::vformat(
            "offset array end (%llu) must equal edge count (%zu)",
            static_cast<unsigned long long>(offset_array.back()),
            neighbor_array.size()));
    }
    if (!std::is_sorted(offset_array.begin(), offset_array.end()))
        return corrupt("offset array must be non-decreasing");
    if (!weight_array.empty() &&
        weight_array.size() != neighbor_array.size()) {
        return corrupt(gds::detail::vformat(
            "weight array size mismatch (%zu weights, %zu edges)",
            weight_array.size(), neighbor_array.size()));
    }
    const VertexId v_count =
        static_cast<VertexId>(offset_array.size() - 1);
    for (VertexId dst : neighbor_array) {
        if (dst >= v_count) {
            return corrupt(gds::detail::vformat(
                "edge destination %u out of range (V=%u)", dst, v_count));
        }
    }
    return {};
}

Csr::Csr() : offsets_store(1, 0)
{
    offsets = offsets_store;
}

Csr::Csr(std::vector<EdgeId> offset_array,
         std::vector<VertexId> neighbor_array,
         std::vector<Weight> weight_array)
    : offsets_store(std::move(offset_array)),
      neighbors_store(std::move(neighbor_array)),
      weights_store(std::move(weight_array))
{
    offsets = offsets_store;
    neighbors = neighbors_store;
    weights = weights_store;
    // Constructing from malformed arrays raises the typed error directly,
    // so both untrusted sources (file loaders) and buggy builders surface
    // as a recordable CorruptInputError instead of aborting the harness.
    const Status valid = validateArrays(offsets, neighbors, weights);
    if (!valid.ok())
        throwStatus(valid);
}

Csr
Csr::fromMapping(std::span<const EdgeId> offset_view,
                 std::span<const VertexId> neighbor_view,
                 std::span<const Weight> weight_view,
                 std::shared_ptr<const common::MappedFile> backing_file,
                 bool deep_validate)
{
    const std::string path =
        backing_file ? backing_file->path() : "<mapping>";
    // Cheap invariants first: they touch at most the first and last page
    // of each section, preserving the zero-copy fast path.
    gds_require(!offset_view.empty(), CorruptInputError,
                "%s: offset array must have V+1 entries", path.c_str());
    gds_require(offset_view.front() == 0, CorruptInputError,
                "%s: offset array must start at 0", path.c_str());
    gds_require(offset_view.back() == neighbor_view.size(),
                CorruptInputError,
                "%s: offset array end (%llu) must equal edge count (%zu)",
                path.c_str(),
                static_cast<unsigned long long>(offset_view.back()),
                neighbor_view.size());
    gds_require(weight_view.empty() ||
                    weight_view.size() == neighbor_view.size(),
                CorruptInputError,
                "%s: weight array size mismatch (%zu weights, %zu edges)",
                path.c_str(), weight_view.size(), neighbor_view.size());

    Csr g;
    g.offsets_store.clear();
    g.offsets = offset_view;
    g.neighbors = neighbor_view;
    g.weights = weight_view;
    g.backing = std::move(backing_file);

    if (deep_validate) {
        const Status valid = validateArrays(offset_view, neighbor_view,
                                            weight_view);
        if (!valid.ok())
            throw CorruptInputError(path, 0, valid.message());
    }
    return g;
}

void
Csr::rebindOwnedViews(const Csr &other)
{
    // A view is owned iff it pointed into the source's own store (an
    // empty view trivially counts as owned); mapped views keep aliasing
    // the shared mapping, which `backing` keeps alive.
    if (other.offsets.empty() ||
        other.offsets.data() == other.offsets_store.data())
        offsets = offsets_store;
    if (other.neighbors.empty() ||
        other.neighbors.data() == other.neighbors_store.data())
        neighbors = neighbors_store;
    if (other.weights.empty() ||
        other.weights.data() == other.weights_store.data())
        weights = weights_store;
}

Csr::Csr(const Csr &other)
    : offsets_store(other.offsets_store),
      neighbors_store(other.neighbors_store),
      weights_store(other.weights_store),
      offsets(other.offsets),
      neighbors(other.neighbors),
      weights(other.weights),
      backing(other.backing)
{
    rebindOwnedViews(other);
}

Csr &
Csr::operator=(const Csr &other)
{
    if (this != &other) {
        Csr tmp(other);
        *this = std::move(tmp);
    }
    return *this;
}

std::uint64_t
Csr::heapBytes() const
{
    return offsets_store.size() * sizeof(EdgeId) +
           neighbors_store.size() * sizeof(VertexId) +
           weights_store.size() * sizeof(Weight);
}

std::uint64_t
Csr::mappedBytes() const
{
    return backing ? backing->size() : 0;
}

DegreeStats
Csr::degreeStats() const
{
    DegreeStats ds;
    const VertexId v_count = numVertices();
    if (v_count == 0)
        return ds;
    std::uint64_t min_deg = outDegree(0);
    std::uint64_t max_deg = 0;
    std::uint64_t zero_count = 0;
    for (VertexId v = 0; v < v_count; ++v) {
        const std::uint64_t d = outDegree(v);
        min_deg = std::min(min_deg, d);
        max_deg = std::max(max_deg, d);
        if (d == 0)
            ++zero_count;
    }
    ds.minDegree = min_deg;
    ds.maxDegree = max_deg;
    ds.meanDegree = static_cast<double>(numEdges()) / v_count;
    ds.zeroFraction = static_cast<double>(zero_count) / v_count;
    return ds;
}

Csr
Csr::withRandomWeights(std::uint64_t seed) const
{
    Rng rng(seed);
    std::vector<Weight> w(neighbors.size());
    for (auto &value : w)
        value = static_cast<Weight>(1 + rng.below(255));
    if (!isMapped()) {
        return Csr(std::vector<EdgeId>(offsets.begin(), offsets.end()),
                   std::vector<VertexId>(neighbors.begin(),
                                         neighbors.end()),
                   std::move(w));
    }
    // Zero-copy hybrid: keep serving offsets/neighbours from the mapping
    // and own only the new weight array.
    Csr g = fromMapping(offsets, neighbors, {}, backing,
                        /*deep_validate=*/false);
    g.weights_store = std::move(w);
    g.weights = g.weights_store;
    return g;
}

Csr
Csr::withoutWeights() const
{
    if (!isMapped()) {
        return Csr(std::vector<EdgeId>(offsets.begin(), offsets.end()),
                   std::vector<VertexId>(neighbors.begin(),
                                         neighbors.end()),
                   {});
    }
    return fromMapping(offsets, neighbors, {}, backing,
                       /*deep_validate=*/false);
}

} // namespace gds::graph
