#include "graph/slicer.hh"

#include "common/bitutil.hh"
#include "common/error.hh"

namespace gds::graph
{

VertexId
numSlices(VertexId num_vertices, VertexId max_dst_vertices)
{
    gds_require(max_dst_vertices > 0, ConfigError,
                "slice capacity must be positive");
    if (num_vertices == 0)
        return 1;
    return static_cast<VertexId>(
        ceilDiv<std::uint64_t>(num_vertices, max_dst_vertices));
}

std::vector<Slice>
sliceByDestination(const Csr &graph, VertexId max_dst_vertices)
{
    const VertexId v_count = graph.numVertices();
    const VertexId slice_count = numSlices(v_count, max_dst_vertices);
    std::vector<Slice> slices;
    slices.reserve(slice_count);

    const bool weighted = graph.hasWeights();
    for (VertexId s = 0; s < slice_count; ++s) {
        const VertexId lo = s * max_dst_vertices;
        const VertexId hi =
            std::min<std::uint64_t>(static_cast<std::uint64_t>(lo) +
                                        max_dst_vertices,
                                    v_count);

        std::vector<EdgeId> offsets(static_cast<std::size_t>(v_count) + 1,
                                    0);
        std::vector<VertexId> neighbors;
        std::vector<Weight> weights;
        for (VertexId u = 0; u < v_count; ++u) {
            const auto nbrs = graph.neighborsOf(u);
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
                const VertexId dst = nbrs[i];
                if (dst >= lo && dst < hi) {
                    neighbors.push_back(dst);
                    if (weighted)
                        weights.push_back(graph.weightsOf(u)[i]);
                }
            }
            offsets[u + 1] = neighbors.size();
        }
        slices.push_back(Slice{lo, hi,
                               Csr(std::move(offsets), std::move(neighbors),
                                   std::move(weights))});
    }
    return slices;
}

} // namespace gds::graph
