/**
 * @file
 * Graph file I/O: whitespace-separated edge-list text files ("src dst
 * [weight]" per line, '#' or '%' comments) and a binary CSR format for
 * fast reload of generated surrogates.
 *
 * Binary format v2 (magic "GDSB", version 2) is built for zero-copy
 * serving: a 4 KiB header page (endianness guard, |V|/|E|/flags, a
 * section table with FNV-1a-64 per-section checksums, and a header
 * checksum) followed by the offset, neighbour and weight arrays, each
 * page-aligned so they can be handed to the simulators as typed views
 * into a read-only file mapping. Version 1 files (the pre-v2 cache
 * format) still load through a fallback reader.
 */

#pragma once

#include <string>

#include "graph/csr.hh"

namespace gds::graph
{

/** Options for the zero-copy mapped loader. */
struct MapOptions
{
    /**
     * Verify every section's FNV-1a-64 checksum and run the full O(V+E)
     * structural validation before serving the graph. Faults in every
     * page, trading the zero-copy fast path for end-to-end integrity;
     * off by default because cache files are written atomically and
     * checksummed at write time.
     */
    bool verify = false;
};

/**
 * Load an edge-list text file. Vertex count is 1 + the largest endpoint
 * unless @p num_vertices is nonzero.
 *
 * @throws ConfigError when the file cannot be opened
 * @throws CorruptInputError (with the line number) on malformed lines
 */
Csr loadEdgeList(const std::string &path, VertexId num_vertices = 0,
                 bool weighted = false);

/**
 * Save a CSR graph in binary format v2, non-atomically.
 *
 * @deprecated Every production write path goes through
 * saveBinaryAtomic(); a direct save can leave a truncated file under the
 * final name after a crash, which later loads then have to detect and
 * regenerate.
 */
[[deprecated("use saveBinaryAtomic: one durable write path for the "
             "dataset cache")]]
void saveBinary(const Csr &graph, const std::string &path);

/**
 * Save a CSR graph (binary format v2) atomically and durably: write to a
 * process-unique temp file in the same directory, fsync, then rename over
 * @p path and fsync the parent directory. A crash mid-write or a
 * concurrent writer of the same path can never leave a truncated or
 * interleaved file behind; the loser of a rename race simply replaces the
 * winner's identical bytes.
 */
void saveBinaryAtomic(const Csr &graph, const std::string &path);

/**
 * Load a CSR graph from the binary format into heap-owned arrays.
 * Magic, version, endianness guard, header and section checksums (v2)
 * and every length field are checked against the file size, and the
 * arrays are validated (Csr::validateArrays) before construction.
 * Version 1 files load through the legacy bounded reader.
 *
 * @throws ConfigError when the file cannot be opened
 * @throws CorruptInputError on a truncated, foreign, or corrupted file
 */
Csr loadBinary(const std::string &path);

/**
 * Load a v2 binary graph zero-copy: the returned Csr's arrays are typed
 * views into a shared read-only mapping of the file (madvise'd for
 * sequential readahead), so repeated loads across processes share pages
 * and no heap copies are made. Version 1 files cannot be served in
 * place (unaligned sections) and fall back to the heap loader.
 *
 * @throws ConfigError when the file cannot be opened
 * @throws CorruptInputError on a truncated, foreign, or corrupted file,
 *         including a file shorter than its header promises (short map)
 */
Csr loadBinaryMapped(const std::string &path, const MapOptions &opts = {});

} // namespace gds::graph
