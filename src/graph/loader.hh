/**
 * @file
 * Graph file I/O: whitespace-separated edge-list text files ("src dst
 * [weight]" per line, '#' or '%' comments) and a compact binary CSR format
 * for fast reload of generated surrogates.
 */

#pragma once

#include <string>

#include "graph/csr.hh"

namespace gds::graph
{

/**
 * Load an edge-list text file. Vertex count is 1 + the largest endpoint
 * unless @p num_vertices is nonzero.
 *
 * @throws ConfigError when the file cannot be opened
 * @throws CorruptInputError (with the line number) on malformed lines
 */
Csr loadEdgeList(const std::string &path, VertexId num_vertices = 0,
                 bool weighted = false);

/** Save a CSR graph in the binary format (magic "GDSB", version 1). */
void saveBinary(const Csr &graph, const std::string &path);

/**
 * Save a CSR graph atomically: write to a process-unique temp file in the
 * same directory, then rename over @p path. A crash mid-write or a
 * concurrent writer of the same path can never leave a truncated or
 * interleaved file behind; the loser of a rename race simply replaces the
 * winner's identical bytes.
 */
void saveBinaryAtomic(const Csr &graph, const std::string &path);

/**
 * Load a CSR graph from the binary format. Magic, version, and every
 * length field are checked against the file size, and the arrays are
 * validated (Csr::validateArrays) before construction.
 *
 * @throws ConfigError when the file cannot be opened
 * @throws CorruptInputError on a truncated, foreign, or corrupted file
 */
Csr loadBinary(const std::string &path);

} // namespace gds::graph
