/**
 * @file
 * Compressed Sparse Row graph representation (Sec. 2.1 of the paper).
 *
 * Three one-dimensional arrays: the offset array (indexed by vertex id,
 * pointing at the start of each vertex's outgoing edge list), the edge array
 * (neighbour ids, plus weights for weighted graphs), and the vertex property
 * array (owned by the processing engines, not by the graph).
 *
 * Storage is decoupled from access: every array is exposed as a non-owning
 * span that points either at heap vectors owned by this object (graphs
 * built in memory) or at a live read-only file mapping shared through a
 * common::MappedFile (graphs served zero-copy from the binary dataset
 * cache). Simulators only ever read through the span accessors, so results
 * are bit-identical whichever storage backs a graph.
 */

#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/mapped_file.hh"
#include "common/types.hh"

namespace gds::graph
{

/** Summary statistics of a degree sequence. */
struct DegreeStats
{
    std::uint64_t minDegree = 0;
    std::uint64_t maxDegree = 0;
    double meanDegree = 0.0;
    /** Fraction of vertices with zero out-degree. */
    double zeroFraction = 0.0;
};

/**
 * An immutable directed graph in CSR form. Weights are optional; algorithms
 * that ignore weights (BFS, CC, PR) run on the unweighted view even when
 * weights are present, which matters for modelled memory traffic (4 B vs
 * 8 B edge records).
 */
class Csr
{
  public:
    /** Construct an empty graph. */
    Csr();

    /**
     * Construct from prebuilt arrays (heap-owned storage).
     *
     * @param offset_array V+1 offsets, offset_array[V] == edge count
     * @param neighbor_array destination vertex per edge
     * @param weight_array per-edge weights; empty for unweighted graphs
     */
    Csr(std::vector<EdgeId> offset_array,
        std::vector<VertexId> neighbor_array,
        std::vector<Weight> weight_array = {});

    /**
     * Construct a zero-copy graph whose arrays are views into a live file
     * mapping, kept alive by @p backing for this object's lifetime.
     *
     * Cheap structural invariants (first offset 0, last offset == edge
     * count, weight array empty or edge-sized) are always checked — they
     * touch at most two pages. @p deep_validate additionally runs the
     * full O(V+E) validateArrays() scan, faulting in every page; the
     * loader enables it when checksum verification was requested.
     *
     * @throws CorruptInputError when any checked invariant fails
     */
    static Csr fromMapping(std::span<const EdgeId> offset_view,
                           std::span<const VertexId> neighbor_view,
                           std::span<const Weight> weight_view,
                           std::shared_ptr<const common::MappedFile> backing,
                           bool deep_validate);

    /** Copy re-binds owned views onto the copied vectors; mapped views
     *  keep sharing the (refcounted) mapping. */
    Csr(const Csr &other);
    Csr &operator=(const Csr &other);
    /** Vector moves preserve buffer addresses, so views stay valid. */
    Csr(Csr &&other) noexcept = default;
    Csr &operator=(Csr &&other) noexcept = default;
    ~Csr() = default;

    VertexId numVertices() const
    {
        return static_cast<VertexId>(offsets.size() - 1);
    }

    EdgeId numEdges() const { return neighbors.size(); }

    bool hasWeights() const { return !weights.empty(); }

    /** True when the arrays are views into a file mapping. */
    bool isMapped() const { return backing != nullptr; }

    /** Bytes of heap-owned array storage. */
    std::uint64_t heapBytes() const;

    /** Bytes of the live file mapping backing this graph (0 when owned). */
    std::uint64_t mappedBytes() const;

    /** The mapping keeping this graph's views alive; null when owned. */
    const std::shared_ptr<const common::MappedFile> &mapping() const
    {
        return backing;
    }

    /** Start of vertex v's edge list in the edge array. */
    EdgeId
    offsetOf(VertexId v) const
    {
        // gds-lint: allow(no-naked-assert) per-edge hot path; arrays are
        // validated at construction, so a bad index is a simulator bug
        gds_assert(v < offsets.size(), "vertex %u out of range", v);
        return offsets[v];
    }

    /** Out-degree of vertex v. */
    std::uint64_t
    outDegree(VertexId v) const
    {
        // gds-lint: allow(no-naked-assert) per-edge hot path; arrays are
        // validated at construction, so a bad index is a simulator bug
        gds_assert(v + 1 < offsets.size(), "vertex %u out of range", v);
        return offsets[v + 1] - offsets[v];
    }

    /** Neighbours of v as a contiguous span. */
    std::span<const VertexId>
    neighborsOf(VertexId v) const
    {
        return std::span<const VertexId>(neighbors.data() + offsetOf(v),
                                         outDegree(v));
    }

    /** Weights of v's edges; only valid for weighted graphs. */
    std::span<const Weight>
    weightsOf(VertexId v) const
    {
        // gds-lint: allow(no-naked-assert) engines reject unweighted
        // inputs up front (ConfigError); reaching here unweighted is a bug
        gds_assert(hasWeights(), "graph has no weights");
        return std::span<const Weight>(weights.data() + offsetOf(v),
                                       outDegree(v));
    }

    /** Destination of edge e. */
    VertexId
    edgeDest(EdgeId e) const
    {
        // gds-lint: allow(no-naked-assert) per-edge hot path; arrays are
        // validated at construction, so a bad index is a simulator bug
        gds_assert(e < neighbors.size(), "edge %llu out of range",
                   static_cast<unsigned long long>(e));
        return neighbors[e];
    }

    /** Weight of edge e (1 for unweighted graphs). */
    Weight
    edgeWeight(EdgeId e) const
    {
        if (!hasWeights())
            return 1;
        return weights[e];
    }

    /** Raw offset array (V+1 entries). */
    std::span<const EdgeId> offsetArray() const { return offsets; }
    /** Raw neighbour array (E entries). */
    std::span<const VertexId> neighborArray() const { return neighbors; }
    /** Raw weight array (E entries or empty). */
    std::span<const Weight> weightArray() const { return weights; }

    /** Edge-to-vertex ratio |E|/|V|. */
    double
    edgeVertexRatio() const
    {
        return numVertices() == 0
                   ? 0.0
                   : static_cast<double>(numEdges()) / numVertices();
    }

    /** Degree-sequence summary. */
    DegreeStats degreeStats() const;

    /**
     * Return a copy with deterministic pseudo-random integer weights in
     * [1, 255] (the paper assigns random integer weights to unweighted
     * real-world graphs for SSSP/SSWP). A mapped graph keeps serving its
     * offset/neighbour arrays from the mapping; only the weights are
     * materialized on the heap.
     */
    Csr withRandomWeights(std::uint64_t seed) const;

    /** Return the unweighted view (weights dropped; mapping shared). */
    Csr withoutWeights() const;

    /**
     * Structural validity check of prebuilt CSR arrays: V+1 monotone
     * offsets starting at 0 and ending at the edge count, in-range
     * destinations, and a weight array either empty or edge-sized.
     * Returns a failed Status instead of aborting, so callers handling
     * untrusted input (file loaders) can raise a typed error.
     */
    static Status validateArrays(std::span<const EdgeId> offset_array,
                                 std::span<const VertexId> neighbor_array,
                                 std::span<const Weight> weight_array);

    /** Re-check this graph's invariants (O(V+E)). */
    Status validate() const
    {
        return validateArrays(offsets, neighbors, weights);
    }

  private:
    /** Point every view whose source was owned at this object's stores. */
    void rebindOwnedViews(const Csr &other);

    // Owned storage: empty for arrays served from the mapping.
    std::vector<EdgeId> offsets_store;
    std::vector<VertexId> neighbors_store;
    std::vector<Weight> weights_store;

    // The views every accessor reads through (owned store or mapping).
    std::span<const EdgeId> offsets;
    std::span<const VertexId> neighbors;
    std::span<const Weight> weights;

    /** Keep-alive for mapped views; null for fully heap-owned graphs. */
    std::shared_ptr<const common::MappedFile> backing;
};

} // namespace gds::graph
