/**
 * @file
 * COO (edge list) to CSR conversion.
 *
 * The conversion is a stable counting sort over source vertices, run in
 * up to BuildOptions::jobs chunks: parallel per-chunk degree histograms,
 * a blocked prefix sum, and a per-chunk scatter through precomputed
 * cursors. Chunks partition the edge list in order, so within a vertex's
 * edge list the global edge order is preserved exactly — the output is
 * byte-identical at every job count, including the strictly serial
 * jobs=1 path.
 */

#pragma once

#include <vector>

#include "graph/csr.hh"

namespace gds::graph
{

/** A single directed edge in COO form. */
struct CooEdge
{
    VertexId src;
    VertexId dst;
    Weight weight = 1;
};

/** Options controlling COO→CSR conversion. */
struct BuildOptions
{
    /** Drop u→u edges (default: keep, matching Graph500 RMAT semantics). */
    bool removeSelfLoops = false;
    /** Collapse duplicate (u,v) pairs keeping the first weight seen. */
    bool removeDuplicates = false;
    /** Emit per-edge weights into the CSR. */
    bool keepWeights = false;
    /**
     * Worker threads for the build. 0 means the global policy
     * (common::jobCount(): GDS_JOBS, else hardware concurrency); 1 forces
     * the serial path. The result is byte-identical for every value.
     */
    unsigned jobs = 0;
};

/**
 * Build a CSR graph from an edge list using a counting sort over sources
 * (O(V + E), stable within a vertex's edge list; deterministic and
 * byte-identical across BuildOptions::jobs values).
 *
 * @param num_vertices vertex count; every edge endpoint must be below it
 * @param edges the edge list (consumed by value; callers may move)
 * @param opts conversion options
 */
Csr buildCsr(VertexId num_vertices, std::vector<CooEdge> edges,
             const BuildOptions &opts = {});

} // namespace gds::graph
