/**
 * @file
 * COO (edge list) to CSR conversion.
 */

#pragma once

#include <vector>

#include "graph/csr.hh"

namespace gds::graph
{

/** A single directed edge in COO form. */
struct CooEdge
{
    VertexId src;
    VertexId dst;
    Weight weight = 1;
};

/** Options controlling COO→CSR conversion. */
struct BuildOptions
{
    /** Drop u→u edges (default: keep, matching Graph500 RMAT semantics). */
    bool removeSelfLoops = false;
    /** Collapse duplicate (u,v) pairs keeping the first weight seen. */
    bool removeDuplicates = false;
    /** Emit per-edge weights into the CSR. */
    bool keepWeights = false;
};

/**
 * Build a CSR graph from an edge list using a counting sort over sources
 * (O(V + E), stable within a vertex's edge list).
 *
 * @param num_vertices vertex count; every edge endpoint must be below it
 * @param edges the edge list (consumed by value; callers may move)
 * @param opts conversion options
 */
Csr buildCsr(VertexId num_vertices, std::vector<CooEdge> edges,
             const BuildOptions &opts = {});

} // namespace gds::graph
