/**
 * @file
 * Deterministic synthetic graph generators.
 *
 * - rmat(): the Graph500 recursive-matrix generator, used for the paper's
 *   RMAT scale 22-26 scalability study (Fig. 14f).
 * - powerLaw(): a Chung-Lu style generator with Zipf-distributed expected
 *   degrees; used to build surrogates of the paper's six real-world graphs
 *   (Table 4) with matching |V|, |E| and heavy-tailed degree skew.
 * - uniform(): Erdos-Renyi G(n, m), used as a low-skew control in tests.
 */

#pragma once

#include <cstdint>

#include "graph/csr.hh"

namespace gds::graph
{

/** Parameters of the RMAT recursive partition. Graph500 defaults. */
struct RmatParams
{
    double a = 0.57;
    double b = 0.19;
    double c = 0.19;
    // d = 1 - a - b - c
};

/**
 * Generate an RMAT graph with 2^scale vertices and edge_factor * 2^scale
 * directed edges. Vertex ids are scrambled so degree does not correlate
 * with id (as Graph500 requires).
 *
 * Edges are generated in fixed-size chunks, each from its own
 * counter-seeded generator, so the output is identical at every job
 * count (0 = the GDS_JOBS/hardware policy, 1 = strictly serial).
 */
Csr rmat(unsigned scale, unsigned edge_factor, std::uint64_t seed,
         const RmatParams &params = {}, bool weighted = false,
         unsigned jobs = 0);

/**
 * Generate a Chung-Lu power-law graph: endpoints sampled independently
 * from a Zipf(alpha) distribution over vertex ids (then scrambled).
 *
 * @param num_vertices |V|
 * @param num_edges |E| directed edges
 * @param alpha Zipf exponent in (0,1); larger alpha = heavier degree tail;
 *        0.5-0.8 produces social-network-like skew
 *
 * Chunked and counter-seeded like rmat(): identical output at every
 * job count.
 */
Csr powerLaw(VertexId num_vertices, EdgeId num_edges, double alpha,
             std::uint64_t seed, bool weighted = false,
             unsigned jobs = 0);

/** Generate a uniform Erdos-Renyi G(n, m) multigraph. */
Csr uniform(VertexId num_vertices, EdgeId num_edges, std::uint64_t seed,
            bool weighted = false, unsigned jobs = 0);

/**
 * Generate a two-dimensional grid/mesh graph (road-network-like: bounded
 * degree, large diameter) with bidirectional edges between 4-neighbours.
 */
Csr grid2d(VertexId width, VertexId height, std::uint64_t seed,
           bool weighted = false);

/**
 * Barabasi-Albert preferential attachment: each new vertex attaches
 * @p edges_per_vertex undirected edges to existing vertices with
 * probability proportional to their current degree. Produces the
 * canonical p(d) ~ d^-3 power law with a connected core.
 */
Csr barabasiAlbert(VertexId num_vertices, unsigned edges_per_vertex,
                   std::uint64_t seed, bool weighted = false);

/**
 * Watts-Strogatz small world: a ring lattice of degree @p ring_degree
 * (even) with each edge rewired to a random endpoint with probability
 * @p rewire_probability. High clustering, low diameter, near-uniform
 * degrees -- the low-skew counterpoint to the social-network surrogates.
 */
Csr wattsStrogatz(VertexId num_vertices, unsigned ring_degree,
                  double rewire_probability, std::uint64_t seed,
                  bool weighted = false);

} // namespace gds::graph
