#include "graph/datasets.hh"

#include <cstdlib>

#include "common/bitutil.hh"
#include "common/error.hh"
#include "common/parse.hh"
#include "graph/generators.hh"

namespace gds::graph
{

std::uint64_t
DatasetSpec::scaledVertices(unsigned scale_divisor) const
{
    gds_require(scale_divisor >= 1, ConfigError, "scale divisor must be >= 1");
    if (kind == DatasetKind::Rmat) {
        // Scale an RMAT graph by reducing its scale parameter; divisor is
        // rounded to the nearest power of two.
        const unsigned shift =
            scale_divisor == 1 ? 0 : log2Floor(scale_divisor);
        const unsigned scaled = rmatScale > shift ? rmatScale - shift : 4;
        return 1ULL << scaled;
    }
    return std::max<std::uint64_t>(paperVertices / scale_divisor, 64);
}

std::uint64_t
DatasetSpec::scaledEdges(unsigned scale_divisor) const
{
    if (kind == DatasetKind::Rmat)
        return scaledVertices(scale_divisor) * rmatEdgeFactor;
    return std::max<std::uint64_t>(paperEdges / scale_divisor, 256);
}

const std::vector<DatasetSpec> &
realWorldDatasets()
{
    // Table 4: |V| and |E| of the six real-world graphs. Alpha tunes
    // degree skew: web/crawl graphs (FR, IN) are more skewed than social
    // networks (PK, OR); HO (movie-actor collaborations) is dense with a
    // very high edge-to-vertex ratio.
    static const std::vector<DatasetSpec> specs = {
        {"FR", "Flickr Crawl (surrogate)", DatasetKind::PowerLawSurrogate,
         820'000, 9'840'000, 0.70, 0, 0, 101},
        {"PK", "Pokec Social Network (surrogate)",
         DatasetKind::PowerLawSurrogate, 1'630'000, 30'620'000, 0.55, 0, 0,
         102},
        {"LJ", "LiveJournal Follower (surrogate)",
         DatasetKind::PowerLawSurrogate, 4'840'000, 68'990'000, 0.62, 0, 0,
         103},
        {"HO", "Movie Actors Social (surrogate)",
         DatasetKind::PowerLawSurrogate, 1'140'000, 113'900'000, 0.55, 0, 0,
         104},
        {"IN", "Crawl of Indochina (surrogate)",
         DatasetKind::PowerLawSurrogate, 7'410'000, 194'110'000, 0.72, 0, 0,
         105},
        {"OR", "Orkut Social Network (surrogate)",
         DatasetKind::PowerLawSurrogate, 3'070'000, 234'370'000, 0.55, 0, 0,
         106},
    };
    return specs;
}

const std::vector<DatasetSpec> &
rmatDatasets()
{
    static const std::vector<DatasetSpec> specs = {
        {"RM22", "Synthetic Graph (RMAT scale 22)", DatasetKind::Rmat, 0, 0,
         0.0, 22, 16, 222},
        {"RM23", "Synthetic Graph (RMAT scale 23)", DatasetKind::Rmat, 0, 0,
         0.0, 23, 16, 223},
        {"RM24", "Synthetic Graph (RMAT scale 24)", DatasetKind::Rmat, 0, 0,
         0.0, 24, 16, 224},
        {"RM25", "Synthetic Graph (RMAT scale 25)", DatasetKind::Rmat, 0, 0,
         0.0, 25, 16, 225},
        {"RM26", "Synthetic Graph (RMAT scale 26)", DatasetKind::Rmat, 0, 0,
         0.0, 26, 16, 226},
    };
    return specs;
}

const DatasetSpec &
datasetByName(const std::string &name)
{
    for (const auto &spec : realWorldDatasets()) {
        if (spec.name == name)
            return spec;
    }
    for (const auto &spec : rmatDatasets()) {
        if (spec.name == name)
            return spec;
    }
    fatal("unknown dataset '%s'", name.c_str());
}

unsigned
datasetScaleDivisor()
{
    // Strict env parsing (common/parse.hh): "16abc" or "-4" is a warned
    // fallback to 16, not a silently strtol-truncated divisor.
    return static_cast<unsigned>(
        common::parseEnvU64("GDS_SCALE", 16, 1, 1u << 30));
}

Csr
makeDataset(const DatasetSpec &spec, unsigned scale_divisor, bool weighted,
            unsigned jobs)
{
    const std::uint64_t v_count = spec.scaledVertices(scale_divisor);
    const std::uint64_t e_count = spec.scaledEdges(scale_divisor);
    gds_require(v_count <= invalidVertex, ConfigError,
               "dataset %s too large for 32-bit vertex ids",
               spec.name.c_str());

    switch (spec.kind) {
      case DatasetKind::PowerLawSurrogate:
        return powerLaw(static_cast<VertexId>(v_count), e_count, spec.alpha,
                        spec.seed, weighted, jobs);
      case DatasetKind::Rmat: {
        const unsigned shift =
            scale_divisor == 1 ? 0 : log2Floor(scale_divisor);
        const unsigned scaled_scale =
            spec.rmatScale > shift ? spec.rmatScale - shift : 4;
        return rmat(scaled_scale, spec.rmatEdgeFactor, spec.seed, {},
                    weighted, jobs);
      }
    }
    panic("unreachable dataset kind");
}

} // namespace gds::graph
