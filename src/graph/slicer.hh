/**
 * @file
 * Destination-range graph slicing (the Graphicionado technique adopted by
 * GraphDynS, Sec. 4.2.1): when the temporary vertex properties of the whole
 * graph do not fit in the on-chip Vertex Buffer, the graph is cut into
 * slices by destination vertex range and one slice is processed at a time.
 * Each slice keeps the full vertex set as sources but contains only edges
 * whose destination falls inside the slice's range.
 */

#pragma once

#include <vector>

#include "graph/csr.hh"

namespace gds::graph
{

/** One destination-range slice of a graph. */
struct Slice
{
    /** First destination vertex covered by this slice. */
    VertexId dstBegin;
    /** One past the last destination vertex covered. */
    VertexId dstEnd;
    /** Edges of the original graph whose destination is in range. */
    Csr subgraph;
};

/**
 * Cut @p graph into ceil(V / max_dst_vertices) destination-range slices.
 * With max_dst_vertices >= V this returns a single slice that shares the
 * original topology.
 */
std::vector<Slice> sliceByDestination(const Csr &graph,
                                      VertexId max_dst_vertices);

/** Number of slices the accelerator needs for a graph of @p num_vertices. */
VertexId numSlices(VertexId num_vertices, VertexId max_dst_vertices);

} // namespace gds::graph
