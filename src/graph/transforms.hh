/**
 * @file
 * Graph transformations used in evaluation pipelines: transposition
 * (out-CSR <-> in-CSR), symmetrization (for undirected analyses such as
 * CC oracles), degree-sorted vertex reordering (the preprocessing step
 * GPU frameworks rely on and GraphDynS makes unnecessary -- see the
 * bench_ablation_preprocessing study), and simple structural queries.
 */

#pragma once

#include <vector>

#include "graph/csr.hh"

namespace gds::graph
{

/** Reverse every edge: the result's out-edges are the input's in-edges. */
Csr transpose(const Csr &g);

/**
 * Make the graph undirected: for every edge (u,v) ensure (v,u) exists,
 * deduplicating pairs. Weights are preserved (first seen wins).
 */
Csr symmetrize(const Csr &g);

/**
 * Relabel vertices by descending out-degree (the classic degree-sort
 * preprocessing of GPU graph frameworks).
 *
 * @param[out] permutation optional: permutation[old_id] == new_id
 */
Csr degreeSortReorder(const Csr &g,
                      std::vector<VertexId> *permutation = nullptr);

/**
 * Relabel vertices with an arbitrary permutation (new_id =
 * permutation[old_id]); inverse of size |V| must be a bijection.
 */
Csr applyPermutation(const Csr &g,
                     const std::vector<VertexId> &permutation);

/** In-degree of every vertex. */
std::vector<std::uint64_t> inDegrees(const Csr &g);

/** Number of weakly-connected components (union-find over both
 *  directions). */
std::uint64_t countWeakComponents(const Csr &g);

} // namespace gds::graph
