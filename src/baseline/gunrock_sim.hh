/**
 * @file
 * GunrockSim: a calibrated timing/energy/traffic model of the paper's
 * GPU baseline -- Gunrock (Wang et al., PPoPP 2016) running on an NVIDIA
 * V100 (Table 3: 1.25 GHz, 5120 cores, 34 MB on-chip, 900 GB/s HBM2).
 *
 * A physical V100 is not available in this environment, so the baseline
 * is reconstructed as an iteration-level model driven by the *exact*
 * per-iteration workload of a functional execution (frontier sizes, edge
 * counts, per-warp degree maxima, reduce conflict counts from
 * algo::runReference). The model charges, per iteration:
 *
 *  - kernel launch latency (advance + filter kernels);
 *  - SIMT compute time under intra-warp load imbalance: each warp of 32
 *    active vertices costs max(degree within warp) edge steps, which is
 *    exactly the workload irregularity the paper's Sec. 3.1 describes;
 *  - memory time: sequential bytes at an effective streaming bandwidth
 *    plus random (per-edge destination) accesses at cacheline granularity
 *    with a calibrated cache hit rate -- reproducing the ~31% bandwidth
 *    utilization of Fig. 13;
 *  - atomic serialization proportional to conflicting reduces;
 *  - online preprocessing (frontier compaction / load-balancing scans),
 *    which the paper reports can dominate execution (Sec. 8).
 *
 * The iteration time is the maximum of the compute and memory pipes plus
 * the serial overheads. Constants are calibrated so the model lands on
 * the paper's reported aggregates (~8 GTEPS geometric mean, ~31%
 * bandwidth utilization, >2x storage for preprocessing metadata); see
 * DESIGN.md (Substitutions).
 */

#pragma once

#include "algo/reference_engine.hh"
#include "algo/vcpm.hh"
#include "graph/csr.hh"

namespace gds::baseline
{

/** V100 + Gunrock model parameters. */
struct GunrockConfig
{
    double clockGhz = 1.25;        ///< SM clock (Table 3)
    unsigned numCores = 5120;      ///< CUDA cores
    unsigned warpSize = 32;
    double memBandwidthGBs = 900.0; ///< HBM2 peak
    unsigned cachelineBytes = 32;   ///< L2 sector size

    // Calibrated workload constants (see EXPERIMENTS.md: chosen so the
    // model reproduces the paper's Gunrock aggregates -- ~8 GTEPS mean,
    // ~31% bandwidth utilization, preprocessing comparable to processing).
    double cyclesPerEdge = 2.5;      ///< SIMT edge-expand cost
    double cyclesPerApply = 3.0;     ///< filter/apply cost per vertex
    double atomicSerializeNs = 0.008;///< extra ns per conflicting reduce
    double vertexPropHitRate = 0.35; ///< L2 hit rate on random dst props
    double kernelLaunchUs = 4.0;     ///< per-iteration launch latency
    /** Online preprocessing (frontier compaction, load-balance scan):
     *  ns per frontier edge / vertex. Sec. 8: preprocessing can reach 2x
     *  the processing time. */
    double preprocessNsPerEdge = 0.045;
    double preprocessNsPerVertex = 0.12;

    // Energy model (board level). Graph analytics keeps a V100 well
    // below TDP (memory-latency bound); calibrated so the GraphDynS :
    // Gunrock energy ratio lands at the paper's 11.6x (Fig. 9).
    double idlePowerW = 30.0;
    double activePowerW = 110.0; ///< at full utilization

    unsigned maxIterations = 1000;
};

/** Model output, aligned with core::RunResult where it makes sense. */
struct GunrockResult
{
    std::vector<PropValue> properties;
    unsigned iterations = 0;
    double seconds = 0.0;
    std::uint64_t edgesProcessed = 0;
    std::uint64_t memoryBytes = 0;
    std::uint64_t footprintBytes = 0;
    double bandwidthUtilization = 0.0;
    double energyJoules = 0.0;

    double
    gteps() const
    {
        return seconds == 0.0
                   ? 0.0
                   : static_cast<double>(edgesProcessed) / seconds / 1e9;
    }
};

/** The Gunrock-on-V100 baseline model. */
class GunrockSim
{
  public:
    GunrockSim(const GunrockConfig &config, const graph::Csr &g,
               algo::VcpmAlgorithm &algorithm);

    /** Execute the algorithm and model its time/energy/traffic. */
    GunrockResult run(VertexId source);

    /** Off-chip storage: CSR + >2x preprocessing metadata (Fig. 11). */
    std::uint64_t footprintBytes() const;

  private:
    GunrockConfig cfg;
    const graph::Csr &graph;
    algo::VcpmAlgorithm &algo;
};

} // namespace gds::baseline
