#include "baseline/gunrock_sim.hh"

#include <algorithm>

#include "common/error.hh"

namespace gds::baseline
{

GunrockSim::GunrockSim(const GunrockConfig &config, const graph::Csr &g,
                       algo::VcpmAlgorithm &algorithm)
    : cfg(config), graph(g), algo(algorithm)
{
    if (algo.usesWeights() && !graph.hasWeights())
        throw ConfigError(algo.name() + " needs a weighted graph");
}

std::uint64_t
GunrockSim::footprintBytes() const
{
    const std::uint64_t v = graph.numVertices();
    const std::uint64_t e = graph.numEdges();
    const unsigned edge_bytes = algo.usesWeights() ? 8 : 4;
    const std::uint64_t csr =
        (v + 1) * bytesPerWord + e * edge_bytes;
    // Properties: prop, tProp (labels), frontier double buffers.
    const std::uint64_t props = 4 * v * bytesPerWord;
    // Preprocessing metadata: Gunrock keeps per-edge load-balancing
    // partitions and per-vertex scan arrays -- the paper measures more
    // than 2x the original graph data (Sec. 7, Fig. 11).
    const std::uint64_t metadata = 2 * csr;
    return csr + props + metadata;
}

GunrockResult
GunrockSim::run(VertexId source)
{
    // Functional execution with full tracing supplies the exact
    // per-iteration workload properties that drive the timing model.
    algo::ReferenceOptions options;
    options.maxIterations = cfg.maxIterations;
    options.collectTrace = true;
    const auto functional =
        algo::runReference(graph, algo, source, options);

    const double clock_hz = cfg.clockGhz * 1e9;
    const double warps_parallel =
        static_cast<double>(cfg.numCores) / cfg.warpSize;
    const unsigned edge_bytes = algo.usesWeights() ? 8 : 4;
    const double bw_bytes_per_s = cfg.memBandwidthGBs * 1e9;

    double total_seconds = 0.0;
    std::uint64_t total_bytes = 0;

    for (const auto &trace : functional.trace) {
        // --- Advance kernel: SIMT expand with intra-warp imbalance. ---
        // Each warp serializes to its largest per-thread edge list, so a
        // warp costs max(degree within warp) edge steps.
        const double warp_cycles =
            static_cast<double>(trace.warpMaxDegreeSum) *
            cfg.cyclesPerEdge;
        const double compute_s =
            (warp_cycles / warps_parallel +
             static_cast<double>(graph.numVertices()) * cfg.cyclesPerApply /
                 static_cast<double>(cfg.numCores)) /
            clock_hz;

        // --- Memory traffic. ---
        // Sequential: frontier + edge lists (with offset lookups).
        const std::uint64_t seq_bytes =
            trace.activeVertices * 3 * bytesPerWord + // frontier + offsets
            trace.edgesProcessed * edge_bytes;
        // Random: destination property read-modify-write per edge, at
        // cacheline granularity, filtered by the L2 hit rate; plus the
        // full-sweep filter kernel reading every vertex label.
        const double miss_rate = 1.0 - cfg.vertexPropHitRate;
        const double random_bytes =
            static_cast<double>(trace.edgesProcessed) * miss_rate *
            cfg.cachelineBytes;
        const double sweep_bytes =
            static_cast<double>(graph.numVertices()) * 2.0 * bytesPerWord;
        const double iter_bytes =
            static_cast<double>(seq_bytes) + random_bytes + sweep_bytes;
        const double memory_s = iter_bytes / bw_bytes_per_s;

        // --- Serial overheads. ---
        const double atomics_s = static_cast<double>(
                                     trace.conflictingReduces) *
                                 cfg.atomicSerializeNs * 1e-9;
        const double preprocess_s =
            (static_cast<double>(trace.edgesProcessed) *
                 cfg.preprocessNsPerEdge +
             static_cast<double>(trace.activeVertices) *
                 cfg.preprocessNsPerVertex) *
            1e-9;
        const double launch_s = cfg.kernelLaunchUs * 1e-6;

        total_seconds += std::max(compute_s, memory_s) + atomics_s +
                         preprocess_s + launch_s;
        total_bytes += static_cast<std::uint64_t>(iter_bytes);
    }

    GunrockResult result;
    result.properties = functional.properties;
    result.iterations = functional.iterations;
    result.seconds = total_seconds;
    result.edgesProcessed = functional.totalEdgesProcessed;
    result.memoryBytes = total_bytes;
    result.footprintBytes = footprintBytes();
    result.bandwidthUtilization =
        total_seconds == 0.0
            ? 0.0
            : static_cast<double>(total_bytes) /
                  (bw_bytes_per_s * total_seconds);

    // Energy: utilization-scaled board power over the run.
    const double utilization =
        std::min(1.0, std::max(result.bandwidthUtilization,
                               result.gteps() / 20.0));
    const double power =
        cfg.idlePowerW + (cfg.activePowerW - cfg.idlePowerW) * utilization;
    result.energyJoules = power * total_seconds;
    return result;
}

} // namespace gds::baseline
