/**
 * @file
 * Cycle-level reconstruction of Graphicionado (Ham et al., MICRO 2016),
 * the state-of-the-art graph-analytics accelerator GraphDynS compares
 * against (Table 3: 1 GHz, 128 streams, 64 MB eDRAM, the same 512 GB/s
 * HBM).
 *
 * The model reproduces exactly the behaviours the GraphDynS paper
 * attributes to Graphicionado (Sec. 3.2):
 *  - active vertices hash-assigned to streams (vid % numStreams), so hub
 *    vertices serialize on one stream (workload irregularity unsolved);
 *  - edge records carry src_vid (+4 B per edge) and the end of an edge
 *    list is detected by reading one extra record (bandwidth waste);
 *  - the offset array lives on chip next to the temporary properties,
 *    which is why it needs 64 MB of eDRAM (2x GraphDynS);
 *  - atomicity is enforced by stalling a stream while a conflicting
 *    update is in flight in the reduce pipeline;
 *  - the Apply phase sweeps every vertex (update irregularity unsolved)
 *    and stores changed properties with intermittent, uncoalesced writes.
 *
 * Functional + timing combined, like GdsAccel: results are checked against
 * the reference engine in the tests.
 */

#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "algo/vcpm.hh"
#include "core/gds_accel.hh" // RunOptions / RunResult
#include "core/memmap.hh"
#include "graph/slicer.hh"
#include "mem/hbm.hh"
#include "sim/queues.hh"

namespace gds::baseline
{

/** Graphicionado configuration (Table 3 column 2). */
struct GraphicionadoConfig
{
    unsigned numStreams = 128;                  ///< parallel pipelines
    std::uint64_t onChipBytes = 64ULL << 20;    ///< eDRAM (tProp + offsets)
    Cycle atomicPipelineDepth = 3;              ///< stall window on RAW
    unsigned vprefBatch = 32;                   ///< records per stream req
    unsigned vprefMaxInflight = 32;
    unsigned streamLookahead = 4;  ///< records prefetched ahead per stream
    unsigned streamQueueRecords = 64;
    unsigned edgeMaxInflight = 128;
    unsigned applyMaxInflight = 32;
    unsigned maxIterations = 1000;
    mem::HbmConfig hbm;

    /** Vertices whose tProp (+ offset entry) fit on chip per slice.
     *  The paper notes Graphicionado caches 2x the temporary properties
     *  of GraphDynS (Sec. 7.2). */
    VertexId
    sliceCapacity() const
    {
        const std::uint64_t cap = onChipBytes / bytesPerWord;
        return static_cast<VertexId>(
            std::min<std::uint64_t>(cap, invalidVertex - 1));
    }
};

/** The Graphicionado accelerator model. */
class GraphicionadoAccel : public sim::Component
{
  public:
    /** @throws ConfigError when the configuration is inconsistent. */
    GraphicionadoAccel(const GraphicionadoConfig &config,
                       const graph::Csr &g, algo::VcpmAlgorithm &algorithm,
                       sim::Component *parent = nullptr);
    ~GraphicionadoAccel() override;

    /**
     * Execute to convergence (or the iteration cap) under watchdog
     * supervision; RunResult::report carries the verdict.
     *
     * @throws ConfigError on an invalid source or fault plan
     */
    core::RunResult run(const core::RunOptions &options = {});

    void tick() override;
    bool busy() const override;
    std::string debugState() const override;

    /**
     * 1 unless the current cycle is provably a pure wait (no response
     * pending, every stream blocked on edge data, no issuable request);
     * then the HBM's own horizon. A ready stream head counts as active
     * even when it would RAW-stall: those stalls resolve by time, not
     * memory, and are stepped naively.
     */
    Cycle nextEventCycle() const override;

    /**
     * Replay @p cycles pure-wait ticks in bulk: phase cycle counters and
     * the HBM (refresh schedule included) advance exactly as @p cycles
     * naive tick() calls would have left them.
     */
    void skipCycles(Cycle cycles) override;

    bool supportsFastForward() const override { return true; }

    /**
     * Checkpoint the complete baseline: property arrays, frontier
     * buffers, per-stream backlogs, both phase-state blocks, the ports
     * and the HBM. Same contract as GdsAccel::saveState().
     */
    void saveState(sim::Serializer &s) const override;
    void restoreState(sim::Deserializer &d) override;

    /** Activity = edges processed by the streams (counter-track unit). */
    std::uint64_t
    activityCounter() const override
    {
        return static_cast<std::uint64_t>(statEdgesProcessed.value());
    }

    /** Default interval-probe set (HBM bytes, stream backlog, frontier);
     *  run() registers it when RunOptions::sampler has no probes. */
    void registerProbes(obs::Sampler &sampler) const;

    const mem::Hbm &hbmDevice() const { return *hbm; }
    std::uint64_t footprintBytes() const { return layout->footprintBytes(); }
    unsigned numSlices() const { return sliceCount; }

  private:
    /** Active record: vid + prop (8 B in memory). */
    struct ActiveRecord
    {
        VertexId vid;
        PropValue prop;
    };

    /** Per-record edge fetch state. */
    struct RecordFetch
    {
        bool started = false;
        bool allIssued = false;
        bool ready = false;
        std::uint32_t parts = 0;
        std::uint64_t bytesIssued = 0;
    };

    struct EdgeTask
    {
        VertexId dst;
        Weight weight;
    };

    /** One processing stream (pipeline). */
    struct Stream
    {
        std::deque<std::uint64_t> records; ///< assigned record indices
        std::uint32_t edgeCursor = 0;      ///< progress in head record
    };

    enum class Phase
    {
        ScatterPhase,
        ApplyPhase,
        Finished,
    };

    void startIteration();
    void startScatter();
    void tickScatter();
    bool scatterDone() const;
    void startApply();
    void tickApply();
    bool applyDone() const;
    void finishSlice();

    // Fast-forward quiescence predicates (mirror the phase tick paths).
    bool scatterQuiescent() const;
    bool applyQuiescent() const;

    // Tracer hooks (one branch each when tracing is off).
    void traceBegin(std::string event);
    void traceEnd();

    const graph::Csr &sliceGraph(unsigned s) const;
    VertexId sliceBegin(unsigned s) const;
    VertexId sliceEnd(unsigned s) const;
    void buildInitialActives(VertexId source);

    // gds-ckpt: skip(cfg) construction-time configuration; resume verifies
    // the config hash instead of serializing it
    GraphicionadoConfig cfg;
    // gds-ckpt: skip(fullGraph) non-owning reference to the immutable input
    // graph the caller rebinds on resume
    const graph::Csr &fullGraph;
    // gds-ckpt: skip(algo) non-owning reference to the stateless algorithm
    // kernel the caller rebinds on resume
    algo::VcpmAlgorithm &algo;
    // gds-ckpt: skip(weighted) derived from the algorithm kernel in the
    // constructor
    bool weighted;
    // gds-ckpt: skip(hasConstProp) derived from the algorithm kernel in the
    // constructor
    bool hasConstProp;

    // gds-ckpt: skip(sliceCount) derived from cfg and the graph in the
    // constructor
    unsigned sliceCount = 1;
    // gds-ckpt: skip(slices) deterministic re-partition of the immutable
    // input graph, rebuilt in the constructor
    std::vector<graph::Slice> slices;
    // gds-ckpt: skip(sliceEdgeStart) derived from slices in the constructor
    std::vector<EdgeId> sliceEdgeStart;

    // gds-ckpt: skip(layout) address map derived from cfg and the graph in
    // the constructor
    std::unique_ptr<core::MemoryLayout> layout;
    std::unique_ptr<mem::Hbm> hbm;

    // Functional state.
    std::vector<PropValue> prop;
    std::vector<PropValue> tProp;
    std::vector<PropValue> cProp;
    std::vector<Cycle> lastReduceAt; ///< per-vertex RAW window tracking
    std::vector<std::vector<ActiveRecord>> activeCur;
    std::vector<std::vector<ActiveRecord>> activeNext;
    std::uint64_t activatedThisIteration = 0;

    // Scatter state.
    struct ScatterState
    {
        std::uint64_t recordsTotal = 0;
        std::uint64_t expectedEdges = 0;
        std::uint64_t batchesTotal = 0;
        std::uint64_t batchesIssued = 0;
        std::vector<std::uint8_t> batchReady;
        std::uint64_t commitCursor = 0;
        std::uint64_t recordsDone = 0;
        std::uint64_t edgesReduced = 0;
        std::vector<RecordFetch> fetch;
        std::vector<std::vector<EdgeTask>> fetchedEdges;
    };

    // Apply state.
    struct ApplyState
    {
        VertexId sweepBegin = 0;
        VertexId sweepEnd = 0;
        std::uint64_t batchesTotal = 0;
        std::uint64_t batchesIssued = 0;
        std::vector<std::uint8_t> batchIssuedParts; ///< requests sent (0..2)
        std::vector<std::uint8_t> batchPending;     ///< responses awaited
        VertexId commitCursor = 0; ///< next vertex to hand to a stream
        VertexId appliedCount = 0;
        std::deque<VertexId> pendingApplies; ///< committed, not yet applied
        std::uint64_t pendingAuRecords = 0;
        Addr auWriteCursor = 0;
        std::deque<std::pair<Addr, unsigned>> writes;
    };

    std::vector<Stream> streams;
    ScatterState sc;
    ApplyState ap;
    Phase phase = Phase::Finished;
    unsigned curSlice = 0;
    unsigned iteration = 0;
    unsigned activeBuf = 0;
    Cycle now = 0;
    /** Local clock at run() entry; serialized so a resumed run reports
     *  cycles spanning the whole logical run, not just the tail. */
    Cycle runStart = 0;
    bool collectPeLoads = false;
    std::vector<std::uint64_t> streamLoadThisIteration;
    std::vector<std::vector<std::uint64_t>> streamLoadTrace;

    mem::HbmPort vport;
    mem::HbmPort eport;
    mem::HbmPort wport;

    stats::Scalar statIterations;
    stats::Scalar statScatterCycles;
    stats::Scalar statApplyCycles;
    stats::Scalar statEdgesProcessed;
    stats::Scalar statVertexUpdates;
    stats::Scalar statAtomicStalls;
    stats::Scalar statApplyOps;
    stats::Scalar statReduceOps;
    stats::Vector statStreamEdges;
};

} // namespace gds::baseline
