#include "baseline/graphicionado.hh"

#include <csignal>
#include <cstdlib>
#include <optional>
#include <sstream>

#include "common/bitutil.hh"
#include "common/parse.hh"
#include "sim/checkpoint.hh"

namespace gds::baseline
{

namespace
{

enum class Tag : std::uint64_t
{
    RecordBatch = 1,
    TPropFill,
    EdgeFetch,
    ApplyBatch,
    Store,
};

constexpr std::uint64_t
makeTag(Tag kind, std::uint64_t payload)
{
    return (static_cast<std::uint64_t>(kind) << 56) | payload;
}

constexpr Tag
tagKind(std::uint64_t tag)
{
    return static_cast<Tag>(tag >> 56);
}

constexpr std::uint64_t
tagPayload(std::uint64_t tag)
{
    return tag & ((1ULL << 56) - 1);
}

constexpr unsigned maxRequestBytes = 512;
constexpr unsigned applyBatchVerts = 128; ///< props per sweep request
constexpr unsigned auRecordBatch = 8;     ///< active records per store

} // namespace

GraphicionadoAccel::GraphicionadoAccel(const GraphicionadoConfig &config,
                                       const graph::Csr &g,
                                       algo::VcpmAlgorithm &algorithm,
                                       sim::Component *parent)
    : sim::Component("graphicionado", parent),
      cfg(config),
      fullGraph(g),
      algo(algorithm),
      weighted(algorithm.usesWeights()),
      hasConstProp(algorithm.usesConstProp()),
      statIterations(&statsGroup(), "iterations", "iterations executed"),
      statScatterCycles(&statsGroup(), "scatterCycles",
                        "cycles in the processing (scatter) phase"),
      statApplyCycles(&statsGroup(), "applyCycles",
                      "cycles in the apply phase"),
      statEdgesProcessed(&statsGroup(), "edgesProcessed",
                         "edges processed by the streams"),
      statVertexUpdates(&statsGroup(), "vertexUpdates",
                        "vertices whose property changed in Apply"),
      statAtomicStalls(&statsGroup(), "atomicStalls",
                       "stream stalls from RAW conflicts"),
      statApplyOps(&statsGroup(), "applyOps", "Apply kernel executions"),
      statReduceOps(&statsGroup(), "reduceOps", "Reduce kernel executions"),
      statStreamEdges(&statsGroup(), "streamEdges",
                      "edges processed per stream", config.numStreams)
{
    if (weighted && !fullGraph.hasWeights())
        throw ConfigError(algo.name() + " needs a weighted graph");

    const VertexId v_count = fullGraph.numVertices();
    const VertexId capacity = cfg.sliceCapacity();
    sliceCount = graph::numSlices(v_count, capacity);
    if (sliceCount > 1)
        slices = graph::sliceByDestination(fullGraph, capacity);

    sliceEdgeStart.resize(sliceCount, 0);
    EdgeId edge_cursor = 0;
    for (unsigned s = 0; s < sliceCount; ++s) {
        sliceEdgeStart[s] = edge_cursor;
        edge_cursor += sliceGraph(s).numEdges();
    }

    // Graphicionado record formats: edges carry src_vid (+4 B), active
    // records are (vid, prop) = 8 B.
    const core::RecordFormat fmt{weighted ? 12u : 8u, 8u, 0u};
    layout = std::make_unique<core::MemoryLayout>(
        v_count, edge_cursor, fmt, hasConstProp, sliceCount > 1);
    hbm = std::make_unique<mem::Hbm>(cfg.hbm, this);

    streams.resize(cfg.numStreams);
}

GraphicionadoAccel::~GraphicionadoAccel() = default;

const graph::Csr &
GraphicionadoAccel::sliceGraph(unsigned s) const
{
    return sliceCount == 1 ? fullGraph : slices[s].subgraph;
}

VertexId
GraphicionadoAccel::sliceBegin(unsigned s) const
{
    return sliceCount == 1 ? 0 : slices[s].dstBegin;
}

VertexId
GraphicionadoAccel::sliceEnd(unsigned s) const
{
    return sliceCount == 1 ? fullGraph.numVertices() : slices[s].dstEnd;
}

void
GraphicionadoAccel::buildInitialActives(VertexId source)
{
    activeCur.assign(sliceCount, {});
    activeNext.assign(sliceCount, {});
    auto add = [this](VertexId v) {
        for (unsigned s = 0; s < sliceCount; ++s)
            activeCur[s].push_back(ActiveRecord{v, prop[v]});
    };
    if (algo.allInitiallyActive()) {
        for (VertexId v = 0; v < fullGraph.numVertices(); ++v)
            add(v);
    } else {
        add(source);
    }
}

core::RunResult
GraphicionadoAccel::run(const core::RunOptions &options)
{
    const VertexId v_count = fullGraph.numVertices();
    if (v_count == 0)
        throw ConfigError("cannot run on an empty graph");
    if (options.source >= v_count)
        throw ConfigError(gds::detail::vformat(
            "source %u out of range (V=%u)", options.source, v_count));

    algo.bind(fullGraph);

    prop.resize(v_count);
    tProp.resize(v_count);
    for (VertexId v = 0; v < v_count; ++v) {
        prop[v] = algo.initialProp(v, fullGraph, options.source);
        tProp[v] = algo.tPropIdentity(v, fullGraph, options.source);
    }
    if (hasConstProp) {
        cProp.resize(v_count);
        for (VertexId v = 0; v < v_count; ++v)
            cProp[v] = algo.constProp(v, fullGraph);
    }
    lastReduceAt.assign(v_count, 0);

    buildInitialActives(options.source);
    collectPeLoads = options.collectPeLoads;
    streamLoadTrace.clear();
    streamLoadThisIteration.assign(cfg.numStreams, 0);

    iteration = 0;
    activeBuf = 0;
    startIteration();

    runStart = now;

    // Supervised execution (same protocol as GdsAccel::run): completion,
    // deadlock, livelock and budget exhaustion are distinguished by the
    // Simulator watchdog instead of an assert.
    sim::Simulator driver;
    driver.add(this);
    if (options.sampler) {
        if (options.sampler->probeCount() == 0)
            registerProbes(*options.sampler);
        driver.setSampler(options.sampler);
    }
    driver.setTracer(obs::activeTracer(), options.traceCounterInterval);
    sim::RunLimits limits;
    limits.maxCycles =
        options.cycleBudget != 0 ? options.cycleBudget : 50'000'000'000ULL;
    if (options.stallCycles != 0)
        limits.stallCycles = options.stallCycles;
    limits.fastForward =
        options.fastForward && !common::envFlag("GDS_NO_FASTFORWARD");

    std::optional<sim::FaultInjector> injector;
    if (options.faults.any()) {
        injector.emplace(options.faults); // throws ConfigError if invalid
        hbm->setFaultInjector(&*injector);
    }

    // Checkpoint wiring: same payload protocol as GdsAccel::run()
    // (accelerator, then optional fault/sampler/tracer state, then the
    // driver).
    constexpr std::uint32_t kStateVersion = 1;
    std::optional<sim::CheckpointStore> store;
    std::string identity;
    if (!options.checkpoint.dir.empty()) {
        identity = gds::detail::vformat(
            "graphicionado|%s|V=%u|E=%llu|src=%u|%s", algo.name().c_str(),
            v_count,
            static_cast<unsigned long long>(fullGraph.numEdges()),
            options.source, options.checkpoint.identity.c_str());
        store.emplace(options.checkpoint.dir, options.checkpoint.basename);
    }

    const auto serializeAll = [&](sim::Serializer &s) {
        saveState(s);
        s.writeBool(injector.has_value());
        if (injector)
            injector->saveState(s);
        s.writeBool(options.sampler != nullptr);
        if (options.sampler)
            options.sampler->saveState(s);
        obs::Tracer *tr = obs::activeTracer();
        s.writeBool(tr != nullptr);
        if (tr)
            tr->saveState(s);
        driver.saveState(s);
    };

    if (store && options.checkpoint.resume) {
        std::string reason;
        if (const auto loaded = store->loadLatest(&reason)) {
            if (loaded->meta.stateVersion != kStateVersion ||
                loaded->meta.identity != identity) {
                warn("ignoring checkpoint %s: identity/version mismatch "
                     "(have \"%s\" v%u, want \"%s\" v%u); starting clean",
                     store->currentPath().c_str(),
                     loaded->meta.identity.c_str(),
                     loaded->meta.stateVersion, identity.c_str(),
                     kStateVersion);
            } else {
                sim::Deserializer d(loaded->payload);
                restoreState(d);
                const bool had_injector = d.readBool();
                gds_require(had_injector == injector.has_value(),
                            CheckpointError,
                            "checkpoint fault-injection state does not "
                            "match this run's fault plan");
                if (injector)
                    injector->restoreState(d);
                const bool had_sampler = d.readBool();
                gds_require(had_sampler == (options.sampler != nullptr),
                            CheckpointError,
                            "checkpoint sampler state does not match this "
                            "run's sampler configuration");
                if (options.sampler)
                    options.sampler->restoreState(d);
                const bool had_tracer = d.readBool();
                obs::Tracer *tr = obs::activeTracer();
                gds_require(had_tracer == (tr != nullptr), CheckpointError,
                            "checkpoint tracer state does not match this "
                            "run's tracer configuration");
                if (tr)
                    tr->restoreState(d);
                driver.restoreState(d);
                d.expectEnd();
                inform("resumed from %s at cycle %llu%s",
                       (loaded->usedFallback ? store->previousPath()
                                             : store->currentPath())
                           .c_str(),
                       static_cast<unsigned long long>(loaded->meta.cycle),
                       loaded->usedFallback
                           ? " (previous checkpoint; current was invalid)"
                           : "");
            }
        } else if (!reason.empty()) {
            warn("no usable checkpoint (%s); starting clean",
                 reason.c_str());
        }
    }

    sim::RunHooks hooks;
    hooks.wallBudgetSeconds = options.wallBudgetSeconds;
    if (store) {
        hooks.checkpointInterval = options.checkpoint.interval;
        hooks.writeCheckpoint = [&] {
            sim::Serializer s;
            serializeAll(s);
            sim::CheckpointMeta meta;
            meta.stateVersion = kStateVersion;
            meta.identity = identity;
            meta.cycle = now;
            store->write(meta, s);
        };
    }

    const Cycle start_cycle = runStart;
    const sim::RunReport report = driver.run(
        [&] {
            if (options.killAtCycle != 0 &&
                now - start_cycle >= options.killAtCycle)
                std::raise(SIGKILL);
            return phase == Phase::Finished;
        },
        limits, hooks);

    hbm->setFaultInjector(nullptr);

    if (store && report.outcome == sim::RunOutcome::Completed)
        store->removeAll();

    core::RunResult result;
    result.report = report;
    result.properties = prop;
    result.iterations = iteration;
    result.cycles = now - start_cycle;
    result.edgesProcessed =
        static_cast<std::uint64_t>(statEdgesProcessed.value());
    result.vertexUpdates =
        static_cast<std::uint64_t>(statVertexUpdates.value());
    result.updatesSkipped = 0; // the full sweep never skips
    result.memoryBytes = static_cast<std::uint64_t>(hbm->totalBytes());
    result.footprintBytes = layout->footprintBytes();
    result.bandwidthUtilization = hbm->bandwidthUtilization();
    result.atomicStalls =
        static_cast<std::uint64_t>(statAtomicStalls.value());
    result.peLoads = streamLoadTrace;
    return result;
}

void
GraphicionadoAccel::registerProbes(obs::Sampler &sampler) const
{
    sampler.add("hbm.readBytes", [this] { return hbm->readBytes(); });
    sampler.add("hbm.writeBytes", [this] { return hbm->writeBytes(); });
    sampler.add("stream.backlog", [this] {
        std::size_t total = 0;
        for (const Stream &s : streams)
            total += s.records.size();
        return static_cast<double>(total);
    });
    sampler.add("frontier.records", [this] {
        return activeCur.empty()
                   ? 0.0
                   : static_cast<double>(activeCur[0].size());
    });
    sampler.addScalar("edgesProcessed", statEdgesProcessed);
}

void
GraphicionadoAccel::traceBegin(std::string event)
{
    if (obs::Tracer *t = obs::activeTracer())
        t->begin(t->track(tracePath()), std::move(event), now);
}

void
GraphicionadoAccel::traceEnd()
{
    if (obs::Tracer *t = obs::activeTracer())
        t->end(t->track(tracePath()), now);
}

void
GraphicionadoAccel::startIteration()
{
    activatedThisIteration = 0;
    curSlice = 0;
    bool any_active = false;
    for (const auto &list : activeCur)
        any_active |= !list.empty();
    if (!any_active || iteration >= cfg.maxIterations) {
        phase = Phase::Finished;
        return;
    }
    startScatter();
}

void
GraphicionadoAccel::finishSlice()
{
    traceEnd(); // "apply"
    ++curSlice;
    if (curSlice < sliceCount) {
        startScatter();
        return;
    }
    traceEnd(); // "iteration:N"
    ++iteration;
    ++statIterations;
    if (collectPeLoads) {
        streamLoadTrace.push_back(streamLoadThisIteration);
        streamLoadThisIteration.assign(cfg.numStreams, 0);
    }
    activeCur.swap(activeNext);
    for (auto &list : activeNext)
        list.clear();
    activeBuf ^= 1;
    startIteration();
}

// ---------------------------------------------------------------------
// Scatter ("processing") phase.
// ---------------------------------------------------------------------

void
GraphicionadoAccel::startScatter()
{
    if (curSlice == 0)
        traceBegin("iteration:" + std::to_string(iteration));
    traceBegin("scatter");
    phase = Phase::ScatterPhase;
    const auto &records = activeCur[curSlice];

    sc = ScatterState{};
    sc.recordsTotal = records.size();
    const graph::Csr &sg = sliceGraph(curSlice);
    for (const ActiveRecord &r : records)
        sc.expectedEdges += sg.outDegree(r.vid);
    sc.batchesTotal = ceilDiv<std::uint64_t>(sc.recordsTotal,
                                             cfg.vprefBatch);
    sc.batchReady.assign(sc.batchesTotal, 0);
    sc.fetch.assign(sc.recordsTotal, RecordFetch{});
    sc.fetchedEdges.assign(sc.recordsTotal, {});

    for (Stream &stream : streams) {
        stream.records.clear();
        stream.edgeCursor = 0;
    }
}

bool
GraphicionadoAccel::scatterDone() const
{
    return sc.recordsDone == sc.recordsTotal &&
           sc.edgesReduced == sc.expectedEdges;
}

void
GraphicionadoAccel::tickScatter()
{
    const graph::Csr &sg = sliceGraph(curSlice);
    const auto &records = activeCur[curSlice];

    // --- Streams: one edge per cycle, stalling on RAW conflicts. ---
    for (unsigned s = 0; s < cfg.numStreams; ++s) {
        Stream &stream = streams[s];
        if (stream.records.empty())
            continue;
        const std::uint64_t rec = stream.records.front();
        const ActiveRecord &r = records[rec];
        const std::uint64_t degree = sg.outDegree(r.vid);
        if (degree == 0) {
            stream.records.pop_front();
            stream.edgeCursor = 0;
            ++sc.recordsDone;
            continue;
        }
        RecordFetch &f = sc.fetch[rec];
        if (!f.ready)
            continue; // edge data not yet on chip

        const EdgeTask &task = sc.fetchedEdges[rec][stream.edgeCursor];
        // Atomic enforcement: stall while a conflicting update is inside
        // the reduce pipeline.
        if (now - lastReduceAt[task.dst] < cfg.atomicPipelineDepth &&
            lastReduceAt[task.dst] != 0) {
            ++statAtomicStalls;
            continue;
        }
        const PropValue res = algo.processEdge(r.prop, task.weight);
        tProp[task.dst] = algo.reduce(tProp[task.dst], res);
        lastReduceAt[task.dst] = now;
        ++statReduceOps;
        ++statEdgesProcessed;
        statStreamEdges[s] += 1;
        if (collectPeLoads)
            streamLoadThisIteration[s] += 1;
        ++sc.edgesReduced;
        progressed(now);
        if (++stream.edgeCursor == degree) {
            stream.records.pop_front();
            stream.edgeCursor = 0;
            sc.fetchedEdges[rec] = {};
            ++sc.recordsDone;
        }
    }

    // --- Per-stream edge prefetch (offsets are on chip, so fetches start
    // immediately; each record reads one sentinel record extra and every
    // record carries src_vid). ---
    unsigned issued = 0;
    bool mem_blocked = false;
    for (unsigned s = 0; s < cfg.numStreams && issued < 8 && !mem_blocked;
         ++s) {
        Stream &stream = streams[s];
        const std::size_t lookahead =
            std::min<std::size_t>(stream.records.size(),
                                  cfg.streamLookahead);
        for (std::size_t i = 0; i < lookahead && issued < 8; ++i) {
            const std::uint64_t rec = stream.records[i];
            RecordFetch &f = sc.fetch[rec];
            if (f.ready || f.allIssued)
                continue;
            if (eport.inflight() >= cfg.edgeMaxInflight) {
                mem_blocked = true;
                break;
            }
            const ActiveRecord &r = records[rec];
            const std::uint64_t degree = sg.outDegree(r.vid);
            if (degree == 0) {
                f.ready = true;
                continue;
            }
            // +1 sentinel record read to detect the end of the list.
            const std::uint64_t total =
                (degree + 1) * layout->fmt.edgeBytes;
            const Addr begin = layout->edgeAddr(sliceEdgeStart[curSlice] +
                                                sg.offsetOf(r.vid));
            const unsigned chunk = static_cast<unsigned>(
                std::min<std::uint64_t>(total - f.bytesIssued,
                                        maxRequestBytes));
            if (!hbm->access(begin + f.bytesIssued, chunk, false,
                             makeTag(Tag::EdgeFetch, rec), &eport)) {
                mem_blocked = true;
                break;
            }
            f.started = true;
            f.bytesIssued += chunk;
            ++f.parts;
            ++issued;
            if (f.bytesIssued >= total)
                f.allIssued = true;
        }
    }

    // --- Vpref: stream active records, hash-assign to streams. ---
    while (sc.batchesIssued < sc.batchesTotal &&
           vport.inflight() < cfg.vprefMaxInflight) {
        const std::uint64_t b = sc.batchesIssued;
        const std::uint64_t first = b * cfg.vprefBatch;
        const std::uint64_t count = std::min<std::uint64_t>(
            cfg.vprefBatch, sc.recordsTotal - first);
        const Addr addr = layout->activeRecordAddr(activeBuf, first);
        if (!hbm->access(addr,
                         static_cast<unsigned>(
                             count * layout->fmt.activeRecordBytes),
                         false, makeTag(Tag::RecordBatch, b), &vport))
            break;
        ++sc.batchesIssued;
    }
    unsigned committed = 0;
    while (sc.commitCursor < sc.recordsTotal &&
           committed < cfg.numStreams) {
        const std::uint64_t k = sc.commitCursor;
        if (!sc.batchReady[k / cfg.vprefBatch])
            break;
        Stream &stream =
            streams[records[k].vid % cfg.numStreams]; // hash placement
        if (stream.records.size() >= cfg.streamQueueRecords)
            break; // head-of-line block: the imbalance bottleneck
        stream.records.push_back(k);
        ++sc.commitCursor;
        ++committed;
    }
}

// ---------------------------------------------------------------------
// Apply phase: full vertex sweep.
// ---------------------------------------------------------------------

void
GraphicionadoAccel::startApply()
{
    traceEnd(); // "scatter"
    traceBegin("apply");
    phase = Phase::ApplyPhase;
    ap = ApplyState{};
    ap.sweepBegin = sliceBegin(curSlice);
    ap.sweepEnd = sliceEnd(curSlice);
    ap.auWriteCursor = layout->activeArrayBase(activeBuf ^ 1);
    const std::uint64_t verts = ap.sweepEnd - ap.sweepBegin;
    ap.batchesTotal = ceilDiv<std::uint64_t>(verts, applyBatchVerts);
    ap.batchIssuedParts.assign(ap.batchesTotal, 0);
    ap.batchPending.assign(ap.batchesTotal, 0);
    ap.commitCursor = ap.sweepBegin;
}

bool
GraphicionadoAccel::applyDone() const
{
    return ap.appliedCount == ap.sweepEnd - ap.sweepBegin &&
           ap.pendingApplies.empty() && ap.writes.empty() &&
           ap.pendingAuRecords == 0 && wport.inflight() == 0;
}

void
GraphicionadoAccel::tickApply()
{
    // --- Streams apply one vertex per cycle each. ---
    unsigned applied = 0;
    while (!ap.pendingApplies.empty() && applied < cfg.numStreams) {
        const VertexId v = ap.pendingApplies.front();
        ap.pendingApplies.pop_front();
        const PropValue cp = hasConstProp ? cProp[v] : PropValue{0};
        const PropValue apply_res = algo.apply(prop[v], tProp[v], cp);
        if (algo.changed(prop[v], apply_res)) {
            prop[v] = apply_res;
            ++activatedThisIteration;
            ++statVertexUpdates;
            for (unsigned s = 0; s < sliceCount; ++s)
                activeNext[s].push_back(ActiveRecord{v, apply_res});
            ap.pendingAuRecords += sliceCount;
            // Intermittent, uncoalesced property store (4 B -> one 32 B
            // transaction): the update-irregularity cost GraphDynS
            // removes by write coalescing.
            ap.writes.push_back({layout->propAddr(v), bytesPerWord});
        } else if (algo.tPropResetsEachIteration()) {
            prop[v] = apply_res;
            ap.writes.push_back({layout->propAddr(v), bytesPerWord});
        }
        if (algo.tPropResetsEachIteration())
            tProp[v] = 0.0f;
        ++statApplyOps;
        ++ap.appliedCount;
        ++applied;
        progressed(now);
    }

    // --- Flush stores: active-record batches + property writes. ---
    while (ap.pendingAuRecords >= auRecordBatch ||
           (ap.pendingAuRecords > 0 &&
            ap.appliedCount == ap.sweepEnd - ap.sweepBegin)) {
        const std::uint64_t n =
            std::min<std::uint64_t>(ap.pendingAuRecords, auRecordBatch);
        const unsigned bytes = static_cast<unsigned>(
            n * layout->fmt.activeRecordBytes);
        if (!hbm->access(ap.auWriteCursor, bytes, true,
                         makeTag(Tag::Store, 0), &wport))
            break;
        ap.auWriteCursor += bytes;
        ap.pendingAuRecords -= n;
    }
    while (!ap.writes.empty()) {
        const auto [addr, bytes] = ap.writes.front();
        if (!hbm->access(addr, bytes, true, makeTag(Tag::Store, 1),
                         &wport))
            break;
        ap.writes.pop_front();
    }

    // --- Sweep prefetch: stream every vertex's property (and cProp). ---
    const std::uint8_t parts_needed = hasConstProp ? 2 : 1;
    while (ap.batchesIssued < ap.batchesTotal &&
           vport.inflight() < cfg.applyMaxInflight) {
        const std::uint64_t b = ap.batchesIssued;
        const VertexId first = ap.sweepBegin +
                               static_cast<VertexId>(b * applyBatchVerts);
        const unsigned count = static_cast<unsigned>(
            std::min<std::uint64_t>(applyBatchVerts, ap.sweepEnd - first));
        std::uint8_t &parts = ap.batchIssuedParts[b];
        while (parts < parts_needed) {
            const Addr addr = parts == 0 ? layout->propAddr(first)
                                         : layout->cPropAddr(first);
            if (!hbm->access(addr, count * bytesPerWord, false,
                             makeTag(Tag::ApplyBatch, b), &vport))
                break;
            ++parts;
            ++ap.batchPending[b];
        }
        if (parts < parts_needed)
            break; // memory backpressure: resume this batch next cycle
        ++ap.batchesIssued;
    }

    // --- Commit fetched vertices to the apply queue, in order. ---
    unsigned committed = 0;
    while (ap.commitCursor < ap.sweepEnd && committed < cfg.numStreams) {
        const std::uint64_t b =
            (ap.commitCursor - ap.sweepBegin) / applyBatchVerts;
        if (ap.batchIssuedParts[b] < parts_needed ||
            ap.batchPending[b] != 0)
            break;
        ap.pendingApplies.push_back(ap.commitCursor);
        ++ap.commitCursor;
        ++committed;
    }
}

// ---------------------------------------------------------------------
// Top-level tick.
// ---------------------------------------------------------------------

bool
GraphicionadoAccel::busy() const
{
    if (vport.inflight() > 0 || eport.inflight() > 0 ||
        wport.inflight() > 0)
        return true;
    if (vport.hasResponse() || eport.hasResponse() || wport.hasResponse())
        return true;
    for (const Stream &stream : streams) {
        if (!stream.records.empty())
            return true;
    }
    return !ap.pendingApplies.empty() || !ap.writes.empty() ||
           ap.pendingAuRecords > 0;
}

std::string
GraphicionadoAccel::debugState() const
{
    std::ostringstream os;
    os << "phase=";
    switch (phase) {
      case Phase::ScatterPhase:
        os << "scatter";
        break;
      case Phase::ApplyPhase:
        os << "apply";
        break;
      case Phase::Finished:
        os << "finished";
        break;
    }
    os << " iter=" << iteration << " slice=" << curSlice << "/" << sliceCount
       << " cycle=" << now;
    os << " inflight[v=" << vport.inflight() << " e=" << eport.inflight()
       << " w=" << wport.inflight() << "]";
    if (phase == Phase::ScatterPhase) {
        os << " scatter[done=" << sc.recordsDone << "/" << sc.recordsTotal
           << " reduced=" << sc.edgesReduced << "/" << sc.expectedEdges
           << " commit=" << sc.commitCursor << "]";
    } else if (phase == Phase::ApplyPhase) {
        os << " apply[applied=" << ap.appliedCount << "/"
           << (ap.sweepEnd - ap.sweepBegin)
           << " pending=" << ap.pendingApplies.size()
           << " writes=" << ap.writes.size() << "]";
    }
    std::size_t stream_q = 0;
    for (const Stream &stream : streams)
        stream_q += stream.records.size();
    os << " queues[streams=" << stream_q << "]";
    return os.str();
}

void
GraphicionadoAccel::tick()
{
    while (vport.hasResponse()) {
        const std::uint64_t tag = vport.popResponse();
        const std::uint64_t payload = tagPayload(tag);
        switch (tagKind(tag)) {
          case Tag::RecordBatch:
            sc.batchReady[payload] = 1;
            break;
          case Tag::ApplyBatch:
            gds_assert(ap.batchPending[payload] > 0, "stray apply batch");
            --ap.batchPending[payload];
            break;
          case Tag::TPropFill:
            break;
          default:
            panic("unexpected tag on the Graphicionado vport");
        }
    }
    while (eport.hasResponse()) {
        const std::uint64_t tag = eport.popResponse();
        const std::uint64_t rec = tagPayload(tag);
        gds_assert(tagKind(tag) == Tag::EdgeFetch, "bad eport tag");
        RecordFetch &f = sc.fetch[rec];
        gds_assert(f.parts > 0, "stray edge response");
        --f.parts;
        if (f.allIssued && f.parts == 0 && !f.ready) {
            const ActiveRecord &r = activeCur[curSlice][rec];
            const graph::Csr &sg = sliceGraph(curSlice);
            const EdgeId offset = sg.offsetOf(r.vid);
            const std::uint64_t degree = sg.outDegree(r.vid);
            auto &edges = sc.fetchedEdges[rec];
            edges.reserve(degree);
            for (std::uint64_t i = 0; i < degree; ++i) {
                const EdgeId e = offset + i;
                edges.push_back(EdgeTask{
                    sg.edgeDest(e),
                    weighted ? sg.edgeWeight(e) : Weight{1}});
            }
            f.ready = true;
        }
    }
    while (wport.hasResponse())
        wport.popResponse();

    switch (phase) {
      case Phase::ScatterPhase:
        ++statScatterCycles;
        tickScatter();
        if (scatterDone())
            startApply();
        break;
      case Phase::ApplyPhase:
        ++statApplyCycles;
        tickApply();
        if (applyDone())
            finishSlice();
        break;
      case Phase::Finished:
        break;
    }

    if (debug::anyEnabled()) {
        // Re-scope attribution: the HBM is ticked from inside our tick,
        // but its DPRINTF lines should carry its own path.
        const debug::ScopedTraceComponent scope(hbm->tracePath());
        hbm->tick();
    } else {
        hbm->tick();
    }
    ++now;
}

bool
GraphicionadoAccel::scatterQuiescent() const
{
    const graph::Csr &sg = sliceGraph(curSlice);
    const auto &records = activeCur[curSlice];

    // A drained phase transitions at the end of its next tick.
    if (scatterDone())
        return false;

    // Streams: a head record with edge data (or none to fetch) acts next
    // tick -- reducing, RAW-stalling, or retiring. Only "waiting for edge
    // data" is a pure wait.
    for (const Stream &stream : streams) {
        if (stream.records.empty())
            continue;
        const std::uint64_t rec = stream.records.front();
        if (sg.outDegree(records[rec].vid) == 0 || sc.fetch[rec].ready)
            return false;
    }
    // Edge prefetch: with in-flight budget available, any lookahead record
    // still needing its fetch either issues a request or (degree 0) is
    // marked ready on the spot.
    if (eport.inflight() < cfg.edgeMaxInflight) {
        for (const Stream &stream : streams) {
            const std::size_t lookahead = std::min<std::size_t>(
                stream.records.size(), cfg.streamLookahead);
            for (std::size_t i = 0; i < lookahead; ++i) {
                const RecordFetch &f = sc.fetch[stream.records[i]];
                if (!f.ready && !f.allIssued)
                    return false;
            }
        }
    }
    // Vpref: an issuable record batch, or a commit neither blocked on
    // batch data nor on a full stream queue.
    if (sc.batchesIssued < sc.batchesTotal &&
        vport.inflight() < cfg.vprefMaxInflight)
        return false;
    if (sc.commitCursor < sc.recordsTotal) {
        const std::uint64_t k = sc.commitCursor;
        if (sc.batchReady[k / cfg.vprefBatch] &&
            streams[records[k].vid % cfg.numStreams].records.size() <
                cfg.streamQueueRecords)
            return false;
    }
    return true;
}

bool
GraphicionadoAccel::applyQuiescent() const
{
    // A drained phase transitions at the end of its next tick.
    if (applyDone())
        return false;
    // Queued applies execute next tick; queued stores issue requests.
    if (!ap.pendingApplies.empty() || !ap.writes.empty())
        return false;
    if (ap.pendingAuRecords >= auRecordBatch ||
        (ap.pendingAuRecords > 0 &&
         ap.appliedCount == ap.sweepEnd - ap.sweepBegin))
        return false;
    // Sweep prefetch: an open window always attempts an access.
    if (ap.batchesIssued < ap.batchesTotal &&
        vport.inflight() < cfg.applyMaxInflight)
        return false;
    // Commit: the next batch being fully fetched commits vertices.
    if (ap.commitCursor < ap.sweepEnd) {
        const std::uint64_t b =
            (ap.commitCursor - ap.sweepBegin) / applyBatchVerts;
        const std::uint8_t parts_needed = hasConstProp ? 2 : 1;
        if (ap.batchIssuedParts[b] >= parts_needed &&
            ap.batchPending[b] == 0)
            return false;
    }
    return true;
}

Cycle
GraphicionadoAccel::nextEventCycle() const
{
    if (vport.hasResponse() || eport.hasResponse() || wport.hasResponse())
        return 1;
    switch (phase) {
      case Phase::ScatterPhase:
        if (!scatterQuiescent())
            return 1;
        break;
      case Phase::ApplyPhase:
        if (!applyQuiescent())
            return 1;
        break;
      case Phase::Finished:
        break;
    }
    const Cycle horizon = hbm->nextEventCycle();
    return horizon < 1 ? Cycle{1} : horizon;
}

void
GraphicionadoAccel::skipCycles(Cycle cycles)
{
    switch (phase) {
      case Phase::ScatterPhase:
        statScatterCycles += static_cast<double>(cycles);
        break;
      case Phase::ApplyPhase:
        statApplyCycles += static_cast<double>(cycles);
        break;
      case Phase::Finished:
        break;
    }
    hbm->skipCycles(cycles);
    now += cycles;
}

namespace
{

constexpr std::uint32_t kBaselineMarker = 0x47494f31; // "GIO1"

template <typename SER, typename T>
void
saveNestedVec(SER &s, const std::vector<std::vector<T>> &v)
{
    s.writeU64(v.size());
    for (const std::vector<T> &inner : v)
        s.writePodVec(inner);
}

template <typename DES, typename T>
void
restoreNestedVec(DES &d, std::vector<std::vector<T>> &v)
{
    v.resize(static_cast<std::size_t>(d.readU64()));
    for (std::vector<T> &inner : v)
        d.readPodVec(inner);
}

} // namespace

void
GraphicionadoAccel::saveState(sim::Serializer &s) const
{
    s.registerPointer(&vport);
    s.registerPointer(&eport);
    s.registerPointer(&wport);

    sim::Component::saveState(s);
    s.writeMarker(kBaselineMarker);

    s.writePodVec(prop);
    s.writePodVec(tProp);
    s.writePodVec(cProp);
    s.writePodVec(lastReduceAt);
    saveNestedVec(s, activeCur);
    saveNestedVec(s, activeNext);
    s.writeU64(activatedThisIteration);

    for (const Stream &stream : streams) {
        s.writePodDeque(stream.records);
        s.writeU32(stream.edgeCursor);
    }

    s.writeU64(sc.recordsTotal);
    s.writeU64(sc.expectedEdges);
    s.writeU64(sc.batchesTotal);
    s.writeU64(sc.batchesIssued);
    s.writePodVec(sc.batchReady);
    s.writeU64(sc.commitCursor);
    s.writeU64(sc.recordsDone);
    s.writeU64(sc.edgesReduced);
    s.writePodVec(sc.fetch);
    saveNestedVec(s, sc.fetchedEdges);

    s.writeU32(ap.sweepBegin);
    s.writeU32(ap.sweepEnd);
    s.writeU64(ap.batchesTotal);
    s.writeU64(ap.batchesIssued);
    s.writePodVec(ap.batchIssuedParts);
    s.writePodVec(ap.batchPending);
    s.writeU32(ap.commitCursor);
    s.writeU32(ap.appliedCount);
    s.writePodDeque(ap.pendingApplies);
    s.writeU64(ap.pendingAuRecords);
    s.writeU64(ap.auWriteCursor);
    // std::pair is not trivially copyable; serialize element-wise.
    s.writeU64(ap.writes.size());
    for (const auto &[addr, count] : ap.writes) {
        s.writeU64(addr);
        s.writeU32(count);
    }

    s.writeU8(static_cast<std::uint8_t>(phase));
    s.writeU32(curSlice);
    s.writeU32(iteration);
    s.writeU32(activeBuf);
    s.writeU64(now);
    s.writeU64(runStart);
    s.writeBool(collectPeLoads);
    s.writePodVec(streamLoadThisIteration);
    saveNestedVec(s, streamLoadTrace);

    vport.saveState(s);
    eport.saveState(s);
    wport.saveState(s);
    hbm->saveState(s);
}

void
GraphicionadoAccel::restoreState(sim::Deserializer &d)
{
    d.registerPointer(&vport);
    d.registerPointer(&eport);
    d.registerPointer(&wport);

    sim::Component::restoreState(d);
    d.expectMarker(kBaselineMarker);

    d.readPodVec(prop);
    d.readPodVec(tProp);
    d.readPodVec(cProp);
    d.readPodVec(lastReduceAt);
    restoreNestedVec(d, activeCur);
    restoreNestedVec(d, activeNext);
    activatedThisIteration = d.readU64();

    for (Stream &stream : streams) {
        d.readPodDeque(stream.records);
        stream.edgeCursor = d.readU32();
    }

    sc.recordsTotal = d.readU64();
    sc.expectedEdges = d.readU64();
    sc.batchesTotal = d.readU64();
    sc.batchesIssued = d.readU64();
    d.readPodVec(sc.batchReady);
    sc.commitCursor = d.readU64();
    sc.recordsDone = d.readU64();
    sc.edgesReduced = d.readU64();
    d.readPodVec(sc.fetch);
    restoreNestedVec(d, sc.fetchedEdges);

    ap.sweepBegin = d.readU32();
    ap.sweepEnd = d.readU32();
    ap.batchesTotal = d.readU64();
    ap.batchesIssued = d.readU64();
    d.readPodVec(ap.batchIssuedParts);
    d.readPodVec(ap.batchPending);
    ap.commitCursor = d.readU32();
    ap.appliedCount = d.readU32();
    d.readPodDeque(ap.pendingApplies);
    ap.pendingAuRecords = d.readU64();
    ap.auWriteCursor = d.readU64();
    ap.writes.clear();
    const std::uint64_t pending_writes = d.readU64();
    for (std::uint64_t i = 0; i < pending_writes; ++i) {
        const Addr addr = d.readU64();
        const unsigned count = d.readU32();
        ap.writes.emplace_back(addr, count);
    }

    phase = static_cast<Phase>(d.readU8());
    curSlice = d.readU32();
    iteration = d.readU32();
    activeBuf = d.readU32();
    now = d.readU64();
    runStart = d.readU64();
    collectPeLoads = d.readBool();
    d.readPodVec(streamLoadThisIteration);
    restoreNestedVec(d, streamLoadTrace);

    vport.restoreState(d);
    eport.restoreState(d);
    wport.restoreState(d);
    hbm->restoreState(d);
}

} // namespace gds::baseline
