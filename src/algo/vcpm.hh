/**
 * @file
 * The push-based Vertex-Centric Programming Model (PB-VCPM, Algorithm 1)
 * and its application-defined kernel interface (Table 2).
 *
 * An algorithm supplies three kernels:
 *   Process_Edge(u.prop, e.weight)      -> edge result
 *   Reduce(v.tProp, edge result)        -> new v.tProp
 *   Apply(v.prop, v.tProp, v.cProp)     -> candidate new v.prop
 * plus the initialization and activation semantics that Algorithm 1 leaves
 * to the application (initial properties, reduce identity, whether the
 * temporary property resets between iterations, which vertices start
 * active, and how "changed" is decided in Apply).
 *
 * Both cycle-level accelerator models and the functional reference engine
 * execute through this one interface, so correctness of the timing models
 * is checked against the reference for free.
 */

#pragma once

#include <memory>
#include <string>

#include "common/types.hh"
#include "graph/csr.hh"

namespace gds::algo
{

/** The five evaluated graph analytics algorithms. */
enum class AlgorithmId
{
    Bfs,  ///< Breadth-First Search
    Sssp, ///< Single-Source Shortest Path
    Cc,   ///< Connected Components (label propagation)
    Sswp, ///< Single-Source Widest Path
    Pr,   ///< PageRank
};

/** All algorithm ids, in the paper's presentation order. */
inline constexpr AlgorithmId allAlgorithms[] = {
    AlgorithmId::Bfs, AlgorithmId::Sssp, AlgorithmId::Cc, AlgorithmId::Sswp,
    AlgorithmId::Pr};

/** Application-defined kernels + semantics of one graph algorithm. */
class VcpmAlgorithm
{
  public:
    virtual ~VcpmAlgorithm() = default;

    virtual AlgorithmId id() const = 0;
    virtual std::string name() const = 0;

    /** True if Process_Edge consumes e.weight (SSSP, SSWP). Determines the
     *  in-memory edge record size: 8 B weighted, 4 B unweighted. */
    virtual bool usesWeights() const = 0;

    /** True if Apply consumes a constant per-vertex property (PR: degree). */
    virtual bool usesConstProp() const { return false; }

    /** True if every vertex starts active (CC, PR); otherwise only the
     *  source vertex does (BFS, SSSP, SSWP). */
    virtual bool allInitiallyActive() const = 0;

    /** True if v.tProp is reset to the reduce identity after every Apply
     *  phase (PR accumulates fresh contributions per iteration). */
    virtual bool tPropResetsEachIteration() const { return false; }

    /**
     * Bind graph-dependent constants before a run (PR captures
     * (1 - d) / |V| here). Engines must call this once per graph.
     */
    virtual void bind(const graph::Csr &g) { (void)g; }

    /** Initial v.prop. */
    virtual PropValue initialProp(VertexId v, const graph::Csr &g,
                                  VertexId source) const = 0;

    /** Initial / identity v.tProp (the value Reduce starts from). */
    virtual PropValue tPropIdentity(VertexId v, const graph::Csr &g,
                                    VertexId source) const = 0;

    /** Constant per-vertex property v.cProp (PR: out-degree). */
    virtual PropValue
    constProp(VertexId v, const graph::Csr &g) const
    {
        (void)v;
        (void)g;
        return 0.0f;
    }

    /** Table 2: Process_Edge. */
    virtual PropValue processEdge(PropValue u_prop, Weight weight) const = 0;

    /** Table 2: Reduce. Must be commutative and associative. */
    virtual PropValue reduce(PropValue t_prop, PropValue result) const = 0;

    /** Table 2: Apply. */
    virtual PropValue apply(PropValue prop, PropValue t_prop,
                            PropValue c_prop) const = 0;

    /**
     * "v.prop != applyRes" test of Algorithm 1 line 11. PR uses a relative
     * tolerance so the fixed point terminates in floating point.
     */
    virtual bool
    changed(PropValue old_prop, PropValue new_prop) const
    {
        return old_prop != new_prop;
    }
};

/** Instantiate an algorithm by id. */
std::unique_ptr<VcpmAlgorithm> makeAlgorithm(AlgorithmId id);

/** Short display tag ("BFS", "SSSP", ...). */
std::string algorithmName(AlgorithmId id);

/**
 * Deterministic default source: the highest-out-degree vertex (guarantees
 * a large traversal on every synthetic surrogate).
 */
VertexId defaultSource(const graph::Csr &g);

} // namespace gds::algo
