/**
 * @file
 * Independent result validators (Graph500-style): O(V + E) consistency
 * checks on a finished property vector that do not re-run the algorithm.
 * They verify local optimality conditions -- e.g. every SSSP distance is
 * tight over some edge and no edge can relax further -- so any engine's
 * output (reference, GraphDynS, Graphicionado, GunrockSim) can be
 * certified without trusting another executor.
 */

#pragma once

#include <string>
#include <vector>

#include "algo/vcpm.hh"
#include "graph/csr.hh"

namespace gds::algo
{

/** Validation outcome: ok() or the first violated condition. */
struct ValidationResult
{
    bool valid = true;
    std::string message;

    static ValidationResult
    ok()
    {
        return {};
    }

    static ValidationResult
    fail(std::string why)
    {
        return {false, std::move(why)};
    }
};

/**
 * BFS levels: source is 0; every reached vertex has a predecessor one
 * level lower; no edge skips a level (level[dst] <= level[src] + 1);
 * unreached vertices have no reached in-neighbour.
 */
ValidationResult validateBfs(const graph::Csr &g, VertexId source,
                             const std::vector<PropValue> &level);

/**
 * SSSP distances: source is 0; no edge can relax
 * (dist[dst] <= dist[src] + w); every finite non-source distance is
 * tight over at least one in-edge.
 */
ValidationResult validateSssp(const graph::Csr &g, VertexId source,
                              const std::vector<PropValue> &dist);

/**
 * SSWP widths: source is infinity; no edge can widen
 * (width[dst] >= min(width[src], w)); every positive non-source width is
 * achieved by some in-edge.
 */
ValidationResult validateSswp(const graph::Csr &g, VertexId source,
                              const std::vector<PropValue> &width);

/**
 * CC labels (label-propagation semantics over directed edges iterated to
 * a fixed point): label[v] <= v; labels cannot propagate further
 * (label[dst] <= label[src]); every label names a vertex that holds it.
 */
ValidationResult validateCc(const graph::Csr &g,
                            const std::vector<PropValue> &label);

/**
 * PR (stored as rank/out-degree): all values positive and finite; mass
 * does not exceed 1; and, because activation-gated PR admits no local
 * balance certificate (deactivated vertices drop out of their
 * neighbours' sums), the ranks are compared in aggregate against an
 * independent dense power iteration: mean relative deviation must stay
 * within @p tolerance. This makes validatePr a semi-oracle, unlike the
 * purely local validators above.
 */
ValidationResult validatePr(const graph::Csr &g,
                            const std::vector<PropValue> &prop,
                            double tolerance = 0.10);

/** Dispatch to the right validator for @p id. */
ValidationResult validate(AlgorithmId id, const graph::Csr &g,
                          VertexId source,
                          const std::vector<PropValue> &properties);

} // namespace gds::algo
