#include "algo/reference_engine.hh"

#include "common/error.hh"

namespace gds::algo
{

namespace
{

std::size_t
degreeBucket(std::uint64_t d)
{
    if (d == 0)
        return 0;
    if (d <= 2)
        return 1;
    if (d <= 4)
        return 2;
    if (d <= 8)
        return 3;
    if (d <= 16)
        return 4;
    if (d <= 32)
        return 5;
    if (d <= 64)
        return 6;
    return 7;
}

} // namespace

ReferenceResult
runReference(const graph::Csr &g, VcpmAlgorithm &algorithm, VertexId source,
             const ReferenceOptions &options)
{
    const VertexId v_count = g.numVertices();
    gds_require(v_count > 0, ConfigError, "cannot run on an empty graph");
    gds_require(source < v_count, ConfigError, "source %u out of range",
                source);
    gds_require(!algorithm.usesWeights() || g.hasWeights(), ConfigError,
               "%s needs a weighted graph", algorithm.name().c_str());

    algorithm.bind(g);

    std::vector<PropValue> prop(v_count);
    std::vector<PropValue> t_prop(v_count);
    std::vector<PropValue> c_prop;
    for (VertexId v = 0; v < v_count; ++v) {
        prop[v] = algorithm.initialProp(v, g, source);
        t_prop[v] = algorithm.tPropIdentity(v, g, source);
    }
    if (algorithm.usesConstProp()) {
        c_prop.resize(v_count);
        for (VertexId v = 0; v < v_count; ++v)
            c_prop[v] = algorithm.constProp(v, g);
    }

    std::vector<VertexId> active;
    if (algorithm.allInitiallyActive()) {
        active.resize(v_count);
        for (VertexId v = 0; v < v_count; ++v)
            active[v] = v;
    } else {
        active.push_back(source);
    }

    ReferenceResult result;
    // Marks destinations already reduced this iteration (conflict proxy).
    std::vector<unsigned> touched_epoch(v_count, 0);
    unsigned epoch = 0;

    while (!active.empty() && result.iterations < options.maxIterations) {
        ++result.iterations;
        ++epoch;

        IterationTrace trace;
        trace.iteration = result.iterations;
        trace.activeVertices = active.size();

        // --- Scatter phase ---
        std::uint64_t warp_max = 0;
        std::size_t warp_fill = 0;
        for (const VertexId u : active) {
            const std::uint64_t degree = g.outDegree(u);
            trace.edgesProcessed += degree;
            if (options.collectTrace) {
                ++trace.degreeHistogram[degreeBucket(degree)];
                trace.maxActiveDegree =
                    std::max(trace.maxActiveDegree, degree);
                warp_max = std::max(warp_max, degree);
                if (++warp_fill == 32) {
                    trace.warpMaxDegreeSum += warp_max;
                    warp_max = 0;
                    warp_fill = 0;
                }
            }
            const auto nbrs = g.neighborsOf(u);
            for (std::size_t i = 0; i < nbrs.size(); ++i) {
                const VertexId dst = nbrs[i];
                const Weight w =
                    algorithm.usesWeights() ? g.weightsOf(u)[i] : Weight{1};
                const PropValue res = algorithm.processEdge(prop[u], w);
                const PropValue reduced = algorithm.reduce(t_prop[dst], res);
                if (reduced != t_prop[dst]) {
                    t_prop[dst] = reduced;
                    ++trace.tPropModifications;
                }
                if (touched_epoch[dst] == epoch)
                    ++trace.conflictingReduces;
                touched_epoch[dst] = epoch;
            }
        }
        if (options.collectTrace && warp_fill > 0)
            trace.warpMaxDegreeSum += warp_max;

        // --- Apply phase ---
        active.clear();
        for (VertexId v = 0; v < v_count; ++v) {
            const PropValue cp =
                algorithm.usesConstProp() ? c_prop[v] : PropValue{0};
            const PropValue apply_res =
                algorithm.apply(prop[v], t_prop[v], cp);
            if (algorithm.changed(prop[v], apply_res)) {
                prop[v] = apply_res;
                active.push_back(v);
                ++trace.vertexUpdates;
            } else if (algorithm.tPropResetsEachIteration()) {
                // PR stores the converged rank even when within tolerance.
                prop[v] = apply_res;
            }
            if (algorithm.tPropResetsEachIteration())
                t_prop[v] = algorithm.tPropIdentity(v, g, source);
        }

        result.totalEdgesProcessed += trace.edgesProcessed;
        result.totalVertexUpdates += trace.vertexUpdates;
        if (options.collectTrace)
            result.trace.push_back(trace);
    }

    result.properties = std::move(prop);
    return result;
}

} // namespace gds::algo
