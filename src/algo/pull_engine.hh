/**
 * @file
 * Pull-based functional executor of the VCPM kernels: the standard
 * alternative to Algorithm 1's push formulation. Every iteration, every
 * vertex *pulls* contributions over its in-edges (the transposed graph),
 * so no write conflicts exist at all -- the formulation GPU frameworks
 * switch to on dense frontiers.
 *
 * For the monotone algorithms (BFS/SSSP/CC/SSWP), push and pull converge
 * to the same fixed point, which makes this engine an independent
 * cross-check of the push reference and of both accelerator models. For
 * PR it is exactly the dense power iteration (no activation gating), the
 * fixed point validatePr certifies against.
 */

#pragma once

#include "algo/vcpm.hh"

namespace gds::algo
{

/** Result of a pull-mode run. */
struct PullResult
{
    std::vector<PropValue> properties;
    unsigned iterations = 0;
    std::uint64_t edgesScanned = 0;
};

/**
 * Execute @p algorithm in pull mode until no property changes (or the
 * iteration cap). Internally builds the transpose once (O(V + E)).
 */
PullResult runPullReference(const graph::Csr &g,
                            VcpmAlgorithm &algorithm, VertexId source,
                            unsigned max_iterations = 1000);

} // namespace gds::algo
