/**
 * @file
 * The five evaluated algorithms (Table 2) expressed as VCPM kernels.
 */

#include "algo/vcpm.hh"
#include "common/error.hh"

#include <algorithm>
#include <cmath>

namespace gds::algo
{

namespace
{

/** BFS: prop = level; relax min(level_u + 1). */
class Bfs : public VcpmAlgorithm
{
  public:
    AlgorithmId id() const override { return AlgorithmId::Bfs; }
    std::string name() const override { return "BFS"; }
    bool usesWeights() const override { return false; }
    bool allInitiallyActive() const override { return false; }

    PropValue
    initialProp(VertexId v, const graph::Csr &, VertexId source) const
        override
    {
        return v == source ? 0.0f : propInf;
    }

    PropValue
    tPropIdentity(VertexId v, const graph::Csr &g, VertexId source) const
        override
    {
        return initialProp(v, g, source);
    }

    PropValue
    processEdge(PropValue u_prop, Weight) const override
    {
        return u_prop + 1.0f;
    }

    PropValue
    reduce(PropValue t_prop, PropValue result) const override
    {
        return std::min(t_prop, result);
    }

    PropValue
    apply(PropValue prop, PropValue t_prop, PropValue) const override
    {
        return std::min(prop, t_prop);
    }
};

/** SSSP: prop = distance; relax min(dist_u + w). */
class Sssp : public VcpmAlgorithm
{
  public:
    AlgorithmId id() const override { return AlgorithmId::Sssp; }
    std::string name() const override { return "SSSP"; }
    bool usesWeights() const override { return true; }
    bool allInitiallyActive() const override { return false; }

    PropValue
    initialProp(VertexId v, const graph::Csr &, VertexId source) const
        override
    {
        return v == source ? 0.0f : propInf;
    }

    PropValue
    tPropIdentity(VertexId v, const graph::Csr &g, VertexId source) const
        override
    {
        return initialProp(v, g, source);
    }

    PropValue
    processEdge(PropValue u_prop, Weight weight) const override
    {
        return u_prop + static_cast<PropValue>(weight);
    }

    PropValue
    reduce(PropValue t_prop, PropValue result) const override
    {
        return std::min(t_prop, result);
    }

    PropValue
    apply(PropValue prop, PropValue t_prop, PropValue) const override
    {
        return std::min(prop, t_prop);
    }
};

/** CC: prop = component label; propagate the minimum label. */
class Cc : public VcpmAlgorithm
{
  public:
    AlgorithmId id() const override { return AlgorithmId::Cc; }
    std::string name() const override { return "CC"; }
    bool usesWeights() const override { return false; }
    bool allInitiallyActive() const override { return true; }

    PropValue
    initialProp(VertexId v, const graph::Csr &, VertexId) const override
    {
        return static_cast<PropValue>(v);
    }

    PropValue
    tPropIdentity(VertexId v, const graph::Csr &g, VertexId source) const
        override
    {
        return initialProp(v, g, source);
    }

    PropValue
    processEdge(PropValue u_prop, Weight) const override
    {
        return u_prop;
    }

    PropValue
    reduce(PropValue t_prop, PropValue result) const override
    {
        return std::min(t_prop, result);
    }

    PropValue
    apply(PropValue prop, PropValue t_prop, PropValue) const override
    {
        return std::min(prop, t_prop);
    }
};

/** SSWP: prop = bottleneck width; maximize min(width_u, w). */
class Sswp : public VcpmAlgorithm
{
  public:
    AlgorithmId id() const override { return AlgorithmId::Sswp; }
    std::string name() const override { return "SSWP"; }
    bool usesWeights() const override { return true; }
    bool allInitiallyActive() const override { return false; }

    PropValue
    initialProp(VertexId v, const graph::Csr &, VertexId source) const
        override
    {
        return v == source ? propInf : 0.0f;
    }

    PropValue
    tPropIdentity(VertexId v, const graph::Csr &g, VertexId source) const
        override
    {
        return initialProp(v, g, source);
    }

    PropValue
    processEdge(PropValue u_prop, Weight weight) const override
    {
        return std::min(u_prop, static_cast<PropValue>(weight));
    }

    PropValue
    reduce(PropValue t_prop, PropValue result) const override
    {
        return std::max(t_prop, result);
    }

    PropValue
    apply(PropValue prop, PropValue t_prop, PropValue) const override
    {
        return std::max(prop, t_prop);
    }
};

/**
 * PageRank. Following Table 2, v.prop stores rank/degree so Process_Edge
 * is just u.prop; Apply computes (alpha + beta * tProp) / deg with
 * alpha = (1 - d) / V and beta = d = 0.85. tProp accumulates contributions
 * afresh every iteration (identity 0, reset after Apply).
 */
class Pr : public VcpmAlgorithm
{
  public:
    AlgorithmId id() const override { return AlgorithmId::Pr; }
    std::string name() const override { return "PR"; }
    bool usesWeights() const override { return false; }
    bool usesConstProp() const override { return true; }
    bool allInitiallyActive() const override { return true; }
    bool tPropResetsEachIteration() const override { return true; }

    void
    bind(const graph::Csr &g) override
    {
        gds_require(g.numVertices() > 0, ConfigError,
                    "PR needs a non-empty graph");
        alphaOverV = (1.0f - damping) / static_cast<PropValue>(
            g.numVertices());
    }

    PropValue
    initialProp(VertexId v, const graph::Csr &g, VertexId) const override
    {
        // rank_0 = 1/V, stored as rank/deg.
        const auto v_count = static_cast<PropValue>(g.numVertices());
        return (1.0f / v_count) / constProp(v, g);
    }

    PropValue
    tPropIdentity(VertexId, const graph::Csr &, VertexId) const override
    {
        return 0.0f;
    }

    PropValue
    constProp(VertexId v, const graph::Csr &g) const override
    {
        // deg-0 vertices never scatter, so clamping to 1 only affects the
        // (unused) stored value and avoids a division by zero.
        return static_cast<PropValue>(std::max<std::uint64_t>(
            g.outDegree(v), 1));
    }

    PropValue
    processEdge(PropValue u_prop, Weight) const override
    {
        return u_prop;
    }

    PropValue
    reduce(PropValue t_prop, PropValue result) const override
    {
        return t_prop + result;
    }

    PropValue
    apply(PropValue, PropValue t_prop, PropValue c_prop) const override
    {
        // Table 2: (alpha + beta * v.tProp) / v.deg with alpha = (1-d)/|V|
        // (bound per graph in bind()) and beta = d.
        return (alphaOverV + damping * t_prop) / c_prop;
    }

    bool
    changed(PropValue old_prop, PropValue new_prop) const override
    {
        const PropValue diff = std::fabs(old_prop - new_prop);
        const PropValue mag =
            std::max(std::fabs(old_prop), std::fabs(new_prop));
        return diff > tolerance * std::max(mag, 1e-30f);
    }

  private:
    static constexpr PropValue damping = 0.85f;
    static constexpr PropValue tolerance = 1e-4f;
    PropValue alphaOverV = 0.15f;
};

} // namespace

std::unique_ptr<VcpmAlgorithm>
makeAlgorithm(AlgorithmId id)
{
    switch (id) {
      case AlgorithmId::Bfs:
        return std::make_unique<Bfs>();
      case AlgorithmId::Sssp:
        return std::make_unique<Sssp>();
      case AlgorithmId::Cc:
        return std::make_unique<Cc>();
      case AlgorithmId::Sswp:
        return std::make_unique<Sswp>();
      case AlgorithmId::Pr:
        return std::make_unique<Pr>();
    }
    panic("unknown algorithm id");
}

std::string
algorithmName(AlgorithmId id)
{
    return makeAlgorithm(id)->name();
}

VertexId
defaultSource(const graph::Csr &g)
{
    gds_require(g.numVertices() > 0, ConfigError, "empty graph has no source");
    VertexId best = 0;
    std::uint64_t best_degree = g.outDegree(0);
    for (VertexId v = 1; v < g.numVertices(); ++v) {
        const std::uint64_t d = g.outDegree(v);
        if (d > best_degree) {
            best = v;
            best_degree = d;
        }
    }
    return best;
}

} // namespace gds::algo
